package elp2im

// Cross-engine differential fuzzing: random operation programs (all seven
// logic ops, COPY, and Reduce chains over random-length vectors, including
// non-word-aligned lengths and non-word-aligned row widths) are executed on
// every design and checked bit-for-bit against the host bitvec oracle —
// once through the synchronous Op/Reduce path and once through the batch
// pipeline, which must also produce identical accumulated Stats.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bitvec"
)

// diffStep is one step of a generated program.
type diffStep struct {
	reduce bool
	op     Op
	dst    int
	x, y   int   // Op operands (y unused for unary ops)
	srcs   []int // Reduce operands
}

// diffProgram is a reproducible random program over a shared vector pool.
type diffProgram struct {
	n     int // vector length in bits
	init  []*bitvec.Vector
	steps []diffStep
}

func (p diffProgram) String() string {
	return fmt.Sprintf("program{n=%d vecs=%d steps=%d}", p.n, len(p.init), len(p.steps))
}

// genDiffProgram draws a program: vector lengths are deliberately spread
// over word-aligned, non-aligned, sub-row and multi-stripe sizes.
func genDiffProgram(rng *rand.Rand, cols, steps int) diffProgram {
	lengths := []int{
		1 + rng.Intn(63), // sub-word
		64 * (1 + rng.Intn(2*cols/64)),
		1 + rng.Intn(4*cols), // arbitrary, usually non-aligned
		cols,                 // exactly one stripe
		cols + 1 + rng.Intn(cols),
	}
	n := lengths[rng.Intn(len(lengths))]
	nVecs := 4 + rng.Intn(3)
	init := make([]*bitvec.Vector, nVecs)
	for i := range init {
		init[i] = bitvec.Random(rng, n)
	}
	prog := diffProgram{n: n, init: init}
	ops := []Op{OpNot, OpAnd, OpOr, OpNand, OpNor, OpXor, OpXnor, OpCopy}
	for len(prog.steps) < steps {
		if rng.Intn(5) == 0 {
			// A Reduce chain over 2–4 operands. The destination must not
			// appear among the operands: Reduce stages vs[0] into dst first,
			// so an aliased operand would read the partially reduced value
			// (on the device and in the oracle alike, but order-dependently).
			dst := rng.Intn(nVecs)
			k := 2 + rng.Intn(3)
			srcs := make([]int, k)
			for i := range srcs {
				srcs[i] = rng.Intn(nVecs - 1)
				if srcs[i] >= dst {
					srcs[i]++
				}
			}
			op := OpAnd
			if rng.Intn(2) == 0 {
				op = OpOr
			}
			prog.steps = append(prog.steps, diffStep{
				reduce: true, op: op, dst: dst, srcs: srcs,
			})
			continue
		}
		op := ops[rng.Intn(len(ops))]
		prog.steps = append(prog.steps, diffStep{
			op: op, dst: rng.Intn(nVecs), x: rng.Intn(nVecs), y: rng.Intn(nVecs),
		})
	}
	return prog
}

// goldenRun executes the program on the host oracle.
func goldenRun(p diffProgram) []*bitvec.Vector {
	vecs := make([]*bitvec.Vector, len(p.init))
	for i, v := range p.init {
		vecs[i] = v.Clone()
	}
	tmp := bitvec.New(p.n)
	for _, st := range p.steps {
		if st.reduce {
			acc := vecs[st.srcs[0]].Clone()
			for _, s := range st.srcs[1:] {
				if st.op == OpAnd {
					tmp.And(acc, vecs[s])
				} else {
					tmp.Or(acc, vecs[s])
				}
				acc.CopyFrom(tmp)
			}
			vecs[st.dst].CopyFrom(acc)
			continue
		}
		st.op.internal().Golden(tmp, vecs[st.x], vecs[st.y])
		vecs[st.dst].CopyFrom(tmp)
	}
	return vecs
}

// progVectors clones the program's initial pool into facade vectors.
func progVectors(p diffProgram) []*BitVector {
	vecs := make([]*BitVector, len(p.init))
	for i, v := range p.init {
		vecs[i] = &BitVector{v: v.Clone()}
	}
	return vecs
}

// serialRun executes the program through Op/Reduce and returns the pool
// and the accelerator's accumulated totals.
func serialRun(t *testing.T, acc *Accelerator, p diffProgram) ([]*BitVector, Stats) {
	t.Helper()
	acc.ResetTotals()
	vecs := progVectors(p)
	for i, st := range p.steps {
		var err error
		if st.reduce {
			srcs := make([]*BitVector, len(st.srcs))
			for j, s := range st.srcs {
				srcs[j] = vecs[s]
			}
			_, err = acc.Reduce(st.op, vecs[st.dst], srcs...)
		} else if st.op.Unary() {
			_, err = acc.Op(st.op, vecs[st.dst], vecs[st.x], nil)
		} else {
			_, err = acc.Op(st.op, vecs[st.dst], vecs[st.x], vecs[st.y])
		}
		if err != nil {
			t.Fatalf("%v step %d (%v): %v", p, i, st.op, err)
		}
	}
	return vecs, acc.Totals()
}

// batchRun executes the program through the asynchronous batch pipeline.
func batchRun(t *testing.T, acc *Accelerator, p diffProgram) ([]*BitVector, Stats) {
	t.Helper()
	acc.ResetTotals()
	vecs := progVectors(p)
	b := acc.Batch()
	defer b.Close()
	for _, st := range p.steps {
		if st.reduce {
			srcs := make([]*BitVector, len(st.srcs))
			for j, s := range st.srcs {
				srcs[j] = vecs[s]
			}
			b.SubmitReduce(st.op, vecs[st.dst], srcs...)
		} else if st.op.Unary() {
			b.Submit(st.op, vecs[st.dst], vecs[st.x], nil)
		} else {
			b.Submit(st.op, vecs[st.dst], vecs[st.x], vecs[st.y])
		}
	}
	if _, err := b.Wait(); err != nil {
		t.Fatalf("%v batch: %v", p, err)
	}
	return vecs, acc.Totals()
}

// diffModules returns the module geometries fuzzed: a word-aligned one
// (concurrent stripe groups) and a non-word-aligned one (serial path).
func diffModules() []func(*Config) {
	nonAligned := func(c *Config) {
		smallModule(c)
		c.Module.Columns = 100
	}
	return []func(*Config){smallModule, nonAligned}
}

// TestDifferentialFuzz is the cross-engine differential harness.
func TestDifferentialFuzz(t *testing.T) {
	designs := []Design{DesignELP2IM, DesignAmbit, DesignDrisaNOR}
	for mi, mod := range diffModules() {
		for round := 0; round < 4; round++ {
			seed := int64(1000*mi + round)
			// One program per (module, round), shared by every design so
			// the engines are differentially comparable.
			var cols int
			{
				cfg := DefaultConfig()
				mod(&cfg)
				cols = cfg.Module.Columns
			}
			rng := rand.New(rand.NewSource(seed))
			prog := genDiffProgram(rng, cols, 10)
			want := goldenRun(prog)

			results := make(map[Design][]*BitVector)
			for _, d := range designs {
				d := d
				acc := newAcc(t, mod, func(c *Config) { c.Design = d })

				serialVecs, serialTotals := serialRun(t, acc, prog)
				for i, v := range serialVecs {
					if !v.v.Equal(want[i]) {
						t.Fatalf("%v %v serial: vec %d diverges from oracle (seed %d)",
							d, prog, i, seed)
					}
				}

				batchVecs, batchTotals := batchRun(t, acc, prog)
				for i, v := range batchVecs {
					if !v.v.Equal(want[i]) {
						t.Fatalf("%v %v batch: vec %d diverges from oracle (seed %d)",
							d, prog, i, seed)
					}
				}
				if serialTotals != batchTotals {
					t.Fatalf("%v %v: batch totals %+v != serial totals %+v (seed %d)",
						d, prog, batchTotals, serialTotals, seed)
				}
				results[d] = serialVecs
			}
			// Cross-engine: every design must agree with every other.
			for i := 1; i < len(designs); i++ {
				a, b := results[designs[0]], results[designs[i]]
				for j := range a {
					if !a[j].v.Equal(b[j].v) {
						t.Fatalf("%v and %v diverge on vec %d of %v (seed %d)",
							designs[0], designs[i], j, prog, seed)
					}
				}
			}
		}
	}
}

// shardRun executes the program through the Shard router's synchronous
// Op/Reduce path and returns the pool and the router's accumulated totals.
func shardRun(t *testing.T, sh *Shard, p diffProgram) ([]*BitVector, Stats) {
	t.Helper()
	sh.ResetTotals()
	vecs := progVectors(p)
	for i, st := range p.steps {
		var err error
		if st.reduce {
			srcs := make([]*BitVector, len(st.srcs))
			for j, s := range st.srcs {
				srcs[j] = vecs[s]
			}
			_, err = sh.Reduce(st.op, vecs[st.dst], srcs...)
		} else if st.op.Unary() {
			_, err = sh.Op(st.op, vecs[st.dst], vecs[st.x], nil)
		} else {
			_, err = sh.Op(st.op, vecs[st.dst], vecs[st.x], vecs[st.y])
		}
		if err != nil {
			t.Fatalf("%v shard step %d (%v): %v", p, i, st.op, err)
		}
	}
	return vecs, sh.Totals()
}

// shardBatchRun executes the program through the scatter-gather batch
// pipeline (ShardBatch).
func shardBatchRun(t *testing.T, sh *Shard, p diffProgram) ([]*BitVector, Stats) {
	t.Helper()
	sh.ResetTotals()
	vecs := progVectors(p)
	b := sh.Batch()
	defer b.Close()
	for _, st := range p.steps {
		if st.reduce {
			srcs := make([]*BitVector, len(st.srcs))
			for j, s := range st.srcs {
				srcs[j] = vecs[s]
			}
			b.SubmitReduce(st.op, vecs[st.dst], srcs...)
		} else if st.op.Unary() {
			b.Submit(st.op, vecs[st.dst], vecs[st.x], nil)
		} else {
			b.Submit(st.op, vecs[st.dst], vecs[st.x], vecs[st.y])
		}
	}
	if _, err := b.Wait(); err != nil {
		t.Fatalf("%v shard batch: %v", p, err)
	}
	return vecs, sh.Totals()
}

// TestDifferentialShards extends the differential harness across the
// Shard router: for every design, module geometry (word-aligned and
// ragged), and shard count in {1, 2, 4, 8}, the same random programs must
// produce bit-identical vectors and struct-equal aggregated Stats through
// both the scattered synchronous path and the scatter-gather batch
// pipeline, all compared against the single-module serial baseline and
// the host oracle.
func TestDifferentialShards(t *testing.T) {
	designs := []Design{DesignELP2IM, DesignAmbit, DesignDrisaNOR}
	shardCounts := []int{1, 2, 4, 8}
	for mi, mod := range diffModules() {
		for round := 0; round < 2; round++ {
			seed := int64(7000*mi + round)
			var cols int
			{
				cfg := DefaultConfig()
				mod(&cfg)
				cols = cfg.Module.Columns
			}
			rng := rand.New(rand.NewSource(seed))
			prog := genDiffProgram(rng, cols, 8)
			want := goldenRun(prog)

			for _, d := range designs {
				d := d
				acc := newAcc(t, mod, func(c *Config) { c.Design = d })
				_, wantTotals := serialRun(t, acc, prog)

				for _, shards := range shardCounts {
					sh, err := NewShard(shards, mod, func(c *Config) { c.Design = d })
					if err != nil {
						t.Fatalf("NewShard(%d): %v", shards, err)
					}

					vecs, totals := shardRun(t, sh, prog)
					for i, v := range vecs {
						if !v.v.Equal(want[i]) {
							t.Fatalf("%v %v shards=%d sync: vec %d diverges from oracle (seed %d)",
								d, prog, shards, i, seed)
						}
					}
					if totals != wantTotals {
						t.Fatalf("%v %v shards=%d: totals %+v != single-module %+v (seed %d)",
							d, prog, shards, totals, wantTotals, seed)
					}

					bVecs, bTotals := shardBatchRun(t, sh, prog)
					for i, v := range bVecs {
						if !v.v.Equal(want[i]) {
							t.Fatalf("%v %v shards=%d batch: vec %d diverges from oracle (seed %d)",
								d, prog, shards, i, seed)
						}
					}
					if bTotals != wantTotals {
						t.Fatalf("%v %v shards=%d: batch totals %+v != single-module %+v (seed %d)",
							d, prog, shards, bTotals, wantTotals, seed)
					}
				}
			}
		}
	}
}
