package elp2im_test

import (
	"fmt"
	"log"

	elp2im "repro"
)

// The basic flow: build an accelerator, run one bulk operation, read the
// modeled command count.
func ExampleAccelerator_Op() {
	acc, err := elp2im.New()
	if err != nil {
		log.Fatal(err)
	}
	x := elp2im.NewBitVector(16384)
	y := elp2im.NewBitVector(16384)
	x.SetBit(7, true)
	y.SetBit(7, true)
	y.SetBit(8, true)

	dst := elp2im.NewBitVector(16384)
	stats, err := acc.Op(elp2im.OpAnd, dst, x, y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bit 7:", dst.Bit(7), "bit 8:", dst.Bit(8))
	fmt.Println("row ops:", stats.RowOps, "commands:", stats.Commands)
	// Output:
	// bit 7: true bit 8: false
	// row ops: 2 commands: 6
}

// AND-reduce many bitmaps with the in-place APP-AP chain (the paper's
// Figure 5(a) primitive sequence).
func ExampleAccelerator_Reduce() {
	acc, err := elp2im.New()
	if err != nil {
		log.Fatal(err)
	}
	week1 := elp2im.NewBitVector(8192)
	week2 := elp2im.NewBitVector(8192)
	week3 := elp2im.NewBitVector(8192)
	for _, u := range []int{3, 5, 9} {
		week1.SetBit(u, true)
		week2.SetBit(u, true)
	}
	week3.SetBit(5, true)
	week3.SetBit(9, true)

	active := elp2im.NewBitVector(8192)
	if _, err := acc.Reduce(elp2im.OpAnd, active, week1, week2, week3); err != nil {
		log.Fatal(err)
	}
	fmt.Println("always active:", active.Popcount())
	// Output:
	// always active: 2
}

// Evaluate a whole boolean expression in DRAM: the compiler fuses gates
// and reuses scratch rows, then every stripe executes through the real
// command sequences.
func ExampleAccelerator_Eval() {
	acc, err := elp2im.New()
	if err != nil {
		log.Fatal(err)
	}
	dirty := elp2im.NewBitVector(8192)
	pinned := elp2im.NewBitVector(8192)
	dirty.SetBit(1, true)
	dirty.SetBit(2, true)
	pinned.SetBit(2, true)

	evictable, _, err := acc.Eval("dirty & ~pinned", map[string]*elp2im.BitVector{
		"dirty": dirty, "pinned": pinned,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("evictable pages:", evictable.Popcount())
	// Output:
	// evictable pages: 1
}

// Compare the three reproduced designs on one operation.
func ExampleDesign() {
	x := elp2im.NewBitVector(8192)
	y := elp2im.NewBitVector(8192)
	for _, d := range []elp2im.Design{elp2im.DesignELP2IM, elp2im.DesignAmbit, elp2im.DesignDrisaNOR} {
		acc, err := elp2im.New(func(c *elp2im.Config) { c.Design = d })
		if err != nil {
			log.Fatal(err)
		}
		st, err := acc.Op(elp2im.OpXor, elp2im.NewBitVector(8192), x, y)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %d commands per row op\n", acc.Design(), st.Commands)
	}
	// Output:
	// ELP2IM     7 commands per row op
	// Ambit      7 commands per row op
	// Drisa_nor  6 commands per row op
}
