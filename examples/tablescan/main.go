// BitWeaving table scan (the §6.3.2 workload): store a column of k-bit
// codes vertically in DRAM rows and evaluate `col < C` with bit-serial
// in-DRAM logic, comparing the three designs on the real device model.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	elp2im "repro"
	"repro/internal/ambit"
	"repro/internal/apps/tablescan"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/drisa"
	"repro/internal/elpim"
	"repro/internal/timing"
)

const (
	tuples = 8192 // one subarray row of tuples for the functional part
	width  = 8
	cutoff = 137 // predicate: col < 137
)

func main() {
	metrics := flag.Bool("metrics", false, "print the process-wide metrics snapshot after the run")
	tracePath := flag.String("trace", "", "stream Chrome trace_event spans to this file")
	flag.Parse()

	// The scan drives the engines directly (no facade Accelerator), so the
	// observability hooks go through the process-wide context.
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		tr := elp2im.NewJSONLTracer(f)
		elp2im.SetGlobalTracer(tr)
		defer func() {
			elp2im.SetGlobalTracer(nil)
			tr.Close()
			f.Close()
			fmt.Printf("wrote %d trace spans to %s\n", tr.Spans(), *tracePath)
		}()
	}
	if *metrics {
		defer func() {
			fmt.Println("\n==== observability snapshot (process-wide) ====")
			fmt.Print(elp2im.GlobalSnapshot().Text())
		}()
	}

	rng := rand.New(rand.NewSource(7))
	values := make([]uint64, tuples)
	for i := range values {
		values[i] = rng.Uint64() & (1<<width - 1)
	}
	wl := tablescan.Workload{Tuples: tuples, Width: width, Constant: cutoff}

	// Functional pass: run the predicate through the ELP2IM engine on the
	// device model, tuple-exact.
	cfg := dram.Config{
		Banks: 1, SubarraysPerBank: 1,
		RowsPerSubarray: 32, Columns: tuples, DualContactRows: 1,
	}
	sub := dram.NewSubarray(cfg)
	cols := tablescan.Verticalize(values, width)
	rows := tablescan.PredicateRows{Bits: make([]int, width), LT: 20, EQ: 21, T1: 22, T2: 23}
	for b := 0; b < width; b++ {
		rows.Bits[b] = b
		sub.LoadRow(b, cols[b])
	}
	eng := elpim.MustNew(elpim.DefaultConfig())
	if err := tablescan.ExecutePredicate(sub, eng, wl, rows); err != nil {
		log.Fatal(err)
	}
	matches := sub.RowData(rows.LT).Popcount()
	golden := wl.GoldenPredicate(values).Popcount()
	fmt.Printf("SELECT COUNT(*) WHERE col < %d over %d %d-bit tuples\n", cutoff, tuples, width)
	fmt.Printf("in-DRAM result: %d matches; host golden: %d ✓\n\n", matches, golden)
	if matches != golden {
		log.Fatal("predicate mismatch")
	}

	// Throughput pass: the paper-scale scan (64M tuples) across widths.
	mod := dram.Default()
	tp := timing.DDR31600()
	m := cpu.KabyLake()
	designs := []tablescan.Design{
		elpim.MustNew(elpim.DefaultConfig()),
		ambit.MustNew(ambit.DefaultConfig()),
		drisa.MustNew(drisa.DefaultConfig()),
	}
	fmt.Println("paper-scale scan (64M tuples, power-constrained):")
	fmt.Printf("%-6s %-10s %16s %14s\n", "width", "design", "Mtuples/s", "vs CPU")
	for _, k := range []int{4, 8, 16} {
		w := tablescan.Default(k)
		base, err := tablescan.RunCPU(w, m)
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range designs {
			r, err := tablescan.Run(w, d, mod, tp, m)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-6d %-10s %16.1f %13.2fx\n",
				k, r.Name, r.TuplesPerSec/1e6, r.SpeedupOver(base))
		}
	}
}
