// Quickstart: create an ELP2IM accelerator, run bulk bitwise operations
// on multi-megabit vectors, and compare the three in-DRAM designs on
// latency, energy, and the power constraint's effect.
package main

import (
	"fmt"
	"log"
	"math/rand"

	elp2im "repro"
)

func main() {
	const nbits = 1 << 23 // 8 Mbit vectors
	rng := rand.New(rand.NewSource(1))
	x := elp2im.RandomBitVector(rng, nbits)
	y := elp2im.RandomBitVector(rng, nbits)

	fmt.Println("== ELP2IM quickstart: 8 Mbit bulk bitwise operations ==")

	// 1. The default accelerator: ELP2IM on a DDR3-1600 module.
	acc, err := elp2im.New()
	if err != nil {
		log.Fatal(err)
	}
	dst := elp2im.NewBitVector(nbits)
	st, err := acc.Op(elp2im.OpAnd, dst, x, y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AND on %s: %.1f µs, %.1f µJ, %d row ops, %d commands\n",
		acc.Design(), st.LatencyNS/1e3, st.EnergyNJ/1e3, st.RowOps, st.Commands)

	// The result is bit-accurate: verify one bit the hard way.
	i := 123456
	if dst.Bit(i) != (x.Bit(i) && y.Bit(i)) {
		log.Fatal("bit mismatch — the device model disagrees with boolean algebra!")
	}

	// 2. Compare the three designs on XOR (the paper's hardest basic op).
	fmt.Println("\nXOR across designs:")
	for _, d := range []elp2im.Design{elp2im.DesignELP2IM, elp2im.DesignAmbit, elp2im.DesignDrisaNOR} {
		a, err := elp2im.New(func(c *elp2im.Config) { c.Design = d })
		if err != nil {
			log.Fatal(err)
		}
		st, err := a.Op(elp2im.OpXor, elp2im.NewBitVector(nbits), x, y)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s %8.1f µs  %8.1f µJ  avg %.3f W  reserved rows: %d\n",
			a.Design(), st.LatencyNS/1e3, st.EnergyNJ/1e3, st.AveragePowerW, a.ReservedRows())
	}

	// 3. The power constraint: ELP2IM degrades gracefully, Ambit collapses.
	fmt.Println("\nAND under the charge-pump power constraint:")
	for _, d := range []elp2im.Design{elp2im.DesignELP2IM, elp2im.DesignAmbit} {
		free, err := elp2im.New(func(c *elp2im.Config) { c.Design = d })
		if err != nil {
			log.Fatal(err)
		}
		con, err := elp2im.New(func(c *elp2im.Config) { c.Design = d; c.PowerConstrained = true })
		if err != nil {
			log.Fatal(err)
		}
		stFree, err := free.Op(elp2im.OpAnd, elp2im.NewBitVector(nbits), x, y)
		if err != nil {
			log.Fatal(err)
		}
		stCon, err := con.Op(elp2im.OpAnd, elp2im.NewBitVector(nbits), x, y)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s %8.1f µs → %8.1f µs (throughput drop %.0f%%)\n",
			free.Design(), stFree.LatencyNS/1e3, stCon.LatencyNS/1e3,
			(1-stFree.LatencyNS/stCon.LatencyNS)*100)
	}

	// 4. Reductions: fold eight vectors with the in-place APP-AP chain.
	vs := make([]*elp2im.BitVector, 8)
	for i := range vs {
		vs[i] = elp2im.RandomBitVector(rng, nbits)
	}
	out := elp2im.NewBitVector(nbits)
	st, err = acc.Reduce(elp2im.OpAnd, out, vs...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n8-way AND reduction: %.1f µs, %d set bits of %d\n",
		st.LatencyNS/1e3, out.Popcount(), out.Len())
}
