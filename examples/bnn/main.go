// Binary-neural-network inference kernel (the §6.3.3 NID workload): a
// binarized fully-connected layer computed end to end in DRAM — XNOR
// match phase as bulk bitwise ops, count phase as vertical (bit-serial)
// popcount-accumulate arithmetic, binarization as a vertical threshold
// compare — verified against a host integer reference, plus the Table 3
// accelerator projection for full networks.
//
// The count phase never leaves the accelerator: each neuron's 4096-bit
// match vector is re-sliced 64 bits at a time into the vertical layout
// (one 64-bit chunk per neuron per step), popcounted per element with the
// ArithPopcount µProgram, widened by in-DRAM row copies, and accumulated
// into a 13-bit per-neuron counter with ArithAdd. The final ArithLe
// compares the threshold against every counter at once, producing the
// layer's output bits as a 1-bit vertical vector.
package main

import (
	"fmt"
	"log"
	"math/bits"
	"math/rand"

	elp2im "repro"
	"repro/internal/ambit"
	"repro/internal/apps/cnn"
	"repro/internal/drisa"
	"repro/internal/elpim"
)

const (
	inFeatures   = 4096
	outNeurons   = 16
	popThreshold = inFeatures / 2
	chunkBits    = 64
	chunks       = inFeatures / chunkBits
	// accWidth holds counts up to inFeatures (4096 needs 13 bits).
	accWidth = 13
)

func main() {
	rng := rand.New(rand.NewSource(3))

	// Binarized input activations and per-neuron weight rows (+1/-1
	// encoded as 1/0 bits).
	input := elp2im.RandomBitVector(rng, inFeatures)
	weights := make([]*elp2im.BitVector, outNeurons)
	for i := range weights {
		weights[i] = elp2im.RandomBitVector(rng, inFeatures)
	}

	// NID configuration: ELP2IM with two reserved rows (sequence-6 XOR).
	acc, err := elp2im.New(func(c *elp2im.Config) { c.ReservedRows = 2 })
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("binarized FC layer: %d inputs → %d neurons on %s\n\n",
		inFeatures, outNeurons, acc.Design())

	var totalNS float64
	tally := func(st elp2im.Stats, err error) {
		if err != nil {
			log.Fatal(err)
		}
		totalNS += st.LatencyNS
	}

	// Match phase: one in-DRAM XNOR per neuron. A set bit means the
	// input and weight agree (+1 toward the dot product).
	match := make([]*elp2im.BitVector, outNeurons)
	for i, w := range weights {
		match[i] = elp2im.NewBitVector(inFeatures)
		st, err := acc.Op(elp2im.OpXnor, match[i], input, w)
		tally(st, err)
	}
	matchNS := totalNS

	// Count phase, entirely in DRAM: per-neuron popcount-accumulate over
	// 64-bit chunks of the match vectors. Compile the two µPrograms once
	// — the same (op, width) shapes repeat every chunk.
	popcountProg, err := elp2im.CompileArith(elp2im.ArithPopcount, chunkBits)
	if err != nil {
		log.Fatal(err)
	}
	addProg, err := elp2im.CompileArith(elp2im.ArithAdd, accWidth)
	if err != nil {
		log.Fatal(err)
	}
	counts, err := elp2im.NewVertical(outNeurons, accWidth)
	if err != nil {
		log.Fatal(err)
	}
	countWidth := elp2im.ArithPopcount.OutWidth(chunkBits)
	chunk := make([]uint64, outNeurons)
	for c := 0; c < chunks; c++ {
		// Re-slice chunk c of every neuron's match vector into the
		// vertical layout: element i is neuron i's 64-bit chunk.
		for i := range chunk {
			chunk[i] = match[i].Words()[c]
		}
		v, err := elp2im.VerticalFromElements(chunk, chunkBits)
		if err != nil {
			log.Fatal(err)
		}
		// Per-neuron popcount of the chunk (7-bit results).
		pc, st, err := acc.ArithProg(popcountProg, v, nil, nil)
		tally(st, err)
		// Widen 7 → 13 bits with in-DRAM row copies: the wide vector's
		// low slices take the count slices, the high ones stay zero.
		wide, err := elp2im.NewVertical(outNeurons, accWidth)
		if err != nil {
			log.Fatal(err)
		}
		for j := 0; j < countWidth; j++ {
			st, err := acc.Op(elp2im.OpCopy, wide.Slice(j), pc.Slice(j), nil)
			tally(st, err)
		}
		// Accumulate into the per-neuron counters.
		next, st, err := acc.ArithProg(addProg, counts, wide, nil)
		tally(st, err)
		counts = next
	}

	// Binarize: out_i = (counts_i >= threshold), computed as one vertical
	// threshold <= counts compare across every neuron at once.
	thrElems := make([]uint64, outNeurons)
	for i := range thrElems {
		thrElems[i] = popThreshold
	}
	thr, err := elp2im.VerticalFromElements(thrElems, accWidth)
	if err != nil {
		log.Fatal(err)
	}
	outV, st, err := acc.Arith(elp2im.ArithLe, thr, counts, nil)
	tally(st, err)

	// Host reference: XNOR-popcount is +1 per agreeing bit.
	out := outV.Elements()
	pops := counts.Elements()
	for i, w := range weights {
		agree := 0
		for c := 0; c < chunks; c++ {
			agree += bits.OnesCount64(^(input.Words()[c] ^ w.Words()[c]))
		}
		if int(pops[i]) != agree {
			log.Fatalf("neuron %d: in-DRAM count %d != host %d", i, pops[i], agree)
		}
		want := uint64(0)
		if agree >= popThreshold {
			want = 1
		}
		if out[i] != want {
			log.Fatalf("neuron %d: in-DRAM output %d != host %d", i, out[i], want)
		}
	}
	fmt.Printf("layer output bits: %v\n", out)
	fmt.Printf("per-neuron counts: %v (threshold %d)\n", pops, popThreshold)
	fmt.Printf("in-DRAM time: %.1f µs match + %.1f µs count/threshold (host verification passed ✓)\n\n",
		matchNS/1e3, (totalNS-matchNS)/1e3)

	// Table 3 projection: full binary networks on the NID accelerator.
	ecfg := elpim.DefaultConfig()
	ecfg.ReservedRows = 2
	rows, err := cnn.Table3(
		ambit.MustNew(ambit.DefaultConfig()),
		elpim.MustNew(ecfg),
		drisa.MustNew(drisa.DefaultConfig()),
		cnn.DefaultAccel(),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("full-network projection (Table 3):")
	fmt.Printf("%-10s %12s %12s %10s\n", "network", "Ambit FPS", "ELP2IM FPS", "improve")
	for _, r := range rows {
		fmt.Printf("%-10s %12.1f %12.1f %9.2fx\n",
			r.Network, r.AmbitFPS, r.ELP2IMFPS, r.ELP2IMImprovement)
	}
}
