// Binary-neural-network inference kernel (the §6.3.3 NID workload): a
// binarized fully-connected layer computed with in-DRAM XNOR + popcount,
// verified against a host float-free reference, plus the Table 3
// accelerator projection for full networks.
package main

import (
	"fmt"
	"log"
	"math/rand"

	elp2im "repro"
	"repro/internal/ambit"
	"repro/internal/apps/cnn"
	"repro/internal/drisa"
	"repro/internal/elpim"
)

const (
	inFeatures   = 4096
	outNeurons   = 16
	popThreshold = inFeatures / 2
)

func main() {
	rng := rand.New(rand.NewSource(3))

	// Binarized input activations and per-neuron weight rows (+1/-1
	// encoded as 1/0 bits).
	input := elp2im.RandomBitVector(rng, inFeatures)
	weights := make([]*elp2im.BitVector, outNeurons)
	for i := range weights {
		weights[i] = elp2im.RandomBitVector(rng, inFeatures)
	}

	// NID configuration: ELP2IM with two reserved rows (sequence-6 XOR).
	acc, err := elp2im.New(func(c *elp2im.Config) { c.ReservedRows = 2 })
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("binarized FC layer: %d inputs → %d neurons on %s\n\n",
		inFeatures, outNeurons, acc.Design())

	// For each neuron: XNOR the input with the weight row in DRAM, then
	// popcount (the count phase) and binarize against the threshold.
	var totalNS float64
	out := make([]int, outNeurons)
	for i, w := range weights {
		match := elp2im.NewBitVector(inFeatures)
		st, err := acc.Op(elp2im.OpXnor, match, input, w)
		if err != nil {
			log.Fatal(err)
		}
		totalNS += st.LatencyNS
		pop := match.Popcount()
		if pop >= popThreshold {
			out[i] = 1
		}

		// Host reference: XNOR-popcount is +1 per agreeing bit.
		agree := 0
		for b := 0; b < inFeatures; b++ {
			if input.Bit(b) == w.Bit(b) {
				agree++
			}
		}
		if agree != pop {
			log.Fatalf("neuron %d: in-DRAM popcount %d != host %d", i, pop, agree)
		}
	}
	fmt.Printf("layer output bits: %v\n", out)
	fmt.Printf("in-DRAM XNOR time: %.1f µs (host verification passed ✓)\n\n", totalNS/1e3)

	// Table 3 projection: full binary networks on the NID accelerator.
	ecfg := elpim.DefaultConfig()
	ecfg.ReservedRows = 2
	rows, err := cnn.Table3(
		ambit.MustNew(ambit.DefaultConfig()),
		elpim.MustNew(ecfg),
		drisa.MustNew(drisa.DefaultConfig()),
		cnn.DefaultAccel(),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("full-network projection (Table 3):")
	fmt.Printf("%-10s %12s %12s %10s\n", "network", "Ambit FPS", "ELP2IM FPS", "improve")
	for _, r := range rows {
		fmt.Printf("%-10s %12.1f %12.1f %9.2fx\n",
			r.Network, r.AmbitFPS, r.ELP2IMFPS, r.ELP2IMImprovement)
	}
}
