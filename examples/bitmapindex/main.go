// Bitmap-index analytics (the §6.3.1 workload as a library user would run
// it): track user activity over w weeks with one bitmap per week, then
// answer "how many users were active every week?" and "how many male
// users were active every week?" with in-DRAM AND reductions.
//
// This is the embedded, single-process form. The same workload is served:
// elpd stores bitmap indices as "<namespace>/<index>" vectors and answers
// boolean predicates over them via POST /v1/query (or wire KindQuery),
// compiled through the plan IR — see docs/CLI.md "Bitmap-index queries",
// docs/ARCHITECTURE.md "Life of a query", and `elpload -query` for the
// load-tested service path.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	elp2im "repro"
)

const (
	users = 1 << 21 // 2M users (scaled from the paper's 16M for a quick run)
	weeks = 8
)

func main() {
	metrics := flag.Bool("metrics", false, "print the accelerator's metrics snapshot after the run")
	tracePath := flag.String("trace", "", "stream Chrome trace_event spans to this file")
	flag.Parse()

	rng := rand.New(rand.NewSource(2026))

	// Synthesize weekly activity: each user is active in a week with
	// probability ~55%; gender split ~50/50.
	weekly := make([]*elp2im.BitVector, weeks)
	for w := range weekly {
		weekly[w] = elp2im.NewBitVector(users)
		for u := 0; u < users; u++ {
			if rng.Intn(100) < 55 {
				weekly[w].SetBit(u, true)
			}
		}
	}
	male := elp2im.RandomBitVector(rng, users)

	acc, err := elp2im.New(func(c *elp2im.Config) { c.PowerConstrained = true })
	if err != nil {
		log.Fatal(err)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		tr := elp2im.NewJSONLTracer(f)
		acc.SetTracer(tr)
		defer func() {
			acc.SetTracer(nil)
			tr.Close()
			f.Close()
			fmt.Printf("wrote %d trace spans to %s\n", tr.Spans(), *tracePath)
		}()
	}
	if *metrics {
		defer func() {
			fmt.Println("\n==== accelerator metrics ====")
			fmt.Print(acc.Snapshot().Text())
		}()
	}

	// Q1: users active every week — AND-reduce the week bitmaps in DRAM.
	everyWeek := elp2im.NewBitVector(users)
	st1, err := acc.Reduce(elp2im.OpAnd, everyWeek, weekly...)
	if err != nil {
		log.Fatal(err)
	}
	q1 := everyWeek.Popcount()

	// Q2: male users active every week — one more in-place AND.
	maleEveryWeek := elp2im.NewBitVector(users)
	st2, err := acc.Op(elp2im.OpAnd, maleEveryWeek, male, everyWeek)
	if err != nil {
		log.Fatal(err)
	}
	q2 := maleEveryWeek.Popcount()

	fmt.Printf("tracked %d users over %d weeks on %s (power-constrained)\n",
		users, weeks, acc.Design())
	fmt.Printf("Q1: active every week:       %8d users  (in-DRAM: %.1f µs, %d row ops)\n",
		q1, st1.LatencyNS/1e3, st1.RowOps)
	fmt.Printf("Q2: male & active every week:%8d users  (in-DRAM: %.1f µs)\n",
		q2, st2.LatencyNS/1e3)

	// Sanity: host-side recount of Q1.
	expect := 0
	for u := 0; u < users; u++ {
		all := true
		for w := 0; w < weeks; w++ {
			if !weekly[w].Bit(u) {
				all = false
				break
			}
		}
		if all {
			expect++
		}
	}
	if expect != q1 {
		log.Fatalf("host recount %d != in-DRAM result %d", expect, q1)
	}
	fmt.Println("host-side recount matches the in-DRAM result ✓")

	// Cost framing vs the CPU baseline of the paper.
	m := elp2im.CPUBaseline()
	cpuNS := m.ReduceAndNS(users, weeks) + m.PopcountNS(users)
	total := st1.LatencyNS + st2.LatencyNS
	fmt.Printf("CPU baseline for Q1 alone: %.1f µs → in-DRAM speedup ~%.1fx on the bitwise part\n",
		cpuNS/1e3, cpuNS/total)
}
