// Expression compiler + controller assembler tour: evaluate boolean
// expressions over bulk bit-vectors entirely in DRAM, inspect the
// compiled in-DRAM program and its per-design cost, and run a raw
// controller command program with a timed trace — the §5.1 configurable
// memory controller end to end.
package main

import (
	"fmt"
	"log"
	"math/rand"

	elp2im "repro"
	"repro/internal/ambit"
	"repro/internal/bitvec"
	"repro/internal/controller"
	"repro/internal/dram"
	"repro/internal/drisa"
	"repro/internal/elpim"
	"repro/internal/expr"
	"repro/internal/power"
	"repro/internal/timing"
)

func main() {
	const n = 1 << 20 // 1 Mbit vectors
	rng := rand.New(rand.NewSource(9))

	// 1. High-level: Eval on the public accelerator.
	acc, err := elp2im.New()
	if err != nil {
		log.Fatal(err)
	}
	vars := map[string]*elp2im.BitVector{
		"dirty":      elp2im.RandomBitVector(rng, n),
		"referenced": elp2im.RandomBitVector(rng, n),
		"pinned":     elp2im.RandomBitVector(rng, n),
	}
	const query = "(dirty & ~referenced) & ~pinned" // page-eviction candidates
	out, st, err := acc.Eval(query, vars)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("eval %q over %d pages in DRAM:\n", query, n)
	fmt.Printf("  %d candidates, %.1f µs, %.1f µJ, %d row ops\n\n",
		out.Popcount(), st.LatencyNS/1e3, st.EnergyNJ/1e3, st.RowOps)

	// 2. The compiled program and its cost on each design.
	prog, err := expr.Compile(expr.MustParse(query))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compiled in-DRAM program (CSE + gate fusion + row reuse):")
	fmt.Print(prog)
	fmt.Println("per-stripe cost by design:")
	for _, d := range []expr.CostEstimator{
		elpim.MustNew(elpim.DefaultConfig()),
		ambit.MustNew(ambit.DefaultConfig()),
		drisa.MustNew(drisa.DefaultConfig()),
	} {
		c := prog.Cost(d)
		name := d.(interface{ Name() string }).Name()
		fmt.Printf("  %-10s %7.1f ns  %2d commands  %2d wordlines\n",
			name, c.LatencyNS, c.Commands, c.Wordlines)
	}

	// 3. Low-level: a hand-written controller program (Figure 8 sequence 5,
	// XOR) assembled, validated, and traced on the device model.
	src := `
# C = A xor B — Figure 8 sequence 5
oAAP([R0],B)  oAPP(A):zeros   oAAP([C],~R0)
oAAP([R0],A)  oAPP(B):zeros   otAPP(~R0):ones
AP(C)
`
	p, err := controller.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	sub := dram.NewSubarray(dram.Config{
		Banks: 1, SubarraysPerBank: 1,
		RowsPerSubarray: 16, Columns: 64, DualContactRows: 1,
	})
	a := bitvec.Random(rng, 64)
	b := bitvec.Random(rng, 64)
	sub.LoadRow(0, a)
	sub.LoadRow(1, b)
	rows := map[string]int{"A": 0, "B": 1, "C": 2, "R0": sub.DCCRow(0)}
	tr, err := p.Run(sub, rows, timing.DDR31600(), power.DDR31600())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncontroller trace of the hand-written XOR:")
	fmt.Print(tr)
	want := bitvec.New(64).Xor(a, b)
	if !sub.RowData(2).Equal(want) {
		log.Fatal("XOR program result mismatch")
	}
	fmt.Println("result verified against the host golden model ✓")
}
