// Command batchverify exercises the batched async pipeline through the
// public API: a dependency chain across submissions, totals parity with
// the synchronous path, and error surfacing on a closed batch.
package main

import (
	"fmt"
	"log"
	"math/rand"

	elp2im "repro"
)

func main() {
	acc, err := elp2im.New()
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	const n = 100_000
	x := elp2im.RandomBitVector(rng, n)
	y := elp2im.RandomBitVector(rng, n)

	// Serial reference.
	sTmp := elp2im.NewBitVector(n)
	sOut := elp2im.NewBitVector(n)
	acc.ResetTotals()
	if _, err := acc.Op(elp2im.OpNot, sTmp, x, nil); err != nil {
		log.Fatal(err)
	}
	if _, err := acc.Op(elp2im.OpAnd, sTmp, sTmp, y); err != nil {
		log.Fatal(err)
	}
	if _, err := acc.Op(elp2im.OpOr, sOut, sTmp, x); err != nil {
		log.Fatal(err)
	}
	serial := acc.Totals()

	// Same chain through a batch.
	bTmp := elp2im.NewBitVector(n)
	bOut := elp2im.NewBitVector(n)
	acc.ResetTotals()
	b := acc.Batch()
	b.Submit(elp2im.OpNot, bTmp, x, nil)
	b.Submit(elp2im.OpAnd, bTmp, bTmp, y)
	f := b.Submit(elp2im.OpOr, bOut, bTmp, x)
	batchTotals, err := b.Wait()
	if err != nil {
		log.Fatal(err)
	}
	st, err := f.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workers: %d\n", b.Workers())
	fmt.Printf("final op: latency %.1f ns, energy %.3f nJ, %d row ops\n",
		st.LatencyNS, st.EnergyNJ, st.RowOps)
	fmt.Printf("results equal:  %v\n", bOut.Equal(sOut))
	fmt.Printf("totals equal:   %v (serial %.3f nJ, batch %.3f nJ)\n",
		batchTotals == serial, serial.EnergyNJ, batchTotals.EnergyNJ)

	// Error probes at the same surface.
	if _, err := b.Submit(elp2im.OpAnd, elp2im.NewBitVector(n),
		elp2im.NewBitVector(n), elp2im.NewBitVector(n+1)).Wait(); err != nil {
		fmt.Printf("length mismatch: %v\n", err)
	}
	b.Close()
	if _, err := b.Submit(elp2im.OpAnd, bOut, x, y).Wait(); err != nil {
		fmt.Printf("closed batch:   %v\n", err)
	}
}
