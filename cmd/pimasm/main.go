// Command pimasm assembles, validates, and traces ELP2IM controller
// programs written in the paper's prmt([dst],src) notation (§5.1).
//
// Usage:
//
//	pimasm 'oAAP([R0],B) APP(A):zeros oAAP([C],R0)'
//	pimasm -trace 'oAAP([R0],B) APP(A):zeros oAAP([C],R0)'
//	echo 'AP(A)' | pimasm -
//
// Symbols starting with R are bound to dual-contact reserved rows; all
// other symbols are bound to successive data rows. With -trace the
// program runs on a demo subarray loaded with random data and the timed
// command trace plus the resulting row populations are printed.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"repro/internal/bitvec"
	"repro/internal/controller"
	"repro/internal/dram"
	"repro/internal/power"
	"repro/internal/timing"
)

func main() {
	trace := flag.Bool("trace", false, "execute on a demo subarray and print the timed trace")
	seed := flag.Int64("seed", 1, "random seed for demo row contents")
	flag.Parse()

	src, err := readProgram(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimasm:", err)
		os.Exit(2)
	}
	prog, err := controller.Assemble(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimasm:", err)
		os.Exit(1)
	}

	tp := timing.DDR31600()
	pp := power.DDR31600()
	fmt.Print(prog)
	fmt.Printf("commands: %d   latency: %.1f ns   dynamic energy: %.2f nJ\n",
		len(prog.Commands), prog.Duration(tp), prog.Energy(pp))

	if !*trace {
		return
	}

	sub := dram.NewSubarray(dram.Config{
		Banks: 1, SubarraysPerBank: 1,
		RowsPerSubarray: 32, Columns: 64, DualContactRows: 2,
	})
	rows := map[string]int{}
	next, dcc := 0, 0
	rng := rand.New(rand.NewSource(*seed))
	for _, sym := range prog.Symbols() {
		if strings.HasPrefix(sym, "R") && dcc < 2 {
			rows[sym] = sub.DCCRow(dcc)
			dcc++
		} else {
			rows[sym] = next
			next++
		}
		sub.LoadRow(rows[sym], bitvec.Random(rng, 64))
	}

	fmt.Println("\nrow bindings and initial contents:")
	for _, sym := range prog.Symbols() {
		fmt.Printf("  %-6s row %2d  %s\n", sym, rows[sym], sub.RowData(rows[sym]))
	}
	tr, err := prog.Run(sub, rows, tp, pp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimasm:", err)
		os.Exit(1)
	}
	fmt.Println("\ntrace:")
	fmt.Print(tr)
	fmt.Println("final contents:")
	for _, sym := range prog.Symbols() {
		fmt.Printf("  %-6s row %2d  %s\n", sym, rows[sym], sub.RowData(rows[sym]))
	}
}

func readProgram(args []string) (string, error) {
	if len(args) == 0 {
		return "", fmt.Errorf("no program given (pass it as an argument, or '-' for stdin)")
	}
	if len(args) == 1 && args[0] == "-" {
		b, err := io.ReadAll(os.Stdin)
		if err != nil {
			return "", err
		}
		return string(b), nil
	}
	return strings.Join(args, " "), nil
}
