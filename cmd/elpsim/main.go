// Command elpsim regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	elpsim [-metrics] [-trace file] list            list the available experiments
//	elpsim [-metrics] [-trace file] all             regenerate every table and figure
//	elpsim [-metrics] [-trace file] <id> [<id>...]  regenerate specific experiments
//	                                                (table1, fig8, fig10, fig11, fig12,
//	                                                 fig13, fig14, table2, table3)
//
// -metrics prints the process-wide observability snapshot (engine execution
// counters, scheduler-memo hit rate, pipeline gauges) after the run;
// -trace streams Chrome trace_event spans to the given file (load it in
// chrome://tracing or Perfetto).
package main

import (
	"errors"
	"fmt"
	"os"

	elp2im "repro"
	"repro/internal/exp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "elpsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	var showMetrics bool
	var tracePath string
	rest := make([]string, 0, len(args))
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-metrics", "--metrics":
			showMetrics = true
		case "-trace", "--trace":
			i++
			if i >= len(args) {
				return errors.New("-trace needs an output file path")
			}
			tracePath = args[i]
		default:
			rest = append(rest, args[i])
		}
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		tr := elp2im.NewJSONLTracer(f)
		elp2im.SetGlobalTracer(tr)
		defer func() {
			elp2im.SetGlobalTracer(nil)
			tr.Close()
			f.Close()
			fmt.Fprintf(os.Stderr, "elpsim: wrote %d trace spans to %s\n", tr.Spans(), tracePath)
		}()
	}
	if showMetrics {
		defer func() {
			fmt.Println("\n==== observability snapshot (process-wide) ====")
			fmt.Print(elp2im.GlobalSnapshot().Text())
		}()
	}
	return dispatch(rest)
}

func dispatch(args []string) error {
	if len(args) == 0 {
		usage()
		return nil
	}
	switch args[0] {
	case "list":
		for _, id := range exp.IDs() {
			r, _ := exp.Lookup(id)
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		fmt.Printf("\nCSV-capable (elpsim -csv <id>): %v\n", exp.CSVIDs())
		return nil
	case "all":
		return exp.RunAll(os.Stdout)
	case "help", "-h", "--help":
		usage()
		return nil
	case "-csv", "--csv":
		if len(args) < 2 {
			return fmt.Errorf("-csv needs an experiment id (one of %v)", exp.CSVIDs())
		}
		for _, id := range args[1:] {
			ok, err := exp.CSV(id, os.Stdout)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("experiment %q has no CSV form (one of %v)", id, exp.CSVIDs())
			}
		}
		return nil
	}
	for _, id := range args {
		r, ok := exp.Lookup(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try: elpsim list)", id)
		}
		fmt.Printf("==== %s — %s ====\n", r.ID, r.Title)
		if err := r.Run(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func usage() {
	fmt.Println(`elpsim — regenerate the ELP2IM (HPCA 2020) evaluation
usage:
  elpsim list            list the available experiments
  elpsim all             regenerate every table and figure
  elpsim <id> [<id>...]  regenerate specific experiments
  elpsim -csv <id>       emit an experiment's data as CSV
flags (anywhere on the command line):
  -metrics               print the process-wide metrics snapshot after the run
  -trace <file>          stream Chrome trace_event spans to <file>`)
}
