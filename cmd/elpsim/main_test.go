package main

import (
	"os"
	"strings"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it wrote.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()

	done := make(chan string)
	go func() {
		buf := make([]byte, 0, 1<<16)
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	runErr := fn()
	w.Close()
	out := <-done
	return out, runErr
}

func TestRunList(t *testing.T) {
	out, err := captureStdout(t, func() error { return run([]string{"list"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table1", "fig12", "fig13", "fig14", "table2", "table3", "ablation"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	out, err := captureStdout(t, func() error { return run([]string{"table1"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Activate-Pseudoprecharge-Precharge") {
		t.Errorf("table1 output wrong:\n%s", out)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := captureStdout(t, func() error { return run([]string{"nope"}) }); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunCSV(t *testing.T) {
	out, err := captureStdout(t, func() error { return run([]string{"-csv", "fig12"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "design,op,latency_ns") {
		t.Errorf("CSV header missing:\n%.100s", out)
	}
	if _, err := captureStdout(t, func() error { return run([]string{"-csv"}) }); err == nil {
		t.Error("-csv without id accepted")
	}
	if _, err := captureStdout(t, func() error { return run([]string{"-csv", "table1"}) }); err == nil {
		t.Error("-csv for non-CSV experiment accepted")
	}
}

func TestRunNoArgsShowsUsage(t *testing.T) {
	out, err := captureStdout(t, func() error { return run(nil) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "usage") {
		t.Errorf("usage missing:\n%s", out)
	}
	out2, err := captureStdout(t, func() error { return run([]string{"help"}) })
	if err != nil || !strings.Contains(out2, "usage") {
		t.Error("help missing usage")
	}
}
