// Command elpload is the concurrent load generator and smoke client for
// elpd: it drives a configurable mixed op workload (AND/OR/XOR +
// reductions) from many concurrent clients — closed-loop by default, or
// open-loop at a fixed offered QPS — verifies results client-side
// against a local mirror of every vector, and reports achieved
// throughput and latency percentiles as JSON on stdout (the
// BENCH_server.json trajectory point).
//
// Usage:
//
//	elpload [flags]
//	  -addr string       target elpd (empty: spawn an in-process server and
//	                     drive it — the mode scripts/bench.sh uses)
//	  -wire              speak elpwire (the length-prefixed binary protocol)
//	                     instead of HTTP/JSON: -addr targets elpd's -wire-addr
//	                     listener, and self mode spawns a wire listener. The
//	                     report keeps the same shape, so bench.sh compares the
//	                     two protocols point for point.
//	  -query             drive the bitmap-index query workload instead of the
//	                     op mix: each client owns a namespace of 8 indices and
//	                     issues boolean-predicate queries (POST /v1/query or
//	                     KindQuery) with Zipfian index popularity and a mixed
//	                     count/positions/bits result-mode draw, verifying
//	                     responses bit-for-bit against a host-side oracle
//	  -disable-fusion    self mode: spawn the server with expression-DAG
//	                     fusion off (node-at-a-time kernels), the knob
//	                     scripts/bench.sh flips for BENCH_query.json
//	  -clients int       concurrent clients (default 64)
//	  -duration duration load duration (default 2s)
//	  -qps float         total offered open-loop rate; 0 = closed loop
//	  -bits int          vector length per operand (default 65536)
//	  -mix string        op weights (default "and=3,or=3,xor=2,reduce=2")
//	  -timeout duration  per-request deadline (default 5s)
//	  -verify-every int  verify the result of every Nth op per client (default 4)
//	  -seed int          base RNG seed (default 1)
//	  -window duration   self-spawned server's coalescing window (default 200µs)
//	  -shards int        self-spawned server's shard count (default 1)
//
// Besides wall-clock achieved_qps, the report carries modeled_qps:
// completed operations divided by the modeled hardware makespan scraped
// from the server (the MAX of the per-shard modeled busy times, since
// shards model concurrently executing ranks). On a host with fewer cores
// than shards, wall-clock throughput cannot scale, but modeled_qps shows
// the modeled hardware's scaling with the shard count — the number
// scripts/bench.sh sweeps into BENCH_shards.json.
//
// Exit status is non-zero when any result verification fails or any
// transport-level error occurs; 503 (backpressure) and 504 (deadline)
// responses are counted but are expected outcomes under overload.
package main

import (
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	mathbits "math/bits"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	elp2im "repro"
	"repro/internal/server"
	"repro/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "elpload:", err)
		os.Exit(1)
	}
}

// options are the parsed flags.
type options struct {
	addr          string
	wireMode      bool
	queryMode     bool
	disableFusion bool
	clients       int
	wireConns     int
	duration      time.Duration
	qps           float64
	bits          int
	mix           []mixEntry
	timeout       time.Duration
	verifyEvery   int
	seed          int64
	window        time.Duration
	shards        int
}

// wirePoolSize is the effective shared-connection count for wire mode:
// -conns when set, else one connection per 16 clients (the server's
// per-connection worker width), capped at the client count.
func (o options) wirePoolSize() int {
	n := o.wireConns
	if n <= 0 {
		n = (o.clients + 15) / 16
	}
	if n > o.clients {
		n = o.clients
	}
	return n
}

// mixEntry is one weighted workload component.
type mixEntry struct {
	name   string
	weight int
}

// parseMix parses "and=3,or=3,xor=2,reduce=2" into weighted entries.
func parseMix(s string) ([]mixEntry, error) {
	var mix []mixEntry
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weightStr, ok := strings.Cut(part, "=")
		weight := 1
		if ok {
			w, err := strconv.Atoi(weightStr)
			if err != nil || w < 0 {
				return nil, fmt.Errorf("bad mix weight %q", part)
			}
			weight = w
		}
		switch name {
		case "and", "or", "xor", "nand", "nor", "xnor", "not", "copy", "reduce":
		default:
			return nil, fmt.Errorf("unknown mix op %q", name)
		}
		if weight > 0 {
			mix = append(mix, mixEntry{name: name, weight: weight})
		}
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty op mix")
	}
	return mix, nil
}

// pick draws one op from the mix.
func pick(mix []mixEntry, rng *rand.Rand) string {
	total := 0
	for _, m := range mix {
		total += m.weight
	}
	n := rng.Intn(total)
	for _, m := range mix {
		n -= m.weight
		if n < 0 {
			return m.name
		}
	}
	return mix[len(mix)-1].name
}

// Report is the JSON output: the achieved load, outcome counts, latency
// percentiles, and the server's own batching stats scraped at the end.
type Report struct {
	// Mode is "self" (in-process server) or "remote".
	Mode string `json:"mode"`
	// Protocol is "json" (HTTP) or "wire" (elpwire).
	Protocol string `json:"protocol"`
	// Workload is "ops" (the bitwise op mix) or "query" (bitmap-index
	// predicates through /v1/query).
	Workload string `json:"workload"`
	// Clients is the concurrent client count.
	Clients int `json:"clients"`
	// Conns is the shared multiplexed-connection pool size (wire mode
	// only; 0 for HTTP, where each request rides the pooled http.Client).
	Conns int `json:"conns,omitempty"`
	// DurationS is the configured load duration in seconds.
	DurationS float64 `json:"duration_s"`
	// TargetQPS is the offered open-loop rate (0 for closed loop).
	TargetQPS float64 `json:"target_qps"`
	// Bits is the operand vector length.
	Bits int `json:"bits"`
	// Requests counts issued requests; OK/Rejected503/Deadline504/Errors
	// partition their outcomes; Shed counts open-loop tokens dropped
	// because every client was busy.
	Requests    int64 `json:"requests"`
	OK          int64 `json:"ok"`
	Rejected503 int64 `json:"rejected_503"`
	Deadline504 int64 `json:"deadline_504"`
	Errors      int64 `json:"errors"`
	Shed        int64 `json:"shed"`
	// VerifyChecks and VerifyFailures count client-side result
	// verifications against the local mirror.
	VerifyChecks   int64 `json:"verify_checks"`
	VerifyFailures int64 `json:"verify_failures"`
	// Shards is the target server's shard count (from the final stats
	// scrape; 0 when the scrape failed).
	Shards int `json:"shards"`
	// AchievedQPS is completed (OK) requests per wall second.
	AchievedQPS float64 `json:"achieved_qps"`
	// ModeledQPS is completed (OK) requests divided by the modeled
	// hardware makespan: the MAX over the per-shard modeled busy times
	// (shards are concurrently executing ranks), or the single module's
	// total modeled latency when unsharded. Unlike AchievedQPS it is
	// independent of the host's core count, so it is the number that shows
	// the modeled hardware's throughput scaling with -shards. Zero when
	// the final stats scrape failed.
	ModeledQPS float64 `json:"modeled_qps"`
	// LatencyMS summarizes successful-request latency.
	LatencyMS LatencySummary `json:"latency_ms"`
	// Server is the target's /v1/stats scrape after the run (null when
	// unreachable).
	Server *server.StatsPayload `json:"server,omitempty"`
	// Host records the load generator's execution context, so achieved
	// (wall-clock) throughput numbers stay interpretable across machines
	// — e.g. flat QPS-vs-shards curves on a single-core runner.
	Host HostInfo `json:"host"`
}

// HostInfo is the runner's execution context, embedded in every report.
type HostInfo struct {
	// GoVersion is the toolchain that built the binary (runtime.Version).
	GoVersion string `json:"go_version"`
	// NumCPU is the machine's logical CPU count.
	NumCPU int `json:"num_cpu"`
	// GOMAXPROCS is the scheduler's parallelism bound during the run.
	GOMAXPROCS int `json:"gomaxprocs"`
}

// hostInfo snapshots the running process's execution context.
func hostInfo() HostInfo {
	return HostInfo{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// LatencySummary is the latency percentile block, in milliseconds.
type LatencySummary struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// clientStats is one worker's tallies, merged after the run.
type clientStats struct {
	latenciesMS []float64
	requests    int64
	ok          int64
	rejected    int64
	deadline    int64
	errors      int64
	checks      int64
	failures    int64
	firstErr    error
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("elpload", flag.ContinueOnError)
	addr := fs.String("addr", "", "target elpd address (empty: in-process server)")
	wireMode := fs.Bool("wire", false, "speak the elpwire binary protocol instead of HTTP/JSON")
	queryMode := fs.Bool("query", false, "drive the bitmap-index query workload instead of the op mix")
	disableFusion := fs.Bool("disable-fusion", false, "self mode: spawn the server with expression-DAG fusion disabled")
	clients := fs.Int("clients", 64, "concurrent clients")
	conns := fs.Int("conns", 0, "wire mode: multiplexed connections shared by all clients (0 = ceil(clients/16), the server's per-connection worker width; ignored for HTTP)")
	duration := fs.Duration("duration", 2*time.Second, "load duration")
	qps := fs.Float64("qps", 0, "total offered open-loop rate (0 = closed loop)")
	bits := fs.Int("bits", 65536, "vector length per operand")
	mixStr := fs.String("mix", "and=3,or=3,xor=2,reduce=2", "op mix weights")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request deadline")
	verifyEvery := fs.Int("verify-every", 4, "verify every Nth op per client (0 = never)")
	seed := fs.Int64("seed", 1, "base RNG seed")
	window := fs.Duration("window", 200*time.Microsecond, "self-spawned server coalescing window")
	shards := fs.Int("shards", 1, "self-spawned server shard count")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mix, err := parseMix(*mixStr)
	if err != nil {
		return err
	}
	opt := options{
		addr: *addr, wireMode: *wireMode, queryMode: *queryMode, disableFusion: *disableFusion,
		clients: *clients, wireConns: *conns,
		duration: *duration,
		qps:      *qps, bits: *bits, mix: mix, timeout: *timeout, verifyEvery: *verifyEvery,
		seed: *seed, window: *window, shards: *shards,
	}
	if opt.clients < 1 || opt.bits < 8 || opt.bits%8 != 0 {
		return fmt.Errorf("clients must be >= 1 and bits a positive multiple of 8")
	}
	if opt.shards < 1 {
		return fmt.Errorf("shards must be >= 1, got %d", opt.shards)
	}

	mode := "remote"
	target := opt.addr
	var drain func() // self mode: graceful-drain the in-process server
	if opt.addr == "" {
		mode = "self"
		srv, ln, err := spawnServer(opt)
		if err != nil {
			return err
		}
		target = ln.Addr().String()
		if opt.wireMode {
			go func() { _ = srv.ServeWire(ln) }()
			drain = func() {
				srv.Drain()
				_ = ln.Close()
				srv.CloseWireConns()
			}
		} else {
			httpSrv := &http.Server{Handler: srv.Handler()}
			go func() { _ = httpSrv.Serve(ln) }()
			drain = func() {
				srv.Drain()
				_ = httpSrv.Close()
			}
		}
	}

	report, err := drive(opt, target, mode)
	if drain != nil {
		drain()
	}
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	if report.VerifyFailures > 0 {
		return fmt.Errorf("%d result verifications failed", report.VerifyFailures)
	}
	if report.Errors > 0 {
		return fmt.Errorf("%d requests failed with transport or server errors", report.Errors)
	}
	return nil
}

// spawnServer builds the in-process elpd used by -addr "", sharded when
// -shards > 1.
func spawnServer(opt options) (*server.Server, net.Listener, error) {
	cfg := server.Config{
		Window:         opt.window,
		DisableWindow:  opt.window == 0,
		RequestTimeout: opt.timeout,
	}
	mutate := func(c *elp2im.Config) {
		c.DisableFusion = opt.disableFusion
	}
	if opt.shards > 1 {
		sh, err := elp2im.NewShard(opt.shards, mutate)
		if err != nil {
			return nil, nil, err
		}
		cfg.Shard = sh
	} else {
		acc, err := elp2im.New(mutate)
		if err != nil {
			return nil, nil, err
		}
		cfg.Accelerator = acc
	}
	srv, err := server.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	return srv, ln, nil
}

// drive runs the load and assembles the report.
func drive(opt options, target, mode string) (*Report, error) {
	protocol := "json"
	if opt.wireMode {
		protocol = "wire"
	}
	// One transport per worker: a pooled HTTP client connection, or one
	// persistent multiplexed elpwire connection. An extra transport scrapes
	// the final stats.
	mkTransport := newTransportFactory(opt, target)
	transports := make([]transport, opt.clients)
	for i := range transports {
		tr, err := mkTransport()
		if err != nil {
			return nil, fmt.Errorf("client %d: connect: %w", i, err)
		}
		transports[i] = tr
		defer tr.close()
	}

	// Open-loop token source: tokens carry their emission time so client
	// queueing counts against latency, as an open-loop measurement must.
	var tokens chan time.Time
	var shed int64
	stopDispatch := make(chan struct{})
	var dispatchWG sync.WaitGroup
	if opt.qps > 0 {
		tokens = make(chan time.Time, opt.clients*4)
		interval := time.Duration(float64(time.Second) / opt.qps)
		if interval <= 0 {
			interval = time.Microsecond
		}
		dispatchWG.Add(1)
		go func() {
			defer dispatchWG.Done()
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-stopDispatch:
					return
				case t := <-tick.C:
					select {
					case tokens <- t:
					default:
						shed++
					}
				}
			}
		}()
	}

	deadline := time.Now().Add(opt.duration)
	stats := make([]*clientStats, opt.clients)
	var wg sync.WaitGroup
	for i := 0; i < opt.clients; i++ {
		stats[i] = &clientStats{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if opt.queryMode {
				stats[i].firstErr = runQueryClient(opt, transports[i], i, deadline, tokens, stats[i])
			} else {
				stats[i].firstErr = runClient(opt, transports[i], i, deadline, tokens, stats[i])
			}
		}(i)
	}
	wg.Wait()
	if tokens != nil {
		close(stopDispatch)
		dispatchWG.Wait()
	}

	workload := "ops"
	if opt.queryMode {
		workload = "query"
	}
	report := &Report{
		Mode: mode, Protocol: protocol, Workload: workload, Clients: opt.clients,
		DurationS: opt.duration.Seconds(),
		TargetQPS: opt.qps, Bits: opt.bits, Shed: shed,
		Host: hostInfo(),
	}
	if opt.wireMode {
		report.Conns = opt.wirePoolSize()
	}
	var all []float64
	for _, cs := range stats {
		if cs.firstErr != nil {
			return nil, cs.firstErr
		}
		report.Requests += cs.requests
		report.OK += cs.ok
		report.Rejected503 += cs.rejected
		report.Deadline504 += cs.deadline
		report.Errors += cs.errors
		report.VerifyChecks += cs.checks
		report.VerifyFailures += cs.failures
		all = append(all, cs.latenciesMS...)
	}
	report.AchievedQPS = float64(report.OK) / opt.duration.Seconds()
	report.LatencyMS = summarize(all)
	if sp, err := transports[0].scrapeStats(); err == nil {
		report.Server = sp
		report.Shards = sp.Server.Shards
		report.ModeledQPS = modeledQPS(report.OK, sp)
	}
	return report, nil
}

// modeledQPS divides completed operations by the modeled hardware
// makespan. Shards model concurrently executing ranks with private charge
// pumps, so the makespan is the MAX over the per-shard modeled busy times;
// a single module's makespan is its total modeled latency.
func modeledQPS(ok int64, sp *server.StatsPayload) float64 {
	makespanNS := sp.Totals.LatencyNS
	if len(sp.Server.PerShard) > 0 {
		perShardMax := 0.0
		for _, ss := range sp.Server.PerShard {
			if ss.ModeledBusyNS > perShardMax {
				perShardMax = ss.ModeledBusyNS
			}
		}
		// Scatter-gather work (the query workload) runs every request
		// across all shards at once and accounts its modeled cost
		// centrally, leaving per-shard busy time at zero; the aggregate
		// total is the makespan then.
		if perShardMax > 0 {
			makespanNS = perShardMax
		}
	}
	if makespanNS <= 0 {
		return 0
	}
	return float64(ok) / (makespanNS / 1e9)
}

// clientRNGs returns one worker's two independent PRNG streams. The op
// stream drives the workload — vector contents and the op sequence — and
// is a pure function of (seed, id). The jitter stream drives backpressure
// backoff sleeps, whose draw count depends on how many 503s the server
// happened to answer; keeping it separate means load-dependent backoff
// can never perturb the deterministic workload sequence (it used to:
// both drew from one PRNG, so a single 503 shifted every op after it).
func clientRNGs(seed int64, id int) (opRNG, jitterRNG *rand.Rand) {
	base := seed + int64(id)*7919
	opRNG = rand.New(rand.NewSource(base))
	jitterRNG = rand.New(rand.NewSource(base ^ 0x5DEECE66D))
	return opRNG, jitterRNG
}

// runClient is one worker: set up its vectors, then issue ops until the
// deadline, verifying results against the local mirror. The returned
// error is fatal (setup failure); per-request failures are tallied.
func runClient(opt options, tr transport, id int, deadline time.Time, tokens <-chan time.Time, cs *clientStats) error {
	opRNG, jitterRNG := clientRNGs(opt.seed, id)
	pfx := fmt.Sprintf("c%d_", id)
	nbytes := opt.bits / 8
	mirror := map[string][]byte{}
	for _, v := range []string{"a", "b", "d"} {
		raw := make([]byte, nbytes)
		opRNG.Read(raw)
		mirror[v] = raw
		if err := tr.putVector(pfx+v, raw); err != nil {
			return fmt.Errorf("client %d: setup PUT %s: %w", id, v, err)
		}
	}

	sinceVerify := 0
	for {
		start := time.Now()
		if !start.Before(deadline) {
			return nil
		}
		if tokens != nil {
			select {
			case t := <-tokens:
				start = t // open-loop: latency from intended send time
			case <-time.After(time.Until(deadline)):
				return nil
			}
		}
		op := pick(opt.mix, opRNG)
		outcome, err := tr.issueOp(pfx, op)
		cs.requests++
		if err != nil {
			cs.errors++
			continue
		}
		switch outcome {
		case outcomeOK:
			cs.ok++
			cs.latenciesMS = append(cs.latenciesMS, float64(time.Since(start).Microseconds())/1000)
		case outcomeRejected:
			cs.rejected++
			time.Sleep(time.Duration(500+jitterRNG.Intn(1500)) * time.Microsecond)
			continue
		case outcomeDeadline:
			cs.deadline++
			continue
		default:
			cs.errors++
			continue
		}

		sinceVerify++
		if opt.verifyEvery > 0 && sinceVerify >= opt.verifyEvery {
			sinceVerify = 0
			cs.checks++
			want := expected(op, mirror)
			got, err := tr.getVector(pfx + "r")
			if err != nil {
				cs.errors++
				continue
			}
			if !bytes.Equal(got, want) {
				cs.failures++
			}
		}
	}
}

// queryIndexCount is the per-namespace index count of the query workload.
const queryIndexCount = 8

// queryTemplates are the predicate shapes the query workload draws from,
// each paired with its host-side byte oracle over the three drawn
// indices (repeats are legal predicates and the oracle handles them
// naturally).
var queryTemplates = []struct {
	render func(a, b, c string) string
	host   func(a, b, c byte) byte
}{
	{func(a, b, _ string) string { return fmt.Sprintf("%s & %s", a, b) },
		func(a, b, _ byte) byte { return a & b }},
	{func(a, b, c string) string { return fmt.Sprintf("(%s & %s) | ~%s", a, b, c) },
		func(a, b, c byte) byte { return (a & b) | ^c }},
	{func(a, b, c string) string { return fmt.Sprintf("%s ^ %s ^ %s", a, b, c) },
		func(a, b, c byte) byte { return a ^ b ^ c }},
	{func(a, b, c string) string { return fmt.Sprintf("(%s | %s) & ~%s", a, b, c) },
		func(a, b, c byte) byte { return (a | b) & ^c }},
}

// runQueryClient is one query-workload worker: it owns the namespace
// c<id> holding queryIndexCount random indices mirrored host-side, and
// issues boolean-predicate queries whose indices are drawn with Zipfian
// popularity (hot indices recur, exercising the eval cache the way a
// real analytics tenant would) and whose result mode mixes count,
// positions and bits. Every Nth response is verified bit-for-bit against
// the host oracle: cardinality for count mode, the match vector for bits
// mode, and the exact page plus resume cursor for positions mode.
func runQueryClient(opt options, tr transport, id int, deadline time.Time, tokens <-chan time.Time, cs *clientStats) error {
	opRNG, jitterRNG := clientRNGs(opt.seed, id)
	ns := fmt.Sprintf("c%d", id)
	nbytes := opt.bits / 8
	names := make([]string, queryIndexCount)
	mirror := make(map[string][]byte, queryIndexCount)
	for i := range names {
		names[i] = fmt.Sprintf("i%d", i)
		raw := make([]byte, nbytes)
		opRNG.Read(raw)
		mirror[names[i]] = raw
		if err := tr.putVector(ns+"/"+names[i], raw); err != nil {
			return fmt.Errorf("client %d: setup PUT %s: %w", id, names[i], err)
		}
	}
	zipf := rand.NewZipf(opRNG, 1.3, 1, queryIndexCount-1)

	sinceVerify := 0
	for {
		start := time.Now()
		if !start.Before(deadline) {
			return nil
		}
		if tokens != nil {
			select {
			case t := <-tokens:
				start = t
			case <-time.After(time.Until(deadline)):
				return nil
			}
		}
		a, b, c := names[zipf.Uint64()], names[zipf.Uint64()], names[zipf.Uint64()]
		tmpl := queryTemplates[opRNG.Intn(len(queryTemplates))]
		call := queryCall{namespace: ns, predicate: tmpl.render(a, b, c)}
		// Mode mix: count 2/5, positions 2/5, bits 1/5.
		switch opRNG.Intn(5) {
		case 0, 1:
			call.mode = wire.QueryCount
		case 2, 3:
			call.mode = wire.QueryPositions
			call.limit = 1024
			call.cursor = uint64(opRNG.Intn(opt.bits))
		default:
			call.mode = wire.QueryBits
		}
		reply, oc, err := tr.issueQuery(call)
		cs.requests++
		if err != nil {
			cs.errors++
			continue
		}
		switch oc {
		case outcomeOK:
			cs.ok++
			cs.latenciesMS = append(cs.latenciesMS, float64(time.Since(start).Microseconds())/1000)
		case outcomeRejected:
			cs.rejected++
			time.Sleep(time.Duration(500+jitterRNG.Intn(1500)) * time.Microsecond)
			continue
		case outcomeDeadline:
			cs.deadline++
			continue
		default:
			cs.errors++
			continue
		}

		sinceVerify++
		if opt.verifyEvery > 0 && sinceVerify >= opt.verifyEvery {
			sinceVerify = 0
			cs.checks++
			if !verifyQuery(call, reply, tmpl.host, mirror[a], mirror[b], mirror[c], opt.bits) {
				cs.failures++
			}
		}
	}
}

// verifyQuery checks one query reply bit-for-bit against the host
// oracle's evaluation of the same predicate over the mirrored indices.
func verifyQuery(call queryCall, reply *queryReply, host func(a, b, c byte) byte, a, b, c []byte, bits int) bool {
	if reply.bits != bits {
		return false
	}
	want := make([]byte, len(a))
	count := uint64(0)
	for i := range want {
		want[i] = host(a[i], b[i], c[i])
		count += uint64(mathbits.OnesCount8(want[i]))
	}
	if reply.count != count {
		return false
	}
	switch call.mode {
	case wire.QueryBits:
		return bytes.Equal(reply.data, want)
	case wire.QueryPositions:
		var positions []uint64
		next := uint64(0)
		for i := int(call.cursor); i < bits; i++ {
			if want[i/8]&(1<<(i%8)) == 0 {
				continue
			}
			if len(positions) == int(call.limit) {
				next = positions[len(positions)-1] + 1
				break
			}
			positions = append(positions, uint64(i))
		}
		if len(reply.positions) != len(positions) || reply.next != next {
			return false
		}
		for i := range positions {
			if reply.positions[i] != positions[i] {
				return false
			}
		}
	}
	return true
}

// expected computes the local mirror of dst after op.
func expected(op string, mirror map[string][]byte) []byte {
	a, b, d := mirror["a"], mirror["b"], mirror["d"]
	out := make([]byte, len(a))
	for i := range a {
		switch op {
		case "and":
			out[i] = a[i] & b[i]
		case "or":
			out[i] = a[i] | b[i]
		case "xor":
			out[i] = a[i] ^ b[i]
		case "nand":
			out[i] = ^(a[i] & b[i])
		case "nor":
			out[i] = ^(a[i] | b[i])
		case "xnor":
			out[i] = ^(a[i] ^ b[i])
		case "not":
			out[i] = ^a[i]
		case "copy":
			out[i] = a[i]
		case "reduce":
			out[i] = a[i] & b[i] & d[i]
		}
	}
	return out
}

// outcome classifies one op request's result, uniformly across the two
// protocols: HTTP statuses and wire statuses collapse onto the same
// classes, so the report means the same thing in either mode.
type outcome int

const (
	outcomeOK       outcome = iota
	outcomeRejected         // 503 / saturated / draining (backoff and retry)
	outcomeDeadline         // 504 / deadline
	outcomeError            // anything else
)

// transport issues the workload's requests over one protocol. Each worker
// owns one transport; implementations need not be safe for concurrent
// use.
type transport interface {
	putVector(name string, raw []byte) error
	getVector(name string) ([]byte, error)
	issueOp(pfx, op string) (outcome, error)
	issueQuery(q queryCall) (*queryReply, outcome, error)
	scrapeStats() (*server.StatsPayload, error)
	close()
}

// queryCall is one bitmap-index query, protocol-independent (mode is the
// wire code; the JSON transport maps it to the mode string).
type queryCall struct {
	namespace string
	predicate string
	mode      uint8
	cursor    uint64
	limit     uint32
}

// queryReply is the protocol-independent query response: the universe
// width and cardinality, plus the mode-specific payload.
type queryReply struct {
	bits      int
	count     uint64
	data      []byte   // bits mode: the match vector's raw bytes
	positions []uint64 // positions mode: the page
	next      uint64   // positions mode: the resume cursor (0 = exhausted)
}

// queryModeNames maps the wire mode codes onto the JSON mode strings.
var queryModeNames = [...]string{wire.QueryCount: "count", wire.QueryBits: "bits", wire.QueryPositions: "positions"}

// newTransportFactory returns a constructor for per-worker transports
// against the target address (host:port for wire, HTTP base otherwise).
func newTransportFactory(opt options, target string) func() (transport, error) {
	if opt.wireMode {
		// Workers share a bounded pool of multiplexed connections instead
		// of dialing one each: with many in-flight requests per connection
		// the server's response coalescer (and the client's request
		// writer) batch frames into shared writev syscalls. The default
		// pool size matches the server's per-connection worker width, so
		// pipelining depth is preserved. Sharing a *wire.Client across
		// transports is safe (it is concurrency-safe and Close is
		// idempotent).
		n := opt.wirePoolSize()
		var mu sync.Mutex
		var pool []*wire.Client
		next := 0
		return func() (transport, error) {
			mu.Lock()
			defer mu.Unlock()
			var c *wire.Client
			if len(pool) < n {
				nc, err := wire.Dial(target)
				if err != nil {
					return nil, err
				}
				pool = append(pool, nc)
				c = nc
			} else {
				c = pool[next%len(pool)]
				next++
			}
			return &wireTransport{c: c, timeoutMS: uint32(opt.timeout.Milliseconds())}, nil
		}
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        opt.clients * 2,
		MaxIdleConnsPerHost: opt.clients * 2,
	}}
	base := "http://" + target
	return func() (transport, error) {
		return &jsonTransport{client: client, base: base, timeout: opt.timeout}, nil
	}
}

// jsonTransport is the HTTP/JSON path (shared pooled http.Client).
type jsonTransport struct {
	client  *http.Client
	base    string
	timeout time.Duration
}

// issueOp posts one op/reduce request and classifies the HTTP status.
func (t *jsonTransport) issueOp(pfx, op string) (outcome, error) {
	var path string
	var body any
	if op == "reduce" {
		path = "/v1/reduce"
		body = server.ReduceRequest{Op: "and", Dst: pfx + "r", Srcs: []string{pfx + "a", pfx + "b", pfx + "d"}}
	} else {
		path = "/v1/op"
		body = server.OpRequest{Op: op, Dst: pfx + "r", X: pfx + "a", Y: pfx + "b"}
	}
	raw, err := json.Marshal(body)
	if err != nil {
		return outcomeError, err
	}
	url := fmt.Sprintf("%s%s?timeout_ms=%d", t.base, path, t.timeout.Milliseconds())
	resp, err := t.client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return outcomeError, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	switch resp.StatusCode {
	case http.StatusOK:
		return outcomeOK, nil
	case http.StatusServiceUnavailable:
		return outcomeRejected, nil
	case http.StatusGatewayTimeout:
		return outcomeDeadline, nil
	default:
		return outcomeError, nil
	}
}

// issueQuery posts one /v1/query request and classifies the HTTP status.
func (t *jsonTransport) issueQuery(q queryCall) (*queryReply, outcome, error) {
	body := server.QueryRequest{
		Namespace: q.namespace, Predicate: q.predicate,
		Mode: queryModeNames[q.mode], Cursor: int(q.cursor), Limit: int(q.limit),
	}
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, outcomeError, err
	}
	url := fmt.Sprintf("%s/v1/query?timeout_ms=%d", t.base, t.timeout.Milliseconds())
	resp, err := t.client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return nil, outcomeError, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusServiceUnavailable:
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, outcomeRejected, nil
	case http.StatusGatewayTimeout:
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, outcomeDeadline, nil
	default:
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, outcomeError, nil
	}
	var qr server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return nil, outcomeError, err
	}
	reply := &queryReply{bits: qr.Bits, count: uint64(qr.Count), next: uint64(qr.NextCursor)}
	if q.mode == wire.QueryBits {
		if reply.data, err = base64.StdEncoding.DecodeString(qr.Data); err != nil {
			return nil, outcomeError, err
		}
	}
	if q.mode == wire.QueryPositions {
		reply.positions = make([]uint64, len(qr.Positions))
		for i, p := range qr.Positions {
			reply.positions[i] = uint64(p)
		}
	}
	return reply, outcomeOK, nil
}

// putVector stores raw bytes under name.
func (t *jsonTransport) putVector(name string, raw []byte) error {
	payload := server.VectorPayload{Bits: len(raw) * 8, Data: base64.StdEncoding.EncodeToString(raw)}
	body, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPut, t.base+"/v1/vectors/"+name, bytes.NewReader(body))
	if err != nil {
		return err
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("PUT %s: status %d", name, resp.StatusCode)
	}
	return nil
}

// getVector fetches a vector's raw bytes.
func (t *jsonTransport) getVector(name string) ([]byte, error) {
	resp, err := t.client.Get(t.base + "/v1/vectors/" + name)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", name, resp.StatusCode)
	}
	var payload server.VectorPayload
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return nil, err
	}
	return base64.StdEncoding.DecodeString(payload.Data)
}

// scrapeStats fetches the target's /v1/stats.
func (t *jsonTransport) scrapeStats() (*server.StatsPayload, error) {
	resp, err := t.client.Get(t.base + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var sp server.StatsPayload
	if err := json.NewDecoder(resp.Body).Decode(&sp); err != nil {
		return nil, err
	}
	return &sp, nil
}

// close is a no-op: the pooled http.Client is shared across workers.
func (t *jsonTransport) close() {}

// wireOpCodes maps the mix's op names onto wire op codes.
var wireOpCodes = map[string]uint8{
	"not": wire.BitNot, "and": wire.BitAnd, "or": wire.BitOr,
	"nand": wire.BitNand, "nor": wire.BitNor, "xor": wire.BitXor,
	"xnor": wire.BitXnor, "copy": wire.BitCopy,
}

// wireTransport is the elpwire path: workers share persistent
// multiplexed connections from the -conns pool (see
// newTransportFactory), so concurrent requests pipeline and their
// frames coalesce into shared writev flushes on both sides.
type wireTransport struct {
	c         *wire.Client
	timeoutMS uint32
}

// issueOp executes one op/reduce over the wire and classifies the status.
func (t *wireTransport) issueOp(pfx, op string) (outcome, error) {
	var err error
	if op == "reduce" {
		_, err = t.c.Reduce(wire.BitAnd, t.timeoutMS, pfx+"r", []string{pfx + "a", pfx + "b", pfx + "d"})
	} else {
		code, ok := wireOpCodes[op]
		if !ok {
			return outcomeError, fmt.Errorf("no wire code for op %q", op)
		}
		y := pfx + "b"
		if op == "not" || op == "copy" {
			y = ""
		}
		_, err = t.c.Op(code, t.timeoutMS, pfx+"r", pfx+"a", y)
	}
	if err == nil {
		return outcomeOK, nil
	}
	var se *wire.StatusError
	if errors.As(err, &se) {
		switch se.Code {
		case wire.StatusSaturated, wire.StatusDraining:
			return outcomeRejected, nil
		case wire.StatusDeadline:
			return outcomeDeadline, nil
		default:
			return outcomeError, nil
		}
	}
	return outcomeError, err // transport-level failure
}

// issueQuery executes one KindQuery request and classifies the status.
func (t *wireTransport) issueQuery(q queryCall) (*queryReply, outcome, error) {
	qr, err := t.c.Query(t.timeoutMS, q.namespace, q.predicate, q.mode, q.cursor, q.limit)
	if err != nil {
		var se *wire.StatusError
		if errors.As(err, &se) {
			switch se.Code {
			case wire.StatusSaturated, wire.StatusDraining:
				return nil, outcomeRejected, nil
			case wire.StatusDeadline:
				return nil, outcomeDeadline, nil
			default:
				return nil, outcomeError, nil
			}
		}
		return nil, outcomeError, err
	}
	reply := &queryReply{bits: qr.Bits, count: qr.Count, positions: qr.Positions, next: qr.NextCursor}
	if q.mode == wire.QueryBits {
		reply.data = wordsToBytes(qr.Words, (qr.Bits+7)/8)
	}
	return reply, outcomeOK, nil
}

// putVector stores raw bytes under name as little-endian words.
func (t *wireTransport) putVector(name string, raw []byte) error {
	return t.c.Put(name, len(raw)*8, bytesToWords(raw))
}

// getVector fetches a vector's raw bytes.
func (t *wireTransport) getVector(name string) ([]byte, error) {
	bits, _, words, err := t.c.Get(name, nil)
	if err != nil {
		return nil, err
	}
	return wordsToBytes(words, (bits+7)/8), nil
}

// scrapeStats fetches the stats payload over the wire (the same JSON
// bytes /v1/stats serves).
func (t *wireTransport) scrapeStats() (*server.StatsPayload, error) {
	raw, err := t.c.StatsJSON()
	if err != nil {
		return nil, err
	}
	var sp server.StatsPayload
	if err := json.Unmarshal(raw, &sp); err != nil {
		return nil, err
	}
	return &sp, nil
}

// close tears down the worker's connection.
func (t *wireTransport) close() { _ = t.c.Close() }

// bytesToWords packs raw bytes into little-endian words, zero-padding
// the final partial word.
func bytesToWords(raw []byte) []uint64 {
	words := make([]uint64, (len(raw)+7)/8)
	var buf [8]byte
	for i := range words {
		n := copy(buf[:], raw[i*8:])
		for j := n; j < 8; j++ {
			buf[j] = 0
		}
		words[i] = binary.LittleEndian.Uint64(buf[:])
	}
	return words
}

// wordsToBytes unpacks little-endian words into nbytes raw bytes.
func wordsToBytes(words []uint64, nbytes int) []byte {
	out := make([]byte, len(words)*8)
	for i, w := range words {
		binary.LittleEndian.PutUint64(out[i*8:], w)
	}
	return out[:nbytes]
}

// summarize computes the latency percentile block.
func summarize(ms []float64) LatencySummary {
	if len(ms) == 0 {
		return LatencySummary{}
	}
	sort.Float64s(ms)
	sum := 0.0
	for _, v := range ms {
		sum += v
	}
	q := func(p float64) float64 {
		i := int(p * float64(len(ms)-1))
		return ms[i]
	}
	return LatencySummary{
		Mean: sum / float64(len(ms)),
		P50:  q(0.50),
		P95:  q(0.95),
		P99:  q(0.99),
		Max:  ms[len(ms)-1],
	}
}
