package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/wire"
)

// TestClientRNGDeterminism pins the PRNG split that fixes the workload
// determinism bug: each client's op stream is a pure function of
// (seed, id), so interleaved backoff-jitter draws — which happen only
// when the server sheds load — must not perturb which ops get issued.
// Before the split, one shared *rand.Rand fed both the mix picker and
// the 503 backoff, so a single rejection desynced the whole workload.
func TestClientRNGDeterminism(t *testing.T) {
	mix, err := parseMix("and=3,or=3,xor=2,reduce=2")
	if err != nil {
		t.Fatal(err)
	}
	const draws = 200

	// Reference stream: ops only, no jitter consumed.
	opRNG, _ := clientRNGs(1, 3)
	want := make([]string, draws)
	for i := range want {
		want[i] = pick(mix, opRNG)
	}

	// Same client, but with jitter draws interleaved at varying cadence —
	// as if every few requests hit a 503 and backed off.
	opRNG2, jitterRNG := clientRNGs(1, 3)
	for i := 0; i < draws; i++ {
		if got := pick(mix, opRNG2); got != want[i] {
			t.Fatalf("op %d: got %q, want %q (jitter draws perturbed the op stream)", i, got, want[i])
		}
		for j := 0; j < i%3; j++ {
			_ = jitterRNG.Intn(1500)
		}
	}

	// Distinct clients must not mirror each other's streams.
	otherRNG, _ := clientRNGs(1, 4)
	same := 0
	for i := 0; i < draws; i++ {
		if pick(mix, otherRNG) == want[i] {
			same++
		}
	}
	if same == draws {
		t.Fatalf("client 4 reproduced client 3's entire op stream")
	}

	// Jitter stream differs from the op stream (distinct sources).
	opRNG3, jitterRNG3 := clientRNGs(7, 0)
	if opRNG3.Int63() == jitterRNG3.Int63() {
		t.Fatalf("op and jitter PRNGs share a source")
	}
}

// TestWireOpCodes pins the name→code table against the wire constants
// and requires a code for every op parseMix can emit.
func TestWireOpCodes(t *testing.T) {
	want := map[string]uint8{
		"not": wire.BitNot, "and": wire.BitAnd, "or": wire.BitOr,
		"nand": wire.BitNand, "nor": wire.BitNor, "xor": wire.BitXor,
		"xnor": wire.BitXnor, "copy": wire.BitCopy,
	}
	if len(wireOpCodes) != len(want) {
		t.Fatalf("wireOpCodes has %d entries, want %d", len(wireOpCodes), len(want))
	}
	for name, code := range want {
		if got, ok := wireOpCodes[name]; !ok || got != code {
			t.Errorf("wireOpCodes[%q] = %d, %v; want %d", name, got, ok, code)
		}
	}
	mix, err := parseMix("and=1,or=1,xor=1,not=1,nand=1,nor=1,xnor=1,copy=1")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range mix {
		if _, ok := wireOpCodes[e.name]; !ok {
			t.Errorf("mix op %q has no wire code", e.name)
		}
	}
}

// TestBytesWordsRoundTrip covers the byte↔word packing used by the wire
// transport, including non-multiple-of-8 tails.
func TestBytesWordsRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 511, 512, 513} {
		raw := make([]byte, n)
		for i := range raw {
			raw[i] = byte(i*37 + 11)
		}
		words := bytesToWords(raw)
		if len(words) != (n+7)/8 {
			t.Fatalf("n=%d: got %d words", n, len(words))
		}
		back := wordsToBytes(words, n)
		if !bytes.Equal(back, raw) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

// runSelfSmoke runs one short self-mode load and returns the decoded
// report, failing the test on any transport error or verify failure
// (run itself errors on those).
func runSelfSmoke(t *testing.T, extra ...string) *Report {
	t.Helper()
	args := append([]string{
		"-clients", "4", "-duration", "300ms", "-bits", "2048",
		"-shards", "2", "-verify-every", "2",
	}, extra...)
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v\noutput: %s", args, err, out.String())
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	if rep.OK == 0 {
		t.Fatalf("no successful requests: %+v", rep)
	}
	if rep.VerifyChecks == 0 {
		t.Fatalf("verification never ran: %+v", rep)
	}
	return &rep
}

// TestRunSelfModeJSON is the HTTP-path smoke: a short self-hosted run
// completes with verified results.
func TestRunSelfModeJSON(t *testing.T) {
	rep := runSelfSmoke(t)
	if rep.Protocol != "json" {
		t.Fatalf("protocol = %q, want json", rep.Protocol)
	}
}

// TestRunSelfModeWire is the same smoke over the elpwire binary
// protocol: identical report shape, identical verification, protocol
// tag flipped.
func TestRunSelfModeWire(t *testing.T) {
	rep := runSelfSmoke(t, "-wire")
	if rep.Protocol != "wire" {
		t.Fatalf("protocol = %q, want wire", rep.Protocol)
	}
}
