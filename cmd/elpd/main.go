// Command elpd serves the elp2im accelerator over HTTP: a named
// bit-vector store (plain and vertical bit-sliced vectors) plus single
// ops, reductions, expression evaluation, vertical k-bit arithmetic, and
// bitmap-index queries (POST /v1/query: boolean predicates over the
// "<namespace>/<index>" vectors, answering counts, match bitvectors or
// paginated set-bit positions), with every bitwise write riding the
// dynamic micro-batcher in internal/server (coalescing window, bounded
// admission queue with 503 backpressure, per-request deadlines, graceful
// drain on SIGTERM).
//
// Usage:
//
//	elpd [flags]
//	  -addr string          listen address (default "127.0.0.1:8372"; use :0 for ephemeral)
//	  -wire-addr string     optional second listener speaking elpwire, the
//	                        length-prefixed binary protocol (internal/wire):
//	                        persistent multiplexed connections, raw word
//	                        payloads, zero-allocation hot path. Same store,
//	                        batchers and drain semantics as the HTTP listener.
//	  -design string        elp2im | ambit | drisa (default "elp2im")
//	  -shards int           independent accelerator shards (ranks/channels with
//	                        private charge pumps); vectors place deterministically
//	                        on a home shard and each shard runs its own
//	                        micro-batcher and admission queue (default 1)
//	  -power-constrained    enforce the charge-pump/tFAW activation budget
//	  -disable-fusion       evaluate expressions node-at-a-time (one derived
//	                        kernel per gate) instead of fusing plan clusters
//	                        into k-input kernels; results and modeled costs
//	                        are bit-identical (differential/benchmark knob)
//	  -window duration      micro-batch coalescing window (default 200µs; 0 = pass-through)
//	  -max-batch int        max requests folded into one flush (default 64)
//	  -max-queue int        admission-queue bound; beyond it requests get 503 (default 1024)
//	  -timeout duration     default per-request deadline (default 5s)
//	  -evalcache int        compiled-program LRU entries shared by /v1/eval,
//	                        /v1/query and /v1/arith (expression sources and
//	                        arith (op, width) shapes compile once, then hit;
//	                        default 256)
//	  -no-pipeline          degraded mode: synchronous ops, no micro-batching
//	  -wire-nocoalesce      revert the elpwire listener to one write syscall per
//	                        response instead of writev-batched flushes (the
//	                        response coalescer in internal/wire; benchmarking knob)
//	  -debug-addr string    optional observability endpoint (ServeDebug: /metrics,
//	                        /debug/vars, /debug/pprof) — the server.* series appear
//	                        there next to acc.* and pipeline.*
//
// elpd prints "elpd: listening on <addr>" once ready (scripts/smoke.sh
// parses it) and on SIGTERM/SIGINT drains gracefully: stop admitting,
// flush every queued micro-batch, then exit 0 with "elpd: drained".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	elp2im "repro"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "elpd:", err)
		os.Exit(1)
	}
}

// parseDesign maps the flag value onto the facade's Design.
func parseDesign(s string) (elp2im.Design, error) {
	switch s {
	case "elp2im":
		return elp2im.DesignELP2IM, nil
	case "ambit":
		return elp2im.DesignAmbit, nil
	case "drisa":
		return elp2im.DesignDrisaNOR, nil
	default:
		return 0, fmt.Errorf("unknown design %q (want elp2im, ambit or drisa)", s)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("elpd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8372", "listen address (:0 for ephemeral)")
	wireAddr := fs.String("wire-addr", "", "optional elpwire binary-protocol listener (:0 for ephemeral)")
	designName := fs.String("design", "elp2im", "elp2im | ambit | drisa")
	shards := fs.Int("shards", 1, "independent accelerator shards (each with its own micro-batcher)")
	powerConstrained := fs.Bool("power-constrained", false, "enforce the charge-pump/tFAW activation budget")
	disableFusion := fs.Bool("disable-fusion", false, "evaluate expressions node-at-a-time instead of with fused cluster kernels")
	window := fs.Duration("window", 200*time.Microsecond, "micro-batch coalescing window (0 = pass-through)")
	maxBatch := fs.Int("max-batch", 64, "max requests folded into one flush")
	maxQueue := fs.Int("max-queue", 1024, "admission-queue bound (503 beyond it)")
	timeout := fs.Duration("timeout", 5*time.Second, "default per-request deadline")
	evalCache := fs.Int("evalcache", 0, "compiled-program cache entries for eval/arith (0 = default 256)")
	noPipeline := fs.Bool("no-pipeline", false, "degraded mode: synchronous ops, no micro-batching")
	wireNoCoalesce := fs.Bool("wire-nocoalesce", false, "one write syscall per wire response instead of writev-batched flushes")
	debugAddr := fs.String("debug-addr", "", "optional ServeDebug endpoint (/metrics, /debug/pprof)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	design, err := parseDesign(*designName)
	if err != nil {
		return err
	}
	if *shards < 1 {
		return fmt.Errorf("shards must be >= 1, got %d", *shards)
	}
	mutate := func(c *elp2im.Config) {
		c.Design = design
		c.PowerConstrained = *powerConstrained
		c.DisableFusion = *disableFusion
	}
	cfg := server.Config{
		Window:                *window,
		DisableWindow:         *window == 0,
		MaxBatch:              *maxBatch,
		MaxQueue:              *maxQueue,
		Degraded:              *noPipeline,
		RequestTimeout:        *timeout,
		EvalCacheSize:         *evalCache,
		WireDisableCoalescing: *wireNoCoalesce,
	}
	// serveDebug starts the observability endpoint over whichever backend
	// owns the metric registries (the shard router's merged view when
	// sharded).
	var serveDebug func(string) (*elp2im.DebugServer, error)
	var designLabel string
	if *shards > 1 {
		sh, err := elp2im.NewShard(*shards, mutate)
		if err != nil {
			return err
		}
		cfg.Shard = sh
		serveDebug = sh.ServeDebug
		designLabel = sh.Design()
	} else {
		acc, err := elp2im.New(mutate)
		if err != nil {
			return err
		}
		cfg.Accelerator = acc
		serveDebug = acc.ServeDebug
		designLabel = acc.Design()
	}
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}

	if *debugAddr != "" {
		dbg, err := serveDebug(*debugAddr)
		if err != nil {
			return err
		}
		defer dbg.Close()
		fmt.Printf("elpd: debug endpoint on %s\n", dbg.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Printf("elpd: %s design, %d shard(s), window %v, max batch %d, max queue %d\n",
		designLabel, srv.Shards(), *window, *maxBatch, *maxQueue)
	fmt.Printf("elpd: listening on %s\n", ln.Addr())

	// Optional elpwire listener: the binary protocol serves from the same
	// Server (store, batchers, admission, drain) as the HTTP mux.
	var wireLn net.Listener
	wireErrCh := make(chan error, 1)
	if *wireAddr != "" {
		wireLn, err = net.Listen("tcp", *wireAddr)
		if err != nil {
			return err
		}
		go func() {
			// A clean listener close returns nil; only faults surface.
			if werr := srv.ServeWire(wireLn); werr != nil {
				wireErrCh <- werr
			}
		}()
		fmt.Printf("elpd: wire listening on %s\n", wireLn.Addr())
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		return err
	case err := <-wireErrCh:
		return fmt.Errorf("wire listener: %w", err)
	case sig := <-sigCh:
		fmt.Printf("elpd: %v, draining\n", sig)
	}

	// Graceful drain: stop admitting new operations (everything already
	// queued still flushes), let in-flight handlers finish, then stop the
	// listener and the batcher.
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// Wire clients have been answering draining errors since Drain; now
	// stop accepting and end the remaining connections.
	if wireLn != nil {
		_ = wireLn.Close()
		srv.CloseWireConns()
	}
	st := srv.Stats()
	fmt.Printf("elpd: drained (%d batches flushed, %d requests coalesced, mean occupancy %.2f)\n",
		st.Server.BatchesFlushed, st.Server.RequestsCoalesced, st.Server.MeanBatchOccupancy)
	return nil
}
