// Command waveform emits the Figure 10 circuit traces — an APP-AP
// two-cycle operation on one DRAM column — as CSV for plotting, or as an
// ASCII strip chart.
//
// Usage:
//
//	waveform [-op or|and] [-a 0|1] [-b 0|1] [-ascii] [-short]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analog"
	"repro/internal/timing"
)

func main() {
	op := flag.String("op", "or", "logic operation: or | and")
	a := flag.Int("a", 1, "bit read in the first cycle (0 or 1)")
	b := flag.Int("b", 0, "bit stored in the second cell (0 or 1)")
	ascii := flag.Bool("ascii", false, "render an ASCII strip chart instead of CSV")
	pngPath := flag.String("png", "", "write a PNG plot to this file instead of CSV")
	short := flag.Bool("short", false, "use the short-bitline (Cb < Cc) circuit")
	strategy := flag.String("strategy", "regular", "pseudo-precharge strategy: regular | complementary (§4.1)")
	flag.Parse()

	var strat analog.Strategy
	switch *strategy {
	case "regular":
		strat = analog.StrategyRegular
	case "complementary":
		strat = analog.StrategyComplementary
	default:
		fmt.Fprintln(os.Stderr, "waveform: -strategy must be regular|complementary")
		os.Exit(2)
	}

	var tcOp analog.TwoCycleOp
	switch *op {
	case "or":
		tcOp = analog.TwoCycleOR
	case "and":
		tcOp = analog.TwoCycleAND
	default:
		fmt.Fprintln(os.Stderr, "waveform: -op must be or|and")
		os.Exit(2)
	}
	if (*a != 0 && *a != 1) || (*b != 0 && *b != 1) {
		fmt.Fprintln(os.Stderr, "waveform: -a and -b must be 0 or 1")
		os.Exit(2)
	}

	circuit := analog.Default()
	if *short {
		circuit = analog.ShortBitline()
	}
	wf := analog.SimulateAPPAPStrategy(circuit, timing.DDR31600(), tcOp, strat, *a == 1, *b == 1)
	switch {
	case *pngPath != "":
		f, err := os.Create(*pngPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "waveform:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := wf.RenderPNG(f, 960, 360); err != nil {
			fmt.Fprintln(os.Stderr, "waveform:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%s(%d,%d) -> %d)\n", *pngPath, *op, *a, *b, boolToInt(wf.Result))
	case *ascii:
		fmt.Print(wf.RenderASCII(110))
	default:
		fmt.Print(wf.CSV())
	}
}

func boolToInt(v bool) int {
	if v {
		return 1
	}
	return 0
}
