// Command waveform emits the Figure 10 circuit traces — an APP-AP
// two-cycle operation on one DRAM column — as CSV for plotting, or as an
// ASCII strip chart.
//
// Usage:
//
//	waveform [-op or|and] [-a 0|1] [-b 0|1] [-ascii] [-short] [-png file] [-chrome file]
//
// -chrome exports the trace's phase timeline (one span per contiguous
// circuit phase, nanosecond-accurate) as a Chrome trace_event file for
// chrome://tracing / Perfetto.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analog"
	"repro/internal/obs"
	"repro/internal/timing"
)

func main() {
	op := flag.String("op", "or", "logic operation: or | and")
	a := flag.Int("a", 1, "bit read in the first cycle (0 or 1)")
	b := flag.Int("b", 0, "bit stored in the second cell (0 or 1)")
	ascii := flag.Bool("ascii", false, "render an ASCII strip chart instead of CSV")
	pngPath := flag.String("png", "", "write a PNG plot to this file instead of CSV")
	chromePath := flag.String("chrome", "", "write the phase timeline as a Chrome trace_event file")
	short := flag.Bool("short", false, "use the short-bitline (Cb < Cc) circuit")
	strategy := flag.String("strategy", "regular", "pseudo-precharge strategy: regular | complementary (§4.1)")
	flag.Parse()

	var strat analog.Strategy
	switch *strategy {
	case "regular":
		strat = analog.StrategyRegular
	case "complementary":
		strat = analog.StrategyComplementary
	default:
		fmt.Fprintln(os.Stderr, "waveform: -strategy must be regular|complementary")
		os.Exit(2)
	}

	var tcOp analog.TwoCycleOp
	switch *op {
	case "or":
		tcOp = analog.TwoCycleOR
	case "and":
		tcOp = analog.TwoCycleAND
	default:
		fmt.Fprintln(os.Stderr, "waveform: -op must be or|and")
		os.Exit(2)
	}
	if (*a != 0 && *a != 1) || (*b != 0 && *b != 1) {
		fmt.Fprintln(os.Stderr, "waveform: -a and -b must be 0 or 1")
		os.Exit(2)
	}

	circuit := analog.Default()
	if *short {
		circuit = analog.ShortBitline()
	}
	wf := analog.SimulateAPPAPStrategy(circuit, timing.DDR31600(), tcOp, strat, *a == 1, *b == 1)
	switch {
	case *chromePath != "":
		f, err := os.Create(*chromePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "waveform:", err)
			os.Exit(1)
		}
		defer f.Close()
		spans := phaseSpans(wf, *op)
		if err := obs.WriteChromeTrace(f, spans); err != nil {
			fmt.Fprintln(os.Stderr, "waveform:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d phase spans to %s (%s(%d,%d) -> %d)\n",
			len(spans), *chromePath, *op, *a, *b, boolToInt(wf.Result))
	case *pngPath != "":
		f, err := os.Create(*pngPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "waveform:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := wf.RenderPNG(f, 960, 360); err != nil {
			fmt.Fprintln(os.Stderr, "waveform:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%s(%d,%d) -> %d)\n", *pngPath, *op, *a, *b, boolToInt(wf.Result))
	case *ascii:
		fmt.Print(wf.RenderASCII(110))
	default:
		fmt.Print(wf.CSV())
	}
}

// phaseSpans collapses the waveform's samples into one span per contiguous
// circuit phase. Sample times are ns since sequence start, which map
// directly onto SpanEvent's nanosecond fields (the exporter rebases to the
// first span, so the absolute origin is irrelevant).
func phaseSpans(wf analog.Waveform, op string) []obs.SpanEvent {
	var spans []obs.SpanEvent
	for i := 0; i < len(wf.Samples); {
		j := i
		for j < len(wf.Samples) && wf.Samples[j].Phase == wf.Samples[i].Phase {
			j++
		}
		start := int64(wf.Samples[i].T)
		end := start
		if j < len(wf.Samples) {
			end = int64(wf.Samples[j].T)
		} else if j > i {
			end = int64(wf.Samples[j-1].T)
		}
		spans = append(spans, obs.SpanEvent{
			Name:    wf.Samples[i].Phase,
			Cat:     "waveform",
			Op:      op,
			StartNS: start,
			DurNS:   end - start,
		})
		i = j
	}
	return spans
}

func boolToInt(v bool) int {
	if v {
		return 1
	}
	return 0
}
