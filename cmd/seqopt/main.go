// Command seqopt explores the Figure 8 XOR sequence optimization and the
// compiled primitive sequences of every basic operation for the three
// designs — the command-level view of what each engine actually issues.
//
// Usage:
//
//	seqopt                  show the XOR optimization ladder (Figure 8)
//	seqopt compile          show each design's compiled sequences per op
//	seqopt expr '<bool>'    compile a boolean expression to an in-DRAM
//	                        program and price it per design
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/ambit"
	"repro/internal/drisa"
	"repro/internal/elpim"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/expr"
	"repro/internal/timing"
)

// compileExpr compiles a boolean expression and prices the program on the
// three designs.
func compileExpr(src string) error {
	node, err := expr.Parse(src)
	if err != nil {
		return err
	}
	prog, err := expr.Compile(node)
	if err != nil {
		return err
	}
	fmt.Print(prog)
	fmt.Println("per-stripe cost by design:")
	for _, d := range []interface {
		expr.CostEstimator
		Name() string
	}{
		elpim.MustNew(elpim.DefaultConfig()),
		ambit.MustNew(ambit.DefaultConfig()),
		drisa.MustNew(drisa.DefaultConfig()),
	} {
		c := prog.Cost(d)
		fmt.Printf("  %-10s %8.1f ns  %3d commands  %3d wordlines\n",
			d.Name(), c.LatencyNS, c.Commands, c.Wordlines)
	}
	return nil
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compile" {
		compile()
		return
	}
	if len(os.Args) > 2 && os.Args[1] == "expr" {
		if err := compileExpr(strings.Join(os.Args[2:], " ")); err != nil {
			fmt.Fprintln(os.Stderr, "seqopt:", err)
			os.Exit(1)
		}
		return
	}
	r, ok := exp.Lookup("fig8")
	if !ok {
		fmt.Fprintln(os.Stderr, "seqopt: fig8 experiment missing")
		os.Exit(1)
	}
	fmt.Println("Figure 8: XOR primitive-sequence optimization")
	if err := r.Run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "seqopt:", err)
		os.Exit(1)
	}
}

func compile() {
	tp := timing.DDR31600()
	e1 := elpim.MustNew(elpim.DefaultConfig())
	cfg2 := elpim.DefaultConfig()
	cfg2.ReservedRows = 2
	e2 := elpim.MustNew(cfg2)
	a := ambit.MustNew(ambit.DefaultConfig())
	d := drisa.MustNew(drisa.DefaultConfig())

	fmt.Println("ELP2IM compiled sequences (1 reserved row); slots: A,B operands, C dest, R0/R1 reserved")
	for _, op := range engine.BasicOps() {
		q := e1.Compile(op)
		fmt.Printf("  %-5s %6.1f ns  %s\n", op, q.Duration(tp), q)
	}
	fmt.Println("\nELP2IM with two reserved rows (XOR = Figure 8 sequence 6)")
	for _, op := range []engine.Op{engine.OpXOR, engine.OpXNOR} {
		q := e2.Compile(op)
		fmt.Printf("  %-5s %6.1f ns  %s\n", op, q.Duration(tp), q)
	}
	fmt.Println("\nAmbit canonical sequences")
	for _, op := range engine.BasicOps() {
		q := a.Seq(op)
		fmt.Printf("  %-5s %6.1f ns  %d commands, peak %d wordlines/activation\n",
			op, q.Duration(tp), len(q), q.MaxWordlinesPerEvent())
	}
	fmt.Println("\nDrisa_nor NOR-cycle decompositions")
	for _, op := range engine.BasicOps() {
		fmt.Printf("  %-5s %6.1f ns  %d NOR cycles\n",
			op, d.OpStats(op).LatencyNS, d.Cycles(op))
	}
}
