package elp2im

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/dram"
)

func newAcc(t *testing.T, mutators ...func(*Config)) *Accelerator {
	t.Helper()
	acc, err := New(mutators...)
	if err != nil {
		t.Fatal(err)
	}
	return acc
}

func smallModule(c *Config) {
	c.Module.Banks = 2
	c.Module.SubarraysPerBank = 2
	c.Module.RowsPerSubarray = 16
	c.Module.Columns = 128
}

// golden computes the expected result on the host.
func golden(op Op, dst, x, y *BitVector) {
	var yv *bitvec.Vector
	if y != nil {
		yv = y.v
	}
	op.internal().Golden(dst.v, x.v, yv)
}

func TestOpStringsAndUnary(t *testing.T) {
	names := map[Op]string{
		OpNot: "NOT", OpAnd: "AND", OpOr: "OR", OpNand: "NAND",
		OpNor: "NOR", OpXor: "XOR", OpXnor: "XNOR", OpCopy: "COPY",
	}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("op string = %q, want %q", op.String(), want)
		}
	}
	if !OpNot.Unary() || !OpCopy.Unary() || OpAnd.Unary() {
		t.Error("Unary wrong")
	}
}

func TestDesignStrings(t *testing.T) {
	if DesignELP2IM.String() != "ELP2IM" || DesignAmbit.String() != "Ambit" ||
		DesignDrisaNOR.String() != "Drisa_nor" {
		t.Error("design names wrong")
	}
	if Design(9).String() == "" {
		t.Error("unknown design must render")
	}
}

func TestBitVectorBasics(t *testing.T) {
	b := NewBitVector(100)
	if b.Len() != 100 || b.Popcount() != 0 {
		t.Fatal("new vector wrong")
	}
	b.SetBit(7, true)
	if !b.Bit(7) || b.Popcount() != 1 {
		t.Fatal("SetBit wrong")
	}
	b.Fill(true)
	if b.Popcount() != 100 {
		t.Fatal("Fill wrong")
	}
	rng := rand.New(rand.NewSource(1))
	r := RandomBitVector(rng, 100)
	if r.Equal(b) {
		t.Fatal("random vector equals all-ones (astronomically unlikely)")
	}
	if len(r.Words()) != 2 {
		t.Fatal("Words wrong")
	}
}

func TestAllDesignsAllOpsMatchGolden(t *testing.T) {
	for _, design := range []Design{DesignELP2IM, DesignAmbit, DesignDrisaNOR} {
		acc := newAcc(t, smallModule, func(c *Config) { c.Design = design })
		rng := rand.New(rand.NewSource(int64(design)))
		// A vector spanning several stripes and a ragged tail.
		n := 128*5 + 37
		for _, op := range []Op{OpNot, OpAnd, OpOr, OpNand, OpNor, OpXor, OpXnor, OpCopy} {
			x := RandomBitVector(rng, n)
			y := RandomBitVector(rng, n)
			dst := NewBitVector(n)
			var yArg *BitVector
			if !op.Unary() {
				yArg = y
			}
			st, err := acc.Op(op, dst, x, yArg)
			if err != nil {
				t.Fatalf("%v/%v: %v", design, op, err)
			}
			want := NewBitVector(n)
			golden(op, want, x, y)
			if !dst.Equal(want) {
				t.Errorf("%v/%v: result mismatch", design, op)
			}
			if st.LatencyNS <= 0 || st.EnergyNJ <= 0 || st.RowOps != 6 {
				t.Errorf("%v/%v: implausible stats %+v", design, op, st)
			}
		}
	}
}

func TestOpErrors(t *testing.T) {
	acc := newAcc(t, smallModule)
	x := NewBitVector(64)
	if _, err := acc.Op(OpAnd, NewBitVector(64), x, nil); err == nil {
		t.Error("binary op without second operand accepted")
	}
	if _, err := acc.Op(OpAnd, NewBitVector(64), x, NewBitVector(65)); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := acc.Op(OpAnd, NewBitVector(63), x, NewBitVector(64)); err == nil {
		t.Error("destination mismatch accepted")
	}
	if _, err := acc.Op(OpNot, nil, x, nil); err == nil {
		t.Error("nil destination accepted")
	}
	if _, err := acc.Op(OpNot, NewBitVector(64), nil, nil); err == nil {
		t.Error("nil source accepted")
	}
}

func TestReduce(t *testing.T) {
	acc := newAcc(t, smallModule)
	rng := rand.New(rand.NewSource(3))
	n := 300
	vs := make([]*BitVector, 4)
	for i := range vs {
		vs[i] = RandomBitVector(rng, n)
	}
	dst := NewBitVector(n)
	st, err := acc.Reduce(OpAnd, dst, vs...)
	if err != nil {
		t.Fatal(err)
	}
	want := NewBitVector(n)
	want.v.CopyFrom(vs[0].v)
	for _, v := range vs[1:] {
		want.v.And(want.v, v.v)
	}
	if !dst.Equal(want) {
		t.Fatal("reduction mismatch")
	}
	if st.RowOps == 0 {
		t.Fatal("reduction reported zero row ops")
	}
	if _, err := acc.Reduce(OpXor, dst, vs...); err == nil {
		t.Error("XOR reduction accepted")
	}
	if _, err := acc.Reduce(OpAnd, dst, vs[0]); err == nil {
		t.Error("single-vector reduction accepted")
	}
}

func TestPowerConstraintIncreasesLatency(t *testing.T) {
	free := newAcc(t)
	constrained := newAcc(t, func(c *Config) { c.PowerConstrained = true })
	rng := rand.New(rand.NewSource(4))
	n := 8192 * 16
	x := RandomBitVector(rng, n)
	y := RandomBitVector(rng, n)
	stFree, err := free.Op(OpAnd, NewBitVector(n), x, y)
	if err != nil {
		t.Fatal(err)
	}
	stCon, err := constrained.Op(OpAnd, NewBitVector(n), x, y)
	if err != nil {
		t.Fatal(err)
	}
	if stCon.LatencyNS <= stFree.LatencyNS {
		t.Errorf("constrained latency %v must exceed unconstrained %v",
			stCon.LatencyNS, stFree.LatencyNS)
	}
}

func TestELP2IMFasterThanBaselinesOnAND(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 8192 * 8
	x := RandomBitVector(rng, n)
	y := RandomBitVector(rng, n)
	lat := map[Design]float64{}
	for _, d := range []Design{DesignELP2IM, DesignAmbit, DesignDrisaNOR} {
		acc := newAcc(t, func(c *Config) { c.Design = d })
		st, err := acc.Op(OpAnd, NewBitVector(n), x, y)
		if err != nil {
			t.Fatal(err)
		}
		lat[d] = st.LatencyNS
	}
	if lat[DesignELP2IM] >= lat[DesignAmbit] {
		t.Errorf("ELP2IM AND (%v) must beat Ambit (%v)", lat[DesignELP2IM], lat[DesignAmbit])
	}
	if lat[DesignELP2IM] >= lat[DesignDrisaNOR] {
		t.Errorf("ELP2IM AND (%v) must beat Drisa (%v)", lat[DesignELP2IM], lat[DesignDrisaNOR])
	}
}

func TestTotalsAccumulate(t *testing.T) {
	acc := newAcc(t, smallModule)
	rng := rand.New(rand.NewSource(6))
	x := RandomBitVector(rng, 256)
	y := RandomBitVector(rng, 256)
	if _, err := acc.Op(OpAnd, NewBitVector(256), x, y); err != nil {
		t.Fatal(err)
	}
	if _, err := acc.Op(OpOr, NewBitVector(256), x, y); err != nil {
		t.Fatal(err)
	}
	tot := acc.Totals()
	if tot.RowOps != 4 || tot.LatencyNS <= 0 {
		t.Fatalf("totals wrong: %+v", tot)
	}
	acc.ResetTotals()
	if acc.Totals().RowOps != 0 {
		t.Fatal("ResetTotals failed")
	}
}

func TestAcceleratorMetadata(t *testing.T) {
	acc := newAcc(t)
	if acc.Design() != "ELP2IM" {
		t.Errorf("design = %q", acc.Design())
	}
	if acc.ReservedRows() != 1 {
		t.Errorf("reserved rows = %d", acc.ReservedRows())
	}
	if acc.AreaOverheadPercent() <= 0 {
		t.Error("area overhead must be positive")
	}
	amb := newAcc(t, func(c *Config) { c.Design = DesignAmbit })
	if amb.ReservedRows() != 8 {
		t.Errorf("ambit reserved rows = %d", amb.ReservedRows())
	}
	if CPUBaseline().Validate() != nil {
		t.Error("CPU baseline invalid")
	}
}

func TestNewWithConfigErrors(t *testing.T) {
	bad := DefaultConfig()
	bad.Module.Banks = 0
	if _, err := NewWithConfig(bad); err == nil {
		t.Error("invalid module accepted")
	}
	bad = DefaultConfig()
	bad.Timing.Precharge = 0
	if _, err := NewWithConfig(bad); err == nil {
		t.Error("invalid timing accepted")
	}
	bad = DefaultConfig()
	bad.Design = Design(42)
	if _, err := NewWithConfig(bad); err == nil {
		t.Error("unknown design accepted")
	}
	bad = DefaultConfig()
	bad.ReservedRows = 5 // invalid for ELP2IM
	if _, err := NewWithConfig(bad); err == nil {
		t.Error("invalid reserved rows accepted")
	}
}

func TestTwoReservedRowConfig(t *testing.T) {
	acc := newAcc(t, smallModule, func(c *Config) { c.ReservedRows = 2 })
	rng := rand.New(rand.NewSource(7))
	x := RandomBitVector(rng, 200)
	y := RandomBitVector(rng, 200)
	dst := NewBitVector(200)
	if _, err := acc.Op(OpXor, dst, x, y); err != nil {
		t.Fatal(err)
	}
	want := NewBitVector(200)
	golden(OpXor, want, x, y)
	if !dst.Equal(want) {
		t.Fatal("2-reserved-row XOR mismatch")
	}
}

func TestHighThroughputModeConfig(t *testing.T) {
	acc := newAcc(t, smallModule, func(c *Config) { c.HighThroughputMode = true })
	rng := rand.New(rand.NewSource(8))
	x := RandomBitVector(rng, 200)
	y := RandomBitVector(rng, 200)
	dst := NewBitVector(200)
	if _, err := acc.Op(OpOr, dst, x, y); err != nil {
		t.Fatal(err)
	}
	want := NewBitVector(200)
	golden(OpOr, want, x, y)
	if !dst.Equal(want) {
		t.Fatal("HT-mode OR mismatch")
	}
}

// Property: the accelerator matches the golden model on random lengths,
// operations, and designs.
func TestAcceleratorGoldenProperty(t *testing.T) {
	accs := map[Design]*Accelerator{
		DesignELP2IM:   newAcc(t, smallModule),
		DesignAmbit:    newAcc(t, smallModule, func(c *Config) { c.Design = DesignAmbit }),
		DesignDrisaNOR: newAcc(t, smallModule, func(c *Config) { c.Design = DesignDrisaNOR }),
	}
	ops := []Op{OpNot, OpAnd, OpOr, OpNand, OpNor, OpXor, OpXnor}
	f := func(seed int64, opRaw, dRaw, lenRaw uint8) bool {
		op := ops[int(opRaw)%len(ops)]
		design := Design(int(dRaw) % 3)
		n := int(lenRaw)%500 + 1
		rng := rand.New(rand.NewSource(seed))
		x := RandomBitVector(rng, n)
		y := RandomBitVector(rng, n)
		dst := NewBitVector(n)
		var yArg *BitVector
		if !op.Unary() {
			yArg = y
		}
		if _, err := accs[design].Op(op, dst, x, yArg); err != nil {
			return false
		}
		want := NewBitVector(n)
		golden(op, want, x, y)
		return dst.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestUnalignedColumnsFallback(t *testing.T) {
	// A row width that is not a multiple of 64 exercises the sequential
	// bit-level stripe path.
	acc := newAcc(t, func(c *Config) {
		c.Module.Banks = 2
		c.Module.SubarraysPerBank = 1
		c.Module.RowsPerSubarray = 16
		c.Module.Columns = 100
	})
	rng := rand.New(rand.NewSource(9))
	n := 100*3 + 17
	x := RandomBitVector(rng, n)
	y := RandomBitVector(rng, n)
	dst := NewBitVector(n)
	if _, err := acc.Op(OpXor, dst, x, y); err != nil {
		t.Fatal(err)
	}
	want := NewBitVector(n)
	golden(OpXor, want, x, y)
	if !dst.Equal(want) {
		t.Fatal("unaligned-columns XOR mismatch")
	}
}

func TestRanksRelaxTheConstraint(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 8192 * 16
	x := RandomBitVector(rng, n)
	y := RandomBitVector(rng, n)
	lat := func(ranks int) float64 {
		acc := newAcc(t, func(c *Config) {
			c.PowerConstrained = true
			c.Ranks = ranks
		})
		st, err := acc.Op(OpAnd, NewBitVector(n), x, y)
		if err != nil {
			t.Fatal(err)
		}
		return st.LatencyNS
	}
	one, two := lat(1), lat(2)
	if two >= one {
		t.Fatalf("two ranks (%v ns) must beat one rank (%v ns) under the constraint", two, one)
	}
}

// TestStripeCoordCrossCheck pins the invariant that the serialization
// group index and the physical subarray placement are one mapping: over
// non-uniform bank/subarray geometries, two stripes share a group if and
// only if they share a home subarray, and every group indexes within the
// accelerator's lock table. Silent drift between the two derivations
// would let two stripes lock different groups while mutating the same
// subarray's row state.
func TestStripeCoordCrossCheck(t *testing.T) {
	geometries := []struct {
		banks, subs, cols int
	}{
		{1, 1, 64},
		{2, 2, 128},
		{3, 5, 64},
		{5, 3, 128},
		{8, 2, 192},
		{7, 1, 64},
		{3, 5, 100}, // non-word-aligned: groups collapse, placement must not
	}
	for _, g := range geometries {
		acc := newAcc(t, func(c *Config) {
			c.Module.Banks = g.banks
			c.Module.SubarraysPerBank = g.subs
			c.Module.RowsPerSubarray = 16
			c.Module.Columns = g.cols
		})
		aligned := g.cols%64 == 0
		total := g.banks * g.subs
		subOf := make(map[int]*dram.Subarray)   // group -> subarray
		groupOf := make(map[*dram.Subarray]int) // subarray -> group
		for s := 0; s < 3*total+1; s++ {
			sub := acc.subarrayFor(s)
			// Independent re-derivation of the documented placement.
			wantBank := s % g.banks
			wantSub := (s / g.banks) % g.subs
			if want := acc.module.Bank(wantBank).Subarray(wantSub); sub != want {
				t.Fatalf("%dx%dx%d: stripe %d placed in wrong subarray", g.banks, g.subs, g.cols, s)
			}
			grp := acc.stripeGroup(s)
			if !aligned {
				if grp != 0 {
					t.Fatalf("%dx%dx%d: unaligned stripe %d group = %d, want 0", g.banks, g.subs, g.cols, s, grp)
				}
				continue
			}
			if grp < 0 || grp >= len(acc.execLocks) {
				t.Fatalf("%dx%dx%d: stripe %d group %d outside lock table [0,%d)",
					g.banks, g.subs, g.cols, s, grp, len(acc.execLocks))
			}
			if prev, ok := subOf[grp]; ok && prev != sub {
				t.Fatalf("%dx%dx%d: group %d spans two subarrays", g.banks, g.subs, g.cols, grp)
			}
			subOf[grp] = sub
			if prev, ok := groupOf[sub]; ok && prev != grp {
				t.Fatalf("%dx%dx%d: subarray of stripe %d maps to groups %d and %d",
					g.banks, g.subs, g.cols, s, prev, grp)
			}
			groupOf[sub] = grp
		}
		if aligned && len(subOf) != total {
			t.Fatalf("%dx%dx%d: %d groups discovered, want %d", g.banks, g.subs, g.cols, len(subOf), total)
		}
	}
}
