package elp2im

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/vertical"
)

// benchElems is the element count for the vertical sweeps: 1M elements
// keep every slice at 1 Mbit — the same bulk regime as the eval DAG
// sweep, where the per-step word loops dominate over program dispatch.
const benchElems = 1 << 20

// benchVertical builds a random vertical operand of the given width.
func benchVertical(b *testing.B, rng *rand.Rand, width int) *Vertical {
	b.Helper()
	elems := make([]uint64, benchElems)
	mask := vertical.WidthMask(width)
	for i := range elems {
		elems[i] = rng.Uint64() & mask
	}
	v, err := VerticalFromElements(elems, width)
	if err != nil {
		b.Fatal(err)
	}
	return v
}

// BenchmarkVerticalTranspose measures the transpose engine alone: the
// horizontal→vertical re-slicing on ingest (SliceInto) and the
// vertical→horizontal recovery on readback (Unslice), reported as
// ns/elem at width 32.
func BenchmarkVerticalTranspose(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	const width = 32
	elems := make([]uint64, benchElems)
	for i := range elems {
		elems[i] = rng.Uint64() & vertical.WidthMask(width)
	}
	b.Run("slice", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := VerticalFromElements(elems, width); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/benchElems, "ns/elem")
	})
	v, err := VerticalFromElements(elems, width)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("unslice", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = v.Elements()
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/benchElems, "ns/elem")
	})
}

// BenchmarkVerticalArith sweeps one vertical add over the element width
// (the µProgram's step count grows with width) through both word-level
// execution tiers — the fused plan (default) and node-at-a-time kernels
// (DisableFusion) — with bit-identical results by construction
// (TestArithMatchesReference). bench.sh's Part 6 turns the sweep into
// BENCH_vertical.json.
func BenchmarkVerticalArith(b *testing.B) {
	for _, width := range []int{4, 8, 16, 32} {
		rng := rand.New(rand.NewSource(int64(width)))
		for _, tier := range []struct {
			name    string
			disable bool
		}{{"fused", false}, {"node", true}} {
			b.Run(fmt.Sprintf("add/w%d/%s", width, tier.name), func(b *testing.B) {
				acc, err := New(func(c *Config) { c.DisableFusion = tier.disable })
				if err != nil {
					b.Fatal(err)
				}
				ca, err := CompileArith(ArithAdd, width)
				if err != nil {
					b.Fatal(err)
				}
				x := benchVertical(b, rng, width)
				y := benchVertical(b, rng, width)
				b.ReportAllocs()
				b.ResetTimer()
				var st Stats
				for i := 0; i < b.N; i++ {
					if _, st, err = acc.ArithProg(ca, x, y, nil); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/benchElems, "ns/elem")
				b.ReportMetric(st.LatencyNS, "modeled_ns")
				b.ReportMetric(float64(ca.Steps()), "steps")
			})
		}
	}
}
