package elp2im

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/bitvec"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// shardChunkStripes is the placement granularity: stripes are assigned to
// shards in contiguous ranges of this many stripes, so a shard's subset of
// any vector is a union of contiguous runs the kernel fast path can
// consume whole, while the range-level hash still spreads load evenly.
const shardChunkStripes = 4

// Shard is a router over N independent Accelerator instances — the model
// of a multi-rank (or multi-channel) deployment where each rank has its
// own charge pump and tFAW window, the reason ELP2IM's bank-level
// parallelism scales nearly linearly with ranks (PAPER.md §V).
//
// Vectors are placed deterministically: stripe s belongs to the shard
// selected by a hash of its placement range (s / shardChunkStripes), the
// same mapping for every vector, so stripe s of all of an operation's
// operands always co-locate on one shard and no cross-shard data movement
// is ever needed. Op, Reduce, Eval and Batch scatter each operation's
// stripes across the shards and gather the results.
//
// Accounting is central: the cost model is purely functional (identical
// configuration ⇒ identical memoized cost units), so the router computes
// each logical operation's cost once — on shard 0 — and the shard
// accelerators execute without accounting. Totals, the per-op metric
// series, and Snapshot therefore reconcile exactly — struct-equal — with
// a single-module baseline performing the same operations; per-shard
// execution detail (fast-path hits, lock contention, pipeline gauges,
// shard.<i>.* scatter counters) is layered on top in the merged snapshot.
//
// A Shard is safe for concurrent use under the same contract as an
// Accelerator: concurrently executing operations' vectors must not
// overlap.
type Shard struct {
	cfg  Config
	accs []*Accelerator

	// Observability: the router's own context (central per-op accounting,
	// batch counters, per-shard scatter series) merged with each shard
	// accelerator's registry in Snapshot.
	obsc           *obs.Context
	series         opSeriesSet
	batchSubmitted *obs.Counter
	batchWaits     *obs.Counter
	perShard       []shardSeries

	totalsMu sync.Mutex
	totals   Stats
}

// shardSeries is one shard's scatter-side metric series.
type shardSeries struct {
	ops     *obs.Counter // operations with ≥1 stripe on this shard
	stripes *obs.Counter // stripes executed on this shard
}

// NewShard returns a router over `shards` independent accelerators, each
// built from the same configuration (DefaultConfig plus the mutators).
func NewShard(shards int, mutators ...func(*Config)) (*Shard, error) {
	cfg := DefaultConfig()
	for _, m := range mutators {
		m(&cfg)
	}
	return NewShardWithConfig(shards, cfg)
}

// NewShardWithConfig returns a router over `shards` accelerators with an
// explicit per-shard configuration.
func NewShardWithConfig(shards int, cfg Config) (*Shard, error) {
	if shards < 1 {
		return nil, errors.New("elp2im: shard count must be at least 1")
	}
	sh := &Shard{cfg: cfg, accs: make([]*Accelerator, shards)}
	for i := range sh.accs {
		acc, err := NewWithConfig(cfg)
		if err != nil {
			return nil, err
		}
		sh.accs[i] = acc
	}
	// The constructor may normalize the configuration (e.g. raising
	// DualContactRows to the design's reserved-row need); adopt shard 0's
	// settled view so placement arithmetic matches execution.
	sh.cfg = sh.accs[0].cfg
	sh.initObs()
	return sh, nil
}

// initObs builds the router's observability context.
func (sh *Shard) initObs() {
	sh.obsc = obs.NewContext()
	m := sh.obsc.Metrics
	sh.series.init(m)
	sh.batchSubmitted = m.Counter("batch.submitted")
	sh.batchWaits = m.Counter("batch.waits")
	m.Gauge("shard.count").Set(int64(len(sh.accs)))
	sh.perShard = make([]shardSeries, len(sh.accs))
	for i := range sh.perShard {
		sh.perShard[i] = shardSeries{
			ops:     m.Counter(fmt.Sprintf("shard.%d.ops", i)),
			stripes: m.Counter(fmt.Sprintf("shard.%d.stripes", i)),
		}
	}
}

// ref is the reference accelerator the router computes costs on. All
// shards share one configuration, so any of them yields bit-identical
// cost units; shard 0 is the convention.
func (sh *Shard) ref() *Accelerator { return sh.accs[0] }

// Shards returns the number of shard accelerators.
func (sh *Shard) Shards() int { return len(sh.accs) }

// ShardAccelerator returns shard i's accelerator, for per-shard
// inspection (metrics, executor wrapping in tests). Operations should go
// through the router.
func (sh *Shard) ShardAccelerator(i int) *Accelerator { return sh.accs[i] }

// mix64 is the splitmix64 finalizer: a cheap avalanche hash giving every
// placement range a well-spread, deterministic shard.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// shardOf returns the shard owning stripe s: a hash of its placement
// range, identical for every vector.
func (sh *Shard) shardOf(s int) int {
	return int(mix64(uint64(s/shardChunkStripes)) % uint64(len(sh.accs)))
}

// stripeLists partitions stripes [0, n) into per-shard ascending lists.
func (sh *Shard) stripeLists(n int) [][]int {
	lists := make([][]int, len(sh.accs))
	for s := 0; s < n; s++ {
		i := sh.shardOf(s)
		lists[i] = append(lists[i], s)
	}
	return lists
}

// scatter partitions [0, stripes) into the per-shard stripe lists and runs
// fn once per non-empty list — in parallel goroutines when rows are
// word-aligned (each shard then writes disjoint destination words),
// sequentially in shard order otherwise (neighbouring stripes share
// destination words across shard boundaries). On multiple failures the
// lowest-index failing shard's error is returned, so the result is
// deterministic (each shard's own error is already its lowest failing
// stripe's, see runGroups).
func (sh *Shard) scatter(stripes int, fn func(shard int, list []int) error) error {
	lists := sh.stripeLists(stripes)
	for i, l := range lists {
		if len(l) > 0 {
			sh.perShard[i].ops.Inc()
			sh.perShard[i].stripes.Add(int64(len(l)))
		}
	}
	if sh.cfg.Module.Columns%64 != 0 || len(sh.accs) == 1 {
		for i, l := range lists {
			if len(l) == 0 {
				continue
			}
			if err := fn(i, l); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(lists))
	var wg sync.WaitGroup
	for i, l := range lists {
		if len(l) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, l []int) {
			defer wg.Done()
			errs[i] = fn(i, l)
		}(i, l)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Op executes dst = op(x, y) scattered across the shards (y nil for unary
// ops). Semantics, results, and modeled cost are identical to
// Accelerator.Op on one module of the same configuration.
func (sh *Shard) Op(op Op, dst, x, y *BitVector) (Stats, error) {
	iop := op.internal()
	if err := validateOp(op, dst, x, y); err != nil {
		return Stats{}, err
	}
	start := sh.obsc.SpanStart()
	cols := sh.cfg.Module.Columns
	stripes := (x.Len() + cols - 1) / cols
	var yv *bitvec.Vector
	if y != nil {
		yv = y.v
	}
	err := sh.scatter(stripes, func(i int, list []int) error {
		return sh.accs[i].execOpStripes(iop, dst.v, x.v, yv, list)
	})
	if err != nil {
		sh.opSpan(start, iop, stripes, Stats{}, err)
		return Stats{}, err
	}
	st, err := sh.ref().opCost(iop, stripes)
	if err != nil {
		sh.opSpan(start, iop, stripes, Stats{}, err)
		return Stats{}, err
	}
	sh.addTotals(st)
	sh.series.record(iop, st)
	sh.opSpan(start, iop, stripes, st, nil)
	return st, nil
}

// Reduce folds vs[1:] into an accumulator initialized with vs[0] and
// stores the result in dst, scattered across the shards (see
// Accelerator.Reduce). Results and cost accounting — the staging copy,
// then one chained-fold term per operand, in order — are identical to the
// single-module baseline.
func (sh *Shard) Reduce(op Op, dst *BitVector, vs ...*BitVector) (Stats, error) {
	if err := validateReduce(op, dst, vs); err != nil {
		return Stats{}, err
	}
	iop := op.internal()
	start := sh.obsc.SpanStart()
	cols := sh.cfg.Module.Columns
	stripes := (dst.Len() + cols - 1) / cols
	vsv := vecsOf(vs)
	err := sh.scatter(stripes, func(i int, list []int) error {
		return sh.accs[i].execReduceStripes(iop, dst.v, vsv, list)
	})
	if err != nil {
		sh.reduceSpan(start, iop, stripes, Stats{}, err)
		return Stats{}, err
	}
	// Central accounting in the synchronous Reduce's order: the copy is
	// recorded as its own OpCOPY component, then each fold.
	components, total, err := sh.ref().reduceComponents(iop, len(vs), stripes)
	if err != nil {
		sh.reduceSpan(start, iop, stripes, Stats{}, err)
		return Stats{}, err
	}
	for _, c := range components {
		sh.addTotals(c.st)
		sh.series.record(c.op, c.st)
	}
	sh.reduceSpan(start, iop, stripes, total, nil)
	return total, nil
}

// Eval evaluates a boolean expression over named bulk bit-vectors,
// compiled once and scattered across the shards (see Accelerator.Eval).
func (sh *Shard) Eval(src string, vars map[string]*BitVector) (*BitVector, Stats, error) {
	ce, err := CompileExpr(src)
	if err != nil {
		return nil, Stats{}, err
	}
	return sh.EvalExpr(ce, vars)
}

// EvalExpr evaluates a compiled expression scattered across the shards
// (see Accelerator.EvalExpr). Results and modeled cost are identical to
// a single module of the same configuration.
func (sh *Shard) EvalExpr(ce *CompiledExpr, vars map[string]*BitVector) (*BitVector, Stats, error) {
	ref := sh.ref()
	p := ce.plan
	n, err := ref.evalPrep(p, vars)
	if err != nil {
		return nil, Stats{}, err
	}
	cols := sh.cfg.Module.Columns
	stripes := (n + cols - 1) / cols
	out := NewBitVector(n)
	err = sh.scatter(stripes, func(i int, list []int) error {
		return sh.accs[i].evalExec(p, vars, out, stripes, list)
	})
	if err != nil {
		return nil, Stats{}, err
	}
	total, err := ref.evalCost(p.Prog, stripes)
	if err != nil {
		return nil, Stats{}, err
	}
	sh.addTotals(total)
	return out, total, nil
}

// Totals returns the accumulated statistics of every operation routed
// through this shard router (struct-equal to a single module's totals for
// the same operation sequence).
func (sh *Shard) Totals() Stats {
	sh.totalsMu.Lock()
	defer sh.totalsMu.Unlock()
	return sh.totals
}

// AggregateTotals returns the router's centrally accounted totals merged
// with every shard accelerator's own session totals. Operations routed
// through the Shard account centrally (Totals); a caller driving the
// shard accelerators directly — the per-shard serving path in
// internal/server — accumulates on each accelerator instead, and this is
// the union of both views.
func (sh *Shard) AggregateTotals() Stats {
	total := sh.Totals()
	for _, acc := range sh.accs {
		total.add(acc.Totals())
	}
	return total
}

// ResetTotals clears the accumulated statistics.
func (sh *Shard) ResetTotals() {
	sh.totalsMu.Lock()
	sh.totals = Stats{}
	sh.totalsMu.Unlock()
}

// addTotals accumulates st into the router's session totals.
func (sh *Shard) addTotals(st Stats) {
	sh.totalsMu.Lock()
	sh.totals.add(st)
	sh.totalsMu.Unlock()
}

// Design returns the modeled design's name.
func (sh *Shard) Design() string { return sh.ref().Design() }

// ReservedRows returns the design's reserved-row count.
func (sh *Shard) ReservedRows() int { return sh.ref().ReservedRows() }

// AreaOverheadPercent returns the design's array area overhead.
func (sh *Shard) AreaOverheadPercent() float64 { return sh.ref().AreaOverheadPercent() }

// SetPowerConstrained toggles the charge-pump/tFAW latency constraint on
// every shard (each rank has its own pump; the constraint is per-module).
func (sh *Shard) SetPowerConstrained(v bool) {
	for _, acc := range sh.accs {
		acc.SetPowerConstrained(v)
	}
}

// SetTracer installs (or, with nil, removes) a tracer on the router and on
// every shard accelerator, so one sink receives the router's op spans and
// each shard's stripe/engine spans.
func (sh *Shard) SetTracer(t Tracer) {
	sh.obsc.SetTracer(t)
	for _, acc := range sh.accs {
		acc.SetTracer(t)
	}
}

// Observability returns the router's observability context, so subsystems
// layered on top (internal/server) can register their own series next to
// the central per-op accounting; they appear in Snapshot alongside the
// merged per-shard series.
func (sh *Shard) Observability() *obs.Context { return sh.obsc }

// Snapshot merges the router's metric series (central per-op accounting,
// batch counters, shard.<i>.* scatter series) with every shard
// accelerator's registry — counters and gauges sum, histograms merge
// bucket-wise — plus the process-wide scheduler-memo counters. The
// acc.op.* series reconcile exactly with a single-module baseline: only
// the router records them, while execution-side series (fast-path hits,
// lock contention, pipeline gauges) sum across shards.
func (sh *Shard) Snapshot() MetricsSnapshot {
	snap := sh.obsc.Metrics.Snapshot()
	for _, acc := range sh.accs {
		mergeSnapshot(&snap, acc.obsc.Metrics.Snapshot())
	}
	return withSchedStats(snap)
}

// mergeSnapshot folds src into dst: counters and gauges sum; histograms
// with matching bounds merge bucket-wise, others keep dst's value.
func mergeSnapshot(dst *obs.Snapshot, src obs.Snapshot) {
	for name, v := range src.Counters {
		dst.Counters[name] += v
	}
	for name, v := range src.Gauges {
		dst.Gauges[name] += v
	}
	for name, h := range src.Histograms {
		d, ok := dst.Histograms[name]
		if !ok {
			dst.Histograms[name] = h
			continue
		}
		if len(d.Bounds) != len(h.Bounds) || len(d.Counts) != len(h.Counts) {
			continue
		}
		d.Count += h.Count
		d.Sum += h.Sum
		counts := make([]int64, len(d.Counts))
		for i := range counts {
			counts[i] = d.Counts[i] + h.Counts[i]
		}
		d.Counts = counts
		dst.Histograms[name] = d
	}
}

// ServeDebug starts the opt-in observability endpoint on addr serving the
// router's merged Snapshot (see Accelerator.ServeDebug).
func (sh *Shard) ServeDebug(addr string) (*DebugServer, error) {
	return obs.Serve(addr, func() obs.Snapshot { return sh.Snapshot() })
}

// opSpan emits the router-level span of one completed scattered operation
// when tracing is on.
func (sh *Shard) opSpan(startNS int64, op engine.Op, stripes int, st Stats, err error) {
	sh.span(startNS, sh.series[op].spanName, op, stripes, st, err)
}

// reduceSpan emits the router-level span of one scattered Reduce.
func (sh *Shard) reduceSpan(startNS int64, op engine.Op, stripes int, st Stats, err error) {
	if startNS == 0 {
		return
	}
	sh.span(startNS, "Reduce("+op.String()+")", op, stripes, st, err)
}

// span is the shared span emitter behind opSpan/reduceSpan.
func (sh *Shard) span(startNS int64, name string, op engine.Op, stripes int, st Stats, err error) {
	if startNS == 0 {
		return
	}
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	sh.obsc.Span(obs.SpanEvent{
		Name:      name,
		Cat:       "shard",
		StartNS:   startNS,
		DurNS:     time.Now().UnixNano() - startNS,
		Op:        op.String(),
		Design:    sh.Design(),
		Stripes:   stripes,
		LatencyNS: st.LatencyNS,
		EnergyNJ:  st.EnergyNJ,
		Commands:  st.Commands,
		Wordlines: st.Wordlines,
		Err:       msg,
	})
}

// ShardBatch is the asynchronous submission context over a Shard — the
// scatter-gather analogue of Batch. Each shard has its own worker pool
// (its private rank's concurrency budget); a submission's stripes enqueue
// on their home shards' pools, and the same per-group FIFO ordering
// guarantees hold because a stripe's home shard and serialization group
// are both functions of the stripe index alone. Wait drains every pool and
// folds the accumulated cost terms into the router's totals in submission
// order, exactly like Batch.Wait.
type ShardBatch struct {
	sh    *Shard
	pools []*pipeline.Pool

	mu     sync.Mutex
	closed bool
	leased []*Future // submission order
}

// Batch returns a new asynchronous scatter-gather submission context. With
// non-word-aligned rows all shards share one pool (every task is then in
// serialization group 0, and neighbouring stripes share destination words
// across shard boundaries, so full FIFO ordering is required).
func (sh *Shard) Batch() *ShardBatch {
	n := len(sh.accs)
	if sh.cfg.Module.Columns%64 != 0 {
		n = 1
	}
	pools := make([]*pipeline.Pool, n)
	for i := range pools {
		pools[i] = sh.accs[i].getPool()
	}
	return &ShardBatch{sh: sh, pools: pools}
}

// Workers returns the total worker count across the per-shard pools.
func (sb *ShardBatch) Workers() int {
	total := 0
	for _, p := range sb.pools {
		total += p.Workers()
	}
	return total
}

// poolFor returns the pool executing shard i's tasks.
func (sb *ShardBatch) poolFor(i int) *pipeline.Pool { return sb.pools[i%len(sb.pools)] }

// failed records and returns an already-failed future.
func (sb *ShardBatch) failed(err error) *Future {
	f := &Future{err: err}
	sb.lease(f)
	return f
}

// lease registers a future in submission order.
func (sb *ShardBatch) lease(f *Future) {
	sb.mu.Lock()
	sb.leased = append(sb.leased, f)
	sb.mu.Unlock()
}

// submitScattered builds each shard's task subset via mk and enqueues it
// on the shard's pool, collecting the pipeline futures in ascending shard
// order (the order runErr resolves multiple failures in).
func (sb *ShardBatch) submitScattered(stripes int, mk func(acc *Accelerator, groups []stripeRun) []pipeline.Task,
	components []costTerm, total Stats) *Future {
	sb.mu.Lock()
	closed := sb.closed
	sb.mu.Unlock()
	if closed {
		return sb.failed(pipeline.ErrClosed)
	}
	sh := sb.sh
	lists := sh.stripeLists(stripes)
	pfs := make([]*pipeline.Future, 0, len(sh.accs))
	for i, acc := range sh.accs {
		if len(lists[i]) == 0 {
			continue
		}
		sh.perShard[i].ops.Inc()
		sh.perShard[i].stripes.Add(int64(len(lists[i])))
		tasks := mk(acc, acc.groupStripeList(lists[i]))
		pf, err := sb.poolFor(i).Submit(tasks)
		if err != nil {
			return sb.failed(err)
		}
		pfs = append(pfs, pf)
	}
	f := &Future{pfs: pfs, components: components, stats: total}
	sb.lease(f)
	return f
}

// Submit enqueues dst = op(x, y) (y nil for unary ops) scattered across
// the shards and returns its future.
func (sb *ShardBatch) Submit(op Op, dst, x, y *BitVector) *Future {
	sh := sb.sh
	sh.batchSubmitted.Inc()
	iop := op.internal()
	if err := validateOp(op, dst, x, y); err != nil {
		return sb.failed(err)
	}
	cols := sh.cfg.Module.Columns
	stripes := (x.Len() + cols - 1) / cols
	st, err := sh.ref().opCost(iop, stripes)
	if err != nil {
		return sb.failed(err)
	}
	var yv *bitvec.Vector
	if y != nil {
		yv = y.v
	}
	return sb.submitScattered(stripes, func(acc *Accelerator, groups []stripeRun) []pipeline.Task {
		return acc.opTasks(iop, dst.v, x.v, yv, groups)
	}, []costTerm{{op: iop, st: st}}, st)
}

// SubmitReduce enqueues the scattered asynchronous variant of Reduce:
// dst = vs[0] op vs[1] op ... (OpAnd / OpOr only).
func (sb *ShardBatch) SubmitReduce(op Op, dst *BitVector, vs ...*BitVector) *Future {
	sh := sb.sh
	sh.batchSubmitted.Inc()
	if err := validateReduce(op, dst, vs); err != nil {
		return sb.failed(err)
	}
	iop := op.internal()
	cols := sh.cfg.Module.Columns
	stripes := (dst.Len() + cols - 1) / cols
	components, total, err := sh.ref().reduceComponents(iop, len(vs), stripes)
	if err != nil {
		return sb.failed(err)
	}
	vsv := vecsOf(vs)
	return sb.submitScattered(stripes, func(acc *Accelerator, groups []stripeRun) []pipeline.Task {
		return acc.reduceTasks(iop, dst.v, vsv, groups)
	}, components, total)
}

// SubmitEval enqueues the scattered asynchronous variant of Eval (see
// Batch.SubmitEval): compiled and validated now, the returned vector's
// contents defined once the future completes, and the aggregate cost
// folded into the router's totals on Wait without per-op series records.
// Each shard resolves its own execution tier at submission time.
func (sb *ShardBatch) SubmitEval(src string, vars map[string]*BitVector) (*BitVector, *Future) {
	sh := sb.sh
	sh.batchSubmitted.Inc()
	ce, err := CompileExpr(src)
	if err != nil {
		return nil, sb.failed(err)
	}
	ref := sh.ref()
	n, err := ref.evalPrep(ce.plan, vars)
	if err != nil {
		return nil, sb.failed(err)
	}
	cols := sh.cfg.Module.Columns
	stripes := (n + cols - 1) / cols
	total, err := ref.evalCost(ce.plan.Prog, stripes)
	if err != nil {
		return nil, sb.failed(err)
	}
	out := NewBitVector(n)
	return out, sb.submitScattered(stripes, func(acc *Accelerator, groups []stripeRun) []pipeline.Task {
		return acc.evalTasks(acc.evalResolve(ce.plan, vars, out), groups)
	}, nil, total)
}

// Wait drains every shard pool, folds the cost of each successful
// submission into the router's session totals in submission order, and
// returns the batch's accumulated stats plus the first error in
// submission order (see Batch.Wait for the repeat-call contract).
func (sb *ShardBatch) Wait() (Stats, error) {
	sb.sh.batchWaits.Inc()
	for _, p := range sb.pools {
		p.Drain()
	}
	sb.mu.Lock()
	defer sb.mu.Unlock()
	var total Stats
	var firstErr error
	for _, f := range sb.leased {
		err := f.err
		if err == nil {
			err = f.runErr()
		}
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if f.accounted {
			continue
		}
		f.accounted = true
		if len(f.components) == 0 {
			// Eval submissions: one aggregate cost, no per-op series
			// records, matching the synchronous path (see Batch.Wait).
			sb.sh.addTotals(f.stats)
			total.add(f.stats)
			continue
		}
		for _, c := range f.components {
			sb.sh.addTotals(c.st)
			total.add(c.st)
			sb.sh.series.record(c.op, c.st)
		}
	}
	return total, firstErr
}

// Close drains every shard pool and recycles each for its accelerator's
// next batch. Further Submit calls return a failed future. Close does not
// fold unaccounted statistics into the totals — call Wait first. Close is
// idempotent.
func (sb *ShardBatch) Close() {
	sb.mu.Lock()
	if sb.closed {
		sb.mu.Unlock()
		return
	}
	sb.closed = true
	sb.mu.Unlock()
	for i, p := range sb.pools {
		sb.sh.accs[i].recyclePool(p)
	}
}
