package elp2im

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/dram"
	"repro/internal/expr"
	"repro/internal/kernel"
)

// Eval evaluates a boolean expression over named bulk bit-vectors entirely
// in DRAM and returns the result vector plus the modeled cost.
//
// The expression language supports & | ^ ~ and parentheses over
// identifiers; it is compiled once per call (common-subexpression
// elimination, NAND/NOR/XNOR gate fusion, liveness-based scratch-row
// reuse) and executed through the design's real command sequences:
//
//	res, stats, err := acc.Eval("(dirty & ~referenced) | evicted", map[string]*BitVector{
//	    "dirty": d, "referenced": r, "evicted": e,
//	})
//
// All vectors must share one length. The subarray needs enough data rows
// for the variables plus the compiled temp count.
func (a *Accelerator) Eval(src string, vars map[string]*BitVector) (*BitVector, Stats, error) {
	prog, n, err := a.evalPrep(src, vars)
	if err != nil {
		return nil, Stats{}, err
	}
	cols := a.cfg.Module.Columns
	stripes := (n + cols - 1) / cols
	out := NewBitVector(n)
	if err := a.evalExec(prog, vars, out, stripes, nil); err != nil {
		return nil, Stats{}, err
	}

	// Cost: per-stripe program cost, bank parallelism applied per op mix.
	// The program is a fixed op sequence; reuse opCost per instruction.
	total, err := a.evalCost(prog, stripes)
	if err != nil {
		return nil, Stats{}, err
	}
	a.addTotals(total)
	return out, total, nil
}

// evalPrep parses and compiles src, validates that every program variable
// is bound to a vector of one common length, and checks the subarray row
// budget. It returns the compiled program and the common length. Shared by
// Eval and Shard.Eval (the shard compiles once and scatters execution).
func (a *Accelerator) evalPrep(src string, vars map[string]*BitVector) (*expr.Program, int, error) {
	node, err := expr.Parse(src)
	if err != nil {
		return nil, 0, err
	}
	prog, err := expr.Compile(node)
	if err != nil {
		return nil, 0, err
	}

	n := -1
	for _, name := range prog.Vars {
		v, ok := vars[name]
		if !ok || v == nil {
			return nil, 0, fmt.Errorf("elp2im: expression variable %q not bound", name)
		}
		if n == -1 {
			n = v.Len()
		} else if v.Len() != n {
			return nil, 0, errors.New("elp2im: expression vectors must share one length")
		}
	}
	if n == -1 {
		return nil, 0, errors.New("elp2im: expression has no variables")
	}

	needRows := len(prog.Vars) + prog.TempSlots
	if needRows > a.cfg.Module.RowsPerSubarray {
		return nil, 0, fmt.Errorf("elp2im: expression needs %d rows per subarray, module has %d",
			needRows, a.cfg.Module.RowsPerSubarray)
	}
	return prog, n, nil
}

// evalCost sums the program's per-instruction scheduled costs over
// `stripes` row operations.
func (a *Accelerator) evalCost(prog *expr.Program, stripes int) (Stats, error) {
	var total Stats
	for _, in := range prog.Instrs {
		st, err := a.opCost(in.Op, stripes)
		if err != nil {
			return Stats{}, err
		}
		total.add(st)
	}
	return total, nil
}

// evalExec executes the compiled program over the stripes in list (nil
// means all of [0, stripes)) with no cost accounting — the execution half
// of Eval, which a Shard scatters across its accelerators.
//
// The fast path compiles the whole program to word-level kernels and
// evaluates it per stripe directly on the vectors' words, with temp slots
// as pooled word slabs; any ineligible instruction (or a wrapped executor,
// or DisableFastpath) routes the entire program through the
// command-accurate device model, exactly as before.
func (a *Accelerator) evalExec(prog *expr.Program, vars map[string]*BitVector, out *BitVector, stripes int, list []int) error {
	cols := a.cfg.Module.Columns
	ex, wrapped := a.executor()
	kerns := make([]*kernel.Kernel, len(prog.Instrs))
	fast := !wrapped && !a.cfg.DisableFastpath && cols%64 == 0
	for i := 0; fast && i < len(prog.Instrs); i++ {
		if kerns[i] = a.fastKernel(prog.Instrs[i].Op, wrapped); kerns[i] == nil {
			fast = false
		}
	}

	if fast {
		a.fastHits.Inc()
		wpr := cols / 64
		slabs := sync.Pool{New: func() any {
			s := make([]uint64, prog.TempSlots*wpr)
			return &s
		}}
		res := prog.Result()
		runs := [][2]int{{0, stripes}}
		if list != nil {
			runs = stripeRuns(list)
		}
		a.fastForEachRuns(runs, func(sLo, sHi int) {
			slab := slabs.Get().(*[]uint64)
			defer slabs.Put(slab)
			ow := out.v.Words()
			for s := sLo; s < sHi; s++ {
				lo := s * wpr
				if lo >= len(ow) {
					return
				}
				hi := lo + wpr
				if hi > len(ow) {
					hi = len(ow)
				}
				wordsOf := func(r expr.Ref) []uint64 {
					if r.Temp {
						return (*slab)[r.Index*wpr : r.Index*wpr+(hi-lo)]
					}
					return vars[prog.Vars[r.Index]].v.Words()[lo:hi]
				}
				for i, in := range prog.Instrs {
					var bw []uint64
					if !in.Op.Unary() {
						bw = wordsOf(in.B)
					}
					kerns[i].Apply(wordsOf(in.Dst), wordsOf(in.A), bw)
				}
				copy(ow[lo:hi], wordsOf(res))
				if hi == len(ow) {
					out.v.MaskTail()
				}
			}
		})
		return nil
	}

	a.fastFallbacks.Inc()
	varRows := make([]int, len(prog.Vars))
	for i := range varRows {
		varRows[i] = i
	}
	scratchBase := len(prog.Vars)
	body := func(s int, sub *dram.Subarray, buf *bitvec.Vector) error {
		for i, name := range prog.Vars {
			loadStripe(buf, vars[name].v, s, cols)
			sub.LoadRow(varRows[i], buf)
		}
		resRow, err := prog.Execute(sub, ex, varRows, scratchBase)
		if err != nil {
			return err
		}
		storeStripe(out.v, sub.RowData(resRow), s, cols)
		return nil
	}
	if list != nil {
		return a.forEachStripeList(list, body)
	}
	return a.forEachStripe(stripes, body)
}
