package elp2im

import (
	"errors"
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/dram"
	"repro/internal/expr"
)

// Eval evaluates a boolean expression over named bulk bit-vectors entirely
// in DRAM and returns the result vector plus the modeled cost.
//
// The expression language supports & | ^ ~ and parentheses over
// identifiers; it is compiled once per call (common-subexpression
// elimination, NAND/NOR/XNOR gate fusion, liveness-based scratch-row
// reuse) and executed through the design's real command sequences:
//
//	res, stats, err := acc.Eval("(dirty & ~referenced) | evicted", map[string]*BitVector{
//	    "dirty": d, "referenced": r, "evicted": e,
//	})
//
// All vectors must share one length. The subarray needs enough data rows
// for the variables plus the compiled temp count.
func (a *Accelerator) Eval(src string, vars map[string]*BitVector) (*BitVector, Stats, error) {
	node, err := expr.Parse(src)
	if err != nil {
		return nil, Stats{}, err
	}
	prog, err := expr.Compile(node)
	if err != nil {
		return nil, Stats{}, err
	}

	// Validate bindings and a common length.
	n := -1
	for _, name := range prog.Vars {
		v, ok := vars[name]
		if !ok || v == nil {
			return nil, Stats{}, fmt.Errorf("elp2im: expression variable %q not bound", name)
		}
		if n == -1 {
			n = v.Len()
		} else if v.Len() != n {
			return nil, Stats{}, errors.New("elp2im: expression vectors must share one length")
		}
	}
	if n == -1 {
		return nil, Stats{}, errors.New("elp2im: expression has no variables")
	}

	cols := a.cfg.Module.Columns
	needRows := len(prog.Vars) + prog.TempSlots
	if needRows > a.cfg.Module.RowsPerSubarray {
		return nil, Stats{}, fmt.Errorf("elp2im: expression needs %d rows per subarray, module has %d",
			needRows, a.cfg.Module.RowsPerSubarray)
	}

	stripes := (n + cols - 1) / cols
	out := NewBitVector(n)
	varRows := make([]int, len(prog.Vars))
	for i := range varRows {
		varRows[i] = i
	}
	scratchBase := len(prog.Vars)

	err = a.forEachStripe(stripes, func(s int, sub *dram.Subarray, buf *bitvec.Vector) error {
		for i, name := range prog.Vars {
			loadStripe(buf, vars[name].v, s, cols)
			sub.LoadRow(varRows[i], buf)
		}
		resRow, err := prog.Execute(sub, a.eng, varRows, scratchBase)
		if err != nil {
			return err
		}
		storeStripe(out.v, sub.RowData(resRow), s, cols)
		return nil
	})
	if err != nil {
		return nil, Stats{}, err
	}

	// Cost: per-stripe program cost, bank parallelism applied per op mix.
	// The program is a fixed op sequence; reuse opCost per instruction.
	var total Stats
	for _, in := range prog.Instrs {
		st, err := a.opCost(in.Op, stripes)
		if err != nil {
			return nil, Stats{}, err
		}
		total.add(st)
	}
	a.addTotals(total)
	return out, total, nil
}
