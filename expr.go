package elp2im

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/kernel"
	"repro/internal/pipeline"
	"repro/internal/plan"
)

// ErrBadExpr marks expression compilation failures — malformed source,
// unsupported shapes — as caller errors. Every error returned by
// CompileExpr (and by Eval for a bad expression) wraps it, so transports
// can map it to a client-error status (the HTTP server returns 400, not
// 500; see internal/server).
var ErrBadExpr = errors.New("bad expression")

// CompiledExpr is a compiled, reusable expression: the fused plan shared
// by every eval entry point (Accelerator.EvalExpr, Shard.EvalExpr, the
// batch submissions). Compile once with CompileExpr, evaluate many times
// over different bindings. A CompiledExpr is immutable and safe for
// concurrent use.
type CompiledExpr struct {
	plan *plan.Plan
}

// Vars returns the expression's variable names in first-appearance
// order. Callers must not modify the returned slice.
func (ce *CompiledExpr) Vars() []string { return ce.plan.Vars }

// Source returns the original expression text.
func (ce *CompiledExpr) Source() string { return ce.plan.Source }

// CompileExpr parses and compiles a boolean expression (& | ^ ~ and
// parentheses over identifiers) into its fused plan: the DAG is
// optimized (CSE, double-negation removal, NOT-into-gate fusion),
// partitioned into k-input clusters (k ≤ 6) for the fused kernel tier,
// and scheduled node-at-a-time for cost accounting and the
// command-accurate fallback (see internal/plan). Any failure wraps
// ErrBadExpr.
func CompileExpr(src string) (*CompiledExpr, error) {
	node, err := expr.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("elp2im: %w: %v", ErrBadExpr, err)
	}
	d, err := expr.BuildDAG(node)
	if err != nil {
		return nil, fmt.Errorf("elp2im: %w: %v", ErrBadExpr, err)
	}
	p, err := plan.Compile(d)
	if err != nil {
		return nil, fmt.Errorf("elp2im: %w: %v", ErrBadExpr, err)
	}
	return &CompiledExpr{plan: p}, nil
}

// Eval evaluates a boolean expression over named bulk bit-vectors entirely
// in DRAM and returns the result vector plus the modeled cost.
//
// The expression is compiled once per call — CompileExpr then EvalExpr;
// callers evaluating one expression repeatedly should compile it once
// themselves:
//
//	res, stats, err := acc.Eval("(dirty & ~referenced) | evicted", map[string]*BitVector{
//	    "dirty": d, "referenced": r, "evicted": e,
//	})
//
// All vectors must share one length. The subarray needs enough data rows
// for the variables plus the compiled temp count.
func (a *Accelerator) Eval(src string, vars map[string]*BitVector) (*BitVector, Stats, error) {
	ce, err := CompileExpr(src)
	if err != nil {
		return nil, Stats{}, err
	}
	return a.EvalExpr(ce, vars)
}

// EvalExpr evaluates a compiled expression over named bulk bit-vectors
// (see Eval). Execution picks the best available tier per call — fused
// cluster kernels, node-at-a-time kernels, or the command-accurate
// device model — with bit-identical results and modeled cost on every
// tier.
func (a *Accelerator) EvalExpr(ce *CompiledExpr, vars map[string]*BitVector) (*BitVector, Stats, error) {
	p := ce.plan
	n, err := a.evalPrep(p, vars)
	if err != nil {
		return nil, Stats{}, err
	}
	cols := a.cfg.Module.Columns
	stripes := (n + cols - 1) / cols
	out := NewBitVector(n)
	if err := a.evalExec(p, vars, out, stripes, nil); err != nil {
		return nil, Stats{}, err
	}

	// Cost: per-stripe program cost, bank parallelism applied per op mix.
	// The node-at-a-time program is the single cost source for every
	// execution tier, so fused and unfused runs account identically.
	total, err := a.evalCost(p.Prog, stripes)
	if err != nil {
		return nil, Stats{}, err
	}
	a.addTotals(total)
	return out, total, nil
}

// evalPrep validates that every plan variable is bound to a vector of one
// common length and checks the subarray row budget of the
// command-accurate fallback. It returns the common length. Shared by
// every eval entry point (the shard compiles once and scatters
// execution).
func (a *Accelerator) evalPrep(p *plan.Plan, vars map[string]*BitVector) (int, error) {
	n := -1
	for _, name := range p.Vars {
		v, ok := vars[name]
		if !ok || v == nil {
			return 0, fmt.Errorf("elp2im: expression variable %q not bound", name)
		}
		if n == -1 {
			n = v.Len()
		} else if v.Len() != n {
			return 0, errors.New("elp2im: expression vectors must share one length")
		}
	}
	if n == -1 {
		return 0, errors.New("elp2im: expression has no variables")
	}

	prog := p.Prog
	needRows := len(prog.Vars) + prog.TempSlots
	// Engines that consume XOR/XNOR's A row (ELP2IM two-buffer) make the
	// command-accurate path re-stage live operands through one extra row.
	if oc, ok := a.eng.(engine.OperandConsumer); ok {
		for _, in := range prog.Instrs {
			if oc.ConsumesOperandA(in.Op) {
				needRows++
				break
			}
		}
	}
	if needRows > a.cfg.Module.RowsPerSubarray {
		return 0, fmt.Errorf("elp2im: expression needs %d rows per subarray, module has %d",
			needRows, a.cfg.Module.RowsPerSubarray)
	}
	return n, nil
}

// ExprRowDemand reports the subarray row demand of a compiled
// expression's command-accurate fallback against this accelerator's
// module: need is the variable count plus the compiled temp slots (plus
// one when the engine consumes operand rows), have is the module's rows
// per subarray. Serving layers use it to refuse over-deep predicates
// with a client error instead of a mid-execution fault.
func (a *Accelerator) ExprRowDemand(ce *CompiledExpr) (need, have int) {
	prog := ce.plan.Prog
	need = len(prog.Vars) + prog.TempSlots
	if oc, ok := a.eng.(engine.OperandConsumer); ok {
		for _, in := range prog.Instrs {
			if oc.ConsumesOperandA(in.Op) {
				need++
				break
			}
		}
	}
	return need, a.cfg.Module.RowsPerSubarray
}

// FusionCounters reports the accelerator's eval-tier resolution counts:
// hits is the number of eval operations that ran on the fused-kernel
// tier, fallbacks the number that fell back to node-at-a-time kernels or
// the command-accurate model. The pair is the serving layer's visibility
// into whether predicates compiled through the plan IR actually execute
// fused.
func (a *Accelerator) FusionCounters() (hits, fallbacks int64) {
	return a.fusionHits.Value(), a.fusionFalls.Value()
}

// evalCost sums the program's per-instruction scheduled costs over
// `stripes` row operations.
func (a *Accelerator) evalCost(prog *expr.Program, stripes int) (Stats, error) {
	var total Stats
	for _, in := range prog.Instrs {
		st, err := a.opCost(in.Op, stripes)
		if err != nil {
			return Stats{}, err
		}
		total.add(st)
	}
	return total, nil
}

// evalRunner is one eval operation's resolved execution strategy. The
// tier — and with it executor and kernel resolution — is fixed once, at
// the operation's start (a synchronous call or a batch submission), in
// descending preference:
//
//  1. fusion tier (fused != nil): one derived k-input kernel per plan
//     cluster, applied per stripe directly on the vectors' words with
//     slot slabs for intermediates;
//  2. node-kernel tier (kerns != nil): one derived kernel per program
//     instruction, with temp-slot slabs — the pre-fusion fast path;
//  3. command-accurate tier: the node-at-a-time program executed through
//     the device model's real command sequences.
//
// A runner is safe for concurrent use across stripes: word-level bodies
// keep per-invocation state only (slabs are pooled), and the command
// tier's shared structures are read-only after resolution.
type evalRunner struct {
	a    *Accelerator
	p    *plan.Plan
	vars map[string]*BitVector
	out  *BitVector

	ex    Executor
	fused []*kernel.Fused  // fusion tier, one per cluster
	kerns []*kernel.Kernel // node-kernel tier, one per instruction
	slabs *sync.Pool       // node-kernel tier's per-stripe temp slabs
}

// evalResolve picks the operation's execution tier and resolves its
// kernels, counting one fusion and one fastpath hit/fallback per
// operation (mirroring opTasks' submission-time resolution contract:
// SetExecutor takes effect for operations started after the call).
func (a *Accelerator) evalResolve(p *plan.Plan, vars map[string]*BitVector, out *BitVector) *evalRunner {
	cols := a.cfg.Module.Columns
	ex, wrapped := a.executor()
	r := &evalRunner{a: a, p: p, vars: vars, out: out, ex: ex}
	wordOK := !wrapped && !a.cfg.DisableFastpath && cols%64 == 0
	wpr := cols / 64

	if wordOK && !a.cfg.DisableFusion {
		fused := make([]*kernel.Fused, len(p.Clusters))
		ok := true
		for i := range p.Clusters {
			fk, err := a.fused.Fused(p.Clusters[i].Spec)
			if err != nil {
				ok = false
				break
			}
			fused[i] = fk
		}
		if ok {
			a.fusionHits.Inc()
			r.fused = fused
			return r
		}
	}
	a.fusionFalls.Inc()

	if wordOK {
		prog := p.Prog
		kerns := make([]*kernel.Kernel, len(prog.Instrs))
		ok := true
		for i := range prog.Instrs {
			if kerns[i] = a.fastKernel(prog.Instrs[i].Op, wrapped); kerns[i] == nil {
				ok = false
				break
			}
		}
		if ok {
			a.fastHits.Inc()
			r.kerns = kerns
			r.slabs = slabPool(prog.TempSlots * wpr)
			return r
		}
	}
	a.fastFallbacks.Inc()
	return r
}

// fusedChunkWords is the fused tier's chunk size: 8 KiB per slot/operand
// view keeps a whole cluster chain's intermediates L1/L2-resident while
// still amortizing per-Apply setup over a thousand words.
const fusedChunkWords = 1024

// slabPool returns a pool of word slabs of the given size.
func slabPool(words int) *sync.Pool {
	return &sync.Pool{New: func() any {
		s := make([]uint64, words)
		return &s
	}}
}

// wordBody returns the word-level per-stripe-range body of the resolved
// tier, or nil when the runner is on the command-accurate tier. The body
// is safe for concurrent invocation over disjoint ranges.
func (r *evalRunner) wordBody() func(sLo, sHi int) {
	a, p := r.a, r.p
	wpr := a.cfg.Module.Columns / 64
	ow := r.out.v.Words()

	if r.fused != nil {
		res := p.Result()
		last := len(p.Clusters) - 1
		return func(sLo, sHi int) {
			// Variables are word-contiguous across stripes, so the range
			// runs as a flat word span, chunked so that every
			// inter-cluster intermediate stays cache-resident: within a
			// chunk the whole cluster chain executes before moving on, and
			// only variable reads and the final result ever touch main
			// memory. That traffic reduction — not instruction count,
			// which matches the node-at-a-time program — is the fused
			// tier's speedup.
			lo := sLo * wpr
			if lo >= len(ow) {
				return
			}
			hi := sHi * wpr
			if hi > len(ow) {
				hi = len(ow)
			}
			slab := make([]uint64, p.Slots*fusedChunkWords)
			var srcs [kernel.MaxFusedInputs][]uint64
			for base := lo; base < hi; base += fusedChunkWords {
				cm := hi - base
				if cm > fusedChunkWords {
					cm = fusedChunkWords
				}
				wordsOf := func(ref plan.Ref) []uint64 {
					if ref.Var {
						return r.vars[p.Vars[ref.Index]].v.Words()[base : base+cm]
					}
					return slab[ref.Index*fusedChunkWords : ref.Index*fusedChunkWords+cm]
				}
				for ci := range p.Clusters {
					c := &p.Clusters[ci]
					for j, in := range c.Inputs {
						srcs[j] = wordsOf(in)
					}
					// The final cluster lands directly in the output words;
					// earlier clusters fill their liveness-allocated slot.
					dst := ow[base : base+cm]
					if ci != last {
						dst = wordsOf(plan.Ref{Index: c.Out})
					}
					r.fused[ci].Apply(dst, srcs[:len(c.Inputs)])
				}
				if len(p.Clusters) == 0 {
					copy(ow[base:base+cm], wordsOf(res))
				}
			}
			if hi == len(ow) {
				r.out.v.MaskTail()
			}
		}
	}

	if r.kerns != nil {
		prog := p.Prog
		res := prog.Result()
		return func(sLo, sHi int) {
			slab := r.slabs.Get().(*[]uint64)
			defer r.slabs.Put(slab)
			for s := sLo; s < sHi; s++ {
				lo := s * wpr
				if lo >= len(ow) {
					return
				}
				hi := lo + wpr
				if hi > len(ow) {
					hi = len(ow)
				}
				wordsOf := func(ref expr.Ref) []uint64 {
					if ref.Temp {
						return (*slab)[ref.Index*wpr : ref.Index*wpr+(hi-lo)]
					}
					return r.vars[prog.Vars[ref.Index]].v.Words()[lo:hi]
				}
				for i, in := range prog.Instrs {
					var bw []uint64
					if !in.Op.Unary() {
						bw = wordsOf(in.B)
					}
					r.kerns[i].Apply(wordsOf(in.Dst), wordsOf(in.A), bw)
				}
				copy(ow[lo:hi], wordsOf(res))
				if hi == len(ow) {
					r.out.v.MaskTail()
				}
			}
		}
	}
	return nil
}

// cmdBody returns the command-accurate per-stripe body: load the
// variable rows, execute the node-at-a-time program through the device
// model, store the result row.
func (r *evalRunner) cmdBody() func(s int, sub *dram.Subarray, buf *bitvec.Vector) error {
	a, prog := r.a, r.p.Prog
	cols := a.cfg.Module.Columns
	varRows := make([]int, len(prog.Vars))
	for i := range varRows {
		varRows[i] = i
	}
	scratchBase := len(prog.Vars)
	return func(s int, sub *dram.Subarray, buf *bitvec.Vector) error {
		for i, name := range prog.Vars {
			loadStripe(buf, r.vars[name].v, s, cols)
			sub.LoadRow(varRows[i], buf)
		}
		resRow, err := prog.Execute(sub, r.ex, varRows, scratchBase)
		if err != nil {
			return err
		}
		storeStripe(r.out.v, sub.RowData(resRow), s, cols)
		return nil
	}
}

// exec runs the resolved tier over the stripes in list (nil means all of
// [0, stripes)).
func (r *evalRunner) exec(stripes int, list []int) error {
	if body := r.wordBody(); body != nil {
		runs := [][2]int{{0, stripes}}
		if list != nil {
			runs = stripeRuns(list)
		}
		r.a.fastForEachRuns(runs, body)
		return nil
	}
	body := r.cmdBody()
	if list != nil {
		return r.a.forEachStripeList(list, body)
	}
	return r.a.forEachStripe(stripes, body)
}

// evalExec executes the compiled plan over the stripes in list (nil
// means all of [0, stripes)) with no cost accounting — the execution
// half of EvalExpr, which a Shard scatters across its accelerators.
func (a *Accelerator) evalExec(p *plan.Plan, vars map[string]*BitVector, out *BitVector, stripes int, list []int) error {
	return a.evalResolve(p, vars, out).exec(stripes, list)
}

// evalTasks builds the per-serialization-group pipeline tasks executing
// a resolved eval over the grouped stripes — the batch-submission analogue
// of evalRunner.exec, with the same per-stripe span and locking behavior
// as opTasks. The runner is resolved by the caller at submission time.
func (a *Accelerator) evalTasks(r *evalRunner, groups []stripeRun) []pipeline.Task {
	word := r.wordBody()
	var cmd func(s int, sub *dram.Subarray, buf *bitvec.Vector) error
	if word == nil {
		cmd = r.cmdBody()
	}
	tasks := make([]pipeline.Task, 0, len(groups))
	for _, g := range groups {
		g := g
		tasks = append(tasks, pipeline.Task{Group: g.group, Run: func() error {
			if word != nil {
				// Pure word-level body: no device row state, so no
				// per-subarray lock (see opTasks).
				for _, s := range g.list {
					start := a.obsc.SpanStart()
					word(s, s+1)
					a.stripeSpan(start, s, nil)
				}
				return nil
			}
			buf := a.getBuf()
			defer a.putBuf(buf)
			for _, s := range g.list {
				if err := a.runStripe(g.group, s, buf, cmd); err != nil {
					return err
				}
			}
			return nil
		}})
	}
	return tasks
}
