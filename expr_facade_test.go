package elp2im

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEvalSimple(t *testing.T) {
	acc := newAcc(t, smallModule)
	rng := rand.New(rand.NewSource(1))
	n := 300
	d := RandomBitVector(rng, n)
	r := RandomBitVector(rng, n)
	e := RandomBitVector(rng, n)

	out, st, err := acc.Eval("(dirty & ~referenced) | evicted",
		map[string]*BitVector{"dirty": d, "referenced": r, "evicted": e})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := (d.Bit(i) && !r.Bit(i)) || e.Bit(i)
		if out.Bit(i) != want {
			t.Fatalf("bit %d wrong", i)
		}
	}
	if st.LatencyNS <= 0 || st.RowOps == 0 {
		t.Fatalf("implausible stats: %+v", st)
	}
}

func TestEvalAcrossDesigns(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 500
	vars := map[string]*BitVector{
		"a": RandomBitVector(rng, n),
		"b": RandomBitVector(rng, n),
		"c": RandomBitVector(rng, n),
	}
	const src = "(a & b) | (b & c) | (a & c)" // majority
	var results []*BitVector
	for _, d := range []Design{DesignELP2IM, DesignAmbit, DesignDrisaNOR} {
		acc := newAcc(t, smallModule, func(c *Config) { c.Design = d })
		out, _, err := acc.Eval(src, vars)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		results = append(results, out)
	}
	// All designs agree bit for bit.
	for i := 1; i < len(results); i++ {
		if !results[i].Equal(results[0]) {
			t.Fatal("designs disagree on expression result")
		}
	}
	// And agree with the host.
	for i := 0; i < n; i++ {
		a, b, c := vars["a"].Bit(i), vars["b"].Bit(i), vars["c"].Bit(i)
		want := a && b || b && c || a && c
		if results[0].Bit(i) != want {
			t.Fatalf("bit %d wrong", i)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	acc := newAcc(t, smallModule)
	if _, _, err := acc.Eval("a &", nil); err == nil {
		t.Error("parse error not surfaced")
	}
	if _, _, err := acc.Eval("a & b", map[string]*BitVector{"a": NewBitVector(10)}); err == nil {
		t.Error("unbound variable accepted")
	}
	if _, _, err := acc.Eval("a & b", map[string]*BitVector{
		"a": NewBitVector(10), "b": NewBitVector(11),
	}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestEvalBareVariable(t *testing.T) {
	acc := newAcc(t, smallModule)
	rng := rand.New(rand.NewSource(3))
	a := RandomBitVector(rng, 200)
	out, st, err := acc.Eval("a", map[string]*BitVector{"a": a})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(a) {
		t.Fatal("bare variable mismatch")
	}
	if st.RowOps != 0 {
		t.Fatal("bare variable should cost nothing")
	}
}

// Property: Eval matches host evaluation for random expressions.
func TestEvalProperty(t *testing.T) {
	acc := newAcc(t, smallModule)
	exprs := []string{
		"a ^ (b | ~c)",
		"~(a & b) ^ (c | a)",
		"(a | b) & ~(b ^ c)",
		"~a & ~b & ~c",
	}
	f := func(seed int64, which uint8) bool {
		src := exprs[int(which)%len(exprs)]
		rng := rand.New(rand.NewSource(seed))
		n := int(seed%400+400) % 700
		if n < 1 {
			n = 1
		}
		vars := map[string]*BitVector{
			"a": RandomBitVector(rng, n),
			"b": RandomBitVector(rng, n),
			"c": RandomBitVector(rng, n),
		}
		out, _, err := acc.Eval(src, vars)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			a, b, c := vars["a"].Bit(i), vars["b"].Bit(i), vars["c"].Bit(i)
			var want bool
			switch src {
			case "a ^ (b | ~c)":
				want = a != (b || !c)
			case "~(a & b) ^ (c | a)":
				want = !(a && b) != (c || a)
			case "(a | b) & ~(b ^ c)":
				want = (a || b) && !(b != c)
			case "~a & ~b & ~c":
				want = !a && !b && !c
			}
			if out.Bit(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
