package elp2im

import (
	"fmt"
	"io"

	"repro/internal/config"
)

// fromFile converts a loaded parameter file into an accelerator config.
func fromFile(f config.File) (Config, error) {
	cfg := Config{
		Module:             *f.Module,
		Timing:             *f.Timing,
		Power:              *f.Power,
		PowerConstrained:   f.PowerConstrained,
		ReservedRows:       f.ReservedRows,
		HighThroughputMode: f.HighThroughputMode,
		DisableFastpath:    f.DisableFastpath,
		DisableFusion:      f.DisableFusion,
	}
	switch f.Design {
	case "elp2im":
		cfg.Design = DesignELP2IM
	case "ambit":
		cfg.Design = DesignAmbit
	case "drisa":
		cfg.Design = DesignDrisaNOR
	default:
		return Config{}, fmt.Errorf("elp2im: unknown design %q", f.Design)
	}
	return cfg, nil
}

// ConfigFromJSON builds an accelerator configuration from a JSON parameter
// stream (see internal/config for the schema). Absent sections inherit the
// DDR3-1600 defaults, so a minimal file like {"design":"ambit"} works.
func ConfigFromJSON(r io.Reader) (Config, error) {
	f, err := config.Load(r)
	if err != nil {
		return Config{}, err
	}
	return fromFile(f)
}

// NewFromJSONFile builds an accelerator from a JSON parameter file.
func NewFromJSONFile(path string) (*Accelerator, error) {
	f, err := config.LoadFile(path)
	if err != nil {
		return nil, err
	}
	cfg, err := fromFile(f)
	if err != nil {
		return nil, err
	}
	return NewWithConfig(cfg)
}
