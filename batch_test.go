package elp2im

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/ambit"
	"repro/internal/bitvec"
	"repro/internal/dram"
	"repro/internal/drisa"
	"repro/internal/elpim"
	"repro/internal/engine"
	"repro/internal/sched"
)

// TestBatchMatchesOp: a batch of ops produces the same vectors and the
// same accumulated Stats as the per-call path, on every design.
func TestBatchMatchesOp(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, d := range []Design{DesignELP2IM, DesignAmbit, DesignDrisaNOR} {
		acc := newAcc(t, smallModule, func(c *Config) { c.Design = d })
		n := 3 * acc.cfg.Module.Columns
		x := RandomBitVector(rng, n)
		y := RandomBitVector(rng, n)

		const ops = 20
		serialDst := make([]*BitVector, ops)
		acc.ResetTotals()
		for i := range serialDst {
			serialDst[i] = NewBitVector(n)
			if _, err := acc.Op(OpAnd, serialDst[i], x, y); err != nil {
				t.Fatal(err)
			}
		}
		serialTotals := acc.Totals()

		acc.ResetTotals()
		b := acc.Batch()
		batchDst := make([]*BitVector, ops)
		futs := make([]*Future, ops)
		for i := range batchDst {
			batchDst[i] = NewBitVector(n)
			futs[i] = b.Submit(OpAnd, batchDst[i], x, y)
		}
		batchTotals, err := b.Wait()
		if err != nil {
			t.Fatal(err)
		}
		b.Close()
		if got := acc.Totals(); got != serialTotals {
			t.Fatalf("%v: batch session totals %+v != serial %+v", d, got, serialTotals)
		}
		if batchTotals != serialTotals {
			t.Fatalf("%v: Wait totals %+v != serial %+v", d, batchTotals, serialTotals)
		}
		for i := range batchDst {
			st, err := futs[i].Wait()
			if err != nil {
				t.Fatal(err)
			}
			if st.RowOps == 0 {
				t.Fatalf("%v: future %d reports zero row ops", d, i)
			}
			if !batchDst[i].Equal(serialDst[i]) {
				t.Fatalf("%v: batch dst %d != serial dst", d, i)
			}
		}
	}
}

// TestBatchDependencyChain: a submitted op may consume the output of an
// earlier submission without explicit synchronization — stripe s of every
// vector maps to the same subarray group, so per-group FIFO order is
// exactly submission order.
func TestBatchDependencyChain(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	acc := newAcc(t, smallModule)
	n := 5*acc.cfg.Module.Columns + 17
	a := RandomBitVector(rng, n)
	c := RandomBitVector(rng, n)
	tmp := NewBitVector(n)
	dst := NewBitVector(n)

	b := acc.Batch()
	defer b.Close()
	b.Submit(OpNot, tmp, a, nil)
	b.Submit(OpAnd, tmp, tmp, c) // in-place on the async path
	b.Submit(OpOr, dst, tmp, a)
	if _, err := b.Wait(); err != nil {
		t.Fatal(err)
	}

	t1 := NewBitVector(n)
	golden(OpNot, t1, a, nil)
	t2 := NewBitVector(n)
	golden(OpAnd, t2, t1, c)
	want := NewBitVector(n)
	golden(OpOr, want, t2, a)
	if !dst.Equal(want) {
		t.Fatal("dependency chain through the batch diverges from the oracle")
	}
}

// TestBatchConcurrentSubmit: many goroutines submitting into one batch
// (run under -race), with results and totals checked against the serial
// path.
func TestBatchConcurrentSubmit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	acc := newAcc(t, smallModule)
	n := 2 * acc.cfg.Module.Columns
	x := RandomBitVector(rng, n)
	y := RandomBitVector(rng, n)
	want := NewBitVector(n)
	golden(OpXor, want, x, y)

	b := acc.Batch()
	defer b.Close()
	const workers = 8
	const each = 10
	dsts := make([]*BitVector, workers*each)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				dst := NewBitVector(n)
				dsts[w*each+i] = dst
				f := b.Submit(OpXor, dst, x, y)
				if _, err := f.Wait(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if _, err := b.Wait(); err != nil {
		t.Fatal(err)
	}
	for i, dst := range dsts {
		if !dst.Equal(want) {
			t.Fatalf("dst %d wrong", i)
		}
	}

	// Totals: workers*each identical ops accumulate to the same value the
	// serial path produces (every addend is identical, so submission order
	// cannot matter).
	ref := newAcc(t, smallModule)
	for i := 0; i < workers*each; i++ {
		if _, err := ref.Op(OpXor, NewBitVector(n), x, y); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := acc.Totals(), ref.Totals(); got != want {
		t.Fatalf("concurrent-submit totals %+v != serial %+v", got, want)
	}
}

// TestConcurrentBatchesAndSyncOps: the documented concurrency contract —
// several Batches plus synchronous Op/Reduce calls running at once on one
// Accelerator, on disjoint vectors. Every vector's stripe s maps to the
// same shared subarray, so without the accelerator-wide per-subarray locks
// these contexts would interleave on row state and corrupt results; the
// oracle comparison (and -race) is the assertion.
func TestConcurrentBatchesAndSyncOps(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	acc := newAcc(t, smallModule)
	n := 4*acc.cfg.Module.Columns + 9
	x := RandomBitVector(rng, n)
	y := RandomBitVector(rng, n)
	z := RandomBitVector(rng, n)

	wantXor := NewBitVector(n)
	golden(OpXor, wantXor, x, y)
	wantNor := NewBitVector(n)
	golden(OpNor, wantNor, y, z)
	wantAnd := NewBitVector(n)
	golden(OpAnd, wantAnd, x, z)

	const rounds = 12
	var wg sync.WaitGroup
	batchDst := [2][]*BitVector{}
	for bi := 0; bi < 2; bi++ {
		bi := bi
		batchDst[bi] = make([]*BitVector, rounds)
		wg.Add(1)
		op, lhs, rhs := OpXor, x, y
		if bi == 1 {
			op, lhs, rhs = OpNor, y, z
		}
		go func() {
			defer wg.Done()
			b := acc.Batch()
			defer b.Close()
			for i := 0; i < rounds; i++ {
				dst := NewBitVector(n)
				batchDst[bi][i] = dst
				b.Submit(op, dst, lhs, rhs)
			}
			if _, err := b.Wait(); err != nil {
				t.Error(err)
			}
		}()
	}
	syncDst := make([]*BitVector, rounds)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			dst := NewBitVector(n)
			syncDst[i] = dst
			if _, err := acc.Op(OpAnd, dst, x, z); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	for i := 0; i < rounds; i++ {
		if !batchDst[0][i].Equal(wantXor) {
			t.Fatalf("batch 0 dst %d corrupted by concurrent execution", i)
		}
		if !batchDst[1][i].Equal(wantNor) {
			t.Fatalf("batch 1 dst %d corrupted by concurrent execution", i)
		}
		if !syncDst[i].Equal(wantAnd) {
			t.Fatalf("sync dst %d corrupted by concurrent execution", i)
		}
	}
}

// TestGroupStripesDeterministicOrder: groupStripes returns groups ordered
// by first stripe, so batch task slices — and pipeline.Future's "first
// error in task order" — are deterministic across runs.
func TestGroupStripesDeterministicOrder(t *testing.T) {
	acc := newAcc(t, smallModule)
	for _, stripes := range []int{1, 3, 8, 13} {
		runs := acc.groupStripes(stripes)
		seen := 0
		prevFirst := -1
		for i, r := range runs {
			if len(r.list) == 0 {
				t.Fatalf("stripes=%d: empty group at %d", stripes, i)
			}
			if r.list[0] <= prevFirst {
				t.Fatalf("stripes=%d: group %d first stripe %d not above previous %d",
					stripes, i, r.list[0], prevFirst)
			}
			prevFirst = r.list[0]
			for j := 1; j < len(r.list); j++ {
				if r.list[j] <= r.list[j-1] {
					t.Fatalf("stripes=%d: group %d list not ascending: %v", stripes, i, r.list)
				}
			}
			seen += len(r.list)
		}
		if seen != stripes {
			t.Fatalf("stripes=%d: groups cover %d stripes", stripes, seen)
		}
	}
}

// TestTotalsDuringBatch: Totals/ResetTotals racing a running batch is safe
// (the race detector is the assertion).
func TestTotalsDuringBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	acc := newAcc(t, smallModule)
	n := 4 * acc.cfg.Module.Columns
	x := RandomBitVector(rng, n)
	y := RandomBitVector(rng, n)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = acc.Totals()
				acc.ResetTotals()
			}
		}
	}()

	b := acc.Batch()
	for i := 0; i < 30; i++ {
		b.Submit(OpOr, NewBitVector(n), x, y)
	}
	if _, err := b.Wait(); err != nil {
		t.Fatal(err)
	}
	b.Close()
	close(stop)
	wg.Wait()
}

// TestBatchValidationErrors: submission-time errors surface on the future
// and on Wait, and a closed batch rejects new work.
func TestBatchValidationErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	acc := newAcc(t, smallModule)
	b := acc.Batch()
	n := acc.cfg.Module.Columns

	good := b.Submit(OpAnd, NewBitVector(n), RandomBitVector(rng, n), RandomBitVector(rng, n))
	bad1 := b.Submit(OpAnd, NewBitVector(n), nil, nil)
	bad2 := b.Submit(OpAnd, NewBitVector(n), NewBitVector(n), NewBitVector(n+1))
	badR := b.SubmitReduce(OpXor, NewBitVector(n), NewBitVector(n), NewBitVector(n))
	if _, err := good.Wait(); err != nil {
		t.Fatalf("good future errored: %v", err)
	}
	if _, err := bad1.Wait(); err == nil {
		t.Fatal("nil-vector submit did not error")
	}
	if _, err := bad2.Wait(); err == nil {
		t.Fatal("length-mismatch submit did not error")
	}
	if _, err := badR.Wait(); err == nil {
		t.Fatal("SubmitReduce accepted XOR")
	}
	if _, err := b.Wait(); err == nil {
		t.Fatal("Wait did not surface the submission errors")
	}
	b.Close()
	if _, err := b.Submit(OpAnd, NewBitVector(n), NewBitVector(n), NewBitVector(n)).Wait(); err == nil {
		t.Fatal("submit on closed batch did not error")
	}
}

// TestBatchReduceMatchesReduce: the async Reduce variant matches the
// synchronous one in result, per-call stats, and totals.
func TestBatchReduceMatchesReduce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, d := range []Design{DesignELP2IM, DesignAmbit, DesignDrisaNOR} {
		acc := newAcc(t, smallModule, func(c *Config) { c.Design = d })
		n := 3*acc.cfg.Module.Columns + 5
		vs := make([]*BitVector, 4)
		for i := range vs {
			vs[i] = RandomBitVector(rng, n)
		}

		acc.ResetTotals()
		serial := NewBitVector(n)
		serialSt, err := acc.Reduce(OpAnd, serial, vs...)
		if err != nil {
			t.Fatal(err)
		}
		serialTotals := acc.Totals()

		acc.ResetTotals()
		batchDst := NewBitVector(n)
		b := acc.Batch()
		f := b.SubmitReduce(OpAnd, batchDst, vs...)
		if _, err := b.Wait(); err != nil {
			t.Fatal(err)
		}
		b.Close()
		batchSt, err := f.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if !batchDst.Equal(serial) {
			t.Fatalf("%v: async reduce result differs", d)
		}
		if batchSt != serialSt {
			t.Fatalf("%v: async reduce stats %+v != %+v", d, batchSt, serialSt)
		}
		if got := acc.Totals(); got != serialTotals {
			t.Fatalf("%v: async reduce totals %+v != %+v", d, got, serialTotals)
		}
	}
}

// TestCachedCostEqualsFreshAllDesigns compares the memoized cost path
// against a cache-disabled accelerator for every (design, op) pair, and
// the process-wide scheduler memo against fresh simulations of every
// engine's compiled profile, constrained and unconstrained.
func TestCachedCostEqualsFreshAllDesigns(t *testing.T) {
	allOps := []Op{OpNot, OpAnd, OpOr, OpNand, OpNor, OpXor, OpXnor, OpCopy}
	for _, d := range []Design{DesignELP2IM, DesignAmbit, DesignDrisaNOR} {
		cached := newAcc(t, smallModule, func(c *Config) { c.Design = d })
		fresh := newAcc(t, smallModule, func(c *Config) {
			c.Design = d
			c.DisableSchedCache = true
		})
		for _, op := range allOps {
			iop := op.internal()
			for pass := 0; pass < 2; pass++ { // first fills the memo, second hits it
				cs, err := cached.opCost(iop, 7)
				if err != nil {
					t.Fatal(err)
				}
				fs, err := fresh.opCost(iop, 7)
				if err != nil {
					t.Fatal(err)
				}
				if cs != fs {
					t.Fatalf("%v %v pass %d: cached cost %+v != fresh %+v", d, op, pass, cs, fs)
				}
			}
		}
	}

	// The raw scheduler memo over every engine's compiled sequences.
	tp := DefaultConfig().Timing
	profiles := map[string]func(engine.Op) sched.OpProfile{
		"elpim": func(op engine.Op) sched.OpProfile {
			return sched.ProfileFromSeq(elpim.MustNew(elpim.DefaultConfig()).Seq(op), tp)
		},
		"ambit": func(op engine.Op) sched.OpProfile {
			return sched.ProfileFromSeq(ambit.MustNew(ambit.DefaultConfig()).Seq(op), tp)
		},
		"drisa": func(op engine.Op) sched.OpProfile {
			return sched.ProfileFromSeq(drisa.MustNew(drisa.DefaultConfig()).Seq(op), tp)
		},
	}
	for name, mk := range profiles {
		for op := engine.OpNOT; op <= engine.OpCOPY; op++ {
			p := mk(op)
			for _, constrained := range []bool{false, true} {
				cfg := sched.Config{Banks: 8, Timing: tp, PowerConstrained: constrained}
				want, err := sched.Simulate(p, cfg, 200_000)
				if err != nil {
					t.Fatal(err)
				}
				got, err := sched.CachedSimulate(p, cfg, 200_000)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("%s %v constrained=%v: cached %+v != fresh %+v",
						name, op, constrained, got, want)
				}
			}
		}
	}
}

// TestSetPowerConstrainedInvalidates: toggling the constraint invalidates
// the per-accelerator cost memo and matches an accelerator built with the
// flag from the start.
func TestSetPowerConstrainedInvalidates(t *testing.T) {
	acc := newAcc(t)
	un, err := acc.opCost(engine.OpAND, 64)
	if err != nil {
		t.Fatal(err)
	}
	acc.SetPowerConstrained(true)
	con, err := acc.opCost(engine.OpAND, 64)
	if err != nil {
		t.Fatal(err)
	}
	if con.LatencyNS <= un.LatencyNS {
		t.Fatalf("constrained latency %v not above unconstrained %v (stale cache?)",
			con.LatencyNS, un.LatencyNS)
	}
	ref := newAcc(t, func(c *Config) { c.PowerConstrained = true })
	want, err := ref.opCost(engine.OpAND, 64)
	if err != nil {
		t.Fatal(err)
	}
	if con != want {
		t.Fatalf("post-toggle cost %+v != fresh constrained cost %+v", con, want)
	}
}

// TestForEachStripeFirstErrorDeterministic injects failures into two
// distinct subarray groups and checks the lowest-stripe error wins every
// time, regardless of goroutine scheduling.
func TestForEachStripeFirstErrorDeterministic(t *testing.T) {
	acc := newAcc(t, smallModule) // 2 banks × 2 subarrays, word-aligned
	const stripes = 8
	// Stripes 2 and 5 live in different groups (different bank and
	// subarray), so their goroutines genuinely race.
	if acc.subarrayFor(2) == acc.subarrayFor(5) {
		t.Fatal("test geometry invalid: stripes 2 and 5 share a subarray")
	}
	errLow := errors.New("low stripe failure")
	errHigh := errors.New("high stripe failure")
	for round := 0; round < 100; round++ {
		err := acc.forEachStripe(stripes, func(s int, sub *dram.Subarray, buf *bitvec.Vector) error {
			switch s {
			case 2:
				return errLow
			case 5:
				return errHigh
			}
			return nil
		})
		if err != errLow {
			t.Fatalf("round %d: got %v, want %v", round, err, errLow)
		}
	}
	// A single failure in a later group still surfaces.
	err := acc.forEachStripe(stripes, func(s int, sub *dram.Subarray, buf *bitvec.Vector) error {
		if s == 5 {
			return errHigh
		}
		return nil
	})
	if err != errHigh {
		t.Fatalf("got %v, want %v", err, errHigh)
	}
	// No failure: nil.
	if err := acc.forEachStripe(stripes, func(int, *dram.Subarray, *bitvec.Vector) error { return nil }); err != nil {
		t.Fatalf("unexpected error %v", err)
	}
}
