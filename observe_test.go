package elp2im

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/sched"
)

func TestSnapshotPerOpSeries(t *testing.T) {
	acc, err := New()
	if err != nil {
		t.Fatal(err)
	}
	const n = 1 << 14
	x := NewBitVector(n)
	y := NewBitVector(n)
	dst := NewBitVector(n)
	for i := 0; i < 3; i++ {
		if _, err := acc.Op(OpAnd, dst, x, y); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := acc.Op(OpXor, dst, x, y); err != nil {
		t.Fatal(err)
	}

	s := acc.Snapshot()
	if got := s.Counter("acc.op.count.AND"); got != 3 {
		t.Errorf("acc.op.count.AND = %d, want 3", got)
	}
	if got := s.Counter("acc.op.count.XOR"); got != 1 {
		t.Errorf("acc.op.count.XOR = %d, want 1", got)
	}
	if got := s.Counter("acc.op.count.OR"); got != 0 {
		t.Errorf("acc.op.count.OR = %d, want 0", got)
	}
	lat := s.Histograms["acc.op.latency_ns.AND"]
	if lat.Count != 3 || lat.Sum <= 0 {
		t.Errorf("latency histogram: count=%d sum=%g", lat.Count, lat.Sum)
	}
	en := s.Histograms["acc.op.energy_nj.AND"]
	if en.Count != 3 || en.Sum <= 0 {
		t.Errorf("energy histogram: count=%d sum=%g", en.Count, en.Sum)
	}
	if s.Counter("acc.op.commands.AND") <= 0 || s.Counter("acc.op.wordlines.AND") <= 0 {
		t.Error("command/wordline series empty after 3 ANDs")
	}
	// On the default (fast-path) configuration the engine executes only
	// during kernel derivation — one packed probe plus one verification run
	// per op — and the facade counts every dispatched op as a fast-path hit.
	if got := s.Counter("engine.exec.ELP2IM.AND"); got != 2 {
		t.Errorf("engine.exec.ELP2IM.AND = %d, want 2 (derivation probe + verify)", got)
	}
	if got := s.Counter("acc.fastpath.hit"); got != 4 {
		t.Errorf("acc.fastpath.hit = %d, want 4", got)
	}
	if got := s.Counter("acc.fastpath.fallback"); got != 0 {
		t.Errorf("acc.fastpath.fallback = %d, want 0", got)
	}
	// The scheduler memo's counters ride along in every snapshot.
	if _, ok := s.Counters["sched.cache.hits"]; !ok {
		t.Error("snapshot missing sched.cache.hits")
	}
	// Two accelerators must not share series.
	acc2, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if got := acc2.Snapshot().Counter("acc.op.count.AND"); got != 0 {
		t.Errorf("fresh accelerator starts with count %d, want 0", got)
	}

	// With the fast path disabled the engine-level execution counters
	// advance per stripe again, and every dispatch counts as a fallback.
	slow, err := New(func(c *Config) { c.DisableFastpath = true })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := slow.Op(OpAnd, dst, x, y); err != nil {
			t.Fatal(err)
		}
	}
	ss := slow.Snapshot()
	stripes := int64(n / slow.cfg.Module.Columns)
	if got := ss.Counter("engine.exec.ELP2IM.AND"); got != 3*stripes {
		t.Errorf("command-level engine.exec.ELP2IM.AND = %d, want %d", got, 3*stripes)
	}
	if got := ss.Counter("acc.fastpath.fallback"); got != 3 {
		t.Errorf("acc.fastpath.fallback = %d, want 3", got)
	}
	if got := ss.Counter("acc.fastpath.hit"); got != 0 {
		t.Errorf("acc.fastpath.hit = %d, want 0", got)
	}
	// Command-level stripes serialize on the per-subarray locks.
	if ss.Counter("acc.lock.acquire") == 0 {
		t.Error("acc.lock.acquire = 0 after command-level ops")
	}
}

func TestSnapshotConsistentUnderConcurrentBatch(t *testing.T) {
	acc, err := New()
	if err != nil {
		t.Fatal(err)
	}
	const n = 1 << 14
	const perBatch = 8
	const batches = 4

	var wg sync.WaitGroup
	for i := 0; i < batches; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each goroutine owns its vectors: concurrent contexts with
			// overlapping vectors have undefined ordering by contract.
			x := NewBitVector(n)
			y := NewBitVector(n)
			dst := NewBitVector(n)
			b := acc.Batch()
			defer b.Close()
			for j := 0; j < perBatch; j++ {
				b.Submit(OpAnd, dst, x, y)
			}
			if _, err := b.Wait(); err != nil {
				t.Error(err)
			}
		}()
	}
	// Synchronous traffic racing the batches, plus snapshot readers.
	sx := NewBitVector(n)
	sdst := NewBitVector(n)
	for i := 0; i < 4; i++ {
		if _, err := acc.Op(OpNot, sdst, sx, nil); err != nil {
			t.Fatal(err)
		}
		_ = acc.Snapshot()
	}
	wg.Wait()

	s := acc.Snapshot()
	if got := s.Counter("acc.op.count.AND"); got != batches*perBatch {
		t.Errorf("acc.op.count.AND = %d, want %d", got, batches*perBatch)
	}
	if got := s.Counter("acc.op.count.NOT"); got != 4 {
		t.Errorf("acc.op.count.NOT = %d, want 4", got)
	}
	if got := s.Counter("batch.submitted"); got != batches*perBatch {
		t.Errorf("batch.submitted = %d, want %d", got, batches*perBatch)
	}
	if got := s.Counter("batch.waits"); got != batches {
		t.Errorf("batch.waits = %d, want %d", got, batches)
	}
	if got := s.Histograms["acc.op.latency_ns.AND"].Count; got != batches*perBatch {
		t.Errorf("latency histogram count = %d, want %d", got, batches*perBatch)
	}
	// The per-op latency sums must equal the accumulated totals exactly:
	// both fold the same cost terms.
	sum := s.Histograms["acc.op.latency_ns.AND"].Sum + s.Histograms["acc.op.latency_ns.NOT"].Sum
	if tot := acc.Totals().LatencyNS; math.Abs(sum-tot) > 1e-6*tot {
		t.Errorf("histogram latency sum %g != totals %g", sum, tot)
	}
	// All this traffic dispatched through the compiled kernels, which
	// never touch device row state and therefore never take the
	// per-subarray locks (lock counters track command-level stripes only).
	if got := s.Counter("acc.fastpath.hit"); got != batches*perBatch+4 {
		t.Errorf("acc.fastpath.hit = %d, want %d", got, batches*perBatch+4)
	}
	if s.Counter("acc.lock.acquire") != 0 {
		t.Error("fast-path stripes took per-subarray locks")
	}
	if got, max := s.Gauge("pipeline.queue.depth"), s.Gauge("pipeline.queue.depth.max"); got != 0 || max == 0 {
		t.Errorf("queue depth = %d (want 0 after drain), max = %d (want > 0)", got, max)
	}
	if got := s.Counter("pipeline.tasks"); got == 0 {
		t.Error("pipeline.tasks = 0 after batched load")
	}
}

func TestRecordAllocatesNothing(t *testing.T) {
	acc, err := New()
	if err != nil {
		t.Fatal(err)
	}
	st := Stats{LatencyNS: 100, EnergyNJ: 5, RowOps: 1, Commands: 3, Wordlines: 5}
	allocs := testing.AllocsPerRun(1000, func() {
		acc.record(OpAnd.internal(), st)
		acc.opSpan(0, OpAnd.internal(), 1, st, nil)
		acc.stripeSpan(0, 0, nil)
		acc.reduceSpan(0, OpAnd.internal(), 1, st, nil)
	})
	if allocs != 0 {
		t.Errorf("metrics/span path with tracing off allocates %.1f/op, want 0", allocs)
	}
}

func TestAveragePowerZeroLatency(t *testing.T) {
	// powerW is the guard itself.
	if got := powerW(0, 0); got != 0 || math.IsNaN(got) {
		t.Errorf("powerW(0,0) = %g, want 0", got)
	}
	if got := powerW(5, 0); got != 0 {
		t.Errorf("powerW(5,0) = %g, want 0", got)
	}
	if got := powerW(10, 4); got != 2.5 {
		t.Errorf("powerW(10,4) = %g, want 2.5", got)
	}

	// Accumulating a zero-cost stat into zero totals must not produce NaN
	// and must not leave a stale power value behind after a reset.
	var s Stats
	s.add(Stats{})
	if math.IsNaN(s.AveragePowerW) || s.AveragePowerW != 0 {
		t.Errorf("zero-total power = %g, want 0", s.AveragePowerW)
	}
	s.add(Stats{LatencyNS: 10, EnergyNJ: 20})
	if s.AveragePowerW != 2 {
		t.Errorf("power = %g, want 2", s.AveragePowerW)
	}

	acc, err := New()
	if err != nil {
		t.Fatal(err)
	}
	acc.ResetTotals()
	tot := acc.Totals()
	if math.IsNaN(tot.AveragePowerW) || tot.AveragePowerW != 0 {
		t.Errorf("reset totals power = %g, want 0", tot.AveragePowerW)
	}
}

func TestBatchTraceLoadsAsChromeArray(t *testing.T) {
	acc, err := New()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	acc.SetTracer(tr)

	const n = 1 << 14
	x := NewBitVector(n)
	y := NewBitVector(n)
	d1 := NewBitVector(n)
	d2 := NewBitVector(n)
	d3 := NewBitVector(n)
	b := acc.Batch()
	b.Submit(OpAnd, d1, x, y)
	b.Submit(OpOr, d2, x, y)
	b.Submit(OpXor, d3, x, y)
	if _, err := b.Wait(); err != nil {
		t.Fatal(err)
	}
	b.Close()
	acc.SetTracer(nil)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	// The file must parse as a Chrome trace_event array (modulo the
	// trailing comma the streaming format carries).
	text := strings.Replace(buf.String(), ",\n]", "\n]", 1)
	var events []map[string]any
	if err := json.Unmarshal([]byte(text), &events); err != nil {
		t.Fatalf("trace does not parse as a JSON array: %v", err)
	}
	cats := map[string]int{}
	for _, ev := range events {
		if ev["ph"] != "X" {
			t.Fatalf("event phase = %v, want X", ev["ph"])
		}
		cats[ev["cat"].(string)]++
	}
	// A 3-op batch must surface pipeline task spans, per-stripe spans, and
	// per-row engine spans.
	for _, cat := range []string{"pipeline", "stripe", "engine"} {
		if cats[cat] == 0 {
			t.Errorf("trace has no %q spans (got %v)", cat, cats)
		}
	}
	if int64(len(events)) != tr.Spans() {
		t.Errorf("parsed %d events, tracer reports %d", len(events), tr.Spans())
	}
}

func TestGlobalSnapshotSchedCache(t *testing.T) {
	sched.ResetCache()
	acc, err := New()
	if err != nil {
		t.Fatal(err)
	}
	const n = 1 << 14
	x := NewBitVector(n)
	y := NewBitVector(n)
	dst := NewBitVector(n)
	if _, err := acc.Op(OpAnd, dst, x, y); err != nil {
		t.Fatal(err)
	}
	// A second accelerator issuing the same op must hit the shared memo.
	acc2, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := acc2.Op(OpAnd, dst, x, y); err != nil {
		t.Fatal(err)
	}
	s := GlobalSnapshot()
	if s.Counter("sched.cache.misses") == 0 {
		t.Error("sched.cache.misses = 0 after fresh simulations")
	}
	if s.Counter("sched.cache.hits") == 0 {
		t.Error("sched.cache.hits = 0 after a repeated configuration")
	}
	if s.Gauge("sched.cache.entries") == 0 {
		t.Error("sched.cache.entries = 0")
	}
}

func TestServeDebugEndpoint(t *testing.T) {
	acc, err := New()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := acc.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Addr() == "" {
		t.Error("empty debug address")
	}
}
