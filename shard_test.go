package elp2im

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/bitvec"
)

// newShard builds a shard router over the small test module.
func newShard(t *testing.T, shards int, mutators ...func(*Config)) *Shard {
	t.Helper()
	ms := append([]func(*Config){smallModule}, mutators...)
	sh, err := NewShard(shards, ms...)
	if err != nil {
		t.Fatalf("NewShard(%d): %v", shards, err)
	}
	return sh
}

func TestNewShardValidation(t *testing.T) {
	if _, err := NewShard(0); err == nil {
		t.Fatal("NewShard(0) must fail")
	}
	if _, err := NewShard(-3); err == nil {
		t.Fatal("NewShard(-3) must fail")
	}
	sh := newShard(t, 3)
	if sh.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3", sh.Shards())
	}
	if sh.Design() == "" || sh.ReservedRows() <= 0 {
		t.Fatalf("passthroughs broken: design %q reserved %d", sh.Design(), sh.ReservedRows())
	}
}

// TestShardPlacement pins the placement function's invariants: it is a
// deterministic pure function of the stripe index, constant within a
// placement chunk, and stripeLists is an exact partition of [0, n) into
// ascending lists.
func TestShardPlacement(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		sh := newShard(t, n)
		const stripes = 257
		owner := make([]int, stripes)
		for s := 0; s < stripes; s++ {
			owner[s] = sh.shardOf(s)
			if owner[s] != sh.shardOf(s) {
				t.Fatalf("shards=%d: shardOf(%d) not deterministic", n, s)
			}
			if owner[s] < 0 || owner[s] >= n {
				t.Fatalf("shards=%d: shardOf(%d) = %d out of range", n, s, owner[s])
			}
			if s%shardChunkStripes != 0 && owner[s] != owner[s-1] {
				t.Fatalf("shards=%d: stripe %d split mid-chunk (%d vs %d)",
					n, s, owner[s], owner[s-1])
			}
		}
		lists := sh.stripeLists(stripes)
		if len(lists) != n {
			t.Fatalf("shards=%d: %d lists", n, len(lists))
		}
		seen := make([]bool, stripes)
		for i, l := range lists {
			prev := -1
			for _, s := range l {
				if s <= prev {
					t.Fatalf("shards=%d: list %d not ascending", n, i)
				}
				prev = s
				if owner[s] != i || seen[s] {
					t.Fatalf("shards=%d: stripe %d misplaced or duplicated", n, s)
				}
				seen[s] = true
			}
		}
		for s, ok := range seen {
			if !ok {
				t.Fatalf("shards=%d: stripe %d unassigned", n, s)
			}
		}
	}
}

// TestShardMatchesAccelerator drives the same mixed program through a
// single Accelerator and through shard routers of several widths, on an
// aligned and a non-word-aligned geometry, and requires bit-identical
// results, struct-equal Totals, and equal acc.op.* metric counts.
func TestShardMatchesAccelerator(t *testing.T) {
	geoms := map[string]func(*Config){
		"aligned": smallModule,
		"ragged": func(c *Config) {
			smallModule(c)
			c.Module.Columns = 100
		},
	}
	for name, geom := range geoms {
		t.Run(name, func(t *testing.T) {
			acc := newAcc(t, geom)
			cols := acc.cfg.Module.Columns
			n := 7*cols + 13 // multi-stripe, ragged tail
			rng := rand.New(rand.NewSource(42))
			mk := func() (a, b, c, d *BitVector) {
				words := func() *BitVector {
					v := NewBitVector(n)
					v.v.CopyFrom(bitvec.Random(rng, n))
					return v
				}
				return words(), words(), words(), NewBitVector(n)
			}
			run := func(op func(Op, *BitVector, *BitVector, *BitVector) (Stats, error),
				reduce func(Op, *BitVector, ...*BitVector) (Stats, error),
				a, b, c, d *BitVector) {
				for _, step := range []struct {
					o          Op
					dst, x, y2 *BitVector
				}{
					{OpAnd, d, a, b},
					{OpXor, a, d, c},
					{OpNot, b, a, nil},
					{OpCopy, c, b, nil},
				} {
					if _, err := op(step.o, step.dst, step.x, step.y2); err != nil {
						t.Fatalf("op %v: %v", step.o, err)
					}
				}
				if _, err := reduce(OpOr, d, a, b, c); err != nil {
					t.Fatalf("reduce: %v", err)
				}
			}

			rng = rand.New(rand.NewSource(42))
			aA, bA, cA, dA := mk()
			run(acc.Op, acc.Reduce, aA, bA, cA, dA)
			wantTotals := acc.Totals()
			wantSnap := acc.Snapshot()

			for _, shards := range []int{1, 2, 4, 8} {
				sh := newShard(t, shards, geom)
				rng = rand.New(rand.NewSource(42))
				a, b, c, d := mk()
				run(sh.Op, sh.Reduce, a, b, c, d)
				for i, pair := range [][2]*BitVector{{a, aA}, {b, bA}, {c, cA}, {d, dA}} {
					if !pair[0].v.Equal(pair[1].v) {
						t.Fatalf("shards=%d: vec %d diverges from single module", shards, i)
					}
				}
				if got := sh.Totals(); got != wantTotals {
					t.Fatalf("shards=%d: totals %+v != baseline %+v", shards, got, wantTotals)
				}
				snap := sh.Snapshot()
				for k, v := range wantSnap.Counters {
					if !strings.HasPrefix(k, "acc.op.") {
						continue
					}
					if snap.Counters[k] != v {
						t.Fatalf("shards=%d: counter %s = %d, baseline %d",
							shards, k, snap.Counters[k], v)
					}
				}
			}
		})
	}
}

// TestShardEval checks the scattered expression path against the single
// module, including totals.
func TestShardEval(t *testing.T) {
	acc := newAcc(t, smallModule)
	cols := acc.cfg.Module.Columns
	n := 5*cols + 7
	rng := rand.New(rand.NewSource(7))
	vars := func() map[string]*BitVector {
		m := map[string]*BitVector{}
		for _, name := range []string{"p", "q", "r"} {
			v := NewBitVector(n)
			v.v.CopyFrom(bitvec.Random(rng, n))
			m[name] = v
		}
		return m
	}
	const src = "(p & ~q) | (q ^ r)"

	rng = rand.New(rand.NewSource(7))
	wantOut, wantSt, err := acc.Eval(src, vars())
	if err != nil {
		t.Fatalf("baseline Eval: %v", err)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		sh := newShard(t, shards)
		rng = rand.New(rand.NewSource(7))
		out, st, err := sh.Eval(src, vars())
		if err != nil {
			t.Fatalf("shards=%d Eval: %v", shards, err)
		}
		if !out.v.Equal(wantOut.v) {
			t.Fatalf("shards=%d: Eval output diverges", shards)
		}
		if st != wantSt {
			t.Fatalf("shards=%d: Eval stats %+v != %+v", shards, st, wantSt)
		}
		if got := sh.Totals(); got != wantSt {
			t.Fatalf("shards=%d: totals %+v != eval stats %+v", shards, got, wantSt)
		}
		if _, _, err := sh.Eval("p &", vars()); err == nil {
			t.Fatalf("shards=%d: parse error not propagated", shards)
		}
	}
}

// TestShardBatchMatchesSync drives the same program through Shard.Op and
// through a ShardBatch and requires identical results and totals.
func TestShardBatchMatchesSync(t *testing.T) {
	for _, geom := range []func(*Config){smallModule, func(c *Config) {
		smallModule(c)
		c.Module.Columns = 100
	}} {
		for _, shards := range []int{1, 3, 4} {
			sh := newShard(t, shards, geom)
			cols := sh.cfg.Module.Columns
			n := 6*cols + 5
			rng := rand.New(rand.NewSource(99))
			a, b := NewBitVector(n), NewBitVector(n)
			a.v.CopyFrom(bitvec.Random(rng, n))
			b.v.CopyFrom(bitvec.Random(rng, n))
			d1, d2 := NewBitVector(n), NewBitVector(n)

			if _, err := sh.Op(OpNand, d1, a, b); err != nil {
				t.Fatalf("sync: %v", err)
			}
			if _, err := sh.Reduce(OpAnd, d1, a, b); err != nil {
				t.Fatalf("sync reduce: %v", err)
			}
			syncTotals := sh.Totals()
			sh.ResetTotals()

			sb := sh.Batch()
			if sb.Workers() < 1 {
				t.Fatal("batch has no workers")
			}
			sb.Submit(OpNand, d2, a, b)
			sb.SubmitReduce(OpAnd, d2, a, b)
			batchStats, err := sb.Wait()
			if err != nil {
				t.Fatalf("batch: %v", err)
			}
			sb.Close()
			if !d1.v.Equal(d2.v) {
				t.Fatalf("shards=%d: batch result diverges from sync", shards)
			}
			if got := sh.Totals(); got != syncTotals || batchStats != syncTotals {
				t.Fatalf("shards=%d: batch totals %+v / wait %+v != sync %+v",
					shards, got, batchStats, syncTotals)
			}
			// Second Wait must not double-account.
			if st, err := sb.Wait(); err != nil || st != (Stats{}) {
				t.Fatalf("repeat Wait: %+v, %v", st, err)
			}
		}
	}
}

// TestShardBatchErrors pins the failed-future contract: validation errors
// surface on Wait without corrupting the totals.
func TestShardBatchErrors(t *testing.T) {
	sh := newShard(t, 2)
	n := sh.cfg.Module.Columns * 3
	a, d := NewBitVector(n), NewBitVector(n)
	short := NewBitVector(n - 1)
	sb := sh.Batch()
	defer sb.Close()
	f := sb.Submit(OpAnd, d, a, short)
	if _, err := f.Wait(); err == nil {
		t.Fatal("length mismatch must fail")
	}
	sb.Submit(OpNot, d, a, nil)
	if _, err := sb.Wait(); err == nil {
		t.Fatal("Wait must report the failed submission")
	}
	if got := sh.Totals(); got == (Stats{}) {
		t.Fatal("successful submission must still be accounted")
	}
}

// TestShardValidation checks that the router rejects exactly what the
// single module rejects.
func TestShardValidation(t *testing.T) {
	sh := newShard(t, 2)
	n := sh.cfg.Module.Columns
	a, d := NewBitVector(n), NewBitVector(n)
	if _, err := sh.Op(OpAnd, d, a, nil); err == nil {
		t.Fatal("binary op with nil y must fail")
	}
	if _, err := sh.Op(OpAnd, d, a, NewBitVector(n-1)); err == nil {
		t.Fatal("length mismatch must fail")
	}
	if _, err := sh.Reduce(OpXor, d, a, a); err == nil {
		t.Fatal("XOR reduction must fail")
	}
	if _, err := sh.Reduce(OpAnd, d, a); err == nil {
		t.Fatal("single-operand reduction must fail")
	}
}

// TestShardPowerConstraint verifies the toggle reaches every shard: the
// constrained cost must match the constrained single module.
func TestShardPowerConstraint(t *testing.T) {
	acc := newAcc(t, smallModule)
	acc.SetPowerConstrained(true)
	n := acc.cfg.Module.Columns * 8
	a, b, d := NewBitVector(n), NewBitVector(n), NewBitVector(n)
	want, err := acc.Op(OpAnd, d, a, b)
	if err != nil {
		t.Fatal(err)
	}

	sh := newShard(t, 4)
	sh.SetPowerConstrained(true)
	got, err := sh.Op(OpAnd, d, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("constrained shard stats %+v != single module %+v", got, want)
	}
	sh.SetPowerConstrained(false)
	rel, err := sh.Op(OpAnd, d, a, b)
	if err != nil {
		t.Fatal(err)
	}
	acc.SetPowerConstrained(false)
	relWant, err := acc.Op(OpAnd, d, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if rel != relWant {
		t.Fatalf("unconstrained shard stats %+v != single module %+v", rel, relWant)
	}
}

// TestShardSnapshotShardSeries checks the per-shard scatter series: the
// stripes counters must sum to the stripes issued, and shard.count must
// report the width.
func TestShardSnapshotShardSeries(t *testing.T) {
	sh := newShard(t, 4)
	cols := sh.cfg.Module.Columns
	stripes := 9
	n := cols * stripes
	a, b, d := NewBitVector(n), NewBitVector(n), NewBitVector(n)
	if _, err := sh.Op(OpOr, d, a, b); err != nil {
		t.Fatal(err)
	}
	snap := sh.Snapshot()
	if got := snap.Gauges["shard.count"]; got != 4 {
		t.Fatalf("shard.count = %d, want 4", got)
	}
	var sum int64
	for i := 0; i < 4; i++ {
		sum += snap.Counters[counterName("shard", i, "stripes")]
	}
	if sum != int64(stripes) {
		t.Fatalf("shard stripe counters sum to %d, want %d", sum, stripes)
	}
}

// counterName builds the per-shard series name used by initObs.
func counterName(prefix string, i int, field string) string {
	return prefix + "." + string(rune('0'+i)) + "." + field
}

// collectTracer is a thread-safe span sink for tests.
type collectTracer struct {
	mu    sync.Mutex
	spans []SpanEvent
}

func (c *collectTracer) Span(ev SpanEvent) {
	c.mu.Lock()
	c.spans = append(c.spans, ev)
	c.mu.Unlock()
}

// TestShardTracer checks span delivery from the router path.
func TestShardTracer(t *testing.T) {
	sh := newShard(t, 2)
	tr := &collectTracer{}
	sh.SetTracer(tr)
	n := sh.cfg.Module.Columns * 4
	a, b, d := NewBitVector(n), NewBitVector(n), NewBitVector(n)
	if _, err := sh.Op(OpAnd, d, a, b); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Reduce(OpOr, d, a, b); err != nil {
		t.Fatal(err)
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	var sawOp, sawReduce bool
	for _, s := range tr.spans {
		if s.Cat == "shard" && s.Name == "Op(AND)" {
			sawOp = true
		}
		if s.Cat == "shard" && s.Name == "Reduce(OR)" {
			sawReduce = true
		}
	}
	if !sawOp || !sawReduce {
		t.Fatalf("router spans missing: op=%v reduce=%v (%d spans)", sawOp, sawReduce, len(tr.spans))
	}
}
