package elp2im

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestConfigFromJSONDefaults(t *testing.T) {
	cfg, err := ConfigFromJSON(strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Design != DesignELP2IM || cfg.Module.Banks != 8 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	acc, err := NewWithConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Design() != "ELP2IM" {
		t.Fatal("accelerator from JSON defaults wrong")
	}
}

func TestConfigFromJSONDesigns(t *testing.T) {
	for name, want := range map[string]Design{
		"elp2im": DesignELP2IM, "ambit": DesignAmbit, "drisa": DesignDrisaNOR,
	} {
		cfg, err := ConfigFromJSON(strings.NewReader(`{"design":"` + name + `"}`))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cfg.Design != want {
			t.Errorf("%s → %v, want %v", name, cfg.Design, want)
		}
	}
	if _, err := ConfigFromJSON(strings.NewReader(`{"design":"gpu"}`)); err == nil {
		t.Error("unknown design accepted")
	}
	if _, err := ConfigFromJSON(strings.NewReader(`{bad`)); err == nil {
		t.Error("bad JSON accepted")
	}
}

func TestNewFromJSONFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "params.json")
	src := `{
  "design": "ambit",
  "reserved_rows": 10,
  "power_constrained": true,
  "module": {"Banks": 2, "SubarraysPerBank": 2, "RowsPerSubarray": 32,
             "Columns": 128, "DualContactRows": 2}
}`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	acc, err := NewFromJSONFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Design() != "Ambit_10" {
		t.Fatalf("design = %q, want Ambit_10", acc.Design())
	}
	// And it computes.
	rng := rand.New(rand.NewSource(1))
	x := RandomBitVector(rng, 300)
	y := RandomBitVector(rng, 300)
	dst := NewBitVector(300)
	if _, err := acc.Op(OpAnd, dst, x, y); err != nil {
		t.Fatal(err)
	}
	want := NewBitVector(300)
	golden(OpAnd, want, x, y)
	if !dst.Equal(want) {
		t.Fatal("JSON-configured accelerator computed wrong result")
	}
	if _, err := NewFromJSONFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
