package elp2im

import (
	"errors"
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/dram"
	"repro/internal/pipeline"
	"repro/internal/vertical"
)

// ErrBadArith marks vertical-arithmetic validation failures — unknown
// operations, widths outside 1..64, or operand shape mismatches. Callers
// (the server) translate it to a client error.
var ErrBadArith = errors.New("bad arith operation")

// ArithOp enumerates the vertical (bit-serial) arithmetic operations the
// accelerator executes over transposed k-bit integers.
type ArithOp int

// The vertical arithmetic operation set, mirroring internal/vertical.
const (
	// ArithAdd computes z = (x + y) mod 2^w.
	ArithAdd ArithOp = iota
	// ArithSub computes z = (x - y) mod 2^w.
	ArithSub
	// ArithLt computes z = (x < y), unsigned, into a 1-bit result.
	ArithLt
	// ArithLe computes z = (x <= y), unsigned, into a 1-bit result.
	ArithLe
	// ArithEq computes z = (x == y) into a 1-bit result.
	ArithEq
	// ArithLts computes z = (x < y) over w-bit two's complement.
	ArithLts
	// ArithLes computes z = (x <= y) over w-bit two's complement.
	ArithLes
	// ArithPopcount counts each element's set bits into a
	// bits.Len(w)-bit counter.
	ArithPopcount
	// ArithSelect computes z = m ? x : y per element, with element i's
	// mask in bit i of the mask vector.
	ArithSelect
)

// internalV maps the facade op to the µProgram builder's op (the enums
// share ordering, pinned by test).
func (op ArithOp) internalV() vertical.Op { return vertical.Op(op) }

// String returns the canonical lowercase mnemonic.
func (op ArithOp) String() string { return op.internalV().String() }

// ParseArithOp maps a lowercase mnemonic ("add", "lt", "popcount", ...)
// to its ArithOp.
func ParseArithOp(s string) (ArithOp, error) {
	v, ok := vertical.ParseOp(s)
	if !ok {
		return 0, fmt.Errorf("elp2im: %w: unknown arith op %q", ErrBadArith, s)
	}
	return ArithOp(v), nil
}

// Binary reports whether the operation takes a second vertical operand.
func (op ArithOp) Binary() bool { return op.internalV().Binary() }

// Masked reports whether the operation takes a mask vector.
func (op ArithOp) Masked() bool { return op.internalV().Masked() }

// OutWidth returns the element width of the operation's result for
// w-bit operands.
func (op ArithOp) OutWidth(w int) int { return op.internalV().OutWidth(w) }

// Vertical is a set of k-bit integer elements in the vertical
// (bit-sliced, transposed) layout: bit j of element i lives at bit i of
// slice j, each slice an ordinary BitVector striped across the module
// like any other — so every slice of every element advances one bit
// position per bulk row operation.
type Vertical struct {
	width  int
	slices []*BitVector
}

// NewVertical returns an all-zero vertical vector of n elements of the
// given bit width (1..64).
func NewVertical(n, width int) (*Vertical, error) {
	if width < 1 || width > 64 {
		return nil, fmt.Errorf("elp2im: %w: element width %d out of range [1,64]", ErrBadArith, width)
	}
	if n < 1 {
		return nil, fmt.Errorf("elp2im: %w: vertical vector needs at least one element", ErrBadArith)
	}
	v := &Vertical{width: width, slices: make([]*BitVector, width)}
	for j := range v.slices {
		v.slices[j] = NewBitVector(n)
	}
	return v, nil
}

// VerticalFromElements transposes a horizontal element array into the
// vertical layout. Element bits at or above width are discarded.
func VerticalFromElements(elems []uint64, width int) (*Vertical, error) {
	v, err := NewVertical(len(elems), width)
	if err != nil {
		return nil, err
	}
	vertical.SliceInto(v.words(), elems)
	return v, nil
}

// Width returns the element width in bits.
func (v *Vertical) Width() int { return v.width }

// Len returns the number of elements.
func (v *Vertical) Len() int { return v.slices[0].Len() }

// Slice returns bit slice j (shared storage, not a copy).
func (v *Vertical) Slice(j int) *BitVector { return v.slices[j] }

// Elements transposes back to a horizontal element array.
func (v *Vertical) Elements() []uint64 {
	return vertical.Unslice(v.words(), v.Len())
}

// Element reconstructs element i.
func (v *Vertical) Element(i int) uint64 {
	var e uint64
	for j, s := range v.slices {
		if s.Bit(i) {
			e |= 1 << uint(j)
		}
	}
	return e
}

// words exposes the slices' word storage for the transpose engine.
func (v *Vertical) words() [][]uint64 {
	w := make([][]uint64, len(v.slices))
	for j, s := range v.slices {
		w[j] = s.Words()
	}
	return w
}

// CompiledArith is a vertical operation lowered to its µProgram: one
// compiled plan per step, reusable across calls and operand lengths
// (compile once per op × width, execute many).
type CompiledArith struct {
	prog *vertical.Program
}

// CompileArith synthesizes and compiles the µProgram computing op over
// width-bit elements. Failures wrap ErrBadArith.
func CompileArith(op ArithOp, width int) (*CompiledArith, error) {
	if op < 0 || int(op) >= vertical.NumOps {
		return nil, fmt.Errorf("elp2im: %w: unknown arith op %d", ErrBadArith, int(op))
	}
	p, err := vertical.Build(op.internalV(), width)
	if err != nil {
		return nil, fmt.Errorf("elp2im: %w: %v", ErrBadArith, err)
	}
	return &CompiledArith{prog: p}, nil
}

// Op returns the compiled operation.
func (ca *CompiledArith) Op() ArithOp { return ArithOp(ca.prog.Op) }

// Width returns the operand element width.
func (ca *CompiledArith) Width() int { return ca.prog.Width }

// OutWidth returns the result element width.
func (ca *CompiledArith) OutWidth() int { return ca.prog.OutWidth }

// Steps returns the µProgram's step count.
func (ca *CompiledArith) Steps() int { return ca.prog.Len() }

// binds validates the operands against the compiled program and builds
// the slice-name bindings: operand slices under their contract names,
// plus a freshly allocated result vertical (z slices) and scratch
// vectors (the result is never an operand, so steps cannot alias their
// own inputs on any tier). It returns the bindings, the result, and the
// element count.
func (ca *CompiledArith) binds(x, y *Vertical, m *BitVector) (map[string]*BitVector, *Vertical, int, error) {
	p := ca.prog
	if x == nil {
		return nil, nil, 0, fmt.Errorf("elp2im: %w: operand x is required", ErrBadArith)
	}
	if x.width != p.Width {
		return nil, nil, 0, fmt.Errorf("elp2im: %w: operand x has width %d, program wants %d",
			ErrBadArith, x.width, p.Width)
	}
	n := x.Len()
	if p.Op.Binary() {
		if y == nil {
			return nil, nil, 0, fmt.Errorf("elp2im: %w: %s needs operand y", ErrBadArith, p.Op)
		}
		if y.width != p.Width {
			return nil, nil, 0, fmt.Errorf("elp2im: %w: operand y has width %d, program wants %d",
				ErrBadArith, y.width, p.Width)
		}
		if y.Len() != n {
			return nil, nil, 0, fmt.Errorf("elp2im: %w: operands have %d and %d elements",
				ErrBadArith, n, y.Len())
		}
	} else if y != nil {
		return nil, nil, 0, fmt.Errorf("elp2im: %w: %s takes no operand y", ErrBadArith, p.Op)
	}
	if p.Op.Masked() {
		if m == nil {
			return nil, nil, 0, fmt.Errorf("elp2im: %w: %s needs a mask", ErrBadArith, p.Op)
		}
		if m.Len() != n {
			return nil, nil, 0, fmt.Errorf("elp2im: %w: mask has %d bits, want %d elements",
				ErrBadArith, m.Len(), n)
		}
	} else if m != nil {
		return nil, nil, 0, fmt.Errorf("elp2im: %w: %s takes no mask", ErrBadArith, p.Op)
	}
	out := &Vertical{width: p.OutWidth, slices: make([]*BitVector, p.OutWidth)}
	binds := make(map[string]*BitVector, 2*p.Width+p.OutWidth+len(p.Temps)+1)
	for j, s := range x.slices {
		binds[vertical.XVar(j)] = s
	}
	if p.Op.Binary() {
		for j, s := range y.slices {
			binds[vertical.YVar(j)] = s
		}
	}
	if p.Op.Masked() {
		binds[vertical.MaskVar] = m
	}
	for j := range out.slices {
		out.slices[j] = NewBitVector(n)
		binds[vertical.ZVar(j)] = out.slices[j]
	}
	for _, t := range p.Temps {
		binds[t] = NewBitVector(n)
	}
	return binds, out, n, nil
}

// arithPrep runs each step's eval validation (binding completeness and
// the command-accurate row budget) against the shared bindings.
func (a *Accelerator) arithPrep(p *vertical.Program, binds map[string]*BitVector) error {
	for i := range p.Steps {
		if _, err := a.evalPrep(p.Steps[i].Plan, binds); err != nil {
			return err
		}
	}
	return nil
}

// arithCost sums the per-step program costs — the same node-at-a-time
// pricing every eval tier shares, so vertical arithmetic accounts
// identically on fused, node-kernel, and command-accurate execution.
func (a *Accelerator) arithCost(p *vertical.Program, stripes int) (Stats, error) {
	var total Stats
	for i := range p.Steps {
		st, err := a.evalCost(p.Steps[i].Plan.Prog, stripes)
		if err != nil {
			return Stats{}, err
		}
		total.add(st)
	}
	return total, nil
}

// arithExec executes the µProgram's steps in order over the stripes in
// list (nil means all) — the execution half of ArithProg, which a Shard
// scatters. Step data flow is stripe-local, so disjoint stripe subsets
// may run concurrently as long as each observes the steps in order.
func (a *Accelerator) arithExec(p *vertical.Program, binds map[string]*BitVector, stripes int, list []int) error {
	for i := range p.Steps {
		st := &p.Steps[i]
		if err := a.evalExec(st.Plan, binds, binds[st.Dst], stripes, list); err != nil {
			return err
		}
	}
	return nil
}

// Arith executes a vertical arithmetic operation entirely in DRAM: the
// operation is synthesized for x's width, every µProgram step runs as a
// bulk bitwise operation over all elements at once, and the result comes
// back as a fresh vertical vector plus the modeled cost. Callers looping
// one operation should CompileArith once and use ArithProg.
func (a *Accelerator) Arith(op ArithOp, x, y *Vertical, m *BitVector) (*Vertical, Stats, error) {
	if x == nil {
		return nil, Stats{}, fmt.Errorf("elp2im: %w: operand x is required", ErrBadArith)
	}
	ca, err := CompileArith(op, x.Width())
	if err != nil {
		return nil, Stats{}, err
	}
	return a.ArithProg(ca, x, y, m)
}

// ArithProg executes a compiled vertical operation (see Arith).
// Execution picks the best tier per step — fused cluster kernels,
// node-at-a-time kernels, or the command-accurate device model — with
// bit-identical results and modeled cost on every tier.
func (a *Accelerator) ArithProg(ca *CompiledArith, x, y *Vertical, m *BitVector) (*Vertical, Stats, error) {
	binds, out, n, err := ca.binds(x, y, m)
	if err != nil {
		return nil, Stats{}, err
	}
	if err := a.arithPrep(ca.prog, binds); err != nil {
		return nil, Stats{}, err
	}
	cols := a.cfg.Module.Columns
	stripes := (n + cols - 1) / cols
	if err := a.arithExec(ca.prog, binds, stripes, nil); err != nil {
		return nil, Stats{}, err
	}
	total, err := a.arithCost(ca.prog, stripes)
	if err != nil {
		return nil, Stats{}, err
	}
	a.addTotals(total)
	return out, total, nil
}

// Arith executes a vertical arithmetic operation scattered across the
// shards (see Accelerator.Arith). Results and modeled cost are identical
// to a single module of the same configuration.
func (sh *Shard) Arith(op ArithOp, x, y *Vertical, m *BitVector) (*Vertical, Stats, error) {
	if x == nil {
		return nil, Stats{}, fmt.Errorf("elp2im: %w: operand x is required", ErrBadArith)
	}
	ca, err := CompileArith(op, x.Width())
	if err != nil {
		return nil, Stats{}, err
	}
	return sh.ArithProg(ca, x, y, m)
}

// ArithProg executes a compiled vertical operation scattered across the
// shards. Every shard runs the full step sequence over its own stripe
// subset — step data flow is stripe-local, so shard-parallel execution
// needs no cross-shard barriers.
func (sh *Shard) ArithProg(ca *CompiledArith, x, y *Vertical, m *BitVector) (*Vertical, Stats, error) {
	ref := sh.ref()
	binds, out, n, err := ca.binds(x, y, m)
	if err != nil {
		return nil, Stats{}, err
	}
	if err := ref.arithPrep(ca.prog, binds); err != nil {
		return nil, Stats{}, err
	}
	cols := sh.cfg.Module.Columns
	stripes := (n + cols - 1) / cols
	err = sh.scatter(stripes, func(i int, list []int) error {
		return sh.accs[i].arithExec(ca.prog, binds, stripes, list)
	})
	if err != nil {
		return nil, Stats{}, err
	}
	total, err := ref.arithCost(ca.prog, stripes)
	if err != nil {
		return nil, Stats{}, err
	}
	sh.addTotals(total)
	return out, total, nil
}

// arithTasks builds the per-serialization-group pipeline tasks executing
// a resolved µProgram over the grouped stripes: each group's task runs
// the steps in order across its stripes (step-major), which preserves
// each stripe's step ordering while groups proceed concurrently on
// disjoint words. The runners are resolved by the caller at submission
// time, one per step.
func (a *Accelerator) arithTasks(runners []*evalRunner, groups []stripeRun) []pipeline.Task {
	type stepBody struct {
		word func(sLo, sHi int)
		cmd  func(s int, sub *dram.Subarray, buf *bitvec.Vector) error
	}
	bodies := make([]stepBody, len(runners))
	needBuf := false
	for i, r := range runners {
		bodies[i].word = r.wordBody()
		if bodies[i].word == nil {
			bodies[i].cmd = r.cmdBody()
			needBuf = true
		}
	}
	tasks := make([]pipeline.Task, 0, len(groups))
	for _, g := range groups {
		g := g
		tasks = append(tasks, pipeline.Task{Group: g.group, Run: func() error {
			var buf *bitvec.Vector
			if needBuf {
				buf = a.getBuf()
				defer a.putBuf(buf)
			}
			for _, sb := range bodies {
				if sb.word != nil {
					// Pure word-level step: no device row state, so no
					// per-subarray lock (see opTasks).
					for _, s := range g.list {
						start := a.obsc.SpanStart()
						sb.word(s, s+1)
						a.stripeSpan(start, s, nil)
					}
					continue
				}
				for _, s := range g.list {
					if err := a.runStripe(g.group, s, buf, sb.cmd); err != nil {
						return err
					}
				}
			}
			return nil
		}})
	}
	return tasks
}

// SubmitArith enqueues the asynchronous variant of ArithProg: validated
// now (failures surface on the returned future), the result vertical
// allocated and returned immediately, its contents defined once the
// future completes. The aggregate cost folds into the session totals on
// Wait without per-op series records, exactly as the synchronous path
// accounts.
func (b *Batch) SubmitArith(ca *CompiledArith, x, y *Vertical, m *BitVector) (*Vertical, *Future) {
	a := b.acc
	a.batchSubmitted.Inc()
	binds, out, n, err := ca.binds(x, y, m)
	if err != nil {
		return nil, b.failed(err)
	}
	if err := a.arithPrep(ca.prog, binds); err != nil {
		return nil, b.failed(err)
	}
	cols := a.cfg.Module.Columns
	stripes := (n + cols - 1) / cols
	total, err := a.arithCost(ca.prog, stripes)
	if err != nil {
		return nil, b.failed(err)
	}
	runners := make([]*evalRunner, len(ca.prog.Steps))
	for i := range ca.prog.Steps {
		st := &ca.prog.Steps[i]
		runners[i] = a.evalResolve(st.Plan, binds, binds[st.Dst])
	}
	tasks := a.arithTasks(runners, a.groupStripes(stripes))
	return out, b.enqueue(tasks, nil, total)
}

// SubmitArith enqueues the scattered asynchronous variant of ArithProg
// (see Batch.SubmitArith). Each shard resolves its own per-step
// execution tiers at submission time.
func (sb *ShardBatch) SubmitArith(ca *CompiledArith, x, y *Vertical, m *BitVector) (*Vertical, *Future) {
	sh := sb.sh
	sh.batchSubmitted.Inc()
	ref := sh.ref()
	binds, out, n, err := ca.binds(x, y, m)
	if err != nil {
		return nil, sb.failed(err)
	}
	if err := ref.arithPrep(ca.prog, binds); err != nil {
		return nil, sb.failed(err)
	}
	cols := sh.cfg.Module.Columns
	stripes := (n + cols - 1) / cols
	total, err := ref.arithCost(ca.prog, stripes)
	if err != nil {
		return nil, sb.failed(err)
	}
	return out, sb.submitScattered(stripes, func(acc *Accelerator, groups []stripeRun) []pipeline.Task {
		runners := make([]*evalRunner, len(ca.prog.Steps))
		for i := range ca.prog.Steps {
			st := &ca.prog.Steps[i]
			runners[i] = acc.evalResolve(st.Plan, binds, binds[st.Dst])
		}
		return acc.arithTasks(runners, groups)
	}, nil, total)
}
