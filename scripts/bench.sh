#!/bin/sh
# bench.sh — run the benchmarks and emit BENCH_pipeline.json plus
# BENCH_server.json.
#
# Part 1 (BENCH_pipeline.json) compares three modes of issuing row-wide
# ops through the facade:
#   single_call_uncached : per-call Op with the scheduler memo disabled
#                          (the pre-memoization baseline)
#   single_call_cached   : per-call Op with the memo on (default)
#   batched              : ops submitted through Accelerator.Batch
#
# plus the two execution modes of the functional hot loop on an 8 Mbit AND
# (see DESIGN.md "Execution modes"):
#   fastpath             : compiled word-level kernels (default)
#   fallback             : command-accurate device model (DisableFastpath)
#
# When the output file already exists, its previous values are echoed as a
# before/after delta so regressions are visible at a glance.
#
# Part 2 (BENCH_server.json) drives an in-process elpd with elpload's
# mixed concurrent workload and records achieved QPS, latency
# percentiles, and the micro-batcher's mean batch occupancy.
#
# Part 3 (BENCH_shards.json) sweeps elpload's BulkAND workload (-mix
# and=1) over shard counts and records, per point, the wall-clock
# achieved_qps, p99 latency, and modeled_qps — completed ops divided by
# the modeled hardware makespan (MAX over per-shard modeled busy times).
# modeled_qps is the scaling metric: shards model concurrently executing
# ranks, so it scales with the shard count even when the host has fewer
# cores than shards and wall-clock throughput cannot (see EXPERIMENTS.md
# "Reading BENCH_shards.json").
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME        go test -benchtime value (default 200x)
#   SERVER_CLIENTS   elpload concurrent clients (default 64)
#   SERVER_DURATION  elpload load duration (default 2s)
#   SERVER_BITS      elpload operand length in bits (default 65536)
#   SHARD_COUNTS     part-3 sweep points (default "1 2 4")
#   SHARD_CLIENTS    part-3 concurrent clients (default 32)
#   SHARD_DURATION   part-3 load duration per point (default 2s)
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_pipeline.json}"
benchtime="${BENCHTIME:-200x}"

prev=""
if [ -f "$out" ]; then
	prev=$(cat "$out")
fi

raw=$(go test -run '^$' \
	-bench 'BenchmarkPipeline(PerCallUncached|PerCallCached|BatchCached)$|BenchmarkAcceleratorBulkAND(Fallback)?$' \
	-benchtime "$benchtime" -benchmem .)
printf '%s\n' "$raw" >&2

# Benchmark names print with a -GOMAXPROCS suffix on multi-core machines
# (e.g. ...BulkAND-8) and bare otherwise, so the AND / ANDFallback pair
# must be anchored through the end of the name to avoid a prefix collision.
printf '%s\n' "$raw" | awk -v out="$out" '
/^BenchmarkPipelinePerCallUncached/                  { uncached = $3 }
/^BenchmarkPipelinePerCallCached/                    { cached = $3 }
/^BenchmarkPipelineBatchCached/                      { batched = $3 }
/^BenchmarkAcceleratorBulkAND(-[0-9]+)?[ \t]/         { fastpath = $3 }
/^BenchmarkAcceleratorBulkANDFallback(-[0-9]+)?[ \t]/ { fallback = $3 }
END {
	if (uncached == "" || cached == "" || batched == "" || fastpath == "" || fallback == "") {
		print "bench.sh: missing benchmark output" > "/dev/stderr"
		exit 1
	}
	printf "{\n" > out
	printf "  \"benchtime\": \"%s\",\n", ENVIRON["BENCHTIME"] != "" ? ENVIRON["BENCHTIME"] : "200x" > out
	printf "  \"single_call_uncached_ns_op\": %s,\n", uncached > out
	printf "  \"single_call_cached_ns_op\": %s,\n", cached > out
	printf "  \"batched_ns_op\": %s,\n", batched > out
	printf "  \"batch_speedup_vs_uncached\": %.2f,\n", uncached / batched > out
	printf "  \"cache_speedup_per_call\": %.2f,\n", uncached / cached > out
	printf "  \"fastpath_ns_op\": %s,\n", fastpath > out
	printf "  \"fallback_ns_op\": %s,\n", fallback > out
	printf "  \"fastpath_speedup\": %.2f\n", fallback / fastpath > out
	printf "}\n" > out
}
'
echo "wrote $out" >&2
cat "$out"

if [ -n "$prev" ]; then
	echo "bench.sh: delta vs previous $out (before -> after):" >&2
	prev_tmp=$(mktemp)
	printf '%s\n' "$prev" >"$prev_tmp"
	awk -F'[:,]' '
		NR == FNR { key = $1; val = $2; gsub(/[ "]/, "", key); gsub(/ /, "", val)
		            if (key != "" && val ~ /^-?[0-9.]+$/) prev[key] = val; next }
		{ key = $1; val = $2; gsub(/[ "]/, "", key); gsub(/ /, "", val)
		  if (key in prev && val ~ /^-?[0-9.]+$/)
		      printf "  %-28s %12s -> %s\n", key, prev[key], val }
	' "$prev_tmp" "$out" >&2
	rm -f "$prev_tmp"
fi

# Part 2: the PIM-as-a-service trajectory point. elpload with no -addr
# spawns an in-process server, drives the mixed op workload, verifies
# every Nth result client-side, and prints the report JSON on stdout.
server_out="BENCH_server.json"
server_clients="${SERVER_CLIENTS:-64}"
server_duration="${SERVER_DURATION:-2s}"
server_bits="${SERVER_BITS:-65536}"
echo "bench.sh: driving in-process elpd (${server_clients} clients, ${server_duration})" >&2
go run ./cmd/elpload \
	-clients "$server_clients" \
	-duration "$server_duration" \
	-bits "$server_bits" \
	>"$server_out"
echo "wrote $server_out" >&2
cat "$server_out"

# Part 3: throughput vs shard count on the BulkAND workload. Each point
# self-spawns a server with -shards n; the JSON keeps wall-clock and
# modeled throughput side by side (only the latter can scale on a host
# with fewer cores than shards).
shards_out="BENCH_shards.json"
shard_counts="${SHARD_COUNTS:-1 2 4}"
shard_clients="${SHARD_CLIENTS:-32}"
shard_duration="${SHARD_DURATION:-2s}"
tmp_dir=$(mktemp -d)
trap 'rm -rf "$tmp_dir"' EXIT
points=""
for n in $shard_counts; do
	echo "bench.sh: elpload BulkAND sweep, $n shard(s) (${shard_clients} clients, ${shard_duration})" >&2
	go run ./cmd/elpload \
		-shards "$n" \
		-mix and=1 \
		-clients "$shard_clients" \
		-duration "$shard_duration" \
		-bits "$server_bits" \
		>"$tmp_dir/shard_$n.json"
	vals=$(awk -F'[:,]' '
		/"achieved_qps"/            { a = $2; gsub(/ /, "", a) }
		/"modeled_qps"/             { m = $2; gsub(/ /, "", m) }
		/"p99"/ && !p99done         { p = $2; gsub(/ /, "", p); p99done = 1 }
		END { print a, p, m }' "$tmp_dir/shard_$n.json")
	points="$points$n $vals
"
done
printf '%s' "$points" | awk -v out="$shards_out" \
	-v clients="$shard_clients" -v duration="$shard_duration" '
{ n[NR] = $1; a[NR] = $2; p[NR] = $3; m[NR] = $4 }
END {
	if (NR < 2 || m[1] == "" || m[NR] == "" || m[1] + 0 <= 0) {
		print "bench.sh: missing shard-sweep output" > "/dev/stderr"
		exit 1
	}
	printf "{\n" > out
	printf "  \"workload\": \"bulk_and\",\n" > out
	printf "  \"clients\": %s,\n", clients > out
	printf "  \"duration\": \"%s\",\n", duration > out
	printf "  \"points\": [\n" > out
	for (i = 1; i <= NR; i++)
		printf "    {\"shards\": %s, \"achieved_qps\": %s, \"p99_ms\": %s, \"modeled_qps\": %s}%s\n",
			n[i], a[i], p[i], m[i], i < NR ? "," : "" > out
	printf "  ],\n" > out
	printf "  \"modeled_speedup_max_vs_1\": %.2f,\n", m[NR] / m[1] > out
	printf "  \"wall_speedup_max_vs_1\": %.2f\n", a[NR] / a[1] > out
	printf "}\n" > out
}
'
echo "wrote $shards_out" >&2
cat "$shards_out"
