#!/bin/sh
# bench.sh — run the benchmarks and emit BENCH_pipeline.json plus
# BENCH_server.json.
#
# Part 1 (BENCH_pipeline.json) compares three modes of issuing row-wide
# ops through the facade:
#   single_call_uncached : per-call Op with the scheduler memo disabled
#                          (the pre-memoization baseline)
#   single_call_cached   : per-call Op with the memo on (default)
#   batched              : ops submitted through Accelerator.Batch
#
# plus the two execution modes of the functional hot loop on an 8 Mbit AND
# (see DESIGN.md "Execution modes"):
#   fastpath             : compiled word-level kernels (default)
#   fallback             : command-accurate device model (DisableFastpath)
#
# When the output file already exists, its previous values are echoed as a
# before/after delta so regressions are visible at a glance.
#
# Part 2 (BENCH_server.json) drives an in-process elpd with elpload's
# mixed concurrent workload and records achieved QPS, latency
# percentiles, and the micro-batcher's mean batch occupancy.
#
# Part 3 (BENCH_shards.json) sweeps elpload's BulkAND workload (-mix
# and=1) over shard counts and records, per point, the wall-clock
# achieved_qps, p99 latency, and modeled_qps — completed ops divided by
# the modeled hardware makespan (MAX over per-shard modeled busy times).
# modeled_qps is the scaling metric: shards model concurrently executing
# ranks, so it scales with the shard count even when the host has fewer
# cores than shards and wall-clock throughput cannot (see EXPERIMENTS.md
# "Reading BENCH_shards.json").
#
# Part 4 (BENCH_wire.json) compares the two serving protocols — HTTP/JSON
# vs elpwire (internal/wire, length-prefixed binary frames over persistent
# multiplexed connections) — two ways: the in-process round-trip
# microbenchmarks (BenchmarkWireOp / BenchmarkJSONOp, ns/op and allocs/op)
# and an elpload sweep running the same mixed workload through each
# protocol at several shard counts, recording achieved_qps and p99 per
# point plus the wire/json throughput ratio and the response coalescer's
# flush stats (wire_flushes, wire_frames_per_flush — frames-per-flush
# above 1 means loaded connections amortize write syscalls via writev).
#
# Every emitted file carries a "host" block (go version, CPU count,
# GOMAXPROCS) so wall-clock numbers are interpretable across machines.
#
# Part 5 (BENCH_eval.json) sweeps BenchmarkEvalDAG: one expression DAG
# per depth (1..6), evaluated over 1 Mbit operands through both
# word-level tiers — the fused plan (packed multi-gate kernels, default)
# and node-at-a-time kernels (DisableFusion) — recording ns/op per point
# and the headline depth-4 fused speedup (see EXPERIMENTS.md "Reading
# BENCH_eval.json").
#
# Part 6 (BENCH_vertical.json) sweeps BenchmarkVerticalArith: one
# vertical k-bit add over 1M elements per width (4/8/16/32), through
# both execution tiers (fused vs node-at-a-time), plus the transpose
# engine's slice/unslice ns/elem — the bit-serial arithmetic cost curve
# (see EXPERIMENTS.md "Reading BENCH_vertical.json").
#
# Part 7 (BENCH_query.json) drives elpload's bitmap-index query workload
# (-query: boolean predicates over per-client namespaces through
# POST /v1/query, Zipfian index popularity, mixed count/positions/bits
# result modes, every response verified against a host oracle) across
# shards {1, 4} × fusion {on, off}, recording achieved_qps, p99,
# modeled_qps, and the server's fusion_hits / fusion_fallbacks counters
# per point (see EXPERIMENTS.md "Reading BENCH_query.json").
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME        go test -benchtime value (default 200x)
#   EVAL_BENCHTIME   part-5 -benchtime value (default 1000x — eval
#                    latencies are ~0.1 ms, so long runs stay cheap and
#                    average out allocator/GC phase noise)
#   VERT_BENCHTIME   part-6 -benchtime value (default 100x — 1M-element
#                    operands make single runs ~1-5 ms)
#   SERVER_CLIENTS   elpload concurrent clients (default 64)
#   SERVER_DURATION  elpload load duration (default 2s)
#   SERVER_BITS      elpload operand length in bits (default 65536)
#   SHARD_COUNTS     part-3 sweep points (default "1 2 4")
#   SHARD_CLIENTS    part-3 concurrent clients (default 32)
#   SHARD_DURATION   part-3 load duration per point (default 2s)
#   WIRE_SHARDS      part-4 sweep points (default "1 2 4")
#   WIRE_CLIENTS     part-4 concurrent clients (default 64)
#   WIRE_DURATION    part-4 load duration per point+protocol (default 2s)
#   WIRE_BITS        part-4 operand length in bits (default 4096 — small
#                    operands so serialization/transport cost dominates
#                    over the accelerator compute both protocols share;
#                    that is the quantity part 4 measures)
#   QUERY_SHARDS     part-7 sweep points (default "1 4")
#   QUERY_CLIENTS    part-7 concurrent clients (default 32)
#   QUERY_DURATION   part-7 load duration per point (default 2s)
#   QUERY_BITS       part-7 index universe in bits (default 65536)
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_pipeline.json}"
benchtime="${BENCHTIME:-200x}"

# Host context, embedded in every emitted BENCH_*.json so wall-clock
# numbers stay interpretable across machines (e.g. a flat QPS-vs-shards
# curve on a 1-core runner). elpload embeds the same block itself
# (Report.Host); these values cover the awk-assembled files.
host_go=$(go env GOVERSION)
host_ncpu=$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 1)
host_maxprocs="${GOMAXPROCS:-$host_ncpu}"
host_json="\"host\": {\"go_version\": \"${host_go}\", \"num_cpu\": ${host_ncpu}, \"gomaxprocs\": ${host_maxprocs}}"

prev=""
if [ -f "$out" ]; then
	prev=$(cat "$out")
fi

raw=$(go test -run '^$' \
	-bench 'BenchmarkPipeline(PerCallUncached|PerCallCached|BatchCached)$|BenchmarkAcceleratorBulkAND(Fallback)?$' \
	-benchtime "$benchtime" -benchmem .)
printf '%s\n' "$raw" >&2

# Benchmark names print with a -GOMAXPROCS suffix on multi-core machines
# (e.g. ...BulkAND-8) and bare otherwise, so the AND / ANDFallback pair
# must be anchored through the end of the name to avoid a prefix collision.
printf '%s\n' "$raw" | awk -v out="$out" -v host="$host_json" '
/^BenchmarkPipelinePerCallUncached/                  { uncached = $3 }
/^BenchmarkPipelinePerCallCached/                    { cached = $3 }
/^BenchmarkPipelineBatchCached/                      { batched = $3 }
/^BenchmarkAcceleratorBulkAND(-[0-9]+)?[ \t]/         { fastpath = $3 }
/^BenchmarkAcceleratorBulkANDFallback(-[0-9]+)?[ \t]/ { fallback = $3 }
END {
	if (uncached == "" || cached == "" || batched == "" || fastpath == "" || fallback == "") {
		print "bench.sh: missing benchmark output" > "/dev/stderr"
		exit 1
	}
	printf "{\n" > out
	printf "  %s,\n", host > out
	printf "  \"benchtime\": \"%s\",\n", ENVIRON["BENCHTIME"] != "" ? ENVIRON["BENCHTIME"] : "200x" > out
	printf "  \"single_call_uncached_ns_op\": %s,\n", uncached > out
	printf "  \"single_call_cached_ns_op\": %s,\n", cached > out
	printf "  \"batched_ns_op\": %s,\n", batched > out
	printf "  \"batch_speedup_vs_uncached\": %.2f,\n", uncached / batched > out
	printf "  \"cache_speedup_per_call\": %.2f,\n", uncached / cached > out
	printf "  \"fastpath_ns_op\": %s,\n", fastpath > out
	printf "  \"fallback_ns_op\": %s,\n", fallback > out
	printf "  \"fastpath_speedup\": %.2f\n", fallback / fastpath > out
	printf "}\n" > out
}
'
echo "wrote $out" >&2
cat "$out"

if [ -n "$prev" ]; then
	echo "bench.sh: delta vs previous $out (before -> after):" >&2
	prev_tmp=$(mktemp)
	printf '%s\n' "$prev" >"$prev_tmp"
	awk -F'[:,]' '
		NR == FNR { key = $1; val = $2; gsub(/[ "]/, "", key); gsub(/ /, "", val)
		            if (key != "" && val ~ /^-?[0-9.]+$/) prev[key] = val; next }
		{ key = $1; val = $2; gsub(/[ "]/, "", key); gsub(/ /, "", val)
		  if (key in prev && val ~ /^-?[0-9.]+$/)
		      printf "  %-28s %12s -> %s\n", key, prev[key], val }
	' "$prev_tmp" "$out" >&2
	rm -f "$prev_tmp"
fi

# Part 2: the PIM-as-a-service trajectory point. elpload with no -addr
# spawns an in-process server, drives the mixed op workload, verifies
# every Nth result client-side, and prints the report JSON on stdout.
server_out="BENCH_server.json"
server_clients="${SERVER_CLIENTS:-64}"
server_duration="${SERVER_DURATION:-2s}"
server_bits="${SERVER_BITS:-65536}"
echo "bench.sh: driving in-process elpd (${server_clients} clients, ${server_duration})" >&2
go run ./cmd/elpload \
	-clients "$server_clients" \
	-duration "$server_duration" \
	-bits "$server_bits" \
	>"$server_out"
echo "wrote $server_out" >&2
cat "$server_out"

# Part 3: throughput vs shard count on the BulkAND workload. Each point
# self-spawns a server with -shards n; the JSON keeps wall-clock and
# modeled throughput side by side (only the latter can scale on a host
# with fewer cores than shards).
shards_out="BENCH_shards.json"
shard_counts="${SHARD_COUNTS:-1 2 4}"
shard_clients="${SHARD_CLIENTS:-32}"
shard_duration="${SHARD_DURATION:-2s}"
tmp_dir=$(mktemp -d)
trap 'rm -rf "$tmp_dir"' EXIT
points=""
for n in $shard_counts; do
	echo "bench.sh: elpload BulkAND sweep, $n shard(s) (${shard_clients} clients, ${shard_duration})" >&2
	go run ./cmd/elpload \
		-shards "$n" \
		-mix and=1 \
		-clients "$shard_clients" \
		-duration "$shard_duration" \
		-bits "$server_bits" \
		>"$tmp_dir/shard_$n.json"
	vals=$(awk -F'[:,]' '
		/"achieved_qps"/            { a = $2; gsub(/ /, "", a) }
		/"modeled_qps"/             { m = $2; gsub(/ /, "", m) }
		/"p99"/ && !p99done         { p = $2; gsub(/ /, "", p); p99done = 1 }
		END { print a, p, m }' "$tmp_dir/shard_$n.json")
	points="$points$n $vals
"
done
printf '%s' "$points" | awk -v out="$shards_out" -v host="$host_json" \
	-v clients="$shard_clients" -v duration="$shard_duration" '
{ n[NR] = $1; a[NR] = $2; p[NR] = $3; m[NR] = $4 }
END {
	if (NR < 2 || m[1] == "" || m[NR] == "" || m[1] + 0 <= 0) {
		print "bench.sh: missing shard-sweep output" > "/dev/stderr"
		exit 1
	}
	printf "{\n" > out
	printf "  %s,\n", host > out
	printf "  \"workload\": \"bulk_and\",\n" > out
	printf "  \"clients\": %s,\n", clients > out
	printf "  \"duration\": \"%s\",\n", duration > out
	printf "  \"points\": [\n" > out
	for (i = 1; i <= NR; i++)
		printf "    {\"shards\": %s, \"achieved_qps\": %s, \"p99_ms\": %s, \"modeled_qps\": %s}%s\n",
			n[i], a[i], p[i], m[i], i < NR ? "," : "" > out
	printf "  ],\n" > out
	printf "  \"modeled_speedup_max_vs_1\": %.2f,\n", m[NR] / m[1] > out
	printf "  \"wall_speedup_max_vs_1\": %.2f\n", a[NR] / a[1] > out
	printf "}\n" > out
}
'
echo "wrote $shards_out" >&2
cat "$shards_out"

# Part 4: JSON vs wire. First the in-process round-trip microbenchmarks
# (one op through a real listener per iteration), then the elpload sweep:
# the same mixed workload through each protocol at each shard count.
wire_out="BENCH_wire.json"
wire_shards="${WIRE_SHARDS:-1 2 4}"
wire_clients="${WIRE_CLIENTS:-64}"
wire_duration="${WIRE_DURATION:-2s}"
wire_bits="${WIRE_BITS:-4096}"
echo "bench.sh: protocol microbenchmarks (BenchmarkWireOp vs BenchmarkJSONOp)" >&2
wire_raw=$(go test -run '^$' -bench 'BenchmarkWireOp$|BenchmarkJSONOp$' \
	-benchtime "$benchtime" -benchmem ./internal/server)
printf '%s\n' "$wire_raw" >&2
micro=$(printf '%s\n' "$wire_raw" | awk '
/^BenchmarkWireOp(-[0-9]+)?[ \t]/ { wns = $3; wal = $(NF-1) }
/^BenchmarkJSONOp(-[0-9]+)?[ \t]/ { jns = $3; jal = $(NF-1) }
END {
	if (wns == "" || jns == "") { print "bench.sh: missing protocol benchmark output" > "/dev/stderr"; exit 1 }
	print wns, wal, jns, jal
}')

wpoints=""
for n in $wire_shards; do
	for proto in json wire; do
		wflag=""
		if [ "$proto" = "wire" ]; then wflag="-wire"; fi
		echo "bench.sh: elpload $proto sweep, $n shard(s) (${wire_clients} clients, ${wire_duration})" >&2
		go run ./cmd/elpload \
			-shards "$n" \
			-clients "$wire_clients" \
			-duration "$wire_duration" \
			-bits "$wire_bits" \
			$wflag \
			>"$tmp_dir/wire_${proto}_$n.json"
		vals=$(awk -F'[:,]' '
			/"achieved_qps"/          { a = $2; gsub(/ /, "", a) }
			/"p99"/ && !p99done       { p = $2; gsub(/ /, "", p); p99done = 1 }
			/"wire_flushes"/          { fl = $2; gsub(/ /, "", fl) }
			/"wire_frames_per_flush"/ { ff = $2; gsub(/ /, "", ff) }
			END {
				if (fl == "") fl = 0
				if (ff == "") ff = 0
				print a, p, fl, ff
			}' "$tmp_dir/wire_${proto}_$n.json")
		wpoints="$wpoints$n $proto $vals
"
	done
done
printf '%s' "$wpoints" | awk -v out="$wire_out" -v micro="$micro" -v host="$host_json" \
	-v clients="$wire_clients" -v duration="$wire_duration" -v bits="$wire_bits" '
$2 == "json" { jq[$1] = $3; jp[$1] = $4; if (!($1 in seen)) { order[++np] = $1; seen[$1] = 1 } }
$2 == "wire" { wq[$1] = $3; wp[$1] = $4; wfl[$1] = $5; wff[$1] = $6
               if (!($1 in seen)) { order[++np] = $1; seen[$1] = 1 } }
END {
	split(micro, m, " ")
	if (np < 1 || m[1] == "" || m[3] == "") {
		print "bench.sh: missing wire-sweep output" > "/dev/stderr"
		exit 1
	}
	printf "{\n" > out
	printf "  %s,\n", host > out
	printf "  \"clients\": %s,\n", clients > out
	printf "  \"duration\": \"%s\",\n", duration > out
	printf "  \"bits\": %s,\n", bits > out
	printf "  \"microbench\": {\n" > out
	printf "    \"wire_op_ns_op\": %s,\n", m[1] > out
	printf "    \"wire_op_allocs_op\": %s,\n", m[2] > out
	printf "    \"json_op_ns_op\": %s,\n", m[3] > out
	printf "    \"json_op_allocs_op\": %s,\n", m[4] > out
	printf "    \"wire_speedup\": %.2f\n", m[3] / m[1] > out
	printf "  },\n" > out
	printf "  \"points\": [\n" > out
	for (i = 1; i <= np; i++) {
		n = order[i]
		printf "    {\"shards\": %s, \"json_qps\": %s, \"json_p99_ms\": %s, \"wire_qps\": %s, \"wire_p99_ms\": %s, \"wire_qps_ratio\": %.2f, \"wire_flushes\": %s, \"wire_frames_per_flush\": %s}%s\n",
			n, jq[n], jp[n], wq[n], wp[n], wq[n] / jq[n], wfl[n], wff[n], i < np ? "," : "" > out
	}
	printf "  ]\n" > out
	printf "}\n" > out
}
'
echo "wrote $wire_out" >&2
cat "$wire_out"

# Part 5: fused eval vs node-at-a-time kernels over the DAG depth sweep.
# Both tiers run the identical plan; the fused tier's advantage is pass
# packing (up to three gates per generated word loop), so the speedup
# grows with depth as clusters get more gates to pack.
eval_out="BENCH_eval.json"
eval_benchtime="${EVAL_BENCHTIME:-1000x}"
echo "bench.sh: eval DAG sweep (BenchmarkEvalDAG, ${eval_benchtime})" >&2
eval_raw=$(go test -run '^$' -bench 'BenchmarkEvalDAG' -benchtime "$eval_benchtime" .)
printf '%s\n' "$eval_raw" >&2
printf '%s\n' "$eval_raw" | awk -v out="$eval_out" -v host="$host_json" -v benchtime="$eval_benchtime" '
/^BenchmarkEvalDAG\// {
	split($1, parts, "/")
	depth = substr(parts[2], 6)
	tier = parts[3]
	sub(/-[0-9]+$/, "", tier)
	if (tier == "fused") f[depth] = $3
	else n[depth] = $3
	if (!(depth in seen)) { order[++np] = depth; seen[depth] = 1 }
}
END {
	if (np < 1 || f[4] == "" || n[4] == "") {
		print "bench.sh: missing eval benchmark output" > "/dev/stderr"
		exit 1
	}
	printf "{\n" > out
	printf "  %s,\n", host > out
	printf "  \"benchtime\": \"%s\",\n", benchtime > out
	printf "  \"bits\": 1048576,\n" > out
	printf "  \"points\": [\n" > out
	for (i = 1; i <= np; i++) {
		d = order[i]
		printf "    {\"depth\": %s, \"fused_ns_op\": %s, \"node_ns_op\": %s, \"fused_speedup\": %.2f}%s\n",
			d, f[d], n[d], n[d] / f[d], i < np ? "," : "" > out
	}
	printf "  ],\n" > out
	printf "  \"depth4_fused_speedup\": %.2f\n", n[4] / f[4] > out
	printf "}\n" > out
}
'
echo "wrote $eval_out" >&2
cat "$eval_out"

# Part 6: the vertical (bit-serial) arithmetic cost curve. One k-bit add
# per width through both execution tiers — the µProgram's step count
# grows linearly with width, so ns/elem traces the bit-serial latency
# model — plus the transpose engine's ingest/readback throughput.
vert_out="BENCH_vertical.json"
vert_benchtime="${VERT_BENCHTIME:-100x}"
echo "bench.sh: vertical arith sweep (BenchmarkVerticalArith, ${vert_benchtime})" >&2
vert_raw=$(go test -run '^$' -bench 'BenchmarkVertical(Arith|Transpose)' -benchtime "$vert_benchtime" .)
printf '%s\n' "$vert_raw" >&2
printf '%s\n' "$vert_raw" | awk -v out="$vert_out" -v host="$host_json" -v benchtime="$vert_benchtime" '
/^BenchmarkVerticalTranspose\/slice/   { tslice = nsElem($0) }
/^BenchmarkVerticalTranspose\/unslice/ { tunslice = nsElem($0) }
/^BenchmarkVerticalArith\// {
	split($1, parts, "/")
	w = substr(parts[3], 2)
	tier = parts[4]
	sub(/-[0-9]+$/, "", tier)
	if (tier == "fused") { f[w] = $3; fel[w] = nsElem($0) }
	else { n[w] = $3; nel[w] = nsElem($0) }
	for (i = 1; i <= NF; i++) if ($(i+1) == "steps") steps[w] = $i
	for (i = 1; i <= NF; i++) if ($(i+1) == "modeled_ns") modeled[w] = $i
	if (!(w in seen)) { order[++np] = w; seen[w] = 1 }
}
function nsElem(line,   a, i, k) {
	k = split(line, a, " ")
	for (i = 1; i < k; i++)
		if (a[i+1] == "ns/elem") return a[i]
	return ""
}
END {
	if (np < 1 || f[8] == "" || n[8] == "") {
		print "bench.sh: missing vertical benchmark output" > "/dev/stderr"
		exit 1
	}
	printf "{\n" > out
	printf "  %s,\n", host > out
	printf "  \"benchtime\": \"%s\",\n", benchtime > out
	printf "  \"elems\": 1048576,\n" > out
	printf "  \"transpose\": {\"slice_ns_elem\": %s, \"unslice_ns_elem\": %s},\n", tslice, tunslice > out
	printf "  \"points\": [\n" > out
	for (i = 1; i <= np; i++) {
		w = order[i]
		printf "    {\"width\": %s, \"steps\": %s, \"modeled_ns\": %s, \"fused_ns_op\": %s, \"node_ns_op\": %s, \"fused_ns_elem\": %s, \"node_ns_elem\": %s, \"fused_speedup\": %.2f}%s\n",
			w, steps[w], modeled[w], f[w], n[w], fel[w], nel[w], n[w] / f[w], i < np ? "," : "" > out
	}
	printf "  ],\n" > out
	printf "  \"width32_fused_speedup\": %.2f\n", n[32] / f[32] > out
	printf "}\n" > out
}
'
echo "wrote $vert_out" >&2
cat "$vert_out"

# Part 7: the bitmap-index query workload. Each point self-spawns a
# server with -shards n (and -disable-fusion for the "off" leg) and runs
# elpload -query: boolean predicates through the plan IR with host-oracle
# verification. fusion_hits / fusion_fallbacks come from the final
# /v1/stats scrape embedded in the report, pinning which tier actually
# served the point.
query_out="BENCH_query.json"
query_shards="${QUERY_SHARDS:-1 4}"
query_clients="${QUERY_CLIENTS:-32}"
query_duration="${QUERY_DURATION:-2s}"
query_bits="${QUERY_BITS:-65536}"
qpoints=""
for n in $query_shards; do
	for fusion in on off; do
		fflag=""
		if [ "$fusion" = "off" ]; then fflag="-disable-fusion"; fi
		echo "bench.sh: elpload query sweep, $n shard(s), fusion $fusion (${query_clients} clients, ${query_duration})" >&2
		go run ./cmd/elpload \
			-query \
			-shards "$n" \
			-clients "$query_clients" \
			-duration "$query_duration" \
			-bits "$query_bits" \
			$fflag \
			>"$tmp_dir/query_${fusion}_$n.json"
		vals=$(awk -F'[:,]' '
			/"achieved_qps"/       { a = $2; gsub(/ /, "", a) }
			/"modeled_qps"/        { m = $2; gsub(/ /, "", m) }
			/"p99"/ && !p99done    { p = $2; gsub(/ /, "", p); p99done = 1 }
			/"fusion_hits"/        { fh = $2; gsub(/ /, "", fh) }
			/"fusion_fallbacks"/   { ff = $2; gsub(/ /, "", ff) }
			/"verify_checks"/      { vc = $2; gsub(/ /, "", vc) }
			END { print a, p, m, fh, ff, vc }' "$tmp_dir/query_${fusion}_$n.json")
		qpoints="$qpoints$n $fusion $vals
"
	done
done
printf '%s' "$qpoints" | awk -v out="$query_out" -v host="$host_json" \
	-v clients="$query_clients" -v duration="$query_duration" -v bits="$query_bits" '
$2 == "on"  { oq[$1] = $3; op[$1] = $4; om[$1] = $5; oh[$1] = $6; ov[$1] = $8
              if (!($1 in seen)) { order[++np] = $1; seen[$1] = 1 } }
$2 == "off" { fq[$1] = $3; fp[$1] = $4; fm[$1] = $5; ff[$1] = $7
              if (!($1 in seen)) { order[++np] = $1; seen[$1] = 1 } }
END {
	first = order[1]
	if (np < 1 || om[first] == "" || fm[first] == "" || fm[first] + 0 <= 0) {
		print "bench.sh: missing query-sweep output" > "/dev/stderr"
		exit 1
	}
	printf "{\n" > out
	printf "  %s,\n", host > out
	printf "  \"workload\": \"query\",\n" > out
	printf "  \"clients\": %s,\n", clients > out
	printf "  \"duration\": \"%s\",\n", duration > out
	printf "  \"bits\": %s,\n", bits > out
	printf "  \"points\": [\n" > out
	for (i = 1; i <= np; i++) {
		n = order[i]
		printf "    {\"shards\": %s, \"fused_qps\": %s, \"fused_p99_ms\": %s, \"fused_modeled_qps\": %s, \"fusion_hits\": %s, \"nofusion_qps\": %s, \"nofusion_p99_ms\": %s, \"nofusion_modeled_qps\": %s, \"fusion_fallbacks\": %s, \"verify_checks\": %s}%s\n",
			n, oq[n], op[n], om[n], oh[n], fq[n], fp[n], fm[n], ff[n], ov[n], i < np ? "," : "" > out
	}
	printf "  ],\n" > out
	# Modeled costs are bit-identical across the two tiers by design, so
	# the headline is the wall-clock throughput ratio (host-side fused win).
	printf "  \"fused_qps_ratio_shards%s\": %.2f\n", first, oq[first] / fq[first] > out
	printf "}\n" > out
}
'
echo "wrote $query_out" >&2
cat "$query_out"
