#!/bin/sh
# bench.sh — run the benchmarks and emit BENCH_pipeline.json plus
# BENCH_server.json.
#
# Part 1 (BENCH_pipeline.json) compares three modes of issuing row-wide
# ops through the facade:
#   single_call_uncached : per-call Op with the scheduler memo disabled
#                          (the pre-memoization baseline)
#   single_call_cached   : per-call Op with the memo on (default)
#   batched              : ops submitted through Accelerator.Batch
#
# plus the two execution modes of the functional hot loop on an 8 Mbit AND
# (see DESIGN.md "Execution modes"):
#   fastpath             : compiled word-level kernels (default)
#   fallback             : command-accurate device model (DisableFastpath)
#
# When the output file already exists, its previous values are echoed as a
# before/after delta so regressions are visible at a glance.
#
# Part 2 (BENCH_server.json) drives an in-process elpd with elpload's
# mixed concurrent workload and records achieved QPS, latency
# percentiles, and the micro-batcher's mean batch occupancy.
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME        go test -benchtime value (default 200x)
#   SERVER_CLIENTS   elpload concurrent clients (default 64)
#   SERVER_DURATION  elpload load duration (default 2s)
#   SERVER_BITS      elpload operand length in bits (default 65536)
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_pipeline.json}"
benchtime="${BENCHTIME:-200x}"

prev=""
if [ -f "$out" ]; then
	prev=$(cat "$out")
fi

raw=$(go test -run '^$' \
	-bench 'BenchmarkPipeline(PerCallUncached|PerCallCached|BatchCached)$|BenchmarkAcceleratorBulkAND(Fallback)?$' \
	-benchtime "$benchtime" -benchmem .)
printf '%s\n' "$raw" >&2

# Benchmark names print with a -GOMAXPROCS suffix on multi-core machines
# (e.g. ...BulkAND-8) and bare otherwise, so the AND / ANDFallback pair
# must be anchored through the end of the name to avoid a prefix collision.
printf '%s\n' "$raw" | awk -v out="$out" '
/^BenchmarkPipelinePerCallUncached/                  { uncached = $3 }
/^BenchmarkPipelinePerCallCached/                    { cached = $3 }
/^BenchmarkPipelineBatchCached/                      { batched = $3 }
/^BenchmarkAcceleratorBulkAND(-[0-9]+)?[ \t]/         { fastpath = $3 }
/^BenchmarkAcceleratorBulkANDFallback(-[0-9]+)?[ \t]/ { fallback = $3 }
END {
	if (uncached == "" || cached == "" || batched == "" || fastpath == "" || fallback == "") {
		print "bench.sh: missing benchmark output" > "/dev/stderr"
		exit 1
	}
	printf "{\n" > out
	printf "  \"benchtime\": \"%s\",\n", ENVIRON["BENCHTIME"] != "" ? ENVIRON["BENCHTIME"] : "200x" > out
	printf "  \"single_call_uncached_ns_op\": %s,\n", uncached > out
	printf "  \"single_call_cached_ns_op\": %s,\n", cached > out
	printf "  \"batched_ns_op\": %s,\n", batched > out
	printf "  \"batch_speedup_vs_uncached\": %.2f,\n", uncached / batched > out
	printf "  \"cache_speedup_per_call\": %.2f,\n", uncached / cached > out
	printf "  \"fastpath_ns_op\": %s,\n", fastpath > out
	printf "  \"fallback_ns_op\": %s,\n", fallback > out
	printf "  \"fastpath_speedup\": %.2f\n", fallback / fastpath > out
	printf "}\n" > out
}
'
echo "wrote $out" >&2
cat "$out"

if [ -n "$prev" ]; then
	echo "bench.sh: delta vs previous $out (before -> after):" >&2
	prev_tmp=$(mktemp)
	printf '%s\n' "$prev" >"$prev_tmp"
	awk -F'[:,]' '
		NR == FNR { key = $1; val = $2; gsub(/[ "]/, "", key); gsub(/ /, "", val)
		            if (key != "" && val ~ /^-?[0-9.]+$/) prev[key] = val; next }
		{ key = $1; val = $2; gsub(/[ "]/, "", key); gsub(/ /, "", val)
		  if (key in prev && val ~ /^-?[0-9.]+$/)
		      printf "  %-28s %12s -> %s\n", key, prev[key], val }
	' "$prev_tmp" "$out" >&2
	rm -f "$prev_tmp"
fi

# Part 2: the PIM-as-a-service trajectory point. elpload with no -addr
# spawns an in-process server, drives the mixed op workload, verifies
# every Nth result client-side, and prints the report JSON on stdout.
server_out="BENCH_server.json"
server_clients="${SERVER_CLIENTS:-64}"
server_duration="${SERVER_DURATION:-2s}"
server_bits="${SERVER_BITS:-65536}"
echo "bench.sh: driving in-process elpd (${server_clients} clients, ${server_duration})" >&2
go run ./cmd/elpload \
	-clients "$server_clients" \
	-duration "$server_duration" \
	-bits "$server_bits" \
	>"$server_out"
echo "wrote $server_out" >&2
cat "$server_out"
