#!/bin/sh
# bench.sh — run the pipeline benchmarks and emit BENCH_pipeline.json.
#
# Compares three modes of issuing row-wide ops through the facade:
#   single_call_uncached : per-call Op with the scheduler memo disabled
#                          (the pre-memoization baseline)
#   single_call_cached   : per-call Op with the memo on (default)
#   batched              : ops submitted through Accelerator.Batch
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME   go test -benchtime value (default 200x)
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_pipeline.json}"
benchtime="${BENCHTIME:-200x}"

raw=$(go test -run '^$' -bench 'BenchmarkPipeline(PerCallUncached|PerCallCached|BatchCached)$' \
	-benchtime "$benchtime" .)
printf '%s\n' "$raw" >&2

printf '%s\n' "$raw" | awk -v out="$out" '
/^BenchmarkPipelinePerCallUncached/ { uncached = $3 }
/^BenchmarkPipelinePerCallCached/   { cached = $3 }
/^BenchmarkPipelineBatchCached/     { batched = $3 }
END {
	if (uncached == "" || cached == "" || batched == "") {
		print "bench.sh: missing benchmark output" > "/dev/stderr"
		exit 1
	}
	printf "{\n" > out
	printf "  \"benchtime\": \"%s\",\n", ENVIRON["BENCHTIME"] != "" ? ENVIRON["BENCHTIME"] : "200x" > out
	printf "  \"single_call_uncached_ns_op\": %s,\n", uncached > out
	printf "  \"single_call_cached_ns_op\": %s,\n", cached > out
	printf "  \"batched_ns_op\": %s,\n", batched > out
	printf "  \"batch_speedup_vs_uncached\": %.2f,\n", uncached / batched > out
	printf "  \"cache_speedup_per_call\": %.2f\n", uncached / cached > out
	printf "}\n" > out
}
'
echo "wrote $out" >&2
cat "$out"
