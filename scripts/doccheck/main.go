// Command doccheck verifies godoc hygiene for the packages named on the
// command line: every exported type, function, and method must carry a doc
// comment that begins with the identifier's name, and every exported
// const/var must be documented on the declaration or its group.
//
// Usage:
//
//	go run ./scripts/doccheck <package dir> [<package dir>...]
//
// Exit status is nonzero when any violation is found; each violation is
// printed as file:line: message. scripts/lint.sh runs it over the packages
// whose documentation the project guarantees (the root facade,
// internal/pipeline, internal/obs).
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package dir> [<package dir>...]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		n, err := checkDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		bad += n
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented or misdocumented exported identifiers\n", bad)
		os.Exit(1)
	}
}

// checkDir parses every non-test .go file in dir and reports violations.
func checkDir(dir string) (int, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	bad := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return bad, err
		}
		bad += checkFile(fset, f)
	}
	return bad, nil
}

// checkFile walks one file's top-level declarations.
func checkFile(fset *token.FileSet, f *ast.File) int {
	bad := 0
	complain := func(pos token.Pos, format string, args ...any) {
		fmt.Printf("%s: %s\n", fset.Position(pos), fmt.Sprintf(format, args...))
		bad++
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			checkName(d.Doc, d.Name.Name, d.Pos(), complain)
		case *ast.GenDecl:
			switch d.Tok {
			case token.TYPE:
				for _, spec := range d.Specs {
					ts := spec.(*ast.TypeSpec)
					if !ts.Name.IsExported() {
						continue
					}
					doc := ts.Doc
					if doc == nil {
						doc = d.Doc
					}
					checkName(doc, ts.Name.Name, ts.Pos(), complain)
				}
			case token.CONST, token.VAR:
				// A group doc comment covers every spec; otherwise each
				// exported spec needs its own.
				for _, spec := range d.Specs {
					vs := spec.(*ast.ValueSpec)
					exported := false
					for _, n := range vs.Names {
						if n.IsExported() {
							exported = true
						}
					}
					if !exported {
						continue
					}
					if d.Doc == nil && vs.Doc == nil && vs.Comment == nil {
						complain(vs.Pos(), "exported %s %s is undocumented",
							d.Tok, vs.Names[0].Name)
					}
				}
			}
		}
	}
	return bad
}

// checkName enforces the "comment starts with the identifier" convention.
func checkName(doc *ast.CommentGroup, name string, pos token.Pos, complain func(token.Pos, string, ...any)) {
	if doc == nil {
		complain(pos, "exported %s is undocumented", name)
		return
	}
	text := strings.TrimSpace(doc.Text())
	// Allow the "A Foo ..." / "An Op ..." / "The Bar ..." article forms
	// alongside the canonical "Foo ..." opening.
	for _, prefix := range []string{name, "A " + name, "An " + name, "The " + name} {
		if strings.HasPrefix(text, prefix+" ") || text == prefix {
			return
		}
	}
	complain(pos, "doc comment for %s should start with %q", name, name)
}
