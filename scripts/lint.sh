#!/usr/bin/env bash
# Static hygiene gate, part of the tier-1 verify (see ROADMAP.md):
#   1. gofmt       — no unformatted files anywhere in the repo
#   2. go vet      — whole-module analysis
#   3. doccheck    — godoc completeness for the packages whose documentation
#                    the project guarantees (root facade, internal/pipeline,
#                    internal/obs, internal/server)
#   4. race tests  — the server/micro-batcher suite, the kernel-derivation
#                    cache, the facade's fast-path/fallback concurrency
#                    tests, and the shard router + sharded differential
#                    suite under the race detector (their whole value is
#                    their concurrency envelope)
#   5. shuffle     — the full suite once with -shuffle=on, so hidden
#                    inter-test ordering dependencies fail here instead of
#                    flaking later
set -u
cd "$(dirname "$0")/.."

fail=0

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "lint: gofmt wants to reformat:" >&2
    echo "$unformatted" >&2
    fail=1
fi

if ! go vet ./...; then
    fail=1
fi

if ! go run ./scripts/doccheck . internal/pipeline internal/obs internal/server; then
    fail=1
fi

if ! go test -race -count=1 ./internal/server/...; then
    fail=1
fi

if ! go test -race -count=1 ./internal/kernel/...; then
    fail=1
fi

if ! go test -race -count=1 -run 'Fastpath|FaultWrapper' .; then
    fail=1
fi

if ! go test -race -count=1 -run 'Shard|Differential' .; then
    fail=1
fi

if ! go test -count=1 -shuffle=on ./...; then
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "lint: FAIL" >&2
    exit 1
fi
echo "lint: ok"
