#!/usr/bin/env bash
# Static hygiene gate, part of the tier-1 verify (see ROADMAP.md):
#   1. gofmt       — no unformatted files anywhere in the repo
#   2. go vet      — whole-module analysis
#   3. doccheck    — godoc completeness for the packages whose documentation
#                    the project guarantees (root facade, internal/pipeline,
#                    internal/obs, internal/server, internal/wire,
#                    internal/plan, internal/kernel, internal/vertical)
#   4. race tests  — the server/micro-batcher suite (including the wire
#                    listener, the JSON↔wire differential and the
#                    /v1/query differential/pagination suite), the wire
#                    codec/conn suite plus a dedicated multi-iteration run
#                    over the write-path coalescer (flusher, write-error
#                    latch, drain-time flushing), the kernel-derivation
#                    cache, the facade's fast-path/fallback concurrency
#                    tests, and the shard router + sharded differential
#                    suite under the race detector (their whole value is
#                    their concurrency envelope)
#   5. fuzz smoke  — both internal/wire fuzz targets, the facade's
#                    eval-DAG and vertical-arith fuzzers, and the serving
#                    layer's /v1/query fuzzer for a few seconds each
#                    (go test -fuzz matches one target per run), so codec
#                    regressions and tier/oracle divergences the corpus
#                    can reach fail here
#   6. coverage    — internal/wire and internal/server must each keep
#                    statement coverage >= 80%
#   7. shuffle     — the full suite once with -shuffle=on, so hidden
#                    inter-test ordering dependencies fail here instead of
#                    flaking later
set -u
cd "$(dirname "$0")/.."

fail=0

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "lint: gofmt wants to reformat:" >&2
    echo "$unformatted" >&2
    fail=1
fi

if ! go vet ./...; then
    fail=1
fi

if ! go run ./scripts/doccheck . internal/pipeline internal/obs internal/server internal/wire internal/plan internal/kernel internal/vertical; then
    fail=1
fi

if ! go test -race -count=1 ./internal/server/...; then
    fail=1
fi

if ! go test -race -count=1 ./internal/wire/...; then
    fail=1
fi

# The write-path coalescers are pure concurrency machinery (cond-parked
# flusher goroutines, double-buffered frame queues, write-error
# latching, drain-time flushing), so their suites get extra iterations
# under the race detector beyond the package-wide pass above.
if ! go test -race -count=3 -run 'Flush|Coalescing|WriteError|DrainDelivers|ServeConnDrains' ./internal/wire ./internal/server; then
    fail=1
fi

# Fuzz smoke: -fuzz matches exactly one target per invocation, so the two
# targets need two runs. A few seconds each catches shallow regressions;
# the checked-in corpus under internal/wire/testdata seeds both.
if ! go test -run '^$' -fuzz '^FuzzDecodeFrame$' -fuzztime 5s ./internal/wire; then
    fail=1
fi

if ! go test -run '^$' -fuzz '^FuzzRoundTrip$' -fuzztime 5s ./internal/wire; then
    fail=1
fi

# The eval-DAG fuzzer pins the fused tier against the node-at-a-time tier
# and the host oracle on random expression DAGs (depth ≤ 6).
if ! go test -run '^$' -fuzz '^FuzzEvalDAG$' -fuzztime 5s .; then
    fail=1
fi

# The vertical-arith fuzzer pins every µProgram (op × width) against the
# host-integer oracle on random element vectors.
if ! go test -run '^$' -fuzz '^FuzzVerticalArith$' -fuzztime 5s .; then
    fail=1
fi

# The query fuzzer drives arbitrary predicates, modes, cursors and limits
# through POST /v1/query on a live store and checks the structural
# response invariants (400-not-500 on rejects, ordered in-universe
# positions consistent with the bits-mode vector).
if ! go test -run '^$' -fuzz '^FuzzQuery$' -fuzztime 5s ./internal/server; then
    fail=1
fi

# Coverage floor: the wire codec and the serving layer carry the
# protocol-equivalence guarantees, so their suites must keep >= 80%
# statement coverage.
cover_out=$(go test -count=1 -cover ./internal/wire ./internal/server) || fail=1
echo "$cover_out"
cover_fail=$(echo "$cover_out" | awk '
    /coverage:/ {
        for (i = 1; i <= NF; i++)
            if ($i ~ /%$/) { pct = $i; sub(/%.*/, "", pct)
                if (pct + 0 < 80.0) print $2, pct "% < 80%" }
    }')
if [ -n "$cover_fail" ]; then
    echo "lint: coverage floor violated:" >&2
    echo "$cover_fail" >&2
    fail=1
fi

if ! go test -race -count=1 ./internal/kernel/... ./internal/plan/...; then
    fail=1
fi

if ! go test -race -count=1 -run 'Fastpath|FaultWrapper' .; then
    fail=1
fi

if ! go test -race -count=1 -run 'Shard|Differential' .; then
    fail=1
fi

# The vertical arithmetic suite under the race detector: ArithProg's
# sharded scatter and the batch submission path run steps concurrently
# over disjoint stripe subsets.
if ! go test -race -count=1 -run 'Arith|Vertical' .; then
    fail=1
fi

if ! go test -count=1 -shuffle=on ./...; then
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "lint: FAIL" >&2
    exit 1
fi
echo "lint: ok"
