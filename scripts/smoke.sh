#!/usr/bin/env bash
# smoke.sh — end-to-end smoke test of the elpd service binaries.
#
# Builds elpd and elpload, starts elpd on an ephemeral port, fires a
# 1-second elpload burst at it over real TCP, then sends SIGTERM and
# checks the graceful-drain contract: elpd must exit 0 and report
# "drained", and the load report must show zero verification failures
# and zero transport errors.
#
# Usage: scripts/smoke.sh
#   SMOKE_CLIENTS   elpload concurrent clients (default 32)
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
elpd_pid=""
cleanup() {
    if [ -n "$elpd_pid" ] && kill -0 "$elpd_pid" 2>/dev/null; then
        kill -KILL "$elpd_pid" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "smoke: building binaries" >&2
go build -o "$tmp/elpd" ./cmd/elpd
go build -o "$tmp/elpload" ./cmd/elpload

"$tmp/elpd" -addr 127.0.0.1:0 >"$tmp/elpd.log" 2>&1 &
elpd_pid=$!

# Wait for the readiness line and extract the ephemeral address.
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^elpd: listening on //p' "$tmp/elpd.log")
    [ -n "$addr" ] && break
    if ! kill -0 "$elpd_pid" 2>/dev/null; then
        echo "smoke: elpd died during startup:" >&2
        cat "$tmp/elpd.log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "smoke: elpd never printed its listen address" >&2
    cat "$tmp/elpd.log" >&2
    exit 1
fi
echo "smoke: elpd up on $addr" >&2

"$tmp/elpload" -addr "$addr" -clients "${SMOKE_CLIENTS:-32}" -duration 1s \
    -bits 16384 >"$tmp/report.json"

# Graceful drain: SIGTERM must produce a clean exit and the drain line.
kill -TERM "$elpd_pid"
if ! wait "$elpd_pid"; then
    echo "smoke: elpd exited non-zero after SIGTERM:" >&2
    cat "$tmp/elpd.log" >&2
    exit 1
fi
elpd_pid=""
if ! grep -q '^elpd: drained' "$tmp/elpd.log"; then
    echo "smoke: elpd log is missing the drain report:" >&2
    cat "$tmp/elpd.log" >&2
    exit 1
fi

if ! grep -q '"verify_failures": 0' "$tmp/report.json"; then
    echo "smoke: load report shows verification failures:" >&2
    cat "$tmp/report.json" >&2
    exit 1
fi
if ! grep -q '"errors": 0' "$tmp/report.json"; then
    echo "smoke: load report shows transport/server errors:" >&2
    cat "$tmp/report.json" >&2
    exit 1
fi

grep '^elpd: drained' "$tmp/elpd.log" >&2
echo "smoke: ok" >&2
