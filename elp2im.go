// Package elp2im is a clean-room reproduction of "ELP2IM: Efficient and
// Low Power Bitwise Operation Processing in DRAM" (Xin, Zhang, Yang;
// HPCA 2020).
//
// It provides a bit-accurate functional model of in-DRAM bulk bitwise
// computing with cycle-level timing and command-level energy accounting,
// for three designs:
//
//   - ELP2IM — the paper's contribution: pseudo-precharge-state logic,
//   - Ambit — the triple-row-activation baseline (MICRO'17),
//   - DRISA-NOR — the in-array-gate baseline (MICRO'17).
//
// The top-level API is the Accelerator: it owns a DRAM module, spreads
// bulk bit-vectors across banks, executes every logic operation through
// the selected design's real command sequences on the device model, and
// reports latency (with or without the charge-pump power constraint),
// energy, and activation statistics.
//
//	acc, err := elp2im.New()                     // ELP2IM on DDR3-1600
//	x := elp2im.NewBitVector(1 << 20)
//	y := elp2im.NewBitVector(1 << 20)
//	dst := elp2im.NewBitVector(1 << 20)
//	stats, err := acc.Op(elp2im.OpAnd, dst, x, y)
//
// The internal packages expose the full substrate: internal/dram (device
// model), internal/analog (charge-sharing circuit model, Monte-Carlo
// reliability), internal/timing and internal/power (DDR3-1600 models),
// internal/elpim, internal/ambit, internal/drisa (the engines), and
// internal/apps/... (the paper's case studies).
package elp2im

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/ambit"
	"repro/internal/bitvec"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/drisa"
	"repro/internal/elpim"
	"repro/internal/engine"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/power"
	"repro/internal/primitive"
	"repro/internal/sched"
	"repro/internal/timing"
)

// Op is a bulk bitwise operation.
type Op int

// The supported operations.
const (
	OpNot Op = iota
	OpAnd
	OpOr
	OpNand
	OpNor
	OpXor
	OpXnor
	OpCopy
)

// String returns the operation mnemonic.
func (o Op) String() string { return o.internal().String() }

func (o Op) internal() engine.Op {
	switch o {
	case OpNot:
		return engine.OpNOT
	case OpAnd:
		return engine.OpAND
	case OpOr:
		return engine.OpOR
	case OpNand:
		return engine.OpNAND
	case OpNor:
		return engine.OpNOR
	case OpXor:
		return engine.OpXOR
	case OpXnor:
		return engine.OpXNOR
	case OpCopy:
		return engine.OpCOPY
	default:
		panic(fmt.Sprintf("elp2im: unknown op %d", int(o)))
	}
}

// Unary reports whether the operation takes one operand.
func (o Op) Unary() bool { return o == OpNot || o == OpCopy }

// BitVector is a host-side bulk bit-vector.
type BitVector struct {
	v *bitvec.Vector
}

// NewBitVector returns an all-zero vector of n bits.
func NewBitVector(n int) *BitVector { return &BitVector{v: bitvec.New(n)} }

// RandomBitVector returns a vector with uniformly random contents.
func RandomBitVector(rng *rand.Rand, n int) *BitVector {
	return &BitVector{v: bitvec.Random(rng, n)}
}

// Len returns the length in bits.
func (b *BitVector) Len() int { return b.v.Len() }

// Bit returns bit i.
func (b *BitVector) Bit(i int) bool { return b.v.Bit(i) }

// SetBit sets bit i.
func (b *BitVector) SetBit(i int, val bool) { b.v.SetBit(i, val) }

// Fill sets every bit.
func (b *BitVector) Fill(val bool) { b.v.Fill(val) }

// Popcount returns the number of set bits.
func (b *BitVector) Popcount() int { return b.v.Popcount() }

// Equal reports whether two vectors match in length and contents.
func (b *BitVector) Equal(o *BitVector) bool { return b.v.Equal(o.v) }

// Words exposes the underlying 64-bit words (shared, LSB-first).
func (b *BitVector) Words() []uint64 { return b.v.Words() }

// Design selects which in-DRAM computing design the accelerator models.
type Design int

// The three reproduced designs.
const (
	// DesignELP2IM is the paper's pseudo-precharge design.
	DesignELP2IM Design = iota
	// DesignAmbit is the TRA baseline.
	DesignAmbit
	// DesignDrisaNOR is the in-array NOR-gate baseline.
	DesignDrisaNOR
)

// String returns the design name.
func (d Design) String() string {
	switch d {
	case DesignELP2IM:
		return "ELP2IM"
	case DesignAmbit:
		return "Ambit"
	case DesignDrisaNOR:
		return "Drisa_nor"
	default:
		return fmt.Sprintf("Design(%d)", int(d))
	}
}

// Config parameterizes an Accelerator. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	// Design selects the in-DRAM computing design.
	Design Design
	// Module is the DRAM geometry.
	Module dram.Config
	// Timing is the DRAM timing parameter set.
	Timing timing.Params
	// Power is the DRAM energy parameter set.
	Power power.Params
	// PowerConstrained enforces the charge-pump/tFAW activation budget
	// when computing latency (bank-level parallelism shrinks).
	PowerConstrained bool
	// Ranks divides the banks into rank groups, each with its own charge
	// pump and tFAW window. Zero means 1. Only affects the constrained
	// latency model.
	Ranks int
	// ReservedRows configures ELP2IM's reserved dual-contact rows (1 or
	// 2) and Ambit's B-group size (4/6/8/10). Zero selects the design
	// default (1 and 8).
	ReservedRows int
	// HighThroughputMode selects ELP2IM's AAP-APP-AP sequences
	// (power-optimal) instead of the overlapped reduced-latency ones.
	HighThroughputMode bool
	// DisableSchedCache turns off the scheduler memoization layer, forcing
	// every operation to re-run the full 200k-ns scheduling simulation the
	// way the pre-pipeline code did. Only useful for benchmarking the
	// memoization win (scripts/bench.sh); cached results are bit-identical
	// to fresh ones.
	DisableSchedCache bool
	// DisableFastpath turns off the compiled word-level kernel fast path,
	// forcing every stripe through the command-accurate device model the
	// way the pre-kernel code did. Kernels are self-derived from the
	// device model (see internal/kernel), so results and modeled costs are
	// bit-identical either way; the knob exists for benchmarking the
	// compiled-execution win and for differential testing.
	DisableFastpath bool
	// DisableFusion turns off expression-DAG fusion, forcing Eval through
	// the node-at-a-time kernel path (one derived kernel per gate) instead
	// of one fused k-input kernel per plan cluster (see internal/plan).
	// Fused kernels are self-derived from the same device model, so
	// results and modeled costs are bit-identical either way; the knob
	// exists for benchmarking the fusion win and for differential testing.
	// DisableFastpath implies it.
	DisableFusion bool
}

// DefaultConfig returns ELP2IM on a DDR3-1600 module with 8 banks.
func DefaultConfig() Config {
	return Config{
		Design: DesignELP2IM,
		Module: dram.Default(),
		Timing: timing.DDR31600(),
		Power:  power.DDR31600(),
	}
}

// Stats reports the cost of one accelerator operation (or an accumulated
// session via Accelerator.Totals).
type Stats struct {
	// LatencyNS is the operation latency in ns, including any power-
	// constraint stalls and bank-level parallelism.
	LatencyNS float64
	// EnergyNJ is the total energy in nJ (dynamic + background).
	EnergyNJ float64
	// AveragePowerW is EnergyNJ / LatencyNS.
	AveragePowerW float64
	// RowOps is the number of row-wide operations executed.
	RowOps int
	// Commands is the number of DRAM command primitives issued.
	Commands int
	// Wordlines is the total number of wordlines raised.
	Wordlines int
}

// add accumulates o into s.
func (s *Stats) add(o Stats) {
	s.LatencyNS += o.LatencyNS
	s.EnergyNJ += o.EnergyNJ
	s.RowOps += o.RowOps
	s.Commands += o.Commands
	s.Wordlines += o.Wordlines
	s.AveragePowerW = powerW(s.EnergyNJ, s.LatencyNS)
}

// powerW derives average power from accumulated energy and latency,
// guarding the zero-latency accumulation case (ResetTotals followed by a
// zero-cost operation must report 0 W, never NaN or a stale value).
func powerW(energyNJ, latencyNS float64) float64 {
	if latencyNS <= 0 {
		return 0
	}
	return energyNJ / latencyNS
}

// Accelerator executes bulk bitwise operations on a modeled DRAM module.
// It is safe for concurrent use: the synchronous Op, Reduce and Eval entry
// points, one or more Batches, and any mix of the two may run at the same
// time, as long as concurrently executing operations' vector arguments do
// not overlap. Stripe s of every vector lives in the same modeled subarray,
// so an accelerator-wide lock per subarray serializes the row-state of
// operations that would otherwise collide there (see execLocks); operations
// whose vectors overlap still need external ordering — within one Batch,
// submission order provides it.
type Accelerator struct {
	cfg    Config
	module *dram.Module
	eng    engine.Engine

	// kerns memoizes the compiled word-level kernels self-derived from the
	// engine (one probe per op; see internal/kernel). The fast path
	// dispatches stripes to these kernels directly on the vectors' words;
	// every fallback condition routes through the command-accurate model.
	kerns *kernel.Set

	// fused memoizes the k-input fused kernels self-derived from the
	// engine, keyed by cluster spec (see internal/kernel.FusedSet). The
	// eval fusion tier collapses each plan cluster into one of these.
	fused *kernel.FusedSet

	// execMu guards the functional executor. execr is the engine by
	// default; SetExecutor installs a wrapper (fault injection/detection),
	// which also forces command-level execution so the wrapper keeps
	// seeing real commands.
	execMu  sync.RWMutex
	execr   Executor
	wrapped bool

	// bufPool recycles row-width stripe buffers across forEachStripe
	// calls and Batch tasks on the command-level path.
	bufPool sync.Pool

	// execLocks holds one mutex per serialization group (one per subarray;
	// stripeGroup indexes it). Every execution path — synchronous calls and
	// every Batch's worker pool — takes the group's lock around each stripe
	// operation, so concurrent contexts never interleave LoadRow/Execute/
	// RowData on a shared subarray. Per-stripe granularity is sufficient
	// because each stripe operation reloads its operand rows before
	// executing and stores its result row after.
	execLocks []sync.Mutex

	totalsMu sync.Mutex
	totals   Stats

	// costMu guards the memoized per-row cost units. The cache is keyed by
	// (op, chained) only because everything else it depends on — design,
	// timing, power, geometry, constraint flags — is fixed per accelerator;
	// SetPowerConstrained invalidates it when the one mutable knob changes.
	costMu    sync.Mutex
	costUnits map[costKey]costUnit

	// Observability (see observe.go): the accelerator-local obs context,
	// the pre-resolved per-op-kind series, and the lock/batch counters.
	obsc           *obs.Context
	series         opSeriesSet
	lockAcquire    *obs.Counter
	lockContended  *obs.Counter
	batchSubmitted *obs.Counter
	batchWaits     *obs.Counter
	fastHits       *obs.Counter
	fastFallbacks  *obs.Counter
	fusionHits     *obs.Counter
	fusionFalls    *obs.Counter

	// poolFree recycles drained batch worker pools across Batch
	// lifecycles (bounded by the channel's capacity; see Batch.Close).
	// Serving traffic runs one Batch per micro-batch flush, and without
	// recycling every flush would pay pool construction — worker
	// goroutine spawns plus a channel per worker.
	poolFree chan *pipeline.Pool
}

// costKey identifies one memoized cost unit.
type costKey struct {
	op      engine.Op
	chained bool
}

// costUnit is the stripe-independent part of an operation's cost: the
// per-row engine stats and the scheduler's effective-bank count.
type costUnit struct {
	per   engine.Stats
	banks float64
}

// New returns an accelerator for the configuration (DefaultConfig when
// no mutators are given).
func New(mutators ...func(*Config)) (*Accelerator, error) {
	cfg := DefaultConfig()
	for _, m := range mutators {
		m(&cfg)
	}
	return NewWithConfig(cfg)
}

// NewWithConfig returns an accelerator for an explicit configuration.
func NewWithConfig(cfg Config) (*Accelerator, error) {
	if err := cfg.Module.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Timing.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Power.Validate(); err != nil {
		return nil, err
	}

	var eng engine.Engine
	switch cfg.Design {
	case DesignELP2IM:
		ecfg := elpim.Config{
			Timing:               cfg.Timing,
			Power:                cfg.Power,
			ReservedRows:         cfg.ReservedRows,
			UseIsolation:         true,
			UseRestoreTruncation: true,
		}
		if ecfg.ReservedRows == 0 {
			ecfg.ReservedRows = 1
		}
		if cfg.HighThroughputMode {
			ecfg.Mode = elpim.HighThroughput
		}
		e, err := elpim.New(ecfg)
		if err != nil {
			return nil, err
		}
		eng = e
		if cfg.Module.DualContactRows < ecfg.ReservedRows {
			cfg.Module.DualContactRows = ecfg.ReservedRows
		}
	case DesignAmbit:
		acfg := ambit.Config{Timing: cfg.Timing, Power: cfg.Power, ReservedRows: cfg.ReservedRows}
		if acfg.ReservedRows == 0 {
			acfg.ReservedRows = 8
		}
		a, err := ambit.New(acfg)
		if err != nil {
			return nil, err
		}
		eng = a
		if cfg.Module.DualContactRows < 2 {
			cfg.Module.DualContactRows = 2
		}
	case DesignDrisaNOR:
		d, err := drisa.New(drisa.Config{Timing: cfg.Timing, Power: cfg.Power})
		if err != nil {
			return nil, err
		}
		eng = d
	default:
		return nil, errors.New("elp2im: unknown design")
	}

	module := dram.NewModule(cfg.Module)
	a := &Accelerator{
		cfg:       cfg,
		module:    module,
		eng:       eng,
		kerns:     kernel.NewSet(eng, cfg.Module),
		fused:     kernel.NewFusedSet(eng, cfg.Module),
		execr:     eng,
		execLocks: make([]sync.Mutex, module.Banks()*module.Bank(0).Subarrays()),
		costUnits: make(map[costKey]costUnit),
		poolFree:  make(chan *pipeline.Pool, poolFreeCap),
	}
	a.initObs()
	return a, nil
}

// Executor is the functional command-level execution surface: everything
// that can perform dst = op(a, b) on a subarray of the device model. The
// engines implement it, as do the wrappers in internal/fault.
type Executor interface {
	Execute(sub *dram.Subarray, op engine.Op, dst, a, b int) error
}

// BaseExecutor returns the engine's own command-level executor — the
// inner executor to hand to a wrapper such as fault.New or
// fault.NewDetecting before installing it with SetExecutor.
func (a *Accelerator) BaseExecutor() Executor { return a.eng }

// SetExecutor installs exec as the accelerator's functional executor
// (nil restores the engine). Installing a non-nil wrapper forces every
// operation onto the command-accurate path — wrappers observe and mutate
// real per-command row state, which the compiled kernels bypass — until
// SetExecutor(nil) re-enables the fast path. The swap takes effect for
// operations started after the call; modeled costs are unaffected either
// way.
func (a *Accelerator) SetExecutor(exec Executor) {
	a.execMu.Lock()
	defer a.execMu.Unlock()
	if exec == nil {
		a.execr, a.wrapped = a.eng, false
		return
	}
	a.execr, a.wrapped = exec, true
}

// executor returns the current functional executor and whether it is a
// wrapper (a wrapper disables the fast path).
func (a *Accelerator) executor() (Executor, bool) {
	a.execMu.RLock()
	defer a.execMu.RUnlock()
	return a.execr, a.wrapped
}

// fastKernel returns op's compiled kernel when the fast path is eligible:
// word-aligned rows, no wrapped executor, fast path not disabled, and the
// kernel derivable from the engine. A nil return means "use the
// command-level path" (where unsupported ops also surface their real
// errors).
func (a *Accelerator) fastKernel(op engine.Op, wrapped bool) *kernel.Kernel {
	if a.cfg.DisableFastpath || wrapped || a.cfg.Module.Columns%64 != 0 {
		return nil
	}
	k, err := a.kerns.Kernel(op)
	if err != nil {
		return nil
	}
	return k
}

// getBuf leases a row-width stripe buffer from the pool. Callers must not
// assume it is zeroed — loadStripe overwrites every word.
func (a *Accelerator) getBuf() *bitvec.Vector {
	if v := a.bufPool.Get(); v != nil {
		return v.(*bitvec.Vector)
	}
	return bitvec.New(a.cfg.Module.Columns)
}

// putBuf returns a leased stripe buffer.
func (a *Accelerator) putBuf(v *bitvec.Vector) { a.bufPool.Put(v) }

// Design returns the modeled design's name.
func (a *Accelerator) Design() string { return a.eng.Name() }

// ReservedRows returns the design's reserved-row count.
func (a *Accelerator) ReservedRows() int { return a.eng.ReservedRows() }

// AreaOverheadPercent returns the design's array area overhead.
func (a *Accelerator) AreaOverheadPercent() float64 { return a.eng.AreaOverheadPercent() }

// Totals returns the accumulated statistics of every operation executed
// on this accelerator. It is safe to call while a batch is running;
// batched operations fold into the totals at Batch.Wait.
func (a *Accelerator) Totals() Stats {
	a.totalsMu.Lock()
	defer a.totalsMu.Unlock()
	return a.totals
}

// ResetTotals clears the accumulated statistics.
func (a *Accelerator) ResetTotals() {
	a.totalsMu.Lock()
	a.totals = Stats{}
	a.totalsMu.Unlock()
}

// addTotals accumulates st into the session totals.
func (a *Accelerator) addTotals(st Stats) {
	a.totalsMu.Lock()
	a.totals.add(st)
	a.totalsMu.Unlock()
}

// SetPowerConstrained toggles the charge-pump/tFAW latency constraint and
// invalidates the memoized cost units (the one configuration knob that can
// change after construction). The process-wide scheduler memo needs no
// invalidation — its keys embed the full configuration.
func (a *Accelerator) SetPowerConstrained(v bool) {
	a.costMu.Lock()
	defer a.costMu.Unlock()
	if a.cfg.PowerConstrained != v {
		a.cfg.PowerConstrained = v
		a.costUnits = make(map[costKey]costUnit)
	}
}

// operand rows inside each working subarray.
const (
	rowA = 0
	rowB = 1
	rowC = 2
)

// validateOp checks an Op call's operands — the one validation shared by
// the synchronous path, Batch.Submit, and the Shard router, so all three
// reject malformed calls with identical errors.
func validateOp(op Op, dst, x, y *BitVector) error {
	if x == nil || dst == nil {
		return errors.New("elp2im: nil vector")
	}
	if !op.Unary() {
		if y == nil {
			return fmt.Errorf("elp2im: %v needs two operands", op)
		}
		if y.Len() != x.Len() {
			return errors.New("elp2im: operand length mismatch")
		}
	}
	if dst.Len() != x.Len() {
		return errors.New("elp2im: destination length mismatch")
	}
	return nil
}

// validateReduce checks a Reduce call's operands (shared exactly like
// validateOp).
func validateReduce(op Op, dst *BitVector, vs []*BitVector) error {
	if op != OpAnd && op != OpOr {
		return fmt.Errorf("elp2im: no reduction for %v", op)
	}
	if len(vs) < 2 {
		return errors.New("elp2im: reduction needs at least two vectors")
	}
	for _, v := range vs {
		if v == nil || v.Len() != dst.Len() {
			return errors.New("elp2im: reduction operand nil or length mismatch")
		}
	}
	return nil
}

// Op executes dst = op(x, y) as a bulk operation: the vectors are split
// into row-wide stripes, spread round-robin across banks, executed
// through the design's real command sequences on the device model, and
// the results read back. For unary ops y may be nil.
func (a *Accelerator) Op(op Op, dst, x, y *BitVector) (Stats, error) {
	iop := op.internal()
	if err := validateOp(op, dst, x, y); err != nil {
		return Stats{}, err
	}

	cols := a.cfg.Module.Columns
	n := x.Len()
	stripes := (n + cols - 1) / cols
	start := a.obsc.SpanStart()

	// Functional execution, stripe by stripe, round-robin over banks;
	// distinct subarrays run concurrently (the simulator's mirror of
	// bank-level parallelism). Word-aligned configurations dispatch each
	// stripe to the compiled kernel directly on the vectors' words; the
	// command-accurate device model remains the fallback.
	var yv *bitvec.Vector
	if y != nil {
		yv = y.v
	}
	ex, wrapped := a.executor()
	var err error
	if k := a.fastKernel(iop, wrapped); k != nil {
		a.fastHits.Inc()
		a.fastForEachRange(stripes, func(lo, hi int) {
			fastOpRange(k, dst.v, x.v, yv, lo, hi, cols)
		})
	} else {
		a.fastFallbacks.Inc()
		err = a.forEachStripe(stripes, func(s int, sub *dram.Subarray, buf *bitvec.Vector) error {
			return a.opStripe(ex, iop, dst.v, x.v, yv, s, sub, buf)
		})
	}
	if err != nil {
		a.opSpan(start, iop, stripes, Stats{}, err)
		return Stats{}, err
	}

	st, err := a.opCost(iop, stripes)
	if err != nil {
		a.opSpan(start, iop, stripes, Stats{}, err)
		return Stats{}, err
	}
	a.addTotals(st)
	a.record(iop, st)
	a.opSpan(start, iop, stripes, st, nil)
	return st, nil
}

// chainProvider is implemented by engines with a cheaper chained
// (accumulator-resident) fold: ELP2IM's in-place APP-AP, Ambit's
// B-group-resident TRA, DRISA's latched accumulator.
type chainProvider interface {
	ChainStats(op engine.Op) (engine.Stats, error)
	ChainSeq(op engine.Op) (primitive.Seq, error)
}

// inPlaceExecutor is implemented by engines whose chained fold executes
// literally in place on the device model (ELP2IM).
type inPlaceExecutor interface {
	ExecuteInPlace(sub *dram.Subarray, op engine.Op, a, b int) error
}

// Reduce folds vs[1:] into an accumulator initialized with vs[0] and
// stores the result in dst: dst = vs[0] op vs[1] op ... Only OpAnd and
// OpOr have chained forms. The fold uses the design's chained sequences
// (ELP2IM: the in-place APP-AP of Figure 5(a)), which is what makes
// reductions the paper's headline workload.
func (a *Accelerator) Reduce(op Op, dst *BitVector, vs ...*BitVector) (Stats, error) {
	if err := validateReduce(op, dst, vs); err != nil {
		return Stats{}, err
	}
	iop := op.internal()
	start := a.obsc.SpanStart()

	var total Stats
	st, err := a.Op(OpCopy, dst, vs[0], nil)
	if err != nil {
		a.reduceSpan(start, iop, 0, Stats{}, err)
		return Stats{}, err
	}
	total.add(st)

	cp, chained := a.eng.(chainProvider)
	ipe, inPlace := a.eng.(inPlaceExecutor)
	ex, wrapped := a.executor()
	k := a.fastKernel(iop, wrapped)
	if k != nil {
		a.fastHits.Inc()
	} else {
		a.fastFallbacks.Inc()
	}

	cols := a.cfg.Module.Columns
	stripes := (dst.Len() + cols - 1) / cols

	if k != nil {
		// Compiled fold: one sweep applies every operand to each stripe of
		// the accumulator in place (each stripe's words stay hot across the
		// whole chain).
		a.fastForEachRange(stripes, func(lo, hi int) {
			for _, v := range vs[1:] {
				fastFoldRange(k, dst.v, v.v, lo, hi, cols)
			}
		})
	}
	for _, v := range vs[1:] {
		// Functional fold on the command-level path, stripe by stripe.
		if k == nil {
			err := a.forEachStripe(stripes, func(s int, sub *dram.Subarray, buf *bitvec.Vector) error {
				return a.foldStripe(ex, iop, ipe, inPlace, dst.v, v.v, s, sub, buf)
			})
			if err != nil {
				a.reduceSpan(start, iop, stripes, Stats{}, err)
				return Stats{}, err
			}
		}
		// Cost of this fold: chained stats where available.
		var st Stats
		var err error
		if chained {
			st, err = a.chainCost(cp, iop, stripes)
		} else {
			st, err = a.opCost(iop, stripes)
		}
		if err != nil {
			a.reduceSpan(start, iop, stripes, Stats{}, err)
			return Stats{}, err
		}
		total.add(st)
		a.addTotals(st)
		a.record(iop, st)
	}
	a.reduceSpan(start, iop, stripes, total, nil)
	return total, nil
}

// schedHorizonNS is the steady-state horizon of the bank-parallelism
// simulation behind every op-cost query.
const schedHorizonNS = 200_000

// simulate runs the scheduler for seq's profile, through the process-wide
// memo unless the configuration disables it.
func (a *Accelerator) simulate(seq primitive.Seq) (sched.Result, error) {
	profile := sched.ProfileFromSeq(seq, a.cfg.Timing)
	cfg := sched.Config{
		Banks:            a.module.Banks(),
		Timing:           a.cfg.Timing,
		PowerConstrained: a.cfg.PowerConstrained,
		Ranks:            a.cfg.Ranks,
	}
	if a.cfg.DisableSchedCache {
		return sched.Simulate(profile, cfg, schedHorizonNS)
	}
	return sched.CachedSimulate(profile, cfg, schedHorizonNS)
}

// chainUnit returns the memoized per-row cost unit of the chained fold.
func (a *Accelerator) chainUnit(cp chainProvider, op engine.Op) (costUnit, error) {
	a.costMu.Lock()
	defer a.costMu.Unlock()
	k := costKey{op: op, chained: true}
	if u, ok := a.costUnits[k]; ok && !a.cfg.DisableSchedCache {
		return u, nil
	}
	per, err := cp.ChainStats(op)
	if err != nil {
		return costUnit{}, err
	}
	seq, err := cp.ChainSeq(op)
	if err != nil {
		return costUnit{}, err
	}
	res, err := a.simulate(seq)
	if err != nil {
		return costUnit{}, err
	}
	banks := res.EffectiveBanks
	if banks <= 0 {
		banks = 1
	}
	u := costUnit{per: per, banks: banks}
	a.costUnits[k] = u
	return u, nil
}

// chainCost computes the scheduled cost of `stripes` chained folds.
func (a *Accelerator) chainCost(cp chainProvider, op engine.Op, stripes int) (Stats, error) {
	u, err := a.chainUnit(cp, op)
	if err != nil {
		return Stats{}, err
	}
	return a.scaleUnit(u, stripes), nil
}

// scaleUnit expands a per-row cost unit to `stripes` row operations.
func (a *Accelerator) scaleUnit(u costUnit, stripes int) Stats {
	latency := float64(stripes) * u.per.LatencyNS / u.banks
	energy := u.per.EnergyNJ*float64(stripes) +
		a.cfg.Power.BackgroundPower*a.eng.BackgroundFactor()*latency
	st := Stats{
		LatencyNS:     latency,
		EnergyNJ:      energy,
		AveragePowerW: powerW(energy, latency),
		RowOps:        stripes,
		Commands:      u.per.Commands * stripes,
		Wordlines:     u.per.Wordlines * stripes,
	}
	return st
}

// stripeCoord is the one place the round-robin stripe placement is
// derived: stripe s lives in bank s mod B, subarray (s div B) mod S of
// that bank. subarrayFor and stripeGroup are both expressed through it so
// the lock-group index can never drift from the physical placement (two
// stripes locking different groups while sharing a subarray's row state
// would silently break the serialization invariant).
func (a *Accelerator) stripeCoord(s int) (bank, sub int) {
	banks := a.module.Banks()
	bank = s % banks
	sub = (s / banks) % a.module.Bank(bank).Subarrays()
	return bank, sub
}

// subarrayFor returns stripe s's home subarray.
func (a *Accelerator) subarrayFor(s int) *dram.Subarray {
	bank, sub := a.stripeCoord(s)
	return a.module.Bank(bank).Subarray(sub)
}

// stripeGroup returns stripe s's serialization-group id: a stable index of
// its home subarray. Every vector's stripe s maps to the same group, so
// FIFO order within a group is exactly the order data dependencies need.
// Non-word-aligned rows collapse to a single group because neighbouring
// stripes then share destination words.
func (a *Accelerator) stripeGroup(s int) int {
	if a.cfg.Module.Columns%64 != 0 {
		return 0
	}
	bank, sub := a.stripeCoord(s)
	return sub*a.module.Banks() + bank
}

// opStripe executes one stripe of dst = op(x, y) through the
// command-accurate device model (y nil for unary ops) — the fallback
// per-stripe body shared by the synchronous and batched paths.
func (a *Accelerator) opStripe(ex Executor, iop engine.Op, dst, x, y *bitvec.Vector, s int, sub *dram.Subarray, buf *bitvec.Vector) error {
	cols := a.cfg.Module.Columns
	loadStripe(buf, x, s, cols)
	sub.LoadRow(rowA, buf)
	if !iop.Unary() {
		loadStripe(buf, y, s, cols)
		sub.LoadRow(rowB, buf)
	}
	if err := ex.Execute(sub, iop, rowC, rowA, rowB); err != nil {
		return err
	}
	storeStripe(dst, sub.RowData(rowC), s, cols)
	return nil
}

// foldStripe executes one stripe of the reduction fold dst = op(v, dst)
// on the device model, via the engine's in-place form when available. A
// wrapped executor takes the three-operand form instead, so the wrapper
// observes (and may corrupt) the fold like any other operation.
func (a *Accelerator) foldStripe(ex Executor, iop engine.Op, ipe inPlaceExecutor, inPlace bool, dst, v *bitvec.Vector, s int, sub *dram.Subarray, buf *bitvec.Vector) error {
	cols := a.cfg.Module.Columns
	loadStripe(buf, v, s, cols)
	sub.LoadRow(rowA, buf)
	loadStripe(buf, dst, s, cols)
	sub.LoadRow(rowB, buf)
	var err error
	if _, isEngine := ex.(engine.Engine); inPlace && isEngine {
		err = ipe.ExecuteInPlace(sub, iop, rowA, rowB)
	} else {
		err = ex.Execute(sub, iop, rowB, rowA, rowB)
	}
	if err != nil {
		return err
	}
	storeStripe(dst, sub.RowData(rowB), s, cols)
	return nil
}

// fastOpRange applies a compiled kernel to the contiguous stripe range
// [lo, hi) of dst = op(x, y) directly on the vectors' word storage — no
// row buffer, no device-model copies, no allocation. y is nil for unary
// kernels. The destination's canonical tail is re-masked when the range
// covers the final word.
func fastOpRange(k *kernel.Kernel, dst, x, y *bitvec.Vector, lo, hi, cols int) {
	wpr := cols / 64
	dw := dst.Words()
	wlo := lo * wpr
	if wlo >= len(dw) {
		return
	}
	whi := hi * wpr
	if whi > len(dw) {
		whi = len(dw)
	}
	var yw []uint64
	if y != nil {
		yw = y.Words()[wlo:whi]
	}
	k.Apply(dw[wlo:whi], x.Words()[wlo:whi], yw)
	if whi == len(dw) {
		dst.MaskTail()
	}
}

// fastStripe applies a compiled kernel to the single stripe s (the
// per-stripe form used where stripes are not contiguous, e.g. a batch
// group's strided stripe list).
func fastStripe(k *kernel.Kernel, dst, x, y *bitvec.Vector, s, cols int) {
	fastOpRange(k, dst, x, y, s, s+1, cols)
}

// fastFoldRange applies a compiled kernel to the contiguous stripe range
// [lo, hi) of the reduction fold dst = op(v, dst), in place on the
// accumulator words.
func fastFoldRange(k *kernel.Kernel, dst, v *bitvec.Vector, lo, hi, cols int) {
	wpr := cols / 64
	dw := dst.Words()
	wlo := lo * wpr
	if wlo >= len(dw) {
		return
	}
	whi := hi * wpr
	if whi > len(dw) {
		whi = len(dw)
	}
	k.Apply(dw[wlo:whi], v.Words()[wlo:whi], dw[wlo:whi])
	if whi == len(dw) {
		dst.MaskTail()
	}
}

// fastFoldStripe is fastFoldRange for a single stripe.
func fastFoldStripe(k *kernel.Kernel, dst, v *bitvec.Vector, s, cols int) {
	fastFoldRange(k, dst, v, s, s+1, cols)
}

// fastSerialThresholdWords is the total word count below which the fast
// path runs single-threaded: under ~64 KiB of destination data the kernel
// loops finish faster than goroutine fan-out costs.
const fastSerialThresholdWords = 8192

// fastForEachRange runs a pure word-level body over [0, stripes),
// partitioned into contiguous stripe ranges — the whole-vector case of
// fastForEachRuns.
func (a *Accelerator) fastForEachRange(stripes int, body func(lo, hi int)) {
	a.fastForEachRuns([][2]int{{0, stripes}}, body)
}

// fastForEachRuns runs a pure word-level body over the given ascending,
// disjoint, contiguous stripe runs (each a [lo, hi) pair — a sharded
// operation's subset of the vector; the whole vector is the single run
// [0, stripes)). The fast path never touches device-model row state, so it
// needs none of the per-subarray serialization the command-level path
// routes through runStripe — runs cover disjoint destination words and
// execute lock-free, split across parallel goroutines for large
// operations. With a tracer installed the body runs stripe by stripe
// instead so per-stripe spans match the command path.
func (a *Accelerator) fastForEachRuns(runs [][2]int, body func(lo, hi int)) {
	total := 0
	for _, r := range runs {
		total += r[1] - r[0]
	}
	if total <= 0 {
		return
	}
	if start := a.obsc.SpanStart(); start != 0 {
		first := true
		for _, r := range runs {
			for s := r[0]; s < r[1]; s++ {
				if !first {
					start = a.obsc.SpanStart()
				}
				first = false
				body(s, s+1)
				a.stripeSpan(start, s, nil)
			}
		}
		return
	}
	cols := a.cfg.Module.Columns
	workers := a.module.Banks() * a.module.Bank(0).Subarrays()
	if n := runtime.GOMAXPROCS(0); workers > n {
		workers = n
	}
	if workers > total {
		workers = total
	}
	if workers <= 1 || total*(cols/64) < fastSerialThresholdWords {
		for _, r := range runs {
			body(r[0], r[1])
		}
		return
	}
	// Deal each worker an equal flat share of the total stripe count, then
	// map its flat span back onto run pieces (a single run degenerates to
	// the familiar [w*n/W, (w+1)*n/W) partition).
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		flo, fhi := w*total/workers, (w+1)*total/workers
		if flo == fhi {
			continue
		}
		wg.Add(1)
		go func(flo, fhi int) {
			defer wg.Done()
			base := 0
			for _, r := range runs {
				n := r[1] - r[0]
				lo, hi := flo-base, fhi-base
				if lo < 0 {
					lo = 0
				}
				if hi > n {
					hi = n
				}
				if lo < hi {
					body(r[0]+lo, r[0]+hi)
				}
				base += n
				if base >= fhi {
					break
				}
			}
		}(flo, fhi)
	}
	wg.Wait()
}

// stripeRuns converts an ascending stripe list into maximal contiguous
// [lo, hi) runs, the shape the kernel fast path consumes.
func stripeRuns(list []int) [][2]int {
	var runs [][2]int
	for _, s := range list {
		if n := len(runs); n > 0 && runs[n-1][1] == s {
			runs[n-1][1] = s + 1
			continue
		}
		runs = append(runs, [2]int{s, s + 1})
	}
	return runs
}

// stripeRun is one serialization group's ascending stripe list.
type stripeRun struct {
	group int
	list  []int
}

// groupStripes partitions stripes [0, n) into per-serialization-group
// ascending lists, in discovery order — i.e. ordered by each group's first
// (and therefore lowest) stripe — so every consumer that iterates the
// result builds tasks in a deterministic order.
func (a *Accelerator) groupStripes(n int) []stripeRun {
	index := map[int]int{}
	var runs []stripeRun
	for s := 0; s < n; s++ {
		runs = a.addToGroup(index, runs, s)
	}
	return runs
}

// groupStripeList is groupStripes over an explicit ascending stripe list
// (a sharded operation's subset), with the same discovery ordering.
func (a *Accelerator) groupStripeList(list []int) []stripeRun {
	index := map[int]int{}
	var runs []stripeRun
	for _, s := range list {
		runs = a.addToGroup(index, runs, s)
	}
	return runs
}

// addToGroup appends stripe s to its serialization group's list, creating
// the group on first sight.
func (a *Accelerator) addToGroup(index map[int]int, runs []stripeRun, s int) []stripeRun {
	g := a.stripeGroup(s)
	i, ok := index[g]
	if !ok {
		i = len(runs)
		index[g] = i
		runs = append(runs, stripeRun{group: g})
	}
	runs[i].list = append(runs[i].list, s)
	return runs
}

// runStripe executes fn on stripe s's home subarray while holding the
// accelerator-wide lock of its serialization group, so synchronous calls
// and every Batch mutually exclude on shared subarray row state.
func (a *Accelerator) runStripe(group, s int, buf *bitvec.Vector, fn func(s int, sub *dram.Subarray, buf *bitvec.Vector) error) error {
	mu := &a.execLocks[group]
	if !mu.TryLock() {
		// Another context holds this subarray; count the contended path
		// before falling back to the blocking acquire.
		a.lockContended.Inc()
		mu.Lock()
	}
	a.lockAcquire.Inc()
	defer mu.Unlock()
	start := a.obsc.SpanStart()
	err := fn(s, a.subarrayFor(s), buf)
	a.stripeSpan(start, s, err)
	return err
}

// forEachStripe runs fn for every stripe with a leased row buffer — the
// command-level entry point. Stripes sharing a subarray are serialized
// (they share the row buffer); distinct subarrays run in parallel
// goroutines when the row width is word-aligned, so concurrent stores
// into the destination vector cannot touch the same word.
func (a *Accelerator) forEachStripe(stripes int, fn func(s int, sub *dram.Subarray, buf *bitvec.Vector) error) error {
	return a.forEachStripeBuf(stripes, true, fn)
}

// forEachStripeBuf is forEachStripe with the buffer policy explicit:
// needBuf leases one pooled row buffer per serialization group (the
// command-level path); the kernel fast path passes false and fn receives
// a nil buffer.
func (a *Accelerator) forEachStripeBuf(stripes int, needBuf bool, fn func(s int, sub *dram.Subarray, buf *bitvec.Vector) error) error {
	cols := a.cfg.Module.Columns
	if cols%64 != 0 || stripes == 1 {
		var buf *bitvec.Vector
		if needBuf {
			buf = a.getBuf()
			defer a.putBuf(buf)
		}
		for s := 0; s < stripes; s++ {
			if err := a.runStripe(a.stripeGroup(s), s, buf, fn); err != nil {
				return err
			}
		}
		return nil
	}
	return a.runGroups(a.groupStripes(stripes), needBuf, fn)
}

// forEachStripeList is forEachStripe restricted to an ascending stripe
// list — the command-level execution of one shard's subset of a sharded
// operation. Non-word-aligned rows run serially in list order (their
// stripes share destination words).
func (a *Accelerator) forEachStripeList(list []int, fn func(s int, sub *dram.Subarray, buf *bitvec.Vector) error) error {
	if a.cfg.Module.Columns%64 != 0 || len(list) == 1 {
		buf := a.getBuf()
		defer a.putBuf(buf)
		for _, s := range list {
			if err := a.runStripe(a.stripeGroup(s), s, buf, fn); err != nil {
				return err
			}
		}
		return nil
	}
	return a.runGroups(a.groupStripeList(list), true, fn)
}

// runGroups executes fn over each serialization group's stripe list in a
// goroutine per group. Every group runs to its first failure; the error
// reported is the one from the lowest failing stripe, so multiple
// concurrent failures resolve deterministically and none is dropped
// silently.
func (a *Accelerator) runGroups(groups []stripeRun, needBuf bool, fn func(s int, sub *dram.Subarray, buf *bitvec.Vector) error) error {
	errs := make([]error, len(groups))
	failAt := make([]int, len(groups))
	var wg sync.WaitGroup
	for i := range groups {
		wg.Add(1)
		go func(i int, g stripeRun) {
			defer wg.Done()
			var buf *bitvec.Vector
			if needBuf {
				buf = a.getBuf()
				defer a.putBuf(buf)
			}
			for _, s := range g.list {
				if err := a.runStripe(g.group, s, buf, fn); err != nil {
					errs[i], failAt[i] = err, s
					return
				}
			}
		}(i, groups[i])
	}
	wg.Wait()
	return firstStripeError(errs, failAt)
}

// execOpStripes executes dst = op(x, y) over the given ascending stripe
// list (y nil for unary ops) through whichever execution mode is eligible
// — the compiled kernel fast path on the list's contiguous runs, or the
// command-accurate device model — with no cost accounting: a Shard
// scatters one logical operation across its accelerators and accounts it
// once, centrally, so the merged Stats stay bit-identical to the
// single-module baseline.
func (a *Accelerator) execOpStripes(iop engine.Op, dst, x, y *bitvec.Vector, list []int) error {
	if len(list) == 0 {
		return nil
	}
	cols := a.cfg.Module.Columns
	ex, wrapped := a.executor()
	if k := a.fastKernel(iop, wrapped); k != nil {
		a.fastHits.Inc()
		a.fastForEachRuns(stripeRuns(list), func(lo, hi int) {
			fastOpRange(k, dst, x, y, lo, hi, cols)
		})
		return nil
	}
	a.fastFallbacks.Inc()
	return a.forEachStripeList(list, func(s int, sub *dram.Subarray, buf *bitvec.Vector) error {
		return a.opStripe(ex, iop, dst, x, y, s, sub, buf)
	})
}

// execReduceStripes executes the staged reduction dst = vs[0] op vs[1] op
// ... over the given ascending stripe list, with no cost accounting (see
// execOpStripes). Each stripe runs its whole copy-then-fold chain before
// the next, which is result-identical to the baseline's sweep-per-operand
// order because every chain step touches only its own stripe.
func (a *Accelerator) execReduceStripes(iop engine.Op, dst *bitvec.Vector, vs []*bitvec.Vector, list []int) error {
	if len(list) == 0 {
		return nil
	}
	cols := a.cfg.Module.Columns
	ex, wrapped := a.executor()
	k := a.fastKernel(iop, wrapped)
	kcopy := a.fastKernel(engine.OpCOPY, wrapped)
	if k != nil && kcopy != nil {
		a.fastHits.Inc()
		a.fastForEachRuns(stripeRuns(list), func(lo, hi int) {
			fastOpRange(kcopy, dst, vs[0], nil, lo, hi, cols)
			for _, v := range vs[1:] {
				fastFoldRange(k, dst, v, lo, hi, cols)
			}
		})
		return nil
	}
	a.fastFallbacks.Inc()
	ipe, inPlace := a.eng.(inPlaceExecutor)
	return a.forEachStripeList(list, func(s int, sub *dram.Subarray, buf *bitvec.Vector) error {
		if err := a.opStripe(ex, engine.OpCOPY, dst, vs[0], nil, s, sub, buf); err != nil {
			return err
		}
		for _, v := range vs[1:] {
			if err := a.foldStripe(ex, iop, ipe, inPlace, dst, v, s, sub, buf); err != nil {
				return err
			}
		}
		return nil
	})
}

// firstStripeError returns the error with the lowest failing stripe index
// (nil when no group failed).
func firstStripeError(errs []error, failAt []int) error {
	var first error
	firstStripe := -1
	for i, err := range errs {
		if err == nil {
			continue
		}
		if firstStripe < 0 || failAt[i] < firstStripe {
			first, firstStripe = err, failAt[i]
		}
	}
	return first
}

// loadStripe copies stripe s of src into the row buffer vector.
// Word-aligned stripes (cols%64 == 0) copy whole words; the buffer may
// come from the pool holding a previous stripe's contents, so the words
// past the copied prefix are zeroed explicitly (the source's own tail
// word is already masked, and a partial final stripe must read as zeros
// beyond src.Len()).
func loadStripe(row *bitvec.Vector, src *bitvec.Vector, s, cols int) {
	base := s * cols
	if cols%64 == 0 {
		rw := row.Words()
		sw := src.Words()
		lo := base / 64
		var n int
		if lo < len(sw) {
			n = copy(rw, sw[lo:])
		}
		for i := n; i < len(rw); i++ {
			rw[i] = 0
		}
		return
	}
	row.Fill(false)
	for i := 0; i < cols && base+i < src.Len(); i++ {
		row.SetBit(i, src.Bit(base+i))
	}
}

// storeStripe copies a result row back into stripe s of dst. Word-aligned
// stripes copy whole words and re-mask the destination's canonical tail
// when the copy reaches the last word.
func storeStripe(dst *bitvec.Vector, row *bitvec.Vector, s, cols int) {
	base := s * cols
	if cols%64 == 0 {
		dw := dst.Words()
		lo := base / 64
		if lo >= len(dw) {
			return
		}
		n := copy(dw[lo:], row.Words())
		if lo+n == len(dw) {
			dst.MaskTail()
		}
		return
	}
	for i := 0; i < cols && base+i < dst.Len(); i++ {
		dst.SetBit(base+i, row.Bit(i))
	}
}

// seqProvider is implemented by every engine: the canonical command
// sequence of a three-operand op, for the scheduler profile.
type seqProvider interface {
	Seq(op engine.Op) primitive.Seq
}

// opUnit returns the memoized per-row cost unit of the three-operand op:
// the engine's canonical per-row stats plus the scheduled effective-bank
// count (with or without the power constraint). Repeated operations cost
// one map lookup here instead of a fresh 200k-ns scheduling simulation.
func (a *Accelerator) opUnit(op engine.Op) (costUnit, error) {
	a.costMu.Lock()
	defer a.costMu.Unlock()
	k := costKey{op: op}
	if u, ok := a.costUnits[k]; ok && !a.cfg.DisableSchedCache {
		return u, nil
	}
	per := a.eng.OpStats(op)
	banks := float64(a.module.Banks())
	if sp, ok := a.eng.(seqProvider); ok {
		res, err := a.simulate(sp.Seq(op))
		if err != nil {
			return costUnit{}, err
		}
		banks = res.EffectiveBanks
	}
	if banks <= 0 {
		banks = 1
	}
	u := costUnit{per: per, banks: banks}
	a.costUnits[k] = u
	return u, nil
}

// opCost computes the scheduled latency and energy of `stripes` row ops.
func (a *Accelerator) opCost(op engine.Op, stripes int) (Stats, error) {
	u, err := a.opUnit(op)
	if err != nil {
		return Stats{}, err
	}
	return a.scaleUnit(u, stripes), nil
}

// CPUBaseline returns the Kaby-Lake-class roofline model used by the
// paper's case studies, for side-by-side comparisons.
func CPUBaseline() cpu.Model { return cpu.KabyLake() }
