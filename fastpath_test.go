package elp2im

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/fault"
)

// fastpathConfigs enumerates every engine/reserved-row combination the
// fast path must agree with the command-accurate model on.
func fastpathConfigs() map[string][]func(*Config) {
	return map[string][]func(*Config){
		"elp2im-1":  {smallModule},
		"elp2im-2":  {smallModule, func(c *Config) { c.ReservedRows = 2 }},
		"elp2im-ht": {smallModule, func(c *Config) { c.HighThroughputMode = true }},
		"ambit":     {smallModule, func(c *Config) { c.Design = DesignAmbit }},
		"drisa":     {smallModule, func(c *Config) { c.Design = DesignDrisaNOR }},
	}
}

// fastSlowPair builds two accelerators from one configuration: the default
// (compiled-kernel) one and its DisableFastpath twin.
func fastSlowPair(t *testing.T, muts []func(*Config)) (fast, slow *Accelerator) {
	t.Helper()
	fast = newAcc(t, muts...)
	slow = newAcc(t, append(append([]func(*Config){}, muts...),
		func(c *Config) { c.DisableFastpath = true })...)
	return fast, slow
}

// TestFastpathMatchesCommandPath is the differential gate of the compiled
// kernels: for every engine, reserved-row configuration, operation, and a
// spread of vector lengths (multi-stripe, single-word, ragged tails,
// partial final stripes), Op must produce bit-identical results and
// bit-identical modeled costs on both execution paths.
func TestFastpathMatchesCommandPath(t *testing.T) {
	allOps := []Op{OpNot, OpAnd, OpOr, OpNand, OpNor, OpXor, OpXnor, OpCopy}
	rng := rand.New(rand.NewSource(11))
	// smallModule has 128 columns: cover one word, one exact stripe, a
	// ragged tail inside one stripe, several stripes, a partial final
	// stripe, and two random ragged lengths.
	lengths := []int{
		64, 128, 50, 128 * 3, 128*2 + 37, 128*5 + 1,
		1 + rng.Intn(2000), 1 + rng.Intn(2000),
	}
	for name, muts := range fastpathConfigs() {
		fast, slow := fastSlowPair(t, muts)
		for _, op := range allOps {
			for _, n := range lengths {
				x := RandomBitVector(rng, n)
				y := RandomBitVector(rng, n)
				var yArg *BitVector
				if !op.Unary() {
					yArg = y
				}
				dFast := NewBitVector(n)
				dSlow := NewBitVector(n)
				stFast, err := fast.Op(op, dFast, x, yArg)
				if err != nil {
					t.Fatalf("%s/%v/n=%d fast: %v", name, op, n, err)
				}
				stSlow, err := slow.Op(op, dSlow, x, yArg)
				if err != nil {
					t.Fatalf("%s/%v/n=%d slow: %v", name, op, n, err)
				}
				if !dFast.Equal(dSlow) {
					t.Fatalf("%s/%v/n=%d: fast path result diverges from command path", name, op, n)
				}
				want := NewBitVector(n)
				golden(op, want, x, y)
				if !dFast.Equal(want) {
					t.Fatalf("%s/%v/n=%d: both paths disagree with golden", name, op, n)
				}
				if stFast != stSlow {
					t.Fatalf("%s/%v/n=%d: modeled cost diverges: fast %+v, slow %+v",
						name, op, n, stFast, stSlow)
				}
			}
		}
		// Every fast-accelerator dispatch must have hit the kernels and
		// every slow one must have fallen back.
		fs := fast.Snapshot()
		if fs.Counter("acc.fastpath.hit") == 0 || fs.Counter("acc.fastpath.fallback") != 0 {
			t.Errorf("%s: fast accelerator hit=%d fallback=%d", name,
				fs.Counter("acc.fastpath.hit"), fs.Counter("acc.fastpath.fallback"))
		}
		ss := slow.Snapshot()
		if ss.Counter("acc.fastpath.hit") != 0 || ss.Counter("acc.fastpath.fallback") == 0 {
			t.Errorf("%s: slow accelerator hit=%d fallback=%d", name,
				ss.Counter("acc.fastpath.hit"), ss.Counter("acc.fastpath.fallback"))
		}
	}
}

// TestFastpathReduceMatchesCommandPath runs the chained reduction on both
// paths for every configuration and both foldable operations.
func TestFastpathReduceMatchesCommandPath(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for name, muts := range fastpathConfigs() {
		fast, slow := fastSlowPair(t, muts)
		for _, op := range []Op{OpAnd, OpOr} {
			for _, n := range []int{128 * 3, 128*2 + 37, 200} {
				vs := make([]*BitVector, 4)
				for i := range vs {
					vs[i] = RandomBitVector(rng, n)
				}
				dFast := NewBitVector(n)
				dSlow := NewBitVector(n)
				stFast, err := fast.Reduce(op, dFast, vs...)
				if err != nil {
					t.Fatalf("%s/%v/n=%d fast: %v", name, op, n, err)
				}
				stSlow, err := slow.Reduce(op, dSlow, vs...)
				if err != nil {
					t.Fatalf("%s/%v/n=%d slow: %v", name, op, n, err)
				}
				if !dFast.Equal(dSlow) {
					t.Fatalf("%s/%v/n=%d: reduce fast path diverges", name, op, n)
				}
				if stFast != stSlow {
					t.Fatalf("%s/%v/n=%d: reduce cost diverges: fast %+v, slow %+v",
						name, op, n, stFast, stSlow)
				}
			}
		}
	}
}

// TestFastpathBatchMatchesCommandPath runs a dependency chain through a
// Batch on both paths.
func TestFastpathBatchMatchesCommandPath(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for name, muts := range fastpathConfigs() {
		fast, slow := fastSlowPair(t, muts)
		n := 128*3 + 29
		a := RandomBitVector(rng, n)
		b := RandomBitVector(rng, n)
		c := RandomBitVector(rng, n)
		run := func(acc *Accelerator) (*BitVector, *BitVector, Stats) {
			t.Helper()
			tmp := NewBitVector(n)
			dst := NewBitVector(n)
			red := NewBitVector(n)
			bt := acc.Batch()
			defer bt.Close()
			bt.Submit(OpXor, tmp, a, b)
			bt.Submit(OpNand, dst, tmp, c)
			bt.SubmitReduce(OpOr, red, a, b, c)
			st, err := bt.Wait()
			if err != nil {
				t.Fatalf("%s: batch: %v", name, err)
			}
			return dst, red, st
		}
		dFast, rFast, stFast := run(fast)
		dSlow, rSlow, stSlow := run(slow)
		if !dFast.Equal(dSlow) || !rFast.Equal(rSlow) {
			t.Fatalf("%s: batched fast path diverges from command path", name)
		}
		if stFast != stSlow {
			t.Fatalf("%s: batched cost diverges: fast %+v, slow %+v", name, stFast, stSlow)
		}
	}
}

// TestFastpathEvalMatchesCommandPath evaluates compiled expressions on
// both paths, including the bare-variable edge case.
func TestFastpathEvalMatchesCommandPath(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	exprs := []string{
		"(a & ~b) | (c ^ d)",
		"~(a | b) ^ (c & ~d)",
		"a",
	}
	for name, muts := range fastpathConfigs() {
		fast, slow := fastSlowPair(t, muts)
		for _, src := range exprs {
			for _, n := range []int{128 * 2, 128 + 91} {
				vars := map[string]*BitVector{
					"a": RandomBitVector(rng, n),
					"b": RandomBitVector(rng, n),
					"c": RandomBitVector(rng, n),
					"d": RandomBitVector(rng, n),
				}
				outFast, stFast, err := fast.Eval(src, vars)
				if err != nil {
					t.Fatalf("%s/%q fast: %v", name, src, err)
				}
				outSlow, stSlow, err := slow.Eval(src, vars)
				if err != nil {
					t.Fatalf("%s/%q slow: %v", name, src, err)
				}
				if !outFast.Equal(outSlow) {
					t.Fatalf("%s/%q/n=%d: eval fast path diverges", name, src, n)
				}
				if stFast != stSlow {
					t.Fatalf("%s/%q/n=%d: eval cost diverges: fast %+v, slow %+v",
						name, src, n, stFast, stSlow)
				}
			}
		}
	}
}

// TestFaultWrapperForcesCommandPath checks the wrapper contract: installing
// a fault injector with SetExecutor must route operations through the
// command-accurate model (the injector sees real commands and its counters
// advance), and SetExecutor(nil) must restore the fast path.
func TestFaultWrapperForcesCommandPath(t *testing.T) {
	acc := newAcc(t, smallModule)
	inj, err := fault.New(acc.BaseExecutor(), 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	acc.SetExecutor(inj)

	// One stripe: the injector is not safe for concurrent use, and a
	// single-stripe operation runs serially.
	n := acc.cfg.Module.Columns
	rng := rand.New(rand.NewSource(15))
	x := RandomBitVector(rng, n)
	y := RandomBitVector(rng, n)
	dst := NewBitVector(n)
	if _, err := acc.Op(OpAnd, dst, x, y); err != nil {
		t.Fatal(err)
	}
	if inj.Ops == 0 || inj.Injected == 0 {
		t.Fatalf("injector saw ops=%d injected=%d; wrapper was bypassed", inj.Ops, inj.Injected)
	}
	// Rate 1 flips every result bit, so the output must be the exact
	// complement of the true AND — only command-level execution shows this.
	want := NewBitVector(n)
	golden(OpNand, want, x, y)
	if !dst.Equal(want) {
		t.Fatal("rate-1 injector did not complement the result; fast path leaked past the wrapper")
	}
	s := acc.Snapshot()
	if s.Counter("acc.fastpath.fallback") == 0 || s.Counter("acc.fastpath.hit") != 0 {
		t.Fatalf("wrapped executor: hit=%d fallback=%d",
			s.Counter("acc.fastpath.hit"), s.Counter("acc.fastpath.fallback"))
	}

	// Restoring the engine re-enables the fast path and correct results.
	acc.SetExecutor(nil)
	if _, err := acc.Op(OpAnd, dst, x, y); err != nil {
		t.Fatal(err)
	}
	golden(OpAnd, want, x, y)
	if !dst.Equal(want) {
		t.Fatal("result wrong after restoring the engine executor")
	}
	if got := acc.Snapshot().Counter("acc.fastpath.hit"); got != 1 {
		t.Fatalf("acc.fastpath.hit = %d after SetExecutor(nil), want 1", got)
	}
}

// TestFastpathStripeAllocFree is the zero-allocation gate on the fast
// path's per-stripe body.
func TestFastpathStripeAllocFree(t *testing.T) {
	acc := newAcc(t, smallModule)
	cols := acc.cfg.Module.Columns
	kAnd, err := acc.kerns.Kernel(engine.OpAND)
	if err != nil {
		t.Fatal(err)
	}
	kNot, err := acc.kerns.Kernel(engine.OpNOT)
	if err != nil {
		t.Fatal(err)
	}
	n := cols*4 + 37
	dst := NewBitVector(n)
	x := RandomBitVector(rand.New(rand.NewSource(16)), n)
	y := RandomBitVector(rand.New(rand.NewSource(17)), n)
	stripes := (n + cols - 1) / cols
	allocs := testing.AllocsPerRun(100, func() {
		for s := 0; s < stripes; s++ {
			fastStripe(kAnd, dst.v, x.v, y.v, s, cols)
			fastStripe(kNot, dst.v, x.v, nil, s, cols)
			fastFoldStripe(kAnd, dst.v, x.v, s, cols)
		}
	})
	if allocs != 0 {
		t.Errorf("fast-path stripe body allocates %.1f/op, want 0", allocs)
	}
}

// TestFastpathConcurrentWithExecutorSwaps hammers one accelerator with
// concurrent synchronous ops, a batch, and executor swaps that flip every
// in-flight dispatch decision between the two paths. Results must stay
// correct throughout (run under -race by scripts/lint.sh).
func TestFastpathConcurrentWithExecutorSwaps(t *testing.T) {
	acc := newAcc(t, smallModule)
	const n = 128 * 4
	errc := make(chan error, 16)

	// Toggler: BaseExecutor() is the engine itself, so wrapping it forces
	// the command path without adding non-thread-safe state.
	stop := make(chan struct{})
	var toggler sync.WaitGroup
	toggler.Add(1)
	go func() {
		defer toggler.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				acc.SetExecutor(acc.BaseExecutor())
			} else {
				acc.SetExecutor(nil)
			}
		}
	}()

	var workers sync.WaitGroup
	for g := 0; g < 4; g++ {
		workers.Add(1)
		go func(g int) {
			defer workers.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < 20; i++ {
				x := RandomBitVector(rng, n)
				y := RandomBitVector(rng, n)
				dst := NewBitVector(n)
				if _, err := acc.Op(OpXor, dst, x, y); err != nil {
					errc <- err
					return
				}
				want := NewBitVector(n)
				golden(OpXor, want, x, y)
				if !dst.Equal(want) {
					errc <- fmt.Errorf("goroutine %d iter %d: wrong XOR under executor swaps", g, i)
					return
				}
			}
		}(g)
	}
	workers.Add(1)
	go func() {
		defer workers.Done()
		rng := rand.New(rand.NewSource(200))
		b := acc.Batch()
		defer b.Close()
		x := RandomBitVector(rng, n)
		y := RandomBitVector(rng, n)
		dst := NewBitVector(n)
		for i := 0; i < 20; i++ {
			b.Submit(OpAnd, dst, x, y)
		}
		if _, err := b.Wait(); err != nil {
			errc <- err
			return
		}
		want := NewBitVector(n)
		golden(OpAnd, want, x, y)
		if !dst.Equal(want) {
			errc <- fmt.Errorf("batched AND wrong under executor swaps")
		}
	}()

	workers.Wait()
	close(stop)
	toggler.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
