package elp2im

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/vertical"
)

// TestArithOpMirrorsVertical pins the facade enum to the µProgram
// builder's: same ordering, same mnemonics.
func TestArithOpMirrorsVertical(t *testing.T) {
	names := []string{"add", "sub", "lt", "le", "eq", "lts", "les", "popcount", "select"}
	if len(names) != vertical.NumOps {
		t.Fatalf("op count drifted: %d vs %d", len(names), vertical.NumOps)
	}
	for i, want := range names {
		op := ArithOp(i)
		if op.String() != want {
			t.Fatalf("ArithOp(%d).String() = %q, want %q", i, op.String(), want)
		}
		parsed, err := ParseArithOp(want)
		if err != nil || parsed != op {
			t.Fatalf("ParseArithOp(%q) = %v, %v", want, parsed, err)
		}
	}
	if _, err := ParseArithOp("mul"); !errors.Is(err, ErrBadArith) {
		t.Fatalf("ParseArithOp(mul) err = %v, want ErrBadArith", err)
	}
}

// TestVerticalRoundTrip: the facade transpose wrappers recover the
// width-masked elements.
func TestVerticalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 63, 64, 65, 301} {
		for _, w := range []int{1, 7, 32, 64} {
			elems := make([]uint64, n)
			for i := range elems {
				elems[i] = rng.Uint64()
			}
			v, err := VerticalFromElements(elems, w)
			if err != nil {
				t.Fatal(err)
			}
			back := v.Elements()
			mask := vertical.WidthMask(w)
			for i := range back {
				if back[i] != elems[i]&mask {
					t.Fatalf("n=%d w=%d element %d: %#x, want %#x", n, w, i, back[i], elems[i]&mask)
				}
			}
			if v.Element(n-1) != elems[n-1]&mask {
				t.Fatalf("Element(%d) = %#x, want %#x", n-1, v.Element(n-1), elems[n-1]&mask)
			}
		}
	}
}

// arithCase is one op × width point of the differential sweep.
type arithCase struct {
	op ArithOp
	w  int
}

// arithCases samples every operation across mixed widths.
func arithCases() []arithCase {
	return []arithCase{
		{ArithAdd, 4}, {ArithAdd, 8},
		{ArithSub, 7},
		{ArithLt, 5}, {ArithLe, 8},
		{ArithEq, 9},
		{ArithLts, 6}, {ArithLes, 4},
		{ArithPopcount, 8},
		{ArithSelect, 3},
	}
}

// randomOperands builds random x/y element arrays and a mask vector.
func randomOperands(rng *rand.Rand, n int) (x, y []uint64, m *BitVector) {
	x = make([]uint64, n)
	y = make([]uint64, n)
	for i := range x {
		x[i] = rng.Uint64()
		y[i] = rng.Uint64()
	}
	if n > 2 {
		y[0] = x[0] // force the equal path through the compare chains
	}
	return x, y, RandomBitVector(rng, n)
}

// checkArith verifies one result against the host reference.
func checkArith(t *testing.T, tag string, got *Vertical, op ArithOp, w int, x, y []uint64, m *BitVector) {
	t.Helper()
	want := vertical.Reference(op.internalV(), w, x, y, m.Words())
	if got.Width() != op.OutWidth(w) {
		t.Fatalf("%s: result width %d, want %d", tag, got.Width(), op.OutWidth(w))
	}
	gotE := got.Elements()
	for i := range want {
		if gotE[i] != want[i] {
			t.Fatalf("%s: element %d = %#x, want %#x (x=%#x y=%#x)",
				tag, i, gotE[i], want[i], x[i]&vertical.WidthMask(w), y[i]&vertical.WidthMask(w))
		}
	}
}

// TestArithMatchesReference is the facade's differential harness: every
// op, all three designs, both module geometries, every dispatch tier
// (fused, node-kernel, command-accurate), sharded 1/4, synchronous and
// batched — bit-identical elements and struct-equal Stats throughout.
func TestArithMatchesReference(t *testing.T) {
	designs := []Design{DesignELP2IM, DesignAmbit, DesignDrisaNOR}
	rng := rand.New(rand.NewSource(17))
	for _, mod := range diffModules() {
		for _, d := range designs {
			design := func(c *Config) { c.Design = d }
			acc := newAcc(t, mod, design)
			noFusion := newAcc(t, mod, design, func(c *Config) { c.DisableFusion = true })
			noFast := newAcc(t, mod, design, func(c *Config) { c.DisableFastpath = true })
			sh4, err := NewShard(4, mod, design)
			if err != nil {
				t.Fatal(err)
			}
			for _, tc := range arithCases() {
				n := 150 + rng.Intn(150)
				x, y, m := randomOperands(rng, n)
				xv, err := VerticalFromElements(x, tc.w)
				if err != nil {
					t.Fatal(err)
				}
				var yv *Vertical
				if tc.op.Binary() {
					if yv, err = VerticalFromElements(y, tc.w); err != nil {
						t.Fatal(err)
					}
				}
				var mask *BitVector
				if tc.op.Masked() {
					mask = m
				}
				ca, err := CompileArith(tc.op, tc.w)
				if err != nil {
					t.Fatal(err)
				}

				type result struct {
					tag string
					out *Vertical
					st  Stats
				}
				var results []result
				run := func(tag string, out *Vertical, st Stats, err error) {
					t.Helper()
					if err != nil {
						t.Fatalf("%s %s/%d: %v", tag, tc.op, tc.w, err)
					}
					results = append(results, result{tag, out, st})
				}

				out, st, err := acc.ArithProg(ca, xv, yv, mask)
				run("fused", out, st, err)
				out, st, err = noFusion.ArithProg(ca, xv, yv, mask)
				run("node", out, st, err)
				out, st, err = noFast.ArithProg(ca, xv, yv, mask)
				run("cmd", out, st, err)
				out, st, err = sh4.ArithProg(ca, xv, yv, mask)
				run("shard4", out, st, err)

				b := acc.Batch()
				bOut, _ := b.SubmitArith(ca, xv, yv, mask)
				st, err = b.Wait()
				b.Close()
				run("batch", bOut, st, err)

				sb := sh4.Batch()
				sbOut, _ := sb.SubmitArith(ca, xv, yv, mask)
				st, err = sb.Wait()
				sb.Close()
				run("shardbatch", sbOut, st, err)

				for _, r := range results {
					tag := r.tag + "/" + d.String() + "/" + tc.op.String()
					checkArith(t, tag, r.out, tc.op, tc.w, x, y, m)
					if r.st != results[0].st {
						t.Fatalf("%s: stats %+v differ from %s's %+v", tag, r.st, results[0].tag, results[0].st)
					}
					if r.st.Commands == 0 || r.st.LatencyNS == 0 {
						t.Fatalf("%s: implausible zero stats %+v", tag, r.st)
					}
				}
			}
		}
	}
}

// TestArithValidation: shape and operand mistakes come back tagged
// ErrBadArith without executing.
func TestArithValidation(t *testing.T) {
	acc := newAcc(t, smallModule)
	x8, _ := VerticalFromElements([]uint64{1, 2, 3}, 8)
	x4, _ := VerticalFromElements([]uint64{1, 2, 3}, 4)
	yShort, _ := VerticalFromElements([]uint64{1, 2}, 8)
	mask := NewBitVector(3)
	cases := []struct {
		name string
		call func() error
	}{
		{"nil x", func() error { _, _, err := acc.Arith(ArithAdd, nil, x8, nil); return err }},
		{"width mismatch", func() error { _, _, err := acc.Arith(ArithAdd, x8, x4, nil); return err }},
		{"missing y", func() error { _, _, err := acc.Arith(ArithAdd, x8, nil, nil); return err }},
		{"length mismatch", func() error { _, _, err := acc.Arith(ArithAdd, x8, yShort, nil); return err }},
		{"stray y", func() error { _, _, err := acc.Arith(ArithPopcount, x8, x8, nil); return err }},
		{"missing mask", func() error { _, _, err := acc.Arith(ArithSelect, x8, x8, nil); return err }},
		{"stray mask", func() error { _, _, err := acc.Arith(ArithAdd, x8, x8, mask); return err }},
		{"short mask", func() error { _, _, err := acc.Arith(ArithSelect, x8, x8, NewBitVector(2)); return err }},
		{"bad width", func() error { _, err := CompileArith(ArithAdd, 65); return err }},
		{"bad op", func() error { _, err := CompileArith(ArithOp(99), 8); return err }},
	}
	for _, tc := range cases {
		if err := tc.call(); !errors.Is(err, ErrBadArith) {
			t.Errorf("%s: err = %v, want ErrBadArith", tc.name, err)
		}
	}
	if _, err := NewVertical(0, 8); !errors.Is(err, ErrBadArith) {
		t.Errorf("NewVertical(0, 8): err = %v, want ErrBadArith", err)
	}
	if _, err := NewVertical(3, 0); !errors.Is(err, ErrBadArith) {
		t.Errorf("NewVertical(3, 0): err = %v, want ErrBadArith", err)
	}
}

// TestArithAccountsTotals: the synchronous path folds the modeled cost
// into session totals exactly once.
func TestArithAccountsTotals(t *testing.T) {
	acc := newAcc(t, smallModule)
	x, _ := VerticalFromElements([]uint64{5, 9, 250}, 8)
	y, _ := VerticalFromElements([]uint64{1, 2, 7}, 8)
	_, st, err := acc.Arith(ArithAdd, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := acc.Totals(); got != st {
		t.Fatalf("totals %+v, want the op's stats %+v", got, st)
	}
}
