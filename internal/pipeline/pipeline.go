// Package pipeline provides the batched asynchronous execution pool behind
// the facade's Batch API: a fixed set of worker goroutines draining
// per-worker FIFO queues, with tasks bound to serialization groups.
//
// Tasks in the same group always land on the same worker queue, so they
// execute serially in submission order — the property the accelerator needs
// for stripes that share a DRAM subarray (they share its row buffer, and a
// later operation may consume an earlier operation's output stripe). Tasks
// in distinct groups run concurrently, mirroring bank-level parallelism.
package pipeline

import (
	"errors"
	"sync"
	"time"

	"repro/internal/obs"
)

// Task is one unit of work bound to a serialization group.
type Task struct {
	// Group selects the serialization domain; tasks sharing a group run
	// serially in submission order.
	Group int
	// Run executes the task.
	Run func() error
}

// Future resolves once every task of one Submit call has completed.
type Future struct {
	done chan struct{}

	mu        sync.Mutex
	remaining int
	errs      []error // per-task, in task order
	err       error
}

// newFuture returns a future tracking n tasks.
func newFuture(n int) *Future {
	return &Future{done: make(chan struct{}), remaining: n, errs: make([]error, n)}
}

// complete records task i's outcome and resolves the future on the last one.
func (f *Future) complete(i int, err error) {
	f.mu.Lock()
	f.errs[i] = err
	f.remaining--
	last := f.remaining == 0
	if last {
		// First error in task order wins, deterministically, regardless of
		// which worker finished when.
		for _, e := range f.errs {
			if e != nil {
				f.err = e
				break
			}
		}
	}
	f.mu.Unlock()
	if last {
		close(f.done)
	}
}

// Done returns a channel closed when the future resolves.
func (f *Future) Done() <-chan struct{} { return f.done }

// Err blocks until the future resolves and returns the first task error in
// task order (nil on success).
func (f *Future) Err() error {
	<-f.done
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// item is one queued task instance.
type item struct {
	f   *Future
	idx int
	run func() error
}

// Pool is a worker pool with group-serialized FIFO queues.
type Pool struct {
	queues  []chan item
	workers sync.WaitGroup

	// inflight is a cond-guarded counter rather than a sync.WaitGroup:
	// Submit may raise it concurrently with a blocked Drain (sanctioned
	// usage — "submissions racing with Drain are not guaranteed to be
	// waited on"), which would panic a WaitGroup whose counter touched
	// zero while a waiter was parked.
	mu       sync.Mutex
	idle     sync.Cond // broadcast whenever inflight drops to zero
	inflight int
	closed   bool

	// Observability series, pre-resolved at construction: current/peak
	// task backlog (queued + running), tasks retired, and the summed
	// wall-clock time workers spent running tasks (utilization numerator).
	ctx       *obs.Context
	depth     *obs.Gauge
	depthMax  *obs.Gauge
	poolGauge *obs.Gauge
	tasksDone *obs.Counter
	busyNS    *obs.Counter
}

// queueDepth bounds each worker's backlog; Submit applies backpressure
// beyond it. Workers never submit, so a full queue cannot deadlock.
const queueDepth = 256

// NewPool starts a pool of n workers (n < 1 is treated as 1) reporting
// into the process-wide observability context.
func NewPool(n int) *Pool { return NewPoolObs(n, nil) }

// NewPoolObs starts a pool of n workers (n < 1 is treated as 1) reporting
// metrics and task spans into ctx (obs.Global() when nil). Pools sharing
// one context aggregate into the same pipeline.* series.
func NewPoolObs(n int, ctx *obs.Context) *Pool {
	if n < 1 {
		n = 1
	}
	if ctx == nil {
		ctx = obs.Global()
	}
	p := &Pool{
		queues:    make([]chan item, n),
		ctx:       ctx,
		depth:     ctx.Metrics.Gauge("pipeline.queue.depth"),
		depthMax:  ctx.Metrics.Gauge("pipeline.queue.depth.max"),
		poolGauge: ctx.Metrics.Gauge("pipeline.workers"),
		tasksDone: ctx.Metrics.Counter("pipeline.tasks"),
		busyNS:    ctx.Metrics.Counter("pipeline.busy_ns"),
	}
	p.poolGauge.Add(int64(n))
	p.idle.L = &p.mu
	for i := range p.queues {
		q := make(chan item, queueDepth)
		p.queues[i] = q
		p.workers.Add(1)
		go func(worker int) {
			defer p.workers.Done()
			for it := range q {
				start := time.Now()
				err := it.run()
				busy := time.Since(start)
				p.busyNS.Add(busy.Nanoseconds())
				p.tasksDone.Inc()
				if p.ctx.Tracing() {
					msg := ""
					if err != nil {
						msg = err.Error()
					}
					p.ctx.Span(obs.SpanEvent{
						Name:    "task",
						Cat:     "pipeline",
						TID:     int64(worker),
						StartNS: start.UnixNano(),
						DurNS:   busy.Nanoseconds(),
						Err:     msg,
					})
				}
				it.f.complete(it.idx, err)
				p.taskDone()
			}
		}(i)
	}
	return p
}

// taskDone retires one in-flight task and wakes drainers on the last one.
func (p *Pool) taskDone() {
	p.depth.Add(-1)
	p.mu.Lock()
	p.inflight--
	if p.inflight == 0 {
		p.idle.Broadcast()
	}
	p.mu.Unlock()
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return len(p.queues) }

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("pipeline: pool is closed")

// Submit enqueues one logical operation's tasks and returns its future.
// Tasks are routed to workers by group (group mod pool size), preserving
// per-group FIFO order relative to earlier Submit calls from the same
// goroutine. An empty task set resolves immediately.
func (p *Pool) Submit(tasks []Task) (*Future, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	// Reserve the inflight count under the lock so a concurrent Drain
	// cannot observe a half-submitted operation set.
	p.inflight += len(tasks)
	p.mu.Unlock()
	if len(tasks) > 0 {
		p.depthMax.Max(p.depth.Add(int64(len(tasks))))
	}

	f := newFuture(len(tasks))
	if len(tasks) == 0 {
		close(f.done)
		return f, nil
	}
	for i, t := range tasks {
		g := t.Group % len(p.queues)
		if g < 0 {
			g += len(p.queues)
		}
		p.queues[g] <- item{f: f, idx: i, run: t.Run}
	}
	return f, nil
}

// Drain blocks until every task submitted so far has completed. Submissions
// racing with Drain are not guaranteed to be waited on.
func (p *Pool) Drain() {
	p.mu.Lock()
	for p.inflight > 0 {
		p.idle.Wait()
	}
	p.mu.Unlock()
}

// Close drains the pool and stops the workers. Subsequent Submit calls
// return ErrClosed; Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for p.inflight > 0 {
		p.idle.Wait()
	}
	p.mu.Unlock()

	for _, q := range p.queues {
		close(q)
	}
	p.workers.Wait()
	p.poolGauge.Add(-int64(len(p.queues)))
}
