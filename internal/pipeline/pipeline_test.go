package pipeline

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestGroupSerialization: tasks sharing a group run serially in submission
// order even across many Submit calls; the observed order per group is
// exactly the submission order.
func TestGroupSerialization(t *testing.T) {
	p := NewPool(4)
	defer p.Close()

	const groups = 3
	const perGroup = 50
	var mu sync.Mutex
	seen := make([][]int, groups)

	for i := 0; i < perGroup; i++ {
		for g := 0; g < groups; g++ {
			g, i := g, i
			if _, err := p.Submit([]Task{{Group: g, Run: func() error {
				mu.Lock()
				seen[g] = append(seen[g], i)
				mu.Unlock()
				return nil
			}}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	p.Drain()
	for g := 0; g < groups; g++ {
		if len(seen[g]) != perGroup {
			t.Fatalf("group %d ran %d tasks, want %d", g, len(seen[g]), perGroup)
		}
		for i, v := range seen[g] {
			if v != i {
				t.Fatalf("group %d task order %v: position %d got %d", g, seen[g], i, v)
			}
		}
	}
}

// TestFutureFirstErrorDeterministic: the future's error is the first in
// task order, no matter which worker fails first.
func TestFutureFirstErrorDeterministic(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for round := 0; round < 50; round++ {
		p := NewPool(4)
		f, err := p.Submit([]Task{
			{Group: 0, Run: func() error { return nil }},
			{Group: 1, Run: func() error { return errA }},
			{Group: 2, Run: func() error { return errB }},
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := f.Err(); got != errA {
			t.Fatalf("round %d: got %v, want %v", round, got, errA)
		}
		p.Close()
	}
}

// TestEmptySubmitResolvesImmediately verifies the zero-task fast path.
func TestEmptySubmitResolvesImmediately(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	f, err := p.Submit(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Err(); got != nil {
		t.Fatalf("empty submit errored: %v", got)
	}
}

// TestSubmitAfterClose returns ErrClosed.
func TestSubmitAfterClose(t *testing.T) {
	p := NewPool(1)
	p.Close()
	if _, err := p.Submit([]Task{{Run: func() error { return nil }}}); err != ErrClosed {
		t.Fatalf("got %v, want ErrClosed", err)
	}
	p.Close() // idempotent
}

// TestConcurrentSubmitters: Submit is safe from many goroutines and Drain
// waits for everything (run under -race).
func TestConcurrentSubmitters(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var ran atomic.Int64
	var wg sync.WaitGroup
	const submitters = 8
	const each = 40
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for j := 0; j < each; j++ {
				f, err := p.Submit([]Task{
					{Group: seed, Run: func() error { ran.Add(1); return nil }},
					{Group: seed + 1, Run: func() error { ran.Add(1); return nil }},
				})
				if err != nil {
					t.Error(err)
					return
				}
				if err := f.Err(); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	p.Drain()
	if got := ran.Load(); got != submitters*each*2 {
		t.Fatalf("ran %d tasks, want %d", got, submitters*each*2)
	}
}

// TestDrainWhileSubmitting: Submit racing Drain is well-defined even when
// the in-flight count transits zero while a drainer is blocked — the exact
// interleaving that panics a sync.WaitGroup with "Add called concurrently
// with Wait". The Batch docs sanction this usage ("submissions racing with
// Drain are not guaranteed to be included"), so it must never panic.
func TestDrainWhileSubmitting(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				f, err := p.Submit([]Task{{Group: seed, Run: func() error { return nil }}})
				if err != nil {
					t.Error(err)
					return
				}
				f.Err()
			}
		}(i)
	}
	for i := 0; i < 200; i++ {
		p.Drain()
	}
	close(stop)
	wg.Wait()
	p.Drain()
}

// TestNegativeGroupRouting: negative group ids route without panicking.
func TestNegativeGroupRouting(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	f, err := p.Submit([]Task{{Group: -7, Run: func() error { return nil }}})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Err(); got != nil {
		t.Fatal(got)
	}
}
