package plan

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dram"
	"repro/internal/elpim"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/kernel"
)

// compilePlan parses and compiles src.
func compilePlan(t *testing.T, src string) *Plan {
	t.Helper()
	d, err := expr.BuildDAG(expr.MustParse(src))
	if err != nil {
		t.Fatalf("BuildDAG(%q): %v", src, err)
	}
	p, err := Compile(d)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return p
}

// checkInvariants verifies the structural contract of a plan: cluster
// arity bounds, register shapes, slot ranges, and the no-alias rule
// between a cluster's output slot and its input slots.
func checkInvariants(t *testing.T, p *Plan) {
	t.Helper()
	for i, c := range p.Clusters {
		if len(c.Inputs) != c.Spec.K {
			t.Fatalf("cluster %d: %d inputs for K=%d", i, len(c.Inputs), c.Spec.K)
		}
		if c.Spec.K < 1 || c.Spec.K > kernel.MaxFusedInputs {
			t.Fatalf("cluster %d: K=%d out of range", i, c.Spec.K)
		}
		if len(c.Spec.Ops) == 0 {
			t.Fatalf("cluster %d: empty spec", i)
		}
		if c.Out < 0 || c.Out >= p.Slots {
			t.Fatalf("cluster %d: out slot %d with %d slots", i, c.Out, p.Slots)
		}
		for j, in := range c.Inputs {
			if in.Var {
				if in.Index < 0 || in.Index >= len(p.Vars) {
					t.Fatalf("cluster %d input %d: var %d out of range", i, j, in.Index)
				}
				continue
			}
			if in.Index < 0 || in.Index >= p.Slots {
				t.Fatalf("cluster %d input %d: slot %d with %d slots", i, j, in.Index, p.Slots)
			}
			if in.Index == c.Out {
				t.Fatalf("cluster %d: output slot %d aliases input %d", i, c.Out, j)
			}
		}
		for oi, op := range c.Spec.Ops {
			if op.Dst < c.Spec.K || op.Dst >= c.Spec.Regs {
				t.Fatalf("cluster %d op %d: dst %d out of range", i, oi, op.Dst)
			}
			if op.A < 0 || op.A >= c.Spec.Regs || (!op.Op.Unary() && (op.B < 0 || op.B >= c.Spec.Regs)) {
				t.Fatalf("cluster %d op %d: operand out of range", i, oi)
			}
		}
	}
}

// evalPlan evaluates a plan in software via the cluster truth tables.
func evalPlan(p *Plan, env map[string]bool) bool {
	if len(p.Clusters) == 0 {
		return env[p.Vars[0]]
	}
	slots := make([]bool, p.Slots)
	for _, c := range p.Clusters {
		idx := 0
		for j, in := range c.Inputs {
			var v bool
			if in.Var {
				v = env[p.Vars[in.Index]]
			} else {
				v = slots[in.Index]
			}
			if v {
				idx |= 1 << j
			}
		}
		slots[c.Out] = c.Table>>uint(idx)&1 == 1
	}
	return slots[p.Result().Index]
}

// planExprs is the expression corpus shared by the equivalence tests:
// deep chains, wide unions forcing materialization, shared
// subexpressions inside and across cluster boundaries, and negations.
var planExprs = []string{
	"a",
	"~a",
	"a & b",
	"~(a | b)",
	"(a & b) | (a & b)",
	"(a & b) | ((a & b) & c)",
	"(a ^ b) & (b ^ c) | ~a",
	"((a|b) & (c|d) & (e|f)) ^ g",
	"a ^ b ^ c ^ d ^ e ^ f ^ g ^ h",
	"(a & ~b) | (c & ~d) | (e & ~f) | (g & ~h)",
	"((a^b) | (c&d)) & ((e|f) ^ (g&h)) & ~(a&h)",
	"~(~(~(~(~a ^ b) & c) | d) ^ e)",
	"(a&b&c&d&e&f) | (c&d&e&f&g&h)",
}

// TestPlanEquivalence brute-forces every expression over all variable
// assignments: the plan's cluster tables, input wiring, and slot
// schedule must agree with the AST evaluator.
func TestPlanEquivalence(t *testing.T) {
	for _, src := range planExprs {
		node := expr.MustParse(src)
		p := compilePlan(t, src)
		checkInvariants(t, p)
		vars := node.Vars()
		if len(vars) > 10 {
			t.Fatalf("%q: corpus expression too wide to brute force", src)
		}
		env := map[string]bool{}
		for m := 0; m < 1<<len(vars); m++ {
			for i, v := range vars {
				env[v] = m>>i&1 == 1
			}
			if got, want := evalPlan(p, env), node.Eval(env); got != want {
				t.Fatalf("%q env %v: plan %v, AST %v\n%s", src, env, got, want, p)
			}
		}
	}
}

// TestPlanProgMatchesCompile pins the cost foundation: the plan's
// node-at-a-time program is byte-identical to expr.Compile of the same
// source, so every tier prices the identical instruction stream.
func TestPlanProgMatchesCompile(t *testing.T) {
	for _, src := range planExprs {
		p := compilePlan(t, src)
		prog, err := expr.Compile(expr.MustParse(src))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p.Prog, prog) {
			t.Fatalf("%q: plan program differs from expr.Compile\nplan: %s\nexpr: %s",
				src, p.Prog, prog)
		}
	}
}

// TestPlanClustering pins the worked example of DESIGN.md §14: the
// 6-gate, 7-variable DAG splits into exactly two fused kernels — five
// gates collapse into the first, the root XOR into the second.
func TestPlanClustering(t *testing.T) {
	p := compilePlan(t, "((a|b) & (c|d) & (e|f)) ^ g")
	checkInvariants(t, p)
	if len(p.Clusters) != 2 {
		t.Fatalf("expected 2 clusters, got %d\n%s", len(p.Clusters), p)
	}
	c0, c1 := p.Clusters[0], p.Clusters[1]
	if c0.Spec.K != 6 || c0.Nodes != 5 || len(c0.Spec.Ops) != 5 {
		t.Fatalf("cluster 0: K=%d nodes=%d ops=%d, want 6/5/5", c0.Spec.K, c0.Nodes, len(c0.Spec.Ops))
	}
	if c1.Spec.K != 2 || c1.Nodes != 1 {
		t.Fatalf("cluster 1: K=%d nodes=%d, want 2/1", c1.Spec.K, c1.Nodes)
	}
	if c1.Inputs[0].Var || c1.Inputs[0].Index != c0.Out {
		t.Fatalf("cluster 1 should read cluster 0's slot: %s", p)
	}
	if !c1.Inputs[1].Var || p.Vars[c1.Inputs[1].Index] != "g" {
		t.Fatalf("cluster 1 should read variable g: %s", p)
	}

	// A single-cluster expression stays fused whole.
	one := compilePlan(t, "(a & b) | (c ^ ~d) | (e & f)")
	if len(one.Clusters) != 1 {
		t.Fatalf("expected 1 cluster, got %d\n%s", len(one.Clusters), one)
	}
}

// TestPlanIntraClusterCSE pins that a shared gate is emitted once per
// cluster: (a&b) feeds both the OR and the nested AND but appears as one
// spec op.
func TestPlanIntraClusterCSE(t *testing.T) {
	p := compilePlan(t, "(a & b) | ((a & b) & c)")
	if len(p.Clusters) != 1 {
		t.Fatalf("expected 1 cluster\n%s", p)
	}
	if got := len(p.Clusters[0].Spec.Ops); got != 3 {
		t.Fatalf("expected 3 spec ops (and, and, or), got %d\n%s", got, p)
	}
}

// TestPlanSlotReuse pins the slot allocator: a chain of materialized
// clusters whose intermediates die immediately reuses slots instead of
// growing linearly.
func TestPlanSlotReuse(t *testing.T) {
	// Seven 6-variable groups joined left-to-right: the sixth join holds
	// six materialized groups (the arity limit), so the seventh forces an
	// interior cluster that consumes the first six slots before the root
	// runs — the point where the free list pays off.
	var b strings.Builder
	v := 0
	group := func() string {
		parts := make([]string, 6)
		for i := range parts {
			parts[i] = fmt.Sprintf("x%d", v)
			v++
		}
		return "(" + strings.Join(parts, "^") + ")"
	}
	b.WriteString(group())
	for g := 1; g < 7; g++ {
		b.WriteString(" & " + group())
	}
	p := compilePlan(t, b.String())
	checkInvariants(t, p)
	if len(p.Clusters) < 4 {
		t.Fatalf("expected a multi-cluster chain, got %d\n%s", len(p.Clusters), p)
	}
	if p.Slots >= len(p.Clusters) {
		t.Fatalf("slots (%d) should be below cluster count (%d) under reuse\n%s",
			p.Slots, len(p.Clusters), p)
	}
}

// TestPlanLeaf pins the bare-variable plan shape.
func TestPlanLeaf(t *testing.T) {
	p := compilePlan(t, "a")
	if len(p.Clusters) != 0 || p.Slots != 0 {
		t.Fatalf("leaf plan has clusters: %s", p)
	}
	if r := p.Result(); !r.Var || r.Index != 0 {
		t.Fatalf("leaf result %v", r)
	}
	if len(p.Prog.Instrs) != 0 {
		t.Fatal("leaf program has instructions")
	}
	if _, err := Compile(nil); err == nil {
		t.Fatal("Compile(nil) should error")
	}
}

// TestEliminateDeadStores covers the defensive DSE pass on hand-built
// register programs (the emitter itself never produces dead stores).
func TestEliminateDeadStores(t *testing.T) {
	and := func(dst, a, b int) kernel.FusedOp {
		return kernel.FusedOp{Op: engine.OpAND, Dst: dst, A: a, B: b}
	}
	not := func(dst, a int) kernel.FusedOp {
		return kernel.FusedOp{Op: engine.OpNOT, Dst: dst, A: a}
	}
	cases := []struct {
		name   string
		ops    []kernel.FusedOp
		result int
		want   int // surviving op count
	}{
		{"all-live", []kernel.FusedOp{and(2, 0, 1), not(3, 2)}, 3, 2},
		{"unread", []kernel.FusedOp{and(2, 0, 1), and(3, 0, 1)}, 3, 1},
		{"overwritten", []kernel.FusedOp{and(2, 0, 1), not(2, 0), not(3, 2)}, 3, 2},
		{"kept-self-read", []kernel.FusedOp{not(2, 0), not(2, 2)}, 2, 2},
		{"dead-chain", []kernel.FusedOp{and(2, 0, 1), not(3, 2), and(4, 0, 1)}, 4, 1},
		{"empty", nil, 0, 0},
	}
	for _, tc := range cases {
		got := EliminateDeadStores(tc.ops, tc.result)
		if len(got) != tc.want {
			t.Fatalf("%s: %d ops survive, want %d (%v)", tc.name, len(got), tc.want, got)
		}
	}
	// The surviving program must still compute the same function (checked
	// on the overwritten case by software evaluation).
	full := []kernel.FusedOp{and(2, 0, 1), not(2, 0), not(3, 2)}
	pruned := EliminateDeadStores(full, 3)
	evalOps := func(ops []kernel.FusedOp, a, b uint64) uint64 {
		regs := []uint64{a, b, 0, 0}
		for _, op := range ops {
			switch op.Op {
			case engine.OpAND:
				regs[op.Dst] = regs[op.A] & regs[op.B]
			case engine.OpNOT:
				regs[op.Dst] = ^regs[op.A]
			}
		}
		return regs[3]
	}
	a, b := uint64(0xF0F0), uint64(0xCCCC)
	if evalOps(full, a, b) != evalOps(pruned, a, b) {
		t.Fatal("DSE changed program semantics")
	}
}

// TestPlanTablesMatchDevice derives every corpus cluster's fused kernel
// from a real engine: the device-probed truth table must equal the
// software-expected one the compiler attached to the cluster.
func TestPlanTablesMatchDevice(t *testing.T) {
	set := kernel.NewFusedSet(elpim.MustNew(elpim.DefaultConfig()), dram.Default())
	for _, src := range planExprs {
		p := compilePlan(t, src)
		for i := range p.Clusters {
			f, err := set.Fused(p.Clusters[i].Spec)
			if err != nil {
				t.Fatalf("%q cluster %d: %v", src, i, err)
			}
			if f.Table() != p.Clusters[i].Table {
				t.Fatalf("%q cluster %d: device table %#x, plan table %#x",
					src, i, f.Table(), p.Clusters[i].Table)
			}
		}
	}
}

// TestPlanDeterminism pins that compilation is deterministic: two
// compiles of one source produce identical plans (the fused-kernel cache
// keys on the spec, so nondeterministic specs would defeat it).
func TestPlanDeterminism(t *testing.T) {
	for _, src := range planExprs {
		p1, p2 := compilePlan(t, src), compilePlan(t, src)
		if p1.String() != p2.String() {
			t.Fatalf("%q: nondeterministic plans\n%s\n%s", src, p1, p2)
		}
		for i := range p1.Clusters {
			if !reflect.DeepEqual(p1.Clusters[i].Spec, p2.Clusters[i].Spec) {
				t.Fatalf("%q cluster %d: specs differ", src, i)
			}
		}
	}
}
