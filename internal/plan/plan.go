// Package plan compiles optimized expression DAGs (internal/expr) into
// fused execution plans: the schedule the facade's eval paths share.
//
// A plan partitions the DAG into clusters of at most
// kernel.MaxFusedInputs distinct sources each. Every cluster carries the
// engine command sequence (kernel.FusedSpec) that computes its whole
// sub-DAG — common subexpressions inside a cluster are emitted once,
// dead stores are eliminated, and scratch registers are reused by
// liveness — so the kernel fast path collapses the cluster into one
// derived k-input word kernel: a single pass over the operands instead
// of one per node. Cluster outputs live in liveness-allocated slots, the
// plan-level analogue of the scratch-row allocator, so intermediates
// reuse storage instead of materializing named vectors.
//
// The plan also retains the node-at-a-time Program compiled from the
// same DAG. That program is the single source of modeled cost — every
// execution tier prices the identical instruction stream — and the
// command-accurate fallback when fusion is unavailable, which is what
// keeps Stats struct-equal between fused and unfused execution.
package plan

import (
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/kernel"
)

// Ref names a cluster operand: an input variable (Var true, Index into
// Plan.Vars) or the output slot of an earlier cluster.
type Ref struct {
	// Var marks a variable operand.
	Var bool
	// Index is the variable index or the slot index.
	Index int
}

// String renders the reference.
func (r Ref) String() string {
	if r.Var {
		return fmt.Sprintf("v%d", r.Index)
	}
	return fmt.Sprintf("s%d", r.Index)
}

// Cluster is one fused unit of a plan: a sub-DAG over at most
// kernel.MaxFusedInputs sources, compiled to the engine command sequence
// that computes it.
type Cluster struct {
	// Spec is the cluster's register program for kernel.DeriveFused;
	// Spec.K == len(Inputs) and input j binds register j.
	Spec kernel.FusedSpec
	// Inputs are the cluster operands in register order.
	Inputs []Ref
	// Out is the output slot holding the cluster's value.
	Out int
	// Table is the software-expected truth table (bit i = cluster value
	// where input j = (i>>j)&1). Diagnostic metadata only: the executing
	// kernel derives its own table from the device.
	Table uint64
	// Nodes is the number of distinct DAG gates fused into the cluster.
	Nodes int
}

// String renders the cluster.
func (c *Cluster) String() string {
	refs := make([]string, len(c.Inputs))
	for i, r := range c.Inputs {
		refs[i] = r.String()
	}
	return fmt.Sprintf("s%d = fuse[%d gates, table %#x](%s)",
		c.Out, c.Nodes, c.Table, strings.Join(refs, ", "))
}

// Plan is a compiled expression: fused clusters in dependency order plus
// the node-at-a-time program over the same DAG. The final cluster
// computes the expression's value; a plan with no clusters is a bare
// variable reference.
type Plan struct {
	// Vars are the input variable names, in first-appearance order.
	Vars []string
	// Clusters is the fused schedule in execution order.
	Clusters []Cluster
	// Slots is the number of intermediate slots the schedule needs.
	Slots int
	// Prog is the node-at-a-time schedule of the same DAG: the cost
	// source for every tier and the command-accurate fallback.
	Prog *expr.Program
	// Source is the original expression.
	Source string
}

// Result returns the reference holding the expression's value: the last
// cluster's output slot, or variable 0 for a bare-variable plan.
func (p *Plan) Result() Ref {
	if len(p.Clusters) == 0 {
		return Ref{Var: true}
	}
	return Ref{Index: p.Clusters[len(p.Clusters)-1].Out}
}

// String renders the fused schedule.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; %s  (vars: %s, slots: %d)\n",
		p.Source, strings.Join(p.Vars, ","), p.Slots)
	for i := range p.Clusters {
		fmt.Fprintf(&b, "%s\n", &p.Clusters[i])
	}
	return b.String()
}

// Compile lowers an expression DAG to a fused plan. Clustering is
// bottom-up: each gate absorbs its operands' sources until a gate's
// source union would exceed kernel.MaxFusedInputs, at which point the
// wider operand is materialized as its own cluster (sharing is free
// inside a cluster — the truth table absorbs it). The DAG root is always
// materialized. Output slots are allocated by liveness, and a cluster's
// output slot never aliases one of its inputs (fused kernels re-read
// their sources throughout the pass).
func Compile(d *expr.DAG) (*Plan, error) {
	if d == nil || d.Root == nil {
		return nil, fmt.Errorf("plan: nil DAG")
	}
	p := &Plan{Vars: d.Vars, Prog: d.Schedule(), Source: d.Source}
	if d.Root.Leaf {
		return p, nil
	}

	// Phase 1: source sets and materialization decisions, in post-order.
	// srcs[v] is the frozen source list of v's (potential) cluster: every
	// entry is a leaf or a node materialized before v was visited.
	mat := map[*expr.DAGNode]bool{d.Root: true}
	srcs := map[*expr.DAGNode][]*expr.DAGNode{}
	srcOf := func(o *expr.DAGNode) []*expr.DAGNode {
		if o.Leaf || mat[o] {
			return []*expr.DAGNode{o}
		}
		return srcs[o]
	}
	union := func(v *expr.DAGNode) []*expr.DAGNode {
		var out []*expr.DAGNode
		seen := map[*expr.DAGNode]bool{}
		add := func(list []*expr.DAGNode) {
			for _, s := range list {
				if !seen[s] {
					seen[s] = true
					out = append(out, s)
				}
			}
		}
		add(srcOf(v.A))
		if v.B != nil {
			add(srcOf(v.B))
		}
		return out
	}
	for _, v := range d.Order {
		u := union(v)
		for len(u) > kernel.MaxFusedInputs {
			// Materialize the non-leaf, non-materialized operand with the
			// wider source set; at most two rounds before the union is ≤ 2.
			var pick *expr.DAGNode
			for _, o := range []*expr.DAGNode{v.A, v.B} {
				if o == nil || o.Leaf || mat[o] {
					continue
				}
				if pick == nil || len(srcs[o]) > len(srcs[pick]) {
					pick = o
				}
			}
			if pick == nil {
				return nil, fmt.Errorf("plan: %d sources with both operands materialized", len(u))
			}
			mat[pick] = true
			u = union(v)
		}
		srcs[v] = u
	}

	// Phase 2: emit one cluster per materialized node, in post-order (so
	// every input cluster precedes its users).
	clusterOf := map[*expr.DAGNode]int{}
	for _, v := range d.Order {
		if !mat[v] {
			continue
		}
		c, err := buildCluster(v, srcs[v], clusterOf)
		if err != nil {
			return nil, err
		}
		clusterOf[v] = len(p.Clusters)
		p.Clusters = append(p.Clusters, c)
	}

	// Phase 3: liveness slot allocation for cluster outputs. Mirroring the
	// scratch-row allocator, a cluster's slot is taken while its inputs
	// are still held, so an output never aliases an input.
	uses := map[int]int{}
	for i := range p.Clusters {
		for _, in := range p.Clusters[i].Inputs {
			if !in.Var {
				uses[in.Index]++ // in.Index is a cluster index until renamed
			}
		}
	}
	uses[len(p.Clusters)-1]++ // the result is read by the caller
	var free []bool
	alloc := func() int {
		for i := range free {
			if free[i] {
				free[i] = false
				return i
			}
		}
		free = append(free, false)
		return len(free) - 1
	}
	slot := make([]int, len(p.Clusters))
	for i := range p.Clusters {
		c := &p.Clusters[i]
		slot[i] = alloc()
		for j, in := range c.Inputs {
			if in.Var {
				continue
			}
			ci := in.Index
			c.Inputs[j].Index = slot[ci]
			if uses[ci]--; uses[ci] == 0 {
				free[slot[ci]] = true
			}
		}
		c.Out = slot[i]
	}
	p.Slots = len(free)
	return p, nil
}

// buildCluster compiles one materialized node's sub-DAG — bounded by its
// frozen source list — to a fused spec: intra-cluster CSE (each shared
// gate is emitted once), dead-store elimination, and liveness-reused
// scratch registers. Cluster inputs are returned with cluster indices in
// Ref.Index for non-variable sources; Compile renames them to slots.
func buildCluster(m *expr.DAGNode, sources []*expr.DAGNode, clusterOf map[*expr.DAGNode]int) (Cluster, error) {
	k := len(sources)
	if k > kernel.MaxFusedInputs {
		return Cluster{}, fmt.Errorf("plan: cluster has %d sources, max %d", k, kernel.MaxFusedInputs)
	}
	inputs := make([]Ref, k)
	srcReg := map[*expr.DAGNode]int{}
	for j, s := range sources {
		srcReg[s] = j
		if s.Leaf {
			inputs[j] = Ref{Var: true, Index: s.VarIndex}
		} else {
			ci, ok := clusterOf[s]
			if !ok {
				return Cluster{}, fmt.Errorf("plan: source cluster not yet emitted")
			}
			inputs[j] = Ref{Index: ci}
		}
	}

	// Count intra-cluster uses for register liveness.
	uses := map[*expr.DAGNode]int{}
	var count func(*expr.DAGNode)
	count = func(v *expr.DAGNode) {
		for _, o := range []*expr.DAGNode{v.A, v.B} {
			if o == nil {
				continue
			}
			if _, isSrc := srcReg[o]; isSrc {
				continue
			}
			uses[o]++
			if uses[o] == 1 {
				count(o)
			}
		}
	}
	count(m)

	// Emit post-order with memoization and scratch-register reuse. The
	// destination register is taken before dying operands are released:
	// engine sequences may re-read operand rows around an intermediate
	// write to the destination.
	var free []bool
	alloc := func() int {
		for i := range free {
			if free[i] {
				free[i] = false
				return k + i
			}
		}
		free = append(free, false)
		return k + len(free) - 1
	}
	regOf := map[*expr.DAGNode]int{}
	var ops []kernel.FusedOp
	release := func(o *expr.DAGNode) {
		if _, isSrc := srcReg[o]; isSrc {
			return
		}
		if uses[o]--; uses[o] == 0 {
			free[regOf[o]-k] = true
		}
	}
	var emit func(*expr.DAGNode) int
	emit = func(v *expr.DAGNode) int {
		if j, ok := srcReg[v]; ok {
			return j
		}
		if r, ok := regOf[v]; ok {
			return r
		}
		a := emit(v.A)
		b := 0
		if v.B != nil {
			b = emit(v.B)
		}
		dst := alloc()
		release(v.A)
		if v.B != nil {
			release(v.B)
		}
		regOf[v] = dst
		ops = append(ops, kernel.FusedOp{Op: v.Op, Dst: dst, A: a, B: b})
		return dst
	}
	res := emit(m)
	return Cluster{
		Spec: kernel.FusedSpec{
			K:      k,
			Regs:   k + len(free),
			Ops:    EliminateDeadStores(ops, res),
			Result: res,
		},
		Inputs: inputs,
		Table:  clusterTable(m, sources),
		Nodes:  len(regOf),
	}, nil
}

// clusterTable evaluates the cluster's sub-DAG in software over the
// packed probe patterns, yielding the truth table the device probe is
// expected to read back.
func clusterTable(m *expr.DAGNode, sources []*expr.DAGNode) uint64 {
	val := map[*expr.DAGNode]uint64{}
	for j, s := range sources {
		val[s] = kernel.ProbePattern(j)
	}
	var ev func(*expr.DAGNode) uint64
	ev = func(v *expr.DAGNode) uint64 {
		if x, ok := val[v]; ok {
			return x
		}
		a := ev(v.A)
		var b uint64
		if v.B != nil {
			b = ev(v.B)
		}
		var x uint64
		switch v.Op {
		case engine.OpNOT:
			x = ^a
		case engine.OpCOPY:
			x = a
		case engine.OpAND:
			x = a & b
		case engine.OpOR:
			x = a | b
		case engine.OpXOR:
			x = a ^ b
		case engine.OpNAND:
			x = ^(a & b)
		case engine.OpNOR:
			x = ^(a | b)
		case engine.OpXNOR:
			x = ^(a ^ b)
		default:
			panic(fmt.Sprintf("plan: unknown op %v", v.Op))
		}
		val[v] = x
		return x
	}
	t := ev(m)
	if k := len(sources); k < kernel.MaxFusedInputs {
		t &= 1<<(1<<uint(k)) - 1
	}
	return t
}

// EliminateDeadStores returns ops with every store no later operation
// (or the result register) observes removed: a write to a register that
// is rewritten, or never read again, before reaching the result is dead.
// The cluster emitter never produces dead stores — every emitted gate
// feeds the materialized output — so this is the defensive half of the
// pass, applied to every spec and testable in isolation.
func EliminateDeadStores(ops []kernel.FusedOp, result int) []kernel.FusedOp {
	live := map[int]bool{result: true}
	keep := make([]bool, len(ops))
	n := 0
	for i := len(ops) - 1; i >= 0; i-- {
		op := ops[i]
		if !live[op.Dst] {
			continue
		}
		keep[i] = true
		n++
		delete(live, op.Dst) // the definition satisfies the demand ...
		live[op.A] = true    // ... and demands its own operands
		if !op.Op.Unary() {
			live[op.B] = true
		}
	}
	if n == len(ops) {
		return ops
	}
	out := make([]kernel.FusedOp, 0, n)
	for i, op := range ops {
		if keep[i] {
			out = append(out, op)
		}
	}
	return out
}
