// Package drisa implements the Drisa_nor baseline (Li et al., MICRO'17,
// the 1T1C-NOR variant): a DRAM whose subarrays embed a NOR gate and a
// result latch next to the sense amplifiers. Every logic operation is
// decomposed into NOR compute cycles; the final latch value is driven back
// into the destination row by one more cycle.
//
// DRISA needs no reserved rows, but pays ~24% array area and a
// substantially higher background power for the in-array gates and latches
// (§2.2.3, §6.2 of the ELP2IM paper).
package drisa

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/primitive"
	"repro/internal/timing"
)

// Config parameterizes the DRISA baseline.
type Config struct {
	// Timing is the DRAM timing parameter set.
	Timing timing.Params
	// Power is the DRAM energy parameter set.
	Power power.Params
}

// DefaultConfig returns the DDR3-1600 configuration.
func DefaultConfig() Config {
	return Config{Timing: timing.DDR31600(), Power: power.DDR31600()}
}

// Engine is the Drisa_nor design.
type Engine struct {
	cfg Config
	// seqs memoizes the per-op NOR-cycle sequences; the engine is
	// immutable after New, so the cached (read-only) sequences are shared.
	seqs [engine.OpCOPY + 1]primitive.Seq
	// obs holds the pre-resolved per-op observability series (process
	// global by default; Instrument re-points it).
	obs *engine.ObsSeries
}

// New returns an engine for cfg.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Timing.Validate(); err != nil {
		return nil, fmt.Errorf("drisa: %w", err)
	}
	if err := cfg.Power.Validate(); err != nil {
		return nil, fmt.Errorf("drisa: %w", err)
	}
	e := &Engine{cfg: cfg}
	for op := engine.OpNOT; op <= engine.OpCOPY; op++ {
		e.seqs[op] = e.build(op)
	}
	e.obs = engine.NewObsSeries(nil, e.Name())
	return e, nil
}

// Instrument re-points the engine's observability series at ctx (the
// accelerator-local context when owned by a facade Accelerator).
func (e *Engine) Instrument(ctx *obs.Context) {
	e.obs = engine.NewObsSeries(ctx, e.Name())
}

// MustNew returns New's engine and panics on configuration errors.
func MustNew(cfg Config) *Engine {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "Drisa_nor" }

// ReservedRows implements engine.Engine: the latches replace reserved rows.
func (e *Engine) ReservedRows() int { return 0 }

// AreaOverheadPercent implements engine.Engine: "even for the simplest NOR
// based design, it still increases 24% area overhead".
func (e *Engine) AreaOverheadPercent() float64 { return 24 }

// BackgroundFactor implements engine.Engine: the embedded gates and
// latches "greatly increase background power".
func (e *Engine) BackgroundFactor() float64 { return e.cfg.Power.DrisaBackgroundFactor }

// CompoundOverheadFactor implements the cross-op inefficiency of the fixed
// NOR pipeline: in compound expressions (adder chains, reduction trees)
// every intermediate must be routed through the result latch to the next
// gate's operand rows, and the single gate type admits no cross-command
// merging — §6.3.3: "Drisa_nor is neither faster than Ambit in basic
// operations nor flexible in the optimization of command sequence".
func (e *Engine) CompoundOverheadFactor() float64 { return 1.35 }

// Cycles returns the number of NOR compute cycles the operation decomposes
// into, including the final latch-to-row drive. See the decompositions in
// exec.go; the counts are what make DRISA fastest on NOR/NOT and slowest
// on AND-class ops ("excepting the NOR operation", §6.2).
func (e *Engine) Cycles(op engine.Op) int {
	switch op {
	case engine.OpCOPY:
		return 1
	case engine.OpNOT, engine.OpNOR:
		return 2
	case engine.OpOR:
		return 3
	case engine.OpAND:
		return 4
	case engine.OpNAND:
		return 5
	case engine.OpXOR:
		return 6
	case engine.OpXNOR:
		return 7
	default:
		panic(fmt.Sprintf("drisa: unknown op %v", op))
	}
}

// cycleStats is the cost of one NOR compute cycle.
func (e *Engine) cycleStats() engine.Stats {
	k := primitive.NORCYCLE
	return engine.Stats{
		LatencyNS:            k.Duration(e.cfg.Timing),
		EnergyNJ:             k.Energy(e.cfg.Power),
		Commands:             1,
		ActivateEvents:       k.ActivateEvents(),
		Wordlines:            k.Wordlines(),
		MaxWordlinesPerEvent: 1,
	}
}

// OpStats implements engine.Engine.
func (e *Engine) OpStats(op engine.Op) engine.Stats {
	return e.cycleStats().Scale(e.Cycles(op))
}

// Seq returns the operation as a memoized (read-only) sequence of NOR
// compute cycles, for scheduling profiles.
func (e *Engine) Seq(op engine.Op) primitive.Seq {
	if op >= 0 && int(op) < len(e.seqs) && e.seqs[op] != nil {
		return e.seqs[op]
	}
	return e.build(op)
}

// build constructs the NOR-cycle sequence for op.
func (e *Engine) build(op engine.Op) primitive.Seq {
	q := make(primitive.Seq, e.Cycles(op))
	for i := range q {
		q[i] = primitive.Step{Kind: primitive.NORCYCLE}
	}
	return q
}

// NotChainSeq returns the cycles folding a complement into the resident
// accumulator: acc AND ¬src = NOR(¬acc, src) — 3 cycles including the
// accumulator complement; acc OR ¬src = ¬NOR(¬src... = NOT src, NOR,
// NOT — also 3 cycles.
func (e *Engine) NotChainSeq(op engine.Op) (primitive.Seq, error) {
	if op != engine.OpAND && op != engine.OpOR {
		return nil, fmt.Errorf("drisa: no complement-fold for %v", op)
	}
	q := make(primitive.Seq, 3)
	for i := range q {
		q[i] = primitive.Step{Kind: primitive.NORCYCLE}
	}
	return q, nil
}

// ChainSeq returns the per-element NOR cycles of the chained form.
func (e *Engine) ChainSeq(op engine.Op) (primitive.Seq, error) {
	st, err := e.ChainStats(op)
	if err != nil {
		return nil, err
	}
	q := make(primitive.Seq, st.Commands)
	for i := range q {
		q[i] = primitive.Step{Kind: primitive.NORCYCLE}
	}
	return q, nil
}

// ChainStats implements engine.Reducer: with the accumulator resident in
// the compute region, AND costs three cycles per folded operand
// (¬acc, ¬v, NOR) and OR two (NOR, ¬).
func (e *Engine) ChainStats(op engine.Op) (engine.Stats, error) {
	switch op {
	case engine.OpAND:
		return e.cycleStats().Scale(3), nil
	case engine.OpOR:
		return e.cycleStats().Scale(2), nil
	default:
		return engine.Stats{}, fmt.Errorf("drisa: no chained form for %v", op)
	}
}

// Execute implements engine.Engine. The dram package models a commodity
// array without in-array gates, so the functional path emulates each NOR
// cycle (two row reads through the gate, one latch-driven row write) while
// the canonical statistics come from OpStats. Scratch intermediates live
// in the subarray's top rows; dst/a/b must not collide with the top four
// rows.
func (e *Engine) Execute(sub *dram.Subarray, op engine.Op, dst, a, b int) error {
	start := e.obs.Start()
	err := e.execute(sub, op, dst, a, b)
	e.obs.Record(op, e.OpStats(op), start, err)
	return err
}

// execute is Execute's uninstrumented body.
func (e *Engine) execute(sub *dram.Subarray, op engine.Op, dst, a, b int) error {
	n := sub.Rows()
	if n < 8 {
		return fmt.Errorf("drisa: subarray has %d rows; need at least 8", n)
	}
	s0, s1, s2, s3 := n-1, n-2, n-3, n-4

	// The gate result is written straight into the target row: the
	// word-wise bitvec ops are single-pass and the decompositions below
	// never alias a cycle's target with its operands, so no per-cycle
	// scratch vector (and no allocation) is needed.
	nor := func(into, x, y int) {
		sub.Activations += 2 // both operand rows are opened through the gate
		sub.Wordlines += 2
		sub.RowData(into).Nor(sub.RowData(x), sub.RowData(y))
	}
	move := func(into, x int) {
		sub.Activations += 2
		sub.Wordlines += 2
		sub.RowData(into).CopyFrom(sub.RowData(x))
	}

	switch op {
	case engine.OpCOPY:
		move(dst, a)
	case engine.OpNOT:
		nor(s0, a, a)
		move(dst, s0)
	case engine.OpNOR:
		nor(s0, a, b)
		move(dst, s0)
	case engine.OpOR:
		nor(s0, a, b)
		nor(s1, s0, s0)
		move(dst, s1)
	case engine.OpAND:
		nor(s0, a, a)
		nor(s1, b, b)
		nor(s2, s0, s1)
		move(dst, s2)
	case engine.OpNAND:
		nor(s0, a, a)
		nor(s1, b, b)
		nor(s2, s0, s1)
		nor(s3, s2, s2)
		move(dst, s3)
	case engine.OpXOR:
		nor(s0, a, a)   // ¬a
		nor(s1, b, b)   // ¬b
		nor(s2, a, b)   // ¬a·¬b
		nor(s3, s0, s1) // a·b
		nor(s0, s2, s3) // ¬(¬a¬b + ab) = xor
		move(dst, s0)
	case engine.OpXNOR:
		nor(s0, a, a)
		nor(s1, b, b)
		nor(s2, a, b)
		nor(s3, s0, s1)
		nor(s0, s2, s3)
		nor(s1, s0, s0) // ¬xor
		move(dst, s1)
	default:
		return fmt.Errorf("drisa: unknown op %v", op)
	}
	return nil
}
