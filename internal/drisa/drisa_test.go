package drisa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/dram"
	"repro/internal/engine"
)

func testSubarray() *dram.Subarray {
	return dram.NewSubarray(dram.Config{
		Banks: 1, SubarraysPerBank: 1,
		RowsPerSubarray: 16, Columns: 256, DualContactRows: 0,
	})
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Timing.Precharge = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted invalid timing")
	}
	cfg = DefaultConfig()
	cfg.Power.DrisaBackgroundFactor = 0.3
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted invalid power")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.Timing.Clock = 0
	MustNew(cfg)
}

func TestMetadata(t *testing.T) {
	e := MustNew(DefaultConfig())
	if e.Name() != "Drisa_nor" {
		t.Errorf("name = %q", e.Name())
	}
	if e.ReservedRows() != 0 {
		t.Error("DRISA needs no reserved rows")
	}
	if e.AreaOverheadPercent() != 24 {
		t.Error("DRISA area overhead must be 24%")
	}
	if e.BackgroundFactor() <= 1 {
		t.Error("DRISA background factor must exceed 1")
	}
}

func TestAllOpsMatchGolden(t *testing.T) {
	e := MustNew(DefaultConfig())
	for _, op := range engine.BasicOps() {
		sub := testSubarray()
		rng := rand.New(rand.NewSource(int64(op)))
		a := bitvec.Random(rng, sub.Columns())
		b := bitvec.Random(rng, sub.Columns())
		sub.LoadRow(0, a)
		sub.LoadRow(1, b)
		if err := e.Execute(sub, op, 2, 0, 1); err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		want := bitvec.New(sub.Columns())
		op.Golden(want, a, b)
		if !sub.RowData(2).Equal(want) {
			t.Errorf("%v: result mismatch", op)
		}
		if !sub.RowData(0).Equal(a) || !sub.RowData(1).Equal(b) {
			t.Errorf("%v: operand clobbered", op)
		}
	}
}

func TestCyclesAndLatency(t *testing.T) {
	e := MustNew(DefaultConfig())
	// One NOR cycle is 60 ns under the DDR3-1600 phase model.
	cyc := e.OpStats(engine.OpCOPY).LatencyNS
	if cyc < 55 || cyc > 65 {
		t.Fatalf("NOR cycle = %v ns, want ~60", cyc)
	}
	for _, tc := range []struct {
		op     engine.Op
		cycles int
	}{
		{engine.OpNOT, 2}, {engine.OpNOR, 2}, {engine.OpOR, 3},
		{engine.OpAND, 4}, {engine.OpNAND, 5}, {engine.OpXOR, 6}, {engine.OpXNOR, 7},
	} {
		if got := e.Cycles(tc.op); got != tc.cycles {
			t.Errorf("%v cycles = %d, want %d", tc.op, got, tc.cycles)
		}
		if got := e.OpStats(tc.op).LatencyNS; got != cyc*float64(tc.cycles) {
			t.Errorf("%v latency = %v, want %v", tc.op, got, cyc*float64(tc.cycles))
		}
	}
}

func TestDrisaFastestOnNOR(t *testing.T) {
	// §6.2: DRISA beats the others only on its native gate op.
	e := MustNew(DefaultConfig())
	nor := e.OpStats(engine.OpNOR).LatencyNS
	and := e.OpStats(engine.OpAND).LatencyNS
	if nor >= and {
		t.Error("NOR must be DRISA's fastest binary op")
	}
}

func TestChainStats(t *testing.T) {
	e := MustNew(DefaultConfig())
	andChain, err := e.ChainStats(engine.OpAND)
	if err != nil {
		t.Fatal(err)
	}
	orChain, err := e.ChainStats(engine.OpOR)
	if err != nil {
		t.Fatal(err)
	}
	if andChain.Commands != 3 || orChain.Commands != 2 {
		t.Errorf("chain commands = %d/%d, want 3/2", andChain.Commands, orChain.Commands)
	}
	if _, err := e.ChainStats(engine.OpXOR); err == nil {
		t.Error("chained XOR must be rejected")
	}
	// Chaining must beat the full three-operand op.
	if andChain.LatencyNS >= e.OpStats(engine.OpAND).LatencyNS {
		t.Error("chained AND must be cheaper than the full op")
	}
}

func TestExecuteRejectsTinySubarray(t *testing.T) {
	e := MustNew(DefaultConfig())
	tiny := dram.NewSubarray(dram.Config{
		Banks: 1, SubarraysPerBank: 1, RowsPerSubarray: 4, Columns: 64,
	})
	if err := e.Execute(tiny, engine.OpAND, 2, 0, 1); err == nil {
		t.Fatal("tiny subarray must be rejected")
	}
}

func TestMaxWordlinesPerEventIsOne(t *testing.T) {
	// DRISA never multi-row activates.
	e := MustNew(DefaultConfig())
	for _, op := range engine.BasicOps() {
		if e.OpStats(op).MaxWordlinesPerEvent != 1 {
			t.Errorf("%v peak wordlines/event != 1", op)
		}
	}
}

func TestExecuteMatchesGoldenProperty(t *testing.T) {
	e := MustNew(DefaultConfig())
	f := func(seed int64, opRaw uint8) bool {
		op := engine.BasicOps()[int(opRaw)%7]
		sub := testSubarray()
		rng := rand.New(rand.NewSource(seed))
		a := bitvec.Random(rng, sub.Columns())
		b := bitvec.Random(rng, sub.Columns())
		sub.LoadRow(3, a)
		sub.LoadRow(6, b)
		if err := e.Execute(sub, op, 8, 3, 6); err != nil {
			return false
		}
		want := bitvec.New(sub.Columns())
		op.Golden(want, a, b)
		return sub.RowData(8).Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSeqHelpers(t *testing.T) {
	e := MustNew(DefaultConfig())
	if got := len(e.Seq(engine.OpXOR)); got != e.Cycles(engine.OpXOR) {
		t.Errorf("Seq length %d != cycles %d", got, e.Cycles(engine.OpXOR))
	}
	q, err := e.ChainSeq(engine.OpAND)
	if err != nil || len(q) != 3 {
		t.Errorf("ChainSeq = %v, %v", q, err)
	}
	if _, err := e.ChainSeq(engine.OpNOT); err == nil {
		t.Error("ChainSeq(NOT) accepted")
	}
	nq, err := e.NotChainSeq(engine.OpOR)
	if err != nil || len(nq) != 3 {
		t.Errorf("NotChainSeq = %v, %v", nq, err)
	}
	if _, err := e.NotChainSeq(engine.OpXOR); err == nil {
		t.Error("NotChainSeq(XOR) accepted")
	}
	if e.CompoundOverheadFactor() <= 1 {
		t.Error("DRISA compound overhead must exceed 1")
	}
	if e.Cycles(engine.OpCOPY) != 1 {
		t.Error("COPY cycles wrong")
	}
}

func TestCyclesPanicsOnUnknownOp(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown op did not panic")
		}
	}()
	MustNew(DefaultConfig()).Cycles(engine.Op(99))
}
