package core

import (
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/dram"
	"repro/internal/engine"
)

// TestAliasPackageIsTheRealEngine exercises the re-exported API end to end.
func TestAliasPackageIsTheRealEngine(t *testing.T) {
	e := MustNew(DefaultConfig())
	if e.Name() != "ELP2IM" {
		t.Fatalf("name = %q", e.Name())
	}
	sub := dram.NewSubarray(dram.Config{
		Banks: 1, SubarraysPerBank: 1,
		RowsPerSubarray: 8, Columns: 128, DualContactRows: 1,
	})
	rng := rand.New(rand.NewSource(1))
	a := bitvec.Random(rng, 128)
	b := bitvec.Random(rng, 128)
	sub.LoadRow(0, a)
	sub.LoadRow(1, b)
	if err := e.Execute(sub, engine.OpXOR, 2, 0, 1); err != nil {
		t.Fatal(err)
	}
	want := bitvec.New(128).Xor(a, b)
	if !sub.RowData(2).Equal(want) {
		t.Fatal("XOR through the core alias mismatched")
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	if ReducedLatency.String() != "reduced-latency" || HighThroughput.String() != "high-throughput" {
		t.Fatal("mode aliases wrong")
	}
	if SlotA == SlotB || SlotR0 == SlotR1 {
		t.Fatal("slot aliases collide")
	}
	if _, err := BindDefault(sub, 1, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
}
