// Package core is the canonical entry point to the paper's primary
// contribution — the ELP2IM engine. The implementation lives in
// repro/internal/elpim; this package re-exports its API under the
// repository's prescribed layout so that "the paper's contribution" has a
// stable import path independent of the engine's name.
package core

import "repro/internal/elpim"

// Engine is the ELP2IM engine (see repro/internal/elpim).
type Engine = elpim.Engine

// Config parameterizes the engine.
type Config = elpim.Config

// Mode selects the execution strategy (reduced-latency / high-throughput).
type Mode = elpim.Mode

// Binding maps compiled-sequence slots to concrete subarray rows.
type Binding = elpim.Binding

// Execution-strategy modes (§3.3).
const (
	ReducedLatency = elpim.ReducedLatency
	HighThroughput = elpim.HighThroughput
)

// Symbolic sequence slots.
const (
	SlotA  = elpim.SlotA
	SlotB  = elpim.SlotB
	SlotC  = elpim.SlotC
	SlotR0 = elpim.SlotR0
	SlotR1 = elpim.SlotR1
)

// DefaultConfig returns the paper's standard configuration.
func DefaultConfig() Config { return elpim.DefaultConfig() }

// New returns an engine for cfg.
func New(cfg Config) (*Engine, error) { return elpim.New(cfg) }

// MustNew returns New's engine and panics on configuration errors.
func MustNew(cfg Config) *Engine { return elpim.MustNew(cfg) }

// BindDefault binds the reserved slots to a subarray's dual-contact rows.
var BindDefault = elpim.BindDefault
