package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	elp2im "repro"
)

// newShardedTestServer builds a Server over a fresh shard router of the
// given width plus an httptest front end, draining both on cleanup.
func newShardedTestServer(t *testing.T, shards int, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	sh, err := elp2im.NewShard(shards)
	if err != nil {
		t.Fatalf("NewShard(%d): %v", shards, err)
	}
	cfg := Config{Shard: sh}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain()
	})
	return s, ts
}

// TestErrorStatusContract pins the full sentinel-error → (status, headers)
// mapping of the serving layer in one table. Every entry is exercised
// through wrap + writeError — the exact path a handler error takes — so a
// regression in either statusFor's classification or writeError's
// Retry-After attachment (the bug class where ErrDraining answered 503
// without the backoff hint ErrSaturated carried) fails here by name.
func TestErrorStatusContract(t *testing.T) {
	s, _ := newTestServer(t, nil)
	_, badExpr := elp2im.CompileExpr("a & (")
	if badExpr == nil {
		t.Fatal("CompileExpr accepted a malformed expression")
	}
	cases := []struct {
		name       string
		err        error
		status     int
		retryAfter bool
	}{
		{"saturated", ErrSaturated, http.StatusServiceUnavailable, true},
		{"draining", ErrDraining, http.StatusServiceUnavailable, true},
		{"draining wrapped", fmt.Errorf("admit: %w", ErrDraining), http.StatusServiceUnavailable, true},
		{"saturated wrapped", fmt.Errorf("admit: %w", ErrSaturated), http.StatusServiceUnavailable, true},
		{"deadline", context.DeadlineExceeded, http.StatusGatewayTimeout, false},
		{"deadline wrapped", fmt.Errorf("queued: %w", context.DeadlineExceeded), http.StatusGatewayTimeout, false},
		{"canceled", context.Canceled, 499, false},
		{"unknown vector", fmt.Errorf("%w: %q", ErrUnknownVector, "nx"), http.StatusNotFound, false},
		{"bad request", badRequestf("server: bits must be positive"), http.StatusBadRequest, false},
		{"bad request wrapped", fmt.Errorf("decode: %w", badRequestf("bad body")), http.StatusBadRequest, false},
		{"bad expression", badExpr, http.StatusBadRequest, false},
		{"bad expression wrapped", fmt.Errorf("eval: %w", badExpr), http.StatusBadRequest, false},
		{"query unknown namespace", fmt.Errorf("%w %q", errUnknownNamespace, "tenants"), http.StatusBadRequest, false},
		{"query unknown index", fmt.Errorf("%w %q in namespace %q", errUnknownIndex, "nx", "t"), http.StatusBadRequest, false},
		{"query temp budget", fmt.Errorf("%w: predicate needs 40 rows", errQueryBudget), http.StatusBadRequest, false},
		{"query bad cursor", fmt.Errorf("%w: cursor 9 beyond universe 8", errBadCursor), http.StatusBadRequest, false},
		{"unrecognized", errors.New("server: disk on fire"), http.StatusInternalServerError, false},
	}
	// Every query sentinel must have a row above: a new sentinel cannot
	// land without extending the contract table.
	for _, sentinel := range queryStatusSentinels {
		found := false
		for _, tc := range cases {
			if errors.Is(tc.err, sentinel) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("query sentinel %v has no contract row", sentinel)
		}
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := statusFor(tc.err); got != tc.status {
				t.Fatalf("statusFor(%v) = %d, want %d", tc.err, got, tc.status)
			}
			h := s.wrap("op", func(http.ResponseWriter, *http.Request) error {
				return tc.err
			})
			rec := httptest.NewRecorder()
			h(rec, httptest.NewRequest(http.MethodPost, "/v1/op", strings.NewReader("{}")))
			if rec.Code != tc.status {
				t.Fatalf("rendered status %d, want %d", rec.Code, tc.status)
			}
			if got := rec.Header().Get("Retry-After") != ""; got != tc.retryAfter {
				t.Fatalf("Retry-After present = %v, want %v", got, tc.retryAfter)
			}
			var er ErrorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
				t.Fatalf("error body %q not a JSON ErrorResponse", rec.Body.String())
			}
			if !strings.Contains(er.Error, tc.err.Error()) {
				t.Fatalf("error body %q lost the cause %q", er.Error, tc.err)
			}
		})
	}
}

// TestServerConfigValidation pins New's exactly-one-backend contract.
func TestServerConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with neither Accelerator nor Shard must fail")
	}
	acc, err := elp2im.New()
	if err != nil {
		t.Fatal(err)
	}
	sh, err := elp2im.NewShard(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Accelerator: acc, Shard: sh}); err == nil {
		t.Fatal("New with both Accelerator and Shard must fail")
	}
}

// shardHomedName returns a vector name with the given prefix homed on the
// wanted shard, by probing the store's deterministic placement.
func shardHomedName(t *testing.T, s *Server, prefix string, shard int) string {
	t.Helper()
	for i := 0; i < 4096; i++ {
		name := fmt.Sprintf("%s%d", prefix, i)
		if s.shardFor(name) == shard {
			return name
		}
	}
	t.Fatalf("no %q-prefixed name homed on shard %d in 4096 probes", prefix, shard)
	return ""
}

// TestShardedServerEndToEnd drives the same op/reduce/eval workload
// through a single-module server and sharded ones of several widths over
// HTTP, requiring byte-identical results, identical modeled totals, and
// placement-consistent listings. DisableWindow keeps the micro-batchers in
// pass-through so the modeled cost is batching-schedule-independent.
func TestShardedServerEndToEnd(t *testing.T) {
	const nbytes = 2048
	type result struct {
		vecs   map[string][]byte
		totals StatsJSON
	}
	workload := func(t *testing.T, s *Server, ts *httptest.Server) result {
		c := ts.Client()
		rng := rand.New(rand.NewSource(77))
		a := putRandom(t, c, ts.URL, "e2e_a", rng, nbytes)
		b := putRandom(t, c, ts.URL, "e2e_b", rng, nbytes)
		d := putRandom(t, c, ts.URL, "e2e_d", rng, nbytes)
		want := map[string][]byte{"e2e_a": a, "e2e_b": b, "e2e_d": d}
		for i, op := range []string{"and", "xor", "nor", "not"} {
			dst := fmt.Sprintf("e2e_r%d", i)
			req := OpRequest{Op: op, Dst: dst, X: "e2e_a", Y: "e2e_b"}
			if op == "not" {
				req.Y = ""
			}
			code, _ := doJSON(t, c, http.MethodPost, ts.URL+"/v1/op", req, nil)
			if code != http.StatusOK {
				t.Fatalf("op %s: status %d", op, code)
			}
			want[dst] = opBytes(op, a, b)
		}
		code, _ := doJSON(t, c, http.MethodPost, ts.URL+"/v1/reduce",
			ReduceRequest{Op: "or", Dst: "e2e_red", Srcs: []string{"e2e_a", "e2e_b", "e2e_d"}}, nil)
		if code != http.StatusOK {
			t.Fatalf("reduce: status %d", code)
		}
		want["e2e_red"] = opBytes("or", opBytes("or", a, b), d)
		code, _ = doJSON(t, c, http.MethodPost, ts.URL+"/v1/eval",
			EvalRequest{Expr: "(e2e_a ^ e2e_b) & ~e2e_d", Dst: "e2e_ev"}, nil)
		if code != http.StatusOK {
			t.Fatalf("eval: status %d", code)
		}
		want["e2e_ev"] = opBytes("and", opBytes("xor", a, b), opBytes("not", d, nil))

		got := make(map[string][]byte, len(want))
		for name := range want {
			got[name] = fetchBytes(t, c, ts.URL, name)
		}
		return result{vecs: got, totals: s.Stats().Totals}
	}

	sSingle, tsSingle := newTestServer(t, func(c *Config) { c.DisableWindow = true })
	base := workload(t, sSingle, tsSingle)

	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s, ts := newShardedTestServer(t, shards, func(c *Config) { c.DisableWindow = true })
			got := workload(t, s, ts)
			for name, want := range base.vecs {
				if !bytes.Equal(got.vecs[name], want) {
					t.Errorf("vector %s diverges from single-module baseline", name)
				}
			}
			// The op/command/wordline counts must match exactly; the modeled
			// float totals are sums over per-shard accelerators whose addition
			// order depends on the placement, so they are compared within a few
			// ULPs rather than bit-for-bit.
			if got.totals.RowOps != base.totals.RowOps ||
				got.totals.Commands != base.totals.Commands ||
				got.totals.Wordlines != base.totals.Wordlines {
				t.Errorf("modeled counts %+v != single-module baseline %+v", got.totals, base.totals)
			}
			almost := func(a, b float64) bool {
				diff := a - b
				if diff < 0 {
					diff = -diff
				}
				scale := b
				if scale < 0 {
					scale = -scale
				}
				return diff <= 1e-12*scale
			}
			if !almost(got.totals.LatencyNS, base.totals.LatencyNS) ||
				!almost(got.totals.EnergyNJ, base.totals.EnergyNJ) ||
				!almost(got.totals.AveragePowerW, base.totals.AveragePowerW) {
				t.Errorf("modeled totals %+v drifted from single-module baseline %+v", got.totals, base.totals)
			}

			// Listing reports each vector's true home shard and the per-shard
			// vector counts in Stats add back up to the total.
			var list ListResponse
			code, _ := doJSON(t, ts.Client(), http.MethodGet, ts.URL+"/v1/vectors", nil, &list)
			if code != http.StatusOK {
				t.Fatalf("list: status %d", code)
			}
			for _, vi := range list.Vectors {
				if want := s.shardFor(vi.Name); vi.Shard != want {
					t.Errorf("list reports %s on shard %d, placement says %d", vi.Name, vi.Shard, want)
				}
			}
			st := s.Stats()
			if st.Server.Shards != shards {
				t.Errorf("Stats.Server.Shards = %d, want %d", st.Server.Shards, shards)
			}
			if shards == 1 {
				if st.Server.PerShard != nil {
					t.Error("single-shard server must not report PerShard")
				}
				return
			}
			if len(st.Server.PerShard) != shards {
				t.Fatalf("PerShard has %d entries, want %d", len(st.Server.PerShard), shards)
			}
			var vecs int
			var busy, flushes, coalesced int64
			for i, ss := range st.Server.PerShard {
				if ss.Shard != i {
					t.Errorf("PerShard[%d].Shard = %d", i, ss.Shard)
				}
				vecs += ss.Vectors
				busy += int64(ss.ModeledBusyNS)
				flushes += ss.BatchesFlushed
				coalesced += ss.RequestsCoalesced
			}
			if vecs != st.Server.Vectors {
				t.Errorf("per-shard vectors sum to %d, total says %d", vecs, st.Server.Vectors)
			}
			if busy <= 0 {
				t.Error("no shard accumulated modeled busy time")
			}
			if flushes != st.Server.BatchesFlushed || coalesced != st.Server.RequestsCoalesced {
				t.Errorf("per-shard flush counters (%d, %d) disagree with aggregate (%d, %d)",
					flushes, coalesced, st.Server.BatchesFlushed, st.Server.RequestsCoalesced)
			}
		})
	}
}

// TestShardedStatsPayload pins the per_shard JSON key set (the flat
// sections are pinned by TestStatsPayloadRoundTrip on a single-module
// server, where per_shard must be absent).
func TestShardedStatsPayload(t *testing.T) {
	_, ts := newShardedTestServer(t, 2, nil)
	c := ts.Client()
	rng := rand.New(rand.NewSource(30))
	putRandom(t, c, ts.URL, "sp.a", rng, 256)
	putRandom(t, c, ts.URL, "sp.b", rng, 256)
	code, _ := doJSON(t, c, http.MethodPost, ts.URL+"/v1/op",
		OpRequest{Op: "and", Dst: "sp.r", X: "sp.a", Y: "sp.b"}, nil)
	if code != http.StatusOK {
		t.Fatalf("op: status %d", code)
	}
	resp, err := c.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET /v1/stats: %v", err)
	}
	defer resp.Body.Close()
	var tree map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&tree); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	var server map[string]json.RawMessage
	if err := json.Unmarshal(tree["server"], &server); err != nil {
		t.Fatalf("unmarshal server: %v", err)
	}
	var perShard []map[string]json.RawMessage
	if err := json.Unmarshal(server["per_shard"], &perShard); err != nil {
		t.Fatalf("unmarshal per_shard: %v", err)
	}
	if len(perShard) != 2 {
		t.Fatalf("per_shard has %d entries, want 2", len(perShard))
	}
	for i, ss := range perShard {
		assertKeys(t, fmt.Sprintf("per_shard[%d]", i), ss, []string{
			"shard", "queue_depth", "rejected", "deadline_expired",
			"batches_flushed", "requests_coalesced", "vectors", "draining",
			"modeled_busy_ns",
		})
	}
}

// TestShardedMetricNames checks the per-shard series registration: a
// sharded server registers server.shard.<i>.* for every shard (visible in
// the router's merged snapshot) and does not register the flat legacy
// queue names, which would double-count.
func TestShardedMetricNames(t *testing.T) {
	s, ts := newShardedTestServer(t, 3, nil)
	c := ts.Client()
	rng := rand.New(rand.NewSource(31))
	putRandom(t, c, ts.URL, "mn.a", rng, 128)
	code, _ := doJSON(t, c, http.MethodPost, ts.URL+"/v1/op",
		OpRequest{Op: "not", Dst: "mn.r", X: "mn.a"}, nil)
	if code != http.StatusOK {
		t.Fatalf("op: status %d", code)
	}
	snap := s.shard.Snapshot()
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("server.shard.%d.queue.max", i)
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("gauge %s missing from shard snapshot", name)
		}
	}
	if _, ok := snap.Gauges["server.queue.max"]; ok {
		t.Error("sharded server registered the flat server.queue.max gauge")
	}
	if _, ok := snap.Counters["server.http.requests.op"]; !ok {
		t.Error("route counters missing from shard snapshot")
	}
}

// TestShardSaturation503Isolation is the tentpole's failure-isolation
// property at test scale: one shard's admission queue saturating answers
// 503 + Retry-After on that shard's vectors while another shard keeps
// serving — and only the hot shard's rejected counter moves.
func TestShardSaturation503Isolation(t *testing.T) {
	s, ts := newShardedTestServer(t, 2, func(c *Config) {
		c.MaxQueue = 1
		c.Window = 100 * time.Millisecond
		c.RequestTimeout = time.Minute
	})
	c := ts.Client()
	rng := rand.New(rand.NewSource(32))
	putRandom(t, c, ts.URL, "iso.x", rng, 256)
	putRandom(t, c, ts.URL, "iso.y", rng, 256)

	// Destinations on each side of the placement: requests execute on the
	// destination's home shard regardless of where the operands live.
	hot := make([]string, 6)
	for i := range hot {
		hot[i] = shardHomedName(t, s, fmt.Sprintf("iso.h%d.", i), 0)
	}
	cold := shardHomedName(t, s, "iso.c", 1)

	codes := make([]int, len(hot))
	headers := make([]http.Header, len(hot))
	done := make(chan struct{})
	for i, dst := range hot {
		go func(i int, dst string) {
			defer func() { done <- struct{}{} }()
			codes[i], headers[i] = doJSON(t, c, http.MethodPost, ts.URL+"/v1/op",
				OpRequest{Op: "and", Dst: dst, X: "iso.x", Y: "iso.y"}, nil)
		}(i, dst)
	}
	coldCode, _ := doJSON(t, c, http.MethodPost, ts.URL+"/v1/op",
		OpRequest{Op: "or", Dst: cold, X: "iso.x", Y: "iso.y"}, nil)
	for range hot {
		<-done
	}

	if coldCode != http.StatusOK {
		t.Fatalf("op on the cold shard: status %d, want 200", coldCode)
	}
	var rejected int
	for i, code := range codes {
		switch code {
		case http.StatusOK:
		case http.StatusServiceUnavailable:
			rejected++
			if headers[i].Get("Retry-After") == "" {
				t.Error("hot-shard 503 without Retry-After")
			}
		default:
			t.Errorf("hot-shard request: unexpected status %d", code)
		}
	}
	if rejected == 0 {
		t.Fatal("queue bound 1 with 6 concurrent hot-shard requests produced no 503")
	}
	st := s.Stats()
	if st.Server.PerShard[0].Rejected == 0 {
		t.Error("hot shard's rejected counter did not move")
	}
	if got := st.Server.PerShard[1].Rejected; got != 0 {
		t.Errorf("cold shard rejected %d requests, want 0", got)
	}
}

// TestShardedDrain checks instance-wide drain on a sharded server: every
// shard refuses new work with 503 + Retry-After and /healthz flips to
// draining when any batcher drains.
func TestShardedDrain(t *testing.T) {
	s, ts := newShardedTestServer(t, 2, nil)
	c := ts.Client()
	rng := rand.New(rand.NewSource(33))
	putRandom(t, c, ts.URL, "sd.a", rng, 64)
	s.Drain()

	var hp healthPayload
	code, _ := doJSON(t, c, http.MethodGet, ts.URL+"/healthz", nil, &hp)
	if code != http.StatusOK || hp.Status != "draining" {
		t.Fatalf("healthz while draining: %d %+v", code, hp)
	}
	for _, shard := range []int{0, 1} {
		dst := shardHomedName(t, s, fmt.Sprintf("sd.d%d.", shard), shard)
		code, hdr := doJSON(t, c, http.MethodPost, ts.URL+"/v1/op",
			OpRequest{Op: "not", Dst: dst, X: "sd.a"}, nil)
		if code != http.StatusServiceUnavailable {
			t.Errorf("op on shard %d while draining: status %d, want 503", shard, code)
		}
		if hdr.Get("Retry-After") == "" {
			t.Errorf("shard %d draining 503 without Retry-After", shard)
		}
	}
	st := s.Stats()
	if !st.Server.Draining {
		t.Error("Stats does not report draining")
	}
	for i, ss := range st.Server.PerShard {
		if !ss.Draining {
			t.Errorf("PerShard[%d] not draining after instance drain", i)
		}
	}
}
