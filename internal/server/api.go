package server

import (
	"encoding/base64"
	"encoding/binary"
	"math/bits"
	"strings"

	elp2im "repro"
)

// This file defines the JSON wire shapes of the elpd HTTP API. The field
// names are a stable contract: dashboards and clients key on them, so the
// round-trip regression test in api_test.go pins the exact key set —
// renaming a tag is a breaking change and must fail that test.

// VectorPayload is the wire form of a named bulk bit-vector (PUT body and
// GET response of /v1/vectors/{name}).
type VectorPayload struct {
	// Name is the vector's store key (response only; ignored on PUT, where
	// the URL names the vector).
	Name string `json:"name,omitempty"`
	// Bits is the vector length in bits.
	Bits int `json:"bits"`
	// Data is the vector contents: standard base64 of ceil(bits/8) bytes,
	// little-endian within each byte (bit i of the vector is bit i%8 of
	// byte i/8). Empty on PUT means all-zero.
	Data string `json:"data,omitempty"`
	// Popcount is the number of set bits (response only).
	Popcount *int `json:"popcount,omitempty"`
	// ElemWidth, when nonzero, marks a vertical (bit-sliced) vector of
	// elem_width-bit integer elements (1..64). A vertical PUT carries
	// ElemWidth and Elems only (Bits and Data must be absent); a GET of a
	// vertical vector answers with ElemWidth, Elems, and Bits set to the
	// total payload (elements × width).
	ElemWidth int `json:"elem_width,omitempty"`
	// Elems is a vertical vector's element payload: standard base64 of
	// 8 bytes per element, little-endian uint64 values, each < 2^elem_width.
	Elems string `json:"elems,omitempty"`
}

// VectorInfo is one row of the GET /v1/vectors listing.
type VectorInfo struct {
	// Name is the vector's store key.
	Name string `json:"name"`
	// Bits is the vector length in bits.
	Bits int `json:"bits"`
	// Shard is the vector's home shard (always 0 on a single-module
	// server): the shard whose batcher admits, and whose accelerator
	// executes, operations writing this vector.
	Shard int `json:"shard"`
	// Elems is a vertical vector's element count (absent for plain bit
	// vectors).
	Elems int `json:"elems,omitempty"`
	// ElemWidth is a vertical vector's element width in bits (absent for
	// plain bit vectors).
	ElemWidth int `json:"elem_width,omitempty"`
}

// ListResponse is the GET /v1/vectors response.
type ListResponse struct {
	// Vectors lists every stored vector, sorted by name.
	Vectors []VectorInfo `json:"vectors"`
}

// OpRequest is the POST /v1/op body: dst = op(x, y), y omitted for the
// unary not/copy.
type OpRequest struct {
	// Op is the operation mnemonic: not, and, or, nand, nor, xor, xnor,
	// copy (case-insensitive).
	Op string `json:"op"`
	// Dst names the destination vector; if absent it is created with x's
	// length, and only becomes visible once the operation succeeds.
	Dst string `json:"dst"`
	// X names the first operand.
	X string `json:"x"`
	// Y names the second operand (binary ops only).
	Y string `json:"y,omitempty"`
}

// ReduceRequest is the POST /v1/reduce body:
// dst = srcs[0] op srcs[1] op ... (and/or only).
type ReduceRequest struct {
	// Op is "and" or "or".
	Op string `json:"op"`
	// Dst names the destination vector; if absent it is created with
	// srcs[0]'s length, and only becomes visible once the operation
	// succeeds.
	Dst string `json:"dst"`
	// Srcs names the operands, at least two.
	Srcs []string `json:"srcs"`
}

// EvalRequest is the POST /v1/eval body: evaluate a boolean expression
// over stored vectors and store the result under dst.
type EvalRequest struct {
	// Expr is the expression source (& | ^ ~ and parentheses over stored
	// vector names).
	Expr string `json:"expr"`
	// Dst names the vector the result is stored under.
	Dst string `json:"dst"`
}

// ArithRequest is the POST /v1/arith body: dst = op(x, y) over stored
// vertical vectors, with the result stored under dst as a vertical
// vector of the operation's output width.
type ArithRequest struct {
	// Op is the vertical-arithmetic mnemonic: add, sub, lt, le, eq, lts,
	// les, popcount, select.
	Op string `json:"op"`
	// Dst names the destination; it is created (or replaced) with the
	// result once the operation succeeds.
	Dst string `json:"dst"`
	// X names the first vertical operand.
	X string `json:"x"`
	// Y names the second vertical operand (omitted for the unary
	// popcount).
	Y string `json:"y,omitempty"`
	// Mask names a plain bit vector selecting per element (select only):
	// element i takes x when bit i is set, y otherwise.
	Mask string `json:"mask,omitempty"`
}

// QueryRequest is the POST /v1/query body: evaluate a boolean predicate
// over the bitmap indices of a namespace. Indices are stored as vectors
// named "<namespace>/<index>" (PUT /v1/vectors/{namespace}/{index}), and
// the predicate references them by bare index name.
type QueryRequest struct {
	// Namespace scopes the predicate's index names.
	Namespace string `json:"namespace"`
	// Predicate is the boolean expression source (& | ^ ~ and
	// parentheses over index names in the namespace).
	Predicate string `json:"predicate"`
	// Mode selects the result shape: "count" (the default), "bits", or
	// "positions".
	Mode string `json:"mode,omitempty"`
	// Cursor is the bit position pagination resumes from (positions mode;
	// pass the previous response's next_cursor).
	Cursor int `json:"cursor,omitempty"`
	// Limit bounds the positions page size (positions mode; zero selects
	// the server default of 4096, capped at 65536).
	Limit int `json:"limit,omitempty"`
}

// QueryResponse is the POST /v1/query response. Bits and Count are
// always present; Data and Positions/NextCursor appear per mode.
type QueryResponse struct {
	// Stats is the predicate evaluation's modeled cost.
	Stats StatsJSON `json:"stats"`
	// Bits is the namespace's universe width.
	Bits int `json:"bits"`
	// Count is the match cardinality.
	Count int `json:"count"`
	// Data is the match bitvector (bits mode only), encoded exactly like
	// VectorPayload.Data.
	Data string `json:"data,omitempty"`
	// Positions are the page's set-bit positions in ascending order
	// (positions mode; absent when the page holds no matches).
	Positions []int `json:"positions,omitempty"`
	// NextCursor resumes pagination (positions mode): pass it as the next
	// request's cursor. Zero (absent) means the page reached the last
	// match.
	NextCursor int `json:"next_cursor,omitempty"`
}

// StatsJSON is the stable wire form of elp2im.Stats.
type StatsJSON struct {
	// LatencyNS is the modeled latency in nanoseconds.
	LatencyNS float64 `json:"latency_ns"`
	// EnergyNJ is the modeled energy in nanojoules.
	EnergyNJ float64 `json:"energy_nj"`
	// AveragePowerW is EnergyNJ / LatencyNS.
	AveragePowerW float64 `json:"average_power_w"`
	// RowOps is the number of row-wide operations executed.
	RowOps int `json:"row_ops"`
	// Commands is the number of DRAM command primitives issued.
	Commands int `json:"commands"`
	// Wordlines is the total number of wordlines raised.
	Wordlines int `json:"wordlines"`
}

// statsJSON converts the facade's Stats into the wire shape.
func statsJSON(st elp2im.Stats) StatsJSON {
	return StatsJSON{
		LatencyNS:     st.LatencyNS,
		EnergyNJ:      st.EnergyNJ,
		AveragePowerW: st.AveragePowerW,
		RowOps:        st.RowOps,
		Commands:      st.Commands,
		Wordlines:     st.Wordlines,
	}
}

// OpResponse is the response body of /v1/op, /v1/reduce and /v1/eval.
type OpResponse struct {
	// Stats is the modeled cost of the operation.
	Stats StatsJSON `json:"stats"`
	// Bits is the result vector's length (eval only, where the result
	// vector is created by the expression).
	Bits int `json:"bits,omitempty"`
	// Elems is the result's element count (arith only).
	Elems int `json:"elems,omitempty"`
	// ElemWidth is the result's element width in bits (arith only).
	ElemWidth int `json:"elem_width,omitempty"`
}

// ServerStats is the serving-layer section of the /v1/stats payload.
type ServerStats struct {
	// QueueDepth is the current admission-queue depth.
	QueueDepth int64 `json:"queue_depth"`
	// QueueMax is the configured admission bound.
	QueueMax int64 `json:"queue_max"`
	// Rejected counts requests refused with 503 by admission control.
	Rejected int64 `json:"rejected"`
	// DeadlineExpired counts requests whose deadline expired (504).
	DeadlineExpired int64 `json:"deadline_expired"`
	// BatchesFlushed counts micro-batch flushes.
	BatchesFlushed int64 `json:"batches_flushed"`
	// RequestsCoalesced counts requests that rode a flush.
	RequestsCoalesced int64 `json:"requests_coalesced"`
	// MeanBatchOccupancy is RequestsCoalesced / BatchesFlushed.
	MeanBatchOccupancy float64 `json:"mean_batch_occupancy"`
	// Panics counts handler panics converted to 500s.
	Panics int64 `json:"panics"`
	// WireFlushes counts response write-path flushes on the elpwire
	// listener — one writev syscall each; see WireFramesPerFlush.
	WireFlushes int64 `json:"wire_flushes"`
	// WireFramesPerFlush is the mean number of response frames coalesced
	// into one wire flush. 1.0 means every response paid its own
	// syscall (idle connections); values above 1 mean loaded connections
	// are amortizing writes.
	WireFramesPerFlush float64 `json:"wire_frames_per_flush"`
	// FusionHits counts eval/query plans that executed on the fused-kernel
	// tier, summed across shard accelerators.
	FusionHits int64 `json:"fusion_hits"`
	// FusionFallbacks counts eval/query plans that fell back to
	// node-at-a-time kernels or the command-accurate model. A nonzero
	// rate under -disable-fusion is expected; otherwise it means
	// predicates are not inheriting the fused tier.
	FusionFallbacks int64 `json:"fusion_fallbacks"`
	// Vectors is the number of stored vectors.
	Vectors int `json:"vectors"`
	// Draining reports whether the server is shutting down.
	Draining bool `json:"draining"`
	// Degraded reports whether the batching pipeline is disabled and ops
	// run synchronously.
	Degraded bool `json:"degraded"`
	// Shards is the number of independent shards the server routes across
	// (1 for a single-module server). Queue counters above aggregate over
	// all of them; QueueMax is the sum of the per-shard bounds.
	Shards int `json:"shards"`
	// PerShard breaks the admission/batching counters out per home shard
	// (only present when Shards > 1).
	PerShard []ShardStats `json:"per_shard,omitempty"`
}

// ShardStats is one shard's slice of the serving-layer counters plus its
// modeled execution load.
type ShardStats struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// QueueDepth is the shard's current admission-queue depth.
	QueueDepth int64 `json:"queue_depth"`
	// Rejected counts requests this shard refused with 503.
	Rejected int64 `json:"rejected"`
	// DeadlineExpired counts this shard's 504s.
	DeadlineExpired int64 `json:"deadline_expired"`
	// BatchesFlushed counts the shard's micro-batch flushes.
	BatchesFlushed int64 `json:"batches_flushed"`
	// RequestsCoalesced counts requests that rode one of its flushes.
	RequestsCoalesced int64 `json:"requests_coalesced"`
	// Vectors is the number of stored vectors homed on this shard.
	Vectors int `json:"vectors"`
	// Draining reports whether this shard's batcher is draining.
	Draining bool `json:"draining"`
	// ModeledBusyNS is the accumulated modeled latency executed on this
	// shard's accelerator. Shards execute concurrently (private charge
	// pumps and tFAW windows), so the modeled makespan of a run is the MAX
	// over shards, not the sum — dividing completed operations by it shows
	// the modeled hardware's throughput scaling with the shard count.
	ModeledBusyNS float64 `json:"modeled_busy_ns"`
}

// StatsPayload is the GET /v1/stats response: the accelerator identity and
// session totals plus the serving-layer counters, at a stable JSON shape.
type StatsPayload struct {
	// Design is the modeled design's name.
	Design string `json:"design"`
	// ReservedRows is the design's reserved-row count.
	ReservedRows int `json:"reserved_rows"`
	// Totals is the accumulated cost of every operation this session.
	Totals StatsJSON `json:"totals"`
	// Server is the serving-layer section.
	Server ServerStats `json:"server"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	// Error is the human-readable failure description.
	Error string `json:"error"`
}

// parseOp maps a wire mnemonic onto the facade's Op.
func parseOp(s string) (elp2im.Op, error) {
	switch strings.ToLower(s) {
	case "not":
		return elp2im.OpNot, nil
	case "and":
		return elp2im.OpAnd, nil
	case "or":
		return elp2im.OpOr, nil
	case "nand":
		return elp2im.OpNand, nil
	case "nor":
		return elp2im.OpNor, nil
	case "xor":
		return elp2im.OpXor, nil
	case "xnor":
		return elp2im.OpXnor, nil
	case "copy":
		return elp2im.OpCopy, nil
	default:
		return 0, badRequestf("server: unknown op %q", s)
	}
}

// EncodeBits renders a vector's contents in the wire format: base64 of
// ceil(bits/8) little-endian bytes.
func EncodeBits(v *elp2im.BitVector) string {
	return encodeWordBits(v.Words(), v.Len())
}

// encodeWordBits is the word-level core of EncodeBits, so the GET path
// can encode from a snapshot buffer instead of a live vector.
func encodeWordBits(words []uint64, n int) string {
	raw := make([]byte, (n+7)/8)
	for i := range raw {
		raw[i] = byte(words[i/8] >> (8 * (i % 8)))
	}
	return base64.StdEncoding.EncodeToString(raw)
}

// popcountWords counts the set bits across a word snapshot. Stored
// vectors keep their tail bits canonically zero, so this matches
// BitVector.Popcount over the same contents.
func popcountWords(words []uint64) int {
	n := 0
	for _, w := range words {
		n += bits.OnesCount64(w)
	}
	return n
}

// DecodeBits parses the wire format back into a fresh vector of the given
// length. Stray bits beyond the length in the final byte are rejected.
func DecodeBits(data string, bits int) (*elp2im.BitVector, error) {
	if bits <= 0 {
		return nil, badRequestf("server: bits must be positive, got %d", bits)
	}
	raw, err := base64.StdEncoding.DecodeString(data)
	if err != nil {
		return nil, badRequestf("server: bad vector data: %v", err)
	}
	if want := (bits + 7) / 8; len(raw) != want {
		return nil, badRequestf("server: vector data is %d bytes, want %d for %d bits", len(raw), want, bits)
	}
	if rem := bits % 8; rem != 0 {
		if tail := raw[len(raw)-1] >> rem; tail != 0 {
			return nil, badRequestf("server: vector data has bits set beyond length %d", bits)
		}
	}
	v := elp2im.NewBitVector(bits)
	words := v.Words()
	for i, b := range raw {
		words[i/8] |= uint64(b) << (8 * (i % 8))
	}
	return v, nil
}

// EncodeElems renders a vertical vector's element values in the wire
// format: base64 of 8 little-endian bytes per element.
func EncodeElems(elems []uint64) string {
	raw := make([]byte, 8*len(elems))
	for i, e := range elems {
		binary.LittleEndian.PutUint64(raw[i*8:], e)
	}
	return base64.StdEncoding.EncodeToString(raw)
}

// DecodeElems parses the element wire format back into values.
func DecodeElems(data string) ([]uint64, error) {
	raw, err := base64.StdEncoding.DecodeString(data)
	if err != nil {
		return nil, badRequestf("server: bad element data: %v", err)
	}
	if len(raw) == 0 || len(raw)%8 != 0 {
		return nil, badRequestf("server: element data is %d bytes, want a positive multiple of 8", len(raw))
	}
	elems := make([]uint64, len(raw)/8)
	for i := range elems {
		elems[i] = binary.LittleEndian.Uint64(raw[i*8:])
	}
	return elems, nil
}

// buildVertical validates decoded element values against the declared
// width and transposes them into a fresh vertical vector. Elements with
// bits set at or above the width are rejected (mirroring DecodeBits'
// stray-bit strictness), so a GET always returns exactly what was PUT.
func buildVertical(elems []uint64, width int) (*elp2im.Vertical, error) {
	if width < 1 || width > 64 {
		return nil, badRequestf("server: elem_width %d out of range [1, 64]", width)
	}
	for i, e := range elems {
		if width < 64 && e>>uint(width) != 0 {
			return nil, badRequestf("server: element %d has bits set beyond width %d", i, width)
		}
	}
	return elp2im.VerticalFromElements(elems, width)
}
