package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"

	elp2im "repro"
	"repro/internal/wire"
)

// This file threads elpwire (internal/wire) through the serving layer:
// ServeWire accepts persistent binary-protocol connections that execute
// against the same store, per-shard micro-batchers, admission queues and
// drain semantics as the HTTP/JSON handlers — only the codec differs.
// The differential tests in wire_server_test.go pin the two paths
// bit-for-bit equal; the sentinel-error → wire-status mapping below is
// the binary twin of statusFor, pinned by TestWireErrorStatusContract
// exactly the way TestErrorStatusContract pins the HTTP one.

// wireRetryAfterMS is the backoff hint carried by saturated/draining
// responses, mirroring the HTTP path's "Retry-After: 1".
const wireRetryAfterMS = 1000

// bitOps maps wire bitwise-operation codes onto the facade's ops. The
// indices are the wire.Bit* constants — a stable protocol contract pinned
// by TestWireBitOpTable.
var bitOps = [8]elp2im.Op{
	wire.BitNot:  elp2im.OpNot,
	wire.BitAnd:  elp2im.OpAnd,
	wire.BitOr:   elp2im.OpOr,
	wire.BitNand: elp2im.OpNand,
	wire.BitNor:  elp2im.OpNor,
	wire.BitXor:  elp2im.OpXor,
	wire.BitXnor: elp2im.OpXnor,
	wire.BitCopy: elp2im.OpCopy,
}

// bitOpFor validates and maps a wire op code.
func bitOpFor(code uint8) (elp2im.Op, bool) {
	if int(code) >= len(bitOps) {
		return 0, false
	}
	return bitOps[code], true
}

// arithOps maps wire vertical-arithmetic opcodes onto the facade's
// ArithOps. The indices are the wire.Arith* constants — the same stable
// protocol contract as bitOps, pinned by TestWireArithOpTable.
var arithOps = [9]elp2im.ArithOp{
	wire.ArithAdd:      elp2im.ArithAdd,
	wire.ArithSub:      elp2im.ArithSub,
	wire.ArithLt:       elp2im.ArithLt,
	wire.ArithLe:       elp2im.ArithLe,
	wire.ArithEq:       elp2im.ArithEq,
	wire.ArithLts:      elp2im.ArithLts,
	wire.ArithLes:      elp2im.ArithLes,
	wire.ArithPopcount: elp2im.ArithPopcount,
	wire.ArithSelect:   elp2im.ArithSelect,
}

// arithOpFor validates and maps a wire arithmetic op code.
func arithOpFor(code uint8) (elp2im.ArithOp, bool) {
	if int(code) >= len(arithOps) {
		return 0, false
	}
	return arithOps[code], true
}

// wireStatusFor classifies serving-layer errors into wire response
// statuses plus a retry-after hint — the same equivalence classes as
// statusFor's HTTP mapping: admission/drain → saturated/draining (503
// class, with backoff hint), deadline → deadline (504), cancellation →
// canceled (499), unknown vector → not_found (404), tagged validation
// and malformed frames → bad_request (400), anything unrecognized →
// internal (500).
func wireStatusFor(err error) (uint8, uint32) {
	switch {
	case errors.Is(err, ErrSaturated):
		return wire.StatusSaturated, wireRetryAfterMS
	case errors.Is(err, ErrDraining):
		return wire.StatusDraining, wireRetryAfterMS
	case errors.Is(err, context.DeadlineExceeded):
		return wire.StatusDeadline, 0
	case errors.Is(err, context.Canceled):
		return wire.StatusCanceled, 0
	case errors.Is(err, ErrUnknownVector):
		return wire.StatusNotFound, 0
	case errors.Is(err, errBadRequest), errors.Is(err, wire.ErrMalformed),
		errors.Is(err, elp2im.ErrBadExpr), errors.Is(err, elp2im.ErrBadArith):
		return wire.StatusBadRequest, 0
	default:
		return wire.StatusInternal, 0
	}
}

// wireStats converts the facade's Stats into the wire encoding's shape.
func wireStats(st elp2im.Stats) wire.Stats {
	return wire.Stats{
		LatencyNS:     st.LatencyNS,
		EnergyNJ:      st.EnergyNJ,
		AveragePowerW: st.AveragePowerW,
		RowOps:        uint64(st.RowOps),
		Commands:      uint64(st.Commands),
		Wordlines:     uint64(st.Wordlines),
	}
}

// ServeWire serves elpwire connections from ln until the listener
// closes, sharing the store, micro-batchers, admission control and drain
// state with the HTTP handlers. Accepted connections are tracked so
// CloseWireConns can end them after a drain. A clean listener close
// returns nil.
func (s *Server) ServeWire(ln net.Listener) error {
	cfg := wire.ServerConfig{
		Backend:           &wireBackend{s: s},
		StatusOf:          wireStatusFor,
		OnFlush:           s.obs.wire.onFlush,
		DisableCoalescing: s.cfg.WireDisableCoalescing,
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.wireMu.Lock()
		s.wireConns[conn] = struct{}{}
		s.wireMu.Unlock()
		s.obs.wire.connections.Add(1)
		s.wireWG.Add(1)
		go func(conn net.Conn) {
			defer s.wireWG.Done()
			_ = wire.ServeConn(conn, cfg)
			_ = conn.Close()
			s.obs.wire.connections.Add(-1)
			s.wireMu.Lock()
			delete(s.wireConns, conn)
			s.wireMu.Unlock()
		}(conn)
	}
}

// CloseWireConns ends every live wire connection and waits for their
// serving goroutines to exit. Call it after the listener is closed and
// Drain has settled admitted work. Responses for that work can still be
// sitting in per-connection flush queues, so rather than closing sockets
// under the flusher (truncating frames mid-write) this nudges each
// connection's read loop with an already-expired read deadline: the
// serving loop unwinds, drains its workers and flusher — delivering
// every queued response un-truncated — and closes the socket itself. A
// bounded write deadline guards against peers that stopped reading;
// their connections end with a write error instead of wedging shutdown.
func (s *Server) CloseWireConns() {
	expired := time.Unix(1, 0)
	writeBudget := time.Now().Add(5 * time.Second)
	s.wireMu.Lock()
	for c := range s.wireConns {
		_ = c.SetReadDeadline(expired)
		_ = c.SetWriteDeadline(writeBudget)
	}
	s.wireMu.Unlock()
	s.wireWG.Wait()
}

// wireBackend executes decoded wire requests against the server — the
// binary twin of the HTTP handlers. The op/reduce arm is the
// steady-state hot path: it allocates nothing of its own (pooled
// pimRequests, interned names from the connection, the response built
// into a pooled buffer), so the whole read→decode→dispatch→encode→write
// loop stays allocation-free when no per-request deadline is requested.
type wireBackend struct {
	s *Server
}

// Handle dispatches one request by opcode.
func (wb *wireBackend) Handle(ctx context.Context, req *wire.Request, resp *wire.Response) error {
	s := wb.s
	s.obs.wire.requests.Inc()
	var err error
	switch req.Kind {
	case wire.KindPing:
		// Liveness only.
	case wire.KindPut:
		err = wb.handlePut(req, resp)
	case wire.KindGet:
		err = wb.handleGet(req, resp)
	case wire.KindDelete:
		err = wb.handleDelete(req)
	case wire.KindOp, wire.KindReduce:
		err = wb.handleOp(ctx, req, resp)
	case wire.KindEval:
		err = wb.handleEval(req, resp)
	case wire.KindArith:
		err = wb.handleArith(req, resp)
	case wire.KindQuery:
		err = wb.handleQuery(req, resp)
	case wire.KindPutVert:
		err = wb.handlePutVert(req, resp)
	case wire.KindGetVert:
		err = wb.handleGetVert(req, resp)
	case wire.KindStats:
		err = wb.handleStats(resp)
	default:
		err = badRequestf("server: unknown wire opcode 0x%02x", req.Kind)
	}
	if err != nil {
		s.obs.wire.errors.Inc()
	}
	return err
}

// handlePut stores a vector from its raw word payload, mirroring the
// JSON path's DecodeBits contract: an empty payload stores an all-zero
// vector, and bits set beyond the declared length are rejected.
func (wb *wireBackend) handlePut(req *wire.Request, resp *wire.Response) error {
	vec := elp2im.NewBitVector(req.Bits)
	if n := req.WordCount(); n > 0 {
		words := vec.Words()
		for i := 0; i < n; i++ {
			words[i] = binary.LittleEndian.Uint64(req.WordData[i*8:])
		}
		if rem := req.Bits % 64; rem != 0 {
			if tail := words[n-1] >> rem; tail != 0 {
				return badRequestf("server: vector data has bits set beyond length %d", req.Bits)
			}
		}
	}
	wb.s.store.set(req.Name, vec)
	resp.AppendU32(uint32(vec.Len()))
	return nil
}

// handleGet returns a vector's length, popcount and raw words. Like the
// JSON GET, it pins the entry only long enough to snapshot the words into
// a pooled buffer; the popcount and frame build run outside the lock.
func (wb *wireBackend) handleGet(req *wire.Request, resp *wire.Response) error {
	e := wb.s.store.lookup(req.Name)
	if e == nil {
		return unknownVector(req.Name)
	}
	bp := getWordBuf()
	e.mu.RLock()
	if e.vert != nil {
		e.mu.RUnlock()
		putWordBuf(bp)
		return badRequestf("server: %q is a vertical vector; use get_vert", req.Name)
	}
	bits := e.vec.Len()
	*bp = append(*bp, e.vec.Words()...)
	e.mu.RUnlock()
	resp.AppendU32(uint32(bits))
	resp.AppendU64(uint64(popcountWords(*bp)))
	resp.AppendWords(*bp)
	putWordBuf(bp)
	return nil
}

// handleDelete removes a vector.
func (wb *wireBackend) handleDelete(req *wire.Request) error {
	if !wb.s.store.remove(req.Name) {
		return unknownVector(req.Name)
	}
	return nil
}

// handleOp admits an op or reduce to its destination's home-shard
// micro-batcher — the wire hot path. A zero TimeoutMS executes under the
// connection's base context (no timer, no allocation); a nonzero one
// buys a per-request deadline exactly like the JSON ?timeout_ms.
func (wb *wireBackend) handleOp(ctx context.Context, req *wire.Request, resp *wire.Response) error {
	op, ok := bitOpFor(req.Op)
	if !ok {
		return badRequestf("server: unknown wire op code %d", req.Op)
	}
	pr := getPimRequest()
	if req.Kind == wire.KindReduce {
		if op != elp2im.OpAnd && op != elp2im.OpOr {
			putPimRequest(pr)
			return badRequestf("server: reduce supports and/or, got %s", op)
		}
		pr.kind, pr.op, pr.dst = kindReduce, op, req.Dst
		pr.srcs = append(pr.srcs[:0], req.Srcs...)
	} else {
		if !op.Unary() && req.Y == "" {
			putPimRequest(pr)
			return badRequestf("server: %s needs operand y", op)
		}
		pr.kind, pr.op, pr.dst, pr.x, pr.y = kindOp, op, req.Dst, req.X, req.Y
	}
	cancel := nopCancel
	if req.TimeoutMS > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
	}
	st, _, err := wb.s.batcherFor(pr.dst).Do(ctx, pr)
	cancel()
	if err != nil {
		return err
	}
	resp.AppendStats(wireStats(st))
	return nil
}

// handleEval evaluates an expression through the shared eval core. Like
// the HTTP handler, eval runs synchronously under the drain gate with no
// per-request deadline.
func (wb *wireBackend) handleEval(req *wire.Request, resp *wire.Response) error {
	st, bits, err := wb.s.evalCore(req.Expr, req.Dst)
	if err != nil {
		return err
	}
	resp.AppendStats(wireStats(st))
	resp.AppendU32(uint32(bits))
	return nil
}

// handleArith runs one vertical arithmetic operation through the shared
// arith core — the binary twin of POST /v1/arith. A nonzero TimeoutMS is
// accepted for frame symmetry with op/reduce but, like eval, arith runs
// synchronously under the drain gate without a per-request deadline.
func (wb *wireBackend) handleArith(req *wire.Request, resp *wire.Response) error {
	op, ok := arithOpFor(req.Op)
	if !ok {
		return badRequestf("server: unknown wire arith code %d", req.Op)
	}
	st, out, err := wb.s.arithCore(op, req.Dst, req.X, req.Y, req.Mask)
	if err != nil {
		return err
	}
	resp.AppendStats(wireStats(st))
	resp.AppendU8(uint8(out.Width()))
	resp.AppendU32(uint32(out.Len()))
	return nil
}

// handlePutVert stores a vertical (bit-sliced integer) vector from its
// raw element payload, transposing on ingest exactly like the JSON PUT's
// vertical path — including its strict rejection of elements with bits
// set at or above the declared width.
func (wb *wireBackend) handlePutVert(req *wire.Request, resp *wire.Response) error {
	n := req.ElemCount()
	elems := make([]uint64, n)
	for i := range elems {
		elems[i] = binary.LittleEndian.Uint64(req.WordData[i*8:])
	}
	v, err := buildVertical(elems, req.ElemWidth)
	if err != nil {
		return err
	}
	wb.s.store.setVert(req.Name, v)
	resp.AppendU32(uint32(n))
	return nil
}

// handleGetVert returns a vertical vector's element width and decoded
// elements. Elements() already copies out of the slices under the read
// lock, so no pooled snapshot is needed.
func (wb *wireBackend) handleGetVert(req *wire.Request, resp *wire.Response) error {
	e := wb.s.store.lookup(req.Name)
	if e == nil {
		return unknownVector(req.Name)
	}
	e.mu.RLock()
	if e.vert == nil {
		e.mu.RUnlock()
		return badRequestf("server: %q is a bit vector; use get", req.Name)
	}
	width := e.vert.Width()
	elems := e.vert.Elements()
	e.mu.RUnlock()
	resp.AppendU8(uint8(width))
	resp.AppendWords(elems) // carries the element count
	return nil
}

// handleStats marshals the exact /v1/stats payload, so the two protocols
// serve byte-identical stats by construction.
func (wb *wireBackend) handleStats(resp *wire.Response) error {
	raw, err := json.Marshal(wb.s.Stats())
	if err != nil {
		return err
	}
	resp.AppendBytes(raw)
	return nil
}

// nopCancel is the shared no-op CancelFunc for deadline-free requests.
var nopCancel context.CancelFunc = func() {}

// unknownVector wraps a missing vector's name in the 404 sentinel.
func unknownVector(name string) error {
	return fmt.Errorf("%w: %q", ErrUnknownVector, name)
}
