package server

import (
	"container/list"
	"sync"

	elp2im "repro"
	"repro/internal/obs"
)

// evalCache is the server-side compiled-program LRU shared by /v1/eval
// and /v1/arith (and their wire twins): expression sources map to their
// *elp2im.CompiledExpr, (op, width) pairs to their *elp2im.CompiledArith.
// Compilation is pure — the compiled object captures no store or
// accelerator state and is reused concurrently by every tier — so a hit
// skips the parse + DAG build + plan clustering entirely, which on the
// steady-state serving path (the same handful of expressions and arith
// shapes over and over) turns per-request compilation into a map lookup.
//
// The cache is bounded (Config.EvalCacheSize, default 256 entries) with
// least-recently-used eviction, and it counts hits and misses in the
// server.evalcache.hit / server.evalcache.miss series. Two concurrent
// misses on one key may both compile; the second store wins, which is
// harmless — compiled programs for equal keys are interchangeable.
type evalCache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used
	m      map[string]*list.Element
	hits   *obs.Counter
	misses *obs.Counter
}

// cacheSlot is one LRU entry: the key (so eviction can delete the map
// row) and the compiled value.
type cacheSlot struct {
	key string
	val any
}

// defaultEvalCacheSize is the entry bound when Config.EvalCacheSize is
// left zero.
const defaultEvalCacheSize = 256

// newEvalCache returns an empty LRU bounded to capacity entries.
func newEvalCache(capacity int, hits, misses *obs.Counter) *evalCache {
	if capacity <= 0 {
		capacity = defaultEvalCacheSize
	}
	return &evalCache{
		cap:    capacity,
		ll:     list.New(),
		m:      make(map[string]*list.Element, capacity),
		hits:   hits,
		misses: misses,
	}
}

// lookup returns the cached value for key, marking it most recently
// used; a miss counts and returns false.
func (c *evalCache) lookup(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Inc()
		return el.Value.(*cacheSlot).val, true
	}
	c.misses.Inc()
	return nil, false
}

// store inserts (or refreshes) key → val, evicting the least recently
// used entry beyond the capacity bound.
func (c *evalCache) store(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheSlot).val = val
		return
	}
	c.m[key] = c.ll.PushFront(&cacheSlot{key: key, val: val})
	if c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.m, back.Value.(*cacheSlot).key)
	}
}

// len returns the current entry count (tests).
func (c *evalCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Key prefixes keep the two program kinds from colliding: NUL cannot
// appear in an expression keyword position and the arith key is fully
// binary.
const (
	exprKeyPrefix  = "e\x00"
	arithKeyPrefix = "a\x00"
)

// arithKey builds the (op, width) cache key — the operation's complete
// compile shape, since a µProgram depends on nothing else.
func arithKey(op elp2im.ArithOp, width int) string {
	return arithKeyPrefix + string([]byte{byte(op), byte(width)})
}

// cachedExpr returns the compiled form of an expression source, through
// the cache. Compile failures are not cached (they are client errors,
// already cheap).
func (s *Server) cachedExpr(src string) (*elp2im.CompiledExpr, error) {
	key := exprKeyPrefix + src
	if v, ok := s.cache.lookup(key); ok {
		return v.(*elp2im.CompiledExpr), nil
	}
	ce, err := elp2im.CompileExpr(src)
	if err != nil {
		return nil, err
	}
	s.cache.store(key, ce)
	return ce, nil
}

// cachedArith returns the compiled µProgram for (op, width), through the
// cache.
func (s *Server) cachedArith(op elp2im.ArithOp, width int) (*elp2im.CompiledArith, error) {
	key := arithKey(op, width)
	if v, ok := s.cache.lookup(key); ok {
		return v.(*elp2im.CompiledArith), nil
	}
	ca, err := elp2im.CompileArith(op, width)
	if err != nil {
		return nil, err
	}
	s.cache.store(key, ca)
	return ca, nil
}
