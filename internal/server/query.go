package server

import (
	"fmt"
	"math/bits"
	"net/http"

	elp2im "repro"
	"repro/internal/wire"
)

// This file is the bitmap-index query layer: POST /v1/query (and its wire
// twin, KindQuery) evaluates a boolean predicate over the bitmap indices
// of a namespace. Indices are ordinary stored bit vectors under the key
// "<namespace>/<index>", so they inherit the store's FNV shard placement,
// kind guards and entry locking unchanged; predicates compile through
// plan.Compile via the shared -evalcache LRU, so they inherit clustering,
// CSE and the fused kernel tier exactly like /v1/eval. Unlike eval, a
// query stores nothing: the match vector is private to the request and is
// rendered as a count, the whole bitvector, or a cursor/limit page of
// set-bit positions.

// Query sentinels. All four are request faults, so each wraps
// errBadRequest — statusFor and wireStatusFor classify them as 400 /
// bad_request with no new cases, and TestErrorStatusContract pins every
// one by name.
var (
	// errUnknownNamespace tags a query whose namespace has no stored
	// indices at all.
	errUnknownNamespace = fmt.Errorf("%w: unknown namespace", errBadRequest)
	// errUnknownIndex tags a predicate referencing an index the namespace
	// does not hold.
	errUnknownIndex = fmt.Errorf("%w: unknown index", errBadRequest)
	// errQueryBudget tags a predicate whose command-accurate fallback
	// would not fit the module's subarray rows (too many distinct indices
	// plus temps).
	errQueryBudget = fmt.Errorf("%w: predicate exceeds the row budget", errBadRequest)
	// errBadCursor tags a pagination cursor beyond the namespace universe.
	errBadCursor = fmt.Errorf("%w: bad cursor", errBadRequest)
)

// Pagination bounds for the positions mode.
const (
	// defaultQueryLimit is the page size when the client does not pass
	// one.
	defaultQueryLimit = 4096
	// maxQueryLimit caps the page size a client may request, bounding the
	// response size a single positions page can demand.
	maxQueryLimit = 65536
)

// parseQueryMode maps the JSON mode strings onto the wire mode codes —
// the single mode vocabulary both protocols share (pinned by
// TestQueryModeTable).
func parseQueryMode(s string) (uint8, error) {
	switch s {
	case "", "count":
		return wire.QueryCount, nil
	case "bits":
		return wire.QueryBits, nil
	case "positions":
		return wire.QueryPositions, nil
	default:
		return 0, badRequestf("server: unknown query mode %q", s)
	}
}

// pageLimit normalizes a client-requested page size: zero (or negative,
// via JSON) selects the default, and anything beyond the cap clamps.
func pageLimit(limit int) int {
	if limit <= 0 {
		return defaultQueryLimit
	}
	if limit > maxQueryLimit {
		return maxQueryLimit
	}
	return limit
}

// indexKey is the store key of one bitmap index: the namespace and index
// name joined by "/". Index names are expression identifiers (no slash),
// so the prefix "<namespace>/" delimits a namespace unambiguously.
func indexKey(namespace, index string) string { return namespace + "/" + index }

// queryCore is the protocol-independent query body shared by the HTTP
// and wire paths, mirroring evalCore's shape: compile the predicate
// through the shared plan cache, pre-check the row budget, gate on the
// namespace's home-shard drain state, read-lock the index entries, and
// evaluate the compiled plan — scatter-gather across every shard on a
// sharded server, on the single accelerator otherwise. The match vector
// is private to the call (nothing is stored), so the caller renders it
// lock-free.
func (s *Server) queryCore(namespace, predicate string) (*elp2im.BitVector, elp2im.Stats, error) {
	if namespace == "" || predicate == "" {
		return nil, elp2im.Stats{}, badRequestf("server: query needs namespace and predicate")
	}
	ce, err := s.cachedExpr(predicate)
	if err != nil {
		return nil, elp2im.Stats{}, err
	}
	// The command-accurate fallback's row demand is checked up front: the
	// facade reports it as an untagged internal error mid-eval, but an
	// over-deep predicate is the client's fault and must answer 400.
	if need, have := s.acc.ExprRowDemand(ce); need > have {
		return nil, elp2im.Stats{}, fmt.Errorf("%w: predicate needs %d rows per subarray, module has %d",
			errQueryBudget, need, have)
	}
	// Queries are read-only but still coordinate with drain exactly like
	// eval: gate on the namespace's home-shard batcher so in-flight
	// queries finish before Drain returns and draining servers refuse new
	// ones with the 503 class.
	batcher := s.batcherFor(namespace)
	if err := batcher.acquireSync(); err != nil {
		return nil, elp2im.Stats{}, err
	}
	defer batcher.releaseSync()

	names := ce.Vars()
	entries := make(map[string]*entry, len(names))
	vars := make(map[string]*elp2im.BitVector, len(names))
	for _, name := range names {
		e := s.store.lookup(indexKey(namespace, name))
		if e == nil {
			if !s.store.hasPrefix(namespace + "/") {
				return nil, elp2im.Stats{}, fmt.Errorf("%w %q", errUnknownNamespace, namespace)
			}
			return nil, elp2im.Stats{}, fmt.Errorf("%w %q in namespace %q", errUnknownIndex, name, namespace)
		}
		entries[name] = e
	}
	// Keyed by index name, locked in ascending order: within one namespace
	// that is ascending full-key order too, so the ordering is consistent
	// with every other multi-entry locker.
	unlock := rlockEntries(entries)
	var universe int
	for name, e := range entries {
		if e.vert != nil {
			unlock()
			return nil, elp2im.Stats{}, badRequestf("server: index %q is a vertical vector; bitmap indices are bit vectors", name)
		}
		vars[name] = e.vec
		if universe == 0 {
			universe = e.vec.Len()
		} else if e.vec.Len() != universe {
			unlock()
			return nil, elp2im.Stats{}, badRequestf("server: indices in %q differ in length (%q has %d bits, want %d)",
				namespace, name, e.vec.Len(), universe)
		}
	}
	var out *elp2im.BitVector
	var st elp2im.Stats
	if s.shard != nil {
		out, st, err = s.shard.EvalExpr(ce, vars)
	} else {
		out, st, err = s.acc.EvalExpr(ce, vars)
	}
	unlock()
	if err != nil {
		return nil, elp2im.Stats{}, err
	}
	return out, st, nil
}

// queryPage scans the match vector for set-bit positions in
// [cursor, Len), up to limit of them, returning the page and the cursor
// resuming after it — zero when the page reached the last match, which is
// unambiguous because a resume cursor is always at least one past a set
// bit.
func queryPage(match *elp2im.BitVector, cursor, limit int) (positions []uint64, next uint64) {
	words := match.Words()
	n := match.Len()
	positions = make([]uint64, 0, limit)
	for w := cursor / 64; w < len(words); w++ {
		x := words[w]
		if w == cursor/64 {
			x &= ^uint64(0) << (cursor % 64)
		}
		for x != 0 {
			pos := w*64 + bits.TrailingZeros64(x)
			if pos >= n {
				return positions, 0
			}
			if len(positions) == limit {
				return positions, positions[limit-1] + 1
			}
			positions = append(positions, uint64(pos))
			x &= x - 1
		}
	}
	return positions, 0
}

// handleQuery answers POST /v1/query: evaluate a boolean predicate over
// a namespace's bitmap indices and render the match per the requested
// mode. The response always carries the universe width and the match
// cardinality; bits mode adds the match vector (base64, the
// /v1/vectors data encoding), positions mode a cursor/limit page of
// set-bit positions.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) error {
	var body QueryRequest
	if err := decodeBody(r, &body); err != nil {
		return err
	}
	mode, err := parseQueryMode(body.Mode)
	if err != nil {
		return err
	}
	if body.Cursor < 0 {
		return fmt.Errorf("%w: cursor %d is negative", errBadCursor, body.Cursor)
	}
	match, st, err := s.queryCore(body.Namespace, body.Predicate)
	if err != nil {
		return err
	}
	resp := QueryResponse{
		Stats: statsJSON(st),
		Bits:  match.Len(),
		Count: match.Popcount(),
	}
	switch mode {
	case wire.QueryBits:
		resp.Data = encodeWordBits(match.Words(), match.Len())
	case wire.QueryPositions:
		if body.Cursor > match.Len() {
			return fmt.Errorf("%w: cursor %d beyond universe %d", errBadCursor, body.Cursor, match.Len())
		}
		positions, next := queryPage(match, body.Cursor, pageLimit(body.Limit))
		resp.Positions = make([]int, len(positions))
		for i, p := range positions {
			resp.Positions[i] = int(p)
		}
		resp.NextCursor = int(next)
	}
	return writeJSON(w, resp)
}

// handleQuery is the binary twin of POST /v1/query, sharing queryCore.
func (wb *wireBackend) handleQuery(req *wire.Request, resp *wire.Response) error {
	match, st, err := wb.s.queryCore(req.Name, req.Expr)
	if err != nil {
		return err
	}
	resp.AppendStats(wireStats(st))
	resp.AppendU32(uint32(match.Len()))
	resp.AppendU64(uint64(match.Popcount()))
	switch req.Mode {
	case wire.QueryBits:
		resp.AppendWords(match.Words())
	case wire.QueryPositions:
		if req.Cursor > uint64(match.Len()) {
			return fmt.Errorf("%w: cursor %d beyond universe %d", errBadCursor, req.Cursor, match.Len())
		}
		positions, next := queryPage(match, int(req.Cursor), pageLimit(int(req.Limit)))
		resp.AppendU64(next)
		resp.AppendWords(positions)
	}
	return nil
}

// queryStatusSentinels lists the query-specific 400 sentinels — exported
// to the contract tests so a new sentinel cannot land without a status
// row (see TestErrorStatusContract).
var queryStatusSentinels = []error{errUnknownNamespace, errUnknownIndex, errQueryBudget, errBadCursor}
