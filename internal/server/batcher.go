package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	elp2im "repro"
)

// Serving-layer sentinel errors, mapped onto HTTP statuses by the
// handlers (503 for admission/drain, 404 for unknown vectors).
var (
	// ErrSaturated is returned when the admission queue is full: the
	// pipeline cannot keep up with the offered load and the client should
	// back off (503 + Retry-After).
	ErrSaturated = errors.New("server: request queue is full")
	// ErrDraining is returned once graceful shutdown has begun and no new
	// work is admitted.
	ErrDraining = errors.New("server: draining, not accepting new requests")
	// ErrUnknownVector wraps the name of an operand that is not in the
	// store.
	ErrUnknownVector = errors.New("server: unknown vector")
	// errBadRequest tags request-validation failures so statusFor can
	// reserve 400 Bad Request for them; any error that reaches wrap
	// untagged (and is none of the named sentinels) is a server fault and
	// answers 500.
	errBadRequest = errors.New("server: bad request")
)

// badRequest is a client-fault error: its message stands alone, but it
// unwraps to errBadRequest so statusFor recognizes it through any further
// wrapping.
type badRequest struct{ msg string }

// Error returns the validation failure's message.
func (e *badRequest) Error() string { return e.msg }

// Unwrap exposes the errBadRequest tag to errors.Is.
func (e *badRequest) Unwrap() error { return errBadRequest }

// badRequestf builds a client-fault error from a format string.
func badRequestf(format string, args ...any) error {
	return &badRequest{msg: fmt.Sprintf(format, args...)}
}

// reqKind discriminates the two batchable request shapes.
type reqKind int

const (
	kindOp reqKind = iota
	kindReduce
)

// pimRequest is one admitted operation waiting for (or riding) a
// micro-batch flush. Requests cycle through pimReqPool so the wire path's
// steady-state op loop allocates nothing; done is a reusable buffered(1)
// channel signaled exactly once per use instead of a closed-and-discarded
// one.
type pimRequest struct {
	kind reqKind
	op   elp2im.Op
	dst  string
	x, y string   // kindOp operands
	srcs []string // kindReduce operands

	ctx  context.Context
	done chan struct{}

	// Results, written exactly once before done is signaled.
	stats   elp2im.Stats
	err     error
	flushID int64
}

// pimReqPool recycles pimRequests across the JSON and wire paths. A
// request abandoned on the deadline path is deliberately NOT recycled
// (the flusher still holds it and will settle it later); only requests
// whose outcome was received go back.
var pimReqPool = sync.Pool{New: func() any {
	return &pimRequest{done: make(chan struct{}, 1)}
}}

// getPimRequest fetches a zeroed request from the pool.
func getPimRequest() *pimRequest { return pimReqPool.Get().(*pimRequest) }

// putPimRequest resets a settled request and recycles it.
func putPimRequest(r *pimRequest) {
	r.kind, r.op = 0, 0
	r.dst, r.x, r.y = "", "", ""
	r.srcs = r.srcs[:0]
	r.ctx = nil
	r.stats, r.err, r.flushID = elp2im.Stats{}, nil, 0
	pimReqPool.Put(r)
}

// resolve publishes the request's outcome and wakes its handler. The
// flusher must not touch r afterwards: the handler may already have
// recycled it.
func (r *pimRequest) resolve(st elp2im.Stats, err error) {
	r.stats, r.err = st, err
	r.done <- struct{}{}
}

// Batcher is the dynamic micro-batcher at the heart of elpd: concurrent
// requests that arrive within one coalescing window (or up to MaxBatch)
// are folded into a single Accelerator.Batch submission, so requests
// whose stripes land on distinct subarrays ride the pipeline's existing
// parallelism, and every request fans back out through its own Future.
//
// A single flusher goroutine alternates between coalescing and flushing;
// while a flush is executing, newly admitted requests accumulate into the
// next batch — the standard dynamic-batching feedback that grows batches
// exactly when the pipeline is busy. Admission is bounded (MaxQueue):
// beyond it, Do fails fast with ErrSaturated instead of queueing
// unboundedly. Request deadlines are honored both in the handler (the
// select in Do) and at flush time (expired requests are skipped, not
// executed). Drain stops admission, flushes everything already queued,
// and waits for in-flight synchronous work — zero admitted requests are
// dropped.
type Batcher struct {
	acc      *elp2im.Accelerator
	store    *Store
	window   time.Duration
	maxBatch int
	maxQueue int
	degraded bool
	obs      *batcherSeries

	mu       sync.Mutex
	queue    []*pimRequest
	draining bool
	syncWG   sync.WaitGroup // in-flight degraded/Eval work, Add under mu

	wake      chan struct{} // buffered(1): queue became non-empty / grew
	drainCh   chan struct{} // closed when draining starts
	drainOnce sync.Once
	loopDone  chan struct{} // closed when the flusher exits

	flushSeq int64        // flusher-goroutine-local sequence number
	scratch  flushScratch // flusher-goroutine-local working set
}

// flushScratch is the per-flush working set, reused across flushes:
// flush runs only on the batcher's flusher goroutine, so one scratch per
// batcher keeps the steady-state flush path from re-allocating its
// slices, resolution carriers, and lock-ordering scratch on every
// micro-batch. Only data that escapes by design — adopted store entries,
// futures — is freshly allocated.
type flushScratch struct {
	live, submitted []*pimRequest
	bound, subBound []*resolved
	futures         []*elp2im.Future
	entries         map[string]*entry
	lockNames       []string
	res             []*resolved // grow-only carrier pool
	resUsed         int
}

// reset clears the scratch for the next flush. Pointer-holding slices
// are zeroed before truncation so recycled carriers do not pin dead
// requests or futures across idle periods.
func (s *flushScratch) reset() {
	clear(s.live)
	clear(s.submitted)
	clear(s.bound)
	clear(s.subBound)
	clear(s.futures)
	s.live, s.submitted = s.live[:0], s.submitted[:0]
	s.bound, s.subBound = s.bound[:0], s.subBound[:0]
	s.futures = s.futures[:0]
	if s.entries == nil {
		s.entries = make(map[string]*entry)
	} else {
		clear(s.entries)
	}
	s.resUsed = 0
}

// nextResolved hands out a cleared resolution carrier from the scratch's
// grow-only pool.
func (s *flushScratch) nextResolved() *resolved {
	if s.resUsed == len(s.res) {
		s.res = append(s.res, &resolved{})
	}
	res := s.res[s.resUsed]
	s.resUsed++
	res.reset()
	return res
}

// newBatcher starts a batcher (and its flusher goroutine, unless
// degraded) over acc and store. A sharded server runs one per shard, each
// with its own accelerator, admission queue, coalescing window and metric
// series — one hot shard saturating its queue answers 503 without
// stalling the others.
func newBatcher(acc *elp2im.Accelerator, store *Store, window time.Duration, maxBatch, maxQueue int, degraded bool, obs *batcherSeries) *Batcher {
	b := &Batcher{
		acc:      acc,
		store:    store,
		window:   window,
		maxBatch: maxBatch,
		maxQueue: maxQueue,
		degraded: degraded,
		obs:      obs,
		wake:     make(chan struct{}, 1),
		drainCh:  make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	obs.queueMax.Set(int64(maxQueue))
	if degraded {
		obs.degraded.Set(1)
		close(b.loopDone)
		return b
	}
	go b.loop()
	return b
}

// Do admits one request, waits for its outcome or the context deadline,
// and returns the modeled cost. The error is ErrSaturated / ErrDraining
// when admission fails, the context error when the deadline expires
// first (the request itself is then skipped at flush time), or the
// operation's own error.
//
// Do takes ownership of r, which must come from getPimRequest: when the
// outcome arrives, r is recycled before Do returns, so the caller must
// not touch it afterwards. A request abandoned to an expired context
// stays un-recycled — the flusher still holds it.
func (b *Batcher) Do(ctx context.Context, r *pimRequest) (elp2im.Stats, int64, error) {
	if b.degraded {
		st, err := b.doSync(ctx, r)
		putPimRequest(r)
		return st, 0, err
	}
	r.ctx = ctx
	if r.done == nil {
		// Pool-sourced requests arrive with a reusable channel; literals
		// (tests, embedders) get one here.
		r.done = make(chan struct{}, 1)
	}
	b.mu.Lock()
	if b.draining {
		b.mu.Unlock()
		putPimRequest(r)
		return elp2im.Stats{}, 0, ErrDraining
	}
	if len(b.queue) >= b.maxQueue {
		b.mu.Unlock()
		putPimRequest(r)
		b.obs.rejected.Inc()
		return elp2im.Stats{}, 0, ErrSaturated
	}
	b.queue = append(b.queue, r)
	b.obs.queueDepth.Set(int64(len(b.queue)))
	b.mu.Unlock()
	select {
	case b.wake <- struct{}{}:
	default:
	}

	select {
	case <-r.done:
		st, id, err := r.stats, r.flushID, r.err
		putPimRequest(r)
		return st, id, err
	case <-ctx.Done():
		// The flusher skips the request once it notices the expired
		// context; the handler answers 504 now rather than blocking on a
		// Future that would only resolve at the next flush. r is leaked to
		// the garbage collector, not the pool: the flusher will still write
		// its late outcome into it.
		b.obs.deadlineExpired.Inc()
		return elp2im.Stats{}, 0, ctx.Err()
	}
}

// acquireSync admits one unit of synchronous (non-batched) work — Eval,
// or any op in degraded mode — against the drain gate.
func (b *Batcher) acquireSync() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.draining {
		return ErrDraining
	}
	b.syncWG.Add(1)
	return nil
}

// releaseSync retires one unit of synchronous work.
func (b *Batcher) releaseSync() { b.syncWG.Done() }

// doSync executes one request synchronously through the facade — the
// degraded mode used when the pipeline is disabled.
func (b *Batcher) doSync(ctx context.Context, r *pimRequest) (elp2im.Stats, error) {
	if err := b.acquireSync(); err != nil {
		return elp2im.Stats{}, err
	}
	defer b.releaseSync()
	if err := ctx.Err(); err != nil {
		b.obs.deadlineExpired.Inc()
		return elp2im.Stats{}, err
	}
	res := &resolved{}
	res.reset()
	if err := b.resolveRequest(r, res); err != nil {
		return elp2im.Stats{}, err
	}
	unlock := lockEntries(res.entries)
	if err := res.bind(r); err != nil {
		unlock()
		return elp2im.Stats{}, err
	}
	var st elp2im.Stats
	var err error
	switch r.kind {
	case kindReduce:
		st, err = b.acc.Reduce(r.op, res.dst, res.srcs...)
	default:
		st, err = b.acc.Op(r.op, res.dst, res.x, res.y)
	}
	unlock()
	if err != nil {
		return elp2im.Stats{}, err
	}
	if res.newDst != nil {
		b.store.adopt(r.dst, res.newDst)
	}
	return st, nil
}

// Draining reports whether drain has begun.
func (b *Batcher) Draining() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.draining
}

// Degraded reports whether the batcher runs in synchronous fallback mode.
func (b *Batcher) Degraded() bool { return b.degraded }

// Drain stops admission (Do returns ErrDraining from now on), flushes
// every request already queued, and blocks until the flusher has exited
// and all in-flight synchronous work has retired. It is idempotent.
func (b *Batcher) Drain() {
	b.mu.Lock()
	b.draining = true
	b.mu.Unlock()
	b.obs.draining.Set(1)
	b.drainOnce.Do(func() { close(b.drainCh) })
	<-b.loopDone
	b.syncWG.Wait()
}

// loop is the flusher: wait for work, coalesce, flush, repeat; on drain,
// keep flushing until the queue is empty, then exit.
func (b *Batcher) loop() {
	defer close(b.loopDone)
	for {
		if !b.waitForWork() {
			return
		}
		b.coalesce()
		if reqs := b.take(); len(reqs) > 0 {
			b.flush(reqs)
		}
	}
}

// waitForWork blocks until the queue is non-empty (true) or the batcher
// is draining with an empty queue (false).
func (b *Batcher) waitForWork() bool {
	for {
		b.mu.Lock()
		n, draining := len(b.queue), b.draining
		b.mu.Unlock()
		if n > 0 {
			return true
		}
		if draining {
			return false
		}
		select {
		case <-b.wake:
		case <-b.drainCh:
		}
	}
}

// coalesce holds the open batch for the coalescing window, returning
// early when the batch fills (maxBatch) or drain begins. A zero window
// is pure pass-through: whatever is queued right now flushes immediately.
func (b *Batcher) coalesce() {
	if b.window <= 0 {
		return
	}
	timer := time.NewTimer(b.window)
	defer timer.Stop()
	for {
		b.mu.Lock()
		full, draining := len(b.queue) >= b.maxBatch, b.draining
		b.mu.Unlock()
		if full || draining {
			return
		}
		select {
		case <-timer.C:
			return
		case <-b.wake:
		case <-b.drainCh:
		}
	}
}

// take removes up to maxBatch requests from the head of the queue.
func (b *Batcher) take() []*pimRequest {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := len(b.queue)
	if n > b.maxBatch {
		n = b.maxBatch
	}
	reqs := make([]*pimRequest, n)
	copy(reqs, b.queue[:n])
	rest := copy(b.queue, b.queue[n:])
	for i := rest; i < len(b.queue); i++ {
		b.queue[i] = nil
	}
	b.queue = b.queue[:rest]
	b.obs.queueDepth.Set(int64(rest))
	return reqs
}

// resolved is one request's operand names bound to store entries, then —
// once those entries are locked — to the vectors themselves (see bind).
type resolved struct {
	// entries are the involved store entries, keyed by name; they must be
	// locked (lockEntries) before bind reads any vector out of them.
	entries map[string]*entry
	// dstEntry is the destination's store entry when the name existed at
	// resolve time; nil means the destination is created detached by bind
	// and published (adopt) only if the operation succeeds.
	dstEntry *entry
	// newDst is the detached destination entry bind created, nil when the
	// destination already existed.
	newDst *entry

	dst, x, y *elp2im.BitVector
	srcs      []*elp2im.BitVector
}

// reset clears a recycled carrier for reuse (see flushScratch).
func (res *resolved) reset() {
	if res.entries == nil {
		res.entries = make(map[string]*entry, 4)
	} else {
		clear(res.entries)
	}
	res.dstEntry = nil
	res.newDst = nil
	res.dst, res.x, res.y = nil, nil, nil
	clear(res.srcs)
	res.srcs = res.srcs[:0]
}

// resolveRequest binds a request's vector names to store entries. It
// never touches vector contents — per the store's locking invariant, vec
// pointers are only read by bind, after lockEntries pinned every involved
// entry. A destination that does not exist yet is deliberately NOT
// created here: bind materializes it detached, and it becomes visible in
// the store only when the operation succeeds, so a failed request never
// leaves a spurious all-zero vector behind. The carrier res comes cleared
// from the caller (flush recycles them through its scratch).
func (b *Batcher) resolveRequest(r *pimRequest, res *resolved) error {
	need := func(name string) error {
		e := b.store.lookup(name)
		if e == nil {
			return fmt.Errorf("%w: %q", ErrUnknownVector, name)
		}
		res.entries[name] = e
		return nil
	}
	switch r.kind {
	case kindReduce:
		for _, name := range r.srcs {
			if err := need(name); err != nil {
				return err
			}
		}
	default:
		if err := need(r.x); err != nil {
			return err
		}
		if !r.op.Unary() {
			if err := need(r.y); err != nil {
				return err
			}
		}
	}
	if e := b.store.lookup(r.dst); e != nil {
		res.entries[r.dst] = e
		res.dstEntry = e
	}
	return nil
}

// bind reads the operand vectors out of the locked entries and
// materializes the destination: the stored vector when the name exists, a
// detached one otherwise. It also pre-validates operand lengths so a
// mismatch settles as a tagged 400 instead of surfacing as an opaque
// facade error. The caller must hold the locks from
// lockEntries(res.entries).
func (res *resolved) bind(r *pimRequest) error {
	switch r.kind {
	case kindReduce:
		if cap(res.srcs) < len(r.srcs) {
			res.srcs = make([]*elp2im.BitVector, len(r.srcs))
		} else {
			res.srcs = res.srcs[:len(r.srcs)]
		}
		for i, name := range r.srcs {
			v, err := res.vecOf(name)
			if err != nil {
				return err
			}
			res.srcs[i] = v
			if res.srcs[i].Len() != res.srcs[0].Len() {
				return badRequestf("server: reduce operand %q has %d bits, want %d",
					name, res.srcs[i].Len(), res.srcs[0].Len())
			}
		}
		return res.bindDst(r.dst, res.srcs[0].Len())
	default:
		v, err := res.vecOf(r.x)
		if err != nil {
			return err
		}
		res.x = v
		if !r.op.Unary() {
			if res.y, err = res.vecOf(r.y); err != nil {
				return err
			}
			if res.y.Len() != res.x.Len() {
				return badRequestf("server: operands %q (%d bits) and %q (%d bits) differ in length",
					r.x, res.x.Len(), r.y, res.y.Len())
			}
		}
		return res.bindDst(r.dst, res.x.Len())
	}
}

// vecOf returns the locked entry's plain bit vector, rejecting vertical
// entries — the op/reduce path computes over flat vectors only (vertical
// ones are /v1/arith operands).
func (res *resolved) vecOf(name string) (*elp2im.BitVector, error) {
	e := res.entries[name]
	if e.vert != nil {
		return nil, badRequestf("server: %q is a vertical vector; bitwise ops need bit vectors", name)
	}
	return e.vec, nil
}

// bindDst binds the destination vector: the existing entry's (length
// checked against the operands) or a fresh detached one.
func (res *resolved) bindDst(name string, bits int) error {
	if res.dstEntry != nil {
		if res.dstEntry.vert != nil {
			return badRequestf("server: destination %q is a vertical vector; bitwise ops need bit vectors", name)
		}
		res.dst = res.dstEntry.vec
		if res.dst.Len() != bits {
			return badRequestf("server: destination %q has %d bits, want %d", name, res.dst.Len(), bits)
		}
		return nil
	}
	res.newDst = &entry{name: name, vec: elp2im.NewBitVector(bits)}
	res.dst = res.newDst.vec
	return nil
}

// flush folds one coalesced request set into a single Accelerator.Batch
// submission, waits for it, and fans the per-request Futures back out.
// Expired, unresolvable and length-mismatched requests are settled
// without executing; the rest bind their vectors and execute with every
// involved entry's lock held, so a concurrent PUT can neither race the
// vector reads nor land invisibly between resolution and execution, and
// handler reads cannot observe a half-applied batch.
func (b *Batcher) flush(reqs []*pimRequest) {
	b.flushSeq++
	id := b.flushSeq
	start := b.obs.ctx.SpanStart()

	s := &b.scratch
	s.reset()
	for _, r := range reqs {
		if err := r.ctx.Err(); err != nil {
			r.resolve(elp2im.Stats{}, err)
			continue
		}
		res := s.nextResolved()
		if err := b.resolveRequest(r, res); err != nil {
			r.resolve(elp2im.Stats{}, err)
			continue
		}
		s.live = append(s.live, r)
		s.bound = append(s.bound, res)
		for n, e := range res.entries {
			s.entries[n] = e
		}
	}
	if len(s.live) == 0 {
		b.obs.flushSpan(start, id, 0, nil)
		return
	}

	s.lockNames = lockEntriesOrdered(s.entries, s.lockNames)
	batch := b.acc.Batch()
	for i, r := range s.live {
		if err := s.bound[i].bind(r); err != nil {
			r.resolve(elp2im.Stats{}, err)
			continue
		}
		r.flushID = id
		switch r.kind {
		case kindReduce:
			s.futures = append(s.futures, batch.SubmitReduce(r.op, s.bound[i].dst, s.bound[i].srcs...))
		default:
			s.futures = append(s.futures, batch.Submit(r.op, s.bound[i].dst, s.bound[i].x, s.bound[i].y))
		}
		s.submitted = append(s.submitted, r)
		s.subBound = append(s.subBound, s.bound[i])
	}
	var firstErr error
	if len(s.submitted) > 0 {
		_, firstErr = batch.Wait()
	}
	batch.Close()
	unlockEntriesOrdered(s.entries, s.lockNames)
	if len(s.submitted) == 0 {
		b.obs.flushSpan(start, id, 0, nil)
		return
	}

	for i, r := range s.submitted {
		st, err := s.futures[i].Wait()
		if err == nil && s.subBound[i].newDst != nil {
			b.store.adopt(r.dst, s.subBound[i].newDst)
		}
		r.resolve(st, err)
	}
	b.obs.flushes.Inc()
	b.obs.coalesced.Add(int64(len(s.submitted)))
	b.obs.occupancy.Observe(float64(len(s.submitted)))
	b.obs.flushSpan(start, id, len(s.submitted), firstErr)
}
