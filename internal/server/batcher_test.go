package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	elp2im "repro"
)

// The micro-batcher edge cases the ISSUE pins down, all run under -race
// by the tier-1 gate: zero-length coalescing window (pass-through),
// batch-size-1, a deadline expiring while queued (504, never a stuck
// future), and drain racing with submission.

// fillRandom seeds a store vector directly and returns its local mirror.
func fillRandom(s *Store, name string, rng *rand.Rand, bits int) *elp2im.BitVector {
	v := elp2im.RandomBitVector(rng, bits)
	mirror := elp2im.NewBitVector(bits)
	copy(mirror.Words(), v.Words())
	s.set(name, v)
	return mirror
}

func TestZeroWindowPassThrough(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) { c.DisableWindow = true })
	rng := rand.New(rand.NewSource(10))
	a := fillRandom(s.store, "z.a", rng, 16384)
	b := fillRandom(s.store, "z.b", rng, 16384)

	const n = 5
	for i := 0; i < n; i++ {
		st, _, err := s.Batcher().Do(context.Background(),
			&pimRequest{kind: kindOp, op: elp2im.OpXor, dst: "z.r", x: "z.a", y: "z.b"})
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if st.RowOps <= 0 {
			t.Fatalf("op %d: no row ops accounted", i)
		}
	}
	e := s.store.lookup("z.r")
	want := elp2im.NewBitVector(16384)
	for i := range want.Words() {
		want.Words()[i] = a.Words()[i] ^ b.Words()[i]
	}
	if !e.vec.Equal(want) {
		t.Fatal("pass-through op produced a wrong result")
	}
	// Serial submission through a zero window must flush per request —
	// every occupancy observation is exactly 1.
	if got, wantN := s.Batcher().obs.flushes.Value(), int64(n); got != wantN {
		t.Errorf("flushes = %d, want %d (pass-through must not coalesce serial requests)", got, wantN)
	}
	if got := s.Batcher().obs.coalesced.Value(); got != n {
		t.Errorf("coalesced = %d, want %d", got, n)
	}
}

func TestBatchSizeOne(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) {
		c.MaxBatch = 1
		c.Window = 2 * time.Millisecond
		c.RequestTimeout = time.Minute
	})
	rng := rand.New(rand.NewSource(11))
	fillRandom(s.store, "b1.a", rng, 8192)
	fillRandom(s.store, "b1.b", rng, 8192)

	const n = 12
	var wg sync.WaitGroup
	var failed atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, err := s.Batcher().Do(context.Background(),
				&pimRequest{kind: kindOp, op: elp2im.OpAnd, dst: fmt.Sprintf("b1.r%d", i), x: "b1.a", y: "b1.b"})
			if err != nil {
				failed.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if failed.Load() != 0 {
		t.Fatalf("%d ops failed", failed.Load())
	}
	// MaxBatch 1 caps every flush at one request regardless of queueing.
	if f, c := s.Batcher().obs.flushes.Value(), s.Batcher().obs.coalesced.Value(); f != c || c != n {
		t.Errorf("flushes=%d coalesced=%d, want both %d (batch size 1)", f, c, n)
	}
}

func TestDeadlineWhileQueued(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		// A window far longer than the deadline: the request expires while
		// still queued, before any flush.
		c.Window = 30 * time.Second
	})
	c := ts.Client()
	rng := rand.New(rand.NewSource(12))
	putRandom(t, c, ts.URL, "dl.a", rng, 256)
	putRandom(t, c, ts.URL, "dl.b", rng, 256)

	start := time.Now()
	code, _ := doJSON(t, c, http.MethodPost, ts.URL+"/v1/op?timeout_ms=50",
		OpRequest{Op: "and", Dst: "dl.r", X: "dl.a", Y: "dl.b"}, nil)
	elapsed := time.Since(start)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("queued-past-deadline op: status %d, want 504", code)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("504 took %v — the future was stuck on the coalescing window", elapsed)
	}
	if got := s.Batcher().obs.deadlineExpired.Value(); got == 0 {
		t.Error("server.deadline.expired did not move")
	}
	// Drain must settle the expired request without executing it and
	// without blocking on the 30 s window.
	done := make(chan struct{})
	go func() { s.Drain(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("drain blocked on an expired queued request")
	}
}

func TestDirectDoDeadline(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) { c.Window = 30 * time.Second })
	rng := rand.New(rand.NewSource(13))
	fillRandom(s.store, "dd.a", rng, 256)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, _, err := s.Batcher().Do(ctx, &pimRequest{kind: kindOp, op: elp2im.OpNot, dst: "dd.r", x: "dd.a"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Do past deadline: err %v, want DeadlineExceeded", err)
	}
}

func TestDrainDuringSubmit(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) {
		c.Window = time.Millisecond
		c.RequestTimeout = time.Minute
	})
	rng := rand.New(rand.NewSource(14))
	fillRandom(s.store, "ds.a", rng, 8192)
	fillRandom(s.store, "ds.b", rng, 8192)

	const submitters = 8
	const perSubmitter = 20
	var wg sync.WaitGroup
	var completed, refused, other atomic.Int64
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < perSubmitter; k++ {
				_, _, err := s.Batcher().Do(context.Background(),
					&pimRequest{kind: kindOp, op: elp2im.OpOr, dst: fmt.Sprintf("ds.r%d", i), x: "ds.a", y: "ds.b"})
				switch {
				case err == nil:
					completed.Add(1)
				case errors.Is(err, ErrDraining):
					refused.Add(1)
				default:
					other.Add(1)
				}
			}
		}(i)
	}
	time.Sleep(5 * time.Millisecond) // let some requests land pre-drain
	s.Drain()
	wg.Wait()

	if other.Load() != 0 {
		t.Errorf("%d requests failed with unexpected errors", other.Load())
	}
	if completed.Load() == 0 {
		t.Error("no request completed before drain")
	}
	if got := completed.Load() + refused.Load() + other.Load(); got != submitters*perSubmitter {
		t.Errorf("settled %d of %d requests — some future is stuck", got, submitters*perSubmitter)
	}
	// Zero dropped in-flight: everything admitted was flushed.
	if depth := s.Batcher().obs.queueDepth.Value(); depth != 0 {
		t.Errorf("queue depth %d after drain, want 0", depth)
	}
	if got := s.Batcher().obs.coalesced.Value(); got != completed.Load() {
		t.Errorf("coalesced %d != completed %d", got, completed.Load())
	}
}

func TestCoalescingOccupancy(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) {
		c.Window = 10 * time.Millisecond
		c.RequestTimeout = time.Minute
	})
	rng := rand.New(rand.NewSource(15))
	const clients = 16
	for i := 0; i < clients; i++ {
		fillRandom(s.store, fmt.Sprintf("co.a%d", i), rng, 8192)
		fillRandom(s.store, fmt.Sprintf("co.b%d", i), rng, 8192)
	}
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 3; k++ {
				_, _, err := s.Batcher().Do(context.Background(), &pimRequest{
					kind: kindOp, op: elp2im.OpXor,
					dst: fmt.Sprintf("co.r%d", i), x: fmt.Sprintf("co.a%d", i), y: fmt.Sprintf("co.b%d", i),
				})
				if err != nil {
					t.Errorf("client %d: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	f, co := s.Batcher().obs.flushes.Value(), s.Batcher().obs.coalesced.Value()
	if f == 0 || float64(co)/float64(f) <= 1 {
		t.Errorf("mean occupancy %.2f (coalesced=%d flushes=%d), want > 1", float64(co)/float64(max64(f, 1)), co, f)
	}
}

// max64 avoids a division by zero in the failure message.
func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// TestConcurrentPutAndOp hammers PUT over a vector that concurrent ops
// are reading: the flusher must re-read the entry's vector under the
// entry lock (never between resolve and lock), so this is race-free under
// -race and no PUT is silently lost to an op writing an orphaned vector.
func TestConcurrentPutAndOp(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) {
		c.Window = time.Millisecond
		c.RequestTimeout = time.Minute
	})
	rng := rand.New(rand.NewSource(30))
	const bits = 8192
	fillRandom(s.store, "rw.a", rng, bits)
	fillRandom(s.store, "rw.b", rng, bits)

	stop := make(chan struct{})
	var putters sync.WaitGroup
	putters.Add(1)
	go func() {
		defer putters.Done()
		prng := rand.New(rand.NewSource(31))
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.store.set("rw.a", elp2im.RandomBitVector(prng, bits))
		}
	}()

	const workers, ops = 4, 15
	var wg sync.WaitGroup
	var failed atomic.Int64
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < ops; k++ {
				_, _, err := s.Batcher().Do(context.Background(),
					&pimRequest{kind: kindOp, op: elp2im.OpXor, dst: fmt.Sprintf("rw.r%d", i), x: "rw.a", y: "rw.b"})
				if err != nil {
					failed.Add(1)
				}
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	putters.Wait()
	if failed.Load() != 0 {
		t.Fatalf("%d ops failed under concurrent PUT", failed.Load())
	}
}

// TestFailedOpLeavesNoDst pins the no-spurious-destination contract: an
// operation that fails (here a length mismatch, answered as a tagged 400)
// must not leave an all-zero destination vector visible in the store.
func TestFailedOpLeavesNoDst(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) { c.DisableWindow = true })
	rng := rand.New(rand.NewSource(32))
	fillRandom(s.store, "nf.a", rng, 256)
	fillRandom(s.store, "nf.b", rng, 512)

	_, _, err := s.Batcher().Do(context.Background(),
		&pimRequest{kind: kindOp, op: elp2im.OpAnd, dst: "nf.r", x: "nf.a", y: "nf.b"})
	if !errors.Is(err, errBadRequest) {
		t.Fatalf("mismatched op: err %v, want a tagged bad request", err)
	}
	if s.store.lookup("nf.r") != nil {
		t.Fatal("failed op left a spurious destination vector in the store")
	}

	// Same contract in degraded (synchronous) mode.
	sd, _ := newTestServer(t, func(c *Config) { c.Degraded = true })
	fillRandom(sd.store, "nf.a", rng, 256)
	fillRandom(sd.store, "nf.b", rng, 512)
	_, _, err = sd.Batcher().Do(context.Background(),
		&pimRequest{kind: kindOp, op: elp2im.OpAnd, dst: "nf.r", x: "nf.a", y: "nf.b"})
	if !errors.Is(err, errBadRequest) {
		t.Fatalf("degraded mismatched op: err %v, want a tagged bad request", err)
	}
	if sd.store.lookup("nf.r") != nil {
		t.Fatal("degraded failed op left a spurious destination vector")
	}
}
