package server

import (
	"sort"
	"sync"

	elp2im "repro"
)

// Store is the server's named bit-vector table. The map itself is guarded
// by mu; each entry additionally carries its own RWMutex so the contents
// of a vector can be pinned for the duration of a micro-batch flush (or a
// synchronous Eval) while unrelated vectors stay fully concurrent.
//
// The store is also where the serving layer's shard placement lives:
// every vector name maps deterministically onto one of the server's
// shards (shardOf, an FNV-1a hash of the name), and an operation executes
// on its destination's home shard. Placement is a pure function of the
// name and the shard count — no placement table to keep consistent, and
// any two servers with the same shard count agree on it.
//
// Lock ordering: mu is never held while acquiring an entry lock, and
// multi-entry lock sets are always acquired in ascending name order
// (see lockEntries), so handler access, flushes and Eval cannot deadlock.
type Store struct {
	shards int
	mu     sync.RWMutex
	m      map[string]*entry
}

// entry is one stored vector plus its content lock and home shard. The
// vec pointer is only replaced (PUT over an existing name) or read while
// holding mu of the entry, so a flush that resolved and locked an entry
// owns the vector it saw until it unlocks.
//
// An entry holds either a plain bit vector (vec) or a vertical
// (bit-sliced integer) vector (vert) — exactly one of the two is non-nil,
// and a PUT of the other kind over the same name swaps the entry's kind
// under its lock. Both pointers follow the same locking rule as vec
// always has: replaced or read only under the entry's mu.
type entry struct {
	mu    sync.RWMutex
	name  string
	shard int
	vec   *elp2im.BitVector
	vert  *elp2im.Vertical
}

// NewStore returns an empty store placing vectors across the given number
// of shards (1 for a single-module server).
func NewStore(shards int) *Store {
	if shards < 1 {
		shards = 1
	}
	return &Store{shards: shards, m: make(map[string]*entry)}
}

// fnv64a constants (hash/fnv's, inlined so the per-request placement hash
// allocates neither the hash.Hash64 nor the []byte(name) conversion —
// shardOf sits on the wire path's zero-alloc dispatch loop).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnv64aString is FNV-1a over a string, bit-identical to hash/fnv over
// the same bytes (pinned by TestShardOfMatchesFNV).
func fnv64aString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// shardOf returns the home shard of the named vector: an FNV-1a hash of
// the name modulo the shard count. Deterministic, uniform for realistic
// name sets, and independent of insertion order.
func (s *Store) shardOf(name string) int {
	if s.shards == 1 {
		return 0
	}
	return int(fnv64aString(name) % uint64(s.shards))
}

// lookup returns the named entry, or nil when absent.
func (s *Store) lookup(name string) *entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m[name]
}

// getOrCreate returns the named entry, creating it with an all-zero
// vector of the given length when absent. An existing entry is returned
// as-is — length validation is the caller's (the facade rejects length
// mismatches at submission).
func (s *Store) getOrCreate(name string, bits int) *entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[name]; ok {
		return e
	}
	e := &entry{name: name, shard: s.shardOf(name), vec: elp2im.NewBitVector(bits)}
	s.m[name] = e
	return e
}

// set stores vec under name, replacing any previous contents. The entry
// lock is taken without holding the map lock (lock-ordering rule), so an
// in-flight flush that pinned the old vector finishes against it before
// the replacement lands.
func (s *Store) set(name string, vec *elp2im.BitVector) {
	e := s.getOrCreate(name, vec.Len())
	e.mu.Lock()
	e.vec, e.vert = vec, nil
	e.mu.Unlock()
}

// setVert stores a vertical vector under name, replacing any previous
// contents (of either kind) under the entry lock, exactly like set.
func (s *Store) setVert(name string, v *elp2im.Vertical) {
	s.mu.Lock()
	e, ok := s.m[name]
	if !ok {
		s.m[name] = &entry{name: name, shard: s.shardOf(name), vert: v}
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	e.mu.Lock()
	e.vec, e.vert = nil, v
	e.mu.Unlock()
}

// adopt publishes a detached entry (a destination created by an
// operation that succeeded) under its name. When a concurrent PUT won the
// name in the meantime, the existing entry stays and only its vector is
// replaced — under the entry lock, per the locking invariant — so readers
// never hold a stale *entry.
func (s *Store) adopt(name string, e *entry) {
	s.mu.Lock()
	cur, ok := s.m[name]
	if !ok {
		e.shard = s.shardOf(name)
		s.m[name] = e
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	cur.mu.Lock()
	cur.vec, cur.vert = e.vec, nil
	cur.mu.Unlock()
}

// hasPrefix reports whether any stored name starts with prefix — the
// query path's namespace-existence probe, distinguishing an unknown
// namespace from an unknown index inside a live one.
func (s *Store) hasPrefix(prefix string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for name := range s.m {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			return true
		}
	}
	return false
}

// remove deletes the named vector and reports whether it existed. An
// in-flight operation that already resolved the entry keeps the orphaned
// vector alive until it completes; its result is simply discarded.
func (s *Store) remove(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[name]; !ok {
		return false
	}
	delete(s.m, name)
	return true
}

// list returns every stored vector's name and length, sorted by name.
// Vertical entries additionally report their element count and width;
// their Bits is the total stored payload (elements × width).
func (s *Store) list() []VectorInfo {
	s.mu.RLock()
	infos := make([]VectorInfo, 0, len(s.m))
	for _, e := range s.m {
		e.mu.RLock()
		info := VectorInfo{Name: e.name, Shard: e.shard}
		if e.vert != nil {
			info.Bits = e.vert.Len() * e.vert.Width()
			info.Elems = e.vert.Len()
			info.ElemWidth = e.vert.Width()
		} else {
			info.Bits = e.vec.Len()
		}
		e.mu.RUnlock()
		infos = append(infos, info)
	}
	s.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// size returns the number of stored vectors.
func (s *Store) size() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// sizeByShard returns the stored-vector count per home shard.
func (s *Store) sizeByShard() []int {
	counts := make([]int, s.shards)
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, e := range s.m {
		counts[e.shard]++
	}
	return counts
}

// wordBufPool recycles GET-snapshot word buffers. The GET paths (JSON
// and wire) pin an entry only long enough to memcpy its words into one
// of these buffers, then popcount and encode outside the lock — a flush
// mutates stored vectors in place under the entry write lock, so
// encoding directly from the live words outside the lock would race,
// while encoding under the lock would stall writers for the whole
// base64/frame build.
var wordBufPool = sync.Pool{New: func() any {
	s := make([]uint64, 0, 1024)
	return &s
}}

// getWordBuf fetches an empty pooled word buffer.
func getWordBuf() *[]uint64 { return wordBufPool.Get().(*[]uint64) }

// putWordBuf recycles a snapshot buffer.
func putWordBuf(bp *[]uint64) {
	*bp = (*bp)[:0]
	wordBufPool.Put(bp)
}

// lockEntries write-locks a set of entries in ascending name order
// (deduplicated) and returns the unlock function. Consistent ordering
// across every multi-entry locker is what makes concurrent flushes and
// Eval calls deadlock-free.
func lockEntries(entries map[string]*entry) (unlock func()) {
	names := lockEntriesOrdered(entries, nil)
	return func() { unlockEntriesOrdered(entries, names) }
}

// lockEntriesOrdered is the allocation-aware core of lockEntries: it
// write-locks entries in ascending name order, filling (and returning)
// the caller's name scratch. Pair with unlockEntriesOrdered on the same
// names. The flush hot path uses it with a reused scratch slice.
func lockEntriesOrdered(entries map[string]*entry, names []string) []string {
	names = names[:0]
	for n := range entries {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		entries[n].mu.Lock()
	}
	return names
}

// unlockEntriesOrdered releases locks taken by lockEntriesOrdered, in
// reverse order.
func unlockEntriesOrdered(entries map[string]*entry, names []string) {
	for i := len(names) - 1; i >= 0; i-- {
		entries[names[i]].mu.Unlock()
	}
}

// rlockEntries read-locks a set of entries in the same ascending-name
// order as lockEntries. Read-only consumers (Eval never mutates a stored
// vector in place — its result lands via set afterwards) use this so they
// only exclude writers, not each other or concurrent GETs.
func rlockEntries(entries map[string]*entry) (unlock func()) {
	names := make([]string, 0, len(entries))
	for n := range entries {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		entries[n].mu.RLock()
	}
	return func() {
		for i := len(names) - 1; i >= 0; i-- {
			entries[names[i]].mu.RUnlock()
		}
	}
}
