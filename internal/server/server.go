// Package server is the networked PIM-as-a-service layer over the elp2im
// facade: a named bit-vector store and an HTTP/JSON API (vector CRUD,
// single ops, reductions, expression evaluation, stats) whose write path
// runs through a dynamic micro-batcher — concurrent requests arriving
// within a coalescing window fold into one Accelerator.Batch submission,
// so independent clients keep the modeled banks saturated the way the
// paper's multi-tenant framing intends.
//
// Around the batcher sits the robustness envelope a real service needs:
// bounded-queue admission control (503 + Retry-After under saturation),
// per-request deadlines propagated via context, panic-isolated handlers,
// graceful drain (stop admitting, flush everything queued, then stop),
// and a degraded mode that falls back to synchronous facade calls when
// the pipeline is disabled. Every serving-layer metric registers in the
// owning accelerator's observability context, so the existing Snapshot /
// ServeDebug surface shows the server.* series next to acc.* and
// pipeline.* (see observe.go for the name scheme).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"time"

	elp2im "repro"
)

// Config parameterizes a Server. The zero value of every optional field
// selects the documented default.
type Config struct {
	// Accelerator is the facade the server fronts. Exactly one of
	// Accelerator and Shard is required.
	Accelerator *elp2im.Accelerator
	// Shard, when set instead of Accelerator, fronts a sharded
	// multi-accelerator deployment: every vector name is placed
	// deterministically on a home shard (Store.shardOf), each shard runs
	// its own independent micro-batcher (window, admission queue, metric
	// series), and an operation executes on its destination's home shard.
	// One hot shard saturating its queue answers 503 + Retry-After without
	// stalling the others. Window/MaxBatch/MaxQueue apply per shard.
	Shard *elp2im.Shard
	// Window is the micro-batcher's coalescing window: requests arriving
	// within it fold into one batch. Zero means pass-through (flush
	// immediately with whatever has queued); negative is normalized to
	// zero. Default 200 µs when left zero — pass DisableWindow to force
	// true zero.
	Window time.Duration
	// DisableWindow forces a zero coalescing window (pass-through) even
	// though Window is zero-valued.
	DisableWindow bool
	// MaxBatch bounds the number of requests folded into one flush.
	// Default 64.
	MaxBatch int
	// MaxQueue bounds the admission queue; beyond it requests fail fast
	// with 503 + Retry-After. Default 1024.
	MaxQueue int
	// Degraded disables the batching pipeline: operations execute
	// synchronously through the facade.
	Degraded bool
	// RequestTimeout is the per-request deadline applied when the client
	// does not pass ?timeout_ms. Default 5 s; negative disables the
	// default deadline.
	RequestTimeout time.Duration
	// MaxBodyBytes bounds request bodies. Default 16 MiB (a 64-Mbit
	// vector payload is ~11 MiB of base64).
	MaxBodyBytes int64
	// EvalCacheSize bounds the compiled-program LRU shared by /v1/eval
	// and /v1/arith (entries, not bytes; see evalcache.go). Default 256.
	EvalCacheSize int
	// WireDisableCoalescing reverts the elpwire listener to one write
	// syscall per response instead of writev-batched flushes — a
	// benchmarking escape hatch surfaced as elpd -wire-nocoalesce.
	WireDisableCoalescing bool
}

// withDefaults normalizes cfg.
func (c Config) withDefaults() Config {
	if c.Window == 0 && !c.DisableWindow {
		c.Window = 200 * time.Microsecond
	}
	if c.Window < 0 {
		c.Window = 0
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 1024
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.EvalCacheSize <= 0 {
		c.EvalCacheSize = defaultEvalCacheSize
	}
	return c
}

// Server is the HTTP serving layer: store + per-shard batchers + handler
// mux. Create one with New, mount Handler, and call Drain on shutdown.
// A single-module server (Config.Accelerator) runs one batcher; a sharded
// one (Config.Shard) runs one per shard, and requests route to their
// destination vector's home shard.
type Server struct {
	cfg      Config
	acc      *elp2im.Accelerator // shard 0's accelerator (identity, Eval on single)
	shard    *elp2im.Shard       // nil for a single-module server
	accs     []*elp2im.Accelerator
	store    *Store
	batchers []*Batcher
	obs      *serverMetrics
	cache    *evalCache
	mux      *http.ServeMux

	// Wire-listener connection tracking (see wire.go): live connections
	// accepted by ServeWire, so CloseWireConns can end them after Drain.
	wireMu    sync.Mutex
	wireConns map[net.Conn]struct{}
	wireWG    sync.WaitGroup
}

// New returns a server over cfg.Accelerator or cfg.Shard.
func New(cfg Config) (*Server, error) {
	if (cfg.Accelerator == nil) == (cfg.Shard == nil) {
		return nil, errors.New("server: exactly one of Config.Accelerator and Config.Shard is required")
	}
	cfg = cfg.withDefaults()
	var accs []*elp2im.Accelerator
	if cfg.Shard != nil {
		accs = make([]*elp2im.Accelerator, cfg.Shard.Shards())
		for i := range accs {
			accs[i] = cfg.Shard.ShardAccelerator(i)
		}
	} else {
		accs = []*elp2im.Accelerator{cfg.Accelerator}
	}
	// Serving-layer series register in the shard router's context when
	// sharded (its Snapshot merges every shard accelerator's registry), in
	// the accelerator's own otherwise.
	var obs *serverMetrics
	if cfg.Shard != nil {
		obs = newServerMetrics(cfg.Shard.Observability(), len(accs))
	} else {
		obs = newServerMetrics(cfg.Accelerator.Observability(), 1)
	}
	s := &Server{
		cfg:       cfg,
		acc:       accs[0],
		shard:     cfg.Shard,
		accs:      accs,
		store:     NewStore(len(accs)),
		obs:       obs,
		cache:     newEvalCache(cfg.EvalCacheSize, obs.evalCacheHits, obs.evalCacheMisses),
		wireConns: make(map[net.Conn]struct{}),
	}
	s.batchers = make([]*Batcher, len(accs))
	for i, acc := range accs {
		s.batchers[i] = newBatcher(acc, s.store, cfg.Window, cfg.MaxBatch, cfg.MaxQueue, cfg.Degraded, obs.shards[i])
	}
	s.mux = http.NewServeMux()
	// Vector routes take rest-of-path names ({name...}) so namespaced
	// bitmap indices ("<namespace>/<index>") are addressable over HTTP;
	// the exact-match list route still wins over the wildcard.
	s.mux.HandleFunc("PUT /v1/vectors/{name...}", s.wrap("put_vector", s.handlePutVector))
	s.mux.HandleFunc("GET /v1/vectors/{name...}", s.wrap("get_vector", s.handleGetVector))
	s.mux.HandleFunc("DELETE /v1/vectors/{name...}", s.wrap("delete_vector", s.handleDeleteVector))
	s.mux.HandleFunc("GET /v1/vectors", s.wrap("list_vectors", s.handleListVectors))
	s.mux.HandleFunc("POST /v1/op", s.wrap("op", s.handleOp))
	s.mux.HandleFunc("POST /v1/reduce", s.wrap("reduce", s.handleReduce))
	s.mux.HandleFunc("POST /v1/eval", s.wrap("eval", s.handleEval))
	s.mux.HandleFunc("POST /v1/arith", s.wrap("arith", s.handleArith))
	s.mux.HandleFunc("POST /v1/query", s.wrap("query", s.handleQuery))
	s.mux.HandleFunc("GET /v1/stats", s.wrap("stats", s.handleStats))
	s.mux.HandleFunc("GET /healthz", s.wrap("health", s.handleHealth))
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Store exposes the vector store (tests and embedding binaries).
func (s *Server) Store() *Store { return s.store }

// Batcher exposes shard 0's micro-batcher (tests and embedding binaries;
// the only batcher on a single-module server).
func (s *Server) Batcher() *Batcher { return s.batchers[0] }

// Shards returns the number of shards the server routes across (1 for a
// single-module server).
func (s *Server) Shards() int { return len(s.accs) }

// shardFor returns the home shard of the named vector — the shard whose
// batcher admits, and whose accelerator executes, operations writing it.
func (s *Server) shardFor(name string) int { return s.store.shardOf(name) }

// batcherFor returns the named destination's home-shard batcher.
func (s *Server) batcherFor(name string) *Batcher { return s.batchers[s.shardFor(name)] }

// Drain gracefully stops the serving layer: new operations are refused
// with 503 + Retry-After, everything already admitted flushes, and Drain
// returns once every shard's batcher is idle. Shards drain concurrently —
// a backed-up shard does not delay the others' flushes, only the final
// join. The HTTP listener is the caller's to stop (elpd shuts the
// http.Server down around this call).
func (s *Server) Drain() {
	var wg sync.WaitGroup
	for _, b := range s.batchers {
		wg.Add(1)
		go func(b *Batcher) {
			defer wg.Done()
			b.Drain()
		}(b)
	}
	wg.Wait()
}

// Totals returns the accumulated modeled cost of every operation the
// server executed: the single accelerator's session totals, or — sharded —
// the merged totals across every shard accelerator (and the router's
// central accounting, were any operation routed through it).
func (s *Server) Totals() elp2im.Stats {
	if s.shard != nil {
		return s.shard.AggregateTotals()
	}
	return s.acc.Totals()
}

// Stats assembles the /v1/stats payload. The flat Server section
// aggregates across shards (queue depths and rejections sum, occupancy
// averages over every flush); PerShard breaks the same counters out per
// home shard, alongside each shard's modeled busy time — the number a
// load generator divides by to see the modeled hardware's aggregate
// throughput scale with the shard count.
func (s *Server) Stats() StatsPayload {
	var agg ServerStats
	perShard := make([]ShardStats, len(s.batchers))
	vecs := s.store.sizeByShard()
	for i, b := range s.batchers {
		bs := b.obs
		flushes := bs.flushes.Value()
		coalesced := bs.coalesced.Value()
		ss := ShardStats{
			Shard:             i,
			QueueDepth:        bs.queueDepth.Value(),
			Rejected:          bs.rejected.Value(),
			DeadlineExpired:   bs.deadlineExpired.Value(),
			BatchesFlushed:    flushes,
			RequestsCoalesced: coalesced,
			Vectors:           vecs[i],
			Draining:          b.Draining(),
			ModeledBusyNS:     s.accs[i].Totals().LatencyNS,
		}
		perShard[i] = ss
		agg.QueueDepth += ss.QueueDepth
		agg.QueueMax += bs.queueMax.Value()
		agg.Rejected += ss.Rejected
		agg.DeadlineExpired += ss.DeadlineExpired
		agg.BatchesFlushed += flushes
		agg.RequestsCoalesced += coalesced
		agg.Draining = agg.Draining || ss.Draining
	}
	if agg.BatchesFlushed > 0 {
		agg.MeanBatchOccupancy = float64(agg.RequestsCoalesced) / float64(agg.BatchesFlushed)
	}
	for _, acc := range s.accs {
		hits, falls := acc.FusionCounters()
		agg.FusionHits += hits
		agg.FusionFallbacks += falls
	}
	agg.Panics = s.obs.panics.Value()
	agg.WireFlushes = s.obs.wire.flushes.Value()
	if n := s.obs.wire.framesPerFlush.Count(); n > 0 {
		agg.WireFramesPerFlush = s.obs.wire.framesPerFlush.Sum() / float64(n)
	}
	agg.Vectors = s.store.size()
	agg.Degraded = s.batchers[0].Degraded()
	agg.Shards = len(s.batchers)
	if len(s.batchers) > 1 {
		agg.PerShard = perShard
	}
	return StatsPayload{
		Design:       s.acc.Design(),
		ReservedRows: s.acc.ReservedRows(),
		Totals:       statsJSON(s.Totals()),
		Server:       agg,
	}
}

// handlerFunc is the internal handler shape: return a status and an
// error; wrap renders both.
type handlerFunc func(w http.ResponseWriter, r *http.Request) error

// committedWriter wraps the ResponseWriter to record whether the handler
// has already committed a response (status line sent or body bytes
// written), so the error paths in wrap never append a second status/body
// to a partially written reply.
type committedWriter struct {
	http.ResponseWriter
	committed bool
}

// WriteHeader marks the response committed before sending the status.
func (w *committedWriter) WriteHeader(code int) {
	w.committed = true
	w.ResponseWriter.WriteHeader(code)
}

// Write marks the response committed before writing body bytes.
func (w *committedWriter) Write(p []byte) (int, error) {
	w.committed = true
	return w.ResponseWriter.Write(p)
}

// wrap is the route middleware: request/error/latency series, span
// emission, body limiting, and panic isolation (a panicking handler
// answers 500 and increments server.panics instead of killing the
// connection's goroutine silently — unless it already committed a
// response, in which case there is nothing coherent left to write).
func (s *Server) wrap(route string, h handlerFunc) http.HandlerFunc {
	rs := s.obs.route(route)
	return func(w http.ResponseWriter, r *http.Request) {
		rs.requests.Inc()
		start := time.Now()
		spanStart := s.obs.ctx.SpanStart()
		cw := &committedWriter{ResponseWriter: w}
		var flushID int64
		r = r.WithContext(context.WithValue(r.Context(), flushIDKey{}, &flushID))
		var handlerErr error
		defer func() {
			if rec := recover(); rec != nil {
				s.obs.panics.Inc()
				err := fmt.Errorf("server: internal error: %v", rec)
				debug.PrintStack()
				s.writeError(cw, rs, http.StatusInternalServerError, err)
				handlerErr = err
			}
			rs.latency.Observe(float64(time.Since(start).Nanoseconds()))
			s.obs.requestSpan(spanStart, route, r.Method, flushID, handlerErr)
		}()
		r.Body = http.MaxBytesReader(cw, r.Body, s.cfg.MaxBodyBytes)
		handlerErr = h(cw, r)
		if handlerErr != nil {
			s.writeError(cw, rs, statusFor(handlerErr), handlerErr)
		}
	}
}

// flushIDKey carries the flush sequence number a request rode from the
// handler body back to the span emitter, via a pointer stashed in the
// request context by wrap.
type flushIDKey struct{}

// statusFor maps serving-layer errors onto HTTP statuses. 400 is
// reserved for tagged request-validation failures (errBadRequest); an
// unrecognized error is a server fault and reports 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrSaturated), errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	case errors.Is(err, ErrUnknownVector):
		return http.StatusNotFound
	case errors.Is(err, errBadRequest), errors.Is(err, elp2im.ErrBadExpr),
		errors.Is(err, elp2im.ErrBadArith):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// writeError records the error and renders it as the JSON error body for
// the given status, attaching Retry-After on 503s so well-behaved clients
// back off. If the handler already committed a response, only the error
// counter moves — a late status line or JSON body would corrupt whatever
// the client is reading.
func (s *Server) writeError(w *committedWriter, rs *routeSeries, status int, err error) {
	rs.errors.Inc()
	if w.committed {
		return
	}
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorResponse{Error: err.Error()})
}

// writeJSON renders a 200 JSON response.
func writeJSON(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(v)
}

// requestContext applies the per-request deadline: ?timeout_ms when the
// client passed one, the configured default otherwise.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	ctx := r.Context()
	if raw := r.URL.Query().Get("timeout_ms"); raw != "" {
		ms, err := strconv.Atoi(raw)
		if err != nil || ms <= 0 {
			return nil, nil, badRequestf("server: bad timeout_ms %q", raw)
		}
		ctx, cancel := context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
		return ctx, cancel, nil
	}
	if s.cfg.RequestTimeout > 0 {
		ctx, cancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)
		return ctx, cancel, nil
	}
	return ctx, func() {}, nil
}

// decodeBody parses the JSON request body into v.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequestf("server: bad request body: %v", err)
	}
	return nil
}

// handlePutVector stores a vector under the URL name. A plain bit
// vector is all-zero of the given length when Data is empty, decoded
// contents otherwise; a nonzero ElemWidth instead stores a vertical
// (bit-sliced) vector transposed from the Elems payload.
func (s *Server) handlePutVector(w http.ResponseWriter, r *http.Request) error {
	name := r.PathValue("name")
	if name == "" {
		return badRequestf("server: vector name must not be empty")
	}
	var body VectorPayload
	if err := decodeBody(r, &body); err != nil {
		return err
	}
	if body.ElemWidth != 0 || body.Elems != "" {
		if body.Bits != 0 || body.Data != "" {
			return badRequestf("server: a vertical put takes elem_width and elems only")
		}
		elems, err := DecodeElems(body.Elems)
		if err != nil {
			return err
		}
		v, err := buildVertical(elems, body.ElemWidth)
		if err != nil {
			return err
		}
		s.store.setVert(name, v)
		return writeJSON(w, VectorInfo{
			Name: name, Bits: len(elems) * body.ElemWidth,
			Elems: len(elems), ElemWidth: body.ElemWidth,
		})
	}
	var vec *elp2im.BitVector
	if body.Data == "" {
		if body.Bits <= 0 {
			return badRequestf("server: bits must be positive, got %d", body.Bits)
		}
		vec = elp2im.NewBitVector(body.Bits)
	} else {
		v, err := DecodeBits(body.Data, body.Bits)
		if err != nil {
			return err
		}
		vec = v
	}
	s.store.set(name, vec)
	return writeJSON(w, VectorInfo{Name: name, Bits: vec.Len()})
}

// handleGetVector returns a vector's contents. Plain vectors answer with
// the bit payload, vertical ones with their element values and width.
// Either way the entry is pinned only for a words-snapshot (or the
// transpose back to elements); the base64 encode and the JSON write
// happen outside the lock (see wordBufPool).
func (s *Server) handleGetVector(w http.ResponseWriter, r *http.Request) error {
	name := r.PathValue("name")
	e := s.store.lookup(name)
	if e == nil {
		return fmt.Errorf("%w: %q", ErrUnknownVector, name)
	}
	e.mu.RLock()
	if v := e.vert; v != nil {
		elems := v.Elements()
		width := v.Width()
		e.mu.RUnlock()
		return writeJSON(w, VectorPayload{
			Name: name, Bits: len(elems) * width,
			ElemWidth: width, Elems: EncodeElems(elems),
		})
	}
	bits := e.vec.Len()
	bp := getWordBuf()
	*bp = append(*bp, e.vec.Words()...)
	e.mu.RUnlock()
	data := encodeWordBits(*bp, bits)
	pop := popcountWords(*bp)
	putWordBuf(bp)
	return writeJSON(w, VectorPayload{Name: name, Bits: bits, Data: data, Popcount: &pop})
}

// handleDeleteVector removes a vector.
func (s *Server) handleDeleteVector(w http.ResponseWriter, r *http.Request) error {
	name := r.PathValue("name")
	if !s.store.remove(name) {
		return fmt.Errorf("%w: %q", ErrUnknownVector, name)
	}
	w.WriteHeader(http.StatusNoContent)
	return nil
}

// handleListVectors lists every stored vector.
func (s *Server) handleListVectors(w http.ResponseWriter, r *http.Request) error {
	return writeJSON(w, ListResponse{Vectors: s.store.list()})
}

// runBatched admits req to its destination's home-shard micro-batcher and
// reports the flush id it rode back to wrap's span emitter. Do owns req
// from the moment it is called (it recycles it into the request pool), so
// nothing here may touch req afterwards.
func (s *Server) runBatched(w http.ResponseWriter, r *http.Request, req *pimRequest) error {
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		putPimRequest(req)
		return err
	}
	defer cancel()
	st, id, err := s.batcherFor(req.dst).Do(ctx, req)
	if p, ok := r.Context().Value(flushIDKey{}).(*int64); ok {
		*p = id
	}
	if err != nil {
		return err
	}
	return writeJSON(w, OpResponse{Stats: statsJSON(st)})
}

// handleOp executes dst = op(x, y) through the micro-batcher.
func (s *Server) handleOp(w http.ResponseWriter, r *http.Request) error {
	var body OpRequest
	if err := decodeBody(r, &body); err != nil {
		return err
	}
	op, err := parseOp(body.Op)
	if err != nil {
		return err
	}
	if body.Dst == "" || body.X == "" {
		return badRequestf("server: op needs dst and x")
	}
	if !op.Unary() && body.Y == "" {
		return badRequestf("server: %s needs operand y", body.Op)
	}
	pr := getPimRequest()
	pr.kind, pr.op, pr.dst, pr.x, pr.y = kindOp, op, body.Dst, body.X, body.Y
	return s.runBatched(w, r, pr)
}

// handleReduce executes dst = srcs[0] op srcs[1] op ... through the
// micro-batcher.
func (s *Server) handleReduce(w http.ResponseWriter, r *http.Request) error {
	var body ReduceRequest
	if err := decodeBody(r, &body); err != nil {
		return err
	}
	op, err := parseOp(body.Op)
	if err != nil {
		return err
	}
	if body.Dst == "" {
		return badRequestf("server: reduce needs dst")
	}
	if len(body.Srcs) < 2 {
		return badRequestf("server: reduce needs at least two srcs")
	}
	pr := getPimRequest()
	pr.kind, pr.op, pr.dst = kindReduce, op, body.Dst
	pr.srcs = append(pr.srcs[:0], body.Srcs...)
	return s.runBatched(w, r, pr)
}

// handleEval evaluates a boolean expression over stored vectors and
// stores the result under dst. Eval has no batched form on the facade,
// so it runs synchronously — gated on the drain state and coordinated
// with in-flight flushes through the same entry locks. Eval only reads
// its operands (the result lands in a fresh vector, stored afterwards),
// so the sources are read-locked: concurrent GETs and other Evals sharing
// an operand proceed, only writers are excluded.
func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) error {
	var body EvalRequest
	if err := decodeBody(r, &body); err != nil {
		return err
	}
	if body.Expr == "" || body.Dst == "" {
		return badRequestf("server: eval needs expr and dst")
	}
	st, bits, err := s.evalCore(body.Expr, body.Dst)
	if err != nil {
		return err
	}
	return writeJSON(w, OpResponse{Stats: statsJSON(st), Bits: bits})
}

// evalCore is the protocol-independent eval body shared by the HTTP and
// wire paths: compile the expression once to its fused plan, gate on the
// destination shard's drain state, read-lock the operands, execute the
// compiled plan on the shard's accelerator, and store the result under
// dst. Compilation failures (elp2im.ErrBadExpr) are client errors; both
// transports report them as 400.
func (s *Server) evalCore(exprSrc, dst string) (elp2im.Stats, int, error) {
	ce, err := s.cachedExpr(exprSrc)
	if err != nil {
		return elp2im.Stats{}, 0, err
	}
	// Eval routes like every write: the destination's home shard admits it
	// and executes it on that shard's accelerator.
	batcher := s.batcherFor(dst)
	if err := batcher.acquireSync(); err != nil {
		return elp2im.Stats{}, 0, err
	}
	defer batcher.releaseSync()

	names := ce.Vars()
	entries := make(map[string]*entry, len(names))
	vars := make(map[string]*elp2im.BitVector, len(names))
	for _, name := range names {
		e := s.store.lookup(name)
		if e == nil {
			return elp2im.Stats{}, 0, fmt.Errorf("%w: %q", ErrUnknownVector, name)
		}
		entries[name] = e
	}
	unlock := rlockEntries(entries)
	var bits int
	for name, e := range entries {
		if e.vert != nil {
			unlock()
			return elp2im.Stats{}, 0, badRequestf("server: %q is a vertical vector; eval operands are bit vectors", name)
		}
		vars[name] = e.vec
		if bits == 0 {
			bits = e.vec.Len()
		} else if e.vec.Len() != bits {
			unlock()
			return elp2im.Stats{}, 0, badRequestf("server: expression vectors differ in length (%q has %d bits, want %d)",
				name, e.vec.Len(), bits)
		}
	}
	out, st, err := batcher.acc.EvalExpr(ce, vars)
	unlock()
	if err != nil {
		return elp2im.Stats{}, 0, err
	}
	s.store.set(dst, out)
	return st, out.Len(), nil
}

// handleArith executes a vertical arithmetic operation over stored
// vertical vectors and stores the result under dst.
func (s *Server) handleArith(w http.ResponseWriter, r *http.Request) error {
	var body ArithRequest
	if err := decodeBody(r, &body); err != nil {
		return err
	}
	op, err := elp2im.ParseArithOp(body.Op)
	if err != nil {
		return err
	}
	st, out, err := s.arithCore(op, body.Dst, body.X, body.Y, body.Mask)
	if err != nil {
		return err
	}
	return writeJSON(w, OpResponse{Stats: statsJSON(st), Elems: out.Len(), ElemWidth: out.Width()})
}

// arithCore is the protocol-independent arith body shared by the HTTP
// and wire paths, mirroring evalCore's shape: gate on the destination
// shard's drain state, read-lock the operands, fetch the compiled
// µProgram for (op, x's width) through the shared program cache, execute
// it on the destination's home-shard accelerator, and store the result
// vertical under dst. Operand-shape mistakes surface as
// elp2im.ErrBadArith, which both transports report as 400.
func (s *Server) arithCore(op elp2im.ArithOp, dst, x, y, mask string) (elp2im.Stats, *elp2im.Vertical, error) {
	if dst == "" || x == "" {
		return elp2im.Stats{}, nil, badRequestf("server: arith needs dst and x")
	}
	batcher := s.batcherFor(dst)
	if err := batcher.acquireSync(); err != nil {
		return elp2im.Stats{}, nil, err
	}
	defer batcher.releaseSync()

	entries := make(map[string]*entry, 3)
	for _, name := range []string{x, y, mask} {
		if name == "" {
			continue
		}
		e := s.store.lookup(name)
		if e == nil {
			return elp2im.Stats{}, nil, fmt.Errorf("%w: %q", ErrUnknownVector, name)
		}
		entries[name] = e
	}
	unlock := rlockEntries(entries)
	vertOf := func(name string) (*elp2im.Vertical, error) {
		if v := entries[name].vert; v != nil {
			return v, nil
		}
		return nil, badRequestf("server: %q is not a vertical vector (arith operands are stored with elem_width)", name)
	}
	xv, err := vertOf(x)
	if err != nil {
		unlock()
		return elp2im.Stats{}, nil, err
	}
	var yv *elp2im.Vertical
	if y != "" {
		if yv, err = vertOf(y); err != nil {
			unlock()
			return elp2im.Stats{}, nil, err
		}
	}
	var mv *elp2im.BitVector
	if mask != "" {
		me := entries[mask]
		if me.vert != nil {
			unlock()
			return elp2im.Stats{}, nil, badRequestf("server: mask %q must be a plain bit vector", mask)
		}
		mv = me.vec
	}
	ca, err := s.cachedArith(op, xv.Width())
	if err != nil {
		unlock()
		return elp2im.Stats{}, nil, err
	}
	out, st, err := batcher.acc.ArithProg(ca, xv, yv, mv)
	unlock()
	if err != nil {
		return elp2im.Stats{}, nil, err
	}
	s.store.setVert(dst, out)
	return st, out, nil
}

// handleStats serves the stable stats payload.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) error {
	return writeJSON(w, s.Stats())
}

// healthPayload is the /healthz body.
type healthPayload struct {
	// Status is "ok" or "draining".
	Status string `json:"status"`
}

// handleHealth reports liveness and the drain state (load balancers use
// "draining" to take the instance out of rotation). Any draining shard
// marks the whole instance draining — drain is an instance-wide event.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) error {
	st := "ok"
	for _, b := range s.batchers {
		if b.Draining() {
			st = "draining"
			break
		}
	}
	return writeJSON(w, healthPayload{Status: st})
}

// sortedRouteNames returns the route metric keys, sorted (documentation
// and test helper).
func sortedRouteNames() []string {
	names := append([]string(nil), routeNames...)
	sort.Strings(names)
	return names
}
