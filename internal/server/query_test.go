package server

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	elp2im "repro"
	"repro/internal/wire"
)

// TestQueryModeTable pins the shared mode vocabulary: the JSON mode
// strings, the wire mode codes they map onto, and the codes' numeric
// values (a wire contract — reordering the constants breaks clients).
func TestQueryModeTable(t *testing.T) {
	if wire.QueryCount != 0 || wire.QueryBits != 1 || wire.QueryPositions != 2 {
		t.Fatalf("wire mode codes moved: count=%d bits=%d positions=%d",
			wire.QueryCount, wire.QueryBits, wire.QueryPositions)
	}
	cases := []struct {
		s    string
		mode uint8
	}{
		{"", wire.QueryCount},
		{"count", wire.QueryCount},
		{"bits", wire.QueryBits},
		{"positions", wire.QueryPositions},
	}
	for _, tc := range cases {
		mode, err := parseQueryMode(tc.s)
		if err != nil || mode != tc.mode {
			t.Errorf("parseQueryMode(%q) = (%d, %v), want (%d, nil)", tc.s, mode, err, tc.mode)
		}
	}
	if _, err := parseQueryMode("popcount"); !errors.Is(err, errBadRequest) {
		t.Errorf("unknown mode error = %v, want errBadRequest class", err)
	}
}

// queryPredicates pairs each differential predicate with its host-side
// byte-level oracle — an implementation independent of the expression
// compiler, the plan IR and the device model.
var queryPredicates = []struct {
	src  string
	host func(in map[string][]byte, i int) byte
}{
	{"i0 & i1", func(in map[string][]byte, i int) byte { return in["i0"][i] & in["i1"][i] }},
	{"(i0 & i1) | ~i2", func(in map[string][]byte, i int) byte { return (in["i0"][i] & in["i1"][i]) | ^in["i2"][i] }},
	{"i0 ^ i1 ^ i2", func(in map[string][]byte, i int) byte { return in["i0"][i] ^ in["i1"][i] ^ in["i2"][i] }},
	{"~(i3 | i4) & i5", func(in map[string][]byte, i int) byte { return ^(in["i3"][i] | in["i4"][i]) & in["i5"][i] }},
	{"(i0 | i1) & (i2 | i3) & ~(i4 ^ i5)", func(in map[string][]byte, i int) byte {
		return (in["i0"][i] | in["i1"][i]) & (in["i2"][i] | in["i3"][i]) & ^(in["i4"][i] ^ in["i5"][i])
	}},
}

// TestQueryDifferential drives the same namespace and predicates through
// three independent evaluators — POST /v1/query on a JSON server,
// KindQuery on an identically configured wire server, and the facade's
// EvalExpr — and requires a bit-for-bit identical match vector from all
// three, a byte-level host oracle agreeing with every one, and
// struct-equal Stats across the two protocols. Shard widths 1 and 4 pin
// both the single-accelerator path and the scatter-gather path.
func TestQueryDifferential(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			_, ts, _, wc := newWirePair(t, shards)
			client := ts.Client()
			rng := rand.New(rand.NewSource(7))
			const (
				namespace = "events"
				nbytes    = 512
			)
			inputs := map[string][]byte{}
			vars := map[string]*elp2im.BitVector{}
			for _, name := range []string{"i0", "i1", "i2", "i3", "i4", "i5"} {
				raw := make([]byte, nbytes)
				rng.Read(raw)
				inputs[name] = raw
				key := indexKey(namespace, name)
				payload := VectorPayload{Bits: nbytes * 8, Data: base64.StdEncoding.EncodeToString(raw)}
				if code, _ := doJSON(t, client, http.MethodPut, ts.URL+"/v1/vectors/"+key, payload, nil); code != http.StatusOK {
					t.Fatalf("json PUT %s: status %d", key, code)
				}
				if err := wc.Put(key, nbytes*8, bytesToWords(raw)); err != nil {
					t.Fatalf("wire PUT %s: %v", key, err)
				}
				v, err := DecodeBits(payload.Data, nbytes*8)
				if err != nil {
					t.Fatal(err)
				}
				vars[name] = v
			}
			oracle, err := elp2im.New()
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range queryPredicates {
				// Host oracle bytes.
				want := make([]byte, nbytes)
				for i := range want {
					want[i] = p.host(inputs, i)
				}
				// JSON, bits mode.
				var jr QueryResponse
				code, _ := doJSON(t, client, http.MethodPost, ts.URL+"/v1/query",
					QueryRequest{Namespace: namespace, Predicate: p.src, Mode: "bits"}, &jr)
				if code != http.StatusOK {
					t.Fatalf("json query %q: status %d", p.src, code)
				}
				jraw, err := base64.StdEncoding.DecodeString(jr.Data)
				if err != nil {
					t.Fatalf("json query %q: bad base64: %v", p.src, err)
				}
				if jr.Bits != nbytes*8 || !bytesEqual(jraw, want) {
					t.Fatalf("json query %q diverges from the host oracle", p.src)
				}
				// Wire, bits mode.
				qr, err := wc.Query(0, namespace, p.src, wire.QueryBits, 0, 0)
				if err != nil {
					t.Fatalf("wire query %q: %v", p.src, err)
				}
				if qr.Bits != nbytes*8 || !bytesEqual(wordsToBytes(qr.Words, nbytes), want) {
					t.Fatalf("wire query %q diverges from the host oracle", p.src)
				}
				// The two protocols agree on cardinality and Stats exactly.
				if int(qr.Count) != jr.Count {
					t.Fatalf("query %q counts diverge: json %d wire %d", p.src, jr.Count, qr.Count)
				}
				if jr.Stats != statsJSON(wireToStats(qr.Stats)) {
					t.Fatalf("query %q stats diverge:\njson %+v\nwire %+v", p.src, jr.Stats, qr.Stats)
				}
				// Facade leg: the same predicate through EvalExpr directly.
				ce, err := elp2im.CompileExpr(p.src)
				if err != nil {
					t.Fatal(err)
				}
				fv, _, err := oracle.EvalExpr(ce, vars)
				if err != nil {
					t.Fatalf("facade eval %q: %v", p.src, err)
				}
				if !bytesEqual(wordsToBytes(fv.Words(), nbytes), want) {
					t.Fatalf("facade eval %q diverges from the host oracle", p.src)
				}
				// Count mode carries cardinality only.
				var cr QueryResponse
				if code, _ := doJSON(t, client, http.MethodPost, ts.URL+"/v1/query",
					QueryRequest{Namespace: namespace, Predicate: p.src}, &cr); code != http.StatusOK {
					t.Fatalf("json count query %q: status %d", p.src, code)
				}
				if cr.Count != jr.Count || cr.Data != "" || cr.Positions != nil {
					t.Fatalf("count mode response carries extra payload: %+v", cr)
				}
				// Positions mode: page through both protocols with a small
				// limit and require identical, host-checked pages.
				var jpos []int
				cursor := 0
				for {
					var pr QueryResponse
					if code, _ := doJSON(t, client, http.MethodPost, ts.URL+"/v1/query",
						QueryRequest{Namespace: namespace, Predicate: p.src, Mode: "positions",
							Cursor: cursor, Limit: 1000}, &pr); code != http.StatusOK {
						t.Fatalf("json positions query %q: status %d", p.src, code)
					}
					wr, err := wc.Query(0, namespace, p.src, wire.QueryPositions, uint64(cursor), 1000)
					if err != nil {
						t.Fatalf("wire positions query %q: %v", p.src, err)
					}
					if len(wr.Positions) != len(pr.Positions) || int(wr.NextCursor) != pr.NextCursor {
						t.Fatalf("positions pages diverge at cursor %d: json %d+%d wire %d+%d",
							cursor, len(pr.Positions), pr.NextCursor, len(wr.Positions), wr.NextCursor)
					}
					for i, p := range pr.Positions {
						if uint64(p) != wr.Positions[i] {
							t.Fatalf("position %d diverges: json %d wire %d", i, p, wr.Positions[i])
						}
					}
					jpos = append(jpos, pr.Positions...)
					if pr.NextCursor == 0 {
						break
					}
					cursor = pr.NextCursor
				}
				if len(jpos) != jr.Count {
					t.Fatalf("query %q paged %d positions, count is %d", p.src, len(jpos), jr.Count)
				}
				for _, pos := range jpos {
					if want[pos/8]&(1<<(pos%8)) == 0 {
						t.Fatalf("query %q returned clear position %d", p.src, pos)
					}
				}
			}
		})
	}
}

// TestQueryPaginationLarge pins pagination at a megabit universe: paging
// a dense match set at the clamped maximum limit reconstructs exactly
// the host-computed position list, page boundaries resume without
// duplicates or gaps, and the final page answers a zero cursor.
func TestQueryPaginationLarge(t *testing.T) {
	_, ts := newTestServer(t, nil)
	client := ts.Client()
	rng := rand.New(rand.NewSource(21))
	const (
		namespace = "big"
		bits      = 1 << 20
		nbytes    = bits / 8
	)
	raws := map[string][]byte{}
	for _, name := range []string{"x", "y"} {
		raw := make([]byte, nbytes)
		rng.Read(raw)
		raws[name] = raw
		payload := VectorPayload{Bits: bits, Data: base64.StdEncoding.EncodeToString(raw)}
		if code, _ := doJSON(t, client, http.MethodPut, ts.URL+"/v1/vectors/"+indexKey(namespace, name), payload, nil); code != http.StatusOK {
			t.Fatalf("PUT %s: status %d", name, code)
		}
	}
	var want []int
	for i := 0; i < bits; i++ {
		if (raws["x"][i/8]|raws["y"][i/8])&(1<<(i%8)) != 0 {
			want = append(want, i)
		}
	}
	var got []int
	cursor, pages := 0, 0
	for {
		var pr QueryResponse
		code, _ := doJSON(t, client, http.MethodPost, ts.URL+"/v1/query",
			QueryRequest{Namespace: namespace, Predicate: "x | y", Mode: "positions",
				Cursor: cursor, Limit: maxQueryLimit}, &pr)
		if code != http.StatusOK {
			t.Fatalf("positions page at cursor %d: status %d", cursor, code)
		}
		if pr.Bits != bits || pr.Count != len(want) {
			t.Fatalf("page header = (%d bits, %d count), want (%d, %d)", pr.Bits, pr.Count, bits, len(want))
		}
		got = append(got, pr.Positions...)
		pages++
		if pr.NextCursor == 0 {
			break
		}
		if len(pr.Positions) != maxQueryLimit {
			t.Fatalf("non-final page carried %d positions, want %d", len(pr.Positions), maxQueryLimit)
		}
		cursor = pr.NextCursor
	}
	if pages != (len(want)+maxQueryLimit-1)/maxQueryLimit {
		t.Errorf("paged %d matches in %d pages at limit %d", len(want), pages, maxQueryLimit)
	}
	if len(got) != len(want) {
		t.Fatalf("paged %d positions, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d = %d, want %d", i, got[i], want[i])
		}
	}
	// An over-limit request clamps rather than failing.
	var pr QueryResponse
	if code, _ := doJSON(t, client, http.MethodPost, ts.URL+"/v1/query",
		QueryRequest{Namespace: namespace, Predicate: "x | y", Mode: "positions",
			Limit: maxQueryLimit * 10}, &pr); code != http.StatusOK {
		t.Fatalf("over-limit page: status %d", code)
	}
	if len(pr.Positions) != maxQueryLimit {
		t.Fatalf("over-limit page carried %d positions, want clamp to %d", len(pr.Positions), maxQueryLimit)
	}
}

// TestQueryErrorsEndToEnd drives every query request fault through both
// protocols and requires the 400 class each time: unknown namespace,
// unknown index within a live namespace, a cursor beyond the universe, a
// negative JSON cursor, an unknown mode, and a predicate overflowing the
// row budget of a deliberately shallow module.
func TestQueryErrorsEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, nil)
	client := ts.Client()
	rng := rand.New(rand.NewSource(3))
	putRandom(t, client, ts.URL, indexKey("tenants", "active"), rng, 64)
	wc := startWire(t, s)

	expectJSON := func(name string, body QueryRequest, wantFragment string) {
		t.Helper()
		var er ErrorResponse
		code, _ := doJSON(t, client, http.MethodPost, ts.URL+"/v1/query", body, &er)
		if code != http.StatusBadRequest {
			t.Fatalf("%s: json status %d, want 400", name, code)
		}
		if !strings.Contains(er.Error, wantFragment) {
			t.Fatalf("%s: json error %q missing %q", name, er.Error, wantFragment)
		}
	}
	expectWire := func(name string, namespace, predicate string, mode uint8, cursor uint64) {
		t.Helper()
		_, err := wc.Query(0, namespace, predicate, mode, cursor, 0)
		var se *wire.StatusError
		if !errors.As(err, &se) || se.Code != wire.StatusBadRequest {
			t.Fatalf("%s: wire error %v, want StatusBadRequest", name, err)
		}
	}

	expectJSON("unknown namespace", QueryRequest{Namespace: "nope", Predicate: "active"}, "unknown namespace")
	expectWire("unknown namespace", "nope", "active", wire.QueryCount, 0)
	expectJSON("unknown index", QueryRequest{Namespace: "tenants", Predicate: "active & missing"}, "unknown index")
	expectWire("unknown index", "tenants", "active & missing", wire.QueryCount, 0)
	expectJSON("bad cursor", QueryRequest{Namespace: "tenants", Predicate: "active", Mode: "positions", Cursor: 1 << 20}, "bad cursor")
	expectWire("bad cursor", "tenants", "active", wire.QueryPositions, 1<<20)
	expectJSON("negative cursor", QueryRequest{Namespace: "tenants", Predicate: "active", Mode: "positions", Cursor: -1}, "bad cursor")
	expectJSON("bad mode", QueryRequest{Namespace: "tenants", Predicate: "active", Mode: "popcount"}, "unknown query mode")
	expectJSON("bad predicate", QueryRequest{Namespace: "tenants", Predicate: "active &"}, "expr")

	// Row-budget overflow needs a shallow module: 12 rows per subarray
	// cannot hold a predicate demanding more distinct indices plus temps
	// than that.
	shallow, err := elp2im.New(func(c *elp2im.Config) { c.Module.RowsPerSubarray = 12 })
	if err != nil {
		t.Fatal(err)
	}
	ss, sts := newTestServer(t, func(c *Config) { c.Accelerator = shallow })
	sclient := sts.Client()
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"}
	for _, n := range names {
		putRandom(t, sclient, sts.URL, indexKey("deep", n), rng, 64)
	}
	deep := "(a ^ b) & (c ^ d) & (e ^ f) & (g ^ h) & (i ^ j) & (k ^ l)"
	var er ErrorResponse
	if code, _ := doJSON(t, sclient, http.MethodPost, sts.URL+"/v1/query",
		QueryRequest{Namespace: "deep", Predicate: deep, Mode: "count"}, &er); code != http.StatusBadRequest {
		t.Fatalf("row-budget overflow: json status %d, want 400 (%s)", code, er.Error)
	}
	if !strings.Contains(er.Error, "row budget") {
		t.Fatalf("row-budget overflow: error %q missing cause", er.Error)
	}
	swc := startWire(t, ss)
	_, err = swc.Query(0, "deep", deep, wire.QueryCount, 0, 0)
	var se *wire.StatusError
	if !errors.As(err, &se) || se.Code != wire.StatusBadRequest {
		t.Fatalf("row-budget overflow: wire error %v, want StatusBadRequest", err)
	}
}

// TestQueryFusionCounters pins the /v1/stats fusion telemetry: fused
// query evaluation increments fusion_hits, and the same workload on a
// fusion-disabled server increments fusion_fallbacks instead.
func TestQueryFusionCounters(t *testing.T) {
	run := func(disable bool) ServerStats {
		acc, err := elp2im.New(func(c *elp2im.Config) { c.DisableFusion = disable })
		if err != nil {
			t.Fatal(err)
		}
		_, ts := newTestServer(t, func(c *Config) { c.Accelerator = acc })
		client := ts.Client()
		rng := rand.New(rand.NewSource(9))
		for _, n := range []string{"p", "q", "r"} {
			putRandom(t, client, ts.URL, indexKey("ns", n), rng, 64)
		}
		if code, _ := doJSON(t, client, http.MethodPost, ts.URL+"/v1/query",
			QueryRequest{Namespace: "ns", Predicate: "(p & q) | ~r"}, nil); code != http.StatusOK {
			t.Fatalf("query: status %d", code)
		}
		var sr StatsPayload
		if code, _ := doJSON(t, client, http.MethodGet, ts.URL+"/v1/stats", nil, &sr); code != http.StatusOK {
			t.Fatalf("stats: status %d", code)
		}
		return sr.Server
	}
	fused := run(false)
	if fused.FusionHits == 0 {
		t.Errorf("fused query left fusion_hits at 0: %+v", fused)
	}
	unfused := run(true)
	if unfused.FusionHits != 0 || unfused.FusionFallbacks == 0 {
		t.Errorf("fusion-disabled query counters = hits %d fallbacks %d, want 0 and >0",
			unfused.FusionHits, unfused.FusionFallbacks)
	}
}

// FuzzQuery feeds arbitrary predicates, modes, cursors and limits into
// the HTTP query path over a live store and checks the structural
// invariants every accepted response must satisfy: count ≤ bits,
// positions strictly increasing, every position under the universe and
// consistent with the bits-mode vector of the same predicate, and a
// next-cursor that is zero or past the final position. Rejected inputs
// must answer the 400 class, never 500.
func FuzzQuery(f *testing.F) {
	f.Add("i0 & i1", "count", 0, 0)
	f.Add("(i0 | i1) & ~i2", "bits", 0, 0)
	f.Add("i0 ^ i1 ^ i2", "positions", 0, 7)
	f.Add("i0", "positions", 63, 1)
	f.Add("~i2", "", 0, 0)
	f.Add("i0 & (", "count", 0, 0)
	f.Add("i0 & nope", "positions", -5, -1)
	f.Add("i9", "weird", 1<<30, 1<<30)

	acc, err := elp2im.New()
	if err != nil {
		f.Fatal(err)
	}
	s, err := New(Config{Accelerator: acc})
	if err != nil {
		f.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	f.Cleanup(func() {
		ts.Close()
		s.Drain()
	})
	client := ts.Client()
	rng := rand.New(rand.NewSource(17))
	const nbytes = 128
	for _, name := range []string{"i0", "i1", "i2"} {
		raw := make([]byte, nbytes)
		rng.Read(raw)
		payload := VectorPayload{Bits: nbytes * 8, Data: base64.StdEncoding.EncodeToString(raw)}
		if code, err := rawJSON(client, http.MethodPut, ts.URL+"/v1/vectors/"+indexKey("fz", name), payload, nil); err != nil || code != http.StatusOK {
			f.Fatalf("PUT %s: status %d, err %v", name, code, err)
		}
	}

	f.Fuzz(func(t *testing.T, predicate, mode string, cursor, limit int) {
		var qr QueryResponse
		code, err := rawJSON(client, http.MethodPost, ts.URL+"/v1/query",
			QueryRequest{Namespace: "fz", Predicate: predicate, Mode: mode, Cursor: cursor, Limit: limit}, &qr)
		if err != nil {
			t.Fatalf("query(%q, %q, %d, %d): %v", predicate, mode, cursor, limit, err)
		}
		switch {
		case code == http.StatusOK:
		case code == http.StatusBadRequest:
			return
		default:
			t.Fatalf("query(%q, %q, %d, %d): status %d, want 200 or 400", predicate, mode, cursor, limit, code)
		}
		if qr.Bits != nbytes*8 || qr.Count < 0 || qr.Count > qr.Bits {
			t.Fatalf("header out of range: %d count over %d bits", qr.Count, qr.Bits)
		}
		if mode != "positions" {
			return
		}
		var br QueryResponse
		if code, err := rawJSON(client, http.MethodPost, ts.URL+"/v1/query",
			QueryRequest{Namespace: "fz", Predicate: predicate, Mode: "bits"}, &br); err != nil || code != http.StatusOK {
			t.Fatalf("bits twin: status %d, err %v", code, err)
		}
		match, err := base64.StdEncoding.DecodeString(br.Data)
		if err != nil {
			t.Fatal(err)
		}
		last := -1
		for _, p := range qr.Positions {
			if p <= last || p >= qr.Bits {
				t.Fatalf("positions not strictly increasing under %d: %v", qr.Bits, qr.Positions)
			}
			if match[p/8]&(1<<(p%8)) == 0 {
				t.Fatalf("position %d is clear in the bits-mode vector", p)
			}
			last = p
		}
		if qr.NextCursor != 0 && qr.NextCursor <= last {
			t.Fatalf("next cursor %d not past final position %d", qr.NextCursor, last)
		}
	})
}

// rawJSON is doJSON without a *testing.T, for fuzz setup and bodies.
func rawJSON(client *http.Client, method, url string, body, out any) (int, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequest(method, url, bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if out != nil && resp.StatusCode == http.StatusOK && len(rb) > 0 {
		if err := json.Unmarshal(rb, out); err != nil {
			return resp.StatusCode, fmt.Errorf("unmarshal %q: %w", rb, err)
		}
	}
	return resp.StatusCode, nil
}
