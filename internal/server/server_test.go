package server

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	elp2im "repro"
)

// newTestServer builds a Server over a fresh default accelerator plus an
// httptest front end, draining both on cleanup.
func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	acc, err := elp2im.New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	cfg := Config{Accelerator: acc}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain()
	})
	return s, ts
}

// doJSON issues one JSON request and decodes the response body.
func doJSON(t *testing.T, client *http.Client, method, url string, body, out any) (int, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal body: %v", err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("unmarshal %s %s response %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode, resp.Header
}

// putRandom stores n random bytes (8n bits) under name and returns them.
func putRandom(t *testing.T, client *http.Client, base, name string, rng *rand.Rand, nbytes int) []byte {
	t.Helper()
	raw := make([]byte, nbytes)
	rng.Read(raw)
	payload := VectorPayload{Bits: nbytes * 8, Data: base64.StdEncoding.EncodeToString(raw)}
	code, _ := doJSON(t, client, http.MethodPut, base+"/v1/vectors/"+name, payload, nil)
	if code != http.StatusOK {
		t.Fatalf("PUT %s: status %d", name, code)
	}
	return raw
}

// fetchBytes reads a vector's contents back as raw bytes.
func fetchBytes(t *testing.T, client *http.Client, base, name string) []byte {
	t.Helper()
	var got VectorPayload
	code, _ := doJSON(t, client, http.MethodGet, base+"/v1/vectors/"+name, nil, &got)
	if code != http.StatusOK {
		t.Fatalf("GET %s: status %d", name, code)
	}
	raw, err := base64.StdEncoding.DecodeString(got.Data)
	if err != nil {
		t.Fatalf("GET %s: bad base64: %v", name, err)
	}
	return raw
}

// opBytes computes the expected result of a bitwise op on raw operand
// bytes (test lengths are byte-aligned, so no tail masking is needed).
func opBytes(op string, x, y []byte) []byte {
	out := make([]byte, len(x))
	for i := range x {
		switch op {
		case "and":
			out[i] = x[i] & y[i]
		case "or":
			out[i] = x[i] | y[i]
		case "xor":
			out[i] = x[i] ^ y[i]
		case "nand":
			out[i] = ^(x[i] & y[i])
		case "nor":
			out[i] = ^(x[i] | y[i])
		case "xnor":
			out[i] = ^(x[i] ^ y[i])
		case "not":
			out[i] = ^x[i]
		case "copy":
			out[i] = x[i]
		default:
			panic("opBytes: " + op)
		}
	}
	return out
}

func TestVectorCRUD(t *testing.T) {
	_, ts := newTestServer(t, nil)
	c := ts.Client()
	rng := rand.New(rand.NewSource(1))

	raw := putRandom(t, c, ts.URL, "crud.a", rng, 2048)
	if got := fetchBytes(t, c, ts.URL, "crud.a"); !bytes.Equal(got, raw) {
		t.Fatalf("round-trip mismatch: got %d bytes", len(got))
	}

	// Zero-fill PUT without data.
	code, _ := doJSON(t, c, http.MethodPut, ts.URL+"/v1/vectors/crud.z", VectorPayload{Bits: 128}, nil)
	if code != http.StatusOK {
		t.Fatalf("PUT zero vector: status %d", code)
	}
	var got VectorPayload
	code, _ = doJSON(t, c, http.MethodGet, ts.URL+"/v1/vectors/crud.z", nil, &got)
	if code != http.StatusOK || got.Bits != 128 || got.Popcount == nil || *got.Popcount != 0 {
		t.Fatalf("GET zero vector: status %d payload %+v", code, got)
	}

	var list ListResponse
	code, _ = doJSON(t, c, http.MethodGet, ts.URL+"/v1/vectors", nil, &list)
	if code != http.StatusOK || len(list.Vectors) != 2 {
		t.Fatalf("list: status %d, %d vectors", code, len(list.Vectors))
	}
	if list.Vectors[0].Name != "crud.a" || list.Vectors[1].Name != "crud.z" {
		t.Fatalf("list not sorted: %+v", list.Vectors)
	}

	code, _ = doJSON(t, c, http.MethodDelete, ts.URL+"/v1/vectors/crud.a", nil, nil)
	if code != http.StatusNoContent {
		t.Fatalf("DELETE: status %d", code)
	}
	code, _ = doJSON(t, c, http.MethodGet, ts.URL+"/v1/vectors/crud.a", nil, nil)
	if code != http.StatusNotFound {
		t.Fatalf("GET deleted: status %d, want 404", code)
	}
	code, _ = doJSON(t, c, http.MethodDelete, ts.URL+"/v1/vectors/crud.a", nil, nil)
	if code != http.StatusNotFound {
		t.Fatalf("DELETE missing: status %d, want 404", code)
	}
}

func TestOpReduceEvalCorrectness(t *testing.T) {
	_, ts := newTestServer(t, nil)
	c := ts.Client()
	rng := rand.New(rand.NewSource(2))
	const nbytes = 2048 // 16384 bits = 2 stripes on the default module

	a := putRandom(t, c, ts.URL, "w.a", rng, nbytes)
	b := putRandom(t, c, ts.URL, "w.b", rng, nbytes)
	d := putRandom(t, c, ts.URL, "w.d", rng, nbytes)

	for _, op := range []string{"and", "or", "xor", "nand", "nor", "xnor", "not", "copy"} {
		var resp OpResponse
		code, _ := doJSON(t, c, http.MethodPost, ts.URL+"/v1/op",
			OpRequest{Op: op, Dst: "w.r", X: "w.a", Y: "w.b"}, &resp)
		if code != http.StatusOK {
			t.Fatalf("op %s: status %d", op, code)
		}
		if resp.Stats.LatencyNS <= 0 || resp.Stats.RowOps <= 0 {
			t.Fatalf("op %s: implausible stats %+v", op, resp.Stats)
		}
		if got, want := fetchBytes(t, c, ts.URL, "w.r"), opBytes(op, a, b); !bytes.Equal(got, want) {
			t.Fatalf("op %s: wrong result", op)
		}
	}

	var resp OpResponse
	code, _ := doJSON(t, c, http.MethodPost, ts.URL+"/v1/reduce",
		ReduceRequest{Op: "and", Dst: "w.red", Srcs: []string{"w.a", "w.b", "w.d"}}, &resp)
	if code != http.StatusOK {
		t.Fatalf("reduce: status %d", code)
	}
	want := opBytes("and", opBytes("and", a, b), d)
	if got := fetchBytes(t, c, ts.URL, "w.red"); !bytes.Equal(got, want) {
		t.Fatal("reduce: wrong result")
	}

	// Expression identifiers are [letter_][letter digit _]*, so the eval
	// operands use underscore names.
	putAlias := func(alias string, raw []byte) {
		payload := VectorPayload{Bits: len(raw) * 8, Data: base64.StdEncoding.EncodeToString(raw)}
		code, _ := doJSON(t, c, http.MethodPut, ts.URL+"/v1/vectors/"+alias, payload, nil)
		if code != http.StatusOK {
			t.Fatalf("PUT %s: status %d", alias, code)
		}
	}
	putAlias("w_a", a)
	putAlias("w_b", b)
	putAlias("w_d", d)
	code, _ = doJSON(t, c, http.MethodPost, ts.URL+"/v1/eval",
		EvalRequest{Expr: "(w_a & ~w_b) | w_d", Dst: "w.ev"}, &resp)
	if code != http.StatusOK {
		t.Fatalf("eval: status %d", code)
	}
	wantEval := opBytes("or", opBytes("and", a, opBytes("not", b, nil)), d)
	if got := fetchBytes(t, c, ts.URL, "w.ev"); !bytes.Equal(got, wantEval) {
		t.Fatal("eval: wrong result")
	}
	if resp.Bits != nbytes*8 {
		t.Fatalf("eval: bits %d, want %d", resp.Bits, nbytes*8)
	}
}

// TestConcurrentMixedWorkload is the acceptance scenario at test scale:
// 64 concurrent clients on mixed AND/OR/XOR + Reduce, client-side result
// verification, and micro-batching visibly coalescing (mean occupancy
// above 1).
func TestConcurrentMixedWorkload(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.Window = 4 * time.Millisecond
		c.RequestTimeout = time.Minute
	})
	c := ts.Client()
	const clients = 64
	const opsPerClient = 6
	const nbytes = 1024

	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + i)))
			pfx := fmt.Sprintf("c%02d.", i)
			a := putRandom(t, c, ts.URL, pfx+"a", rng, nbytes)
			b := putRandom(t, c, ts.URL, pfx+"b", rng, nbytes)
			d := putRandom(t, c, ts.URL, pfx+"d", rng, nbytes)
			ops := []string{"and", "or", "xor", "reduce"}
			for k := 0; k < opsPerClient; k++ {
				op := ops[k%len(ops)]
				var code int
				var want []byte
				if op == "reduce" {
					code, _ = doJSON(t, c, http.MethodPost, ts.URL+"/v1/reduce",
						ReduceRequest{Op: "or", Dst: pfx + "r", Srcs: []string{pfx + "a", pfx + "b", pfx + "d"}}, nil)
					want = opBytes("or", opBytes("or", a, b), d)
				} else {
					code, _ = doJSON(t, c, http.MethodPost, ts.URL+"/v1/op",
						OpRequest{Op: op, Dst: pfx + "r", X: pfx + "a", Y: pfx + "b"}, nil)
					want = opBytes(op, a, b)
				}
				if code != http.StatusOK {
					errCh <- fmt.Errorf("client %d %s: status %d", i, op, code)
					return
				}
				if got := fetchBytes(t, c, ts.URL, pfx+"r"); !bytes.Equal(got, want) {
					errCh <- fmt.Errorf("client %d %s: wrong result", i, op)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	st := s.Stats()
	if st.Server.BatchesFlushed == 0 {
		t.Fatal("no batches flushed")
	}
	if st.Server.MeanBatchOccupancy <= 1 {
		t.Errorf("mean batch occupancy %.2f, want > 1 (coalesced=%d flushes=%d)",
			st.Server.MeanBatchOccupancy, st.Server.RequestsCoalesced, st.Server.BatchesFlushed)
	}
	if st.Totals.LatencyNS <= 0 {
		t.Error("accelerator totals did not accumulate")
	}
}

func TestBackpressure503(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.MaxQueue = 1
		c.Window = 100 * time.Millisecond
		c.RequestTimeout = time.Minute
	})
	c := ts.Client()
	rng := rand.New(rand.NewSource(3))
	putRandom(t, c, ts.URL, "bp.a", rng, 256)
	putRandom(t, c, ts.URL, "bp.b", rng, 256)

	const n = 8
	codes := make([]int, n)
	headers := make([]http.Header, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], headers[i] = doJSON(t, c, http.MethodPost, ts.URL+"/v1/op",
				OpRequest{Op: "and", Dst: fmt.Sprintf("bp.r%d", i), X: "bp.a", Y: "bp.b"}, nil)
		}(i)
	}
	wg.Wait()

	var ok, rejected int
	for i, code := range codes {
		switch code {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			rejected++
			if headers[i].Get("Retry-After") == "" {
				t.Error("503 without Retry-After header")
			}
		default:
			t.Errorf("unexpected status %d", code)
		}
	}
	if ok == 0 {
		t.Error("no request succeeded")
	}
	if rejected == 0 {
		t.Error("queue bound 1 with 8 concurrent requests produced no 503")
	}
}

func TestDegradedMode(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.Degraded = true })
	c := ts.Client()
	rng := rand.New(rand.NewSource(4))
	a := putRandom(t, c, ts.URL, "dg.a", rng, 512)
	b := putRandom(t, c, ts.URL, "dg.b", rng, 512)

	code, _ := doJSON(t, c, http.MethodPost, ts.URL+"/v1/op",
		OpRequest{Op: "xor", Dst: "dg.r", X: "dg.a", Y: "dg.b"}, nil)
	if code != http.StatusOK {
		t.Fatalf("degraded op: status %d", code)
	}
	if got := fetchBytes(t, c, ts.URL, "dg.r"); !bytes.Equal(got, opBytes("xor", a, b)) {
		t.Fatal("degraded op: wrong result")
	}
	st := s.Stats()
	if !st.Server.Degraded {
		t.Error("stats do not report degraded mode")
	}
	if st.Server.BatchesFlushed != 0 {
		t.Errorf("degraded mode flushed %d batches, want 0", st.Server.BatchesFlushed)
	}
}

func TestPanicIsolation(t *testing.T) {
	s, _ := newTestServer(t, nil)
	h := s.wrap("op", func(http.ResponseWriter, *http.Request) error {
		panic("boom")
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodPost, "/v1/op", strings.NewReader("{}")))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", rec.Code)
	}
	var er ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
		t.Fatalf("panicking handler: body %q", rec.Body.String())
	}
	if got := s.obs.panics.Value(); got != 1 {
		t.Fatalf("server.panics = %d, want 1", got)
	}
}

// TestStatusClassification pins the 4xx/5xx split: length mismatches and
// malformed input are client faults (400), while a panic after the
// response is committed must not append a second status/body.
func TestStatusClassification(t *testing.T) {
	_, ts := newTestServer(t, nil)
	c := ts.Client()
	rng := rand.New(rand.NewSource(6))
	putRandom(t, c, ts.URL, "sc.a", rng, 256)
	putRandom(t, c, ts.URL, "sc.b", rng, 512)

	code, _ := doJSON(t, c, http.MethodPost, ts.URL+"/v1/op",
		OpRequest{Op: "and", Dst: "sc.r", X: "sc.a", Y: "sc.b"}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("length-mismatched op: status %d, want 400", code)
	}
	code, _ = doJSON(t, c, http.MethodGet, ts.URL+"/v1/vectors/sc.r", nil, nil)
	if code != http.StatusNotFound {
		t.Fatalf("dst of failed op: status %d, want 404 (no spurious vector)", code)
	}
	code, _ = doJSON(t, c, http.MethodPost, ts.URL+"/v1/op",
		OpRequest{Op: "mux", Dst: "sc.r", X: "sc.a", Y: "sc.b"}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown op: status %d, want 400", code)
	}
	code, _ = doJSON(t, c, http.MethodPost, ts.URL+"/v1/eval",
		EvalRequest{Expr: "sc_a &", Dst: "sc.r"}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("malformed expression: status %d, want 400", code)
	}
}

// TestPanicAfterCommitDoesNotRewrite verifies that wrap's recovery path
// leaves an already committed response alone instead of appending a
// superfluous 500 header and a second JSON body.
func TestPanicAfterCommitDoesNotRewrite(t *testing.T) {
	s, _ := newTestServer(t, nil)
	h := s.wrap("op", func(w http.ResponseWriter, _ *http.Request) error {
		_ = writeJSON(w, healthPayload{Status: "ok"})
		panic("late boom")
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodPost, "/v1/op", strings.NewReader("{}")))
	if rec.Code != http.StatusOK {
		t.Fatalf("committed-then-panic: status %d, want the committed 200", rec.Code)
	}
	var hp healthPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &hp); err != nil || hp.Status != "ok" {
		t.Fatalf("committed-then-panic: body %q corrupted", rec.Body.String())
	}
	if got := s.obs.panics.Value(); got != 1 {
		t.Fatalf("server.panics = %d, want 1", got)
	}
}

func TestHealthAndDrain(t *testing.T) {
	s, ts := newTestServer(t, nil)
	c := ts.Client()
	var hp healthPayload
	code, _ := doJSON(t, c, http.MethodGet, ts.URL+"/healthz", nil, &hp)
	if code != http.StatusOK || hp.Status != "ok" {
		t.Fatalf("healthz: %d %+v", code, hp)
	}

	s.Drain()
	code, _ = doJSON(t, c, http.MethodGet, ts.URL+"/healthz", nil, &hp)
	if code != http.StatusOK || hp.Status != "draining" {
		t.Fatalf("healthz while draining: %d %+v", code, hp)
	}
	rng := rand.New(rand.NewSource(5))
	putRandom(t, c, ts.URL, "dr.a", rng, 64)
	code, hdr := doJSON(t, c, http.MethodPost, ts.URL+"/v1/op",
		OpRequest{Op: "not", Dst: "dr.r", X: "dr.a"}, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("op while draining: status %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("draining 503 without Retry-After")
	}
}

func TestUnknownOperandIs404(t *testing.T) {
	_, ts := newTestServer(t, nil)
	c := ts.Client()
	code, _ := doJSON(t, c, http.MethodPost, ts.URL+"/v1/op",
		OpRequest{Op: "and", Dst: "nx.r", X: "nx.a", Y: "nx.b"}, nil)
	if code != http.StatusNotFound {
		t.Fatalf("op on unknown vectors: status %d, want 404", code)
	}
}

func TestRouteMetricsRegistered(t *testing.T) {
	s, ts := newTestServer(t, nil)
	c := ts.Client()
	code, _ := doJSON(t, c, http.MethodGet, ts.URL+"/healthz", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	snap := s.acc.Snapshot()
	for _, name := range sortedRouteNames() {
		if _, ok := snap.Counters["server.http.requests."+name]; !ok {
			t.Errorf("route series server.http.requests.%s missing from accelerator snapshot", name)
		}
	}
	if snap.Counter("server.http.requests.health") == 0 {
		t.Error("health route counter did not move")
	}
}
