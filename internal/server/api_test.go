package server

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"reflect"
	"sort"
	"testing"

	elp2im "repro"
)

// TestStatsPayloadRoundTrip guards the /v1/stats contract: the payload
// must survive a marshal/unmarshal round trip unchanged, and the exact
// JSON key set is pinned so a silent field rename (which would break
// dashboards keying on these names) fails here instead of in production.
func TestStatsPayloadRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, nil)
	c := ts.Client()
	rng := rand.New(rand.NewSource(20))
	putRandom(t, c, ts.URL, "st.a", rng, 1024)
	putRandom(t, c, ts.URL, "st.b", rng, 1024)
	code, _ := doJSON(t, c, http.MethodPost, ts.URL+"/v1/op",
		OpRequest{Op: "and", Dst: "st.r", X: "st.a", Y: "st.b"}, nil)
	if code != http.StatusOK {
		t.Fatalf("op: status %d", code)
	}

	resp, err := c.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET /v1/stats: %v", err)
	}
	defer resp.Body.Close()
	var payload StatsPayload
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if payload.Design == "" || payload.Totals.LatencyNS <= 0 || payload.Totals.RowOps <= 0 {
		t.Fatalf("implausible stats payload: %+v", payload)
	}

	// Round trip: marshal → unmarshal → identical struct.
	raw, err := json.Marshal(payload)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back StatsPayload
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(payload, back) {
		t.Fatalf("round trip changed the payload:\n  out: %+v\n  back: %+v", payload, back)
	}

	// Pin the exact key sets.
	var tree map[string]json.RawMessage
	if err := json.Unmarshal(raw, &tree); err != nil {
		t.Fatalf("unmarshal tree: %v", err)
	}
	assertKeys(t, "payload", tree, []string{"design", "reserved_rows", "totals", "server"})
	var totals map[string]json.RawMessage
	if err := json.Unmarshal(tree["totals"], &totals); err != nil {
		t.Fatalf("unmarshal totals: %v", err)
	}
	assertKeys(t, "totals", totals, []string{
		"latency_ns", "energy_nj", "average_power_w", "row_ops", "commands", "wordlines",
	})
	var server map[string]json.RawMessage
	if err := json.Unmarshal(tree["server"], &server); err != nil {
		t.Fatalf("unmarshal server: %v", err)
	}
	assertKeys(t, "server", server, []string{
		"queue_depth", "queue_max", "rejected", "deadline_expired",
		"batches_flushed", "requests_coalesced", "mean_batch_occupancy",
		"panics", "wire_flushes", "wire_frames_per_flush",
		"fusion_hits", "fusion_fallbacks",
		"vectors", "draining", "degraded", "shards",
	})
	// per_shard is omitempty and this is a single-module server, so it must
	// be absent here; the sharded key set is pinned by
	// TestShardedStatsPayload in shard_server_test.go.
	if _, ok := server["per_shard"]; ok {
		t.Error("single-module stats payload unexpectedly carries per_shard")
	}
}

// assertKeys fails unless m's key set is exactly want.
func assertKeys(t *testing.T, label string, m map[string]json.RawMessage, want []string) {
	t.Helper()
	got := make([]string, 0, len(m))
	for k := range m {
		got = append(got, k)
	}
	sort.Strings(got)
	want = append([]string(nil), want...)
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s keys = %v, want %v", label, got, want)
	}
}

func TestEncodeDecodeBits(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, bits := range []int{1, 7, 8, 63, 64, 65, 8192, 100_000} {
		v := elp2im.RandomBitVector(rng, bits)
		enc := EncodeBits(v)
		back, err := DecodeBits(enc, bits)
		if err != nil {
			t.Fatalf("bits=%d: decode: %v", bits, err)
		}
		if !v.Equal(back) {
			t.Fatalf("bits=%d: round trip mismatch", bits)
		}
	}

	if _, err := DecodeBits("AAAA", 0); err == nil {
		t.Error("DecodeBits accepted zero bits")
	}
	if _, err := DecodeBits("!!", 8); err == nil {
		t.Error("DecodeBits accepted invalid base64")
	}
	// One byte but claiming 4 bits with the high bits set: stray bits
	// beyond the length must be rejected.
	if _, err := DecodeBits("8A==", 4); err == nil { // 0xF0
		t.Error("DecodeBits accepted stray bits beyond the vector length")
	}
	// Wrong byte count for the claimed length.
	if _, err := DecodeBits("AAAA", 8); err == nil {
		t.Error("DecodeBits accepted a length/data mismatch")
	}
}

func TestParseOp(t *testing.T) {
	cases := map[string]elp2im.Op{
		"and": elp2im.OpAnd, "AND": elp2im.OpAnd, "Xor": elp2im.OpXor,
		"not": elp2im.OpNot, "copy": elp2im.OpCopy, "nor": elp2im.OpNor,
		"nand": elp2im.OpNand, "xnor": elp2im.OpXnor, "or": elp2im.OpOr,
	}
	for in, want := range cases {
		got, err := parseOp(in)
		if err != nil || got != want {
			t.Errorf("parseOp(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseOp("mux"); err == nil {
		t.Error("parseOp accepted an unknown mnemonic")
	}
}
