package server

import (
	"encoding/base64"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"testing"

	elp2im "repro"
	"repro/internal/vertical"
	"repro/internal/wire"
)

// putVertJSON stores a vertical vector through the JSON path.
func putVertJSON(t *testing.T, client *http.Client, base, name string, width int, elems []uint64) {
	t.Helper()
	payload := VectorPayload{ElemWidth: width, Elems: EncodeElems(elems)}
	if code, _ := doJSON(t, client, http.MethodPut, base+"/v1/vectors/"+name, payload, nil); code != http.StatusOK {
		t.Fatalf("json PUT vertical %s: status %d", name, code)
	}
}

// getVertJSON reads a vertical vector's elements back through the JSON
// path.
func getVertJSON(t *testing.T, client *http.Client, base, name string) (int, []uint64) {
	t.Helper()
	var got VectorPayload
	if code, _ := doJSON(t, client, http.MethodGet, base+"/v1/vectors/"+name, nil, &got); code != http.StatusOK {
		t.Fatalf("json GET vertical %s: status %d", name, code)
	}
	elems, err := DecodeElems(got.Elems)
	if err != nil {
		t.Fatalf("json GET vertical %s: %v", name, err)
	}
	if got.Bits != len(elems)*got.ElemWidth {
		t.Fatalf("json GET vertical %s: bits %d, want %d", name, got.Bits, len(elems)*got.ElemWidth)
	}
	return got.ElemWidth, elems
}

// TestArithJSONWireEquivalence is the vertical twin of
// TestWireJSONEquivalence: the same vertical workload — element PUTs,
// every arithmetic op — driven through the HTTP/JSON path on one server
// and the elpwire path on an identically configured second server must
// produce element-identical results, struct-equal modeled stats, and
// match the host-integer oracle. Run at shard widths 1 and 4.
func TestArithJSONWireEquivalence(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			js, ts, ws, wc := newWirePair(t, shards)
			client := ts.Client()
			rng := rand.New(rand.NewSource(7))
			const n, width = 300, 8
			x := make([]uint64, n)
			y := make([]uint64, n)
			for i := range x {
				x[i] = rng.Uint64() & 0xFF
				y[i] = rng.Uint64() & 0xFF
			}
			maskWords := make([]uint64, (n+63)/64)
			for i := range maskWords {
				maskWords[i] = rng.Uint64()
			}
			maskWords[len(maskWords)-1] &= 1<<uint(n%64) - 1

			putVertJSON(t, client, ts.URL, "x", width, x)
			putVertJSON(t, client, ts.URL, "y", width, y)
			maskBytes := wordsToBytes(maskWords, (n+7)/8)
			maskPayload := VectorPayload{Bits: n, Data: base64.StdEncoding.EncodeToString(maskBytes)}
			if code, _ := doJSON(t, client, http.MethodPut, ts.URL+"/v1/vectors/m", maskPayload, nil); code != http.StatusOK {
				t.Fatalf("json PUT mask: status %d", code)
			}
			if err := wc.PutVert("x", width, x); err != nil {
				t.Fatalf("wire PutVert x: %v", err)
			}
			if err := wc.PutVert("y", width, y); err != nil {
				t.Fatalf("wire PutVert y: %v", err)
			}
			if err := wc.Put("m", n, maskWords); err != nil {
				t.Fatalf("wire Put mask: %v", err)
			}

			ops := []struct {
				name string
				code uint8
				op   vertical.Op
				y    string
				mask string
			}{
				{"add", wire.ArithAdd, vertical.OpAdd, "y", ""},
				{"sub", wire.ArithSub, vertical.OpSub, "y", ""},
				{"lt", wire.ArithLt, vertical.OpLT, "y", ""},
				{"le", wire.ArithLe, vertical.OpLE, "y", ""},
				{"eq", wire.ArithEq, vertical.OpEQ, "y", ""},
				{"lts", wire.ArithLts, vertical.OpLTS, "y", ""},
				{"les", wire.ArithLes, vertical.OpLES, "y", ""},
				{"popcount", wire.ArithPopcount, vertical.OpPopcount, "", ""},
				{"select", wire.ArithSelect, vertical.OpSelect, "y", "m"},
			}
			for _, op := range ops {
				dst := "r_" + op.name
				var jr OpResponse
				body := ArithRequest{Op: op.name, Dst: dst, X: "x", Y: op.y, Mask: op.mask}
				if code, _ := doJSON(t, client, http.MethodPost, ts.URL+"/v1/arith", body, &jr); code != http.StatusOK {
					t.Fatalf("json arith %s: status %d", op.name, code)
				}
				wst, wWidth, wElems, err := wc.Arith(op.code, 0, dst, "x", op.y, op.mask)
				if err != nil {
					t.Fatalf("wire arith %s: %v", op.name, err)
				}
				if jr.Stats != statsJSON(wireToStats(wst)) {
					t.Fatalf("arith %s stats diverge:\njson %+v\nwire %+v", op.name, jr.Stats, wst)
				}
				wantWidth := op.op.OutWidth(width)
				if jr.Elems != n || jr.ElemWidth != wantWidth {
					t.Fatalf("json arith %s: elems=%d width=%d, want %d/%d", op.name, jr.Elems, jr.ElemWidth, n, wantWidth)
				}
				if wElems != n || wWidth != wantWidth {
					t.Fatalf("wire arith %s: elems=%d width=%d, want %d/%d", op.name, wElems, wWidth, n, wantWidth)
				}
				want := vertical.Reference(op.op, width, x, y, maskWords)
				gotWidth, jelems := getVertJSON(t, client, ts.URL, dst)
				if gotWidth != wantWidth {
					t.Fatalf("json GET %s: width %d, want %d", dst, gotWidth, wantWidth)
				}
				gWidth, welems, err := wc.GetVert(dst, nil)
				if err != nil {
					t.Fatalf("wire GetVert %s: %v", dst, err)
				}
				if gWidth != wantWidth {
					t.Fatalf("wire GetVert %s: width %d, want %d", dst, gWidth, wantWidth)
				}
				for i := range want {
					if jelems[i] != want[i] || welems[i] != want[i] {
						t.Fatalf("arith %s element %d: json %d wire %d, reference %d",
							op.name, i, jelems[i], welems[i], want[i])
					}
				}
			}
			if js.Totals() != ws.Totals() {
				t.Fatalf("totals diverge:\njson %+v\nwire %+v", js.Totals(), ws.Totals())
			}
		})
	}
}

// TestWireArithOpTable pins the wire arith codes onto the same facade ops
// the JSON mnemonics parse to — the cross-protocol contract that makes
// ArithAdd mean "add" forever, mirroring TestWireBitOpTable.
func TestWireArithOpTable(t *testing.T) {
	codes := map[string]uint8{
		"add": wire.ArithAdd, "sub": wire.ArithSub,
		"lt": wire.ArithLt, "le": wire.ArithLe, "eq": wire.ArithEq,
		"lts": wire.ArithLts, "les": wire.ArithLes,
		"popcount": wire.ArithPopcount, "select": wire.ArithSelect,
	}
	for name, code := range codes {
		want, err := elp2im.ParseArithOp(name)
		if err != nil {
			t.Fatalf("ParseArithOp(%q): %v", name, err)
		}
		got, ok := arithOpFor(code)
		if !ok || got != want {
			t.Errorf("wire code %d maps to %v, JSON %q maps to %v", code, got, name, want)
		}
	}
	if _, ok := arithOpFor(9); ok {
		t.Error("arithOpFor(9) accepted an out-of-range code")
	}
}

// TestVerticalKindGuards pins the dual-kind store contract on every
// consumer: bitwise ops, reductions and eval reject vertical operands and
// destinations; arith rejects plain operands; GETs of the wrong kind over
// the wire say which call to use instead. Everything answers 400-class,
// never 500.
func TestVerticalKindGuards(t *testing.T) {
	s, ts := newTestServer(t, nil)
	wc := startWire(t, s)
	client := ts.Client()
	putVertJSON(t, client, ts.URL, "v", 8, []uint64{1, 2, 3})
	putVertJSON(t, client, ts.URL, "v2", 8, []uint64{4, 5, 6})
	for _, name := range []string{"p", "q"} {
		if code, _ := doJSON(t, client, http.MethodPut, ts.URL+"/v1/vectors/"+name,
			VectorPayload{Bits: 192}, nil); code != http.StatusOK {
			t.Fatalf("PUT %s: status %d", name, code)
		}
	}
	post := func(path string, body any) int {
		t.Helper()
		code, _ := doJSON(t, client, http.MethodPost, ts.URL+path, body, nil)
		return code
	}
	cases := []struct {
		name string
		code int
	}{
		{"op with vertical x", post("/v1/op", OpRequest{Op: "and", Dst: "d", X: "v", Y: "p"})},
		{"op with vertical y", post("/v1/op", OpRequest{Op: "and", Dst: "d", X: "p", Y: "v"})},
		{"op with vertical dst", post("/v1/op", OpRequest{Op: "and", Dst: "v", X: "p", Y: "q"})},
		{"reduce with vertical src", post("/v1/reduce", ReduceRequest{Op: "and", Dst: "d", Srcs: []string{"p", "v"}})},
		{"eval with vertical operand", post("/v1/eval", EvalRequest{Expr: "v & p", Dst: "d"})},
		{"arith with plain x", post("/v1/arith", ArithRequest{Op: "add", Dst: "d", X: "p", Y: "q"})},
		{"arith with plain y", post("/v1/arith", ArithRequest{Op: "add", Dst: "d", X: "v", Y: "p"})},
		{"arith with vertical mask", post("/v1/arith", ArithRequest{Op: "select", Dst: "d", X: "v", Y: "v2", Mask: "v2"})},
		{"arith unknown op", post("/v1/arith", ArithRequest{Op: "mul", Dst: "d", X: "v", Y: "v2"})},
		{"arith popcount with y", post("/v1/arith", ArithRequest{Op: "popcount", Dst: "d", X: "v", Y: "v2"})},
		{"vertical put with bits", func() int {
			code, _ := doJSON(t, client, http.MethodPut, ts.URL+"/v1/vectors/bad",
				VectorPayload{Bits: 64, ElemWidth: 8, Elems: EncodeElems([]uint64{1})}, nil)
			return code
		}()},
		{"vertical put width out of range", func() int {
			code, _ := doJSON(t, client, http.MethodPut, ts.URL+"/v1/vectors/bad",
				VectorPayload{ElemWidth: 65, Elems: EncodeElems([]uint64{1})}, nil)
			return code
		}()},
		{"vertical put stray bits", func() int {
			code, _ := doJSON(t, client, http.MethodPut, ts.URL+"/v1/vectors/bad",
				VectorPayload{ElemWidth: 4, Elems: EncodeElems([]uint64{16})}, nil)
			return code
		}()},
	}
	for _, tc := range cases {
		if tc.code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, tc.code)
		}
	}
	// Missing operands stay 404, not 400.
	if code := post("/v1/arith", ArithRequest{Op: "add", Dst: "d", X: "nope", Y: "v"}); code != http.StatusNotFound {
		t.Errorf("arith missing operand: status %d, want 404", code)
	}
	// Wrong-kind GETs over the wire point at the right call.
	var se *wire.StatusError
	if _, _, _, err := wc.Get("v", nil); !errors.As(err, &se) || se.Code != wire.StatusBadRequest {
		t.Errorf("wire Get of vertical: %v, want bad_request", err)
	}
	if _, _, err := wc.GetVert("p", nil); !errors.As(err, &se) || se.Code != wire.StatusBadRequest {
		t.Errorf("wire GetVert of plain: %v, want bad_request", err)
	}
	if _, _, err := wc.GetVert("nope", nil); !errors.As(err, &se) || se.Code != wire.StatusNotFound {
		t.Errorf("wire GetVert of missing: %v, want not_found", err)
	}
	// A vertical PUT over an existing plain name swaps the entry's kind,
	// and back.
	putVertJSON(t, client, ts.URL, "p", 4, []uint64{9, 10})
	if w, elems := getVertJSON(t, client, ts.URL, "p"); w != 4 || len(elems) != 2 {
		t.Fatalf("kind swap to vertical: width=%d elems=%v", w, elems)
	}
	if code, _ := doJSON(t, client, http.MethodPut, ts.URL+"/v1/vectors/p",
		VectorPayload{Bits: 64}, nil); code != http.StatusOK {
		t.Fatalf("kind swap back to plain: status %d", code)
	}
	if raw := fetchBytes(t, client, ts.URL, "p"); len(raw) != 8 {
		t.Fatalf("kind swap back: got %d bytes, want 8", len(raw))
	}
}

// TestEvalCacheCounters pins the compiled-program LRU: the first eval of
// an expression (and the first arith of an (op, width) shape) misses and
// compiles, repeats hit, and the server.evalcache.hit/miss series count
// exactly that.
func TestEvalCacheCounters(t *testing.T) {
	s, ts := newTestServer(t, nil)
	client := ts.Client()
	for _, name := range []string{"a", "b"} {
		if code, _ := doJSON(t, client, http.MethodPut, ts.URL+"/v1/vectors/"+name,
			VectorPayload{Bits: 256}, nil); code != http.StatusOK {
			t.Fatalf("PUT %s: status %d", name, code)
		}
	}
	putVertJSON(t, client, ts.URL, "vx", 8, []uint64{1, 2, 3, 4})
	putVertJSON(t, client, ts.URL, "vy", 8, []uint64{5, 6, 7, 8})
	hits0, miss0 := s.obs.evalCacheHits.Value(), s.obs.evalCacheMisses.Value()
	eval := func() {
		t.Helper()
		if code, _ := doJSON(t, client, http.MethodPost, ts.URL+"/v1/eval",
			EvalRequest{Expr: "a & ~b", Dst: "r"}, nil); code != http.StatusOK {
			t.Fatalf("eval: status %d", code)
		}
	}
	arith := func() {
		t.Helper()
		if code, _ := doJSON(t, client, http.MethodPost, ts.URL+"/v1/arith",
			ArithRequest{Op: "add", Dst: "vr", X: "vx", Y: "vy"}, nil); code != http.StatusOK {
			t.Fatalf("arith: status %d", code)
		}
	}
	eval()
	arith()
	if h, m := s.obs.evalCacheHits.Value()-hits0, s.obs.evalCacheMisses.Value()-miss0; h != 0 || m != 2 {
		t.Fatalf("cold eval+arith: hits=%d misses=%d, want 0/2", h, m)
	}
	eval()
	eval()
	arith()
	if h, m := s.obs.evalCacheHits.Value()-hits0, s.obs.evalCacheMisses.Value()-miss0; h != 3 || m != 2 {
		t.Fatalf("warm eval+arith: hits=%d misses=%d, want 3/2", h, m)
	}
	if n := s.cache.len(); n != 2 {
		t.Fatalf("cache holds %d entries, want 2", n)
	}
	// A failed compile is not cached: both attempts miss.
	for i := 0; i < 2; i++ {
		if code, _ := doJSON(t, client, http.MethodPost, ts.URL+"/v1/eval",
			EvalRequest{Expr: "a &", Dst: "r"}, nil); code != http.StatusBadRequest {
			t.Fatalf("bad expr: status %d", code)
		}
	}
	if h, m := s.obs.evalCacheHits.Value()-hits0, s.obs.evalCacheMisses.Value()-miss0; h != 3 || m != 4 {
		t.Fatalf("after failed compiles: hits=%d misses=%d, want 3/4", h, m)
	}
	if n := s.cache.len(); n != 2 {
		t.Fatalf("failed compiles were cached: %d entries, want 2", n)
	}
}

// TestEvalCacheEviction pins the LRU bound: a capacity-2 cache holding
// {A, B} evicts A (the least recently used) when C lands, so A misses
// again while B and C still hit.
func TestEvalCacheEviction(t *testing.T) {
	s, ts := newTestServer(t, func(cfg *Config) { cfg.EvalCacheSize = 2 })
	client := ts.Client()
	for _, name := range []string{"a", "b"} {
		if code, _ := doJSON(t, client, http.MethodPut, ts.URL+"/v1/vectors/"+name,
			VectorPayload{Bits: 128}, nil); code != http.StatusOK {
			t.Fatalf("PUT %s: status %d", name, code)
		}
	}
	eval := func(expr string) {
		t.Helper()
		if code, _ := doJSON(t, client, http.MethodPost, ts.URL+"/v1/eval",
			EvalRequest{Expr: expr, Dst: "r"}, nil); code != http.StatusOK {
			t.Fatalf("eval %q: status %d", expr, code)
		}
	}
	exprA, exprB, exprC := "a & b", "a | b", "a ^ b"
	eval(exprA) // miss: {A}
	eval(exprB) // miss: {B, A}
	eval(exprB) // hit, refreshes B
	eval(exprC) // miss, evicts A: {C, B}
	if n := s.cache.len(); n != 2 {
		t.Fatalf("cache holds %d entries, want 2", n)
	}
	miss0 := s.obs.evalCacheMisses.Value()
	hits0 := s.obs.evalCacheHits.Value()
	eval(exprB) // still cached
	eval(exprC) // still cached
	eval(exprA) // evicted → miss
	if h, m := s.obs.evalCacheHits.Value()-hits0, s.obs.evalCacheMisses.Value()-miss0; h != 2 || m != 1 {
		t.Fatalf("post-eviction: hits=%d misses=%d, want 2/1", h, m)
	}
}

// TestConcurrentPutGetConsistency pins the snapshot-GET contract under
// contention: writers replace a vector's contents while readers GET it
// through both protocols, and every response must be self-consistent —
// the reported popcount computed from the same snapshot as the returned
// data, never a torn mix of old and new words. Runs under the race
// detector in the lint gate, which also proves the encode-outside-the-
// lock path never touches live words.
func TestConcurrentPutGetConsistency(t *testing.T) {
	s, ts := newTestServer(t, nil)
	wc := startWire(t, s)
	client := ts.Client()
	const bits = 2048
	const rounds = 60
	// Alternate between two patterns with different popcounts so a torn
	// snapshot is visible as a popcount/data mismatch.
	patterns := [][]uint64{make([]uint64, bits/64), make([]uint64, bits/64)}
	for i := range patterns[0] {
		patterns[0][i] = 0xAAAA_AAAA_AAAA_AAAA
		patterns[1][i] = ^uint64(0)
	}
	if err := wc.Put("hot", bits, patterns[0]); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			raw := wordsToBytes(patterns[i%2], bits/8)
			payload := VectorPayload{Bits: bits, Data: base64.StdEncoding.EncodeToString(raw)}
			if code, _ := doJSON(t, client, http.MethodPut, ts.URL+"/v1/vectors/hot", payload, nil); code != http.StatusOK {
				t.Errorf("writer PUT: status %d", code)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			var got VectorPayload
			if code, _ := doJSON(t, client, http.MethodGet, ts.URL+"/v1/vectors/hot", nil, &got); code != http.StatusOK {
				t.Errorf("json GET: status %d", code)
				return
			}
			raw, err := base64.StdEncoding.DecodeString(got.Data)
			if err != nil || got.Popcount == nil {
				t.Errorf("json GET: data %v popcount %v", err, got.Popcount)
				return
			}
			if pop := popcountWords(bytesToWords(raw)); pop != *got.Popcount {
				t.Errorf("json GET: popcount %d but data has %d set bits", *got.Popcount, pop)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			gotBits, pop, words, err := wc.Get("hot", nil)
			if err != nil {
				t.Errorf("wire GET: %v", err)
				return
			}
			if gotBits != bits || pop != uint64(popcountWords(words)) {
				t.Errorf("wire GET: bits=%d popcount %d but data has %d set bits",
					gotBits, pop, popcountWords(words))
				return
			}
		}
	}()
	wg.Wait()
}
