package server

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	elp2im "repro"
	"repro/internal/wire"
)

// startWire exposes a server over a real TCP listener speaking elpwire
// and returns a connected client. Cleanup closes the client, the
// listener and every tracked connection.
func startWire(t *testing.T, s *Server) *wire.Client {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := s.ServeWire(ln); err != nil {
			t.Errorf("ServeWire: %v", err)
		}
	}()
	c, err := wire.Dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() {
		_ = c.Close()
		_ = ln.Close()
		<-done
		s.CloseWireConns()
	})
	return c
}

// newWirePair builds two servers with identical configuration over fresh
// accelerators (sharded when shards > 1): one fronted by HTTP/JSON, one
// by elpwire. The differential tests drive the same workload through
// both and require identical observable state.
func newWirePair(t *testing.T, shards int) (js *Server, ts *httptest.Server, ws *Server, wc *wire.Client) {
	t.Helper()
	build := func() *Server {
		cfg := Config{DisableWindow: true}
		if shards > 1 {
			sh, err := elp2im.NewShard(shards)
			if err != nil {
				t.Fatalf("NewShard(%d): %v", shards, err)
			}
			cfg.Shard = sh
		} else {
			acc, err := elp2im.New()
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			cfg.Accelerator = acc
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("server.New: %v", err)
		}
		return s
	}
	js = build()
	ts = httptest.NewServer(js.Handler())
	ws = build()
	wc = startWire(t, ws)
	t.Cleanup(func() {
		ts.Close()
		js.Drain()
		ws.Drain()
	})
	return js, ts, ws, wc
}

// wordsToBytes converts little-endian words to the byte order EncodeBits
// uses (bit i of the vector is bit i%8 of byte i/8 — the same layout,
// so a plain LE serialization matches).
func wordsToBytes(words []uint64, nbytes int) []byte {
	out := make([]byte, len(words)*8)
	for i, w := range words {
		binary.LittleEndian.PutUint64(out[i*8:], w)
	}
	return out[:nbytes]
}

// bytesToWords is the inverse, zero-padding the final partial word.
func bytesToWords(raw []byte) []uint64 {
	words := make([]uint64, (len(raw)+7)/8)
	var buf [8]byte
	for i := range words {
		n := copy(buf[:], raw[i*8:])
		for j := n; j < 8; j++ {
			buf[j] = 0
		}
		words[i] = binary.LittleEndian.Uint64(buf[:])
	}
	return words
}

// TestWireJSONEquivalence is the differential harness: the same workload
// — vector PUTs, every bitwise op, a reduction, an expression eval —
// driven through the HTTP/JSON path on one server and the elpwire path
// on an identically configured second server must leave bit-for-bit
// identical vectors, struct-equal modeled totals, and the same
// deterministic per-shard placement. Run at shard widths 1 and 4 so both
// the single-batcher and the sharded routing layers are pinned.
func TestWireJSONEquivalence(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			js, ts, ws, wc := newWirePair(t, shards)
			client := ts.Client()
			rng := rand.New(rand.NewSource(42))
			const nbytes = 512 // 4096 bits
			// Seed identical named vectors through both protocols.
			inputs := map[string][]byte{}
			for _, name := range []string{"a", "b", "c", "d"} {
				raw := make([]byte, nbytes)
				rng.Read(raw)
				inputs[name] = raw
				payload := VectorPayload{Bits: nbytes * 8, Data: base64.StdEncoding.EncodeToString(raw)}
				if code, _ := doJSON(t, client, http.MethodPut, ts.URL+"/v1/vectors/"+name, payload, nil); code != http.StatusOK {
					t.Fatalf("json PUT %s: status %d", name, code)
				}
				if err := wc.Put(name, nbytes*8, bytesToWords(raw)); err != nil {
					t.Fatalf("wire PUT %s: %v", name, err)
				}
			}
			// The same op sequence through both paths, collecting stats.
			ops := []struct {
				name string
				code uint8
				dst  string
				x, y string
			}{
				{"and", wire.BitAnd, "r_and", "a", "b"},
				{"or", wire.BitOr, "r_or", "a", "c"},
				{"xor", wire.BitXor, "r_xor", "b", "c"},
				{"nand", wire.BitNand, "r_nand", "a", "d"},
				{"nor", wire.BitNor, "r_nor", "b", "d"},
				{"xnor", wire.BitXnor, "r_xnor", "c", "d"},
				{"not", wire.BitNot, "r_not", "a", ""},
				{"copy", wire.BitCopy, "r_copy", "d", ""},
			}
			for _, op := range ops {
				var jr OpResponse
				body := OpRequest{Op: op.name, Dst: op.dst, X: op.x, Y: op.y}
				if code, _ := doJSON(t, client, http.MethodPost, ts.URL+"/v1/op", body, &jr); code != http.StatusOK {
					t.Fatalf("json op %s: status %d", op.name, code)
				}
				wst, err := wc.Op(op.code, 0, op.dst, op.x, op.y)
				if err != nil {
					t.Fatalf("wire op %s: %v", op.name, err)
				}
				if jr.Stats != statsJSON(wireToStats(wst)) {
					t.Fatalf("op %s stats diverge:\njson %+v\nwire %+v", op.name, jr.Stats, wst)
				}
			}
			var jr OpResponse
			if code, _ := doJSON(t, client, http.MethodPost, ts.URL+"/v1/reduce",
				ReduceRequest{Op: "and", Dst: "r_reduce", Srcs: []string{"a", "b", "c", "d"}}, &jr); code != http.StatusOK {
				t.Fatalf("json reduce: status %d", code)
			}
			wst, err := wc.Reduce(wire.BitAnd, 0, "r_reduce", []string{"a", "b", "c", "d"})
			if err != nil {
				t.Fatalf("wire reduce: %v", err)
			}
			if jr.Stats != statsJSON(wireToStats(wst)) {
				t.Fatalf("reduce stats diverge: json %+v wire %+v", jr.Stats, wst)
			}
			const evalExpr = "(a & b) | ~c"
			if code, _ := doJSON(t, client, http.MethodPost, ts.URL+"/v1/eval",
				EvalRequest{Expr: evalExpr, Dst: "r_eval"}, &jr); code != http.StatusOK {
				t.Fatalf("json eval: status %d", code)
			}
			wst, bits, err := wc.Eval(0, "r_eval", evalExpr)
			if err != nil {
				t.Fatalf("wire eval: %v", err)
			}
			if bits != nbytes*8 {
				t.Fatalf("wire eval bits = %d, want %d", bits, nbytes*8)
			}
			if jr.Stats != statsJSON(wireToStats(wst)) {
				t.Fatalf("eval stats diverge: json %+v wire %+v", jr.Stats, wst)
			}

			// Every stored vector must now be bit-for-bit identical across
			// the two servers, read back through each server's own protocol.
			names := []string{"a", "b", "c", "d"}
			for _, op := range ops {
				names = append(names, op.dst)
			}
			names = append(names, "r_reduce", "r_eval")
			for _, name := range names {
				jraw := fetchBytes(t, client, ts.URL, name)
				wbits, wpop, words, err := wc.Get(name, nil)
				if err != nil {
					t.Fatalf("wire GET %s: %v", name, err)
				}
				wraw := wordsToBytes(words, len(jraw))
				if wbits != len(jraw)*8 {
					t.Fatalf("%s: wire bits %d, json bytes %d", name, wbits, len(jraw))
				}
				if !bytesEqual(jraw, wraw) {
					t.Fatalf("%s: vectors diverge between protocols", name)
				}
				var pop uint64
				for _, w := range words {
					pop += uint64(popcount64(w))
				}
				if wpop != pop {
					t.Fatalf("%s: wire popcount %d, recomputed %d", name, wpop, pop)
				}
			}

			// Modeled totals are deterministic functions of the executed op
			// sequence: struct-equal across protocols.
			if js.Totals() != ws.Totals() {
				t.Fatalf("totals diverge:\njson %+v\nwire %+v", js.Totals(), ws.Totals())
			}
			// Per-shard deterministic stats agree (flush counts are timing-
			// dependent and excluded; placement and modeled busy time are not).
			jst, wsst := js.Stats(), ws.Stats()
			if jst.Totals != wsst.Totals {
				t.Fatalf("stats totals diverge:\njson %+v\nwire %+v", jst.Totals, wsst.Totals)
			}
			if jst.Server.Vectors != wsst.Server.Vectors || jst.Server.Shards != wsst.Server.Shards {
				t.Fatalf("server stats diverge:\njson %+v\nwire %+v", jst.Server, wsst.Server)
			}
			for i := range jst.Server.PerShard {
				jp, wp := jst.Server.PerShard[i], wsst.Server.PerShard[i]
				if jp.Vectors != wp.Vectors || jp.ModeledBusyNS != wp.ModeledBusyNS {
					t.Fatalf("shard %d diverges:\njson %+v\nwire %+v", i, jp, wp)
				}
			}
			// Identical error mapping: an op on a missing vector is 404 on
			// both paths, with the same message.
			var jerr ErrorResponse
			code, _ := doJSON(t, client, http.MethodPost, ts.URL+"/v1/op",
				OpRequest{Op: "and", Dst: "z", X: "nope", Y: "a"}, &jerr)
			if code != http.StatusNotFound {
				t.Fatalf("json missing operand: status %d", code)
			}
			_, werr := wc.Op(wire.BitAnd, 0, "z", "nope", "a")
			var se *wire.StatusError
			if !errors.As(werr, &se) || se.Code != wire.StatusNotFound {
				t.Fatalf("wire missing operand: %v", werr)
			}
			if se.Msg != jerr.Error {
				t.Fatalf("error messages diverge: json %q wire %q", jerr.Error, se.Msg)
			}
		})
	}
}

// bytesEqual avoids importing bytes for one comparison.
func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// popcount64 is a dependency-free popcount for the test.
func popcount64(w uint64) int {
	n := 0
	for ; w != 0; w &= w - 1 {
		n++
	}
	return n
}

// wireToStats converts a wire stats block back to the facade's shape for
// comparison against the JSON path.
func wireToStats(st wire.Stats) elp2im.Stats {
	return elp2im.Stats{
		LatencyNS:     st.LatencyNS,
		EnergyNJ:      st.EnergyNJ,
		AveragePowerW: st.AveragePowerW,
		RowOps:        int(st.RowOps),
		Commands:      int(st.Commands),
		Wordlines:     int(st.Wordlines),
	}
}

// TestWireStatsMatchesJSON pins that KindStats serves the exact payload
// /v1/stats serves — same marshaling, so the protocols cannot drift.
func TestWireStatsMatchesJSON(t *testing.T) {
	acc, err := elp2im.New()
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Accelerator: acc, DisableWindow: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Drain)
	wc := startWire(t, s)
	if err := wc.Put("v", 64, []uint64{7}); err != nil {
		t.Fatal(err)
	}
	raw, err := wc.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	var got StatsPayload
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("wire stats is not the JSON payload: %v", err)
	}
	want, err := json.Marshal(s.Stats())
	if err != nil {
		t.Fatal(err)
	}
	// The wire flush counters tick with every response write — including
	// the stats response itself — so they legitimately differ between the
	// two snapshots. Pin their presence but compare everything else
	// byte-for-byte (maps marshal with sorted keys on both sides).
	normalize := func(p []byte) string {
		t.Helper()
		var tree map[string]json.RawMessage
		if err := json.Unmarshal(p, &tree); err != nil {
			t.Fatalf("unmarshal payload: %v", err)
		}
		var srv map[string]json.RawMessage
		if err := json.Unmarshal(tree["server"], &srv); err != nil {
			t.Fatalf("unmarshal server section: %v", err)
		}
		for _, k := range []string{"wire_flushes", "wire_frames_per_flush"} {
			if _, ok := srv[k]; !ok {
				t.Fatalf("server section is missing %q", k)
			}
			srv[k] = json.RawMessage("0")
		}
		sb, err := json.Marshal(srv)
		if err != nil {
			t.Fatal(err)
		}
		tree["server"] = sb
		out, err := json.Marshal(tree)
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}
	if normalize(raw) != normalize(want) {
		t.Fatalf("wire stats bytes diverge from /v1/stats marshaling:\nwire %s\njson %s", raw, want)
	}
}

// TestWireErrorStatusContract pins the sentinel-error → wire-status
// mapping in one table, mirroring TestErrorStatusContract's HTTP table:
// the same error classes, the binary status codes, and the retry-after
// hint on the 503-class statuses.
func TestWireErrorStatusContract(t *testing.T) {
	cases := []struct {
		name    string
		err     error
		code    uint8
		retryMS uint32
	}{
		{"saturated", ErrSaturated, wire.StatusSaturated, wireRetryAfterMS},
		{"saturated wrapped", fmt.Errorf("admit: %w", ErrSaturated), wire.StatusSaturated, wireRetryAfterMS},
		{"draining", ErrDraining, wire.StatusDraining, wireRetryAfterMS},
		{"draining wrapped", fmt.Errorf("admit: %w", ErrDraining), wire.StatusDraining, wireRetryAfterMS},
		{"deadline", context.DeadlineExceeded, wire.StatusDeadline, 0},
		{"canceled", context.Canceled, wire.StatusCanceled, 0},
		{"unknown vector", fmt.Errorf("%w: %q", ErrUnknownVector, "v"), wire.StatusNotFound, 0},
		{"bad request", badRequestf("nope"), wire.StatusBadRequest, 0},
		{"malformed frame", wire.ErrMalformed, wire.StatusBadRequest, 0},
		{"bad expression", fmt.Errorf("eval: %w", elp2im.ErrBadExpr), wire.StatusBadRequest, 0},
		{"query unknown namespace", fmt.Errorf("%w %q", errUnknownNamespace, "t"), wire.StatusBadRequest, 0},
		{"query unknown index", fmt.Errorf("%w %q in namespace %q", errUnknownIndex, "nx", "t"), wire.StatusBadRequest, 0},
		{"query temp budget", fmt.Errorf("%w: too deep", errQueryBudget), wire.StatusBadRequest, 0},
		{"query bad cursor", fmt.Errorf("%w: cursor 9", errBadCursor), wire.StatusBadRequest, 0},
		{"internal", errors.New("disk on fire"), wire.StatusInternal, 0},
	}
	for _, tc := range cases {
		code, retry := wireStatusFor(tc.err)
		if code != tc.code || retry != tc.retryMS {
			t.Errorf("%s: wireStatusFor = (%s, %d), want (%s, %d)",
				tc.name, wire.StatusName(code), retry, wire.StatusName(tc.code), tc.retryMS)
		}
	}
}

// TestWireDrainingStatus drives the drain path end to end over the wire:
// after Drain, operations answer StatusDraining with the backoff hint,
// exactly as the HTTP path answers 503 + Retry-After.
func TestWireDrainingStatus(t *testing.T) {
	acc, err := elp2im.New()
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Accelerator: acc, DisableWindow: true})
	if err != nil {
		t.Fatal(err)
	}
	wc := startWire(t, s)
	if err := wc.Put("a", 64, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	if err := wc.Put("b", 64, []uint64{2}); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	_, err = wc.Op(wire.BitAnd, 0, "dst", "a", "b")
	var se *wire.StatusError
	if !errors.As(err, &se) {
		t.Fatalf("op after drain: %v (%T), want *StatusError", err, err)
	}
	if se.Code != wire.StatusDraining || se.RetryAfterMS != wireRetryAfterMS {
		t.Fatalf("op after drain: status %s retry %d, want draining/%d",
			wire.StatusName(se.Code), se.RetryAfterMS, wireRetryAfterMS)
	}
	// Reads still work while draining, like the HTTP path.
	if _, _, _, err := wc.Get("a", nil); err != nil {
		t.Fatalf("get after drain: %v", err)
	}
}

// TestWireDrainDeliversPendingResponses pins the graceful-shutdown
// contract with the response coalescer in play: every request admitted
// before Drain must settle with a real answer (OK or an in-band wire
// status), never a truncated stream, even when CloseWireConns runs while
// responses are still queued in per-connection flush queues. The
// batching window makes the admitted ops complete in a burst, so their
// responses coalesce right as shutdown begins.
func TestWireDrainDeliversPendingResponses(t *testing.T) {
	acc, err := elp2im.New()
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Accelerator: acc, Window: 2 * time.Millisecond, MaxBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan struct{})
	go func() {
		defer close(served)
		if err := s.ServeWire(ln); err != nil {
			t.Errorf("ServeWire: %v", err)
		}
	}()
	wc, err := wire.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	if err := wc.Put("a", 64, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	if err := wc.Put("b", 64, []uint64{2}); err != nil {
		t.Fatal(err)
	}

	const ops = 48
	results := make(chan error, ops)
	for i := 0; i < ops; i++ {
		go func(i int) {
			_, err := wc.Op(wire.BitAnd, 0, fmt.Sprintf("d%d", i), "a", "b")
			results <- err
		}(i)
	}
	// Wait until every op has been dispatched into the backend (the two
	// puts also count), so all of them are admitted before shutdown.
	deadline := time.Now().Add(5 * time.Second)
	for s.obs.wire.requests.Value() < ops+2 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests dispatched", s.obs.wire.requests.Value(), ops+2)
		}
		time.Sleep(time.Millisecond)
	}

	// Shutdown sequence, exactly as elpd runs it: drain, stop accepting,
	// then end the surviving connections.
	s.Drain()
	_ = ln.Close()
	<-served
	s.CloseWireConns()

	for i := 0; i < ops; i++ {
		err := <-results
		if err == nil {
			continue
		}
		var se *wire.StatusError
		if !errors.As(err, &se) {
			t.Fatalf("admitted op settled with transport error %v (%T), want OK or in-band status", err, err)
		}
	}
}

// TestWireEvalBadExpression drives a malformed expression end to end
// over the wire: compilation fails server-side (elp2im.ErrBadExpr) and
// the client sees bad_request — the binary twin of /v1/eval's 400 —
// never internal.
func TestWireEvalBadExpression(t *testing.T) {
	acc, err := elp2im.New()
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Accelerator: acc, DisableWindow: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Drain)
	wc := startWire(t, s)
	if err := wc.Put("wx", 64, []uint64{3}); err != nil {
		t.Fatal(err)
	}
	_, _, err = wc.Eval(0, "wr", "wx &")
	var se *wire.StatusError
	if !errors.As(err, &se) || se.Code != wire.StatusBadRequest {
		t.Fatalf("malformed expression over wire: %v, want bad_request", err)
	}
}

// TestWirePutValidation pins the PUT contract across the wire: tail bits
// beyond the declared length are rejected (the JSON DecodeBits rule),
// and an empty word payload stores an all-zero vector.
func TestWirePutValidation(t *testing.T) {
	acc, err := elp2im.New()
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Accelerator: acc, DisableWindow: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Drain)
	wc := startWire(t, s)
	// 65 bits → 2 words; word 1 may only use bit 0.
	err = wc.Put("bad", 65, []uint64{0, 2})
	var se *wire.StatusError
	if !errors.As(err, &se) || se.Code != wire.StatusBadRequest {
		t.Fatalf("tail-bit put: %v, want bad_request", err)
	}
	if err := wc.Put("ok", 65, []uint64{^uint64(0), 1}); err != nil {
		t.Fatalf("legal tail put: %v", err)
	}
	if err := wc.Put("zeros", 100, nil); err != nil {
		t.Fatalf("zero put: %v", err)
	}
	bits, pop, _, err := wc.Get("zeros", nil)
	if err != nil || bits != 100 || pop != 0 {
		t.Fatalf("zero vector readback: bits=%d pop=%d err=%v", bits, pop, err)
	}
}

// TestWireBitOpTable pins the wire op codes onto the same facade ops the
// JSON op names parse to — the cross-protocol contract that makes
// BitAnd mean "and" forever.
func TestWireBitOpTable(t *testing.T) {
	codes := map[string]uint8{
		"not": wire.BitNot, "and": wire.BitAnd, "or": wire.BitOr,
		"nand": wire.BitNand, "nor": wire.BitNor, "xor": wire.BitXor,
		"xnor": wire.BitXnor, "copy": wire.BitCopy,
	}
	for name, code := range codes {
		want, err := parseOp(name)
		if err != nil {
			t.Fatalf("parseOp(%q): %v", name, err)
		}
		got, ok := bitOpFor(code)
		if !ok || got != want {
			t.Errorf("wire code %d maps to %v, JSON %q maps to %v", code, got, name, want)
		}
	}
	if _, ok := bitOpFor(8); ok {
		t.Error("bitOpFor(8) accepted an out-of-range code")
	}
}

// TestShardOfMatchesFNV pins the inlined placement hash to hash/fnv:
// the two must agree byte-for-byte on every name, or vectors stored by
// an old server would be homed differently by a new one.
func TestShardOfMatchesFNV(t *testing.T) {
	names := []string{"", "a", "v0", "vector-with-a-long-name", "日本語", "x/y/z"}
	for i := 0; i < 100; i++ {
		names = append(names, fmt.Sprintf("client-%d-vec-%d", i%7, i))
	}
	for _, name := range names {
		h := fnv.New64a()
		_, _ = h.Write([]byte(name))
		if got, want := fnv64aString(name), h.Sum64(); got != want {
			t.Fatalf("fnv64aString(%q) = %d, hash/fnv = %d", name, got, want)
		}
	}
	st := NewStore(4)
	for _, name := range names {
		h := fnv.New64a()
		_, _ = h.Write([]byte(name))
		if got, want := st.shardOf(name), int(h.Sum64()%4); got != want {
			t.Fatalf("shardOf(%q) = %d, want %d", name, got, want)
		}
	}
}

// BenchmarkWireOp measures one op round trip over the elpwire path —
// the number bench.sh's Part 4 compares against BenchmarkJSONOp.
func BenchmarkWireOp(b *testing.B) {
	acc, err := elp2im.New()
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(Config{Accelerator: acc, DisableWindow: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Drain()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = s.ServeWire(ln) }()
	defer func() {
		_ = ln.Close()
		s.CloseWireConns()
	}()
	wc, err := wire.Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer wc.Close()
	words := make([]uint64, 64) // 4096 bits
	for i := range words {
		words[i] = uint64(i) * 0x9E3779B97F4A7C15
	}
	if err := wc.Put("x", 4096, words); err != nil {
		b.Fatal(err)
	}
	if err := wc.Put("y", 4096, words); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wc.Op(wire.BitAnd, 0, "dst", "x", "y"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJSONOp measures the same op round trip over the HTTP/JSON
// path, same server configuration, for the protocol comparison.
func BenchmarkJSONOp(b *testing.B) {
	acc, err := elp2im.New()
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(Config{Accelerator: acc, DisableWindow: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()
	raw := make([]byte, 512) // 4096 bits
	for i := range raw {
		raw[i] = byte(i)
	}
	payload, _ := json.Marshal(VectorPayload{Bits: 4096, Data: base64.StdEncoding.EncodeToString(raw)})
	for _, name := range []string{"x", "y"} {
		req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/vectors/"+name, bytes.NewReader(payload))
		resp, err := client.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("PUT %s: %d", name, resp.StatusCode)
		}
	}
	body, _ := json.Marshal(OpRequest{Op: "and", Dst: "dst", X: "x", Y: "y"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(ts.URL+"/v1/op", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("op: %d", resp.StatusCode)
		}
	}
}
