package server

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// Metric series of the serving layer, registered in the owning
// accelerator's (or, sharded, the Shard router's) observability context so
// they appear on the same Snapshot / ServeDebug surface as the acc.*,
// engine.* and pipeline.* series:
//
//	server.http.requests.<route>    counter   requests entering the route
//	server.http.errors.<route>      counter   non-2xx responses
//	server.http.latency_ns.<route>  histogram wall-clock handler latency
//	server.panics                   counter   recovered handler panics
//	server.evalcache.hit            counter   compiled-program cache hits
//	server.evalcache.miss           counter   compiled-program cache misses
//
// plus, per micro-batcher, the admission/batching series. A single-module
// server has one batcher and keeps the flat legacy names; a sharded server
// (Config.Shard) runs one independent batcher per shard and prefixes each
// shard's series with its index, so a hot shard's queue is visible on its
// own:
//
//	server.queue.depth              gauge     admission-queue depth
//	server.queue.max                gauge     configured admission bound
//	server.queue.rejected           counter   503s from admission control
//	server.deadline.expired         counter   504s (deadline while queued)
//	server.batch.flushes            counter   micro-batch flushes
//	server.batch.coalesced          counter   requests that rode a flush
//	server.batch.occupancy          histogram requests per flush
//	server.draining                 gauge     1 while draining
//	server.degraded                 gauge     1 when pipeline disabled
//	server.shard.<i>.queue.depth    gauge     shard i's admission-queue depth
//	server.shard.<i>.queue.max      gauge     shard i's admission bound
//	server.shard.<i>.queue.rejected counter   shard i's admission 503s
//	server.shard.<i>.deadline.expired counter shard i's 504s
//	server.shard.<i>.batch.flushes  counter   shard i's micro-batch flushes
//	server.shard.<i>.batch.coalesced counter  shard i's coalesced requests
//	server.shard.<i>.batch.occupancy histogram shard i's requests per flush
//	server.shard.<i>.draining       gauge     1 while shard i drains
//	server.shard.<i>.degraded       gauge     1 when shard i is synchronous
//
// Spans (with a tracer installed): every HTTP request emits one span
// named "http.<route>" in category "server", and every flush emits a
// "flush" span; a request that rode a flush shares the flush's sequence
// number as its TID, linking the HTTP request to its pipeline submission.

// routeNames are the metric keys of the HTTP routes, in registration
// order.
var routeNames = []string{
	"put_vector", "get_vector", "delete_vector", "list_vectors",
	"op", "reduce", "eval", "arith", "query", "stats", "health",
}

// routeSeries is one route's pre-resolved metric series.
type routeSeries struct {
	requests *obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
}

// serverMetrics bundles the serving layer's pre-resolved series: the
// HTTP-route series and panic counter shared by every handler, plus one
// batcherSeries per micro-batcher (one for a single-module server, one per
// shard for a sharded one), plus the wire listener's series.
type serverMetrics struct {
	ctx    *obs.Context
	routes map[string]*routeSeries
	panics *obs.Counter
	shards []*batcherSeries
	wire   wireSeries

	// Compiled-program cache series (see evalcache.go):
	//
	//	server.evalcache.hit   counter  compile skipped, cached program reused
	//	server.evalcache.miss  counter  compile executed and cached
	evalCacheHits   *obs.Counter
	evalCacheMisses *obs.Counter
}

// wireSeries is the elpwire listener's metric slice:
//
//	server.wire.connections       gauge      live wire connections
//	server.wire.requests          counter    wire requests dispatched
//	server.wire.errors            counter    wire requests answering non-OK
//	server.wire.flushes           counter    response write-path flushes (one writev each)
//	server.wire.frames_per_flush  histogram  response frames coalesced per flush
type wireSeries struct {
	connections    *obs.Gauge
	requests       *obs.Counter
	errors         *obs.Counter
	flushes        *obs.Counter
	framesPerFlush *obs.Histogram
}

// onFlush observes one response flush carrying n frames. It is handed to
// wire.ServerConfig.OnFlush, so it runs on every connection's flusher
// goroutine: counter and histogram writes only.
func (w *wireSeries) onFlush(n int) {
	w.flushes.Inc()
	w.framesPerFlush.Observe(float64(n))
}

// batcherSeries is one micro-batcher's admission/batching series. With a
// single batcher the names are the flat legacy server.* set; per-shard
// batchers register under server.shard.<i>.* so saturation, drain and
// occupancy are observable shard by shard.
type batcherSeries struct {
	ctx             *obs.Context
	queueDepth      *obs.Gauge
	queueMax        *obs.Gauge
	rejected        *obs.Counter
	deadlineExpired *obs.Counter
	flushes         *obs.Counter
	coalesced       *obs.Counter
	occupancy       *obs.Histogram
	draining        *obs.Gauge
	degraded        *obs.Gauge
}

// httpLatencyBuckets covers wall-clock handler latency: 16 buckets from
// 10 µs to ~9.3 s (batch waits under load sit in the middle decades).
func httpLatencyBuckets() []float64 { return obs.ExpBuckets(10_000, 2.5, 16) }

// occupancyBuckets covers requests-per-flush: 1, 2, 4, ... 1024.
func occupancyBuckets() []float64 { return obs.ExpBuckets(1, 2, 11) }

// newServerMetrics resolves every serving-layer series in ctx, with one
// batcherSeries per shard (shards == 1 keeps the legacy flat names).
func newServerMetrics(ctx *obs.Context, shards int) *serverMetrics {
	m := ctx.Metrics
	sm := &serverMetrics{
		ctx:    ctx,
		routes: make(map[string]*routeSeries, len(routeNames)),
		panics: m.Counter("server.panics"),
		shards: make([]*batcherSeries, shards),
		wire: wireSeries{
			connections:    m.Gauge("server.wire.connections"),
			requests:       m.Counter("server.wire.requests"),
			errors:         m.Counter("server.wire.errors"),
			flushes:        m.Counter("server.wire.flushes"),
			framesPerFlush: m.Histogram("server.wire.frames_per_flush", occupancyBuckets()),
		},
		evalCacheHits:   m.Counter("server.evalcache.hit"),
		evalCacheMisses: m.Counter("server.evalcache.miss"),
	}
	for i := range sm.shards {
		prefix := "server."
		if shards > 1 {
			prefix = fmt.Sprintf("server.shard.%d.", i)
		}
		sm.shards[i] = newBatcherSeries(ctx, prefix)
	}
	for _, name := range routeNames {
		sm.routes[name] = &routeSeries{
			requests: m.Counter("server.http.requests." + name),
			errors:   m.Counter("server.http.errors." + name),
			latency:  m.Histogram("server.http.latency_ns."+name, httpLatencyBuckets()),
		}
	}
	return sm
}

// newBatcherSeries resolves one batcher's series under the given name
// prefix ("server." or "server.shard.<i>.").
func newBatcherSeries(ctx *obs.Context, prefix string) *batcherSeries {
	m := ctx.Metrics
	return &batcherSeries{
		ctx:             ctx,
		queueDepth:      m.Gauge(prefix + "queue.depth"),
		queueMax:        m.Gauge(prefix + "queue.max"),
		rejected:        m.Counter(prefix + "queue.rejected"),
		deadlineExpired: m.Counter(prefix + "deadline.expired"),
		flushes:         m.Counter(prefix + "batch.flushes"),
		coalesced:       m.Counter(prefix + "batch.coalesced"),
		occupancy:       m.Histogram(prefix+"batch.occupancy", occupancyBuckets()),
		draining:        m.Gauge(prefix + "draining"),
		degraded:        m.Gauge(prefix + "degraded"),
	}
}

// route returns the named route's series (panics on an unregistered name,
// which would be a programming error caught by any test touching the
// route).
func (sm *serverMetrics) route(name string) *routeSeries {
	rs, ok := sm.routes[name]
	if !ok {
		panic("server: unregistered route " + name)
	}
	return rs
}

// requestSpan emits the HTTP-request span when tracing is on. flushID is
// the micro-batch sequence number the request rode (0 for requests that
// never reached a flush), which the flush span shares as its TID.
func (sm *serverMetrics) requestSpan(startNS int64, route, op string, flushID int64, err error) {
	if startNS == 0 {
		return
	}
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	sm.ctx.Span(obs.SpanEvent{
		Name:    "http." + route,
		Cat:     "server",
		TID:     flushID,
		StartNS: startNS,
		DurNS:   time.Now().UnixNano() - startNS,
		Op:      op,
		Err:     msg,
	})
}

// flushSpan emits one micro-batch flush's span when tracing is on.
func (bs *batcherSeries) flushSpan(startNS int64, flushID int64, occupancy int, err error) {
	if startNS == 0 {
		return
	}
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	bs.ctx.Span(obs.SpanEvent{
		Name:    "flush",
		Cat:     "server",
		TID:     flushID,
		StartNS: startNS,
		DurNS:   time.Now().UnixNano() - startNS,
		Stripes: occupancy,
		Err:     msg,
	})
}
