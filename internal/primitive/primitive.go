// Package primitive defines the DRAM command primitives the reproduced
// designs are built from (Table 1 of the paper plus the Ambit and DRISA
// command types), and computes their latency, activation counts and energy
// from the timing and power models.
package primitive

import (
	"fmt"

	"repro/internal/power"
	"repro/internal/timing"
)

// Kind identifies a command primitive.
type Kind int

// Primitives of ELP2IM (Table 1), plus the baselines' command types.
const (
	// AP is a regular Activate-Precharge access (49 ns @ DDR3-1600).
	AP Kind = iota
	// AAP is RowClone's Activate-Activate-Precharge copy (84 ns).
	AAP
	// OAAP is the overlapped AAP enabled by a separate row decoder (53 ns).
	OAAP
	// APP is Activate-PseudoPrecharge-Precharge (67 ns) — the primitive
	// that regulates the bitline with the shifted SA supply.
	APP
	// OAPP overlaps the pseudo-precharge with the precharge using the
	// row-buffer-decoupling isolation transistor (53 ns).
	OAPP
	// TAPP trims the restore phase from APP for dead intermediate
	// values (46 ns).
	TAPP
	// OTAPP is both trimmed and overlapped (32 ns); it appears inside the
	// optimized XOR sequences 5 and 6 of Figure 8.
	OTAPP
	// APPM is the merged copy + pseudo-precharge of Figure 8 sequence 6:
	// activate the source, overlap-activate a reserved-row copy target,
	// then pseudo-precharge and finally precharge.
	APPM
	// OAPPM is APPM with the precharge overlapped into the pseudo state
	// (isolation transistor) — the 57 ns primitive that makes sequence 6's
	// ~297 ns total.
	OAPPM
	// TRAAP is Ambit's Triple-Row-Activate + precharge. Its duration
	// equals AP but it raises three wordlines.
	TRAAP
	// TRAAAP is Ambit's fused command: a triple-row activation whose
	// result is then copied to another row by an overlapped second
	// activate (the 4th AAP of an Ambit AND). Duration of OAAP, but the
	// first activate raises three wordlines.
	TRAAAP
	// NORCYCLE is one DRISA NOR-gate compute cycle: activate the operand
	// rows through the gate, latch, drive the result into the destination
	// row, precharge.
	NORCYCLE
)

// String returns the primitive mnemonic as used in the paper.
func (k Kind) String() string {
	switch k {
	case AP:
		return "AP"
	case AAP:
		return "AAP"
	case OAAP:
		return "oAAP"
	case APP:
		return "APP"
	case OAPP:
		return "oAPP"
	case TAPP:
		return "tAPP"
	case OTAPP:
		return "otAPP"
	case APPM:
		return "APPm"
	case OAPPM:
		return "oAPPm"
	case TRAAP:
		return "TRA-AP"
	case TRAAAP:
		return "TRA-AAP"
	case NORCYCLE:
		return "NOR"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Duration returns the primitive latency in ns under the timing parameters.
// With the DDR3-1600 calibration these are exactly the Table 1 values.
func (k Kind) Duration(p timing.Params) float64 {
	tras := p.TRAS()
	trp := p.TRP()
	tpp := p.PseudoPrecharge()
	switch k {
	case AP:
		return tras + trp
	case AAP:
		return 2*tras + trp
	case OAAP:
		return tras + p.OverlapActivate + trp
	case APP:
		return tras + tpp + trp
	case OAPP:
		return tras + tpp // precharge overlapped with pseudo-precharge
	case TAPP:
		return p.AccessSense + tpp + trp // restore trimmed
	case OTAPP:
		return p.AccessSense + tpp // trimmed and overlapped
	case APPM:
		return tras + p.OverlapActivate + tpp + trp
	case OAPPM:
		return tras + p.OverlapActivate + tpp // precharge overlapped
	case TRAAP:
		return tras + trp
	case TRAAAP:
		return tras + p.OverlapActivate + trp
	case NORCYCLE:
		// Activate the operand pair through the NOR gate, drive the result
		// into the destination row (a second overlapped activate driven by
		// the result latch), then precharge — plus the gate delay itself.
		return tras + p.OverlapActivate + trp + 7.0
	default:
		panic(fmt.Sprintf("primitive: unknown kind %d", int(k)))
	}
}

// ActivateEvents returns the number of separate activation events the
// primitive issues (for tFAW window accounting each event is stamped at
// the primitive's issue time).
func (k Kind) ActivateEvents() int {
	switch k {
	case AP, APP, OAPP, TAPP, OTAPP, TRAAP:
		return 1
	case AAP, OAAP, APPM, OAPPM, TRAAAP, NORCYCLE:
		return 2
	default:
		panic(fmt.Sprintf("primitive: unknown kind %d", int(k)))
	}
}

// Wordlines returns the total number of wordlines the primitive raises,
// which is what the charge pump must supply (TRA raises 3 at once).
func (k Kind) Wordlines() int {
	switch k {
	case AP, APP, OAPP, TAPP, OTAPP:
		return 1
	case AAP, OAAP, APPM, OAPPM, NORCYCLE:
		return 2
	case TRAAP:
		return 3
	case TRAAAP:
		return 4 // TRA (3) + the overlapped copy activate (1)
	default:
		panic(fmt.Sprintf("primitive: unknown kind %d", int(k)))
	}
}

// IsPseudo reports whether the primitive contains a pseudo-precharge state
// (and therefore pays the +31% activate-power surcharge).
func (k Kind) IsPseudo() bool {
	switch k {
	case APP, OAPP, TAPP, OTAPP, APPM, OAPPM:
		return true
	default:
		return false
	}
}

// Energy returns the primitive's dynamic energy in nJ under the power
// parameters (background energy is added at the sequence level, since it
// accrues with wall-clock time).
func (k Kind) Energy(pp power.Params) float64 {
	var t power.Tally
	switch k {
	case AP:
		t.AddActivate(pp, 1, false)
		t.AddPrecharge(pp, false)
	case AAP, OAAP:
		t.AddActivate(pp, 1, false)
		t.AddActivate(pp, 1, false)
		t.AddPrecharge(pp, false)
	case APP, TAPP:
		t.AddActivate(pp, 1, true)
		t.AddPrecharge(pp, true)
		t.AddPrecharge(pp, false)
	case OAPP, OTAPP:
		t.AddActivate(pp, 1, true)
		t.AddPrecharge(pp, true) // precharge overlapped into the pseudo state
	case APPM:
		t.AddActivate(pp, 1, true)
		t.AddActivate(pp, 1, false) // the overlapped copy activate
		t.AddPrecharge(pp, true)
		t.AddPrecharge(pp, false)
	case OAPPM:
		t.AddActivate(pp, 1, true)
		t.AddActivate(pp, 1, false)
		t.AddPrecharge(pp, true)
	case TRAAP:
		t.AddActivate(pp, 3, false)
		t.AddPrecharge(pp, false)
	case TRAAAP:
		t.AddActivate(pp, 3, false)
		t.AddActivate(pp, 1, false)
		t.AddPrecharge(pp, false)
	case NORCYCLE:
		t.AddActivate(pp, 1, false)
		t.AddActivate(pp, 1, false)
		t.AddPrecharge(pp, false)
		t.AddGate(pp, 1)
	default:
		panic(fmt.Sprintf("primitive: unknown kind %d", int(k)))
	}
	return t.DynamicEnergy()
}

// Step is one primitive applied to concrete rows. The semantics of the
// row fields follow the paper's prmt([dst],src) notation: Src is the row
// the (first) activate opens; Dst is the row a second activate opens
// (copy/merge target), -1 if unused. Aux carries TRA's third row.
type Step struct {
	Kind Kind
	// Src is the first activated row (the source being read/regulated).
	Src int
	// SrcNegated selects the negated wordline of a dual-contact source.
	SrcNegated bool
	// Dst is the second activated row, or -1 when the primitive opens a
	// single row.
	Dst int
	// DstNegated selects the negated wordline of a dual-contact target.
	DstNegated bool
	// Aux2, Aux3 are TRA's second and third rows (TRAAP/TRAAAP only).
	Aux2, Aux3 int
	// Mode selects the pseudo-precharge retain mode for APP-class steps:
	// true retains zeros (AND), false retains ones (OR).
	RetainZeros bool
}

// String renders the step in the paper's command notation.
func (s Step) String() string {
	switch s.Kind {
	case AP, APP, OAPP, TAPP, OTAPP:
		return fmt.Sprintf("%s(%s)", s.Kind, rowName(s.Src, s.SrcNegated))
	case TRAAP:
		return fmt.Sprintf("%s(%d,%d,%d)", s.Kind, s.Src, s.Aux2, s.Aux3)
	case TRAAAP:
		return fmt.Sprintf("%s([%s],%d,%d,%d)", s.Kind, rowName(s.Dst, s.DstNegated), s.Src, s.Aux2, s.Aux3)
	default:
		return fmt.Sprintf("%s([%s],%s)", s.Kind, rowName(s.Dst, s.DstNegated), rowName(s.Src, s.SrcNegated))
	}
}

func rowName(r int, negated bool) string {
	if negated {
		return fmt.Sprintf("~%d", r)
	}
	return fmt.Sprintf("%d", r)
}

// Seq is an ordered primitive sequence implementing one logic operation.
type Seq []Step

// Duration returns the total latency of the sequence in ns.
func (q Seq) Duration(p timing.Params) float64 {
	total := 0.0
	for _, s := range q {
		total += s.Kind.Duration(p)
	}
	return total
}

// Energy returns the total dynamic energy of the sequence in nJ.
func (q Seq) Energy(pp power.Params) float64 {
	total := 0.0
	for _, s := range q {
		total += s.Kind.Energy(pp)
	}
	return total
}

// Wordlines returns the total wordlines raised across the sequence.
func (q Seq) Wordlines() int {
	total := 0
	for _, s := range q {
		total += s.Kind.Wordlines()
	}
	return total
}

// ActivateEvents returns the total activation events across the sequence.
func (q Seq) ActivateEvents() int {
	total := 0
	for _, s := range q {
		total += s.Kind.ActivateEvents()
	}
	return total
}

// MaxWordlinesPerEvent returns the largest simultaneous wordline count of
// any single activation in the sequence (3 for anything containing a TRA) —
// the quantity that stresses the charge pump.
func (q Seq) MaxWordlinesPerEvent() int {
	m := 0
	for _, s := range q {
		per := 1
		switch s.Kind {
		case TRAAP, TRAAAP:
			per = 3
		}
		if per > m {
			m = per
		}
	}
	return m
}

// String renders the sequence as "prim(...) prim(...) ...".
func (q Seq) String() string {
	out := ""
	for i, s := range q {
		if i > 0 {
			out += " "
		}
		out += s.String()
	}
	return out
}
