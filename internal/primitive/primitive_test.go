package primitive

import (
	"math"
	"strings"
	"testing"

	"repro/internal/power"
	"repro/internal/timing"
)

// TestTable1Latencies pins the primitive latencies to Table 1 of the paper.
func TestTable1Latencies(t *testing.T) {
	p := timing.DDR31600()
	want := map[Kind]float64{
		AP:   49,
		AAP:  84,
		OAAP: 53,
		APP:  67.2,
		OAPP: 53.2,
		TAPP: 46.2,
	}
	for k, w := range want {
		if got := k.Duration(p); math.Abs(got-w) > 0.5 {
			t.Errorf("%v duration = %v ns, want ~%v (Table 1)", k, got, w)
		}
	}
}

func TestOAPPSavesAbout21Percent(t *testing.T) {
	// §4.2.1: oAPP saves ~21% versus a regular APP.
	p := timing.DDR31600()
	saving := 1 - OAPP.Duration(p)/APP.Duration(p)
	if saving < 0.18 || saving > 0.24 {
		t.Errorf("oAPP saving = %.1f%%, want ~21%%", saving*100)
	}
}

func TestTAPPSavesAbout31Percent(t *testing.T) {
	// §4.2.2: tAPP saves ~31% versus a regular APP.
	p := timing.DDR31600()
	saving := 1 - TAPP.Duration(p)/APP.Duration(p)
	if saving < 0.28 || saving > 0.34 {
		t.Errorf("tAPP saving = %.1f%%, want ~31%%", saving*100)
	}
}

func TestAPPAPSequenceAbout18PercentLonger(t *testing.T) {
	// §3.3: the two-cycle APP-AP is only ~18% longer than AP-AP.
	p := timing.DDR31600()
	appap := APP.Duration(p) + AP.Duration(p)
	apap := 2 * AP.Duration(p)
	excess := appap/apap - 1
	if excess < 0.15 || excess > 0.21 {
		t.Errorf("APP-AP is %.1f%% longer than AP-AP, want ~18%%", excess*100)
	}
}

func TestOAAPOnly4nsLongerThanAP(t *testing.T) {
	// §2.2.1: oAAP is only 4 ns longer than AP.
	p := timing.DDR31600()
	if got := OAAP.Duration(p) - AP.Duration(p); math.Abs(got-4) > 1e-9 {
		t.Errorf("oAAP - AP = %v ns, want 4", got)
	}
}

func TestTimingMonotonicity(t *testing.T) {
	// Overlapping and trimming can only shorten a primitive.
	p := timing.DDR31600()
	if OAPP.Duration(p) > APP.Duration(p) {
		t.Error("oAPP must not exceed APP")
	}
	if TAPP.Duration(p) > APP.Duration(p) {
		t.Error("tAPP must not exceed APP")
	}
	if OTAPP.Duration(p) > TAPP.Duration(p) || OTAPP.Duration(p) > OAPP.Duration(p) {
		t.Error("otAPP must not exceed tAPP or oAPP")
	}
	if OAAP.Duration(p) > AAP.Duration(p) {
		t.Error("oAAP must not exceed AAP")
	}
}

func TestWordlineCounts(t *testing.T) {
	want := map[Kind]int{
		AP: 1, APP: 1, OAPP: 1, TAPP: 1, OTAPP: 1,
		AAP: 2, OAAP: 2, NORCYCLE: 2,
		TRAAP: 3, TRAAAP: 4,
	}
	for k, w := range want {
		if got := k.Wordlines(); got != w {
			t.Errorf("%v wordlines = %d, want %d", k, got, w)
		}
	}
}

func TestActivateEvents(t *testing.T) {
	want := map[Kind]int{
		AP: 1, APP: 1, OAPP: 1, TAPP: 1, OTAPP: 1, TRAAP: 1,
		AAP: 2, OAAP: 2, TRAAAP: 2, NORCYCLE: 2,
	}
	for k, w := range want {
		if got := k.ActivateEvents(); got != w {
			t.Errorf("%v activate events = %d, want %d", k, got, w)
		}
	}
}

func TestIsPseudo(t *testing.T) {
	for _, k := range []Kind{APP, OAPP, TAPP, OTAPP} {
		if !k.IsPseudo() {
			t.Errorf("%v must be pseudo", k)
		}
	}
	for _, k := range []Kind{AP, AAP, OAAP, TRAAP, TRAAAP, NORCYCLE} {
		if k.IsPseudo() {
			t.Errorf("%v must not be pseudo", k)
		}
	}
}

func TestEnergyOrdering(t *testing.T) {
	pp := power.DDR31600()
	// A TRA costs more than a regular activate-precharge.
	if TRAAP.Energy(pp) <= AP.Energy(pp) {
		t.Error("TRA-AP energy must exceed AP")
	}
	// An APP pays the +31% surcharge over AP's activate.
	if APP.Energy(pp) <= AP.Energy(pp) {
		t.Error("APP energy must exceed AP")
	}
	// A double-activate AAP costs more than a single-activate AP.
	if AAP.Energy(pp) <= AP.Energy(pp) {
		t.Error("AAP energy must exceed AP")
	}
}

func TestAPPPowerSurchargeMatchesPaper(t *testing.T) {
	// §6.2: "the activate power of APP increases by ~31% compared to the
	// regular AP primitive" — checked at the activate-energy level.
	pp := power.DDR31600()
	got := pp.PseudoActivateEnergy() / pp.ActivateEnergy
	if math.Abs(got-1.31) > 1e-9 {
		t.Errorf("APP activate surcharge = %v, want 1.31", got)
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		AP: "AP", AAP: "AAP", OAAP: "oAAP", APP: "APP", OAPP: "oAPP",
		TAPP: "tAPP", OTAPP: "otAPP", TRAAP: "TRA-AP", TRAAAP: "TRA-AAP",
		NORCYCLE: "NOR",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind string = %q, want %q", k.String(), s)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind must render")
	}
}

func TestUnknownKindPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Kind(99).Duration(timing.DDR31600()) },
		func() { Kind(99).Wordlines() },
		func() { Kind(99).ActivateEvents() },
		func() { Kind(99).Energy(power.DDR31600()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("unknown kind did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestSeqAggregation(t *testing.T) {
	p := timing.DDR31600()
	pp := power.DDR31600()
	q := Seq{
		{Kind: OAAP, Src: 1, Dst: 10},
		{Kind: APP, Src: 2},
		{Kind: OAAP, Src: 10, Dst: 3},
	}
	wantDur := OAAP.Duration(p) + APP.Duration(p) + OAAP.Duration(p)
	if got := q.Duration(p); math.Abs(got-wantDur) > 1e-9 {
		t.Errorf("seq duration = %v, want %v", got, wantDur)
	}
	if got := q.Wordlines(); got != 5 {
		t.Errorf("seq wordlines = %d, want 5", got)
	}
	if got := q.ActivateEvents(); got != 5 {
		t.Errorf("seq activate events = %d, want 5", got)
	}
	wantE := 2*OAAP.Energy(pp) + APP.Energy(pp)
	if got := q.Energy(pp); math.Abs(got-wantE) > 1e-9 {
		t.Errorf("seq energy = %v, want %v", got, wantE)
	}
}

func TestMaxWordlinesPerEvent(t *testing.T) {
	q := Seq{{Kind: OAAP}, {Kind: APP}}
	if q.MaxWordlinesPerEvent() != 1 {
		t.Error("non-TRA sequence peak must be 1 wordline per event")
	}
	q = append(q, Step{Kind: TRAAAP})
	if q.MaxWordlinesPerEvent() != 3 {
		t.Error("TRA sequence peak must be 3 wordlines per event")
	}
}

func TestStepString(t *testing.T) {
	cases := []struct {
		step Step
		want string
	}{
		{Step{Kind: AP, Src: 5}, "AP(5)"},
		{Step{Kind: APP, Src: 7}, "APP(7)"},
		{Step{Kind: OAAP, Src: 1, Dst: 9}, "oAAP([9],1)"},
		{Step{Kind: OAAP, Src: 1, Dst: 9, DstNegated: true}, "oAAP([~9],1)"},
		{Step{Kind: AAP, Src: 2, SrcNegated: true, Dst: 3}, "AAP([3],~2)"},
		{Step{Kind: TRAAP, Src: 1, Aux2: 2, Aux3: 3}, "TRA-AP(1,2,3)"},
		{Step{Kind: TRAAAP, Src: 1, Aux2: 2, Aux3: 3, Dst: 8}, "TRA-AAP([8],1,2,3)"},
	}
	for _, tc := range cases {
		if got := tc.step.String(); got != tc.want {
			t.Errorf("step string = %q, want %q", got, tc.want)
		}
	}
}

func TestSeqString(t *testing.T) {
	q := Seq{{Kind: APP, Src: 1}, {Kind: AP, Src: 2}}
	s := q.String()
	if !strings.Contains(s, "APP(1)") || !strings.Contains(s, "AP(2)") {
		t.Errorf("seq string = %q", s)
	}
}

func TestMergedPrimitives(t *testing.T) {
	p := timing.DDR31600()
	pp := power.DDR31600()
	// The merged copy + pseudo-precharge of sequence 6: two activations,
	// two wordlines, pseudo.
	for _, k := range []Kind{APPM, OAPPM} {
		if k.Wordlines() != 2 || k.ActivateEvents() != 2 {
			t.Errorf("%v must raise 2 wordlines in 2 events", k)
		}
		if !k.IsPseudo() {
			t.Errorf("%v must be pseudo", k)
		}
		if k.Energy(pp) <= OAPP.Energy(pp) {
			t.Errorf("%v energy must exceed the single-activation oAPP", k)
		}
	}
	// oAPPm = 35 + 4 + 18.2 = 57.2 ns — the primitive that makes
	// sequence 6's ~297 ns.
	if got := OAPPM.Duration(p); math.Abs(got-57.2) > 0.1 {
		t.Errorf("oAPPm duration = %v, want 57.2", got)
	}
	if OAPPM.Duration(p) >= APPM.Duration(p) {
		t.Error("overlapping must shorten APPm")
	}
	if APPM.String() != "APPm" || OAPPM.String() != "oAPPm" {
		t.Error("merged primitive names wrong")
	}
}
