package cnn

import (
	"errors"
	"fmt"

	"repro/internal/engine"
	"repro/internal/primitive"
	"repro/internal/timing"
)

// Design is the engine surface the accelerator models need.
type Design interface {
	engine.Engine
	// CompoundOverheadFactor scales compound-expression command sequences
	// for engines whose pipelines cannot merge commands (DRISA: >1).
	CompoundOverheadFactor() float64
}

// AccelConfig describes the in-DRAM accelerator fabric. Both case studies
// run without the power constraint (§6.3.3: "we do not set the limitation
// of power constraint in the simulation" — accelerators may strengthen
// the power delivery at some density cost).
type AccelConfig struct {
	// Lanes is the number of bit lanes computing in parallel across the
	// module (banks × concurrently commanded subarrays × row width).
	Lanes int
	// CopyBitsPerNS is the internal data-movement bandwidth for staging
	// weights and moving activations between layers (row-copy rate
	// aggregated over banks).
	CopyBitsPerNS float64
	// Timing is the DRAM timing parameter set.
	Timing timing.Params
}

// DefaultAccel returns the calibration used for Tables 2 and 3: 8 banks ×
// 4 concurrently commanded subarrays × 8K columns = 32K lanes; row-copy
// movement at 8192 bits / 53 ns per bank across 8 banks.
func DefaultAccel() AccelConfig {
	return AccelConfig{
		Lanes:         32768,
		CopyBitsPerNS: 8 * 8192 / 53.0,
		Timing:        timing.DDR31600(),
	}
}

// Validate reports whether the configuration is usable.
func (c AccelConfig) Validate() error {
	if c.Lanes <= 0 {
		return errors.New("cnn: Lanes must be positive")
	}
	if c.CopyBitsPerNS <= 0 {
		return errors.New("cnn: CopyBitsPerNS must be positive")
	}
	return c.Timing.Validate()
}

// avgBasicLatency returns the mean three-operand latency across the seven
// Figure 12 operations — the design's "logic work rate" used to scale
// Dracc's fixed command budget.
func avgBasicLatency(d Design) float64 {
	total := 0.0
	ops := engine.BasicOps()
	for _, op := range ops {
		total += d.OpStats(op).LatencyNS
	}
	return total / float64(len(ops))
}

// Dracc's addition: "there are only 13 commands (including two new
// propagation and shift commands, which cannot be optimized) for the
// addition operation" — ~630 ns at the 49 ns cycle (§2.2.3). The two
// fixed commands are AP-class; the remaining 11 are the optimizable logic
// core, which each design executes at its own logic rate.
const (
	draccFixedCommands = 2
	draccLogicCommands = 11
)

// DraccAddNS returns the per-lane-slice latency of one Dracc addition on
// the given design. ambitRef anchors the command budget: the 11-command
// core takes 11 × tRC on Ambit, and other designs scale it by their
// relative logic rate and compound-overhead factor.
func DraccAddNS(d, ambitRef Design, tp timing.Params) float64 {
	fixed := float64(draccFixedCommands) * primitive.AP.Duration(tp)
	core := float64(draccLogicCommands) * primitive.AP.Duration(tp)
	scale := avgBasicLatency(d) / avgBasicLatency(ambitRef)
	return fixed + core*scale*d.CompoundOverheadFactor()
}

// NID's kernels: per binary MAC, one row-wide XOR plus one half-adder
// step (XOR + AND) of the count reduction tree — "it decomposes the count
// operation into minimum number of AND and XOR operations".
func nidMACNS(d Design, tp timing.Params) float64 {
	xor := d.OpStats(engine.OpXOR).LatencyNS
	ha := (d.OpStats(engine.OpXOR).LatencyNS + d.OpStats(engine.OpAND).LatencyNS) *
		d.CompoundOverheadFactor()
	_ = tp
	return xor + ha
}

// Result is one network × design cell of Table 2 or 3.
type Result struct {
	// Network and Design name the cell.
	Network, Design string
	// ComputeNS is the in-DRAM arithmetic time per frame.
	ComputeNS float64
	// MovementNS is the staging/data-movement time per frame.
	MovementNS float64
	// FrameNS is the total per-frame latency.
	FrameNS float64
	// FPS is frames per second.
	FPS float64
}

// ImprovementOver returns the FPS ratio of r over the baseline.
func (r Result) ImprovementOver(base Result) float64 { return r.FPS / base.FPS }

// computeSlices returns the number of sequential lane-wide compute slices
// a network needs: per layer, its MACs are spread over the lanes with
// ceil-granularity (small layers underutilize the fabric).
func computeSlices(n Network, lanes int) float64 {
	total := 0.0
	for _, l := range n.Layers {
		m := l.MACs()
		if m <= 0 {
			continue
		}
		slices := int(m) / lanes
		if int(m)%lanes != 0 {
			slices++
		}
		total += float64(slices)
	}
	return total
}

// RunDracc evaluates one network on the Dracc accelerator realized with
// the given design (Table 2). Ternary weights cost 2 bits, partial sums
// 16; each MAC is one in-DRAM addition.
func RunDracc(n Network, d, ambitRef Design, cfg AccelConfig) (Result, error) {
	if err := n.Validate(); err != nil {
		return Result{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	add := DraccAddNS(d, ambitRef, cfg.Timing)
	compute := computeSlices(n, cfg.Lanes) * add
	movement := (n.Weights()*2 + n.Activations()*16) / cfg.CopyBitsPerNS
	frame := compute + movement
	return Result{
		Network: n.Name, Design: d.Name(),
		ComputeNS: compute, MovementNS: movement,
		FrameNS: frame, FPS: 1e9 / frame,
	}, nil
}

// RunNID evaluates one network on the NID binary-CNN accelerator realized
// with the given design (Table 3). Binary weights and activations cost
// one bit each; each MAC is one XOR plus one half-adder count step.
func RunNID(n Network, d Design, cfg AccelConfig) (Result, error) {
	if err := n.Validate(); err != nil {
		return Result{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	mac := nidMACNS(d, cfg.Timing)
	compute := computeSlices(n, cfg.Lanes) * mac
	movement := (n.Weights() + n.Activations()) / cfg.CopyBitsPerNS
	frame := compute + movement
	return Result{
		Network: n.Name, Design: d.Name(),
		ComputeNS: compute, MovementNS: movement,
		FrameNS: frame, FPS: 1e9 / frame,
	}, nil
}

// LayerCost is one layer's share of a frame.
type LayerCost struct {
	// Name is the layer name.
	Name string
	// MACs is the layer's multiply-accumulate count.
	MACs float64
	// Slices is the number of sequential lane-wide compute slices.
	Slices int
	// ComputeNS is the layer's in-DRAM arithmetic time.
	ComputeNS float64
	// Utilization is MACs / (Slices × Lanes) — how full the fabric is.
	Utilization float64
}

// DraccBreakdown returns the per-layer frame cost of a network on the
// Dracc accelerator — where the time goes, and which layers underutilize
// the lane fabric.
func DraccBreakdown(n Network, d, ambitRef Design, cfg AccelConfig) ([]LayerCost, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	add := DraccAddNS(d, ambitRef, cfg.Timing)
	var out []LayerCost
	for _, l := range n.Layers {
		m := l.MACs()
		if m <= 0 {
			continue
		}
		slices := int(m) / cfg.Lanes
		if int(m)%cfg.Lanes != 0 {
			slices++
		}
		out = append(out, LayerCost{
			Name:        l.Name,
			MACs:        m,
			Slices:      slices,
			ComputeNS:   float64(slices) * add,
			Utilization: m / (float64(slices) * float64(cfg.Lanes)),
		})
	}
	return out, nil
}

// TableRow is one network's row: FPS per design plus improvements over
// the Ambit baseline.
type TableRow struct {
	Network                       string
	AmbitFPS, ELP2IMFPS, DrisaFPS float64
	ELP2IMImprovement             float64
	DrisaImprovement              float64
}

// runner abstracts RunDracc/RunNID for the table builders.
type runner func(n Network, d Design) (Result, error)

func buildTable(nets []Network, ambitD, elpimD, drisaD Design, run runner) ([]TableRow, error) {
	rows := make([]TableRow, 0, len(nets))
	for _, n := range nets {
		ra, err := run(n, ambitD)
		if err != nil {
			return nil, fmt.Errorf("cnn: %s on %s: %w", n.Name, ambitD.Name(), err)
		}
		re, err := run(n, elpimD)
		if err != nil {
			return nil, fmt.Errorf("cnn: %s on %s: %w", n.Name, elpimD.Name(), err)
		}
		rd, err := run(n, drisaD)
		if err != nil {
			return nil, fmt.Errorf("cnn: %s on %s: %w", n.Name, drisaD.Name(), err)
		}
		rows = append(rows, TableRow{
			Network:           n.Name,
			AmbitFPS:          ra.FPS,
			ELP2IMFPS:         re.FPS,
			DrisaFPS:          rd.FPS,
			ELP2IMImprovement: re.ImprovementOver(ra),
			DrisaImprovement:  rd.ImprovementOver(ra),
		})
	}
	return rows, nil
}

// Table2 reproduces Table 2: Dracc on the three designs.
func Table2(ambitD, elpimD, drisaD Design, cfg AccelConfig) ([]TableRow, error) {
	return buildTable(DraccNetworks(), ambitD, elpimD, drisaD,
		func(n Network, d Design) (Result, error) { return RunDracc(n, d, ambitD, cfg) })
}

// Table3 reproduces Table 3: NID on the three designs.
func Table3(ambitD, elpimD, drisaD Design, cfg AccelConfig) ([]TableRow, error) {
	return buildTable(NIDNetworks(), ambitD, elpimD, drisaD,
		func(n Network, d Design) (Result, error) { return RunNID(n, d, cfg) })
}
