package cnn

import (
	"math"
	"testing"

	"repro/internal/ambit"
	"repro/internal/drisa"
	"repro/internal/elpim"
)

func accelDesigns(t *testing.T) (ambitD, elpimD, drisaD Design) {
	t.Helper()
	// Accelerator configurations use two reserved rows for ELP2IM (§6.3:
	// "we construct ELP2IM with two reserved rows").
	ecfg := elpim.DefaultConfig()
	ecfg.ReservedRows = 2
	return ambit.MustNew(ambit.DefaultConfig()),
		elpim.MustNew(ecfg),
		drisa.MustNew(drisa.DefaultConfig())
}

func TestNetworksValidate(t *testing.T) {
	for _, n := range append(DraccNetworks(), NIDNetworks()...) {
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", n.Name, err)
		}
	}
}

// TestMACCountsNearPublished pins each network's total MACs to the
// published values within 10%.
func TestMACCountsNearPublished(t *testing.T) {
	want := map[string]float64{
		"Lenet5":   0.42e6,
		"Cifar10":  12.3e6,
		"Alexnet":  0.72e9,
		"VGG16":    15.5e9,
		"VGG19":    19.6e9,
		"Resnet18": 1.82e9,
		"Resnet34": 3.67e9,
		"Resnet50": 4.1e9,
	}
	nets := map[string]Network{}
	for _, n := range append(DraccNetworks(), NIDNetworks()...) {
		nets[n.Name] = n
	}
	for name, w := range want {
		n, ok := nets[name]
		if !ok {
			t.Fatalf("network %s missing", name)
		}
		got := n.MACs()
		if math.Abs(got-w)/w > 0.10 {
			t.Errorf("%s MACs = %.3g, want %.3g ±10%%", name, got, w)
		}
	}
}

func TestWeightCountsNearPublished(t *testing.T) {
	want := map[string]float64{
		"Alexnet":  61e6,
		"VGG16":    138e6,
		"Resnet50": 25.5e6,
	}
	nets := map[string]Network{}
	for _, n := range append(DraccNetworks(), NIDNetworks()...) {
		nets[n.Name] = n
	}
	for name, w := range want {
		got := nets[name].Weights()
		if math.Abs(got-w)/w > 0.10 {
			t.Errorf("%s weights = %.3g, want %.3g ±10%%", name, got, w)
		}
	}
}

func TestLayerGeometry(t *testing.T) {
	l := Layer{Kind: Conv, InC: 3, InH: 227, InW: 227, OutC: 96, K: 11, Stride: 4}
	if l.OutH() != 55 || l.OutW() != 55 {
		t.Errorf("AlexNet conv1 output = %dx%d, want 55x55", l.OutH(), l.OutW())
	}
	if got := l.MACs(); got != 55*55*96*11*11*3 {
		t.Errorf("conv MACs = %v", got)
	}
	if got := l.Weights(); got != 96*11*11*3 {
		t.Errorf("conv weights = %v", got)
	}
}

func TestLayerValidate(t *testing.T) {
	bad := []Layer{
		{Kind: Conv, Name: "x"},                                                   // no geometry
		{Kind: FC, Name: "y", InF: 0, OutF: 10},                                   // empty fc
		{Kind: Conv, Name: "z", InC: 1, InH: 2, InW: 2, OutC: 1, K: 5, Stride: 1}, // empty output
		{Kind: LayerKind(9), Name: "w"},                                           // unknown kind
	}
	for _, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("invalid layer %q accepted", l.Name)
		}
	}
	if err := (Network{Name: "empty"}).Validate(); err == nil {
		t.Error("empty network accepted")
	}
}

func TestDraccAddLatencyAnchor(t *testing.T) {
	// §2.2.3: the 13-command Dracc ADD takes ~630 ns on the Ambit
	// approach (13 × 49 ns cycles).
	a, e, d := accelDesigns(t)
	cfg := DefaultAccel()
	ambitAdd := DraccAddNS(a, a, cfg.Timing)
	if math.Abs(ambitAdd-637) > 5 {
		t.Errorf("Ambit Dracc ADD = %v ns, want ~637 (13 × 49)", ambitAdd)
	}
	elpAdd := DraccAddNS(e, a, cfg.Timing)
	if elpAdd >= ambitAdd {
		t.Errorf("ELP2IM ADD (%v) must beat Ambit (%v)", elpAdd, ambitAdd)
	}
	drAdd := DraccAddNS(d, a, cfg.Timing)
	if drAdd <= ambitAdd {
		t.Errorf("Drisa ADD (%v) must be slower than Ambit (%v)", drAdd, ambitAdd)
	}
}

func TestTable2ImprovementBands(t *testing.T) {
	// Table 2: ELP2IM improves Dracc FPS by 1.08–1.14×; Drisa_nor loses
	// ~31% (0.65–0.79×). Bands widened slightly for model tolerance.
	a, e, d := accelDesigns(t)
	rows, err := Table2(a, e, d, DefaultAccel())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("Table 2 rows = %d, want 5", len(rows))
	}
	for _, r := range rows {
		if r.ELP2IMImprovement < 1.03 || r.ELP2IMImprovement > 1.25 {
			t.Errorf("%s: ELP2IM improvement = %.3f, want within [1.03, 1.25] (paper: 1.08–1.14)",
				r.Network, r.ELP2IMImprovement)
		}
		if r.DrisaImprovement < 0.60 || r.DrisaImprovement > 0.90 {
			t.Errorf("%s: Drisa improvement = %.3f, want within [0.60, 0.90] (paper: 0.65–0.79)",
				r.Network, r.DrisaImprovement)
		}
	}
}

func TestTable3ImprovementBands(t *testing.T) {
	// Table 3: ELP2IM improves NID FPS by 1.11–1.32×; Drisa loses 0.73–0.91×.
	a, e, d := accelDesigns(t)
	rows, err := Table3(a, e, d, DefaultAccel())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("Table 3 rows = %d, want 5", len(rows))
	}
	for _, r := range rows {
		if r.ELP2IMImprovement < 1.08 || r.ELP2IMImprovement > 1.40 {
			t.Errorf("%s: ELP2IM improvement = %.3f, want within [1.08, 1.40] (paper: 1.11–1.32)",
				r.Network, r.ELP2IMImprovement)
		}
		if r.DrisaImprovement < 0.55 || r.DrisaImprovement > 0.95 {
			t.Errorf("%s: Drisa improvement = %.3f, want within [0.55, 0.95] (paper: 0.73–0.91)",
				r.Network, r.DrisaImprovement)
		}
	}
}

func TestNIDGainExceedsDraccGain(t *testing.T) {
	// §6.3.3: the count-heavy NID kernels give ELP2IM more optimization
	// space than Dracc's fixed 13-command add (avg 1.26× vs 1.12×).
	a, e, d := accelDesigns(t)
	t2, err := Table2(a, e, d, DefaultAccel())
	if err != nil {
		t.Fatal(err)
	}
	t3, err := Table3(a, e, d, DefaultAccel())
	if err != nil {
		t.Fatal(err)
	}
	avg := func(rows []TableRow) float64 {
		s := 0.0
		for _, r := range rows {
			s += r.ELP2IMImprovement
		}
		return s / float64(len(rows))
	}
	if avg(t3) <= avg(t2) {
		t.Errorf("NID avg improvement %.3f must exceed Dracc's %.3f", avg(t3), avg(t2))
	}
}

func TestFPSOrderingByNetworkSize(t *testing.T) {
	a, e, d := accelDesigns(t)
	t2, err := Table2(a, e, d, DefaultAccel())
	if err != nil {
		t.Fatal(err)
	}
	// Lenet5 > Cifar10 > Alexnet > VGG16 > VGG19 in FPS for every design.
	for i := 1; i < len(t2); i++ {
		if t2[i].ELP2IMFPS >= t2[i-1].ELP2IMFPS {
			t.Errorf("Table 2 FPS not decreasing: %s %.3g !< %s %.3g",
				t2[i].Network, t2[i].ELP2IMFPS, t2[i-1].Network, t2[i-1].ELP2IMFPS)
		}
	}
	t3, err := Table3(a, e, d, DefaultAccel())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(t3); i++ {
		if t3[i].AmbitFPS >= t3[i-1].AmbitFPS {
			t.Errorf("Table 3 FPS not decreasing: %s vs %s", t3[i].Network, t3[i-1].Network)
		}
	}
}

func TestRunErrors(t *testing.T) {
	a, e, _ := accelDesigns(t)
	if _, err := RunDracc(Network{}, e, a, DefaultAccel()); err == nil {
		t.Error("empty network accepted")
	}
	if _, err := RunDracc(LeNet5(), e, a, AccelConfig{}); err == nil {
		t.Error("invalid accel config accepted")
	}
	if _, err := RunNID(Network{}, e, DefaultAccel()); err == nil {
		t.Error("empty network accepted by NID")
	}
	if err := (AccelConfig{Lanes: 1, CopyBitsPerNS: 0}).Validate(); err == nil {
		t.Error("zero movement bandwidth accepted")
	}
}

func TestComputeSlicesCeiling(t *testing.T) {
	n := Network{Name: "tiny", Layers: []Layer{
		fc("a", 10, 10),  // 100 MACs → 1 slice
		fc("b", 100, 11), // 1100 MACs → 2 slices at 1000 lanes
	}}
	if got := computeSlices(n, 1000); got != 3 {
		t.Errorf("slices = %v, want 3", got)
	}
}

func TestDraccBreakdown(t *testing.T) {
	a, e, _ := accelDesigns(t)
	cfg := DefaultAccel()
	layers, err := DraccBreakdown(LeNet5(), e, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(layers) == 0 {
		t.Fatal("no layers")
	}
	var total float64
	for _, l := range layers {
		if l.Slices <= 0 || l.ComputeNS <= 0 {
			t.Fatalf("layer %s has empty cost", l.Name)
		}
		if l.Utilization <= 0 || l.Utilization > 1 {
			t.Fatalf("layer %s utilization %v outside (0,1]", l.Name, l.Utilization)
		}
		total += l.ComputeNS
	}
	// The breakdown must sum to the whole-network compute time.
	r, err := RunDracc(LeNet5(), e, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-r.ComputeNS) > 1e-6*r.ComputeNS {
		t.Fatalf("breakdown sums to %v, RunDracc computes %v", total, r.ComputeNS)
	}
	// Pool layers (no MACs) are excluded.
	for _, l := range layers {
		if l.MACs == 0 {
			t.Fatalf("zero-MAC layer %s included", l.Name)
		}
	}
	if _, err := DraccBreakdown(Network{}, e, a, cfg); err == nil {
		t.Error("empty network accepted")
	}
	if _, err := DraccBreakdown(LeNet5(), e, a, AccelConfig{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestSmallLayersUnderutilize(t *testing.T) {
	// LeNet's tiny FC layers must show low fabric utilization — the
	// mechanism behind small networks' sublinear FPS.
	a, e, _ := accelDesigns(t)
	layers, err := DraccBreakdown(LeNet5(), e, a, DefaultAccel())
	if err != nil {
		t.Fatal(err)
	}
	var fc3 *LayerCost
	for i := range layers {
		if layers[i].Name == "fc3" {
			fc3 = &layers[i]
		}
	}
	if fc3 == nil {
		t.Fatal("fc3 missing")
	}
	if fc3.Utilization > 0.1 {
		t.Fatalf("fc3 utilization %v, expected tiny (840 MACs on a 32K-lane fabric)", fc3.Utilization)
	}
}
