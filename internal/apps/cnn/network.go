// Package cnn implements the CNN-accelerator case studies of §6.3.3:
// Dracc (ternary-weight networks executed as in-DRAM additions, Table 2)
// and NID (binary networks executed as in-DRAM XOR + count, Table 3),
// each realized on top of the three bitwise engines.
package cnn

import (
	"errors"
	"fmt"
)

// LayerKind distinguishes the layer cost models.
type LayerKind int

const (
	// Conv is a 2D convolution.
	Conv LayerKind = iota
	// FC is a fully connected layer.
	FC
	// Pool is a pooling layer (handled by the peripheral units in both
	// accelerators; no in-DRAM arithmetic, but its output feeds the next
	// layer's data movement).
	Pool
)

// Layer is one network layer with enough geometry to derive op counts.
type Layer struct {
	Name string
	Kind LayerKind

	// Convolution / pooling geometry.
	InC, InH, InW int
	OutC          int
	K             int // kernel size (K×K)
	Stride        int
	Pad           int
	// Groups splits a convolution into independent channel groups
	// (AlexNet's two-tower layers). Zero means 1.
	Groups int

	// Fully connected geometry.
	InF, OutF int
}

// OutH returns the output height of a conv/pool layer.
func (l Layer) OutH() int { return (l.InH+2*l.Pad-l.K)/l.Stride + 1 }

// OutW returns the output width of a conv/pool layer.
func (l Layer) OutW() int { return (l.InW+2*l.Pad-l.K)/l.Stride + 1 }

// groups returns the effective group count.
func (l Layer) groups() float64 {
	if l.Groups > 1 {
		return float64(l.Groups)
	}
	return 1
}

// MACs returns the multiply-accumulate count of the layer.
func (l Layer) MACs() float64 {
	switch l.Kind {
	case Conv:
		return float64(l.OutH()) * float64(l.OutW()) * float64(l.OutC) *
			float64(l.K) * float64(l.K) * float64(l.InC) / l.groups()
	case FC:
		return float64(l.InF) * float64(l.OutF)
	default:
		return 0
	}
}

// Weights returns the layer's weight count.
func (l Layer) Weights() float64 {
	switch l.Kind {
	case Conv:
		return float64(l.OutC) * float64(l.K) * float64(l.K) * float64(l.InC) / l.groups()
	case FC:
		return float64(l.InF) * float64(l.OutF)
	default:
		return 0
	}
}

// Outputs returns the layer's output element count.
func (l Layer) Outputs() float64 {
	switch l.Kind {
	case Conv, Pool:
		return float64(l.OutH()) * float64(l.OutW()) * float64(l.OutC)
	case FC:
		return float64(l.OutF)
	default:
		return 0
	}
}

// Validate reports whether the layer geometry is consistent.
func (l Layer) Validate() error {
	switch l.Kind {
	case Conv, Pool:
		if l.InC <= 0 || l.InH <= 0 || l.InW <= 0 || l.K <= 0 || l.Stride <= 0 {
			return fmt.Errorf("cnn: layer %q has non-positive geometry", l.Name)
		}
		if l.Kind == Conv && l.OutC <= 0 {
			return fmt.Errorf("cnn: conv layer %q needs OutC", l.Name)
		}
		if l.OutH() <= 0 || l.OutW() <= 0 {
			return fmt.Errorf("cnn: layer %q has empty output", l.Name)
		}
	case FC:
		if l.InF <= 0 || l.OutF <= 0 {
			return fmt.Errorf("cnn: fc layer %q needs positive dims", l.Name)
		}
	default:
		return fmt.Errorf("cnn: layer %q has unknown kind", l.Name)
	}
	return nil
}

// Network is a named stack of layers.
type Network struct {
	Name   string
	Layers []Layer
}

// Validate reports whether every layer is consistent.
func (n Network) Validate() error {
	if len(n.Layers) == 0 {
		return errors.New("cnn: network has no layers")
	}
	for _, l := range n.Layers {
		if err := l.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// MACs returns the network's total multiply-accumulates per frame.
func (n Network) MACs() float64 {
	total := 0.0
	for _, l := range n.Layers {
		total += l.MACs()
	}
	return total
}

// Weights returns the network's total weight count.
func (n Network) Weights() float64 {
	total := 0.0
	for _, l := range n.Layers {
		total += l.Weights()
	}
	return total
}

// Activations returns the total output element count across layers (the
// inter-layer data movement volume).
func (n Network) Activations() float64 {
	total := 0.0
	for _, l := range n.Layers {
		total += l.Outputs()
	}
	return total
}

func conv(name string, inC, inH, inW, outC, k, stride, pad int) Layer {
	return Layer{Name: name, Kind: Conv, InC: inC, InH: inH, InW: inW,
		OutC: outC, K: k, Stride: stride, Pad: pad}
}

func pool(name string, c, inH, inW, k, stride int) Layer {
	return Layer{Name: name, Kind: Pool, InC: c, InH: inH, InW: inW,
		OutC: c, K: k, Stride: stride}
}

func fc(name string, in, out int) Layer {
	return Layer{Name: name, Kind: FC, InF: in, OutF: out}
}

// LeNet5 returns the classic 5-layer LeNet (MNIST).
func LeNet5() Network {
	return Network{Name: "Lenet5", Layers: []Layer{
		conv("conv1", 1, 32, 32, 6, 5, 1, 0),
		pool("pool1", 6, 28, 28, 2, 2),
		conv("conv2", 6, 14, 14, 16, 5, 1, 0),
		pool("pool2", 16, 10, 10, 2, 2),
		fc("fc1", 400, 120),
		fc("fc2", 120, 84),
		fc("fc3", 84, 10),
	}}
}

// Cifar10 returns the CIFAR-10 "quick" reference network.
func Cifar10() Network {
	return Network{Name: "Cifar10", Layers: []Layer{
		conv("conv1", 3, 32, 32, 32, 5, 1, 2),
		pool("pool1", 32, 32, 32, 2, 2),
		conv("conv2", 32, 16, 16, 32, 5, 1, 2),
		pool("pool2", 32, 16, 16, 2, 2),
		conv("conv3", 32, 8, 8, 64, 5, 1, 2),
		pool("pool3", 64, 8, 8, 2, 2),
		fc("fc1", 1024, 64),
		fc("fc2", 64, 10),
	}}
}

// AlexNet returns AlexNet (ImageNet), with the original two-tower grouped
// convolutions on conv2/conv4/conv5.
func AlexNet() Network {
	grouped := func(name string, inC, inH, inW, outC, k, stride, pad int) Layer {
		l := conv(name, inC, inH, inW, outC, k, stride, pad)
		l.Groups = 2
		return l
	}
	return Network{Name: "Alexnet", Layers: []Layer{
		conv("conv1", 3, 227, 227, 96, 11, 4, 0),
		pool("pool1", 96, 55, 55, 3, 2),
		grouped("conv2", 96, 27, 27, 256, 5, 1, 2),
		pool("pool2", 256, 27, 27, 3, 2),
		conv("conv3", 256, 13, 13, 384, 3, 1, 1),
		grouped("conv4", 384, 13, 13, 384, 3, 1, 1),
		grouped("conv5", 384, 13, 13, 256, 3, 1, 1),
		pool("pool5", 256, 13, 13, 3, 2),
		fc("fc6", 9216, 4096),
		fc("fc7", 4096, 4096),
		fc("fc8", 4096, 1000),
	}}
}

// vggBlock appends n 3×3 convolutions at the given width plus a pool.
func vggBlock(layers []Layer, stage string, n, inC, outC, hw int) []Layer {
	c := inC
	for i := 0; i < n; i++ {
		layers = append(layers, conv(fmt.Sprintf("conv%s_%d", stage, i+1), c, hw, hw, outC, 3, 1, 1))
		c = outC
	}
	return append(layers, pool("pool"+stage, outC, hw, hw, 2, 2))
}

func vgg(name string, blocks [5]int) Network {
	var ls []Layer
	ls = vggBlock(ls, "1", blocks[0], 3, 64, 224)
	ls = vggBlock(ls, "2", blocks[1], 64, 128, 112)
	ls = vggBlock(ls, "3", blocks[2], 128, 256, 56)
	ls = vggBlock(ls, "4", blocks[3], 256, 512, 28)
	ls = vggBlock(ls, "5", blocks[4], 512, 512, 14)
	ls = append(ls,
		fc("fc6", 512*7*7, 4096),
		fc("fc7", 4096, 4096),
		fc("fc8", 4096, 1000),
	)
	return Network{Name: name, Layers: ls}
}

// VGG16 returns the 16-layer VGG configuration D.
func VGG16() Network { return vgg("VGG16", [5]int{2, 2, 3, 3, 3}) }

// VGG19 returns the 19-layer VGG configuration E.
func VGG19() Network { return vgg("VGG19", [5]int{2, 2, 4, 4, 4}) }

// basicBlock appends a ResNet basic block (two 3×3 convs); the first conv
// optionally downsamples, with a projection shortcut.
func basicBlock(layers []Layer, name string, inC, outC, hw, stride int) ([]Layer, int) {
	outHW := hw / stride
	layers = append(layers,
		conv(name+"_a", inC, hw, hw, outC, 3, stride, 1),
		conv(name+"_b", outC, outHW, outHW, outC, 3, 1, 1),
	)
	if stride != 1 || inC != outC {
		layers = append(layers, conv(name+"_proj", inC, hw, hw, outC, 1, stride, 0))
	}
	return layers, outHW
}

// bottleneck appends a ResNet bottleneck block (1×1, 3×3, 1×1).
func bottleneck(layers []Layer, name string, inC, midC, hw, stride int) ([]Layer, int) {
	outC := midC * 4
	outHW := hw / stride
	layers = append(layers,
		conv(name+"_a", inC, hw, hw, midC, 1, 1, 0),
		conv(name+"_b", midC, hw, hw, midC, 3, stride, 1),
		conv(name+"_c", midC, outHW, outHW, outC, 1, 1, 0),
	)
	if stride != 1 || inC != outC {
		layers = append(layers, conv(name+"_proj", inC, hw, hw, outC, 1, stride, 0))
	}
	return layers, outHW
}

func resnetStem() []Layer {
	return []Layer{
		conv("conv1", 3, 224, 224, 64, 7, 2, 3),
		pool("pool1", 64, 112, 112, 2, 2),
	}
}

func resnetBasic(name string, blocks [4]int) Network {
	ls := resnetStem()
	hw := 56
	inC := 64
	for stage, n := range blocks {
		outC := 64 << uint(stage)
		for b := 0; b < n; b++ {
			stride := 1
			if stage > 0 && b == 0 {
				stride = 2
			}
			ls, hw = basicBlock(ls, fmt.Sprintf("s%d_b%d", stage+2, b), inC, outC, hw, stride)
			inC = outC
		}
	}
	ls = append(ls, fc("fc", 512, 1000))
	return Network{Name: name, Layers: ls}
}

// ResNet18 returns ResNet-18.
func ResNet18() Network { return resnetBasic("Resnet18", [4]int{2, 2, 2, 2}) }

// ResNet34 returns ResNet-34.
func ResNet34() Network { return resnetBasic("Resnet34", [4]int{3, 4, 6, 3}) }

// ResNet50 returns ResNet-50 (bottleneck blocks).
func ResNet50() Network {
	ls := resnetStem()
	hw := 56
	inC := 64
	for stage, n := range [4]int{3, 4, 6, 3} {
		midC := 64 << uint(stage)
		for b := 0; b < n; b++ {
			stride := 1
			if stage > 0 && b == 0 {
				stride = 2
			}
			ls, hw = bottleneck(ls, fmt.Sprintf("s%d_b%d", stage+2, b), inC, midC, hw, stride)
			inC = midC * 4
		}
	}
	ls = append(ls, fc("fc", 2048, 1000))
	return Network{Name: "Resnet50", Layers: ls}
}

// DraccNetworks returns the Table 2 suite.
func DraccNetworks() []Network {
	return []Network{LeNet5(), Cifar10(), AlexNet(), VGG16(), VGG19()}
}

// NIDNetworks returns the Table 3 suite.
func NIDNetworks() []Network {
	return []Network{LeNet5(), AlexNet(), ResNet18(), ResNet34(), ResNet50()}
}
