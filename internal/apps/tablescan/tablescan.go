// Package tablescan implements the BitWeaving table-scan case study of
// §6.3.2 (Figure 14): evaluating the predicate `col < C` over a column of
// k-bit codes stored vertically (bit i of every tuple in one DRAM row),
// so one row-wide bitwise op processes one bit position of thousands of
// tuples at once.
//
// The bit-serial LESS-THAN against the constant C maintains two
// accumulators across bit positions, from MSB to LSB:
//
//	lt |= eq AND NOT a_i   (only where C_i = 1)
//	eq &= (C_i = 1 ?  a_i : NOT a_i)
//
// The bulk bitwise part runs in DRAM; the match count runs on the CPU.
// Table scans live in capacity-sensitive commodity modules, so the power
// constraint is enforced (the paper's light-modified regime).
package tablescan

import (
	"errors"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/primitive"
	"repro/internal/sched"
	"repro/internal/timing"
)

// Workload describes one scan.
type Workload struct {
	// Tuples is the number of table rows scanned.
	Tuples int
	// Width is k, the column code width in bits.
	Width int
	// Constant is the comparison constant C (uses the low Width bits).
	Constant uint64
}

// Default returns the workload at the paper's scale: 64M tuples, with the
// width swept by the Figure 14 harness.
func Default(width int) Workload {
	return Workload{Tuples: 64 << 20, Width: width, Constant: lowHalfOnes(width)}
}

// lowHalfOnes returns a constant with alternating bits — the average case
// for the predicate's per-bit op mix.
func lowHalfOnes(width int) uint64 {
	var c uint64
	for i := 0; i < width; i += 2 {
		c |= 1 << uint(i)
	}
	return c
}

// Validate reports whether the workload is usable.
func (w Workload) Validate() error {
	if w.Tuples <= 0 {
		return errors.New("tablescan: Tuples must be positive")
	}
	if w.Width < 1 || w.Width > 64 {
		return errors.New("tablescan: Width must be in [1,64]")
	}
	return nil
}

// ConstBit returns bit i (0 = LSB) of the comparison constant.
func (w Workload) ConstBit(i int) bool { return w.Constant>>uint(i)&1 == 1 }

// Design is the PIM-engine surface the scan needs: three-operand, chained
// and complement-fold command sequences.
type Design interface {
	engine.Engine
	Seq(op engine.Op) primitive.Seq
	ChainSeq(op engine.Op) (primitive.Seq, error)
	// NotChainSeq folds the complement of an operand into a resident
	// accumulator (acc = acc op ¬src).
	NotChainSeq(op engine.Op) (primitive.Seq, error)
}

// predicateSeq builds the full per-stripe command sequence of the
// bit-serial LESS-THAN (all Width bit positions).
func predicateSeq(w Workload, d Design) (primitive.Seq, error) {
	andChain, err := d.ChainSeq(engine.OpAND)
	if err != nil {
		return nil, fmt.Errorf("tablescan: %w", err)
	}
	orChain, err := d.ChainSeq(engine.OpOR)
	if err != nil {
		return nil, fmt.Errorf("tablescan: %w", err)
	}
	notAndChain, err := d.NotChainSeq(engine.OpAND)
	if err != nil {
		return nil, fmt.Errorf("tablescan: %w", err)
	}
	var seq primitive.Seq
	for i := w.Width - 1; i >= 0; i-- {
		if w.ConstBit(i) {
			// t = NOT a_i; t &= eq; lt |= t; eq &= a_i
			seq = append(seq, d.Seq(engine.OpNOT)...)
			seq = append(seq, andChain...)
			seq = append(seq, orChain...)
			seq = append(seq, andChain...)
		} else {
			// eq &= NOT a_i — one complement fold.
			seq = append(seq, notAndChain...)
		}
	}
	return seq, nil
}

// Result summarizes one configuration's scan.
type Result struct {
	// Name is the design name (or "CPU").
	Name string
	// Width is the code width scanned.
	Width int
	// DeviceNS is the in-DRAM predicate time.
	DeviceNS float64
	// CountNS is the CPU count time.
	CountNS float64
	// SystemNS is the end-to-end scan time.
	SystemNS float64
	// TuplesPerSec is the system scan throughput.
	TuplesPerSec float64
	// PredicateLatencyNS is the per-stripe predicate latency (Figure
	// 14(b)'s latency aspect).
	PredicateLatencyNS float64
	// EffectiveBanks is the bank parallelism achieved under the power
	// constraint.
	EffectiveBanks float64
	// ReservedRows is the design's reserved space (Figure 14(c)).
	ReservedRows int
}

// SpeedupOver returns the throughput improvement of r over base.
func (r Result) SpeedupOver(base Result) float64 {
	return base.SystemNS / r.SystemNS
}

// Run evaluates the LESS-THAN scan (the Figure 14 configuration) on a PIM
// design under the power constraint.
func Run(w Workload, d Design, mod dram.Config, tp timing.Params, m cpu.Model) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	if err := mod.Validate(); err != nil {
		return Result{}, err
	}
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	seq, err := predicateSeq(w, d)
	if err != nil {
		return Result{}, err
	}
	return runWithSeq(w, d, seq, mod, tp, m)
}

// runWithSeq prices an assembled per-stripe predicate sequence.
func runWithSeq(w Workload, d Design, seq primitive.Seq, mod dram.Config, tp timing.Params, m cpu.Model) (Result, error) {
	latency := seq.Duration(tp)
	stripes := (w.Tuples + mod.Columns - 1) / mod.Columns

	// The width sweep re-prices many predicate profiles against one module
	// config; the process-wide scheduler memo amortizes the simulations.
	profile := sched.ProfileFromSeq(seq, tp)
	res, err := sched.CachedSimulate(profile, sched.Config{
		Banks:            mod.Banks,
		Timing:           tp,
		PowerConstrained: true,
	}, 1_000_000)
	if err != nil {
		return Result{}, fmt.Errorf("tablescan: %w", err)
	}
	if res.EffectiveBanks <= 0 {
		return Result{}, errors.New("tablescan: scheduler reported zero parallelism")
	}

	deviceNS := float64(stripes) * latency / res.EffectiveBanks
	countNS := countPhaseNS(w, m)
	system := deviceNS + countNS
	return Result{
		Name:               d.Name(),
		Width:              w.Width,
		DeviceNS:           deviceNS,
		CountNS:            countNS,
		SystemNS:           system,
		TuplesPerSec:       float64(w.Tuples) / system * 1e9,
		PredicateLatencyNS: latency,
		EffectiveBanks:     res.EffectiveBanks,
		ReservedRows:       d.ReservedRows(),
	}, nil
}

// aggCyclesPerTuple is the scalar per-match aggregation work of the count
// phase (COUNT(*) bookkeeping beyond the popcount itself).
const aggCyclesPerTuple = 0.5

// countPhaseNS models the CPU count phase shared by all configurations:
// popcount the result bitmap plus per-tuple aggregation.
func countPhaseNS(w Workload, m cpu.Model) float64 {
	agg := float64(w.Tuples) * aggCyclesPerTuple / (m.FreqGHz * float64(m.Cores))
	return m.PopcountNS(w.Tuples) + agg
}

// RunCPU evaluates the BitWeaving scan on the CPU baseline: per bit
// position it streams one N-bit column and updates the lt/eq accumulator
// bitmaps. At the paper's table sizes the accumulators do not fit in
// cache, so each bit position moves ~4 memory streams (column read, eq
// read+write, lt read-modify-write on average every other bit).
func RunCPU(w Workload, m cpu.Model) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	bytesPerCol := float64(w.Tuples) / 8
	traffic := bytesPerCol * 4 * float64(w.Width) / m.BandwidthGBps
	// ~3 SIMD ops per bit position over the column.
	compute := bytesPerCol * 3 * float64(w.Width) /
		(m.SIMDBytesPerCycle * m.FreqGHz * float64(m.Cores))
	scan := traffic
	if compute > scan {
		scan = compute
	}
	countNS := countPhaseNS(w, m)
	system := scan + countNS
	return Result{
		Name:         "CPU",
		Width:        w.Width,
		DeviceNS:     scan,
		CountNS:      countNS,
		SystemNS:     system,
		TuplesPerSec: float64(w.Tuples) / system * 1e9,
	}, nil
}
