package tablescan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ambit"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/drisa"
	"repro/internal/elpim"
	"repro/internal/timing"
)

func designs(t *testing.T) (Design, Design, Design) {
	t.Helper()
	return elpim.MustNew(elpim.DefaultConfig()),
		ambit.MustNew(ambit.DefaultConfig()),
		drisa.MustNew(drisa.DefaultConfig())
}

func run(t *testing.T, d Design, width int) Result {
	t.Helper()
	r, err := Run(Default(width), d, dram.Default(), timing.DDR31600(), cpu.KabyLake())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestWorkloadValidate(t *testing.T) {
	if err := Default(8).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, w := range []Workload{
		{Tuples: 0, Width: 8},
		{Tuples: 100, Width: 0},
		{Tuples: 100, Width: 65},
	} {
		if err := w.Validate(); err == nil {
			t.Errorf("invalid workload %+v accepted", w)
		}
	}
}

func TestConstBits(t *testing.T) {
	w := Workload{Tuples: 1, Width: 4, Constant: 0b0101}
	for i, want := range []bool{true, false, true, false} {
		if w.ConstBit(i) != want {
			t.Errorf("bit %d = %v, want %v", i, w.ConstBit(i), want)
		}
	}
}

func TestELP2IMHighestThroughput(t *testing.T) {
	// Figure 14(a): "ELP2IM has the highest throughput" at every width.
	e, a, d := designs(t)
	for _, width := range []int{4, 8, 12, 16} {
		re, ra, rd := run(t, e, width), run(t, a, width), run(t, d, width)
		if re.TuplesPerSec <= ra.TuplesPerSec {
			t.Errorf("width %d: ELP2IM (%.3g) must beat Ambit (%.3g)",
				width, re.TuplesPerSec, ra.TuplesPerSec)
		}
		if re.TuplesPerSec <= rd.TuplesPerSec {
			t.Errorf("width %d: ELP2IM (%.3g) must beat Drisa (%.3g)",
				width, re.TuplesPerSec, rd.TuplesPerSec)
		}
	}
}

func TestDrisaBeatsAmbitUnderConstraint(t *testing.T) {
	// Figure 14(b): "the throughput of Drisa_nor outperforms Ambit,
	// because Ambit is hindered by the multiple row activates under power
	// constraint" — even though Drisa's latency is the largest.
	_, a, d := designs(t)
	ra, rd := run(t, a, 8), run(t, d, 8)
	if rd.TuplesPerSec <= ra.TuplesPerSec {
		t.Errorf("Drisa device throughput (%.3g) must beat Ambit (%.3g) under constraint",
			rd.TuplesPerSec, ra.TuplesPerSec)
	}
	if rd.PredicateLatencyNS <= ra.PredicateLatencyNS {
		t.Errorf("Drisa latency (%v) must still be the largest (Ambit %v)",
			rd.PredicateLatencyNS, ra.PredicateLatencyNS)
	}
}

func TestImprovementGrowsWithWidth(t *testing.T) {
	// Figure 14(a): ELP2IM's improvement over CPU grows with data width
	// (the CPU count proportion shrinks).
	e, _, _ := designs(t)
	prev := 0.0
	for _, width := range []int{4, 8, 12, 16} {
		base, err := RunCPU(Default(width), cpu.KabyLake())
		if err != nil {
			t.Fatal(err)
		}
		s := run(t, e, width).SpeedupOver(base)
		if s <= 1 {
			t.Errorf("width %d: speedup %v must exceed 1", width, s)
		}
		if s <= prev {
			t.Errorf("width %d: speedup %v must grow from %v", width, s, prev)
		}
		prev = s
	}
}

func TestReservedSpace(t *testing.T) {
	// Figure 14(c): Ambit 8 rows, ELP2IM 1 row, Drisa 0.
	e, a, d := designs(t)
	if got := run(t, e, 8).ReservedRows; got != 1 {
		t.Errorf("ELP2IM reserved rows = %d, want 1", got)
	}
	if got := run(t, a, 8).ReservedRows; got != 8 {
		t.Errorf("Ambit reserved rows = %d, want 8", got)
	}
	if got := run(t, d, 8).ReservedRows; got != 0 {
		t.Errorf("Drisa reserved rows = %d, want 0", got)
	}
}

func TestRunErrors(t *testing.T) {
	e, _, _ := designs(t)
	if _, err := Run(Workload{}, e, dram.Default(), timing.DDR31600(), cpu.KabyLake()); err == nil {
		t.Error("invalid workload accepted")
	}
	if _, err := Run(Default(8), e, dram.Config{}, timing.DDR31600(), cpu.KabyLake()); err == nil {
		t.Error("invalid module accepted")
	}
	if _, err := Run(Default(8), e, dram.Default(), timing.DDR31600(), cpu.Model{}); err == nil {
		t.Error("invalid cpu model accepted")
	}
	if _, err := RunCPU(Workload{}, cpu.KabyLake()); err == nil {
		t.Error("invalid workload accepted by CPU baseline")
	}
}

func TestVerticalizeRoundTrip(t *testing.T) {
	values := []uint64{0b1010, 0b0011, 0b1111, 0b0000, 0b0110}
	cols := Verticalize(values, 4)
	if len(cols) != 4 {
		t.Fatalf("columns = %d, want 4", len(cols))
	}
	for j, v := range values {
		for i := 0; i < 4; i++ {
			want := v>>uint(i)&1 == 1
			if cols[i].Bit(j) != want {
				t.Errorf("value %d bit %d = %v, want %v", j, i, cols[i].Bit(j), want)
			}
		}
	}
}

func TestGoldenPredicate(t *testing.T) {
	w := Workload{Tuples: 4, Width: 4, Constant: 0b0110}
	got := w.GoldenPredicate([]uint64{0b0101, 0b0110, 0b0111, 0b0000})
	want := []bool{true, false, false, true}
	for j, wantBit := range want {
		if got.Bit(j) != wantBit {
			t.Errorf("tuple %d predicate = %v, want %v", j, got.Bit(j), wantBit)
		}
	}
}

// TestFunctionalPredicateAllEngines executes the bit-serial LESS-THAN on
// the device model through every engine and checks tuple-exact results.
func TestFunctionalPredicateAllEngines(t *testing.T) {
	const tuples, width = 256, 6
	cfg := dram.Config{
		Banks: 1, SubarraysPerBank: 1,
		RowsPerSubarray: 24, Columns: tuples, DualContactRows: 2,
	}
	rng := rand.New(rand.NewSource(5))
	values := make([]uint64, tuples)
	for j := range values {
		values[j] = rng.Uint64() & (1<<width - 1)
	}
	w := Workload{Tuples: tuples, Width: width, Constant: 0b101101}

	engines := []Executor{
		elpim.MustNew(elpim.DefaultConfig()),
		ambit.MustNew(ambit.DefaultConfig()),
		drisa.MustNew(drisa.DefaultConfig()),
	}
	names := []string{"ELP2IM", "Ambit", "Drisa"}
	for i, ex := range engines {
		sub := dram.NewSubarray(cfg)
		cols := Verticalize(values, width)
		rows := PredicateRows{Bits: make([]int, width), LT: 10, EQ: 11, T1: 12, T2: 13}
		for b := 0; b < width; b++ {
			rows.Bits[b] = b
			sub.LoadRow(b, cols[b])
		}
		if err := ExecutePredicate(sub, ex, w, rows); err != nil {
			t.Fatalf("%s: %v", names[i], err)
		}
		want := w.GoldenPredicate(values)
		if !sub.RowData(rows.LT).Equal(want) {
			t.Errorf("%s: predicate result mismatch (got %d matches, want %d)",
				names[i], sub.RowData(rows.LT).Popcount(), want.Popcount())
		}
	}
}

// Property: the functional predicate matches the golden model for random
// constants and values on the ELP2IM engine.
func TestFunctionalPredicateProperty(t *testing.T) {
	const tuples = 128
	cfg := dram.Config{
		Banks: 1, SubarraysPerBank: 1,
		RowsPerSubarray: 24, Columns: tuples, DualContactRows: 1,
	}
	ex := elpim.MustNew(elpim.DefaultConfig())
	f := func(seed int64, constRaw uint16, widthRaw uint8) bool {
		width := int(widthRaw)%8 + 1
		w := Workload{Tuples: tuples, Width: width, Constant: uint64(constRaw) & (1<<uint(width) - 1)}
		rng := rand.New(rand.NewSource(seed))
		values := make([]uint64, tuples)
		for j := range values {
			values[j] = rng.Uint64() & (1<<uint(width) - 1)
		}
		sub := dram.NewSubarray(cfg)
		cols := Verticalize(values, width)
		rows := PredicateRows{Bits: make([]int, width), LT: 15, EQ: 16, T1: 17, T2: 18}
		for b := 0; b < width; b++ {
			rows.Bits[b] = b
			sub.LoadRow(b, cols[b])
		}
		if err := ExecutePredicate(sub, ex, w, rows); err != nil {
			return false
		}
		return sub.RowData(rows.LT).Equal(w.GoldenPredicate(values))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
