package tablescan

import (
	"errors"
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/dram"
	"repro/internal/engine"
)

// Verticalize converts a column of k-bit codes into the BitWeaving layout:
// one bit-vector per bit position, bit j of vector i holding bit i of
// value j.
func Verticalize(values []uint64, width int) []*bitvec.Vector {
	out := make([]*bitvec.Vector, width)
	for i := range out {
		out[i] = bitvec.New(len(values))
	}
	for j, v := range values {
		for i := 0; i < width; i++ {
			if v>>uint(i)&1 == 1 {
				out[i].SetBit(j, true)
			}
		}
	}
	return out
}

// GoldenPredicate returns the host-computed match vector for v < Constant.
func (w Workload) GoldenPredicate(values []uint64) *bitvec.Vector {
	mask := uint64(1)<<uint(w.Width) - 1
	out := bitvec.New(len(values))
	for j, v := range values {
		if v&mask < w.Constant&mask {
			out.SetBit(j, true)
		}
	}
	return out
}

// Executor is the functional execution surface of an engine.
type Executor interface {
	Execute(sub *dram.Subarray, op engine.Op, dst, a, b int) error
}

// PredicateRows names the subarray rows the functional predicate uses.
type PredicateRows struct {
	// Bits[i] is the row holding bit position i of the column.
	Bits []int
	// LT and EQ are the accumulator rows; LT holds the result.
	LT, EQ int
	// T1, T2 are scratch rows.
	T1, T2 int
}

// ExecutePredicate runs the bit-serial LESS-THAN functionally on a
// subarray through an engine: the in-DRAM dataflow of the Figure 14
// workload at device fidelity. The accumulators are initialized through
// the host path (data preparation); every logic step runs in-array.
func ExecutePredicate(sub *dram.Subarray, ex Executor, w Workload, rows PredicateRows) error {
	if err := w.Validate(); err != nil {
		return err
	}
	if len(rows.Bits) != w.Width {
		return fmt.Errorf("tablescan: %d bit rows for width %d", len(rows.Bits), w.Width)
	}
	n := sub.Columns()
	if n <= 0 {
		return errors.New("tablescan: empty subarray")
	}
	lt := bitvec.New(n)
	eq := bitvec.New(n)
	eq.Fill(true)
	sub.LoadRow(rows.LT, lt)
	sub.LoadRow(rows.EQ, eq)

	for i := w.Width - 1; i >= 0; i-- {
		bitRow := rows.Bits[i]
		if err := ex.Execute(sub, engine.OpNOT, rows.T1, bitRow, -1); err != nil {
			return err
		}
		if w.ConstBit(i) {
			if err := ex.Execute(sub, engine.OpAND, rows.T2, rows.EQ, rows.T1); err != nil {
				return err
			}
			if err := ex.Execute(sub, engine.OpOR, rows.LT, rows.T2, rows.LT); err != nil {
				return err
			}
			if err := ex.Execute(sub, engine.OpAND, rows.EQ, bitRow, rows.EQ); err != nil {
				return err
			}
		} else {
			if err := ex.Execute(sub, engine.OpAND, rows.EQ, rows.T1, rows.EQ); err != nil {
				return err
			}
		}
	}
	return nil
}
