package tablescan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ambit"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/drisa"
	"repro/internal/elpim"
	"repro/internal/timing"
)

func allCmpOps() []CmpOp {
	return []CmpOp{CmpLT, CmpLE, CmpGT, CmpGE, CmpEQ, CmpNE}
}

func TestCmpOpStrings(t *testing.T) {
	want := map[CmpOp]string{
		CmpLT: "<", CmpLE: "<=", CmpGT: ">", CmpGE: ">=", CmpEQ: "=", CmpNE: "<>",
	}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("op string = %q, want %q", op.String(), s)
		}
	}
	if CmpOp(99).String() == "" {
		t.Error("unknown op must render")
	}
}

func TestGoldenCompareTruthTable(t *testing.T) {
	w := Workload{Tuples: 5, Width: 4, Constant: 6}
	values := []uint64{3, 6, 9, 0, 15}
	want := map[CmpOp][]bool{
		CmpLT: {true, false, false, true, false},
		CmpLE: {true, true, false, true, false},
		CmpGT: {false, false, true, false, true},
		CmpGE: {false, true, true, false, true},
		CmpEQ: {false, true, false, false, false},
		CmpNE: {true, false, true, true, true},
	}
	for op, bits := range want {
		got := w.GoldenCompare(values, op)
		for j, b := range bits {
			if got.Bit(j) != b {
				t.Errorf("%d %s 6: got %v, want %v", values[j], op, got.Bit(j), b)
			}
		}
	}
}

// TestFunctionalCompareAllOpsAllEngines executes every comparison
// operator on the device model through every engine, tuple-exact.
func TestFunctionalCompareAllOpsAllEngines(t *testing.T) {
	const tuples, width = 192, 5
	cfg := dram.Config{
		Banks: 1, SubarraysPerBank: 1,
		RowsPerSubarray: 24, Columns: tuples, DualContactRows: 2,
	}
	rng := rand.New(rand.NewSource(8))
	values := make([]uint64, tuples)
	for j := range values {
		values[j] = rng.Uint64() & (1<<width - 1)
	}
	w := Workload{Tuples: tuples, Width: width, Constant: 0b01101}

	engines := map[string]Executor{
		"elpim": elpim.MustNew(elpim.DefaultConfig()),
		"ambit": ambit.MustNew(ambit.DefaultConfig()),
		"drisa": drisa.MustNew(drisa.DefaultConfig()),
	}
	for name, ex := range engines {
		for _, op := range allCmpOps() {
			t.Run(name+"/"+op.String(), func(t *testing.T) {
				sub := dram.NewSubarray(cfg)
				cols := Verticalize(values, width)
				rows := PredicateRows{Bits: make([]int, width), LT: 10, EQ: 11, T1: 12, T2: 13}
				for b := 0; b < width; b++ {
					rows.Bits[b] = b
					sub.LoadRow(b, cols[b])
				}
				if err := ExecuteCompare(sub, ex, w, op, rows); err != nil {
					t.Fatal(err)
				}
				want := w.GoldenCompare(values, op)
				if !sub.RowData(rows.LT).Equal(want) {
					t.Errorf("result mismatch: got %d matches, want %d",
						sub.RowData(rows.LT).Popcount(), want.Popcount())
				}
			})
		}
	}
}

func TestExecuteCompareErrors(t *testing.T) {
	ex := elpim.MustNew(elpim.DefaultConfig())
	sub := dram.NewSubarray(dram.Config{
		Banks: 1, SubarraysPerBank: 1, RowsPerSubarray: 24, Columns: 64, DualContactRows: 1,
	})
	bad := Workload{Tuples: 0, Width: 4}
	if err := ExecuteCompare(sub, ex, bad, CmpEQ, PredicateRows{Bits: make([]int, 4)}); err == nil {
		t.Error("invalid workload accepted")
	}
	w := Workload{Tuples: 64, Width: 4, Constant: 5}
	if err := ExecuteCompare(sub, ex, w, CmpEQ, PredicateRows{Bits: make([]int, 2)}); err == nil {
		t.Error("wrong bit-row count accepted")
	}
}

func TestRunCompareCosts(t *testing.T) {
	e := elpim.MustNew(elpim.DefaultConfig())
	mod := dram.Default()
	tp := timing.DDR31600()
	m := cpu.KabyLake()
	w := Default(8)

	lt, err := RunCompare(w, CmpLT, e, mod, tp, m)
	if err != nil {
		t.Fatal(err)
	}
	// CmpLT through RunCompare equals the Figure 14 Run.
	fig14, err := Run(w, e, mod, tp, m)
	if err != nil {
		t.Fatal(err)
	}
	if lt.PredicateLatencyNS != fig14.PredicateLatencyNS {
		t.Errorf("RunCompare(LT) latency %v != Run latency %v",
			lt.PredicateLatencyNS, fig14.PredicateLatencyNS)
	}
	// EQ only advances the equality chain: cheapest of the set.
	eq, err := RunCompare(w, CmpEQ, e, mod, tp, m)
	if err != nil {
		t.Fatal(err)
	}
	if eq.PredicateLatencyNS >= lt.PredicateLatencyNS {
		t.Errorf("EQ latency %v must be below LT %v", eq.PredicateLatencyNS, lt.PredicateLatencyNS)
	}
	// LE = LT + final OR.
	le, err := RunCompare(w, CmpLE, e, mod, tp, m)
	if err != nil {
		t.Fatal(err)
	}
	if le.PredicateLatencyNS <= lt.PredicateLatencyNS {
		t.Errorf("LE latency %v must exceed LT %v", le.PredicateLatencyNS, lt.PredicateLatencyNS)
	}
	if _, err := RunCompare(Workload{}, CmpEQ, e, mod, tp, m); err == nil {
		t.Error("invalid workload accepted")
	}
}

// Property: every operator matches the golden model on random constants
// through the ELP2IM engine.
func TestCompareProperty(t *testing.T) {
	const tuples = 96
	cfg := dram.Config{
		Banks: 1, SubarraysPerBank: 1,
		RowsPerSubarray: 24, Columns: tuples, DualContactRows: 1,
	}
	ex := elpim.MustNew(elpim.DefaultConfig())
	ops := allCmpOps()
	f := func(seed int64, constRaw uint16, opRaw, widthRaw uint8) bool {
		width := int(widthRaw)%7 + 1
		op := ops[int(opRaw)%len(ops)]
		w := Workload{Tuples: tuples, Width: width, Constant: uint64(constRaw) & (1<<uint(width) - 1)}
		rng := rand.New(rand.NewSource(seed))
		values := make([]uint64, tuples)
		for j := range values {
			values[j] = rng.Uint64() & (1<<uint(width) - 1)
		}
		sub := dram.NewSubarray(cfg)
		cols := Verticalize(values, width)
		rows := PredicateRows{Bits: make([]int, width), LT: 15, EQ: 16, T1: 17, T2: 18}
		for b := 0; b < width; b++ {
			rows.Bits[b] = b
			sub.LoadRow(b, cols[b])
		}
		if err := ExecuteCompare(sub, ex, w, op, rows); err != nil {
			return false
		}
		return sub.RowData(rows.LT).Equal(w.GoldenCompare(values, op))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestBetweenFunctional(t *testing.T) {
	const tuples, width = 160, 6
	cfg := dram.Config{
		Banks: 1, SubarraysPerBank: 1,
		RowsPerSubarray: 24, Columns: tuples, DualContactRows: 1,
	}
	rng := rand.New(rand.NewSource(10))
	values := make([]uint64, tuples)
	for j := range values {
		values[j] = rng.Uint64() & (1<<width - 1)
	}
	w := Workload{Tuples: tuples, Width: width}
	const lo, hi = 13, 41
	ex := elpim.MustNew(elpim.DefaultConfig())
	sub := dram.NewSubarray(cfg)
	cols := Verticalize(values, width)
	rows := PredicateRows{Bits: make([]int, width), LT: 10, EQ: 11, T1: 12, T2: 13}
	for b := 0; b < width; b++ {
		rows.Bits[b] = b
		sub.LoadRow(b, cols[b])
	}
	if err := ExecuteBetween(sub, ex, w, lo, hi, rows, 14); err != nil {
		t.Fatal(err)
	}
	got := sub.RowData(rows.LT)
	for j, v := range values {
		want := v >= lo && v <= hi
		if got.Bit(j) != want {
			t.Fatalf("tuple %d (%d in [%d,%d]): got %v", j, v, lo, hi, got.Bit(j))
		}
	}
	// Empty range rejected.
	if err := ExecuteBetween(sub, ex, w, 41, 13, rows, 14); err == nil {
		t.Error("empty range accepted")
	}
}

func TestRunBetweenCost(t *testing.T) {
	e := elpim.MustNew(elpim.DefaultConfig())
	mod := dram.Default()
	tp := timing.DDR31600()
	m := cpu.KabyLake()
	w := Default(8)
	between, err := RunBetween(w, 20, 200, e, mod, tp, m)
	if err != nil {
		t.Fatal(err)
	}
	ge, err := RunCompare(Workload{Tuples: w.Tuples, Width: w.Width, Constant: 20}, CmpGE, e, mod, tp, m)
	if err != nil {
		t.Fatal(err)
	}
	// A range costs roughly two single-bound scans.
	if between.PredicateLatencyNS <= ge.PredicateLatencyNS {
		t.Errorf("between latency %v must exceed one bound %v",
			between.PredicateLatencyNS, ge.PredicateLatencyNS)
	}
	if _, err := RunBetween(w, 200, 20, e, mod, tp, m); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := RunBetween(Workload{}, 1, 2, e, mod, tp, m); err == nil {
		t.Error("invalid workload accepted")
	}
}
