package tablescan

import (
	"errors"
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/primitive"
	"repro/internal/timing"
)

// CmpOp is a BitWeaving comparison operator against the workload constant.
type CmpOp int

// The full BitWeaving predicate set.
const (
	CmpLT CmpOp = iota
	CmpLE
	CmpGT
	CmpGE
	CmpEQ
	CmpNE
)

// String returns the SQL-ish operator.
func (o CmpOp) String() string {
	switch o {
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	case CmpGT:
		return ">"
	case CmpGE:
		return ">="
	case CmpEQ:
		return "="
	case CmpNE:
		return "<>"
	default:
		return fmt.Sprintf("CmpOp(%d)", int(o))
	}
}

// needsLT/needsGT report which accumulators the operator requires beyond
// the equality chain.
func (o CmpOp) needsLT() bool { return o == CmpLT || o == CmpLE }
func (o CmpOp) needsGT() bool { return o == CmpGT || o == CmpGE }

// GoldenCompare returns the host-computed match vector for `v op Constant`.
func (w Workload) GoldenCompare(values []uint64, op CmpOp) *bitvec.Vector {
	mask := uint64(1)<<uint(w.Width) - 1
	cons := w.Constant & mask
	out := bitvec.New(len(values))
	for j, v := range values {
		v &= mask
		var match bool
		switch op {
		case CmpLT:
			match = v < cons
		case CmpLE:
			match = v <= cons
		case CmpGT:
			match = v > cons
		case CmpGE:
			match = v >= cons
		case CmpEQ:
			match = v == cons
		case CmpNE:
			match = v != cons
		}
		if match {
			out.SetBit(j, true)
		}
	}
	return out
}

// compareSeq builds the per-stripe command sequence of the bit-serial
// comparison: the equality chain always advances; the lt accumulator
// updates only on the constant's one-bits, the gt accumulator only on its
// zero-bits.
func compareSeq(w Workload, op CmpOp, d Design) (primitive.Seq, error) {
	andChain, err := d.ChainSeq(engine.OpAND)
	if err != nil {
		return nil, fmt.Errorf("tablescan: %w", err)
	}
	orChain, err := d.ChainSeq(engine.OpOR)
	if err != nil {
		return nil, fmt.Errorf("tablescan: %w", err)
	}
	notAndChain, err := d.NotChainSeq(engine.OpAND)
	if err != nil {
		return nil, fmt.Errorf("tablescan: %w", err)
	}

	var seq primitive.Seq
	for i := w.Width - 1; i >= 0; i-- {
		one := w.ConstBit(i)
		switch {
		case one && op.needsLT():
			// t = NOT a_i; t &= eq; lt |= t; eq &= a_i
			seq = append(seq, d.Seq(engine.OpNOT)...)
			seq = append(seq, andChain...)
			seq = append(seq, orChain...)
			seq = append(seq, andChain...)
		case !one && op.needsGT():
			// t = a_i AND eq; gt |= t; eq &= NOT a_i
			seq = append(seq, d.Seq(engine.OpAND)...)
			seq = append(seq, orChain...)
			seq = append(seq, notAndChain...)
		case one:
			// equality chain only: eq &= a_i
			seq = append(seq, andChain...)
		default:
			// equality chain only: eq &= NOT a_i
			seq = append(seq, notAndChain...)
		}
	}
	// Epilogue: LE/GE OR the equality in; NE complements it.
	switch op {
	case CmpLE, CmpGE:
		seq = append(seq, orChain...)
	case CmpNE:
		seq = append(seq, d.Seq(engine.OpNOT)...)
	}
	return seq, nil
}

// RunCompare evaluates an arbitrary comparison scan on a PIM design under
// the power constraint. CmpLT reproduces the Figure 14 configuration.
func RunCompare(w Workload, op CmpOp, d Design, mod dram.Config, tp timing.Params, m cpu.Model) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	if err := mod.Validate(); err != nil {
		return Result{}, err
	}
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	seq, err := compareSeq(w, op, d)
	if err != nil {
		return Result{}, err
	}
	return runWithSeq(w, d, seq, mod, tp, m)
}

// RunBetween evaluates `lo <= col <= hi` as two comparison scans plus one
// AND of the match vectors — the BitWeaving range predicate.
func RunBetween(w Workload, lo, hi uint64, d Design, mod dram.Config, tp timing.Params, m cpu.Model) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	mask := uint64(1)<<uint(w.Width) - 1
	if lo&mask > hi&mask {
		return Result{}, fmt.Errorf("tablescan: empty range [%d,%d]", lo&mask, hi&mask)
	}
	wLo := w
	wLo.Constant = lo
	seqLo, err := compareSeq(wLo, CmpGE, d)
	if err != nil {
		return Result{}, err
	}
	wHi := w
	wHi.Constant = hi
	seqHi, err := compareSeq(wHi, CmpLE, d)
	if err != nil {
		return Result{}, err
	}
	andChain, err := d.ChainSeq(engine.OpAND)
	if err != nil {
		return Result{}, err
	}
	seq := append(append(seqLo, seqHi...), andChain...)
	return runWithSeq(w, d, seq, mod, tp, m)
}

// ExecuteBetween runs the range predicate functionally: the two bounds'
// match vectors are computed in turn and ANDed into rows.LT. rows.T3 holds
// the first bound's matches between the passes.
func ExecuteBetween(sub *dram.Subarray, ex Executor, w Workload, lo, hi uint64, rows PredicateRows, t3 int) error {
	mask := uint64(1)<<uint(w.Width) - 1
	if lo&mask > hi&mask {
		return fmt.Errorf("tablescan: empty range [%d,%d]", lo&mask, hi&mask)
	}
	wLo := w
	wLo.Constant = lo
	if err := ExecuteCompare(sub, ex, wLo, CmpGE, rows); err != nil {
		return err
	}
	if err := ex.Execute(sub, engine.OpCOPY, t3, rows.LT, -1); err != nil {
		return err
	}
	wHi := w
	wHi.Constant = hi
	if err := ExecuteCompare(sub, ex, wHi, CmpLE, rows); err != nil {
		return err
	}
	return ex.Execute(sub, engine.OpAND, rows.LT, t3, rows.LT)
}

// ExecuteCompare runs the bit-serial comparison functionally on a
// subarray through an engine. rows.LT receives the final match vector for
// every operator (reusing the LT slot as the result row).
func ExecuteCompare(sub *dram.Subarray, ex Executor, w Workload, op CmpOp, rows PredicateRows) error {
	if err := w.Validate(); err != nil {
		return err
	}
	if len(rows.Bits) != w.Width {
		return fmt.Errorf("tablescan: %d bit rows for width %d", len(rows.Bits), w.Width)
	}
	n := sub.Columns()
	if n <= 0 {
		return errors.New("tablescan: empty subarray")
	}
	acc := bitvec.New(n) // lt or gt accumulator, as needed
	eq := bitvec.New(n)
	eq.Fill(true)
	sub.LoadRow(rows.LT, acc)
	sub.LoadRow(rows.EQ, eq)

	for i := w.Width - 1; i >= 0; i-- {
		bitRow := rows.Bits[i]
		one := w.ConstBit(i)
		switch {
		case one && op.needsLT():
			if err := ex.Execute(sub, engine.OpNOT, rows.T1, bitRow, -1); err != nil {
				return err
			}
			if err := ex.Execute(sub, engine.OpAND, rows.T2, rows.EQ, rows.T1); err != nil {
				return err
			}
			if err := ex.Execute(sub, engine.OpOR, rows.LT, rows.T2, rows.LT); err != nil {
				return err
			}
			if err := ex.Execute(sub, engine.OpAND, rows.EQ, bitRow, rows.EQ); err != nil {
				return err
			}
		case !one && op.needsGT():
			if err := ex.Execute(sub, engine.OpAND, rows.T2, bitRow, rows.EQ); err != nil {
				return err
			}
			if err := ex.Execute(sub, engine.OpOR, rows.LT, rows.T2, rows.LT); err != nil {
				return err
			}
			if err := ex.Execute(sub, engine.OpNOT, rows.T1, bitRow, -1); err != nil {
				return err
			}
			if err := ex.Execute(sub, engine.OpAND, rows.EQ, rows.T1, rows.EQ); err != nil {
				return err
			}
		case one:
			if err := ex.Execute(sub, engine.OpAND, rows.EQ, bitRow, rows.EQ); err != nil {
				return err
			}
		default:
			if err := ex.Execute(sub, engine.OpNOT, rows.T1, bitRow, -1); err != nil {
				return err
			}
			if err := ex.Execute(sub, engine.OpAND, rows.EQ, rows.T1, rows.EQ); err != nil {
				return err
			}
		}
	}
	switch op {
	case CmpLE, CmpGE:
		return ex.Execute(sub, engine.OpOR, rows.LT, rows.EQ, rows.LT)
	case CmpEQ:
		return ex.Execute(sub, engine.OpCOPY, rows.LT, rows.EQ, -1)
	case CmpNE:
		return ex.Execute(sub, engine.OpNOT, rows.LT, rows.EQ, -1)
	}
	return nil
}
