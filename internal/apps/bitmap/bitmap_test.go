package bitmap

import (
	"math/rand"
	"testing"

	"repro/internal/ambit"
	"repro/internal/bitvec"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/elpim"
	"repro/internal/engine"
	"repro/internal/power"
	"repro/internal/timing"
)

func module() dram.Config { return dram.Default() }

func elp(t *testing.T) Design {
	t.Helper()
	return elpim.MustNew(elpim.DefaultConfig())
}

func amb(t *testing.T, reserved int) Design {
	t.Helper()
	cfg := ambit.DefaultConfig()
	cfg.ReservedRows = reserved
	return ambit.MustNew(cfg)
}

func run(t *testing.T, d Design, constrained bool) Result {
	t.Helper()
	r, err := Run(Default(), d, module(), timing.DDR31600(), power.DDR31600(), cpu.KabyLake(), constrained)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestWorkloadValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Workload{Users: 0, Weeks: 4}).Validate(); err == nil {
		t.Error("zero users accepted")
	}
	if err := (Workload{Users: 100, Weeks: 1}).Validate(); err == nil {
		t.Error("single week accepted")
	}
}

func TestRunErrors(t *testing.T) {
	d := elp(t)
	if _, err := Run(Workload{}, d, module(), timing.DDR31600(), power.DDR31600(), cpu.KabyLake(), false); err == nil {
		t.Error("invalid workload accepted")
	}
	if _, err := Run(Default(), d, dram.Config{}, timing.DDR31600(), power.DDR31600(), cpu.KabyLake(), false); err == nil {
		t.Error("invalid module accepted")
	}
	if _, err := Run(Default(), d, module(), timing.DDR31600(), power.DDR31600(), cpu.Model{}, false); err == nil {
		t.Error("invalid cpu model accepted")
	}
}

func TestPIMBeatsCPU(t *testing.T) {
	// Figure 13(a): every PIM configuration improves on the CPU baseline.
	cpuRes, err := RunCPU(Default(), cpu.KabyLake())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []Design{elp(t), amb(t, 4), amb(t, 6), amb(t, 10)} {
		r := run(t, d, false)
		if s := r.SpeedupOver(cpuRes); s <= 1 {
			t.Errorf("%s speedup over CPU = %v, want > 1", r.Name, s)
		}
	}
}

func TestAmbitImprovesWithReservedRowsDiminishing(t *testing.T) {
	// Figure 13(a): "significant improvement when reserved rows are raised
	// from 4 to 6, but the growth is much slower from 6 to 10".
	r4 := run(t, amb(t, 4), false)
	r6 := run(t, amb(t, 6), false)
	r10 := run(t, amb(t, 10), false)
	gain46 := r4.SystemNS / r6.SystemNS
	gain610 := r6.SystemNS / r10.SystemNS
	if gain46 <= 1.05 {
		t.Errorf("4→6 rows gain = %v, want significant (>1.05)", gain46)
	}
	if gain610 >= gain46 {
		t.Errorf("6→10 gain %v must be smaller than 4→6 gain %v", gain610, gain46)
	}
	if gain610 < 1 {
		t.Errorf("6→10 gain %v must not regress", gain610)
	}
}

func TestELP2IMBeatsEvenAmbit10(t *testing.T) {
	// Figure 13(a): "even Ambit allocated more than 10 reserved rows, it
	// cannot catch up ELP2IM" — with 8× less reserved space.
	e := run(t, elp(t), false)
	a10 := run(t, amb(t, 10), false)
	if e.SystemNS >= a10.SystemNS {
		t.Errorf("ELP2IM (%v ns) must beat Ambit_10 (%v ns)", e.SystemNS, a10.SystemNS)
	}
	if e.ReservedRows != 1 || a10.ReservedRows != 10 {
		t.Errorf("reserved rows = %d vs %d, want 1 vs 10 (Figure 13(c))",
			e.ReservedRows, a10.ReservedRows)
	}
}

func TestPowerConstraintDeviceDrops(t *testing.T) {
	// Figure 13(b): under the power constraint Ambit's device throughput
	// drops up to ~83%; ELP2IM's drops far less (~56%, tracking the
	// halved bank count).
	eFree, eCon := run(t, elp(t), false), run(t, elp(t), true)
	aFree, aCon := run(t, amb(t, 8), false), run(t, amb(t, 8), true)

	eDrop := 1 - eFree.DeviceNS/eCon.DeviceNS
	aDrop := 1 - aFree.DeviceNS/aCon.DeviceNS
	if aDrop < 0.60 {
		t.Errorf("Ambit device-throughput drop = %.0f%%, want ≳60%% (paper: up to 83%%)", aDrop*100)
	}
	if eDrop >= aDrop {
		t.Errorf("ELP2IM drop %.0f%% must be smaller than Ambit's %.0f%%", eDrop*100, aDrop*100)
	}
	if eDrop > 0.62 {
		t.Errorf("ELP2IM drop = %.0f%%, want ≲62%% (paper: ~56%%)", eDrop*100)
	}
}

func TestConstrainedAmbitInsensitiveToReservedRows(t *testing.T) {
	// Figure 13(b): "the device throughput of Ambit tends to be the same
	// under power constraint, implying more reserved space cannot offer
	// much benefit under such condition".
	a6 := run(t, amb(t, 6), true)
	a10 := run(t, amb(t, 10), true)
	ratio := a6.DeviceNS / a10.DeviceNS
	if ratio < 0.65 || ratio > 1.55 {
		t.Errorf("constrained Ambit_6/Ambit_10 device ratio = %v, want ~1", ratio)
	}
}

func TestELP2IMConstrainedBeatsAmbitHarder(t *testing.T) {
	// The headline: with the power constraint on, ELP2IM's advantage over
	// Ambit grows (§6.3.1, up to 3.2× throughput with constraint).
	eFree, aFree := run(t, elp(t), false), run(t, amb(t, 8), false)
	eCon, aCon := run(t, elp(t), true), run(t, amb(t, 8), true)
	freeAdv := aFree.DeviceNS / eFree.DeviceNS
	conAdv := aCon.DeviceNS / eCon.DeviceNS
	if conAdv <= freeAdv {
		t.Errorf("constrained advantage %v must exceed unconstrained %v", conAdv, freeAdv)
	}
	if conAdv < 1.5 {
		t.Errorf("constrained ELP2IM advantage = %v, want substantial (paper: up to 3.2×)", conAdv)
	}
}

func TestFoldAccounting(t *testing.T) {
	// ELP2IM and Ambit_4/6 fold both accumulators separately (2w-1 folds
	// per stripe); Ambit_10 fuses the two scans (w fused folds).
	w := Default()
	stripes := (w.Users + module().Columns - 1) / module().Columns
	e := run(t, elp(t), false)
	if e.RowOps != (2*w.Weeks-1)*stripes {
		t.Errorf("ELP2IM row ops = %d, want %d", e.RowOps, (2*w.Weeks-1)*stripes)
	}
	a6 := run(t, amb(t, 6), false)
	if a6.RowOps != (2*w.Weeks-1)*stripes {
		t.Errorf("Ambit_6 row ops = %d, want %d", a6.RowOps, (2*w.Weeks-1)*stripes)
	}
	a10 := run(t, amb(t, 10), false)
	if a10.RowOps != w.Weeks*stripes {
		t.Errorf("Ambit_10 row ops = %d, want %d (fused scans)", a10.RowOps, w.Weeks*stripes)
	}
}

func TestCaseStudyEnergySaving(t *testing.T) {
	// §6.2: "In the following case studies, the power of ELP2IM is
	// 17%∼27% less than Ambit." Checked as device energy for the same
	// query pair (band widened slightly for model tolerance).
	e := run(t, elp(t), false)
	a := run(t, amb(t, 8), false)
	if e.DeviceEnergyNJ <= 0 || a.DeviceEnergyNJ <= 0 {
		t.Fatalf("energies not reported: %v / %v", e.DeviceEnergyNJ, a.DeviceEnergyNJ)
	}
	saving := 1 - e.DeviceEnergyNJ/a.DeviceEnergyNJ
	// Paper band: 17–27%. Our bitmap kernel compiles to the pure in-place
	// APP-AP chain (2 commands, no staging copies), which saves more than
	// the paper's mixed sequence — the direction and significance are the
	// reproduced claims; see EXPERIMENTS.md.
	if saving < 0.15 || saving > 0.55 {
		t.Errorf("ELP2IM device energy saving = %.0f%%, want within [15%%, 55%%] (paper: 17–27%%)", saving*100)
	}
}

func TestCPUBaseline(t *testing.T) {
	r, err := RunCPU(Default(), cpu.KabyLake())
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "CPU" || r.SystemNS <= 0 || r.QueriesPerSec <= 0 {
		t.Fatalf("bad CPU result: %+v", r)
	}
	if _, err := RunCPU(Workload{}, cpu.KabyLake()); err == nil {
		t.Error("invalid workload accepted")
	}
	if _, err := RunCPU(Default(), cpu.Model{}); err == nil {
		t.Error("invalid model accepted")
	}
}

// TestFunctionalQueryPair executes the actual query pair at reduced scale
// on the DRAM device model through each engine and checks the counts
// against the host golden model — the end-to-end correctness anchor for
// the Figure 13 numbers.
func TestFunctionalQueryPair(t *testing.T) {
	const users, weeks = 512, 5
	cfg := dram.Config{
		Banks: 1, SubarraysPerBank: 1,
		RowsPerSubarray: 32, Columns: users, DualContactRows: 2,
	}
	engines := []interface {
		Name() string
		Execute(*dram.Subarray, engine.Op, int, int, int) error
	}{
		elpim.MustNew(elpim.DefaultConfig()),
		ambit.MustNew(ambit.DefaultConfig()),
	}
	for _, e := range engines {
		sub := dram.NewSubarray(cfg)
		rng := rand.New(rand.NewSource(99))
		weekRows := make([]*bitvec.Vector, weeks)
		for i := range weekRows {
			weekRows[i] = bitvec.Random(rng, users)
			sub.LoadRow(i, weekRows[i])
		}
		male := bitvec.Random(rng, users)
		sub.LoadRow(weeks, male)

		// Q1: intersect weeks into an accumulator row.
		const accQ1, accQ2 = 10, 11
		if err := e.Execute(sub, engine.OpCOPY, accQ1, 0, -1); err != nil {
			t.Fatal(err)
		}
		for i := 1; i < weeks; i++ {
			if err := e.Execute(sub, engine.OpAND, accQ1, i, accQ1); err != nil {
				t.Fatal(err)
			}
		}
		// Q2: male ∧ Q1.
		if err := e.Execute(sub, engine.OpAND, accQ2, weeks, accQ1); err != nil {
			t.Fatal(err)
		}

		want := weekRows[0].Clone()
		for i := 1; i < weeks; i++ {
			want.And(want, weekRows[i])
		}
		if got := sub.RowData(accQ1).Popcount(); got != want.Popcount() {
			t.Errorf("%s Q1 count = %d, want %d", e.Name(), got, want.Popcount())
		}
		want2 := bitvec.New(users).And(want, male)
		if got := sub.RowData(accQ2).Popcount(); got != want2.Popcount() {
			t.Errorf("%s Q2 count = %d, want %d", e.Name(), got, want2.Popcount())
		}
	}
}
