// Package bitmap implements the Bitmap-index case study of §6.3.1
// (Figure 13): tracking the activity of 16 million users, a query counts
// (Q1) the users active every week for the past w weeks and (Q2) the male
// users active each of those weeks.
//
// Both queries are AND-reductions over the week bitmaps followed by a
// count; they are evaluated in one pass over the bitmaps, each maintaining
// its own accumulator. The bulk bitwise part runs in DRAM (ELP2IM / Ambit
// with a configurable reserved-row budget), the count on the CPU.
//
// The reserved-row budget sets Ambit's per-element cost: with 4 rows the
// accumulator cannot stay resident in the B-group (4 commands per fold);
// with 6 it can (3 commands); with 10 the B-group hosts two accumulator
// triples, so the two queries share each week bitmap's staging copy (5
// commands per week for both queries instead of 6) — the diminishing
// returns of Figure 13. ELP2IM pays no staging copies at all: the APP
// primitive reads the operand in place and the AP folds it into the
// accumulator row.
package bitmap

import (
	"errors"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/primitive"
	"repro/internal/sched"
	"repro/internal/timing"
)

// Workload describes one tracking query pair.
type Workload struct {
	// Users is the bitmap width in bits (paper: 16M).
	Users int
	// Weeks is w, the number of week bitmaps intersected.
	Weeks int
}

// Default returns the paper's workload.
func Default() Workload { return Workload{Users: 16 << 20, Weeks: 8} }

// Validate reports whether the workload is usable.
func (w Workload) Validate() error {
	if w.Users <= 0 {
		return errors.New("bitmap: Users must be positive")
	}
	if w.Weeks < 2 {
		return errors.New("bitmap: Weeks must be at least 2")
	}
	return nil
}

// Design is the PIM-engine surface the case study needs: engine metadata
// plus the chained-fold command sequence (for latency and the power
// model's activation profile).
type Design interface {
	engine.Engine
	ChainSeq(op engine.Op) (primitive.Seq, error)
}

// scanFuser is implemented by designs that can fold one operand into two
// resident accumulators with a single fused command sequence (Ambit with
// 10 reserved rows).
type scanFuser interface {
	FusedChainSeq(op engine.Op) (primitive.Seq, error)
}

// Result summarizes one configuration's run of the query pair.
type Result struct {
	// Name is the design name (or "CPU").
	Name string
	// DeviceNS is the in-DRAM bulk bitwise time per query pair.
	DeviceNS float64
	// CountNS is the CPU count time per query pair.
	CountNS float64
	// SystemNS is the end-to-end time per query pair.
	SystemNS float64
	// QueriesPerSec is the system query-pair throughput.
	QueriesPerSec float64
	// RowOps is the number of row-wide DRAM operations issued.
	RowOps int
	// EffectiveBanks is the bank-level parallelism achieved.
	EffectiveBanks float64
	// ReservedRows is the design's reserved-row count (Figure 13(c)).
	ReservedRows int
	// PowerConstrained records whether the tFAW budget was enforced.
	PowerConstrained bool
	// DeviceEnergyNJ is the DRAM energy of the bulk bitwise part
	// (dynamic + background over DeviceNS) — §6.2: "in the following case
	// studies, the power of ELP2IM is 17%∼27% less than Ambit".
	DeviceEnergyNJ float64
}

// SpeedupOver returns the throughput improvement of r over the baseline.
func (r Result) SpeedupOver(base Result) float64 {
	return base.SystemNS / r.SystemNS
}

// Run evaluates the query pair on a PIM design.
func Run(w Workload, d Design, mod dram.Config, tp timing.Params, pp power.Params, m cpu.Model, constrained bool) (Result, error) {
	if err := pp.Validate(); err != nil {
		return Result{}, err
	}
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	if err := mod.Validate(); err != nil {
		return Result{}, err
	}
	if err := m.Validate(); err != nil {
		return Result{}, err
	}

	// Rows touched per bulk AND over the full user population.
	stripes := (w.Users + mod.Columns - 1) / mod.Columns

	// Q1 folds w week bitmaps (w-1 folds); Q2 folds the same w weeks plus
	// the gender bitmap (w folds): 2w-1 folds per stripe — unless the
	// design fuses the two scans, paying one fused fold per week.
	var opSeq primitive.Seq
	var rowOps int
	if f, ok := d.(scanFuser); ok {
		if fused, err := f.FusedChainSeq(engine.OpAND); err == nil {
			opSeq = fused
			rowOps = w.Weeks * stripes
		}
	}
	if opSeq == nil {
		chainSeq, err := d.ChainSeq(engine.OpAND)
		if err != nil {
			return Result{}, fmt.Errorf("bitmap: %w", err)
		}
		opSeq = chainSeq
		rowOps = (2*w.Weeks - 1) * stripes
	}
	opLatency := opSeq.Duration(tp)

	// Bank-level parallelism for the fold profile, through the process-wide
	// scheduler memo: sweeps re-pricing the same (design, op, config)
	// triple pay the event-accurate simulation once.
	profile := sched.ProfileFromSeq(opSeq, tp)
	res, err := sched.CachedSimulate(profile, sched.Config{
		Banks:            mod.Banks,
		Timing:           tp,
		PowerConstrained: constrained,
	}, 500_000)
	if err != nil {
		return Result{}, fmt.Errorf("bitmap: %w", err)
	}
	effBanks := res.EffectiveBanks
	if effBanks <= 0 {
		return Result{}, errors.New("bitmap: scheduler reported zero parallelism")
	}

	deviceNS := float64(rowOps) * opLatency / effBanks
	// Count: stream both query results out of DRAM and popcount them.
	countNS := 2 * m.PopcountNS(w.Users)

	// Device energy: dynamic per row op + module background over the
	// device time.
	deviceEnergy := opSeq.Energy(pp)*float64(rowOps) +
		pp.BackgroundPower*d.BackgroundFactor()*deviceNS

	recordObs(engine.OpAND, opSeq, opLatency, rowOps, pp)

	system := deviceNS + countNS
	return Result{
		Name:             d.Name(),
		DeviceNS:         deviceNS,
		CountNS:          countNS,
		SystemNS:         system,
		QueriesPerSec:    1e9 / system,
		RowOps:           rowOps,
		EffectiveBanks:   effBanks,
		ReservedRows:     d.ReservedRows(),
		PowerConstrained: constrained,
		DeviceEnergyNJ:   deviceEnergy,
	}, nil
}

// recordObs folds one run's modeled per-op costs into the process-wide
// observability registry, so cost-model harnesses (`elpsim fig13`,
// `elpsim -metrics`) report the same per-op-kind series the facade
// records for functional runs. The names mirror the facade's `acc.op.*`
// scheme under `app.op.*`; the histograms observe the per-row-op cost
// (one observation per Run call), the counters accumulate the workload's
// total row ops, activate events, and raised wordlines.
func recordObs(op engine.Op, seq primitive.Seq, perRowLatencyNS float64, rowOps int, pp power.Params) {
	m := obs.Global().Metrics
	name := op.String()
	m.Counter("app.op.rowops." + name).Add(int64(rowOps))
	m.Counter("app.op.activates." + name).Add(int64(seq.ActivateEvents() * rowOps))
	m.Counter("app.op.wordlines." + name).Add(int64(seq.Wordlines() * rowOps))
	m.Histogram("app.op.latency_ns."+name, obs.LatencyBuckets()).Observe(perRowLatencyNS)
	m.Histogram("app.op.energy_nj."+name, obs.EnergyBuckets()).Observe(seq.Energy(pp))
}

// RunCPU evaluates the query pair entirely on the CPU baseline.
func RunCPU(w Workload, m cpu.Model) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	// Q1: AND-reduce w bitmaps; Q2 reuses the intersection (+1 AND).
	scanNS := m.ReduceAndNS(w.Users, w.Weeks) + m.BulkOpNS(w.Users, 2)
	countNS := 2 * m.PopcountNS(w.Users)
	system := scanNS + countNS
	return Result{
		Name:          "CPU",
		DeviceNS:      scanNS,
		CountNS:       countNS,
		SystemNS:      system,
		QueriesPerSec: 1e9 / system,
	}, nil
}
