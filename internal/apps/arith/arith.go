// Package arith implements bit-serial arithmetic over vertically laid-out
// integers — the functional substrate underneath the CNN case studies:
// Dracc executes ternary-weight networks as in-DRAM additions (Table 2)
// and NID executes binary networks as XOR + population count (Table 3).
//
// Integers are stored transposed: bit i of every lane lives in row
// rows[i], so one row-wide operation advances bit position i of thousands
// of lanes at once. The ripple-carry adder and the popcount accumulator
// below are built exclusively from the engines' logic operations and run
// bit-accurately on the device model.
package arith

import (
	"errors"
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/dram"
	"repro/internal/engine"
)

// Executor is the functional engine surface.
type Executor interface {
	Execute(sub *dram.Subarray, op engine.Op, dst, a, b int) error
}

// Verticalize stores the low `width` bits of each value across rows:
// result[i].Bit(j) = bit i of values[j].
func Verticalize(values []uint64, width int) []*bitvec.Vector {
	out := make([]*bitvec.Vector, width)
	for i := range out {
		out[i] = bitvec.New(len(values))
	}
	for j, v := range values {
		for i := 0; i < width; i++ {
			if v>>uint(i)&1 == 1 {
				out[i].SetBit(j, true)
			}
		}
	}
	return out
}

// Horizontalize reads vertical rows back into per-lane values.
func Horizontalize(rows []*bitvec.Vector) []uint64 {
	if len(rows) == 0 {
		return nil
	}
	n := rows[0].Len()
	out := make([]uint64, n)
	for i, r := range rows {
		for j := 0; j < n; j++ {
			if r.Bit(j) {
				out[j] |= 1 << uint(i)
			}
		}
	}
	return out
}

// Adder performs lane-parallel integer arithmetic on a subarray.
type Adder struct {
	sub *dram.Subarray
	ex  Executor
	// scratch rows: carry, t1, t2, t3.
	carry, t1, t2, t3 int
}

// NewAdder wires an adder to a subarray; the four scratch rows must be
// distinct data rows reserved for the adder.
func NewAdder(sub *dram.Subarray, ex Executor, scratch [4]int) (*Adder, error) {
	if sub == nil || ex == nil {
		return nil, errors.New("arith: nil subarray or executor")
	}
	seen := map[int]bool{}
	for _, r := range scratch {
		if r < 0 || r >= sub.Rows() {
			return nil, fmt.Errorf("arith: scratch row %d out of range", r)
		}
		if seen[r] {
			return nil, errors.New("arith: scratch rows must be distinct")
		}
		seen[r] = true
	}
	return &Adder{sub: sub, ex: ex, carry: scratch[0], t1: scratch[1], t2: scratch[2], t3: scratch[3]}, nil
}

// zeroRow clears a row through the host path (constant initialization is
// data preparation, like Ambit's C0 control row).
func (ad *Adder) zeroRow(r int) {
	v := ad.sub.RowData(r)
	v.Fill(false)
}

// Add computes sum = a + b lane-parallel over width-W vertical integers:
// sum[i], a[i], b[i] are row indices of bit i. Rows in `sum` must be
// disjoint from a, b, and the scratch rows. The carry out of the top bit
// is discarded (modular addition), matching the fixed-width Dracc adder.
//
// Per bit: s = a ⊕ b ⊕ c;  c' = a·b + c·(a ⊕ b) — five row ops, the
// textbook full adder the engines execute natively.
func (ad *Adder) Add(sum, a, b []int) error {
	w := len(sum)
	if len(a) != w || len(b) != w || w == 0 {
		return errors.New("arith: operand widths must match and be positive")
	}
	ad.zeroRow(ad.carry)
	for i := 0; i < w; i++ {
		// t1 = a_i ^ b_i
		if err := ad.ex.Execute(ad.sub, engine.OpXOR, ad.t1, a[i], b[i]); err != nil {
			return fmt.Errorf("arith: bit %d: %w", i, err)
		}
		// sum_i = t1 ^ carry
		if err := ad.ex.Execute(ad.sub, engine.OpXOR, sum[i], ad.t1, ad.carry); err != nil {
			return fmt.Errorf("arith: bit %d: %w", i, err)
		}
		if i == w-1 {
			break // top carry discarded
		}
		// t2 = a_i & b_i; t3 = t1 & carry; carry = t2 | t3
		if err := ad.ex.Execute(ad.sub, engine.OpAND, ad.t2, a[i], b[i]); err != nil {
			return fmt.Errorf("arith: bit %d: %w", i, err)
		}
		if err := ad.ex.Execute(ad.sub, engine.OpAND, ad.t3, ad.t1, ad.carry); err != nil {
			return fmt.Errorf("arith: bit %d: %w", i, err)
		}
		if err := ad.ex.Execute(ad.sub, engine.OpOR, ad.carry, ad.t2, ad.t3); err != nil {
			return fmt.Errorf("arith: bit %d: %w", i, err)
		}
	}
	return nil
}

// Sub computes diff = a - b lane-parallel (two's complement: a + ¬b + 1),
// discarding the borrow out of the top bit. The final carry (inverted
// borrow) lands in `borrow`: borrow=0 there means a < b (unsigned) — the
// vector-vector comparison BitWeaving cannot express against a constant.
func (ad *Adder) Sub(diff, a, b []int, borrow int) error {
	w := len(diff)
	if len(a) != w || len(b) != w || w == 0 {
		return errors.New("arith: operand widths must match and be positive")
	}
	// carry starts at 1 (the +1 of two's complement).
	cv := ad.sub.RowData(ad.carry)
	cv.Fill(true)
	for i := 0; i < w; i++ {
		// t1 = a_i ^ ¬b_i; diff_i = t1 ^ carry
		if err := ad.ex.Execute(ad.sub, engine.OpXNOR, ad.t1, a[i], b[i]); err != nil {
			return fmt.Errorf("arith: bit %d: %w", i, err)
		}
		if err := ad.ex.Execute(ad.sub, engine.OpXOR, diff[i], ad.t1, ad.carry); err != nil {
			return fmt.Errorf("arith: bit %d: %w", i, err)
		}
		// carry' = (a_i & ¬b_i) | (carry & (a_i ^ ¬b_i))
		if err := ad.ex.Execute(ad.sub, engine.OpNOT, ad.t3, b[i], -1); err != nil {
			return fmt.Errorf("arith: bit %d: %w", i, err)
		}
		if err := ad.ex.Execute(ad.sub, engine.OpAND, ad.t2, a[i], ad.t3); err != nil {
			return fmt.Errorf("arith: bit %d: %w", i, err)
		}
		if err := ad.ex.Execute(ad.sub, engine.OpAND, ad.t3, ad.t1, ad.carry); err != nil {
			return fmt.Errorf("arith: bit %d: %w", i, err)
		}
		if err := ad.ex.Execute(ad.sub, engine.OpOR, ad.carry, ad.t2, ad.t3); err != nil {
			return fmt.Errorf("arith: bit %d: %w", i, err)
		}
	}
	return ad.ex.Execute(ad.sub, engine.OpCOPY, borrow, ad.carry, -1)
}

// LessThan computes per lane whether a < b (unsigned) into the `lt` row:
// the complemented borrow of a - b. Scratch rows diff (width w) hold the
// discarded difference.
func (ad *Adder) LessThan(lt int, a, b, diff []int) error {
	if err := ad.Sub(diff, a, b, lt); err != nil {
		return err
	}
	// borrow==1 means a >= b; invert in place via NOT through the engine.
	return ad.ex.Execute(ad.sub, engine.OpNOT, lt, lt, -1)
}

// AccumulateBit adds a single-bit row into a width-W vertical counter:
// counter += bit, the inner step of NID's popcount ("decomposes the count
// operation into minimum number of AND and XOR operations"). Per bit
// position: s = cnt ⊕ c; c' = cnt · c — a half-adder ripple.
func (ad *Adder) AccumulateBit(counter []int, bit int) error {
	if len(counter) == 0 {
		return errors.New("arith: empty counter")
	}
	// carry starts as the incoming bit: copy it so `bit` is preserved.
	if err := ad.ex.Execute(ad.sub, engine.OpCOPY, ad.carry, bit, -1); err != nil {
		return err
	}
	for i, c := range counter {
		// t1 = cnt_i ^ carry (new digit); t2 = cnt_i & carry (new carry)
		if err := ad.ex.Execute(ad.sub, engine.OpXOR, ad.t1, c, ad.carry); err != nil {
			return fmt.Errorf("arith: counter bit %d: %w", i, err)
		}
		if i < len(counter)-1 {
			if err := ad.ex.Execute(ad.sub, engine.OpAND, ad.t2, c, ad.carry); err != nil {
				return fmt.Errorf("arith: counter bit %d: %w", i, err)
			}
			if err := ad.ex.Execute(ad.sub, engine.OpCOPY, ad.carry, ad.t2, -1); err != nil {
				return err
			}
		}
		if err := ad.ex.Execute(ad.sub, engine.OpCOPY, c, ad.t1, -1); err != nil {
			return err
		}
	}
	return nil
}

// Popcount counts the set bits across `rows` per lane into the vertical
// counter (width must satisfy 2^W > len(rows)).
func (ad *Adder) Popcount(counter []int, rows []int) error {
	if 1<<uint(len(counter)) <= len(rows) {
		return fmt.Errorf("arith: %d-bit counter overflows on %d rows", len(counter), len(rows))
	}
	for _, c := range counter {
		ad.zeroRow(c)
	}
	for _, r := range rows {
		if err := ad.AccumulateBit(counter, r); err != nil {
			return err
		}
	}
	return nil
}

// XnorPopcount computes NID's binary-MAC kernel per lane: the number of
// positions where the input rows agree with the weight rows —
// popcount(XNOR(in_k, w_k)) across k — into the vertical counter.
// match is a scratch row for the per-position XNOR result.
func (ad *Adder) XnorPopcount(counter []int, inputs, weights []int, match int) error {
	if len(inputs) != len(weights) {
		return errors.New("arith: inputs and weights must align")
	}
	if 1<<uint(len(counter)) <= len(inputs) {
		return fmt.Errorf("arith: %d-bit counter overflows on %d terms", len(counter), len(inputs))
	}
	for _, c := range counter {
		ad.zeroRow(c)
	}
	for k := range inputs {
		if err := ad.ex.Execute(ad.sub, engine.OpXNOR, match, inputs[k], weights[k]); err != nil {
			return fmt.Errorf("arith: term %d: %w", k, err)
		}
		if err := ad.AccumulateBit(counter, match); err != nil {
			return err
		}
	}
	return nil
}
