package arith

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ambit"
	"repro/internal/dram"
	"repro/internal/drisa"
	"repro/internal/elpim"
	"repro/internal/engine"
)

const lanes = 256

// testSubarray returns a subarray wide enough for vertical arithmetic:
// rows 0..15 operand A bits, 16..31 operand B bits, 32..43 sum bits,
// 44..47 counters, 48..51 scratch, 52 match. The top rows (53..63 plus
// the dual-contact rows) stay free for Ambit's B-group staging.
func testSubarray() *dram.Subarray {
	return dram.NewSubarray(dram.Config{
		Banks: 1, SubarraysPerBank: 1,
		RowsPerSubarray: 64, Columns: lanes, DualContactRows: 2,
	})
}

func executors(t *testing.T) map[string]Executor {
	t.Helper()
	return map[string]Executor{
		"elpim": elpim.MustNew(elpim.DefaultConfig()),
		"ambit": ambit.MustNew(ambit.DefaultConfig()),
		"drisa": drisa.MustNew(drisa.DefaultConfig()),
	}
}

func TestVerticalizeHorizontalizeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	values := make([]uint64, 100)
	for i := range values {
		values[i] = rng.Uint64() & 0xFFFF
	}
	rows := Verticalize(values, 16)
	back := Horizontalize(rows)
	for i := range values {
		if back[i] != values[i] {
			t.Fatalf("lane %d: %x != %x", i, back[i], values[i])
		}
	}
	if Horizontalize(nil) != nil {
		t.Fatal("empty horizontalize")
	}
}

func TestNewAdderValidation(t *testing.T) {
	sub := testSubarray()
	ex := elpim.MustNew(elpim.DefaultConfig())
	if _, err := NewAdder(nil, ex, [4]int{0, 1, 2, 3}); err == nil {
		t.Error("nil subarray accepted")
	}
	if _, err := NewAdder(sub, nil, [4]int{0, 1, 2, 3}); err == nil {
		t.Error("nil executor accepted")
	}
	if _, err := NewAdder(sub, ex, [4]int{0, 1, 2, 2}); err == nil {
		t.Error("duplicate scratch accepted")
	}
	if _, err := NewAdder(sub, ex, [4]int{0, 1, 2, 99}); err == nil {
		t.Error("out-of-range scratch accepted")
	}
}

// loadVertical loads the low `width` bits of values into rows base..base+width-1.
func loadVertical(sub *dram.Subarray, values []uint64, width, base int) []int {
	rows := Verticalize(values, width)
	idx := make([]int, width)
	for i, r := range rows {
		idx[i] = base + i
		sub.LoadRow(idx[i], r)
	}
	return idx
}

// readVertical reads rows back into per-lane values.
func readVertical(sub *dram.Subarray, rows []int) []uint64 {
	out := make([]uint64, sub.Columns())
	for i, r := range rows {
		data := sub.RowData(r)
		for j := 0; j < sub.Columns(); j++ {
			if data.Bit(j) {
				out[j] |= 1 << uint(i)
			}
		}
	}
	return out
}

func TestLaneParallelAdditionAllEngines(t *testing.T) {
	const width = 12
	rng := rand.New(rand.NewSource(2))
	a := make([]uint64, lanes)
	b := make([]uint64, lanes)
	for i := range a {
		a[i] = rng.Uint64() & (1<<width - 1)
		b[i] = rng.Uint64() & (1<<width - 1)
	}
	for name, ex := range executors(t) {
		t.Run(name, func(t *testing.T) {
			sub := testSubarray()
			aRows := loadVertical(sub, a, width, 0)
			bRows := loadVertical(sub, b, width, 16)
			sumRows := make([]int, width)
			for i := range sumRows {
				sumRows[i] = 32 + i
			}
			ad, err := NewAdder(sub, ex, [4]int{48, 49, 50, 51})
			if err != nil {
				t.Fatal(err)
			}
			if err := ad.Add(sumRows, aRows, bRows); err != nil {
				t.Fatal(err)
			}
			got := readVertical(sub, sumRows)
			for i := range a {
				want := (a[i] + b[i]) & (1<<width - 1)
				if got[i] != want {
					t.Fatalf("lane %d: %d + %d = %d, want %d", i, a[i], b[i], got[i], want)
				}
			}
			// Operands preserved.
			if ga := readVertical(sub, aRows); ga[0] != a[0]&(1<<width-1) {
				t.Fatal("operand A clobbered")
			}
		})
	}
}

func TestAddWidthValidation(t *testing.T) {
	sub := testSubarray()
	ad, err := NewAdder(sub, elpim.MustNew(elpim.DefaultConfig()), [4]int{48, 49, 50, 51})
	if err != nil {
		t.Fatal(err)
	}
	if err := ad.Add([]int{1}, []int{2, 3}, []int{4}); err == nil {
		t.Error("width mismatch accepted")
	}
	if err := ad.Add(nil, nil, nil); err == nil {
		t.Error("empty add accepted")
	}
}

func TestPopcountAllEngines(t *testing.T) {
	const k, counterWidth = 9, 4
	rng := rand.New(rand.NewSource(3))
	for name, ex := range executors(t) {
		t.Run(name, func(t *testing.T) {
			sub := testSubarray()
			// k random bit rows.
			bitRows := make([]int, k)
			expected := make([]int, lanes)
			for i := 0; i < k; i++ {
				bitRows[i] = i
				row := sub.RowData(i)
				for j := 0; j < lanes; j++ {
					if rng.Intn(2) == 1 {
						row.SetBit(j, true)
						expected[j]++
					}
				}
			}
			counter := []int{44, 45, 46, 47}
			ad, err := NewAdder(sub, ex, [4]int{48, 49, 50, 51})
			if err != nil {
				t.Fatal(err)
			}
			if err := ad.Popcount(counter, bitRows); err != nil {
				t.Fatal(err)
			}
			got := readVertical(sub, counter)
			for j := 0; j < lanes; j++ {
				if int(got[j]) != expected[j] {
					t.Fatalf("lane %d popcount = %d, want %d", j, got[j], expected[j])
				}
			}
		})
	}
}

func TestPopcountOverflowRejected(t *testing.T) {
	sub := testSubarray()
	ad, err := NewAdder(sub, elpim.MustNew(elpim.DefaultConfig()), [4]int{48, 49, 50, 51})
	if err != nil {
		t.Fatal(err)
	}
	// 2-bit counter cannot count 4 rows.
	if err := ad.Popcount([]int{44, 45}, []int{0, 1, 2, 3}); err == nil {
		t.Error("overflowing popcount accepted")
	}
}

func TestXnorPopcountBinaryMAC(t *testing.T) {
	// The NID kernel: per lane, count agreements between input and weight
	// bit rows — the binary dot product.
	const k, counterWidth = 7, 3
	rng := rand.New(rand.NewSource(4))
	sub := testSubarray()
	ex := elpim.MustNew(elpim.DefaultConfig())
	inRows := make([]int, k)
	wRows := make([]int, k)
	agree := make([]int, lanes)
	for i := 0; i < k; i++ {
		inRows[i] = i
		wRows[i] = 16 + i
		in := sub.RowData(inRows[i])
		wt := sub.RowData(wRows[i])
		for j := 0; j < lanes; j++ {
			a := rng.Intn(2) == 1
			b := rng.Intn(2) == 1
			in.SetBit(j, a)
			wt.SetBit(j, b)
			if a == b {
				agree[j]++
			}
		}
	}
	counter := []int{44, 45, 46}
	ad, err := NewAdder(sub, ex, [4]int{48, 49, 50, 51})
	if err != nil {
		t.Fatal(err)
	}
	if err := ad.XnorPopcount(counter, inRows, wRows, 52); err != nil {
		t.Fatal(err)
	}
	got := readVertical(sub, counter)
	for j := 0; j < lanes; j++ {
		if int(got[j]) != agree[j] {
			t.Fatalf("lane %d agreements = %d, want %d", j, got[j], agree[j])
		}
	}
	if err := ad.XnorPopcount(counter, inRows, wRows[:2], 52); err == nil {
		t.Error("misaligned inputs/weights accepted")
	}
}

// Property: lane-parallel addition matches host addition for random widths
// and values on the ELP2IM engine.
func TestAdditionProperty(t *testing.T) {
	ex := elpim.MustNew(elpim.DefaultConfig())
	f := func(seed int64, widthRaw uint8) bool {
		width := int(widthRaw)%10 + 2
		rng := rand.New(rand.NewSource(seed))
		a := make([]uint64, lanes)
		b := make([]uint64, lanes)
		for i := range a {
			a[i] = rng.Uint64() & (1<<uint(width) - 1)
			b[i] = rng.Uint64() & (1<<uint(width) - 1)
		}
		sub := testSubarray()
		aRows := loadVertical(sub, a, width, 0)
		bRows := loadVertical(sub, b, width, 16)
		sumRows := make([]int, width)
		for i := range sumRows {
			sumRows[i] = 32 + i
		}
		ad, err := NewAdder(sub, ex, [4]int{48, 49, 50, 51})
		if err != nil {
			return false
		}
		if err := ad.Add(sumRows, aRows, bRows); err != nil {
			return false
		}
		got := readVertical(sub, sumRows)
		for i := range a {
			if got[i] != (a[i]+b[i])&(1<<uint(width)-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSubtractionAllEngines(t *testing.T) {
	const width = 10
	rng := rand.New(rand.NewSource(5))
	a := make([]uint64, lanes)
	b := make([]uint64, lanes)
	for i := range a {
		a[i] = rng.Uint64() & (1<<width - 1)
		b[i] = rng.Uint64() & (1<<width - 1)
	}
	for name, ex := range executors(t) {
		t.Run(name, func(t *testing.T) {
			sub := testSubarray()
			aRows := loadVertical(sub, a, width, 0)
			bRows := loadVertical(sub, b, width, 16)
			diffRows := make([]int, width)
			for i := range diffRows {
				diffRows[i] = 32 + i
			}
			const borrowRow = 53
			ad, err := NewAdder(sub, ex, [4]int{48, 49, 50, 51})
			if err != nil {
				t.Fatal(err)
			}
			if err := ad.Sub(diffRows, aRows, bRows, borrowRow); err != nil {
				t.Fatal(err)
			}
			got := readVertical(sub, diffRows)
			borrow := sub.RowData(borrowRow)
			for i := range a {
				want := (a[i] - b[i]) & (1<<width - 1)
				if got[i] != want {
					t.Fatalf("lane %d: %d - %d = %d, want %d", i, a[i], b[i], got[i], want)
				}
				// borrow bit set means no underflow (a >= b).
				if borrow.Bit(i) != (a[i] >= b[i]) {
					t.Fatalf("lane %d: borrow %v for %d - %d", i, borrow.Bit(i), a[i], b[i])
				}
			}
		})
	}
}

func TestLessThanVectorVector(t *testing.T) {
	const width = 8
	rng := rand.New(rand.NewSource(6))
	a := make([]uint64, lanes)
	b := make([]uint64, lanes)
	for i := range a {
		a[i] = rng.Uint64() & (1<<width - 1)
		b[i] = rng.Uint64() & (1<<width - 1)
	}
	sub := testSubarray()
	ex := elpim.MustNew(elpim.DefaultConfig())
	aRows := loadVertical(sub, a, width, 0)
	bRows := loadVertical(sub, b, width, 16)
	diffRows := make([]int, width)
	for i := range diffRows {
		diffRows[i] = 32 + i
	}
	const ltRow = 53
	ad, err := NewAdder(sub, ex, [4]int{48, 49, 50, 51})
	if err != nil {
		t.Fatal(err)
	}
	if err := ad.LessThan(ltRow, aRows, bRows, diffRows); err != nil {
		t.Fatal(err)
	}
	lt := sub.RowData(ltRow)
	for i := range a {
		if lt.Bit(i) != (a[i] < b[i]) {
			t.Fatalf("lane %d: lt=%v for %d < %d", i, lt.Bit(i), a[i], b[i])
		}
	}
}

func TestSubWidthValidation(t *testing.T) {
	sub := testSubarray()
	ad, err := NewAdder(sub, elpim.MustNew(elpim.DefaultConfig()), [4]int{48, 49, 50, 51})
	if err != nil {
		t.Fatal(err)
	}
	if err := ad.Sub([]int{1}, []int{2, 3}, []int{4}, 5); err == nil {
		t.Error("width mismatch accepted")
	}
}

// TestTernaryDotProduct computes a Dracc-style ternary-weight dot product
// on the device model: acc = Σ w_i · x_i with w_i ∈ {-1, 0, +1}, realized
// as lane-parallel adds and subtracts — the functional substrate of
// Table 2.
func TestTernaryDotProduct(t *testing.T) {
	const width = 8 // accumulator width (mod 256 arithmetic)
	weights := []int{+1, -1, 0, +1, -1, +1}
	rng := rand.New(rand.NewSource(7))

	// Inputs: one vertical integer per weight, small enough to avoid
	// overflow ambiguity in the host check (mod 2^width anyway).
	inputs := make([][]uint64, len(weights))
	for i := range inputs {
		inputs[i] = make([]uint64, lanes)
		for j := range inputs[i] {
			inputs[i][j] = rng.Uint64() & 0x1F
		}
	}

	sub := testSubarray()
	ex := elpim.MustNew(elpim.DefaultConfig())
	// Row map: inputs at 0..7 each (one at a time, reloaded per term),
	// accumulator at 16.., temp sum at 32.., scratch 48..51, borrow 52.
	accRows := make([]int, width)
	tmpRows := make([]int, width)
	for i := 0; i < width; i++ {
		accRows[i] = 16 + i
		tmpRows[i] = 32 + i
	}
	ad, err := NewAdder(sub, ex, [4]int{48, 49, 50, 51})
	if err != nil {
		t.Fatal(err)
	}
	// acc starts at zero.
	zero := make([]uint64, lanes)
	loadVertical(sub, zero, width, 16)

	for i, w := range weights {
		if w == 0 {
			continue
		}
		inRows := loadVertical(sub, inputs[i], width, 0)
		if w > 0 {
			// acc = acc + x: compute into tmp, then copy back.
			if err := ad.Add(tmpRows, accRows, inRows); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := ad.Sub(tmpRows, accRows, inRows, 52); err != nil {
				t.Fatal(err)
			}
		}
		for b := 0; b < width; b++ {
			if err := ex.Execute(sub, engine.OpCOPY, accRows[b], tmpRows[b], -1); err != nil {
				t.Fatal(err)
			}
		}
	}

	got := readVertical(sub, accRows)
	for j := 0; j < lanes; j++ {
		want := uint64(0)
		for i, w := range weights {
			switch {
			case w > 0:
				want += inputs[i][j]
			case w < 0:
				want -= inputs[i][j]
			}
		}
		want &= 1<<width - 1
		if got[j] != want {
			t.Fatalf("lane %d: dot product = %d, want %d", j, got[j], want)
		}
	}
}
