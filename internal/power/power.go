// Package power models DRAM energy and power at the command level, in the
// style of the Micron DDR3 power datasheet and the Rambus power model the
// paper's H-SPICE simulation is parameterized from.
//
// The model splits consumption into
//
//   - activation energy: raising a wordline, charge sharing, and the SA
//     restoring the row (per raised wordline; Ambit's TRA raises three
//     wordlines and the charge pump supplies each at low efficiency, which
//     the paper measures as +22% activate power per extra wordline),
//   - pseudo-precharge surcharge: an APP primitive keeps the SA enabled
//     longer at shifted supplies; the paper measures +31% activate power
//     for APP versus a regular AP,
//   - precharge energy per precharge (or pseudo-precharge) event,
//   - background power: the rank-level standby power (IDD3N-class) that
//     accrues for the whole duration of an operation; DRISA's in-array
//     gates and latches inflate it,
//   - gate energy: DRISA's NOR gate switching energy per compute cycle.
//
// Energies are in nanojoules, powers in watts, durations in nanoseconds.
package power

import "errors"

// Params is a calibrated set of DRAM energy parameters.
type Params struct {
	// ActivateEnergy is the energy of activating (and restoring) one row
	// through one wordline, in nJ.
	ActivateEnergy float64
	// PrechargeEnergy is the energy of one precharge event, in nJ.
	PrechargeEnergy float64
	// PseudoPrechargeEnergy is the energy of one pseudo-precharge event
	// (SA held enabled at shifted supplies), in nJ.
	PseudoPrechargeEnergy float64
	// BackgroundPower is the rank-level standby power in W that accrues
	// over an operation's full latency.
	BackgroundPower float64
	// ExtraWordlineFactor is the activate-energy surcharge per wordline
	// beyond the first in a multi-row activation (paper: 0.22, from the
	// charge pump's low efficiency when driving several wordlines).
	ExtraWordlineFactor float64
	// PseudoActivateFactor is the activate-energy surcharge of an APP-class
	// primitive relative to AP (paper: 0.31).
	PseudoActivateFactor float64
	// DrisaBackgroundFactor scales BackgroundPower for DRISA-style arrays
	// whose embedded gates and latches "greatly increase background power".
	DrisaBackgroundFactor float64
	// DrisaGateEnergy is DRISA's NOR-gate switching energy per compute
	// cycle across a row, in nJ.
	DrisaGateEnergy float64
}

// DDR31600 returns the calibration used throughout the reproduction.
// ActivateEnergy is per subarray row (one mat row through one wordline);
// BackgroundPower is a rank of eight x8 chips at IDD3N-class standby.
func DDR31600() Params {
	return Params{
		ActivateEnergy:        0.90,
		PrechargeEnergy:       0.30,
		PseudoPrechargeEnergy: 0.36,
		BackgroundPower:       0.41,
		ExtraWordlineFactor:   0.22,
		PseudoActivateFactor:  0.31,
		DrisaBackgroundFactor: 1.50,
		DrisaGateEnergy:       0.25,
	}
}

// Validate reports whether the parameters are physically meaningful.
func (p Params) Validate() error {
	switch {
	case p.ActivateEnergy <= 0:
		return errors.New("power: ActivateEnergy must be positive")
	case p.PrechargeEnergy < 0:
		return errors.New("power: PrechargeEnergy must be non-negative")
	case p.PseudoPrechargeEnergy < 0:
		return errors.New("power: PseudoPrechargeEnergy must be non-negative")
	case p.BackgroundPower < 0:
		return errors.New("power: BackgroundPower must be non-negative")
	case p.ExtraWordlineFactor < 0:
		return errors.New("power: ExtraWordlineFactor must be non-negative")
	case p.PseudoActivateFactor < 0:
		return errors.New("power: PseudoActivateFactor must be non-negative")
	case p.DrisaBackgroundFactor < 1:
		return errors.New("power: DrisaBackgroundFactor must be >= 1")
	case p.DrisaGateEnergy < 0:
		return errors.New("power: DrisaGateEnergy must be non-negative")
	}
	return nil
}

// MultiRowActivateEnergy returns the energy of one activation event that
// raises `wordlines` wordlines simultaneously (TRA: 3).
func (p Params) MultiRowActivateEnergy(wordlines int) float64 {
	if wordlines <= 0 {
		return 0
	}
	// First wordline at nominal cost, each extra at (1 + factor) because
	// the pump supplies it at degraded efficiency.
	return p.ActivateEnergy * (1 + float64(wordlines-1)*(1+p.ExtraWordlineFactor))
}

// PseudoActivateEnergy returns the activate energy of an APP-class primitive
// (single wordline, SA held at shifted supplies afterwards).
func (p Params) PseudoActivateEnergy() float64 {
	return p.ActivateEnergy * (1 + p.PseudoActivateFactor)
}

// Tally accumulates the energy of a command stream. The zero value is ready
// to use.
type Tally struct {
	activate  float64 // nJ
	precharge float64 // nJ
	gate      float64 // nJ
	duration  float64 // ns
}

// AddActivate records one activation event raising `wordlines` wordlines,
// pseudo marks APP-class activates (restore extended at shifted supply).
func (t *Tally) AddActivate(p Params, wordlines int, pseudo bool) {
	e := p.MultiRowActivateEnergy(wordlines)
	if pseudo {
		e = p.PseudoActivateEnergy() * float64(max(wordlines, 1))
	}
	t.activate += e
}

// AddPrecharge records a precharge event; pseudo marks pseudo-precharge.
func (t *Tally) AddPrecharge(p Params, pseudo bool) {
	if pseudo {
		t.precharge += p.PseudoPrechargeEnergy
	} else {
		t.precharge += p.PrechargeEnergy
	}
}

// AddGate records DRISA NOR-gate switching energy for n compute cycles.
func (t *Tally) AddGate(p Params, n int) {
	if n > 0 {
		t.gate += p.DrisaGateEnergy * float64(n)
	}
}

// AddDuration extends the operation duration over which background power
// accrues, in ns.
func (t *Tally) AddDuration(ns float64) { t.duration += ns }

// Duration returns the accumulated duration in ns.
func (t *Tally) Duration() float64 { return t.duration }

// Energy returns the total energy in nJ, including background energy for
// the accumulated duration. backgroundFactor scales BackgroundPower (1 for
// plain DRAM/Ambit/ELP2IM, Params.DrisaBackgroundFactor for DRISA).
func (t *Tally) Energy(p Params, backgroundFactor float64) float64 {
	bg := p.BackgroundPower * backgroundFactor * t.duration // W * ns = nJ
	return t.activate + t.precharge + t.gate + bg
}

// DynamicEnergy returns the energy excluding background, in nJ.
func (t *Tally) DynamicEnergy() float64 { return t.activate + t.precharge + t.gate }

// AveragePower returns the average power in W over the accumulated
// duration. It returns 0 for a zero-duration tally.
func (t *Tally) AveragePower(p Params, backgroundFactor float64) float64 {
	if t.duration <= 0 {
		return 0
	}
	return t.Energy(p, backgroundFactor) / t.duration // nJ / ns = W
}

// Reset clears the tally.
func (t *Tally) Reset() { *t = Tally{} }
