package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValidates(t *testing.T) {
	if err := DDR31600().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	base := DDR31600()
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero activate", func(p *Params) { p.ActivateEnergy = 0 }},
		{"negative precharge", func(p *Params) { p.PrechargeEnergy = -1 }},
		{"negative pseudo precharge", func(p *Params) { p.PseudoPrechargeEnergy = -1 }},
		{"negative background", func(p *Params) { p.BackgroundPower = -1 }},
		{"negative extra wordline", func(p *Params) { p.ExtraWordlineFactor = -0.1 }},
		{"negative pseudo factor", func(p *Params) { p.PseudoActivateFactor = -0.1 }},
		{"drisa background below 1", func(p *Params) { p.DrisaBackgroundFactor = 0.5 }},
		{"negative gate energy", func(p *Params) { p.DrisaGateEnergy = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := base
			tc.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("Validate accepted invalid params")
			}
		})
	}
}

func TestTripleRowActivationSurcharge(t *testing.T) {
	p := DDR31600()
	single := p.MultiRowActivateEnergy(1)
	if single != p.ActivateEnergy {
		t.Fatalf("single activation = %v, want %v", single, p.ActivateEnergy)
	}
	triple := p.MultiRowActivateEnergy(3)
	// Paper: each extra wordline costs +22% over nominal.
	want := p.ActivateEnergy * (1 + 2*1.22)
	if math.Abs(triple-want) > 1e-12 {
		t.Fatalf("TRA energy = %v, want %v", triple, want)
	}
	if p.MultiRowActivateEnergy(0) != 0 {
		t.Fatal("zero wordlines must consume no energy")
	}
}

func TestPseudoActivateSurcharge(t *testing.T) {
	p := DDR31600()
	got := p.PseudoActivateEnergy() / p.ActivateEnergy
	if math.Abs(got-1.31) > 1e-12 {
		t.Fatalf("APP activate surcharge = %v, want 1.31", got)
	}
}

func TestTallyAccumulation(t *testing.T) {
	p := DDR31600()
	var tl Tally
	tl.AddActivate(p, 1, false)
	tl.AddActivate(p, 3, false)
	tl.AddActivate(p, 1, true)
	tl.AddPrecharge(p, false)
	tl.AddPrecharge(p, true)
	tl.AddGate(p, 2)
	tl.AddDuration(100)

	wantDyn := p.ActivateEnergy + p.MultiRowActivateEnergy(3) + p.PseudoActivateEnergy() +
		p.PrechargeEnergy + p.PseudoPrechargeEnergy + 2*p.DrisaGateEnergy
	if got := tl.DynamicEnergy(); math.Abs(got-wantDyn) > 1e-12 {
		t.Fatalf("dynamic energy = %v, want %v", got, wantDyn)
	}
	wantTotal := wantDyn + p.BackgroundPower*100
	if got := tl.Energy(p, 1); math.Abs(got-wantTotal) > 1e-12 {
		t.Fatalf("total energy = %v, want %v", got, wantTotal)
	}
	if got := tl.AveragePower(p, 1); math.Abs(got-wantTotal/100) > 1e-12 {
		t.Fatalf("average power = %v, want %v", got, wantTotal/100)
	}
	if tl.Duration() != 100 {
		t.Fatalf("duration = %v, want 100", tl.Duration())
	}
}

func TestTallyZeroDurationPower(t *testing.T) {
	var tl Tally
	if got := tl.AveragePower(DDR31600(), 1); got != 0 {
		t.Fatalf("zero-duration power = %v, want 0", got)
	}
}

func TestTallyReset(t *testing.T) {
	p := DDR31600()
	var tl Tally
	tl.AddActivate(p, 1, false)
	tl.AddDuration(10)
	tl.Reset()
	if tl.DynamicEnergy() != 0 || tl.Duration() != 0 {
		t.Fatal("reset did not clear tally")
	}
}

func TestDrisaBackgroundInflation(t *testing.T) {
	p := DDR31600()
	var tl Tally
	tl.AddDuration(50)
	plain := tl.Energy(p, 1)
	drisa := tl.Energy(p, p.DrisaBackgroundFactor)
	if drisa <= plain {
		t.Fatalf("DRISA background %v must exceed plain %v", drisa, plain)
	}
	if math.Abs(drisa/plain-p.DrisaBackgroundFactor) > 1e-12 {
		t.Fatalf("background ratio = %v, want %v", drisa/plain, p.DrisaBackgroundFactor)
	}
}

func TestGateEnergyIgnoresNonPositiveCounts(t *testing.T) {
	p := DDR31600()
	var tl Tally
	tl.AddGate(p, 0)
	tl.AddGate(p, -3)
	if tl.DynamicEnergy() != 0 {
		t.Fatal("non-positive gate counts must add no energy")
	}
}

// Property: activation energy is monotone in wordline count.
func TestMultiRowEnergyMonotoneProperty(t *testing.T) {
	p := DDR31600()
	f := func(n uint8) bool {
		k := int(n%8) + 1
		return p.MultiRowActivateEnergy(k+1) > p.MultiRowActivateEnergy(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: total energy is monotone in duration for any non-negative span.
func TestEnergyMonotoneInDurationProperty(t *testing.T) {
	p := DDR31600()
	f := func(a, b uint16) bool {
		var t1, t2 Tally
		t1.AddDuration(float64(a))
		t2.AddDuration(float64(a) + float64(b) + 1)
		return t2.Energy(p, 1) > t1.Energy(p, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
