package elpim

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/primitive"
)

// Binding maps the symbolic slots of a compiled sequence to concrete
// subarray rows.
type Binding struct {
	A, B, C int
	R0, R1  int
}

// BindDefault returns a binding using the subarray's dual-contact rows as
// the reserved rows.
func BindDefault(sub *dram.Subarray, reserved int, a, b, c int) (Binding, error) {
	bind := Binding{A: a, B: b, C: c, R0: -1, R1: -1}
	if reserved >= 1 {
		bind.R0 = sub.DCCRow(0)
	}
	if reserved >= 2 {
		bind.R1 = sub.DCCRow(1)
	}
	return bind, nil
}

// resolve maps a slot (or concrete row) to a subarray row index.
func (b Binding) resolve(slot int) (int, error) {
	switch slot {
	case SlotA:
		return b.A, nil
	case SlotB:
		return b.B, nil
	case SlotC:
		return b.C, nil
	case SlotR0:
		if b.R0 < 0 {
			return 0, fmt.Errorf("elpim: sequence uses R0 but binding has none")
		}
		return b.R0, nil
	case SlotR1:
		if b.R1 < 0 {
			return 0, fmt.Errorf("elpim: sequence uses R1 but binding has none")
		}
		return b.R1, nil
	default:
		if slot < 0 {
			return 0, fmt.Errorf("elpim: unresolved slot %d", slot)
		}
		return slot, nil
	}
}

// ExecuteSeq interprets a compiled primitive sequence on a subarray,
// bit-accurately reproducing the command-level dataflow: every activate,
// pseudo-precharge, and precharge is issued to the device model.
func (e *Engine) ExecuteSeq(sub *dram.Subarray, q primitive.Seq, bind Binding) error {
	for i, step := range q {
		src, err := bind.resolve(step.Src)
		if err != nil {
			return fmt.Errorf("step %d (%v): %w", i, step, err)
		}
		mode := dram.RetainOnes
		if step.RetainZeros {
			mode = dram.RetainZeros
		}

		switch step.Kind {
		case primitive.AP:
			if err := sub.Activate(src, step.SrcNegated); err != nil {
				return fmt.Errorf("step %d (%v): %w", i, step, err)
			}
			sub.Precharge()

		case primitive.AAP, primitive.OAAP:
			dst, err := bind.resolve(step.Dst)
			if err != nil {
				return fmt.Errorf("step %d (%v): %w", i, step, err)
			}
			if err := sub.Activate(src, step.SrcNegated); err != nil {
				return fmt.Errorf("step %d (%v): %w", i, step, err)
			}
			if err := sub.Activate(dst, step.DstNegated); err != nil {
				return fmt.Errorf("step %d (%v): %w", i, step, err)
			}
			sub.Precharge()

		case primitive.APP, primitive.OAPP, primitive.TAPP, primitive.OTAPP,
			primitive.APPM, primitive.OAPPM:
			if err := sub.Activate(src, step.SrcNegated); err != nil {
				return fmt.Errorf("step %d (%v): %w", i, step, err)
			}
			// Compiled sequences mark a merged copy with a (negative)
			// slot in Dst; the zero value and the unused sentinel both
			// mean "no copy".
			if step.Dst != unused && step.Dst != 0 {
				// Merged copy: the second (overlapped) activate clones the
				// sensed value into a reserved row before the supply shift.
				dst, err := bind.resolve(step.Dst)
				if err != nil {
					return fmt.Errorf("step %d (%v): %w", i, step, err)
				}
				if err := sub.Activate(dst, step.DstNegated); err != nil {
					return fmt.Errorf("step %d (%v): %w", i, step, err)
				}
			}
			if err := sub.PseudoPrecharge(mode); err != nil {
				return fmt.Errorf("step %d (%v): %w", i, step, err)
			}

		default:
			return fmt.Errorf("step %d: primitive %v is not an ELP2IM primitive", i, step.Kind)
		}
	}
	return nil
}

// Execute implements engine.Engine: dst = op(a, b) on one subarray.
// For unary ops b is ignored. The two-buffer XOR/XNOR sequences consume
// operand a's row (documented in Compile); all other sequences preserve
// both operands. XOR and XNOR read their operands twice around an
// intermediate write to dst, so dst must not alias an operand.
func (e *Engine) Execute(sub *dram.Subarray, op engine.Op, dst, a, b int) error {
	if (op == engine.OpXOR || op == engine.OpXNOR) && (dst == a || dst == b) {
		return fmt.Errorf("elpim: %v destination must not alias an operand (dst=%d a=%d b=%d)", op, dst, a, b)
	}
	start := e.obs.Start()
	bind, err := BindDefault(sub, e.cfg.ReservedRows, a, b, dst)
	if err == nil {
		err = e.ExecuteSeq(sub, e.Compile(op), bind)
	}
	e.obs.Record(op, e.OpStats(op), start, err)
	return err
}

// ExecuteNotChain performs the complement fold functionally: row b becomes
// op(¬a, b), with the complement read through the dual-contact row.
func (e *Engine) ExecuteNotChain(sub *dram.Subarray, op engine.Op, a, b int) error {
	q, err := e.NotChainSeq(op)
	if err != nil {
		return err
	}
	bind, err := BindDefault(sub, e.cfg.ReservedRows, a, b, -1)
	if err != nil {
		return err
	}
	return e.ExecuteSeq(sub, q, bind)
}

// ExecuteInPlace performs the Figure 5(a) in-place form: row b becomes
// op(a, b).
func (e *Engine) ExecuteInPlace(sub *dram.Subarray, op engine.Op, a, b int) error {
	q, err := e.InPlaceSeq(op)
	if err != nil {
		return err
	}
	start := e.obs.Start()
	bind, err := BindDefault(sub, e.cfg.ReservedRows, a, b, -1)
	if err == nil {
		err = e.ExecuteSeq(sub, q, bind)
	}
	st, serr := e.ChainStats(op)
	if serr != nil {
		st = e.OpStats(op)
	}
	e.obs.Record(op, st, start, err)
	return err
}
