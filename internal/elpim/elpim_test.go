package elpim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ambit"
	"repro/internal/bitvec"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/timing"
)

func testSubarray(dcc int) *dram.Subarray {
	return dram.NewSubarray(dram.Config{
		Banks: 1, SubarraysPerBank: 1,
		RowsPerSubarray: 16, Columns: 256, DualContactRows: dcc,
	})
}

func newEngine(t *testing.T, mutate func(*Config)) *Engine {
	t.Helper()
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReservedRows = 3
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted 3 reserved rows")
	}
	cfg = DefaultConfig()
	cfg.Timing.Precharge = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted invalid timing")
	}
	cfg = DefaultConfig()
	cfg.Power.ActivateEnergy = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted invalid power")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.ReservedRows = 0
	MustNew(cfg)
}

// loadOperands fills rows 0 (A), 1 (B) with random data and returns them.
func loadOperands(sub *dram.Subarray, seed int64) (a, b *bitvec.Vector) {
	rng := rand.New(rand.NewSource(seed))
	a = bitvec.Random(rng, sub.Columns())
	b = bitvec.Random(rng, sub.Columns())
	sub.LoadRow(0, a)
	sub.LoadRow(1, b)
	return a, b
}

// TestAllOpsMatchGolden executes every basic operation through the real
// command interpreter and compares against the host golden model.
func TestAllOpsMatchGolden(t *testing.T) {
	for _, reserved := range []int{1, 2} {
		e := newEngine(t, func(c *Config) { c.ReservedRows = reserved })
		for _, op := range engine.BasicOps() {
			sub := testSubarray(reserved)
			a, b := loadOperands(sub, int64(reserved)*100+int64(op))
			if err := e.Execute(sub, op, 2, 0, 1); err != nil {
				t.Fatalf("reserved=%d %v: %v", reserved, op, err)
			}
			want := bitvec.New(sub.Columns())
			op.Golden(want, a, b)
			if !sub.RowData(2).Equal(want) {
				t.Errorf("reserved=%d %v: result mismatch", reserved, op)
			}
		}
	}
}

// TestOperandPreservation: with one reserved row, every sequence preserves
// both operand rows (the two-buffer XOR/XNOR documentedly consume A).
func TestOperandPreservation(t *testing.T) {
	e := newEngine(t, nil)
	for _, op := range engine.BasicOps() {
		sub := testSubarray(1)
		a, b := loadOperands(sub, 7+int64(op))
		if err := e.Execute(sub, op, 2, 0, 1); err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		if !sub.RowData(0).Equal(a) {
			t.Errorf("%v clobbered operand A", op)
		}
		if !sub.RowData(1).Equal(b) {
			t.Errorf("%v clobbered operand B", op)
		}
	}
}

func TestTwoBufferXORConsumesOnlyA(t *testing.T) {
	e := newEngine(t, func(c *Config) { c.ReservedRows = 2 })
	for _, op := range []engine.Op{engine.OpXOR, engine.OpXNOR} {
		sub := testSubarray(2)
		_, b := loadOperands(sub, 11+int64(op))
		if err := e.Execute(sub, op, 2, 0, 1); err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		if !sub.RowData(1).Equal(b) {
			t.Errorf("%v clobbered operand B (only A may be consumed)", op)
		}
	}
}

func TestCopyOp(t *testing.T) {
	e := newEngine(t, nil)
	sub := testSubarray(1)
	a, _ := loadOperands(sub, 3)
	if err := e.Execute(sub, engine.OpCOPY, 4, 0, -1); err != nil {
		t.Fatal(err)
	}
	if !sub.RowData(4).Equal(a) {
		t.Fatal("COPY mismatch")
	}
}

func TestInPlaceANDOR(t *testing.T) {
	e := newEngine(t, nil)
	for _, op := range []engine.Op{engine.OpAND, engine.OpOR} {
		sub := testSubarray(1)
		a, b := loadOperands(sub, 17+int64(op))
		if err := e.ExecuteInPlace(sub, op, 0, 1); err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		want := bitvec.New(sub.Columns())
		op.Golden(want, a, b)
		if !sub.RowData(1).Equal(want) {
			t.Errorf("in-place %v mismatch", op)
		}
		if !sub.RowData(0).Equal(a) {
			t.Errorf("in-place %v clobbered the read operand", op)
		}
	}
}

func TestNotChainMatchesGolden(t *testing.T) {
	// acc = acc op ¬src through the dual-contact row.
	e := newEngine(t, nil)
	for _, op := range []engine.Op{engine.OpAND, engine.OpOR} {
		sub := testSubarray(1)
		a, b := loadOperands(sub, 41+int64(op))
		if err := e.ExecuteNotChain(sub, op, 0, 1); err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		notA := bitvec.New(sub.Columns()).Not(a)
		want := bitvec.New(sub.Columns())
		op.Golden(want, notA, b)
		if !sub.RowData(1).Equal(want) {
			t.Errorf("complement fold %v mismatch", op)
		}
		if !sub.RowData(0).Equal(a) {
			t.Errorf("complement fold %v clobbered the source", op)
		}
	}
}

func TestNotChainRejectsNonANDOR(t *testing.T) {
	e := newEngine(t, nil)
	if _, err := e.NotChainSeq(engine.OpXOR); err == nil {
		t.Fatal("complement-fold XOR must be rejected")
	}
}

func TestNotChainCheaperThanNotPlusChain(t *testing.T) {
	// The fused fold must beat NOT + chained AND.
	e := newEngine(t, nil)
	fold, err := e.NotChainSeq(engine.OpAND)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := e.ChainSeq(engine.OpAND)
	if err != nil {
		t.Fatal(err)
	}
	tp := e.Config().Timing
	separate := e.Compile(engine.OpNOT).Duration(tp) + chain.Duration(tp)
	if fold.Duration(tp) >= separate {
		t.Errorf("fused fold %v must beat NOT+chain %v", fold.Duration(tp), separate)
	}
}

func TestInPlaceRejectsNonANDOR(t *testing.T) {
	e := newEngine(t, nil)
	if _, err := e.InPlaceSeq(engine.OpXOR); err == nil {
		t.Fatal("in-place XOR must be rejected")
	}
	if err := e.ExecuteInPlace(testSubarray(1), engine.OpNOT, 0, 1); err == nil {
		t.Fatal("in-place NOT must be rejected")
	}
	if _, err := e.InPlaceStats(engine.OpXNOR); err == nil {
		t.Fatal("in-place XNOR stats must be rejected")
	}
}

func TestHighThroughputModeMatchesGolden(t *testing.T) {
	e := newEngine(t, func(c *Config) { c.Mode = HighThroughput })
	for _, op := range engine.BasicOps() {
		sub := testSubarray(1)
		a, b := loadOperands(sub, 23+int64(op))
		if err := e.Execute(sub, op, 2, 0, 1); err != nil {
			t.Fatalf("HT %v: %v", op, err)
		}
		want := bitvec.New(sub.Columns())
		op.Golden(want, a, b)
		if !sub.RowData(2).Equal(want) {
			t.Errorf("HT %v: result mismatch", op)
		}
	}
}

func TestAblationsMatchGolden(t *testing.T) {
	// Disabling the §4.2 optimizations changes timing, never results.
	for _, mutate := range []func(*Config){
		func(c *Config) { c.UseIsolation = false },
		func(c *Config) { c.UseRestoreTruncation = false },
		func(c *Config) { c.UseIsolation = false; c.UseRestoreTruncation = false },
	} {
		e := newEngine(t, mutate)
		for _, op := range engine.BasicOps() {
			sub := testSubarray(1)
			a, b := loadOperands(sub, 31+int64(op))
			if err := e.Execute(sub, op, 2, 0, 1); err != nil {
				t.Fatalf("%v: %v", op, err)
			}
			want := bitvec.New(sub.Columns())
			op.Golden(want, a, b)
			if !sub.RowData(2).Equal(want) {
				t.Errorf("ablated %v: result mismatch", op)
			}
		}
	}
}

// TestPaperLatencies pins per-op latencies to the paper's numbers.
func TestPaperLatencies(t *testing.T) {
	e := newEngine(t, nil)
	cases := []struct {
		op   engine.Op
		want float64
		tol  float64
	}{
		{engine.OpNOT, 106, 1}, // 2 oAAPs
		{engine.OpAND, 173, 1}, // oAAP-APP-oAAP (§3.3: 3 primitives)
		{engine.OpOR, 173, 1},  //
		{engine.OpXOR, 346, 2}, // Figure 8 sequence 5: ~346 ns
	}
	for _, tc := range cases {
		got := e.OpStats(tc.op).LatencyNS
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("%v latency = %.1f ns, want ~%.0f", tc.op, got, tc.want)
		}
	}
}

func TestXORSequence6Latency(t *testing.T) {
	// Figure 8 sequence 6: two reserved rows bring XOR to ~297 ns.
	e := newEngine(t, func(c *Config) { c.ReservedRows = 2 })
	got := e.OpStats(engine.OpXOR).LatencyNS
	if got < 285 || got > 300 {
		t.Errorf("2-buffer XOR latency = %.1f ns, want ~297 (paper, sequence 6)", got)
	}
	if cmds := e.OpStats(engine.OpXOR).Commands; cmds != 6 {
		t.Errorf("2-buffer XOR uses %d primitives, want 6", cmds)
	}
}

func TestXORSequence5Shape(t *testing.T) {
	e := newEngine(t, nil)
	st := e.OpStats(engine.OpXOR)
	if st.Commands != 7 {
		t.Errorf("1-buffer XOR uses %d primitives, want 7 (sequence 5)", st.Commands)
	}
	if st.MaxWordlinesPerEvent > 2 {
		t.Errorf("ELP2IM peak wordlines/event = %d; must never exceed 2 (charge-pump friendly)", st.MaxWordlinesPerEvent)
	}
}

func TestInPlaceLatency(t *testing.T) {
	// Figure 5(a): APP-AP ≈ 67 + 49 = 116 ns; ~18% over AP-AP.
	e := newEngine(t, func(c *Config) { c.UseIsolation = false })
	st, err := e.InPlaceStats(engine.OpOR)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.LatencyNS-116.2) > 1 {
		t.Errorf("APP-AP latency = %.1f, want ~116", st.LatencyNS)
	}
}

func TestIsolationAblationSlowsXOR(t *testing.T) {
	with := newEngine(t, nil).OpStats(engine.OpXOR).LatencyNS
	without := newEngine(t, func(c *Config) { c.UseIsolation = false }).OpStats(engine.OpXOR).LatencyNS
	if with >= without {
		t.Errorf("isolation transistor must shorten XOR: with=%v without=%v", with, without)
	}
}

func TestRestoreTruncationAblationSlowsXOR(t *testing.T) {
	with := newEngine(t, nil).OpStats(engine.OpXOR).LatencyNS
	without := newEngine(t, func(c *Config) { c.UseRestoreTruncation = false }).OpStats(engine.OpXOR).LatencyNS
	if with >= without {
		t.Errorf("restore truncation must shorten XOR: with=%v without=%v", with, without)
	}
}

func TestHighThroughputRaisesFewerWordlines(t *testing.T) {
	// The HT mode's reason to exist: fewer wordlines per op than RL mode.
	rl := newEngine(t, nil)
	ht := newEngine(t, func(c *Config) { c.Mode = HighThroughput })
	for _, op := range []engine.Op{engine.OpAND, engine.OpOR} {
		if ht.OpStats(op).Wordlines >= rl.OpStats(op).Wordlines {
			t.Errorf("%v: HT wordlines %d !< RL %d", op,
				ht.OpStats(op).Wordlines, rl.OpStats(op).Wordlines)
		}
		if ht.OpStats(op).LatencyNS <= rl.OpStats(op).LatencyNS {
			t.Errorf("%v: HT should trade latency for power", op)
		}
	}
}

func TestEngineMetadata(t *testing.T) {
	e := newEngine(t, nil)
	if e.Name() != "ELP2IM" {
		t.Errorf("name = %q", e.Name())
	}
	if e.ReservedRows() != 1 {
		t.Errorf("reserved rows = %d", e.ReservedRows())
	}
	if e.BackgroundFactor() != 1 {
		t.Errorf("background factor = %v", e.BackgroundFactor())
	}
	if a := e.AreaOverheadPercent(); a <= 0 || a > 5 {
		t.Errorf("area overhead = %v%%, want small positive", a)
	}
	if ModeString := ReducedLatency.String(); ModeString != "reduced-latency" {
		t.Errorf("mode string = %q", ModeString)
	}
	if HighThroughput.String() != "high-throughput" {
		t.Error("HT mode string wrong")
	}
}

func TestBindingErrors(t *testing.T) {
	e := newEngine(t, nil)
	sub := testSubarray(1)
	// A sequence that needs R1 with a 1-reserved-row binding must fail.
	cfg2 := DefaultConfig()
	cfg2.ReservedRows = 2
	e2 := MustNew(cfg2)
	seq := e2.Compile(engine.OpXOR) // uses R1
	bind, err := BindDefault(sub, 1, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ExecuteSeq(sub, seq, bind); err == nil {
		t.Fatal("sequence using R1 with 1-row binding must fail")
	}
}

// Property test: every op on random operands, random rows, both reserved
// configurations, matches the golden model.
func TestExecuteMatchesGoldenProperty(t *testing.T) {
	f := func(seed int64, opRaw, rowsRaw uint8) bool {
		op := engine.BasicOps()[int(opRaw)%7]
		reserved := int(rowsRaw)%2 + 1
		cfg := DefaultConfig()
		cfg.ReservedRows = reserved
		e := MustNew(cfg)
		sub := testSubarray(reserved)
		rng := rand.New(rand.NewSource(seed))
		a := bitvec.Random(rng, sub.Columns())
		b := bitvec.Random(rng, sub.Columns())
		// Spread rows around the data region.
		ra, rb, rc := 3, 9, 14
		sub.LoadRow(ra, a)
		sub.LoadRow(rb, b)
		if err := e.Execute(sub, op, rc, ra, rb); err != nil {
			return false
		}
		want := bitvec.New(sub.Columns())
		op.Golden(want, a, b)
		return sub.RowData(rc).Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: chained in-place ANDs implement a multi-operand reduction.
func TestInPlaceReductionProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%5 + 2
		e := MustNew(DefaultConfig())
		sub := testSubarray(1)
		rng := rand.New(rand.NewSource(seed))
		vs := make([]*bitvec.Vector, n)
		for i := range vs {
			vs[i] = bitvec.Random(rng, sub.Columns())
			sub.LoadRow(i, vs[i])
		}
		// Reduce rows 1..n-1 into row n-1's accumulator... fold into row 0.
		for i := 1; i < n; i++ {
			if err := e.ExecuteInPlace(sub, engine.OpAND, i, 0); err != nil {
				return false
			}
		}
		want := vs[0].Clone()
		for i := 1; i < n; i++ {
			want.And(want, vs[i])
		}
		return sub.RowData(0).Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSeqAndChainAccessors(t *testing.T) {
	e := newEngine(t, nil)
	if len(e.Seq(engine.OpAND)) != 3 {
		t.Error("Seq(AND) should be 3 primitives")
	}
	st, err := e.ChainStats(engine.OpOR)
	if err != nil || st.Commands != 2 {
		t.Errorf("ChainStats = %+v, %v", st, err)
	}
	if _, err := e.ChainStats(engine.OpXOR); err == nil {
		t.Error("ChainStats(XOR) accepted")
	}
	if e.CompoundOverheadFactor() != 1 {
		t.Error("ELP2IM compound overhead must be 1")
	}
}

func TestCompilePanicsOnUnknownOp(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown op did not panic")
		}
	}()
	newEngine(t, nil).Compile(engine.Op(99))
}

func TestDDR4PortabilityPreservesOrdering(t *testing.T) {
	// §6.2: the designs are DRAM-generation agnostic — ELP2IM's latency
	// advantage over both baselines must hold on DDR4-2400 too.
	ecfg := DefaultConfig()
	ecfg.Timing = timing.DDR42400()
	e := MustNew(ecfg)
	acfg := ambit.DefaultConfig()
	acfg.Timing = timing.DDR42400()
	a := ambit.MustNew(acfg)
	for _, op := range []engine.Op{engine.OpAND, engine.OpOR, engine.OpNAND, engine.OpXOR} {
		if e.OpStats(op).LatencyNS >= a.OpStats(op).LatencyNS {
			t.Errorf("DDR4 %v: ELP2IM %v !< Ambit %v", op,
				e.OpStats(op).LatencyNS, a.OpStats(op).LatencyNS)
		}
	}
	// And everything is faster in absolute terms than on DDR3.
	e3 := MustNew(DefaultConfig())
	if e.OpStats(engine.OpXOR).LatencyNS >= e3.OpStats(engine.OpXOR).LatencyNS {
		t.Error("DDR4 XOR must be faster than DDR3-1600")
	}
}

// TestDeviceActivationsMatchStats cross-checks the two accounting paths:
// the functional executor's device-level activation counters must equal
// the cost model's canonical counts for every compiled sequence.
func TestDeviceActivationsMatchStats(t *testing.T) {
	for _, reserved := range []int{1, 2} {
		cfg := DefaultConfig()
		cfg.ReservedRows = reserved
		e := MustNew(cfg)
		for _, op := range engine.BasicOps() {
			sub := testSubarray(reserved)
			loadOperands(sub, 77+int64(op))
			sub.ResetStats()
			if err := e.Execute(sub, op, 2, 0, 1); err != nil {
				t.Fatalf("%v: %v", op, err)
			}
			st := e.OpStats(op)
			if sub.Activations != st.ActivateEvents {
				t.Errorf("reserved=%d %v: device activations %d != model %d",
					reserved, op, sub.Activations, st.ActivateEvents)
			}
			if sub.Wordlines != st.Wordlines {
				t.Errorf("reserved=%d %v: device wordlines %d != model %d",
					reserved, op, sub.Wordlines, st.Wordlines)
			}
		}
	}
}
