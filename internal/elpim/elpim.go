// Package elpim implements the paper's contribution: the ELP2IM engine,
// which performs bulk bitwise operations in DRAM using the pseudo-precharge
// states of the sense amplifier.
//
// The engine compiles each logic operation into a primitive sequence
// (§3.3 and Figure 8), executes the sequence bit-accurately on the
// functional DRAM model, and reports canonical latency/energy/activation
// statistics from the timing and power models.
//
// Row roles inside a subarray follow Figure 8(b): operand rows A and B and
// destination row C live in the regular data region; R0 (and optionally R1)
// are reserved dual-contact rows at the bottom of the array with a separate
// wordline driver, which is what lets oAAP overlap a data-row activate with
// a reserved-row activate.
package elpim

import (
	"errors"
	"fmt"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/primitive"
	"repro/internal/timing"
)

// Mode selects the execution strategy of §3.3.
type Mode int

const (
	// ReducedLatency uses oAAP-APP-oAAP class sequences, exploiting the
	// reserved dual-contact row's separate wordline driver to overlap
	// activations. It is the latency-optimal mode.
	ReducedLatency Mode = iota
	// HighThroughput uses AAP-APP-AP class sequences within one decoder
	// domain, raising fewer wordlines per op — the mode of choice when
	// bank-level parallelism is limited by the power constraint.
	HighThroughput
)

// String returns the mode name.
func (m Mode) String() string {
	if m == HighThroughput {
		return "high-throughput"
	}
	return "reduced-latency"
}

// Symbolic row slots used in compiled sequences; Bind resolves them to
// concrete subarray rows at execution time.
const (
	SlotA  = -10 // first operand row
	SlotB  = -11 // second operand row
	SlotC  = -12 // destination row
	SlotR0 = -13 // first reserved dual-contact row
	SlotR1 = -14 // second reserved dual-contact row (2-buffer config only)
	unused = -1
)

// Config parameterizes an ELP2IM engine.
type Config struct {
	// Timing is the DRAM timing parameter set.
	Timing timing.Params
	// Power is the DRAM energy parameter set.
	Power power.Params
	// Mode selects reduced-latency or high-throughput sequences.
	Mode Mode
	// ReservedRows is 1 (default, Figure 8 sequence 5) or 2 (sequence 6,
	// used in the CNN accelerator case studies).
	ReservedRows int
	// UseIsolation enables the row-buffer-decoupling isolation transistor
	// (§4.2.1): APP steps become oAPP. Disabling it is the ablation of the
	// oAPP optimization.
	UseIsolation bool
	// UseRestoreTruncation enables tAPP/otAPP for dead intermediates
	// (§4.2.2). Disabling it is the ablation of the tAPP optimization.
	UseRestoreTruncation bool
}

// DefaultConfig returns the paper's standard configuration: DDR3-1600,
// reduced-latency mode, one reserved row, both §4.2 optimizations on.
func DefaultConfig() Config {
	return Config{
		Timing:               timing.DDR31600(),
		Power:                power.DDR31600(),
		Mode:                 ReducedLatency,
		ReservedRows:         1,
		UseIsolation:         true,
		UseRestoreTruncation: true,
	}
}

// Engine is the ELP2IM design.
type Engine struct {
	cfg Config
	// seqs memoizes the compiled sequence of every operation: the engine
	// is immutable after New, so each op compiles exactly once and every
	// later Compile/Seq call is a table lookup. The cached sequences are
	// shared — callers must treat them as read-only.
	seqs [engine.OpCOPY + 1]primitive.Seq
	// obs holds the pre-resolved per-op observability series (process
	// global by default; Instrument re-points it).
	obs *engine.ObsSeries
}

// New returns an engine for cfg.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Timing.Validate(); err != nil {
		return nil, fmt.Errorf("elpim: %w", err)
	}
	if err := cfg.Power.Validate(); err != nil {
		return nil, fmt.Errorf("elpim: %w", err)
	}
	if cfg.ReservedRows != 1 && cfg.ReservedRows != 2 {
		return nil, errors.New("elpim: ReservedRows must be 1 or 2")
	}
	e := &Engine{cfg: cfg}
	for op := engine.OpNOT; op <= engine.OpCOPY; op++ {
		e.seqs[op] = e.compile(op)
	}
	e.obs = engine.NewObsSeries(nil, e.Name())
	return e, nil
}

// Instrument re-points the engine's observability series at ctx (the
// accelerator-local context when owned by a facade Accelerator).
func (e *Engine) Instrument(ctx *obs.Context) {
	e.obs = engine.NewObsSeries(ctx, e.Name())
}

// MustNew returns a New engine and panics on configuration errors.
func MustNew(cfg Config) *Engine {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "ELP2IM" }

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// ConsumesOperandA implements engine.OperandConsumer: the two-buffer
// XOR/XNOR sequences (Figure 8 sequences 6/7) compute a partial product
// in place in operand A's row, destroying it.
func (e *Engine) ConsumesOperandA(op engine.Op) bool {
	return e.cfg.ReservedRows >= 2 && (op == engine.OpXOR || op == engine.OpXNOR)
}

// ReservedRows implements engine.Engine (Figure 13(c)/14(c): 1 row, or 2
// in the accelerator configuration).
func (e *Engine) ReservedRows() int { return e.cfg.ReservedRows }

// AreaOverheadPercent implements engine.Engine. §5.2: one reserved
// dual-contact row, split-EQ metal change, and the ~0.8% isolation
// transistor; in total 22% less than Ambit's B-group overhead.
func (e *Engine) AreaOverheadPercent() float64 {
	base := 0.4 + 0.2*float64(e.cfg.ReservedRows) // reserved DCC rows + EQ split
	if e.cfg.UseIsolation {
		base += 0.8 // isolation transistor per bitline, from [31]
	}
	return base
}

// BackgroundFactor implements engine.Engine: ELP2IM adds no standby logic.
func (e *Engine) BackgroundFactor() float64 { return 1.0 }

// CompoundOverheadFactor is 1: the six primitive types make compound
// command sequences freely optimizable (§6.3.3: "it contains 6 different
// primitives, which makes the optimization quite flexible").
func (e *Engine) CompoundOverheadFactor() float64 { return 1.0 }

// app returns the engine's APP-class primitive after applying the
// isolation-transistor optimization.
func (e *Engine) app() primitive.Kind {
	if e.cfg.UseIsolation {
		return primitive.OAPP
	}
	return primitive.APP
}

// tapp returns the trimmed APP-class primitive for dead intermediates.
func (e *Engine) tapp() primitive.Kind {
	switch {
	case e.cfg.UseRestoreTruncation && e.cfg.UseIsolation:
		return primitive.OTAPP
	case e.cfg.UseRestoreTruncation:
		return primitive.TAPP
	default:
		return e.app()
	}
}

// appMerged returns the merged copy + pseudo-precharge primitive of
// Figure 8 sequence 6 (two activations: the read plus the overlapped
// reserved-row copy, then the supply shift).
func (e *Engine) appMerged() primitive.Kind {
	if e.cfg.UseIsolation && e.cfg.Mode != HighThroughput {
		return primitive.OAPPM
	}
	return primitive.APPM
}

// copyPrim returns the row-copy primitive for the current mode: oAAP
// across decoder domains in reduced-latency mode, full AAP within one
// domain in high-throughput mode.
func (e *Engine) copyPrim() primitive.Kind {
	if e.cfg.Mode == HighThroughput {
		return primitive.AAP
	}
	return primitive.OAAP
}

// Compile returns the primitive sequence implementing the three-operand
// form C = op(A, B) (B unused for unary ops). The sequences are the §3.3 /
// Figure 8 constructions; see doc.go for the step-by-step dataflow.
// The returned sequence is memoized and must be treated as read-only.
func (e *Engine) Compile(op engine.Op) primitive.Seq {
	if op >= 0 && int(op) < len(e.seqs) && e.seqs[op] != nil {
		return e.seqs[op]
	}
	return e.compile(op)
}

// compile builds the sequence afresh (the memo's producer).
func (e *Engine) compile(op engine.Op) primitive.Seq {
	cp := e.copyPrim()
	app := e.app()
	// In high-throughput mode the pseudo primitives are never overlapped
	// (no isolation transistor in the conservative power mode).
	if e.cfg.Mode == HighThroughput {
		app = primitive.APP
	}
	tapp := e.tapp()
	if e.cfg.Mode == HighThroughput && tapp == primitive.OTAPP {
		tapp = primitive.TAPP
	}

	switch op {
	case engine.OpCOPY:
		return primitive.Seq{
			{Kind: cp, Src: SlotA, Dst: SlotC},
		}

	case engine.OpNOT:
		// Through the dual-contact reserved row: copy A in, read the
		// complement out (same mechanism as Ambit's NOT).
		return primitive.Seq{
			{Kind: cp, Src: SlotA, Dst: SlotR0},
			{Kind: cp, Src: SlotR0, SrcNegated: true, Dst: SlotC},
		}

	case engine.OpAND, engine.OpOR:
		retainZeros := op == engine.OpAND
		if e.cfg.Mode == HighThroughput {
			// Figure 5(b): AAP(B→C); APP(A); AP(C) — one decoder domain.
			return primitive.Seq{
				{Kind: primitive.AAP, Src: SlotB, Dst: SlotC},
				{Kind: app, Src: SlotA, RetainZeros: retainZeros},
				{Kind: primitive.AP, Src: SlotC},
			}
		}
		// Figure 5(c): oAAP(B→R0); APP(A); oAAP(R0→C). The third
		// primitive's first activate computes the op in place in R0; the
		// overlapped second activate copies the result to C.
		return primitive.Seq{
			{Kind: cp, Src: SlotB, Dst: SlotR0},
			{Kind: primitive.APP, Src: SlotA, RetainZeros: retainZeros},
			{Kind: cp, Src: SlotR0, Dst: SlotC},
		}

	case engine.OpNAND, engine.OpNOR:
		// Compute the AND/OR in place in the dual-contact reserved row,
		// then copy the complement out.
		retainZeros := op == engine.OpNAND
		return primitive.Seq{
			{Kind: cp, Src: SlotB, Dst: SlotR0},
			{Kind: app, Src: SlotA, RetainZeros: retainZeros},
			{Kind: primitive.AP, Src: SlotR0},
			{Kind: cp, Src: SlotR0, SrcNegated: true, Dst: SlotC},
		}

	case engine.OpXOR:
		if e.cfg.ReservedRows >= 2 {
			return e.xorTwoBuffers(cp, app, e.appMerged(), tapp)
		}
		return e.xorOneBuffer(cp, app, tapp)

	case engine.OpXNOR:
		if e.cfg.ReservedRows >= 2 {
			return e.xnorTwoBuffers(cp, app, e.appMerged(), tapp)
		}
		return e.xnorOneBuffer(cp, app, tapp)

	default:
		panic(fmt.Sprintf("elpim: unknown op %v", op))
	}
}

// xorOneBuffer is Figure 8 sequence 5 (~346 ns): C = A·¬B + ¬A·B with one
// reserved dual-contact row.
func (e *Engine) xorOneBuffer(cp, app, tapp primitive.Kind) primitive.Seq {
	return primitive.Seq{
		// C = A·¬B
		{Kind: cp, Src: SlotB, Dst: SlotR0},                   // R0 = B
		{Kind: app, Src: SlotA, RetainZeros: true},            // retain A's zeros
		{Kind: cp, Src: SlotR0, SrcNegated: true, Dst: SlotC}, // C = A·¬B (R0 dead)
		// pseudo-regulate ¬A·B, then OR into C
		{Kind: cp, Src: SlotA, Dst: SlotR0},                             // R0 = A
		{Kind: app, Src: SlotB, RetainZeros: true},                      // retain B's zeros
		{Kind: tapp, Src: SlotR0, SrcNegated: true, RetainZeros: false}, // regulate ¬A·B (retain ones)
		{Kind: primitive.AP, Src: SlotC},                                // C = A·¬B + ¬A·B
	}
}

// xorTwoBuffers is Figure 8 sequence 6 (~297 ns): the second buffer lets
// the copy of B merge with its pseudo-precharge access, dropping one
// primitive. The sequence consumes operand A's row (the in-place partial
// product lands there); callers that must preserve A re-stage it first.
func (e *Engine) xorTwoBuffers(cp, app, merged, tapp primitive.Kind) primitive.Seq {
	return primitive.Seq{
		{Kind: cp, Src: SlotA, Dst: SlotR0},                           // R0 = A
		{Kind: merged, Src: SlotB, Dst: SlotR1, RetainZeros: true},    // R1 = B, retain B's zeros (merged copy)
		{Kind: cp, Src: SlotR0, SrcNegated: true, Dst: SlotC},         // C = ¬A·B (R0 dead)
		{Kind: app, Src: SlotR1, SrcNegated: true, RetainZeros: true}, // retain ¬B's zeros
		{Kind: tapp, Src: SlotA, RetainZeros: false},                  // A = A·¬B in place, regulate (retain ones)
		{Kind: primitive.AP, Src: SlotC},                              // C = ¬A·B + A·¬B
	}
}

// xnorOneBuffer computes C = ¬(A+B) + A·B with one reserved row (~396 ns).
func (e *Engine) xnorOneBuffer(cp, app, tapp primitive.Kind) primitive.Seq {
	return primitive.Seq{
		// C = ¬(A+B)
		{Kind: cp, Src: SlotA, Dst: SlotR0},                   // R0 = A
		{Kind: app, Src: SlotB, RetainZeros: false},           // retain B's ones
		{Kind: primitive.AP, Src: SlotR0},                     // R0 = A+B in place
		{Kind: cp, Src: SlotR0, SrcNegated: true, Dst: SlotC}, // C = ¬(A+B)
		// regulate A·B, then OR into C
		{Kind: cp, Src: SlotA, Dst: SlotR0},           // R0 = A
		{Kind: app, Src: SlotB, RetainZeros: true},    // retain B's zeros
		{Kind: tapp, Src: SlotR0, RetainZeros: false}, // regulate A·B (retain ones)
		{Kind: primitive.AP, Src: SlotC},              // C = ¬(A+B) + A·B
	}
}

// xnorTwoBuffers computes C = ¬(A+B) + A·B with two reserved rows
// (~347 ns). Like sequence 6, it consumes operand A's row.
func (e *Engine) xnorTwoBuffers(cp, app, merged, tapp primitive.Kind) primitive.Seq {
	return primitive.Seq{
		{Kind: cp, Src: SlotA, Dst: SlotR0},                         // R0 = A
		{Kind: merged, Src: SlotB, Dst: SlotR1, RetainZeros: false}, // R1 = B, retain B's ones
		{Kind: primitive.AP, Src: SlotR0},                           // R0 = A+B
		{Kind: cp, Src: SlotR0, SrcNegated: true, Dst: SlotC},       // C = ¬(A+B)
		{Kind: app, Src: SlotR1, RetainZeros: true},                 // retain B's zeros
		{Kind: tapp, Src: SlotA, RetainZeros: false},                // A = A·B in place, regulate
		{Kind: primitive.AP, Src: SlotC},                            // C = ¬(A+B) + A·B
	}
}

// InPlaceSeq returns the APP-AP sequence of Figure 5(a) for the in-place
// form B = op(A, B): read A with an APP, then the destination's activate
// either overwrites or senses. Only AND and OR have in-place forms.
func (e *Engine) InPlaceSeq(op engine.Op) (primitive.Seq, error) {
	if op != engine.OpAND && op != engine.OpOR {
		return nil, fmt.Errorf("elpim: no in-place sequence for %v", op)
	}
	app := e.app()
	if e.cfg.Mode == HighThroughput {
		app = primitive.APP
	}
	return primitive.Seq{
		{Kind: app, Src: SlotA, RetainZeros: op == engine.OpAND},
		{Kind: primitive.AP, Src: SlotB},
	}, nil
}

// OpStats implements engine.Engine: cost of one three-operand row op.
func (e *Engine) OpStats(op engine.Op) engine.Stats {
	return e.SeqStats(e.Compile(op))
}

// InPlaceStats returns the cost of the in-place B = op(A,B) form.
func (e *Engine) InPlaceStats(op engine.Op) (engine.Stats, error) {
	q, err := e.InPlaceSeq(op)
	if err != nil {
		return engine.Stats{}, err
	}
	return e.SeqStats(q), nil
}

// ChainStats implements engine.Reducer: ELP2IM folds an operand into a
// resident accumulator with the in-place APP-AP form of Figure 5(a) —
// two commands, two single-wordline activations.
func (e *Engine) ChainStats(op engine.Op) (engine.Stats, error) {
	return e.InPlaceStats(op)
}

// NotChainSeq returns the sequence folding the COMPLEMENT of an operand
// into a resident accumulator: acc = acc op ¬src. The operand is staged
// into the dual-contact reserved row, the APP reads it back negated while
// regulating the bitlines, and the accumulator's activate completes the
// fold in place — one copy plus the in-place pair (the compile the
// BitWeaving predicate's eq &= ¬a_i step uses).
func (e *Engine) NotChainSeq(op engine.Op) (primitive.Seq, error) {
	if op != engine.OpAND && op != engine.OpOR {
		return nil, fmt.Errorf("elpim: no complement-fold for %v", op)
	}
	app := e.app()
	if e.cfg.Mode == HighThroughput {
		app = primitive.APP
	}
	return primitive.Seq{
		{Kind: e.copyPrim(), Src: SlotA, Dst: SlotR0},
		{Kind: app, Src: SlotR0, SrcNegated: true, RetainZeros: op == engine.OpAND},
		{Kind: primitive.AP, Src: SlotB},
	}, nil
}

// Seq returns the compiled three-operand sequence for op (alias of Compile
// for scheduling profiles).
func (e *Engine) Seq(op engine.Op) primitive.Seq { return e.Compile(op) }

// ChainSeq returns the per-element sequence of the chained in-place form.
func (e *Engine) ChainSeq(op engine.Op) (primitive.Seq, error) {
	return e.InPlaceSeq(op)
}

// SeqStats converts a primitive sequence into engine statistics.
func (e *Engine) SeqStats(q primitive.Seq) engine.Stats {
	return engine.Stats{
		LatencyNS:            q.Duration(e.cfg.Timing),
		EnergyNJ:             q.Energy(e.cfg.Power),
		Commands:             len(q),
		ActivateEvents:       q.ActivateEvents(),
		Wordlines:            q.Wordlines(),
		MaxWordlinesPerEvent: q.MaxWordlinesPerEvent(),
	}
}
