// Package config (de)serializes full simulator parameter sets as JSON, so
// experiments can be reproduced under custom module geometries, timing
// grades, power calibrations, and circuit corners without recompiling.
// Absent fields inherit the DDR3-1600 defaults.
package config

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/analog"
	"repro/internal/dram"
	"repro/internal/power"
	"repro/internal/timing"
)

// File is the JSON schema. Pointer sections are optional; nil means
// "use the default".
type File struct {
	// Design selects the in-DRAM computing design: "elp2im" (default),
	// "ambit", or "drisa".
	Design string `json:"design,omitempty"`
	// Module is the DRAM geometry.
	Module *dram.Config `json:"module,omitempty"`
	// Timing is the phase-level timing parameter set.
	Timing *timing.Params `json:"timing,omitempty"`
	// Power is the energy parameter set.
	Power *power.Params `json:"power,omitempty"`
	// Circuit is the analog column model (waveforms, reliability).
	Circuit *analog.Circuit `json:"circuit,omitempty"`
	// PowerConstrained enforces the charge-pump activation budget.
	PowerConstrained bool `json:"power_constrained,omitempty"`
	// ReservedRows overrides the design's reserved-row count.
	ReservedRows int `json:"reserved_rows,omitempty"`
	// HighThroughputMode selects ELP2IM's AAP-APP-AP sequences.
	HighThroughputMode bool `json:"high_throughput,omitempty"`
	// DisableFastpath forces every stripe through the command-accurate
	// device model instead of the compiled word-level kernels. Results and
	// modeled costs are bit-identical either way.
	DisableFastpath bool `json:"disable_fastpath,omitempty"`
	// DisableFusion forces expression evaluation through the
	// node-at-a-time kernel path instead of fused k-input cluster kernels
	// (see internal/plan). Results and modeled costs are bit-identical
	// either way; DisableFastpath implies it.
	DisableFusion bool `json:"disable_fusion,omitempty"`
}

// Default returns the fully populated DDR3-1600 parameter set.
func Default() File {
	mod := dram.Default()
	tp := timing.DDR31600()
	pp := power.DDR31600()
	cc := analog.Default()
	return File{
		Design:  "elp2im",
		Module:  &mod,
		Timing:  &tp,
		Power:   &pp,
		Circuit: &cc,
	}
}

// Normalize fills absent sections with defaults and validates everything.
func (f *File) Normalize() error {
	d := Default()
	if f.Design == "" {
		f.Design = d.Design
	}
	switch f.Design {
	case "elp2im", "ambit", "drisa":
	default:
		return fmt.Errorf("config: unknown design %q (elp2im|ambit|drisa)", f.Design)
	}
	if f.Module == nil {
		f.Module = d.Module
	}
	if f.Timing == nil {
		f.Timing = d.Timing
	}
	if f.Power == nil {
		f.Power = d.Power
	}
	if f.Circuit == nil {
		f.Circuit = d.Circuit
	}
	if err := f.Module.Validate(); err != nil {
		return err
	}
	if err := f.Timing.Validate(); err != nil {
		return err
	}
	if err := f.Power.Validate(); err != nil {
		return err
	}
	if err := f.Circuit.Validate(); err != nil {
		return err
	}
	if f.ReservedRows < 0 {
		return errors.New("config: reserved_rows must be non-negative")
	}
	return nil
}

// Load decodes a parameter file, normalizing absent sections to defaults.
func Load(r io.Reader) (File, error) {
	var f File
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return File{}, fmt.Errorf("config: %w", err)
	}
	if err := f.Normalize(); err != nil {
		return File{}, err
	}
	return f, nil
}

// LoadFile loads a parameter file from disk.
func LoadFile(path string) (File, error) {
	fh, err := os.Open(path)
	if err != nil {
		return File{}, fmt.Errorf("config: %w", err)
	}
	defer fh.Close()
	return Load(fh)
}

// Save writes the parameter set as indented JSON.
func (f File) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}
