package config

import (
	"bytes"
	"strings"
	"testing"
)

func TestDefaultNormalizes(t *testing.T) {
	f := Default()
	if err := f.Normalize(); err != nil {
		t.Fatal(err)
	}
	if f.Design != "elp2im" || f.Module.Banks != 8 {
		t.Fatalf("defaults wrong: %+v", f)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	f := Default()
	f.Design = "ambit"
	f.ReservedRows = 10
	f.PowerConstrained = true
	f.Timing.Precharge = 12
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Design != "ambit" || back.ReservedRows != 10 || !back.PowerConstrained {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	if back.Timing.Precharge != 12 {
		t.Fatalf("timing not preserved: %v", back.Timing.Precharge)
	}
}

func TestLoadFillsDefaults(t *testing.T) {
	// A minimal file: only the design — everything else defaults.
	f, err := Load(strings.NewReader(`{"design":"drisa"}`))
	if err != nil {
		t.Fatal(err)
	}
	if f.Design != "drisa" {
		t.Fatal("design lost")
	}
	if f.Module == nil || f.Timing == nil || f.Power == nil || f.Circuit == nil {
		t.Fatal("defaults not filled")
	}
	if f.Timing.Precharge != 14 {
		t.Fatalf("timing default wrong: %v", f.Timing.Precharge)
	}
}

func TestLoadPartialSection(t *testing.T) {
	// Overriding one section replaces it wholesale (documented JSON
	// semantics): the user supplies a complete section.
	src := `{"timing":{"AccessSense":13,"Restore":19,"Precharge":12.5,
		"OverlapActivate":3.5,"PseudoPrechargeFactor":1.3,
		"TFAW":30,"ActivatesPerTFAW":4,"Clock":0.833}}`
	f, err := Load(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if f.Timing.Precharge != 12.5 {
		t.Fatalf("timing override lost: %v", f.Timing.Precharge)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	for _, src := range []string{
		`{`,
		`{"design":"tpu"}`,
		`{"unknown_field":1}`,
		`{"module":{"Banks":0}}`,
		`{"timing":{"AccessSense":-1}}`,
		`{"reserved_rows":-2}`,
	} {
		if _, err := Load(strings.NewReader(src)); err == nil {
			t.Errorf("Load(%q) accepted", src)
		}
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/params.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}
