package controller

import (
	"fmt"
	"strings"

	"repro/internal/dram"
	"repro/internal/power"
	"repro/internal/primitive"
	"repro/internal/timing"
)

// TraceEntry is one command's execution record.
type TraceEntry struct {
	// Command is the executed command.
	Command Command
	// StartNS and EndNS delimit the command on the timeline.
	StartNS, EndNS float64
	// EnergyNJ is the command's dynamic energy.
	EnergyNJ float64
	// Wordlines raised by the command.
	Wordlines int
}

// Trace is a timed replay of a program.
type Trace struct {
	Entries []TraceEntry
}

// Duration returns the trace end time.
func (t Trace) Duration() float64 {
	if len(t.Entries) == 0 {
		return 0
	}
	return t.Entries[len(t.Entries)-1].EndNS
}

// Energy returns the summed dynamic energy.
func (t Trace) Energy() float64 {
	total := 0.0
	for _, e := range t.Entries {
		total += e.EnergyNJ
	}
	return total
}

// String renders the trace as a table.
func (t Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %10s %8s %4s  %s\n", "start(ns)", "end(ns)", "nJ", "WL", "command")
	for _, e := range t.Entries {
		fmt.Fprintf(&b, "%10.1f %10.1f %8.2f %4d  %s\n",
			e.StartNS, e.EndNS, e.EnergyNJ, e.Wordlines, e.Command)
	}
	return b.String()
}

// Run replays the program on a subarray with rows resolved through the
// symbol table, producing the functional state change and a timed trace.
func (p *Program) Run(sub *dram.Subarray, rows map[string]int, tp timing.Params, pp power.Params) (Trace, error) {
	resolve := func(o Operand) (int, error) {
		r, ok := rows[o.Name]
		if !ok {
			return 0, fmt.Errorf("controller: unbound row symbol %q", o.Name)
		}
		return r, nil
	}

	var tr Trace
	now := 0.0
	for i, c := range p.Commands {
		src, err := resolve(c.Src)
		if err != nil {
			return tr, err
		}
		switch c.Kind {
		case primitive.AP:
			if err := sub.Activate(src, c.Src.Negated); err != nil {
				return tr, cmdErr(i, c, err)
			}
			sub.Precharge()

		case primitive.AAP, primitive.OAAP:
			dst, err := resolve(*c.Dst)
			if err != nil {
				return tr, err
			}
			if err := sub.Activate(src, c.Src.Negated); err != nil {
				return tr, cmdErr(i, c, err)
			}
			if err := sub.Activate(dst, c.Dst.Negated); err != nil {
				return tr, cmdErr(i, c, err)
			}
			sub.Precharge()

		case primitive.APP, primitive.OAPP, primitive.TAPP, primitive.OTAPP,
			primitive.APPM, primitive.OAPPM:
			if err := sub.Activate(src, c.Src.Negated); err != nil {
				return tr, cmdErr(i, c, err)
			}
			if c.Dst != nil {
				dst, err := resolve(*c.Dst)
				if err != nil {
					return tr, err
				}
				if err := sub.Activate(dst, c.Dst.Negated); err != nil {
					return tr, cmdErr(i, c, err)
				}
			}
			mode := dram.RetainOnes
			if c.RetainZeros {
				mode = dram.RetainZeros
			}
			if err := sub.PseudoPrecharge(mode); err != nil {
				return tr, cmdErr(i, c, err)
			}

		case primitive.TRAAP, primitive.TRAAAP:
			r2, err := resolve(c.Aux2)
			if err != nil {
				return tr, err
			}
			r3, err := resolve(c.Aux3)
			if err != nil {
				return tr, err
			}
			if err := sub.ActivateTRA(src, r2, r3); err != nil {
				return tr, cmdErr(i, c, err)
			}
			if c.Kind == primitive.TRAAAP {
				dst, err := resolve(*c.Dst)
				if err != nil {
					return tr, err
				}
				if err := sub.Activate(dst, c.Dst.Negated); err != nil {
					return tr, cmdErr(i, c, err)
				}
			}
			sub.Precharge()

		default:
			return tr, fmt.Errorf("controller: command %d (%s): unsupported primitive", i, c)
		}

		d := c.Kind.Duration(tp)
		tr.Entries = append(tr.Entries, TraceEntry{
			Command:   c,
			StartNS:   now,
			EndNS:     now + d,
			EnergyNJ:  c.Kind.Energy(pp),
			Wordlines: c.Kind.Wordlines(),
		})
		now += d
	}
	return tr, nil
}

func cmdErr(i int, c Command, err error) error {
	return fmt.Errorf("controller: command %d (%s): %w", i, c, err)
}

// SequenceBuffer is the configurable controller's per-operation program
// store (§5.1): named, pre-validated command programs.
type SequenceBuffer struct {
	programs map[string]*Program
}

// NewSequenceBuffer returns an empty buffer.
func NewSequenceBuffer() *SequenceBuffer {
	return &SequenceBuffer{programs: map[string]*Program{}}
}

// Store assembles and registers a program under a name.
func (s *SequenceBuffer) Store(name, src string) error {
	p, err := Assemble(src)
	if err != nil {
		return err
	}
	s.programs[name] = p
	return nil
}

// Lookup returns a stored program.
func (s *SequenceBuffer) Lookup(name string) (*Program, bool) {
	p, ok := s.programs[name]
	return p, ok
}

// Names returns the stored program names (unordered).
func (s *SequenceBuffer) Names() []string {
	out := make([]string, 0, len(s.programs))
	for n := range s.programs {
		out = append(out, n)
	}
	return out
}
