// Package controller models the §5.1 memory-controller integration: the
// new control modes are exposed as a small command language in the paper's
// prmt([dst],src) notation, programs are validated against the subarray
// state machine, buffered per operation (the "configurable memory
// controller, where specific primitive sequence can be buffered"), and
// replayed with a per-command timeline against the device model.
//
// Command syntax (one command per whitespace-separated token or line;
// '#' starts a comment):
//
//	AP(src)                    activate src, precharge
//	AAP([dst],src)             copy src → dst (full activate-activate)
//	oAAP([dst],src)            overlapped copy via the separate decoder
//	APP(src):zeros|ones        activate src, pseudo-precharge retaining
//	                           zeros (AND) or ones (OR; default)
//	oAPP(src):mode             overlapped APP (isolation transistor)
//	oAPP([dst],src):mode       merged copy + pseudo-precharge
//	tAPP(src):mode             restore-truncated APP
//	otAPP(src):mode            trimmed and overlapped APP
//	TRA(r0,r1,r2)              triple-row activation, precharge
//	TRA([dst],r0,r1,r2)        TRA with an overlapped copy of the result
//
// Row operands are identifiers resolved through a symbol table; a '~'
// prefix selects the negated wordline of a dual-contact row.
package controller

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/power"
	"repro/internal/primitive"
	"repro/internal/timing"
)

// Operand is a symbolic row reference.
type Operand struct {
	// Name is the symbol ("A", "R0", "week3", ...).
	Name string
	// Negated selects the dual-contact complementary wordline.
	Negated bool
}

// String renders the operand.
func (o Operand) String() string {
	if o.Negated {
		return "~" + o.Name
	}
	return o.Name
}

// Command is one parsed controller command.
type Command struct {
	// Kind is the primitive this command issues.
	Kind primitive.Kind
	// Dst is the copy target ([dst]); nil when absent.
	Dst *Operand
	// Src is the (first) activated row; for TRA the first of the triple.
	Src Operand
	// Aux2, Aux3 complete a TRA triple.
	Aux2, Aux3 Operand
	// RetainZeros selects the AND retain mode for APP-class commands.
	RetainZeros bool
}

// String renders the command in the source notation.
func (c Command) String() string {
	mode := ""
	if c.Kind.IsPseudo() {
		mode = ":ones"
		if c.RetainZeros {
			mode = ":zeros"
		}
	}
	switch c.Kind {
	case primitive.TRAAP:
		return fmt.Sprintf("TRA(%s,%s,%s)", c.Src, c.Aux2, c.Aux3)
	case primitive.TRAAAP:
		return fmt.Sprintf("TRA([%s],%s,%s,%s)", c.Dst, c.Src, c.Aux2, c.Aux3)
	}
	if c.Dst != nil {
		return fmt.Sprintf("%s([%s],%s)%s", c.Kind, c.Dst, c.Src, mode)
	}
	return fmt.Sprintf("%s(%s)%s", c.Kind, c.Src, mode)
}

// Program is a validated command sequence.
type Program struct {
	Commands []Command
	// Source is the assembled text.
	Source string
}

// kindNames maps mnemonic → primitive kind.
var kindNames = map[string]primitive.Kind{
	"AP":    primitive.AP,
	"AAP":   primitive.AAP,
	"OAAP":  primitive.OAAP,
	"APP":   primitive.APP,
	"OAPP":  primitive.OAPP,
	"TAPP":  primitive.TAPP,
	"OTAPP": primitive.OTAPP,
	"TRA":   primitive.TRAAP, // upgraded to TRAAAP when [dst] present
}

// Assemble parses a command program. Commands are separated by
// whitespace and/or newlines; '#' comments run to end of line.
func Assemble(src string) (*Program, error) {
	p := &Program{Source: src}
	for lineNo, line := range strings.Split(src, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		for _, tok := range strings.Fields(line) {
			cmd, err := parseCommand(tok)
			if err != nil {
				return nil, fmt.Errorf("controller: line %d: %w", lineNo+1, err)
			}
			p.Commands = append(p.Commands, cmd)
		}
	}
	if len(p.Commands) == 0 {
		return nil, errors.New("controller: empty program")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustAssemble assembles and panics on error.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

// parseCommand parses one PRIM(...)[:mode] token.
func parseCommand(tok string) (Command, error) {
	open := strings.IndexByte(tok, '(')
	closeIdx := strings.LastIndexByte(tok, ')')
	if open < 0 || closeIdx < open {
		return Command{}, fmt.Errorf("malformed command %q", tok)
	}
	name := strings.ToUpper(tok[:open])
	kind, ok := kindNames[name]
	if !ok {
		return Command{}, fmt.Errorf("unknown primitive %q", tok[:open])
	}
	args := tok[open+1 : closeIdx]
	tail := tok[closeIdx+1:]

	cmd := Command{Kind: kind}
	switch tail {
	case "":
	case ":ones":
	case ":zeros":
		cmd.RetainZeros = true
	default:
		return Command{}, fmt.Errorf("bad mode suffix %q in %q", tail, tok)
	}
	if tail != "" && !kind.IsPseudo() {
		return Command{}, fmt.Errorf("mode suffix on non-pseudo command %q", tok)
	}

	// Optional [dst] prefix.
	rest := args
	if strings.HasPrefix(rest, "[") {
		end := strings.IndexByte(rest, ']')
		if end < 0 {
			return Command{}, fmt.Errorf("unterminated [dst] in %q", tok)
		}
		dst, err := parseOperand(rest[1:end])
		if err != nil {
			return Command{}, err
		}
		cmd.Dst = &dst
		rest = strings.TrimPrefix(rest[end+1:], ",")
	}
	parts := strings.Split(rest, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}

	switch kind {
	case primitive.TRAAP:
		if len(parts) != 3 {
			return Command{}, fmt.Errorf("TRA needs 3 rows in %q", tok)
		}
		var err error
		if cmd.Src, err = parseOperand(parts[0]); err != nil {
			return Command{}, err
		}
		if cmd.Aux2, err = parseOperand(parts[1]); err != nil {
			return Command{}, err
		}
		if cmd.Aux3, err = parseOperand(parts[2]); err != nil {
			return Command{}, err
		}
		if cmd.Dst != nil {
			cmd.Kind = primitive.TRAAAP
		}
		if cmd.Src.Negated || cmd.Aux2.Negated || cmd.Aux3.Negated {
			return Command{}, fmt.Errorf("TRA rows cannot be negated in %q", tok)
		}
		return cmd, nil

	case primitive.AAP, primitive.OAAP:
		if cmd.Dst == nil {
			return Command{}, fmt.Errorf("%s needs a [dst] in %q", kind, tok)
		}
	case primitive.AP, primitive.TAPP, primitive.OTAPP:
		if cmd.Dst != nil {
			return Command{}, fmt.Errorf("%s cannot take [dst] in %q", kind, tok)
		}
	case primitive.APP, primitive.OAPP:
		// [dst] selects the merged-copy form (Figure 8 sequence 6), a
		// distinct primitive with two activations.
		if cmd.Dst != nil {
			if kind == primitive.OAPP {
				cmd.Kind = primitive.OAPPM
			} else {
				cmd.Kind = primitive.APPM
			}
		}
	}
	if len(parts) != 1 || parts[0] == "" {
		return Command{}, fmt.Errorf("%s needs exactly one source row in %q", kind, tok)
	}
	var err error
	cmd.Src, err = parseOperand(parts[0])
	if err != nil {
		return Command{}, err
	}
	return cmd, nil
}

func parseOperand(s string) (Operand, error) {
	s = strings.TrimSpace(s)
	neg := strings.HasPrefix(s, "~")
	if neg {
		s = s[1:]
	}
	if s == "" {
		return Operand{}, errors.New("empty row operand")
	}
	for _, r := range s {
		if !(r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9') {
			return Operand{}, fmt.Errorf("bad row name %q", s)
		}
	}
	return Operand{Name: s, Negated: neg}, nil
}

// Validate checks the program against the subarray state machine:
// a TRA needs a precharged array (no pending pseudo-precharge state), and
// the program must not end with a dangling regulated bitline.
func (p *Program) Validate() error {
	pseudo := false
	for i, c := range p.Commands {
		switch c.Kind {
		case primitive.TRAAP, primitive.TRAAAP:
			if pseudo {
				return fmt.Errorf("controller: command %d (%s): TRA requires a precharged subarray but a pseudo-precharge is pending", i, c)
			}
			pseudo = false
		case primitive.APP, primitive.OAPP, primitive.TAPP, primitive.OTAPP:
			// Consumes any pending regulation, then regulates again.
			pseudo = true
		default:
			pseudo = false
		}
	}
	if pseudo {
		return errors.New("controller: program ends with a pending pseudo-precharge (dangling bitline regulation)")
	}
	return nil
}

// Duration returns the program latency in ns.
func (p *Program) Duration(tp timing.Params) float64 {
	total := 0.0
	for _, c := range p.Commands {
		total += c.Kind.Duration(tp)
	}
	return total
}

// Energy returns the program's dynamic energy in nJ.
func (p *Program) Energy(pp power.Params) float64 {
	total := 0.0
	for _, c := range p.Commands {
		total += c.Kind.Energy(pp)
	}
	return total
}

// Symbols returns the distinct row names in first-appearance order.
func (p *Program) Symbols() []string {
	seen := map[string]bool{}
	var out []string
	add := func(o Operand) {
		if o.Name != "" && !seen[o.Name] {
			seen[o.Name] = true
			out = append(out, o.Name)
		}
	}
	for _, c := range p.Commands {
		add(c.Src)
		if c.Dst != nil {
			add(*c.Dst)
		}
		add(c.Aux2)
		add(c.Aux3)
	}
	return out
}

// String renders the program one command per line.
func (p *Program) String() string {
	var b strings.Builder
	for _, c := range p.Commands {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return b.String()
}
