package controller

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/dram"
	"repro/internal/power"
	"repro/internal/primitive"
	"repro/internal/timing"
)

// The paper's oAAP-APP-oAAP AND (Figure 5(c)) in controller notation.
const andProgram = `
# C = A AND B through the reserved dual-contact row R0
oAAP([R0],B)
APP(A):zeros
oAAP([C],R0)
`

func TestAssembleANDProgram(t *testing.T) {
	p, err := Assemble(andProgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Commands) != 3 {
		t.Fatalf("commands = %d, want 3", len(p.Commands))
	}
	if p.Commands[0].Kind != primitive.OAAP || p.Commands[1].Kind != primitive.APP {
		t.Fatalf("kinds wrong: %v", p.Commands)
	}
	if !p.Commands[1].RetainZeros {
		t.Fatal("APP mode :zeros not parsed")
	}
	syms := p.Symbols()
	want := []string{"B", "R0", "A", "C"} // source before copy target

	if len(syms) != len(want) {
		t.Fatalf("symbols = %v", syms)
	}
	for i := range want {
		if syms[i] != want[i] {
			t.Fatalf("symbols = %v, want %v", syms, want)
		}
	}
}

func TestAssembleTRA(t *testing.T) {
	p, err := Assemble("TRA(T0,T1,T2)")
	if err != nil {
		t.Fatal(err)
	}
	if p.Commands[0].Kind != primitive.TRAAP {
		t.Fatal("plain TRA kind wrong")
	}
	p, err = Assemble("TRA([C],T0,T1,T2)")
	if err != nil {
		t.Fatal(err)
	}
	if p.Commands[0].Kind != primitive.TRAAAP {
		t.Fatal("TRA with [dst] must upgrade to TRA-AAP")
	}
}

func TestAssembleErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"FOO(A)",
		"AP(A",
		"AP([C],A)",                  // AP cannot copy
		"AAP(A)",                     // AAP needs [dst]
		"AP(A):zeros",                // mode on non-pseudo
		"APP(A):sideways",            // bad mode
		"TRA(T0,T1)",                 // TRA arity
		"TRA(~T0,T1,T2)",             // negated TRA row
		"AAP([C,A)",                  // unterminated dst
		"APP()",                      // empty operand
		"AP(a-b)",                    // bad row name
		"APP(A):zeros",               // dangling pseudo at end
		"APP(A):zeros TRA(T0,T1,T2)", // TRA with pending pseudo
	} {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) accepted", src)
		}
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAssemble did not panic")
		}
	}()
	MustAssemble("nope(")
}

func TestCommandString(t *testing.T) {
	p := MustAssemble("oAPP([R1],B):zeros oAAP([C],~R0) AP(X)")
	rendered := p.String()
	// The merged-copy form renders as the distinct oAPPm primitive.
	for _, want := range []string{"oAPPm([R1],B):zeros", "oAAP([C],~R0)", "AP(X)"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("render missing %q:\n%s", want, rendered)
		}
	}
}

func TestDurationAndEnergy(t *testing.T) {
	tp := timing.DDR31600()
	pp := power.DDR31600()
	p := MustAssemble(andProgram)
	wantDur := primitive.OAAP.Duration(tp) + primitive.APP.Duration(tp) + primitive.OAAP.Duration(tp)
	if got := p.Duration(tp); math.Abs(got-wantDur) > 1e-9 {
		t.Fatalf("duration = %v, want %v", got, wantDur)
	}
	wantE := 2*primitive.OAAP.Energy(pp) + primitive.APP.Energy(pp)
	if got := p.Energy(pp); math.Abs(got-wantE) > 1e-9 {
		t.Fatalf("energy = %v, want %v", got, wantE)
	}
}

func testSubarray() *dram.Subarray {
	return dram.NewSubarray(dram.Config{
		Banks: 1, SubarraysPerBank: 1,
		RowsPerSubarray: 16, Columns: 128, DualContactRows: 1,
	})
}

func TestRunANDProgram(t *testing.T) {
	sub := testSubarray()
	rng := rand.New(rand.NewSource(1))
	a := bitvec.Random(rng, 128)
	b := bitvec.Random(rng, 128)
	sub.LoadRow(0, a)
	sub.LoadRow(1, b)
	rows := map[string]int{"A": 0, "B": 1, "C": 2, "R0": sub.DCCRow(0)}

	p := MustAssemble(andProgram)
	tr, err := p.Run(sub, rows, timing.DDR31600(), power.DDR31600())
	if err != nil {
		t.Fatal(err)
	}
	want := bitvec.New(128).And(a, b)
	if !sub.RowData(2).Equal(want) {
		t.Fatal("controller-program AND mismatch")
	}
	// Trace timeline: contiguous, monotone, correct total.
	if len(tr.Entries) != 3 {
		t.Fatalf("trace entries = %d", len(tr.Entries))
	}
	for i, e := range tr.Entries {
		if e.EndNS <= e.StartNS {
			t.Fatalf("entry %d not positive-length", i)
		}
		if i > 0 && math.Abs(e.StartNS-tr.Entries[i-1].EndNS) > 1e-9 {
			t.Fatalf("entry %d not contiguous", i)
		}
	}
	if math.Abs(tr.Duration()-p.Duration(timing.DDR31600())) > 1e-9 {
		t.Fatal("trace duration != program duration")
	}
	if math.Abs(tr.Energy()-p.Energy(power.DDR31600())) > 1e-9 {
		t.Fatal("trace energy != program energy")
	}
	if !strings.Contains(tr.String(), "APP(A):zeros") {
		t.Fatal("trace render missing command")
	}
}

func TestRunXORSequence5(t *testing.T) {
	// Figure 8 sequence 5, hand-written in controller notation, must
	// compute XOR on the device model.
	src := `
oAAP([R0],B)  oAPP(A):zeros       oAAP([C],~R0)
oAAP([R0],A)  oAPP(B):zeros       otAPP(~R0):ones
AP(C)
`
	sub := testSubarray()
	rng := rand.New(rand.NewSource(2))
	a := bitvec.Random(rng, 128)
	b := bitvec.Random(rng, 128)
	sub.LoadRow(0, a)
	sub.LoadRow(1, b)
	rows := map[string]int{"A": 0, "B": 1, "C": 2, "R0": sub.DCCRow(0)}

	p := MustAssemble(src)
	if _, err := p.Run(sub, rows, timing.DDR31600(), power.DDR31600()); err != nil {
		t.Fatal(err)
	}
	want := bitvec.New(128).Xor(a, b)
	if !sub.RowData(2).Equal(want) {
		t.Fatal("sequence-5 XOR mismatch")
	}
	if d := p.Duration(timing.DDR31600()); math.Abs(d-346.6) > 1 {
		t.Fatalf("sequence-5 duration = %v, want ~346", d)
	}
}

func TestRunTRAProgram(t *testing.T) {
	// Ambit-style AND: copies + TRA with result copy-out.
	src := "oAAP([T0],A) oAAP([T1],B) oAAP([T2],Z) TRA([C],T0,T1,T2)"
	sub := testSubarray()
	rng := rand.New(rand.NewSource(3))
	a := bitvec.Random(rng, 128)
	b := bitvec.Random(rng, 128)
	sub.LoadRow(0, a)
	sub.LoadRow(1, b)
	// Z stays all-zero: TRA majority with 0 = AND.
	rows := map[string]int{"A": 0, "B": 1, "Z": 2, "T0": 3, "T1": 4, "T2": 5, "C": 6}
	p := MustAssemble(src)
	if _, err := p.Run(sub, rows, timing.DDR31600(), power.DDR31600()); err != nil {
		t.Fatal(err)
	}
	want := bitvec.New(128).And(a, b)
	if !sub.RowData(6).Equal(want) {
		t.Fatal("TRA program AND mismatch")
	}
}

func TestRunErrors(t *testing.T) {
	p := MustAssemble("AP(A)")
	sub := testSubarray()
	if _, err := p.Run(sub, map[string]int{}, timing.DDR31600(), power.DDR31600()); err == nil {
		t.Fatal("unbound symbol accepted")
	}
	// Negated activate of a non-DCC row must surface the device error.
	p2 := MustAssemble("AP(~A)")
	if _, err := p2.Run(sub, map[string]int{"A": 0}, timing.DDR31600(), power.DDR31600()); err == nil {
		t.Fatal("negated non-DCC activate accepted")
	}
}

func TestSequenceBuffer(t *testing.T) {
	buf := NewSequenceBuffer()
	if err := buf.Store("and", andProgram); err != nil {
		t.Fatal(err)
	}
	if err := buf.Store("bad", "AP("); err == nil {
		t.Fatal("invalid program stored")
	}
	p, ok := buf.Lookup("and")
	if !ok || len(p.Commands) != 3 {
		t.Fatal("lookup failed")
	}
	if _, ok := buf.Lookup("bad"); ok {
		t.Fatal("invalid program present")
	}
	if names := buf.Names(); len(names) != 1 || names[0] != "and" {
		t.Fatalf("names = %v", names)
	}
}

func TestMergedCopyAPP(t *testing.T) {
	// oAPP([R1],B):zeros — the sequence-6 merged copy — must copy B and
	// leave the retain-zeros regulation pending for the next activate.
	sub := dram.NewSubarray(dram.Config{
		Banks: 1, SubarraysPerBank: 1,
		RowsPerSubarray: 16, Columns: 128, DualContactRows: 2,
	})
	rng := rand.New(rand.NewSource(4))
	a := bitvec.Random(rng, 128)
	b := bitvec.Random(rng, 128)
	sub.LoadRow(0, a)
	sub.LoadRow(1, b)
	rows := map[string]int{"A": 0, "B": 1, "C": 2, "R1": sub.DCCRow(1)}
	p := MustAssemble("oAPP([R1],B):zeros AP(A)") // A becomes A AND B in place
	if _, err := p.Run(sub, rows, timing.DDR31600(), power.DDR31600()); err != nil {
		t.Fatal(err)
	}
	if !sub.RowData(sub.DCCRow(1)).Equal(b) {
		t.Fatal("merged copy did not stage B")
	}
	want := bitvec.New(128).And(a, b)
	if !sub.RowData(0).Equal(want) {
		t.Fatal("pending regulation did not fold into the next activate")
	}
}
