package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; all methods are safe for concurrent use (one atomic add each).
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a point-in-time integer metric (queue depth, entry count). The
// zero value is ready to use; all methods are safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Max raises the gauge to n if n exceeds the current value.
func (g *Gauge) Max(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// atomicFloat accumulates a float64 with compare-and-swap adds.
type atomicFloat struct {
	bits atomic.Uint64
}

// Add accumulates v.
func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the accumulated sum.
func (f *atomicFloat) Value() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram is a fixed-bucket distribution metric. Bucket i counts
// observations v with bounds[i-1] < v <= bounds[i]; the final implicit
// bucket counts v > bounds[len-1]. Observe is lock-free (one atomic add
// plus a CAS-loop sum update).
type Histogram struct {
	bounds []float64 // ascending upper bounds, immutable after creation
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomicFloat
}

// newHistogram returns a histogram over the given ascending upper bounds.
func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// snapshot copies the histogram into plain values.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    h.sum.Value(),
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// ExpBuckets returns n ascending bucket bounds starting at start and
// growing by factor: start, start*factor, ... — the standard shape for
// latency and energy series.
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LatencyBuckets is the default bucket set for modeled-latency series
// (ns): 16 buckets from 50 ns to ~82 ms.
func LatencyBuckets() []float64 { return ExpBuckets(50, 2.5, 16) }

// EnergyBuckets is the default bucket set for modeled-energy series (nJ):
// 16 buckets from 1 nJ to ~1 J.
func EnergyBuckets() []float64 { return ExpBuckets(1, 4, 16) }

// Registry is a named-series metrics registry. Series are created on
// first lookup and live forever; hot paths should resolve their series
// once and keep the pointer, making steady-state updates pure atomics.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later callers' bounds are ignored).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[name]; ok {
		return h
	}
	h = newHistogram(bounds)
	r.histograms[name] = h
	return h
}

// Snapshot copies every series into plain values, safe to read while
// writers keep updating. Each series is read atomically; the snapshot as
// a whole is not a single instant, but every value in it was current at
// some point during the call.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// HistogramSnapshot is the plain-value copy of one histogram series.
type HistogramSnapshot struct {
	// Count is the total number of observations.
	Count int64
	// Sum is the sum of all observed values.
	Sum float64
	// Bounds are the ascending bucket upper bounds.
	Bounds []float64
	// Counts has len(Bounds)+1 entries; Counts[i] is the number of
	// observations in (Bounds[i-1], Bounds[i]], the last being overflow.
	Counts []int64
}

// Mean returns the average observed value (0 with no observations).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1)
// from the bucket counts: the upper bound of the bucket containing the
// q*Count-th observation (the last finite bound for the overflow bucket).
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.Counts {
		seen += c
		if seen >= rank {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			return h.Bounds[len(h.Bounds)-1]
		}
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Snapshot is a plain-value copy of a registry, for programmatic scraping
// (Accelerator.Snapshot), the debug endpoint, and the -metrics reports.
type Snapshot struct {
	// Counters maps series name to count.
	Counters map[string]int64
	// Gauges maps series name to current value.
	Gauges map[string]int64
	// Histograms maps series name to its distribution.
	Histograms map[string]HistogramSnapshot
}

// Counter returns the named counter's value (0 when absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns the named gauge's value (0 when absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Text renders the snapshot as a sorted human-readable report, the format
// behind the -metrics flags.
func (s Snapshot) Text() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%-44s %12d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%-44s %12d\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(&b, "%-44s n=%-9d mean=%-12.4g p50=%-10.4g p99=%-10.4g sum=%.6g\n",
			n, h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Sum)
	}
	return b.String()
}
