package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}

	var g Gauge
	g.Set(7)
	if got := g.Add(-3); got != 4 {
		t.Errorf("gauge add returned %d, want 4", got)
	}
	g.Max(10)
	g.Max(2) // lower value must not win
	if got := g.Value(); got != 10 {
		t.Errorf("gauge max = %d, want 10", got)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram([]float64{10, 100})
	// Bucket layout: (-inf,10], (10,100], (100,+inf). The upper bound is
	// inclusive, matching HistogramSnapshot's documented contract.
	h.Observe(10)  // first bucket, on the edge
	h.Observe(5)   // first bucket
	h.Observe(11)  // second bucket
	h.Observe(100) // second bucket, on the edge
	h.Observe(101) // overflow
	s := h.snapshot()
	want := []int64{2, 2, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if s.Sum != 10+5+11+100+101 {
		t.Errorf("sum = %g, want 227", s.Sum)
	}
	if got := s.Mean(); got != 227.0/5 {
		t.Errorf("mean = %g, want %g", got, 227.0/5)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 50; i++ {
		h.Observe(0.5) // first bucket
	}
	for i := 0; i < 49; i++ {
		h.Observe(3) // third bucket (2,4]
	}
	h.Observe(100) // overflow
	s := h.snapshot()
	if got := s.Quantile(0.5); got != 1 {
		t.Errorf("p50 = %g, want 1", got)
	}
	if got := s.Quantile(0.99); got != 4 {
		t.Errorf("p99 = %g, want 4", got)
	}
	// The overflow bucket reports the last finite bound.
	if got := s.Quantile(1); got != 8 {
		t.Errorf("p100 = %g, want 8", got)
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(50, 2.5, 4)
	want := []float64{50, 125, 312.5, 781.25}
	if len(b) != len(want) {
		t.Fatalf("len = %d, want %d", len(b), len(want))
	}
	for i := range want {
		if b[i] != want[i] {
			t.Errorf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
}

func TestRegistrySharedSeries(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x")
	c2 := r.Counter("x")
	if c1 != c2 {
		t.Error("same name resolved to distinct counters")
	}
	c1.Add(3)
	h := r.Histogram("lat", LatencyBuckets())
	h.Observe(60)
	r.Gauge("g").Set(9)

	s := r.Snapshot()
	if s.Counter("x") != 3 || s.Gauge("g") != 9 {
		t.Errorf("snapshot: counter=%d gauge=%d", s.Counter("x"), s.Gauge("g"))
	}
	if s.Histograms["lat"].Count != 1 {
		t.Errorf("histogram count = %d, want 1", s.Histograms["lat"].Count)
	}
	if s.Counter("absent") != 0 || s.Gauge("absent") != 0 {
		t.Error("absent series must read as 0")
	}
	if !strings.Contains(s.Text(), "lat") {
		t.Error("Text() missing histogram series")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("n").Inc()
				r.Histogram("h", []float64{1, 10}).Observe(float64(j % 20))
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counter("n") != 8000 {
		t.Errorf("counter = %d, want 8000", s.Counter("n"))
	}
	if s.Histograms["h"].Count != 8000 {
		t.Errorf("histogram count = %d, want 8000", s.Histograms["h"].Count)
	}
}

// chromeEvent is the subset of the trace_event schema the tests decode.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args"`
}

func TestJSONLTracerIsValidChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	tr.Span(SpanEvent{Name: "a", Cat: "facade", StartNS: 1000, DurNS: 2000, Op: "AND", Stripes: 3, LatencyNS: 1.5, Err: `bad "quote"`})
	tr.Span(SpanEvent{Name: "b", Cat: "engine", StartNS: 4000, DurNS: 500, TID: 7})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Spans() != 2 {
		t.Errorf("spans = %d, want 2", tr.Spans())
	}

	// The whole file must parse as a JSON array (chrome://tracing's format;
	// the stream writer leaves a trailing comma that the format allows but
	// encoding/json does not — normalize it before decoding).
	text := strings.Replace(buf.String(), ",\n]", "\n]", 1)
	var events []chromeEvent
	if err := json.Unmarshal([]byte(text), &events); err != nil {
		t.Fatalf("trace does not parse as JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 2 {
		t.Fatalf("decoded %d events, want 2", len(events))
	}
	e := events[0]
	if e.Ph != "X" || e.Name != "a" || e.Cat != "facade" {
		t.Errorf("event 0 = %+v", e)
	}
	if e.TS != 0 { // rebased to the first event
		t.Errorf("ts = %g, want 0", e.TS)
	}
	if e.Dur != 2 { // 2000 ns = 2 µs
		t.Errorf("dur = %g, want 2", e.Dur)
	}
	if e.Args["op"] != "AND" || e.Args["err"] != `bad "quote"` {
		t.Errorf("args = %v", e.Args)
	}
	if events[1].TS != 3 || events[1].TID != 7 {
		t.Errorf("event 1 = %+v", events[1])
	}
}

func TestJSONLTracerEmptyCloseIsValid(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var events []chromeEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("empty trace does not parse: %v\n%s", err, buf.String())
	}
	if len(events) != 0 {
		t.Errorf("decoded %d events, want 0", len(events))
	}
}

func TestWriteChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	spans := []SpanEvent{
		{Name: "p1", Cat: "waveform", StartNS: 500, DurNS: 100},
		{Name: "p2", Cat: "waveform", StartNS: 600, DurNS: 300},
	}
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var events []chromeEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace does not parse: %v\n%s", err, buf.String())
	}
	if len(events) != 2 || events[0].TS != 0 || events[1].TS != 0.1 {
		t.Errorf("events = %+v", events)
	}
}

func TestContextTracerLifecycle(t *testing.T) {
	c := NewContext()
	if c.Tracing() {
		t.Error("fresh context must not be tracing")
	}
	if got := c.SpanStart(); got != 0 {
		t.Errorf("SpanStart with no tracer = %d, want 0", got)
	}
	c.Span(SpanEvent{Name: "dropped"}) // must not panic

	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	c.SetTracer(tr)
	if !c.Tracing() {
		t.Error("tracer installed but Tracing() is false")
	}
	if got := c.SpanStart(); got == 0 {
		t.Error("SpanStart with tracer = 0")
	}
	c.Span(SpanEvent{Name: "kept", StartNS: 1, DurNS: 1})
	c.SetTracer(nil)
	if c.Tracing() {
		t.Error("tracer removed but Tracing() is true")
	}
	c.Span(SpanEvent{Name: "dropped"})
	if tr.Spans() != 1 {
		t.Errorf("tracer saw %d spans, want 1", tr.Spans())
	}

	var nilCtx *Context
	if nilCtx.Tracing() || nilCtx.SpanStart() != 0 {
		t.Error("nil context must be inert")
	}
	nilCtx.SetTracer(tr) // must not panic
}

func TestDisabledPathAllocatesNothing(t *testing.T) {
	c := NewContext()
	cnt := c.Metrics.Counter("hot")
	h := c.Metrics.Histogram("hist", LatencyBuckets())
	allocs := testing.AllocsPerRun(1000, func() {
		if start := c.SpanStart(); start != 0 {
			c.Span(SpanEvent{Name: "never"})
		}
		cnt.Inc()
		h.Observe(75)
	})
	if allocs != 0 {
		t.Errorf("disabled observability path allocates %.1f bytes-events/op, want 0", allocs)
	}

	var nop NopTracer
	allocs = testing.AllocsPerRun(1000, func() {
		nop.Span(SpanEvent{Name: "x", Op: "AND", StartNS: 1, DurNS: 2})
	})
	if allocs != 0 {
		t.Errorf("NopTracer.Span allocates %.1f, want 0", allocs)
	}
}
