package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// debugSnap holds the snapshot provider published to expvar. expvar only
// accepts one registration per name process-wide, so the publisher is
// installed once and reads whichever provider was installed last.
var (
	debugSnap    atomic.Pointer[func() Snapshot]
	publishOnce  sync.Once
	publishedVar = "elp2im.metrics"
)

// publishExpvar installs the process-wide expvar variable on first use.
func publishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish(publishedVar, expvar.Func(func() any {
			if f := debugSnap.Load(); f != nil {
				return (*f)()
			}
			return Snapshot{}
		}))
	})
}

// DebugServer is a running observability endpoint: /metrics (text, or
// ?format=json), /debug/vars (expvar, including the latest snapshot under
// "elp2im.metrics"), and /debug/pprof/* (the standard Go profiler).
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound listen address (useful with ":0").
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *DebugServer) Close() error { return s.srv.Close() }

// Serve starts the opt-in debug endpoint on addr (e.g. "localhost:6060"
// or ":0" for an ephemeral port), scraping snap for /metrics and expvar.
// The caller owns the returned server and must Close it.
func Serve(addr string, snap func() Snapshot) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	debugSnap.Store(&snap)
	publishExpvar()

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		s := snap()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(s)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(s.Text()))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return &DebugServer{ln: ln, srv: srv}, nil
}
