// Package obs is the observability substrate of the reproduction: a
// lock-cheap metrics registry (counters, gauges, histograms), a pluggable
// structured-span tracer with a Chrome trace_event JSONL writer, and an
// opt-in expvar/pprof debug endpoint.
//
// The package is a leaf — it imports only the standard library — so every
// layer (facade, pipeline, scheduler, engines) can depend on it without
// cycles. Hot paths interact with it exclusively through pre-resolved
// series pointers (atomic adds) and nil-guarded tracer hooks, so the
// steady-state overhead with tracing disabled is a handful of atomic
// operations per operation and zero heap allocations.
package obs

import (
	"sync/atomic"
	"time"
)

// Context bundles the two observability channels a component carries
// through execution: a metrics registry and an optional tracer. A nil
// *Context is valid and disables both channels.
type Context struct {
	// Metrics is the registry series are resolved against. Never nil on a
	// Context built by NewContext or Global.
	Metrics *Registry

	// tracer holds the active Tracer (nil pointer means tracing is off).
	// It is an atomic pointer so SetTracer may race with in-flight
	// operations without a data race.
	tracer atomic.Pointer[Tracer]
}

// NewContext returns a context with a fresh registry and no tracer.
func NewContext() *Context {
	return &Context{Metrics: NewRegistry()}
}

// global is the process-wide context: standalone engines, worker pools and
// the scheduler memo default to it.
var global = NewContext()

// Global returns the process-wide observability context.
func Global() *Context { return global }

// SetTracer installs (or, with nil, removes) the context's tracer. Safe to
// call concurrently with running operations.
func (c *Context) SetTracer(t Tracer) {
	if c == nil {
		return
	}
	if t == nil {
		c.tracer.Store(nil)
		return
	}
	c.tracer.Store(&t)
}

// Tracer returns the active tracer, or nil when tracing is off.
func (c *Context) Tracer() Tracer {
	if c == nil {
		return nil
	}
	p := c.tracer.Load()
	if p == nil {
		return nil
	}
	return *p
}

// Tracing reports whether a tracer is installed. Span emitters use it to
// skip event construction entirely when tracing is off.
func (c *Context) Tracing() bool { return c.Tracer() != nil }

// SpanStart returns the wall-clock timestamp (unix ns) a span emitter
// should capture before the traced section, or 0 when tracing is off so
// the disabled path never touches the clock.
func (c *Context) SpanStart() int64 {
	if c.Tracer() == nil {
		return 0
	}
	return time.Now().UnixNano()
}

// Span forwards ev to the installed tracer, if any. Callers on hot paths
// should guard with Tracing() so the event literal is not even built when
// tracing is off.
func (c *Context) Span(ev SpanEvent) {
	if t := c.Tracer(); t != nil {
		t.Span(ev)
	}
}
