package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestDebugServer(t *testing.T) {
	r := NewRegistry()
	r.Counter("srv.hits").Add(5)
	srv, err := Serve("127.0.0.1:0", r.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if text := get("/metrics"); !strings.Contains(text, "srv.hits") {
		t.Errorf("/metrics missing series:\n%s", text)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(get("/metrics?format=json")), &s); err != nil {
		t.Fatalf("/metrics?format=json does not parse: %v", err)
	}
	if s.Counter("srv.hits") != 5 {
		t.Errorf("json snapshot counter = %d, want 5", s.Counter("srv.hits"))
	}
	if vars := get("/debug/vars"); !strings.Contains(vars, publishedVar) {
		t.Errorf("/debug/vars missing %q", publishedVar)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Error("/debug/pprof/ index looks wrong")
	}
}
