package obs

import (
	"io"
	"strconv"
	"sync"
)

// SpanEvent is one structured span: a named, categorized interval with
// optional modeled-cost annotations. All fields are scalars so emitting an
// event through a Tracer never allocates on the caller's side.
type SpanEvent struct {
	// Name is the span label (op mnemonic, "task", design.op, ...).
	Name string
	// Cat is the layer that emitted the span: "facade", "batch",
	// "pipeline", "stripe", "engine", "sched", or "waveform".
	Cat string
	// TID is the logical lane the span ran on (worker index, subarray
	// group, 0 for the facade).
	TID int64
	// StartNS is the span's wall-clock start in unix nanoseconds (or any
	// consistent nanosecond timebase; exporters rebase to the first event).
	StartNS int64
	// DurNS is the span's wall-clock duration in nanoseconds.
	DurNS int64
	// Op and Design annotate the modeled operation, when applicable.
	Op     string
	Design string
	// Stripes is the number of row stripes the operation covered.
	Stripes int
	// LatencyNS and EnergyNJ are the operation's modeled cost (not wall
	// time), when applicable.
	LatencyNS float64
	EnergyNJ  float64
	// Commands and Wordlines are the modeled command/activation counts.
	Commands  int
	Wordlines int
	// Err carries the error message of a failed span ("" on success).
	Err string
}

// Tracer receives structured span events. Implementations must be safe
// for concurrent use; Span is called from worker goroutines.
type Tracer interface {
	// Span records one completed span.
	Span(ev SpanEvent)
}

// NopTracer is a Tracer that discards every event. Emitting through it
// performs no work and allocates nothing.
type NopTracer struct{}

// Span implements Tracer by doing nothing.
func (NopTracer) Span(SpanEvent) {}

// JSONLTracer writes one Chrome trace_event JSON object per line — a
// JSON-lines stream that is simultaneously a valid Chrome tracing file:
// the first line opens a JSON array, every event line ends with a comma,
// and Close writes the closing bracket (chrome://tracing and Perfetto
// accept the file with or without it). Timestamps are rebased to the
// first event.
type JSONLTracer struct {
	mu    sync.Mutex
	w     io.Writer
	base  int64
	head  bool
	spans int64
	err   error
}

// NewJSONLTracer returns a tracer streaming trace_event lines to w.
func NewJSONLTracer(w io.Writer) *JSONLTracer {
	return &JSONLTracer{w: w}
}

// Span implements Tracer.
func (t *JSONLTracer) Span(ev SpanEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if !t.head {
		t.head = true
		t.base = ev.StartNS
		if _, err := io.WriteString(t.w, "[\n"); err != nil {
			t.err = err
			return
		}
	}
	buf := make([]byte, 0, 256)
	buf = appendTraceEvent(buf, ev, t.base)
	buf = append(buf, ',', '\n')
	if _, err := t.w.Write(buf); err != nil {
		t.err = err
		return
	}
	t.spans++
}

// Spans returns the number of events successfully written.
func (t *JSONLTracer) Spans() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spans
}

// Close terminates the JSON array and returns the first write error
// encountered, if any.
func (t *JSONLTracer) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	if !t.head {
		if _, err := io.WriteString(t.w, "[\n"); err != nil {
			return err
		}
	}
	_, err := io.WriteString(t.w, "]\n")
	return err
}

// WriteChromeTrace writes a complete Chrome trace_event JSON array for a
// span slice, rebasing timestamps to the earliest span. It is the one-shot
// exporter behind cmd/waveform's -chrome flag.
func WriteChromeTrace(w io.Writer, spans []SpanEvent) error {
	base := int64(0)
	for i, ev := range spans {
		if i == 0 || ev.StartNS < base {
			base = ev.StartNS
		}
	}
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	buf := make([]byte, 0, 256)
	for i, ev := range spans {
		buf = appendTraceEvent(buf[:0], ev, base)
		if i < len(spans)-1 {
			buf = append(buf, ',')
		}
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}

// appendTraceEvent renders ev as one Chrome trace_event "X" (complete
// duration) object. ts/dur are microseconds per the trace format.
func appendTraceEvent(buf []byte, ev SpanEvent, baseNS int64) []byte {
	buf = append(buf, `{"name":`...)
	buf = appendJSONString(buf, ev.Name)
	buf = append(buf, `,"cat":`...)
	buf = appendJSONString(buf, ev.Cat)
	buf = append(buf, `,"ph":"X","pid":1,"tid":`...)
	buf = strconv.AppendInt(buf, ev.TID, 10)
	buf = append(buf, `,"ts":`...)
	buf = strconv.AppendFloat(buf, float64(ev.StartNS-baseNS)/1e3, 'f', 3, 64)
	buf = append(buf, `,"dur":`...)
	buf = strconv.AppendFloat(buf, float64(ev.DurNS)/1e3, 'f', 3, 64)
	buf = append(buf, `,"args":{`...)
	first := true
	arg := func(key string) {
		if !first {
			buf = append(buf, ',')
		}
		first = false
		buf = append(buf, '"')
		buf = append(buf, key...)
		buf = append(buf, `":`...)
	}
	if ev.Op != "" {
		arg("op")
		buf = appendJSONString(buf, ev.Op)
	}
	if ev.Design != "" {
		arg("design")
		buf = appendJSONString(buf, ev.Design)
	}
	if ev.Stripes != 0 {
		arg("stripes")
		buf = strconv.AppendInt(buf, int64(ev.Stripes), 10)
	}
	if ev.LatencyNS != 0 {
		arg("model_latency_ns")
		buf = strconv.AppendFloat(buf, ev.LatencyNS, 'f', -1, 64)
	}
	if ev.EnergyNJ != 0 {
		arg("model_energy_nj")
		buf = strconv.AppendFloat(buf, ev.EnergyNJ, 'f', -1, 64)
	}
	if ev.Commands != 0 {
		arg("commands")
		buf = strconv.AppendInt(buf, int64(ev.Commands), 10)
	}
	if ev.Wordlines != 0 {
		arg("wordlines")
		buf = strconv.AppendInt(buf, int64(ev.Wordlines), 10)
	}
	if ev.Err != "" {
		arg("err")
		buf = appendJSONString(buf, ev.Err)
	}
	buf = append(buf, `}}`...)
	return buf
}

// appendJSONString appends s as a quoted JSON string, escaping the
// characters that can occur in op names and error messages.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			buf = append(buf, '\\', c)
		case c == '\n':
			buf = append(buf, '\\', 'n')
		case c == '\t':
			buf = append(buf, '\\', 't')
		case c < 0x20:
			buf = append(buf, `\u00`...)
			const hex = "0123456789abcdef"
			buf = append(buf, hex[c>>4], hex[c&0xf])
		default:
			buf = append(buf, c)
		}
	}
	return append(buf, '"')
}
