package timing

import (
	"math"
	"testing"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDDR31600Validates(t *testing.T) {
	if err := DDR31600().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestDerivedJEDECQuantities(t *testing.T) {
	p := DDR31600()
	if got := p.TRAS(); !almostEqual(got, 35, 1e-9) {
		t.Errorf("tRAS = %v, want 35", got)
	}
	if got := p.TRP(); !almostEqual(got, 14, 1e-9) {
		t.Errorf("tRP = %v, want 14", got)
	}
	if got := p.TRC(); !almostEqual(got, 49, 1e-9) {
		t.Errorf("tRC = %v, want 49", got)
	}
}

func TestPseudoPrechargeLongerThanPrecharge(t *testing.T) {
	p := DDR31600()
	pp, pre := p.PseudoPrecharge(), p.Precharge
	if pp <= pre {
		t.Fatalf("pseudo-precharge %v must exceed precharge %v", pp, pre)
	}
	// Paper: 20–30% longer than precharge.
	ratio := pp / pre
	if ratio < 1.2 || ratio > 1.3+1e-9 {
		t.Errorf("pseudo-precharge/precharge = %v, want within [1.2, 1.3]", ratio)
	}
	// Paper: 13–20% shorter than the restore time of activate... the restore
	// phase is 21 ns, pseudo-precharge 18.2 ns → 13.3% shorter. Check band.
	short := 1 - pp/p.Restore
	if short < 0.13-1e-9 || short > 0.20+1e-9 {
		t.Errorf("pseudo-precharge is %.1f%% shorter than restore, want 13–20%%", short*100)
	}
}

func TestPhaseDurationsSumToActivate(t *testing.T) {
	p := DDR31600()
	sum := p.Duration(PhaseAccess) + p.Duration(PhaseSense) + p.Duration(PhaseRestore)
	if !almostEqual(sum, p.TRAS(), 1e-9) {
		t.Errorf("phase sum %v != tRAS %v", sum, p.TRAS())
	}
}

func TestPhaseString(t *testing.T) {
	want := map[Phase]string{
		PhaseAccess:          "access",
		PhaseSense:           "sense",
		PhaseRestore:         "restore",
		PhasePseudoPrecharge: "pseudo-precharge",
		PhasePrecharge:       "precharge",
	}
	for ph, s := range want {
		if ph.String() != s {
			t.Errorf("Phase(%d).String() = %q, want %q", int(ph), ph.String(), s)
		}
	}
	if got := Phase(99).String(); got != "Phase(99)" {
		t.Errorf("unknown phase = %q", got)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	base := DDR31600()
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero access", func(p *Params) { p.AccessSense = 0 }},
		{"negative restore", func(p *Params) { p.Restore = -1 }},
		{"zero precharge", func(p *Params) { p.Precharge = 0 }},
		{"negative overlap", func(p *Params) { p.OverlapActivate = -1 }},
		{"sub-unity pseudo factor", func(p *Params) { p.PseudoPrechargeFactor = 0.9 }},
		{"zero tFAW", func(p *Params) { p.TFAW = 0 }},
		{"zero budget", func(p *Params) { p.ActivatesPerTFAW = 0 }},
		{"zero clock", func(p *Params) { p.Clock = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := base
			tc.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("Validate accepted invalid params")
			}
		})
	}
}

func TestActivationWindowBasic(t *testing.T) {
	w := NewActivationWindow(40, 4)
	if w.Width() != 40 || w.Budget() != 4 {
		t.Fatalf("accessors wrong: width=%v budget=%v", w.Width(), w.Budget())
	}
	// Four single activations at t=0 fit.
	for i := 0; i < 4; i++ {
		at := w.EarliestIssue(0, 1)
		if at != 0 {
			t.Fatalf("activation %d delayed to %v, want 0", i, at)
		}
		w.Issue(at, 1)
	}
	// Fifth must wait until the first expires (t=40).
	at := w.EarliestIssue(0, 1)
	if !almostEqual(at, 40, 1e-9) {
		t.Fatalf("fifth activation at %v, want 40", at)
	}
}

func TestActivationWindowTripleRow(t *testing.T) {
	w := NewActivationWindow(40, 4)
	// A TRA consumes 3 units; a second TRA in the same window must wait.
	w.Issue(0, 3)
	at := w.EarliestIssue(0, 3)
	if !almostEqual(at, 40, 1e-9) {
		t.Fatalf("second TRA at %v, want 40", at)
	}
	// But a single activation still fits alongside the first TRA.
	if got := w.EarliestIssue(0, 1); got != 0 {
		t.Fatalf("single activation delayed to %v, want 0", got)
	}
}

func TestActivationWindowOversizedRequestDoesNotDeadlock(t *testing.T) {
	w := NewActivationWindow(40, 2)
	w.Issue(0, 2)
	at := w.EarliestIssue(0, 5) // larger than budget; clamped
	if math.IsInf(at, 1) || at < 0 {
		t.Fatalf("oversized request produced %v", at)
	}
	if !almostEqual(at, 40, 1e-9) {
		t.Fatalf("oversized request at %v, want 40", at)
	}
}

func TestActivationWindowRollingExpiry(t *testing.T) {
	w := NewActivationWindow(10, 2)
	w.Issue(0, 1)
	w.Issue(5, 1)
	// At t=10.1 the t=0 event has expired: one slot free.
	if got := w.EarliestIssue(10.1, 1); got != 10.1 {
		t.Fatalf("issue at %v, want 10.1", got)
	}
	w.Issue(10.1, 1)
	// Now events at 5 and 10.1 occupy the window: next single activation
	// must wait until 5+10=15.
	if got := w.EarliestIssue(10.2, 1); !almostEqual(got, 15, 1e-9) {
		t.Fatalf("issue at %v, want 15", got)
	}
}

func TestActivationWindowOutOfOrderIssue(t *testing.T) {
	w := NewActivationWindow(10, 2)
	w.Issue(5, 1)
	w.Issue(3, 1) // out of order: must still be accounted
	if got := w.EarliestIssue(5, 1); !almostEqual(got, 13, 1e-9) {
		t.Fatalf("issue at %v, want 13 (3+10)", got)
	}
}

func TestActivationWindowReset(t *testing.T) {
	w := NewActivationWindow(10, 1)
	w.Issue(0, 1)
	w.Reset()
	if got := w.EarliestIssue(0, 1); got != 0 {
		t.Fatalf("after reset issue at %v, want 0", got)
	}
}

func TestActivationWindowZeroWordlines(t *testing.T) {
	w := NewActivationWindow(10, 1)
	w.Issue(0, 1)
	if got := w.EarliestIssue(0, 0); got != 0 {
		t.Fatalf("zero-wordline request delayed to %v", got)
	}
	w.Issue(0, 0) // no-op
	if got := w.EarliestIssue(0, 1); !almostEqual(got, 10, 1e-9) {
		t.Fatalf("issue at %v, want 10", got)
	}
}

func TestNewActivationWindowPanicsOnBadArgs(t *testing.T) {
	for _, tc := range []struct {
		w float64
		b int
	}{{0, 1}, {1, 0}, {-1, 1}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewActivationWindow(%v,%d) did not panic", tc.w, tc.b)
				}
			}()
			NewActivationWindow(tc.w, tc.b)
		}()
	}
}

func TestRefreshOverhead(t *testing.T) {
	p := DDR31600()
	want := p.TRFC / p.TREFI
	if got := p.RefreshOverhead(); !almostEqual(got, want, 1e-12) {
		t.Fatalf("refresh overhead = %v, want %v", got, want)
	}
	p.TREFI = 0
	if p.RefreshOverhead() != 0 {
		t.Fatal("disabled refresh must report zero overhead")
	}
}

func TestValidateRejectsBadRefresh(t *testing.T) {
	p := DDR31600()
	p.TRFC = -1
	if err := p.Validate(); err == nil {
		t.Error("negative TRFC accepted")
	}
	p = DDR31600()
	p.TRFC = p.TREFI
	if err := p.Validate(); err == nil {
		t.Error("TRFC >= TREFI accepted")
	}
}

func TestDiscardBefore(t *testing.T) {
	w := NewActivationWindow(10, 2)
	w.Issue(0, 1)
	w.Issue(5, 1)
	// Watermark 14: the event at 0 (expired for any window ending >= 14)
	// is dropped, the one at 5 retained (a window ending at 14 sees it).
	w.DiscardBefore(14)
	if got := w.EarliestIssue(14, 2); !almostEqual(got, 15, 1e-9) {
		t.Fatalf("issue at %v, want 15 (event at 5 must still count)", got)
	}
}

func TestPhaseDurationUnknown(t *testing.T) {
	if DDR31600().Duration(Phase(99)) != 0 {
		t.Fatal("unknown phase must have zero duration")
	}
}

func TestDDR42400Validates(t *testing.T) {
	p := DDR42400()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// DDR4 must be at least as fast as DDR3-1600 on the row cycle.
	if p.TRC() > DDR31600().TRC() {
		t.Fatal("DDR4 tRC must not exceed DDR3-1600")
	}
	// Pseudo-precharge remains 20–30% longer than precharge.
	ratio := p.PseudoPrecharge() / p.Precharge
	if ratio < 1.2 || ratio > 1.3+1e-9 {
		t.Fatalf("DDR4 pseudo-precharge ratio %v outside [1.2,1.3]", ratio)
	}
}
