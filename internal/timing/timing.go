// Package timing models DRAM timing at the granularity the ELP2IM paper
// (HPCA 2020) works at: the phase level of a subarray access. A regular
// access is precharge → access → sense → restore; ELP2IM inserts a
// pseudo-precharge phase in which the sense amplifier, with one supply rail
// shifted to Vdd/2, regulates the bitline before the precharge unit runs.
//
// All durations are expressed in nanoseconds as float64. The default
// parameter set is calibrated to DDR3-1600 so that the primitive latencies
// of Table 1 of the paper fall out of the phase model exactly (AP 49 ns,
// AAP 84 ns, oAAP 53 ns, APP 67 ns, oAPP 53 ns, tAPP 46 ns).
package timing

import (
	"errors"
	"fmt"
)

// Params holds the phase-level timing parameters of a DRAM device.
// The derived quantities of a JEDEC datasheet relate to the phases as
//
//	tRAS = AccessSense + Restore
//	tRP  = Precharge
//	tRC  = tRAS + tRP
//
// PseudoPrechargeFactor scales Precharge to obtain the pseudo-precharge
// duration; the paper measures 20–30% longer than precharge and adopts the
// conservative 30%.
type Params struct {
	// AccessSense is the access + sense portion of an activate (wordline
	// rise, charge sharing, SA latching), in ns.
	AccessSense float64
	// Restore is the restore portion of an activate (SA drives bitline and
	// cell back to full rail), in ns.
	Restore float64
	// Precharge is the regular precharge duration (tRP), in ns.
	Precharge float64
	// OverlapActivate is the extra time a second, overlapped activation
	// adds when a separate row decoder allows two activates to overlap
	// (the oAAP primitive of RowClone/Ambit), in ns.
	OverlapActivate float64
	// PseudoPrechargeFactor scales Precharge to the pseudo-precharge
	// duration. The SA drive strength drops when its supply difference is
	// halved, so the factor is > 1 (paper: 1.2–1.3; we use 1.3).
	PseudoPrechargeFactor float64

	// TFAW is the four-activate-window constraint, in ns. At most
	// ActivatesPerTFAW wordline activations may be issued module-wide in
	// any rolling window of this length (charge-pump limit).
	TFAW float64
	// ActivatesPerTFAW is the number of single-wordline activations the
	// power delivery network sustains per TFAW window.
	ActivatesPerTFAW int

	// Clock is the bus clock period, in ns (DDR3-1600: 1.25 ns).
	Clock float64

	// TREFI is the average refresh interval, in ns (DDR3: 7.8 µs). The
	// module is unavailable for TRFC at every refresh. Zero disables
	// refresh modeling.
	TREFI float64
	// TRFC is the refresh cycle time, in ns (DDR3 4Gb: ~300 ns).
	TRFC float64
}

// DDR31600 returns the DDR3-1600 calibration used throughout the paper.
func DDR31600() Params {
	return Params{
		AccessSense:           14.0,
		Restore:               21.0,
		Precharge:             14.0,
		OverlapActivate:       4.0,
		PseudoPrechargeFactor: 1.3,
		TFAW:                  40.0,
		ActivatesPerTFAW:      4,
		Clock:                 1.25,
		TREFI:                 7800,
		TRFC:                  300,
	}
}

// RefreshOverhead returns the fraction of time the module spends
// refreshing (TRFC/TREFI), or 0 when refresh modeling is disabled.
func (p Params) RefreshOverhead() float64 {
	if p.TREFI <= 0 {
		return 0
	}
	return p.TRFC / p.TREFI
}

// DDR42400 returns a DDR4-2400 calibration — §6.2: "DDR3-1600 is just an
// example, other type of DRAM is also compatible with the aforementioned
// designs". DDR4 shortens the precharge and keeps tRAS similar; the
// pseudo-precharge factor is a device property and carries over.
func DDR42400() Params {
	return Params{
		AccessSense:           13.0,
		Restore:               19.0,
		Precharge:             12.5,
		OverlapActivate:       3.5,
		PseudoPrechargeFactor: 1.3,
		TFAW:                  30.0,
		ActivatesPerTFAW:      4,
		Clock:                 0.833,
		TREFI:                 7800,
		TRFC:                  350,
	}
}

// Validate reports whether the parameter set is physically meaningful.
func (p Params) Validate() error {
	switch {
	case p.AccessSense <= 0:
		return errors.New("timing: AccessSense must be positive")
	case p.Restore < 0:
		return errors.New("timing: Restore must be non-negative")
	case p.Precharge <= 0:
		return errors.New("timing: Precharge must be positive")
	case p.OverlapActivate < 0:
		return errors.New("timing: OverlapActivate must be non-negative")
	case p.PseudoPrechargeFactor < 1:
		return errors.New("timing: PseudoPrechargeFactor must be >= 1 (SA drive weakens at half supply)")
	case p.TFAW <= 0:
		return errors.New("timing: TFAW must be positive")
	case p.ActivatesPerTFAW <= 0:
		return errors.New("timing: ActivatesPerTFAW must be positive")
	case p.Clock <= 0:
		return errors.New("timing: Clock must be positive")
	case p.TREFI < 0 || p.TRFC < 0:
		return errors.New("timing: refresh parameters must be non-negative")
	case p.TREFI > 0 && p.TRFC >= p.TREFI:
		return errors.New("timing: TRFC must be below TREFI")
	}
	return nil
}

// TRAS returns the activate duration tRAS = AccessSense + Restore.
func (p Params) TRAS() float64 { return p.AccessSense + p.Restore }

// TRP returns the precharge duration tRP.
func (p Params) TRP() float64 { return p.Precharge }

// TRC returns the row-cycle time tRC = tRAS + tRP.
func (p Params) TRC() float64 { return p.TRAS() + p.TRP() }

// PseudoPrecharge returns the duration of the pseudo-precharge phase.
func (p Params) PseudoPrecharge() float64 {
	return p.Precharge * p.PseudoPrechargeFactor
}

// Phase identifies one phase of a subarray access sequence.
type Phase int

// Phases of a DRAM access, including the non-traditional pseudo-precharge
// state introduced by ELP2IM.
const (
	PhaseAccess Phase = iota
	PhaseSense
	PhaseRestore
	PhasePseudoPrecharge
	PhasePrecharge
)

// String returns the phase name.
func (ph Phase) String() string {
	switch ph {
	case PhaseAccess:
		return "access"
	case PhaseSense:
		return "sense"
	case PhaseRestore:
		return "restore"
	case PhasePseudoPrecharge:
		return "pseudo-precharge"
	case PhasePrecharge:
		return "precharge"
	default:
		return fmt.Sprintf("Phase(%d)", int(ph))
	}
}

// Duration returns the duration of a phase under the parameter set.
// Access and sense together take AccessSense; we attribute the wordline
// rise + charge sharing ~40% and sensing ~60% of that budget.
func (p Params) Duration(ph Phase) float64 {
	switch ph {
	case PhaseAccess:
		return p.AccessSense * 0.4
	case PhaseSense:
		return p.AccessSense * 0.6
	case PhaseRestore:
		return p.Restore
	case PhasePseudoPrecharge:
		return p.PseudoPrecharge()
	case PhasePrecharge:
		return p.Precharge
	default:
		return 0
	}
}
