package timing

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// naiveViolates is the pre-optimization reference: re-count the full
// pending list for every candidate window end. The production violates
// must agree with it on every input.
func naiveViolates(w *ActivationWindow, t float64, wordlines int) bool {
	if w.countWindow(t)+wordlines > w.budget {
		return true
	}
	for _, e := range w.pending {
		if e.at >= t && e.at < t+w.width {
			if w.countWindow(e.at)+wordlines > w.budget {
				return true
			}
		}
	}
	return false
}

// naiveEarliestIssue is the pre-optimization EarliestIssue loop over
// naiveViolates with a linear next-expiry scan.
func naiveEarliestIssue(w *ActivationWindow, ready float64, wordlines int) float64 {
	if wordlines <= 0 {
		return ready
	}
	if wordlines > w.budget {
		wordlines = w.budget
	}
	t := ready
	for naiveViolates(w, t, wordlines) {
		next := math.Inf(1)
		for _, e := range w.pending {
			if cand := e.at + w.width; cand > t && cand < next {
				next = cand
			}
		}
		if math.IsInf(next, 1) {
			return math.Nextafter(t, math.Inf(1))
		}
		t = next
	}
	return t
}

// TestViolatesMatchesNaive property-checks the two-pointer violates (and
// the binary-search EarliestIssue built on it) against the naive reference
// over randomized widths, budgets, event sets — including bursts of
// equal-time events and exact-boundary queries — and query times.
func TestViolatesMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		width := 1 + rng.Float64()*50
		budget := 1 + rng.Intn(12)
		w := NewActivationWindow(width, budget)
		n := rng.Intn(40)
		for i := 0; i < n; i++ {
			at := rng.Float64() * 200
			if rng.Intn(4) == 0 && len(w.pending) > 0 {
				// Duplicate an existing timestamp: equal-time runs are the
				// delicate case for the incremental sweep.
				at = w.pending[rng.Intn(len(w.pending))].at
			}
			w.Issue(at, 1+rng.Intn(3))
		}
		for q := 0; q < 30; q++ {
			at := rng.Float64()*260 - 30
			switch rng.Intn(5) {
			case 0:
				if len(w.pending) > 0 {
					at = w.pending[rng.Intn(len(w.pending))].at // exact event time
				}
			case 1:
				if len(w.pending) > 0 {
					at = w.pending[rng.Intn(len(w.pending))].at - width // exact boundary
				}
			}
			wl := 1 + rng.Intn(4)
			if got, want := w.violates(at, wl), naiveViolates(w, at, wl); got != want {
				t.Fatalf("trial %d: violates(%v, %d) = %v, naive = %v (width=%v budget=%d pending=%v)",
					trial, at, wl, got, want, width, budget, w.pending)
			}
			if got, want := w.EarliestIssue(at, wl), naiveEarliestIssue(w, at, wl); got != want {
				t.Fatalf("trial %d: EarliestIssue(%v, %d) = %v, naive = %v (width=%v budget=%d pending=%v)",
					trial, at, wl, got, want, width, budget, w.pending)
			}
		}
	}
}

// BenchmarkEarliestIssueDense measures EarliestIssue against a dense
// retained history (a multi-bank scheduler that has not advanced its
// DiscardBefore watermark), querying near the tail as a scheduler does.
// With the quadratic violates the per-query cost grew linearly with the
// whole pending count even though only a handful of events are near the
// query; the two-pointer sweep keeps it near-flat. The Naive variant runs
// the reference implementation for direct comparison:
//
//	go test ./internal/timing -bench EarliestIssueDense -benchtime 1000x
func BenchmarkEarliestIssueDense(b *testing.B) {
	for _, n := range []int{64, 512, 4096} {
		b.Run(fmt.Sprintf("pending=%d", n), func(b *testing.B) {
			w := denseWindow(n)
			at := float64(n)*10 - 20
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.EarliestIssue(at, 2)
			}
		})
	}
}

// BenchmarkEarliestIssueDenseNaive is the pre-optimization reference on
// the same workload (expected to grow linearly with the pending count).
func BenchmarkEarliestIssueDenseNaive(b *testing.B) {
	for _, n := range []int{64, 512, 4096} {
		b.Run(fmt.Sprintf("pending=%d", n), func(b *testing.B) {
			w := denseWindow(n)
			at := float64(n)*10 - 20
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				naiveEarliestIssue(w, at, 2)
			}
		})
	}
}

// denseWindow builds a window with n retained events 10 ns apart.
func denseWindow(n int) *ActivationWindow {
	w := NewActivationWindow(40, 4)
	for i := 0; i < n; i++ {
		w.Issue(float64(i)*10, 1+i%3)
	}
	return w
}
