package timing

import (
	"math"
	"sort"
)

// ActivationWindow enforces the tFAW-style charge-pump constraint: at most
// Budget wordline activations inside any rolling window of Width ns. One
// DRAM ACTIVATE that raises k wordlines (Ambit's TRA raises 3) consumes k
// units of budget, because each raised wordline draws from the same pump.
//
// The zero value is not usable; construct with NewActivationWindow.
type ActivationWindow struct {
	width   float64
	budget  int
	pending []event // sorted by time
}

type event struct {
	at    float64
	count int
}

// NewActivationWindow returns a window of the given width (ns) and
// activation budget. Width and budget must be positive.
func NewActivationWindow(width float64, budget int) *ActivationWindow {
	if width <= 0 || budget <= 0 {
		panic("timing: activation window width and budget must be positive")
	}
	return &ActivationWindow{width: width, budget: budget}
}

// Width returns the rolling window width in ns.
func (w *ActivationWindow) Width() float64 { return w.width }

// Budget returns the per-window activation budget.
func (w *ActivationWindow) Budget() int { return w.budget }

// DiscardBefore drops events that can no longer affect any query at or
// after the watermark: events with at <= watermark - width. Callers that
// replay activations out of order (a multi-bank scheduler) must only
// advance the watermark to the minimum time any future query can use.
func (w *ActivationWindow) DiscardBefore(watermark float64) {
	cut := watermark - w.width
	i := sort.Search(len(w.pending), func(i int) bool {
		return w.pending[i].at > cut
	})
	if i > 0 {
		w.pending = append(w.pending[:0], w.pending[i:]...)
	}
}

// countWindow returns the wordline activations inside the window (τ-W, τ].
func (w *ActivationWindow) countWindow(tau float64) int {
	total := 0
	for _, e := range w.pending {
		if e.at > tau-w.width && e.at <= tau {
			total += e.count
		}
	}
	return total
}

// violates reports whether adding an event of `wordlines` at time t would
// push ANY width-W window over budget. It checks every window that would
// contain the new event: the one ending at t, and the ones ending at each
// already-recorded event inside [t, t+W).
func (w *ActivationWindow) violates(t float64, wordlines int) bool {
	if w.countWindow(t)+wordlines > w.budget {
		return true
	}
	for _, e := range w.pending {
		if e.at >= t && e.at < t+w.width {
			if w.countWindow(e.at)+wordlines > w.budget {
				return true
			}
		}
	}
	return false
}

// EarliestIssue returns the earliest time >= ready at which an activation of
// `wordlines` wordlines can be issued without exceeding the budget in any
// rolling window.
func (w *ActivationWindow) EarliestIssue(ready float64, wordlines int) float64 {
	if wordlines <= 0 {
		return ready
	}
	if wordlines > w.budget {
		// An activation larger than the whole budget can never be legal;
		// model it as serialized full-window stalls (the pump cannot supply
		// it — callers should avoid this, but do not deadlock).
		wordlines = w.budget
	}
	t := ready
	for w.violates(t, wordlines) {
		// Advance past the next event expiry. Strict progress is forced so
		// floating-point rounding (e.at + width collapsing onto t) cannot
		// stall the loop.
		next := math.Inf(1)
		for _, e := range w.pending {
			if cand := e.at + w.width; cand > t && cand < next {
				next = cand
			}
		}
		if math.IsInf(next, 1) {
			// Only sub-ULP conflicts remain; nudge once and accept.
			return math.Nextafter(t, math.Inf(1))
		}
		t = next
	}
	return t
}

// Issue records an activation of `wordlines` wordlines at time `at`.
// Callers should have obtained `at` from EarliestIssue. Events are retained
// until DiscardBefore advances past them, so out-of-order queries from
// other agents stay correct.
func (w *ActivationWindow) Issue(at float64, wordlines int) {
	if wordlines <= 0 {
		return
	}
	// Keep pending sorted: appends are typically monotone in time.
	if n := len(w.pending); n > 0 && w.pending[n-1].at > at {
		w.pending = append(w.pending, event{})
		i := sort.Search(n, func(i int) bool { return w.pending[i].at > at })
		copy(w.pending[i+1:], w.pending[i:])
		w.pending[i] = event{at: at, count: wordlines}
		return
	}
	w.pending = append(w.pending, event{at: at, count: wordlines})
}

// Reset clears all recorded activations.
func (w *ActivationWindow) Reset() { w.pending = w.pending[:0] }
