package timing

import (
	"math"
	"sort"
)

// ActivationWindow enforces the tFAW-style charge-pump constraint: at most
// Budget wordline activations inside any rolling window of Width ns. One
// DRAM ACTIVATE that raises k wordlines (Ambit's TRA raises 3) consumes k
// units of budget, because each raised wordline draws from the same pump.
//
// The zero value is not usable; construct with NewActivationWindow.
type ActivationWindow struct {
	width   float64
	budget  int
	pending []event // sorted by time
}

type event struct {
	at    float64
	count int
}

// NewActivationWindow returns a window of the given width (ns) and
// activation budget. Width and budget must be positive.
func NewActivationWindow(width float64, budget int) *ActivationWindow {
	if width <= 0 || budget <= 0 {
		panic("timing: activation window width and budget must be positive")
	}
	return &ActivationWindow{width: width, budget: budget}
}

// Width returns the rolling window width in ns.
func (w *ActivationWindow) Width() float64 { return w.width }

// Budget returns the per-window activation budget.
func (w *ActivationWindow) Budget() int { return w.budget }

// DiscardBefore drops events that can no longer affect any query at or
// after the watermark: events with at <= watermark - width. Callers that
// replay activations out of order (a multi-bank scheduler) must only
// advance the watermark to the minimum time any future query can use.
func (w *ActivationWindow) DiscardBefore(watermark float64) {
	cut := watermark - w.width
	i := sort.Search(len(w.pending), func(i int) bool {
		return w.pending[i].at > cut
	})
	if i > 0 {
		w.pending = append(w.pending[:0], w.pending[i:]...)
	}
}

// countWindow returns the wordline activations inside the window (τ-W, τ].
// It is the O(pending) reference implementation; the hot path (violates)
// maintains the same sum incrementally, and the property tests in
// window_test.go check the two against each other.
func (w *ActivationWindow) countWindow(tau float64) int {
	total := 0
	for _, e := range w.pending {
		if e.at > tau-w.width && e.at <= tau {
			total += e.count
		}
	}
	return total
}

// violates reports whether adding an event of `wordlines` at time t would
// push ANY width-W window over budget. The only windows that can overflow
// are the one ending at t and the ones ending at each already-recorded
// event inside [t, t+W). pending is sorted by time, so a single two-pointer
// sweep maintains the running in-window sum while the window end slides
// across those candidates — O(log n + k) for k events near t, instead of
// the quadratic full re-count per candidate that made sched.Simulate
// degrade over long horizons.
func (w *ActivationWindow) violates(t float64, wordlines int) bool {
	p := w.pending
	// Events inside the window ending at t: at ∈ (t-W, t].
	lo := sort.Search(len(p), func(i int) bool { return p[i].at > t-w.width })
	hi := sort.Search(len(p), func(i int) bool { return p[i].at > t })
	sum := 0
	for i := lo; i < hi; i++ {
		sum += p[i].count
	}
	if sum+wordlines > w.budget {
		return true
	}
	// Slide the window end to each later event τ ∈ (t, t+W). Entering
	// events are added once, expired ones (at ≤ τ-W) removed once; both
	// pointers only advance. For equal-time runs the last event of the run
	// sees the full sum, so the check there matches the reference exactly
	// (earlier checks in the run are subsets and can only under-report).
	for j := hi; j < len(p) && p[j].at < t+w.width; j++ {
		sum += p[j].count
		tau := p[j].at
		for p[lo].at <= tau-w.width {
			sum -= p[lo].count
			lo++
		}
		if sum+wordlines > w.budget {
			return true
		}
	}
	return false
}

// EarliestIssue returns the earliest time >= ready at which an activation of
// `wordlines` wordlines can be issued without exceeding the budget in any
// rolling window.
func (w *ActivationWindow) EarliestIssue(ready float64, wordlines int) float64 {
	if wordlines <= 0 {
		return ready
	}
	if wordlines > w.budget {
		// An activation larger than the whole budget can never be legal;
		// model it as serialized full-window stalls (the pump cannot supply
		// it — callers should avoid this, but do not deadlock).
		wordlines = w.budget
	}
	t := ready
	for w.violates(t, wordlines) {
		// Advance past the next event expiry: the earliest at+W beyond t.
		// pending is sorted, so that is the first event with at > t-W —
		// found by binary search — skipping any whose expiry rounds onto t
		// (strict progress is forced so floating-point rounding cannot
		// stall the loop).
		i := sort.Search(len(w.pending), func(i int) bool {
			return w.pending[i].at > t-w.width
		})
		for i < len(w.pending) && w.pending[i].at+w.width <= t {
			i++
		}
		if i == len(w.pending) {
			// Only sub-ULP conflicts remain; nudge once and accept.
			return math.Nextafter(t, math.Inf(1))
		}
		t = w.pending[i].at + w.width
	}
	return t
}

// Issue records an activation of `wordlines` wordlines at time `at`.
// Callers should have obtained `at` from EarliestIssue. Events are retained
// until DiscardBefore advances past them, so out-of-order queries from
// other agents stay correct.
func (w *ActivationWindow) Issue(at float64, wordlines int) {
	if wordlines <= 0 {
		return
	}
	// Keep pending sorted: appends are typically monotone in time.
	if n := len(w.pending); n > 0 && w.pending[n-1].at > at {
		w.pending = append(w.pending, event{})
		i := sort.Search(n, func(i int) bool { return w.pending[i].at > at })
		copy(w.pending[i+1:], w.pending[i:])
		w.pending[i] = event{at: at, count: wordlines}
		return
	}
	w.pending = append(w.pending, event{at: at, count: wordlines})
}

// Reset clears all recorded activations.
func (w *ActivationWindow) Reset() { w.pending = w.pending[:0] }
