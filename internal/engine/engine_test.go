package engine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
)

func TestBasicOpsList(t *testing.T) {
	ops := BasicOps()
	if len(ops) != 7 {
		t.Fatalf("basic ops = %d, want 7 (Figure 12)", len(ops))
	}
	seen := map[Op]bool{}
	for _, op := range ops {
		if seen[op] {
			t.Fatalf("duplicate op %v", op)
		}
		seen[op] = true
		if op == OpCOPY {
			t.Fatal("COPY is not a basic logic op")
		}
	}
}

func TestOpStrings(t *testing.T) {
	want := map[Op]string{
		OpNOT: "NOT", OpAND: "AND", OpOR: "OR", OpNAND: "NAND",
		OpNOR: "NOR", OpXOR: "XOR", OpXNOR: "XNOR", OpCOPY: "COPY",
	}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("op string = %q, want %q", op.String(), s)
		}
	}
	if Op(99).String() == "" {
		t.Error("unknown op must render")
	}
}

func TestUnary(t *testing.T) {
	if !OpNOT.Unary() || !OpCOPY.Unary() {
		t.Error("NOT and COPY are unary")
	}
	if OpAND.Unary() || OpXOR.Unary() {
		t.Error("AND/XOR are binary")
	}
}

func TestGoldenTruthTables(t *testing.T) {
	a := bitvec.FromWords([]uint64{0b0011}, 4)
	b := bitvec.FromWords([]uint64{0b0101}, 4)
	want := map[Op]uint64{
		OpNOT: 0b1100, OpCOPY: 0b0011,
		OpAND: 0b0001, OpOR: 0b0111, OpNAND: 0b1110,
		OpNOR: 0b1000, OpXOR: 0b0110, OpXNOR: 0b1001,
	}
	for op, w := range want {
		dst := bitvec.New(4)
		op.Golden(dst, a, b)
		if dst.Words()[0] != w {
			t.Errorf("%v golden = %04b, want %04b", op, dst.Words()[0], w)
		}
	}
}

func TestGoldenPanicsOnUnknownOp(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown op did not panic")
		}
	}()
	Op(99).Golden(bitvec.New(4), bitvec.New(4), bitvec.New(4))
}

func TestStatsAdd(t *testing.T) {
	a := Stats{LatencyNS: 10, EnergyNJ: 1, Commands: 2, ActivateEvents: 3, Wordlines: 4, MaxWordlinesPerEvent: 1}
	b := Stats{LatencyNS: 5, EnergyNJ: 2, Commands: 1, ActivateEvents: 1, Wordlines: 3, MaxWordlinesPerEvent: 3}
	a.Add(b)
	if a.LatencyNS != 15 || a.EnergyNJ != 3 || a.Commands != 3 ||
		a.ActivateEvents != 4 || a.Wordlines != 7 || a.MaxWordlinesPerEvent != 3 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestStatsScale(t *testing.T) {
	s := Stats{LatencyNS: 10, EnergyNJ: 1, Commands: 2, ActivateEvents: 3, Wordlines: 4, MaxWordlinesPerEvent: 3}
	g := s.Scale(5)
	if g.LatencyNS != 50 || g.EnergyNJ != 5 || g.Commands != 10 ||
		g.ActivateEvents != 15 || g.Wordlines != 20 || g.MaxWordlinesPerEvent != 3 {
		t.Fatalf("Scale wrong: %+v", g)
	}
}

// Property: Golden agrees with the direct bitvec operations.
func TestGoldenMatchesBitvecProperty(t *testing.T) {
	f := func(seed int64, opRaw uint8) bool {
		op := BasicOps()[int(opRaw)%7]
		rng := rand.New(rand.NewSource(seed))
		n := 200
		a := bitvec.Random(rng, n)
		b := bitvec.Random(rng, n)
		got := bitvec.New(n)
		op.Golden(got, a, b)
		want := bitvec.New(n)
		switch op {
		case OpNOT:
			want.Not(a)
		case OpAND:
			want.And(a, b)
		case OpOR:
			want.Or(a, b)
		case OpNAND:
			want.Nand(a, b)
		case OpNOR:
			want.Nor(a, b)
		case OpXOR:
			want.Xor(a, b)
		case OpXNOR:
			want.Xnor(a, b)
		}
		return got.Equal(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
