package engine

import (
	"time"

	"repro/internal/obs"
)

// ObsSeries pre-resolves one design's per-op observability series so an
// engine's Execute hot path updates pure atomics and, with tracing off,
// allocates nothing. Engines default to obs.Global() at construction and
// are re-pointed at an accelerator-local context via their Instrument
// method.
//
// Series names: engine.exec.<design>.<op> (executions),
// engine.commands.<design>.<op>, engine.wordlines.<design>.<op>.
type ObsSeries struct {
	ctx       *obs.Context
	names     [OpCOPY + 1]string
	exec      [OpCOPY + 1]*obs.Counter
	commands  [OpCOPY + 1]*obs.Counter
	wordlines [OpCOPY + 1]*obs.Counter
}

// NewObsSeries resolves the design's series against ctx (obs.Global()
// when ctx is nil).
func NewObsSeries(ctx *obs.Context, design string) *ObsSeries {
	if ctx == nil {
		ctx = obs.Global()
	}
	s := &ObsSeries{ctx: ctx}
	for op := OpNOT; op <= OpCOPY; op++ {
		name := op.String()
		s.names[op] = design + " " + name
		s.exec[op] = ctx.Metrics.Counter("engine.exec." + design + "." + name)
		s.commands[op] = ctx.Metrics.Counter("engine.commands." + design + "." + name)
		s.wordlines[op] = ctx.Metrics.Counter("engine.wordlines." + design + "." + name)
	}
	return s
}

// Start returns the wall-clock start for a Record span (0 when tracing is
// off, so the disabled path never reads the clock).
func (s *ObsSeries) Start() int64 { return s.ctx.SpanStart() }

// Record accounts one row-wide execution of op with the design's
// canonical per-row stats, and emits an "engine" span when tracing is on.
// startNS is the value returned by Start; err annotates failed spans.
func (s *ObsSeries) Record(op Op, st Stats, startNS int64, err error) {
	if op < 0 || op > OpCOPY {
		return
	}
	s.exec[op].Inc()
	s.commands[op].Add(int64(st.Commands))
	s.wordlines[op].Add(int64(st.Wordlines))
	if startNS != 0 && s.ctx.Tracing() {
		msg := ""
		if err != nil {
			msg = err.Error()
		}
		s.ctx.Span(obs.SpanEvent{
			Name:      s.names[op],
			Cat:       "engine",
			StartNS:   startNS,
			DurNS:     time.Now().UnixNano() - startNS,
			Op:        op.String(),
			LatencyNS: st.LatencyNS,
			EnergyNJ:  st.EnergyNJ,
			Commands:  st.Commands,
			Wordlines: st.Wordlines,
			Err:       msg,
		})
	}
}
