// Package engine defines the common abstraction all three reproduced
// in-DRAM bitwise designs (ELP2IM, Ambit, DRISA-NOR) implement: a compiler
// from logic operations to command costs, and a functional executor that
// performs the operation on the dram device model.
package engine

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/dram"
)

// Op is a bulk bitwise logic operation over full DRAM rows.
type Op int

// The operation set of Figure 12.
const (
	OpNOT Op = iota
	OpAND
	OpOR
	OpNAND
	OpNOR
	OpXOR
	OpXNOR
	// OpCOPY is a row copy (RowClone); it is the staging building block
	// of the case studies.
	OpCOPY
)

// BasicOps lists the seven logic operations of Figure 12, in display order.
func BasicOps() []Op {
	return []Op{OpNOT, OpAND, OpOR, OpNAND, OpNOR, OpXOR, OpXNOR}
}

// String returns the operation mnemonic.
func (o Op) String() string {
	switch o {
	case OpNOT:
		return "NOT"
	case OpAND:
		return "AND"
	case OpOR:
		return "OR"
	case OpNAND:
		return "NAND"
	case OpNOR:
		return "NOR"
	case OpXOR:
		return "XOR"
	case OpXNOR:
		return "XNOR"
	case OpCOPY:
		return "COPY"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Unary reports whether the operation takes a single operand.
func (o Op) Unary() bool { return o == OpNOT || o == OpCOPY }

// Golden computes the operation on host bit-vectors — the correctness
// oracle for every engine. For unary ops b is ignored and may be nil.
func (o Op) Golden(dst, a, b *bitvec.Vector) {
	switch o {
	case OpNOT:
		dst.Not(a)
	case OpCOPY:
		dst.CopyFrom(a)
	case OpAND:
		dst.And(a, b)
	case OpOR:
		dst.Or(a, b)
	case OpNAND:
		dst.Nand(a, b)
	case OpNOR:
		dst.Nor(a, b)
	case OpXOR:
		dst.Xor(a, b)
	case OpXNOR:
		dst.Xnor(a, b)
	default:
		panic(fmt.Sprintf("engine: unknown op %d", int(o)))
	}
}

// Stats is the cost of one row-wide operation (or an aggregate of many).
type Stats struct {
	// LatencyNS is the command-sequence latency in ns.
	LatencyNS float64
	// EnergyNJ is the dynamic energy in nJ (background energy is a
	// function of latency and is added at reporting time).
	EnergyNJ float64
	// Commands is the number of DRAM command primitives issued.
	Commands int
	// ActivateEvents is the number of activation events (tFAW units are
	// per-event wordline counts).
	ActivateEvents int
	// Wordlines is the total number of wordlines raised.
	Wordlines int
	// MaxWordlinesPerEvent is the peak simultaneous wordline count of any
	// single activation (3 whenever a TRA is involved).
	MaxWordlinesPerEvent int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.LatencyNS += other.LatencyNS
	s.EnergyNJ += other.EnergyNJ
	s.Commands += other.Commands
	s.ActivateEvents += other.ActivateEvents
	s.Wordlines += other.Wordlines
	if other.MaxWordlinesPerEvent > s.MaxWordlinesPerEvent {
		s.MaxWordlinesPerEvent = other.MaxWordlinesPerEvent
	}
}

// Scale returns s with the additive fields multiplied by n (for n
// identical row operations).
func (s Stats) Scale(n int) Stats {
	return Stats{
		LatencyNS:            s.LatencyNS * float64(n),
		EnergyNJ:             s.EnergyNJ * float64(n),
		Commands:             s.Commands * n,
		ActivateEvents:       s.ActivateEvents * n,
		Wordlines:            s.Wordlines * n,
		MaxWordlinesPerEvent: s.MaxWordlinesPerEvent,
	}
}

// Reducer is implemented by engines that support folding a stream of
// operands into a resident accumulator (acc = acc op v) at a cost below
// repeated three-operand ops — the inner loop of the Bitmap and BitWeaving
// case studies.
type Reducer interface {
	// ChainStats returns the cost of folding one more operand into the
	// accumulator. It errors for operations without a chained form.
	ChainStats(op Op) (Stats, error)
}

// OperandConsumer is implemented by engines whose command sequence for
// some operation destroys the A-operand row (ELP2IM's two-buffer
// XOR/XNOR land an in-place partial product there). Executors that must
// preserve a still-live operand re-stage it into a scratch row before
// issuing the consuming operation.
type OperandConsumer interface {
	// ConsumesOperandA reports whether executing op destroys row a.
	ConsumesOperandA(op Op) bool
}

// Engine is one in-DRAM bitwise design.
type Engine interface {
	// Name returns the design name as used in the paper's figures.
	Name() string
	// OpStats returns the canonical cost of one three-operand
	// (C = f(A,B)) row-wide operation.
	OpStats(op Op) Stats
	// Execute performs the operation functionally on a subarray:
	// dst = op(a, b) at row granularity (b ignored for unary ops).
	// Data rows other than dst (and any reserved rows) are preserved
	// unless the engine documents otherwise.
	Execute(sub *dram.Subarray, op Op, dst, a, b int) error
	// ReservedRows is the number of subarray rows the design reserves
	// (Figure 13(c)/14(c)).
	ReservedRows() int
	// AreaOverheadPercent is the array area overhead versus commodity
	// DRAM (§5.2: ELP2IM < Ambit; DRISA 24%).
	AreaOverheadPercent() float64
	// BackgroundFactor scales the module background power (DRISA > 1).
	BackgroundFactor() float64
}
