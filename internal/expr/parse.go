// Package expr compiles boolean expressions over bulk bit-vectors into
// optimized in-DRAM operation programs — the software face of the paper's
// §5.1 configurable memory controller, which buffers per-expression
// primitive sequences.
//
// The pipeline is parse → DAG (common-subexpression elimination and
// double-negation removal) → gate fusion (NOT feeding AND/OR/XOR becomes
// the engine's native NAND/NOR/XNOR) → liveness-based scratch-row
// allocation → a Program that any engine executes row-accurately on the
// device model, with a per-design cost estimate.
//
// Grammar (C-style precedence, lowest first):
//
//	expr   := or
//	or     := xor ('|' xor)*
//	xor    := and ('^' and)*
//	and    := unary ('&' unary)*
//	unary  := '~' unary | '(' expr ')' | ident
//
// Identifiers are [A-Za-z_][A-Za-z0-9_]*.
package expr

import (
	"errors"
	"fmt"
	"unicode"
)

// ErrParse tags every syntax error returned by Parse, so callers can
// classify a failure as malformed input (errors.Is(err, expr.ErrParse))
// without matching message text — the serving layer maps it to HTTP 400.
var ErrParse = errors.New("parse error")

// parseErrf builds an ErrParse-tagged syntax error.
func parseErrf(format string, args ...any) error {
	return fmt.Errorf("expr: %w: %s", ErrParse, fmt.Sprintf(format, args...))
}

// NodeKind discriminates AST nodes.
type NodeKind int

// AST node kinds.
const (
	NodeVar NodeKind = iota
	NodeNot
	NodeAnd
	NodeOr
	NodeXor
)

// String returns the kind name.
func (k NodeKind) String() string {
	switch k {
	case NodeVar:
		return "var"
	case NodeNot:
		return "not"
	case NodeAnd:
		return "and"
	case NodeOr:
		return "or"
	case NodeXor:
		return "xor"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is a boolean expression tree.
type Node struct {
	Kind  NodeKind
	Name  string // NodeVar only
	Left  *Node  // operand (NodeNot) or left operand
	Right *Node  // right operand (binary kinds)
}

// Var returns a variable leaf.
func Var(name string) *Node { return &Node{Kind: NodeVar, Name: name} }

// Not returns ¬x.
func Not(x *Node) *Node { return &Node{Kind: NodeNot, Left: x} }

// And returns x ∧ y.
func And(x, y *Node) *Node { return &Node{Kind: NodeAnd, Left: x, Right: y} }

// Or returns x ∨ y.
func Or(x, y *Node) *Node { return &Node{Kind: NodeOr, Left: x, Right: y} }

// Xor returns x ⊕ y.
func Xor(x, y *Node) *Node { return &Node{Kind: NodeXor, Left: x, Right: y} }

// Eval evaluates the expression under a variable assignment. It panics on
// unknown variables (use Vars to collect them first).
func (n *Node) Eval(env map[string]bool) bool {
	switch n.Kind {
	case NodeVar:
		v, ok := env[n.Name]
		if !ok {
			panic(fmt.Sprintf("expr: unbound variable %q", n.Name))
		}
		return v
	case NodeNot:
		return !n.Left.Eval(env)
	case NodeAnd:
		return n.Left.Eval(env) && n.Right.Eval(env)
	case NodeOr:
		return n.Left.Eval(env) || n.Right.Eval(env)
	case NodeXor:
		return n.Left.Eval(env) != n.Right.Eval(env)
	default:
		panic("expr: unknown node kind")
	}
}

// Vars returns the distinct variable names in first-appearance order.
func (n *Node) Vars() []string {
	seen := map[string]bool{}
	var out []string
	var walk func(*Node)
	walk = func(x *Node) {
		if x == nil {
			return
		}
		if x.Kind == NodeVar {
			if !seen[x.Name] {
				seen[x.Name] = true
				out = append(out, x.Name)
			}
			return
		}
		walk(x.Left)
		walk(x.Right)
	}
	walk(n)
	return out
}

// String renders the expression with explicit parentheses.
func (n *Node) String() string {
	switch n.Kind {
	case NodeVar:
		return n.Name
	case NodeNot:
		return "~" + n.Left.String()
	case NodeAnd:
		return "(" + n.Left.String() + " & " + n.Right.String() + ")"
	case NodeOr:
		return "(" + n.Left.String() + " | " + n.Right.String() + ")"
	case NodeXor:
		return "(" + n.Left.String() + " ^ " + n.Right.String() + ")"
	default:
		return "?"
	}
}

// parser is a recursive-descent parser over a token cursor.
type parser struct {
	src []rune
	pos int
}

// Parse parses a boolean expression.
func Parse(src string) (*Node, error) {
	p := &parser{src: []rune(src)}
	n, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, parseErrf("unexpected %q at offset %d", string(p.src[p.pos]), p.pos)
	}
	return n, nil
}

// MustParse parses and panics on error (for tests and fixed programs).
func MustParse(src string) *Node {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return n
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(p.src[p.pos]) {
		p.pos++
	}
}

func (p *parser) peek() rune {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) parseOr() (*Node, error) {
	n, err := p.parseXor()
	if err != nil {
		return nil, err
	}
	for p.peek() == '|' {
		p.pos++
		r, err := p.parseXor()
		if err != nil {
			return nil, err
		}
		n = Or(n, r)
	}
	return n, nil
}

func (p *parser) parseXor() (*Node, error) {
	n, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek() == '^' {
		p.pos++
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		n = Xor(n, r)
	}
	return n, nil
}

func (p *parser) parseAnd() (*Node, error) {
	n, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek() == '&' {
		p.pos++
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		n = And(n, r)
	}
	return n, nil
}

func (p *parser) parseUnary() (*Node, error) {
	switch c := p.peek(); {
	case c == '~':
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not(x), nil
	case c == '(':
		p.pos++
		n, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, parseErrf("missing ')' at offset %d", p.pos)
		}
		p.pos++
		return n, nil
	case c == 0:
		return nil, parseErrf("unexpected end of input")
	case unicode.IsLetter(c) || c == '_':
		start := p.pos
		for p.pos < len(p.src) &&
			(unicode.IsLetter(p.src[p.pos]) || unicode.IsDigit(p.src[p.pos]) || p.src[p.pos] == '_') {
			p.pos++
		}
		return Var(string(p.src[start:p.pos])), nil
	default:
		return nil, parseErrf("unexpected %q at offset %d", string(c), p.pos)
	}
}

// key returns a structural hash key for CSE.
func (n *Node) key() string {
	switch n.Kind {
	case NodeVar:
		return "v:" + n.Name
	case NodeNot:
		return "~(" + n.Left.key() + ")"
	default:
		l, r := n.Left.key(), n.Right.key()
		// AND/OR/XOR are commutative: canonicalize operand order.
		if r < l {
			l, r = r, l
		}
		return fmt.Sprintf("%s(%s,%s)", n.Kind, l, r)
	}
}
