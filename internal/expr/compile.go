package expr

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/dram"
	"repro/internal/engine"
)

// Ref names an operand of a compiled instruction.
type Ref struct {
	// Temp is true for scratch values, false for input variables.
	Temp bool
	// Index is the variable index (into Program.Vars) or the temp slot.
	Index int
}

func varRef(i int) Ref  { return Ref{Temp: false, Index: i} }
func tempRef(i int) Ref { return Ref{Temp: true, Index: i} }

// String renders the reference.
func (r Ref) String() string {
	if r.Temp {
		return fmt.Sprintf("t%d", r.Index)
	}
	return fmt.Sprintf("v%d", r.Index)
}

// Instr is one three-address operation: Dst = Op(A, B) (B unused for
// unary ops). Dst is always a temp.
type Instr struct {
	Op   engine.Op
	Dst  Ref
	A, B Ref
}

// String renders the instruction.
func (in Instr) String() string {
	if in.Op.Unary() {
		return fmt.Sprintf("%s = %s %s", in.Dst, in.Op, in.A)
	}
	return fmt.Sprintf("%s = %s %s, %s", in.Dst, in.Op, in.A, in.B)
}

// Program is a compiled expression: an instruction list over input
// variables and scratch temps, with the result in the last instruction's
// destination.
type Program struct {
	// Vars are the input variable names, in first-appearance order.
	Vars []string
	// Instrs is the instruction list in execution order.
	Instrs []Instr
	// TempSlots is the number of scratch rows needed after allocation.
	TempSlots int
	// Source is the original expression.
	Source string
}

// Result returns the reference holding the final value.
func (p *Program) Result() Ref {
	if len(p.Instrs) == 0 {
		return varRef(0) // expression was a bare variable
	}
	return p.Instrs[len(p.Instrs)-1].Dst
}

// String renders the program.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; %s  (vars: %s, temps: %d)\n",
		p.Source, strings.Join(p.Vars, ","), p.TempSlots)
	for _, in := range p.Instrs {
		fmt.Fprintf(&b, "%s\n", in)
	}
	return b.String()
}

// value is a DAG node during compilation.
type value struct {
	op   engine.Op
	a, b *value
	vidx int // NodeVar leaf: variable index
	leaf bool

	// results of scheduling
	ref     Ref
	emitted bool
	uses    int
	lastUse int // instruction index of final use (for row reuse)
}

// Compile lowers an expression to a Program: builds the CSE'd DAG, fuses
// NOT into following/preceding gates (NAND/NOR/XNOR/NOT collapses), and
// allocates scratch rows by liveness so temps are reused.
func Compile(n *Node) (*Program, error) {
	if n == nil {
		return nil, errors.New("expr: nil expression")
	}
	vars := n.Vars()
	vidx := map[string]int{}
	for i, v := range vars {
		vidx[v] = i
	}

	// Build the DAG with structural sharing.
	memo := map[string]*value{}
	var build func(*Node) *value
	build = func(x *Node) *value {
		k := x.key()
		if v, ok := memo[k]; ok {
			return v
		}
		var v *value
		switch x.Kind {
		case NodeVar:
			v = &value{leaf: true, vidx: vidx[x.Name]}
		case NodeNot:
			a := build(x.Left)
			// Double negation: ~~e = e.
			if !a.leaf && a.op == engine.OpNOT {
				v = a.a
			} else {
				v = &value{op: engine.OpNOT, a: a}
			}
		default:
			a, b := build(x.Left), build(x.Right)
			var op engine.Op
			switch x.Kind {
			case NodeAnd:
				op = engine.OpAND
			case NodeOr:
				op = engine.OpOR
			case NodeXor:
				op = engine.OpXOR
			}
			v = fuse(op, a, b)
		}
		memo[k] = v
		return v
	}
	root := build(n)

	// Count uses for liveness (roots count as one use).
	var countUses func(*value)
	seen := map[*value]bool{}
	var order []*value
	countUses = func(v *value) {
		if v.leaf {
			return
		}
		if !seen[v] {
			seen[v] = true
			countUses(v.a)
			if v.b != nil {
				countUses(v.b)
			}
			order = append(order, v) // post-order: operands first
		}
	}
	countUses(root)
	for _, v := range order {
		v.a.uses++
		if v.b != nil {
			v.b.uses++
		}
	}
	root.uses++

	p := &Program{Vars: vars, Source: n.String()}

	if root.leaf {
		// Bare variable: no instructions; Result refers to the variable.
		return p, nil
	}

	// Emit in post-order with liveness-based temp-slot reuse.
	type slot struct{ free bool }
	var slots []slot
	alloc := func() int {
		for i := range slots {
			if slots[i].free {
				slots[i].free = false
				return i
			}
		}
		slots = append(slots, slot{})
		return len(slots) - 1
	}
	release := func(r Ref) {
		if r.Temp {
			slots[r.Index].free = true
		}
	}
	refOf := func(v *value) Ref {
		if v.leaf {
			return varRef(v.vidx)
		}
		return v.ref
	}

	for _, v := range order {
		a := refOf(v.a)
		var b Ref
		if v.b != nil {
			b = refOf(v.b)
		}
		// Allocate the destination BEFORE releasing dying operands: some
		// engine sequences (ELP2IM's XOR/XNOR) read their operand rows
		// again after writing an intermediate into the destination, so the
		// destination must never alias an operand of the same instruction.
		dst := tempRef(alloc())
		if !v.a.leaf {
			v.a.uses--
			if v.a.uses == 0 {
				release(a)
			}
		}
		if v.b != nil && !v.b.leaf {
			v.b.uses--
			if v.b.uses == 0 {
				release(b)
			}
		}
		v.ref = dst
		v.emitted = true
		p.Instrs = append(p.Instrs, Instr{Op: v.op, Dst: dst, A: a, B: b})
	}
	p.TempSlots = len(slots)
	return p, nil
}

// fuse applies gate fusion: a NOT on the output or inputs of a binary
// gate collapses into the engine-native complement gate, saving a full
// DCC round-trip per fused NOT.
//
//	AND(¬x, ¬y) = NOR(x, y)      OR(¬x, ¬y) = NAND(x, y)
//	XOR(¬x, y) = XOR(x, ¬y) = XNOR(x, y)
//	XOR(¬x, ¬y) = XOR(x, y)
func fuse(op engine.Op, a, b *value) *value {
	na := !a.leaf && a.op == engine.OpNOT
	nb := !b.leaf && b.op == engine.OpNOT
	switch op {
	case engine.OpAND:
		if na && nb {
			return &value{op: engine.OpNOR, a: a.a, b: b.a}
		}
	case engine.OpOR:
		if na && nb {
			return &value{op: engine.OpNAND, a: a.a, b: b.a}
		}
	case engine.OpXOR:
		if na && nb {
			return &value{op: engine.OpXOR, a: a.a, b: b.a}
		}
		if na {
			return &value{op: engine.OpXNOR, a: a.a, b: b}
		}
		if nb {
			return &value{op: engine.OpXNOR, a: a, b: b.a}
		}
	}
	return &value{op: op, a: a, b: b}
}

// CostEstimator prices one three-operand operation (every engine does).
type CostEstimator interface {
	OpStats(op engine.Op) engine.Stats
}

// Cost returns the program's total modeled cost on a design (per stripe of
// row width).
func (p *Program) Cost(d CostEstimator) engine.Stats {
	var total engine.Stats
	for _, in := range p.Instrs {
		total.Add(d.OpStats(in.Op))
	}
	return total
}

// Executor is the functional engine surface programs run on.
type Executor interface {
	Execute(sub *dram.Subarray, op engine.Op, dst, a, b int) error
}

// Execute runs the program on a subarray: varRows[i] is the row holding
// Vars[i]; scratch rows scratchBase, scratchBase+1, ... hold the temps.
// It returns the row holding the result. Input rows are preserved.
func (p *Program) Execute(sub *dram.Subarray, ex Executor, varRows []int, scratchBase int) (int, error) {
	if len(varRows) != len(p.Vars) {
		return 0, fmt.Errorf("expr: %d var rows for %d variables", len(varRows), len(p.Vars))
	}
	if scratchBase+p.TempSlots > sub.Rows() {
		return 0, fmt.Errorf("expr: program needs %d scratch rows at %d but subarray has %d rows",
			p.TempSlots, scratchBase, sub.Rows())
	}
	rowOf := func(r Ref) int {
		if r.Temp {
			return scratchBase + r.Index
		}
		return varRows[r.Index]
	}
	for _, in := range p.Instrs {
		b := -1
		if !in.Op.Unary() {
			b = rowOf(in.B)
		}
		if err := ex.Execute(sub, in.Op, rowOf(in.Dst), rowOf(in.A), b); err != nil {
			return 0, fmt.Errorf("expr: %s: %w", in, err)
		}
	}
	return rowOf(p.Result()), nil
}
