package expr

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/dram"
	"repro/internal/engine"
)

// Ref names an operand of a compiled instruction.
type Ref struct {
	// Temp is true for scratch values, false for input variables.
	Temp bool
	// Index is the variable index (into Program.Vars) or the temp slot.
	Index int
}

func varRef(i int) Ref  { return Ref{Temp: false, Index: i} }
func tempRef(i int) Ref { return Ref{Temp: true, Index: i} }

// String renders the reference.
func (r Ref) String() string {
	if r.Temp {
		return fmt.Sprintf("t%d", r.Index)
	}
	return fmt.Sprintf("v%d", r.Index)
}

// Instr is one three-address operation: Dst = Op(A, B) (B unused for
// unary ops). Dst is always a temp.
type Instr struct {
	Op   engine.Op
	Dst  Ref
	A, B Ref
}

// String renders the instruction.
func (in Instr) String() string {
	if in.Op.Unary() {
		return fmt.Sprintf("%s = %s %s", in.Dst, in.Op, in.A)
	}
	return fmt.Sprintf("%s = %s %s, %s", in.Dst, in.Op, in.A, in.B)
}

// Program is a compiled expression: an instruction list over input
// variables and scratch temps, with the result in the last instruction's
// destination.
type Program struct {
	// Vars are the input variable names, in first-appearance order.
	Vars []string
	// Instrs is the instruction list in execution order.
	Instrs []Instr
	// TempSlots is the number of scratch rows needed after allocation.
	TempSlots int
	// Source is the original expression.
	Source string
}

// Result returns the reference holding the final value.
func (p *Program) Result() Ref {
	if len(p.Instrs) == 0 {
		return varRef(0) // expression was a bare variable
	}
	return p.Instrs[len(p.Instrs)-1].Dst
}

// String renders the program.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; %s  (vars: %s, temps: %d)\n",
		p.Source, strings.Join(p.Vars, ","), p.TempSlots)
	for _, in := range p.Instrs {
		fmt.Fprintf(&b, "%s\n", in)
	}
	return b.String()
}

// DAGNode is one node of the optimized expression DAG: either a variable
// leaf (Leaf true, VarIndex into DAG.Vars) or a gate applying Op to its
// operands (B nil for unary Op). Structural sharing is real sharing —
// common subexpressions are one node pointed to by every user — so
// consumers (the scheduler, the plan compiler in internal/plan) can key
// maps by node identity.
type DAGNode struct {
	// Op is the gate of an interior node (undefined for leaves).
	Op engine.Op
	// A and B are the operands (B nil for unary gates and leaves).
	A, B *DAGNode
	// VarIndex is the leaf's index into DAG.Vars.
	VarIndex int
	// Leaf marks a variable leaf.
	Leaf bool
}

// DAG is the optimized form of one expression: common subexpressions
// merged (hash-consing over the commutativity-canonicalized structure),
// double negations removed, and NOT gates fused into the engine-native
// complement gates (NAND/NOR/XNOR). It is the single source both
// schedules compile from — the node-at-a-time command schedule
// (Schedule) and the fused cluster schedule (internal/plan) — which is
// what keeps their semantics and the cost model's instruction stream in
// lock step.
type DAG struct {
	// Root is the result node.
	Root *DAGNode
	// Order lists the interior nodes in post-order (operands before
	// users) — the emission order of every schedule. Empty when Root is
	// a bare variable leaf.
	Order []*DAGNode
	// Vars are the input variable names, in first-appearance order.
	Vars []string
	// Source is the original expression.
	Source string
}

// BuildDAG lowers a parse tree to the optimized DAG: CSE via structural
// hash-consing, double-negation removal, and NOT-into-gate fusion.
func BuildDAG(n *Node) (*DAG, error) {
	if n == nil {
		return nil, errors.New("expr: nil expression")
	}
	vars := n.Vars()
	vidx := map[string]int{}
	for i, v := range vars {
		vidx[v] = i
	}

	// Build the DAG with structural sharing.
	memo := map[string]*DAGNode{}
	var build func(*Node) *DAGNode
	build = func(x *Node) *DAGNode {
		k := x.key()
		if v, ok := memo[k]; ok {
			return v
		}
		var v *DAGNode
		switch x.Kind {
		case NodeVar:
			v = &DAGNode{Leaf: true, VarIndex: vidx[x.Name]}
		case NodeNot:
			a := build(x.Left)
			// Double negation: ~~e = e.
			if !a.Leaf && a.Op == engine.OpNOT {
				v = a.A
			} else {
				v = &DAGNode{Op: engine.OpNOT, A: a}
			}
		default:
			a, b := build(x.Left), build(x.Right)
			var op engine.Op
			switch x.Kind {
			case NodeAnd:
				op = engine.OpAND
			case NodeOr:
				op = engine.OpOR
			case NodeXor:
				op = engine.OpXOR
			}
			v = fuse(op, a, b)
		}
		memo[k] = v
		return v
	}
	root := build(n)

	d := &DAG{Root: root, Vars: vars, Source: n.String()}
	if root.Leaf {
		return d, nil
	}
	seen := map[*DAGNode]bool{}
	var walk func(*DAGNode)
	walk = func(v *DAGNode) {
		if v.Leaf || seen[v] {
			return
		}
		seen[v] = true
		walk(v.A)
		if v.B != nil {
			walk(v.B)
		}
		d.Order = append(d.Order, v) // post-order: operands first
	}
	walk(root)
	return d, nil
}

// Schedule emits the DAG as a node-at-a-time Program: one engine
// instruction per interior node in post-order, with scratch rows
// allocated by liveness so dead temps are reused.
func (d *DAG) Schedule() *Program {
	p := &Program{Vars: d.Vars, Source: d.Source}
	if d.Root.Leaf {
		// Bare variable: no instructions; Result refers to the variable.
		return p
	}

	// Count uses for liveness (the root counts as one use).
	uses := map[*DAGNode]int{}
	for _, v := range d.Order {
		if !v.A.Leaf {
			uses[v.A]++
		}
		if v.B != nil && !v.B.Leaf {
			uses[v.B]++
		}
	}
	uses[d.Root]++

	// Emit in post-order with liveness-based temp-slot reuse.
	var free []bool
	alloc := func() int {
		for i := range free {
			if free[i] {
				free[i] = false
				return i
			}
		}
		free = append(free, false)
		return len(free) - 1
	}
	refs := map[*DAGNode]Ref{}
	refOf := func(v *DAGNode) Ref {
		if v.Leaf {
			return varRef(v.VarIndex)
		}
		return refs[v]
	}

	for _, v := range d.Order {
		a := refOf(v.A)
		var b Ref
		if v.B != nil {
			b = refOf(v.B)
		}
		// Allocate the destination BEFORE releasing dying operands: some
		// engine sequences (ELP2IM's XOR/XNOR) read their operand rows
		// again after writing an intermediate into the destination, so the
		// destination must never alias an operand of the same instruction.
		dst := tempRef(alloc())
		if !v.A.Leaf {
			if uses[v.A]--; uses[v.A] == 0 {
				free[a.Index] = true
			}
		}
		if v.B != nil && !v.B.Leaf {
			if uses[v.B]--; uses[v.B] == 0 {
				free[b.Index] = true
			}
		}
		refs[v] = dst
		p.Instrs = append(p.Instrs, Instr{Op: v.Op, Dst: dst, A: a, B: b})
	}
	p.TempSlots = len(free)
	return p
}

// Compile lowers an expression to a Program: builds the CSE'd DAG, fuses
// NOT into following/preceding gates (NAND/NOR/XNOR/NOT collapses), and
// allocates scratch rows by liveness so temps are reused.
func Compile(n *Node) (*Program, error) {
	d, err := BuildDAG(n)
	if err != nil {
		return nil, err
	}
	return d.Schedule(), nil
}

// fuse applies gate fusion: a NOT on the output or inputs of a binary
// gate collapses into the engine-native complement gate, saving a full
// DCC round-trip per fused NOT.
//
//	AND(¬x, ¬y) = NOR(x, y)      OR(¬x, ¬y) = NAND(x, y)
//	XOR(¬x, y) = XOR(x, ¬y) = XNOR(x, y)
//	XOR(¬x, ¬y) = XOR(x, y)
func fuse(op engine.Op, a, b *DAGNode) *DAGNode {
	na := !a.Leaf && a.Op == engine.OpNOT
	nb := !b.Leaf && b.Op == engine.OpNOT
	switch op {
	case engine.OpAND:
		if na && nb {
			return &DAGNode{Op: engine.OpNOR, A: a.A, B: b.A}
		}
	case engine.OpOR:
		if na && nb {
			return &DAGNode{Op: engine.OpNAND, A: a.A, B: b.A}
		}
	case engine.OpXOR:
		if na && nb {
			return &DAGNode{Op: engine.OpXOR, A: a.A, B: b.A}
		}
		if na {
			return &DAGNode{Op: engine.OpXNOR, A: a.A, B: b}
		}
		if nb {
			return &DAGNode{Op: engine.OpXNOR, A: a, B: b.A}
		}
	}
	return &DAGNode{Op: op, A: a, B: b}
}

// CostEstimator prices one three-operand operation (every engine does).
type CostEstimator interface {
	OpStats(op engine.Op) engine.Stats
}

// Cost returns the program's total modeled cost on a design (per stripe of
// row width).
func (p *Program) Cost(d CostEstimator) engine.Stats {
	var total engine.Stats
	for _, in := range p.Instrs {
		total.Add(d.OpStats(in.Op))
	}
	return total
}

// Executor is the functional engine surface programs run on.
type Executor interface {
	Execute(sub *dram.Subarray, op engine.Op, dst, a, b int) error
}

// Execute runs the program on a subarray: varRows[i] is the row holding
// Vars[i]; scratch rows scratchBase, scratchBase+1, ... hold the temps.
// It returns the row holding the result. Input rows are preserved.
func (p *Program) Execute(sub *dram.Subarray, ex Executor, varRows []int, scratchBase int) (int, error) {
	if len(varRows) != len(p.Vars) {
		return 0, fmt.Errorf("expr: %d var rows for %d variables", len(varRows), len(p.Vars))
	}
	if scratchBase+p.TempSlots > sub.Rows() {
		return 0, fmt.Errorf("expr: program needs %d scratch rows at %d but subarray has %d rows",
			p.TempSlots, scratchBase, sub.Rows())
	}
	rowOf := func(r Ref) int {
		if r.Temp {
			return scratchBase + r.Index
		}
		return varRows[r.Index]
	}
	// When the executor consumes operand A's row (engine.OperandConsumer —
	// ELP2IM's two-buffer XOR/XNOR), a consuming instruction whose A value
	// is still needed (an input row, preserved by contract, or a live temp)
	// re-stages A into the row above the temp slots first.
	oc, _ := ex.(engine.OperandConsumer)
	staging := scratchBase + p.TempSlots
	for i, in := range p.Instrs {
		a := rowOf(in.A)
		if oc != nil && oc.ConsumesOperandA(in.Op) && p.operandLiveAfter(i, in.A) {
			if staging >= sub.Rows() {
				return 0, fmt.Errorf("expr: program needs staging row %d but subarray has %d rows",
					staging, sub.Rows())
			}
			if err := ex.Execute(sub, engine.OpCOPY, staging, a, -1); err != nil {
				return 0, fmt.Errorf("expr: staging %s: %w", in, err)
			}
			a = staging
		}
		b := -1
		if !in.Op.Unary() {
			b = rowOf(in.B)
		}
		if err := ex.Execute(sub, in.Op, rowOf(in.Dst), a, b); err != nil {
			return 0, fmt.Errorf("expr: %s: %w", in, err)
		}
	}
	return rowOf(p.Result()), nil
}

// operandLiveAfter reports whether instruction i's operand r is needed
// after i executes: input rows always are (Execute preserves them); a
// temp slot is live until read or redefined, whichever comes first.
func (p *Program) operandLiveAfter(i int, r Ref) bool {
	if !r.Temp {
		return true
	}
	for _, in := range p.Instrs[i+1:] {
		if in.A == r || (!in.Op.Unary() && in.B == r) {
			return true
		}
		if in.Dst == r {
			return false
		}
	}
	return false
}
