package expr

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ambit"
	"repro/internal/bitvec"
	"repro/internal/dram"
	"repro/internal/drisa"
	"repro/internal/elpim"
	"repro/internal/engine"
)

func TestParseBasics(t *testing.T) {
	cases := map[string]string{
		"a":             "a",
		"~a":            "~a",
		"a & b":         "(a & b)",
		"a | b & c":     "(a | (b & c))",
		"a ^ b | c":     "((a ^ b) | c)",
		"~(a | b)":      "~(a | b)",
		"(a&b)|(~a&~b)": "((a & b) | (~a & ~b))",
		"_x1 & y2":      "(_x1 & y2)",
		"a & b & c":     "((a & b) & c)",
		" a\t^ b ":      "(a ^ b)",
	}
	for src, want := range cases {
		n, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if n.String() != want {
			t.Errorf("Parse(%q) = %s, want %s", src, n, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{"", "&a", "a &", "(a", "a)", "a @ b", "~", "a b"} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic")
		}
	}()
	MustParse("((")
}

func TestEval(t *testing.T) {
	n := MustParse("(a & ~b) | (c ^ d)")
	env := map[string]bool{"a": true, "b": false, "c": true, "d": true}
	if !n.Eval(env) { // (1 & 1) | 0 = 1
		t.Fatal("eval wrong")
	}
	env["b"] = true
	env["d"] = false
	if !n.Eval(env) { // 0 | (1^0) = 1
		t.Fatal("eval wrong")
	}
	env["c"] = false
	env["d"] = false
	if n.Eval(env) { // 0 | 0
		t.Fatal("eval wrong")
	}
}

func TestEvalPanicsOnUnbound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unbound variable did not panic")
		}
	}()
	MustParse("a & b").Eval(map[string]bool{"a": true})
}

func TestVarsOrder(t *testing.T) {
	n := MustParse("b & (a | b) & c")
	got := n.Vars()
	want := []string{"b", "a", "c"}
	if len(got) != len(want) {
		t.Fatalf("vars = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vars = %v, want %v", got, want)
		}
	}
}

func TestCompileCSE(t *testing.T) {
	// (a&b) appears twice: CSE must emit it once.
	p, err := Compile(MustParse("(a & b) ^ ((a & b) | c)"))
	if err != nil {
		t.Fatal(err)
	}
	ands := 0
	for _, in := range p.Instrs {
		if in.Op == engine.OpAND {
			ands++
		}
	}
	if ands != 1 {
		t.Errorf("CSE failed: %d ANDs\n%s", ands, p)
	}
	// Commutative CSE: (b & a) matches (a & b).
	p2, err := Compile(MustParse("(a & b) | (b & a)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Instrs) != 2 { // one AND + one OR(x,x)
		t.Errorf("commutative CSE failed:\n%s", p2)
	}
}

func TestCompileFusion(t *testing.T) {
	cases := map[string]engine.Op{
		"~a & ~b": engine.OpNOR,
		"~a | ~b": engine.OpNAND,
		"~a ^ b":  engine.OpXNOR,
		"a ^ ~b":  engine.OpXNOR,
	}
	for src, want := range cases {
		p, err := Compile(MustParse(src))
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Instrs) != 1 || p.Instrs[0].Op != want {
			t.Errorf("%q compiled to\n%s, want single %v", src, p, want)
		}
	}
	// ~a ^ ~b = a ^ b.
	p, err := Compile(MustParse("~a ^ ~b"))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 1 || p.Instrs[0].Op != engine.OpXOR {
		t.Errorf("~a^~b compiled to\n%s, want single XOR", p)
	}
}

func TestCompileDoubleNegation(t *testing.T) {
	p, err := Compile(MustParse("~~a & b"))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 1 || p.Instrs[0].Op != engine.OpAND {
		t.Errorf("~~a & b compiled to\n%s", p)
	}
}

func TestCompileBareVariable(t *testing.T) {
	p, err := Compile(MustParse("x"))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 0 || p.TempSlots != 0 {
		t.Fatalf("bare variable program:\n%s", p)
	}
	if r := p.Result(); r.Temp || r.Index != 0 {
		t.Fatalf("bare variable result = %v", r)
	}
}

func TestCompileNilExpression(t *testing.T) {
	if _, err := Compile(nil); err == nil {
		t.Fatal("nil expression accepted")
	}
}

func TestTempSlotReuse(t *testing.T) {
	// A long chain needs O(1) temps, not O(n): liveness must reuse slots.
	p, err := Compile(MustParse("((((a & b) | c) & d) | e) & f"))
	if err != nil {
		t.Fatal(err)
	}
	if p.TempSlots > 2 {
		t.Errorf("chain uses %d temp slots, want <= 2\n%s", p.TempSlots, p)
	}
}

func TestProgramString(t *testing.T) {
	p, err := Compile(MustParse("a & ~b"))
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	if !strings.Contains(s, "NOT") || !strings.Contains(s, "AND") {
		t.Errorf("program render missing ops:\n%s", s)
	}
}

func TestCostComparesDesigns(t *testing.T) {
	p, err := Compile(MustParse("(a & b) | (~a & c)"))
	if err != nil {
		t.Fatal(err)
	}
	e := elpim.MustNew(elpim.DefaultConfig())
	a := ambit.MustNew(ambit.DefaultConfig())
	if p.Cost(e).LatencyNS >= p.Cost(a).LatencyNS {
		t.Errorf("ELP2IM program cost %v must beat Ambit %v",
			p.Cost(e).LatencyNS, p.Cost(a).LatencyNS)
	}
	if p.Cost(e).Commands == 0 {
		t.Error("cost must count commands")
	}
}

// executeOn runs a program on a fresh subarray with random inputs and
// checks every bit against Node.Eval.
func executeOn(t *testing.T, ex Executor, n *Node, seed int64) {
	t.Helper()
	p, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	const cols = 192
	cfg := dram.Config{
		Banks: 1, SubarraysPerBank: 1,
		RowsPerSubarray: 24, Columns: cols, DualContactRows: 2,
	}
	sub := dram.NewSubarray(cfg)
	rng := rand.New(rand.NewSource(seed))
	varRows := make([]int, len(p.Vars))
	data := make([]*bitvec.Vector, len(p.Vars))
	for i := range p.Vars {
		varRows[i] = i
		data[i] = bitvec.Random(rng, cols)
		sub.LoadRow(i, data[i])
	}
	resRow, err := p.Execute(sub, ex, varRows, 10)
	if err != nil {
		t.Fatal(err)
	}
	got := sub.RowData(resRow)
	env := map[string]bool{}
	for bit := 0; bit < cols; bit++ {
		for i, v := range p.Vars {
			env[v] = data[i].Bit(bit)
		}
		if got.Bit(bit) != n.Eval(env) {
			t.Fatalf("bit %d: got %v, want %v for %s", bit, got.Bit(bit), n.Eval(env), n)
		}
	}
	// Inputs preserved.
	for i := range p.Vars {
		if !sub.RowData(varRows[i]).Equal(data[i]) {
			t.Fatalf("input %s clobbered", p.Vars[i])
		}
	}
}

func TestExecuteOnAllEngines(t *testing.T) {
	exprs := []string{
		"a & b",
		"~(a | b) ^ c",
		"(a & ~b) | (~a & b)",         // XOR the long way
		"(a & b) | (b & c) | (a & c)", // majority
		"((a ^ b) ^ c) & ~(d | e)",    // five variables
		"~a & ~b & ~c",                // NOR chain
		"(a | b) & (a | c) & (b | c)", // majority, OR form
	}
	engines := map[string]Executor{
		"elpim": elpim.MustNew(elpim.DefaultConfig()),
		"ambit": ambit.MustNew(ambit.DefaultConfig()),
		"drisa": drisa.MustNew(drisa.DefaultConfig()),
	}
	for name, ex := range engines {
		for i, src := range exprs {
			t.Run(name+"/"+src, func(t *testing.T) {
				executeOn(t, ex, MustParse(src), int64(i)*17+1)
			})
		}
	}
}

func TestExecuteErrors(t *testing.T) {
	p, err := Compile(MustParse("a & b"))
	if err != nil {
		t.Fatal(err)
	}
	ex := elpim.MustNew(elpim.DefaultConfig())
	sub := dram.NewSubarray(dram.Config{
		Banks: 1, SubarraysPerBank: 1, RowsPerSubarray: 8, Columns: 64, DualContactRows: 1,
	})
	if _, err := p.Execute(sub, ex, []int{0}, 4); err == nil {
		t.Error("wrong var-row count accepted")
	}
	if _, err := p.Execute(sub, ex, []int{0, 1}, 8); err == nil {
		t.Error("out-of-range scratch base accepted")
	}
}

// randomExpr builds a random expression tree over k variables.
func randomExpr(rng *rand.Rand, depth, k int) *Node {
	if depth == 0 || rng.Intn(4) == 0 {
		return Var(string(rune('a' + rng.Intn(k))))
	}
	switch rng.Intn(4) {
	case 0:
		return Not(randomExpr(rng, depth-1, k))
	case 1:
		return And(randomExpr(rng, depth-1, k), randomExpr(rng, depth-1, k))
	case 2:
		return Or(randomExpr(rng, depth-1, k), randomExpr(rng, depth-1, k))
	default:
		return Xor(randomExpr(rng, depth-1, k), randomExpr(rng, depth-1, k))
	}
}

// Property: compiled programs match Eval on random expressions, executed
// through the real ELP2IM command interpreter.
func TestRandomExpressionsProperty(t *testing.T) {
	ex := elpim.MustNew(elpim.DefaultConfig())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomExpr(rng, 4, 4)
		p, err := Compile(n)
		if err != nil {
			return false
		}
		const cols = 64
		cfg := dram.Config{
			Banks: 1, SubarraysPerBank: 1,
			RowsPerSubarray: 8 + p.TempSlots + len(p.Vars), Columns: cols, DualContactRows: 1,
		}
		sub := dram.NewSubarray(cfg)
		varRows := make([]int, len(p.Vars))
		data := make([]*bitvec.Vector, len(p.Vars))
		for i := range p.Vars {
			varRows[i] = i
			data[i] = bitvec.Random(rng, cols)
			sub.LoadRow(i, data[i])
		}
		resRow, err := p.Execute(sub, ex, varRows, len(p.Vars))
		if err != nil {
			return false
		}
		got := sub.RowData(resRow)
		env := map[string]bool{}
		for bit := 0; bit < cols; bit++ {
			for i, v := range p.Vars {
				env[v] = data[i].Bit(bit)
			}
			if got.Bit(bit) != n.Eval(env) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: round-trip Parse(String()) is identity on structure.
func TestParseStringRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomExpr(rng, 5, 3)
		back, err := Parse(n.String())
		if err != nil {
			return false
		}
		return back.String() == n.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
