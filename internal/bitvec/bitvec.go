// Package bitvec implements bulk bit-vectors backed by []uint64 words.
//
// It serves two roles in the reproduction: it is the host-side golden model
// against which every in-DRAM engine (ELP2IM, Ambit, DRISA) is differential-
// tested, and it is the storage representation of DRAM rows in the
// functional device model.
//
// Bit i of a Vector lives at word i/64, bit position i%64 (LSB-first).
// Vectors have an exact length in bits; bits beyond the length inside the
// last word are kept zero ("canonical form") so word-wise equality and
// popcount are exact.
package bitvec

import (
	"fmt"
	"math/bits"
	"math/rand"
	"strings"
)

// Vector is a fixed-length bit-vector. The zero value is an empty vector.
type Vector struct {
	bits  []uint64
	nbits int
}

// New returns an all-zero vector of n bits. n must be non-negative.
func New(n int) *Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return &Vector{bits: make([]uint64, (n+63)/64), nbits: n}
}

// FromWords builds a vector of n bits from the given words. Extra words are
// ignored, missing words are zero, and tail bits beyond n are masked off.
func FromWords(words []uint64, n int) *Vector {
	v := New(n)
	copy(v.bits, words)
	v.maskTail()
	return v
}

// Random returns a vector of n bits with uniformly random contents drawn
// from rng.
func Random(rng *rand.Rand, n int) *Vector {
	v := New(n)
	for i := range v.bits {
		v.bits[i] = rng.Uint64()
	}
	v.maskTail()
	return v
}

// maskTail zeroes the unused bits of the last word.
func (v *Vector) maskTail() {
	if v.nbits%64 != 0 && len(v.bits) > 0 {
		v.bits[len(v.bits)-1] &= (1 << uint(v.nbits%64)) - 1
	}
}

// Len returns the length in bits.
func (v *Vector) Len() int { return v.nbits }

// MaskTail re-establishes the canonical-form invariant (bits beyond Len
// in the last word zeroed) after direct writes through Words. Callers
// that bulk-write words — the compiled kernel fast path — must call it
// once the final word has been touched.
func (v *Vector) MaskTail() { v.maskTail() }

// Words returns the underlying words. The slice is shared, not copied;
// mutating it directly may break the canonical-form invariant.
func (v *Vector) Words() []uint64 { return v.bits }

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	c := New(v.nbits)
	copy(c.bits, v.bits)
	return c
}

// Bit returns bit i as a bool. It panics if i is out of range.
func (v *Vector) Bit(i int) bool {
	v.check(i)
	return v.bits[i/64]>>(uint(i)%64)&1 == 1
}

// SetBit sets bit i to b. It panics if i is out of range.
func (v *Vector) SetBit(i int, b bool) {
	v.check(i)
	if b {
		v.bits[i/64] |= 1 << (uint(i) % 64)
	} else {
		v.bits[i/64] &^= 1 << (uint(i) % 64)
	}
}

func (v *Vector) check(i int) {
	if i < 0 || i >= v.nbits {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.nbits))
	}
}

// Fill sets every bit to b.
func (v *Vector) Fill(b bool) {
	var w uint64
	if b {
		w = ^uint64(0)
	}
	for i := range v.bits {
		v.bits[i] = w
	}
	v.maskTail()
}

// Equal reports whether v and o have the same length and contents.
func (v *Vector) Equal(o *Vector) bool {
	if v.nbits != o.nbits {
		return false
	}
	for i := range v.bits {
		if v.bits[i] != o.bits[i] {
			return false
		}
	}
	return true
}

// Popcount returns the number of set bits.
func (v *Vector) Popcount() int {
	n := 0
	for _, w := range v.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// sameLen panics unless all vectors share v's length.
func (v *Vector) sameLen(os ...*Vector) {
	for _, o := range os {
		if o.nbits != v.nbits {
			panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.nbits, o.nbits))
		}
	}
}

// And stores a AND b into v (aliasing allowed) and returns v.
func (v *Vector) And(a, b *Vector) *Vector {
	v.sameLen(a, b)
	for i := range v.bits {
		v.bits[i] = a.bits[i] & b.bits[i]
	}
	return v
}

// Or stores a OR b into v and returns v.
func (v *Vector) Or(a, b *Vector) *Vector {
	v.sameLen(a, b)
	for i := range v.bits {
		v.bits[i] = a.bits[i] | b.bits[i]
	}
	return v
}

// Xor stores a XOR b into v and returns v.
func (v *Vector) Xor(a, b *Vector) *Vector {
	v.sameLen(a, b)
	for i := range v.bits {
		v.bits[i] = a.bits[i] ^ b.bits[i]
	}
	return v
}

// Not stores NOT a into v and returns v.
func (v *Vector) Not(a *Vector) *Vector {
	v.sameLen(a)
	for i := range v.bits {
		v.bits[i] = ^a.bits[i]
	}
	v.maskTail()
	return v
}

// Nand stores NOT(a AND b) into v and returns v.
func (v *Vector) Nand(a, b *Vector) *Vector {
	v.sameLen(a, b)
	for i := range v.bits {
		v.bits[i] = ^(a.bits[i] & b.bits[i])
	}
	v.maskTail()
	return v
}

// Nor stores NOT(a OR b) into v and returns v.
func (v *Vector) Nor(a, b *Vector) *Vector {
	v.sameLen(a, b)
	for i := range v.bits {
		v.bits[i] = ^(a.bits[i] | b.bits[i])
	}
	v.maskTail()
	return v
}

// Xnor stores NOT(a XOR b) into v and returns v.
func (v *Vector) Xnor(a, b *Vector) *Vector {
	v.sameLen(a, b)
	for i := range v.bits {
		v.bits[i] = ^(a.bits[i] ^ b.bits[i])
	}
	v.maskTail()
	return v
}

// Majority stores the bitwise majority of a, b, c into v and returns v.
// This is the function a triple-row activation computes: R = AB + BC + AC.
func (v *Vector) Majority(a, b, c *Vector) *Vector {
	v.sameLen(a, b, c)
	for i := range v.bits {
		v.bits[i] = a.bits[i]&b.bits[i] | b.bits[i]&c.bits[i] | a.bits[i]&c.bits[i]
	}
	return v
}

// CopyFrom copies a's contents into v and returns v.
func (v *Vector) CopyFrom(a *Vector) *Vector {
	v.sameLen(a)
	copy(v.bits, a.bits)
	return v
}

// String renders up to the first 64 bits MSB-last (bit 0 first), with an
// ellipsis for longer vectors. Intended for debugging and error messages.
func (v *Vector) String() string {
	var b strings.Builder
	n := v.nbits
	if n > 64 {
		n = 64
	}
	for i := 0; i < n; i++ {
		if v.Bit(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	if v.nbits > 64 {
		fmt.Fprintf(&b, "... (%d bits)", v.nbits)
	}
	return b.String()
}
