package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	v := New(130)
	if v.Len() != 130 {
		t.Fatalf("len = %d, want 130", v.Len())
	}
	if v.Popcount() != 0 {
		t.Fatalf("new vector has %d set bits", v.Popcount())
	}
	if len(v.Words()) != 3 {
		t.Fatalf("words = %d, want 3", len(v.Words()))
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetGetBit(t *testing.T) {
	v := New(100)
	for _, i := range []int{0, 1, 63, 64, 65, 99} {
		v.SetBit(i, true)
		if !v.Bit(i) {
			t.Errorf("bit %d not set", i)
		}
		v.SetBit(i, false)
		if v.Bit(i) {
			t.Errorf("bit %d not cleared", i)
		}
	}
}

func TestBitPanicsOutOfRange(t *testing.T) {
	v := New(10)
	for _, i := range []int{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bit(%d) did not panic", i)
				}
			}()
			v.Bit(i)
		}()
	}
}

func TestFillRespectsTailMask(t *testing.T) {
	v := New(70)
	v.Fill(true)
	if v.Popcount() != 70 {
		t.Fatalf("popcount after fill = %d, want 70", v.Popcount())
	}
	// The last word must have only 6 bits set.
	if w := v.Words()[1]; w != (1<<6)-1 {
		t.Fatalf("tail word = %#x, want %#x", w, uint64(1<<6)-1)
	}
	v.Fill(false)
	if v.Popcount() != 0 {
		t.Fatal("fill(false) left bits set")
	}
}

func TestFromWordsMasksTail(t *testing.T) {
	v := FromWords([]uint64{^uint64(0), ^uint64(0)}, 65)
	if v.Popcount() != 65 {
		t.Fatalf("popcount = %d, want 65", v.Popcount())
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(64)
	a.SetBit(3, true)
	b := a.Clone()
	b.SetBit(4, true)
	if a.Bit(4) {
		t.Fatal("clone shares storage with original")
	}
	if !b.Bit(3) {
		t.Fatal("clone missing original bit")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(65), New(65)
	if !a.Equal(b) {
		t.Fatal("zero vectors not equal")
	}
	b.SetBit(64, true)
	if a.Equal(b) {
		t.Fatal("different vectors reported equal")
	}
	if a.Equal(New(64)) {
		t.Fatal("different lengths reported equal")
	}
}

func TestLogicOpsSmall(t *testing.T) {
	// Truth-table check on 4 bits covering all input combinations.
	a := FromWords([]uint64{0b0011}, 4)
	b := FromWords([]uint64{0b0101}, 4)
	cases := []struct {
		name string
		run  func(dst *Vector) *Vector
		want uint64
	}{
		{"and", func(d *Vector) *Vector { return d.And(a, b) }, 0b0001},
		{"or", func(d *Vector) *Vector { return d.Or(a, b) }, 0b0111},
		{"xor", func(d *Vector) *Vector { return d.Xor(a, b) }, 0b0110},
		{"nand", func(d *Vector) *Vector { return d.Nand(a, b) }, 0b1110},
		{"nor", func(d *Vector) *Vector { return d.Nor(a, b) }, 0b1000},
		{"xnor", func(d *Vector) *Vector { return d.Xnor(a, b) }, 0b1001},
		{"not a", func(d *Vector) *Vector { return d.Not(a) }, 0b1100},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.run(New(4)).Words()[0]
			if got != tc.want {
				t.Errorf("%s = %04b, want %04b", tc.name, got, tc.want)
			}
		})
	}
}

func TestMajorityTruthTable(t *testing.T) {
	// All 8 combinations of (a,b,c) in 8 bit positions.
	a := FromWords([]uint64{0b10101010}, 8)
	b := FromWords([]uint64{0b11001100}, 8)
	c := FromWords([]uint64{0b11110000}, 8)
	want := uint64(0b11101000) // majority per position
	got := New(8).Majority(a, b, c).Words()[0]
	if got != want {
		t.Fatalf("majority = %08b, want %08b", got, want)
	}
}

func TestAliasedOperands(t *testing.T) {
	a := FromWords([]uint64{0b0011}, 4)
	b := FromWords([]uint64{0b0101}, 4)
	a.And(a, b) // in-place
	if a.Words()[0] != 0b0001 {
		t.Fatalf("in-place and = %04b, want 0001", a.Words()[0])
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("And with mismatched lengths did not panic")
		}
	}()
	New(4).And(New(4), New(5))
}

func TestCopyFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Random(rng, 200)
	b := New(200).CopyFrom(a)
	if !a.Equal(b) {
		t.Fatal("CopyFrom mismatch")
	}
}

func TestStringTruncation(t *testing.T) {
	v := New(3)
	v.SetBit(1, true)
	if got := v.String(); got != "010" {
		t.Fatalf("String() = %q, want 010", got)
	}
	long := New(65)
	if got := long.String(); len(got) <= 64 {
		t.Fatalf("long String() missing ellipsis: %q", got)
	}
}

// Properties via testing/quick.

func randomPair(seed int64, n int) (*Vector, *Vector) {
	rng := rand.New(rand.NewSource(seed))
	return Random(rng, n), Random(rng, n)
}

func TestDeMorganProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%300 + 1
		a, b := randomPair(seed, n)
		lhs := New(n).Nand(a, b)
		rhs := New(n).Or(New(n).Not(a), New(n).Not(b))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXorSelfInverseProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%300 + 1
		a, b := randomPair(seed, n)
		x := New(n).Xor(a, b)
		back := New(n).Xor(x, b)
		return back.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleNegationProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%300 + 1
		rng := rand.New(rand.NewSource(seed))
		a := Random(rng, n)
		return New(n).Not(New(n).Not(a)).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMajorityWithConstantIsAndOrProperty(t *testing.T) {
	// The Ambit identity: MAJ(a,b,0) = a AND b; MAJ(a,b,1) = a OR b.
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%300 + 1
		a, b := randomPair(seed, n)
		zero, one := New(n), New(n)
		one.Fill(true)
		andWant := New(n).And(a, b)
		orWant := New(n).Or(a, b)
		return New(n).Majority(a, b, zero).Equal(andWant) &&
			New(n).Majority(a, b, one).Equal(orWant)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPopcountMatchesBitScanProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%300 + 1
		rng := rand.New(rand.NewSource(seed))
		a := Random(rng, n)
		count := 0
		for i := 0; i < n; i++ {
			if a.Bit(i) {
				count++
			}
		}
		return count == a.Popcount()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalFormPreservedProperty(t *testing.T) {
	// After any op, bits beyond Len in the last word stay zero.
	tail := func(v *Vector) uint64 {
		if v.Len()%64 == 0 {
			return 0
		}
		return v.Words()[len(v.Words())-1] &^ ((1 << uint(v.Len()%64)) - 1)
	}
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%127 + 1
		a, b := randomPair(seed, n)
		ops := []*Vector{
			New(n).Not(a), New(n).Nand(a, b), New(n).Nor(a, b),
			New(n).Xnor(a, b), New(n).Xor(a, b),
		}
		for _, v := range ops {
			if tail(v) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
