package vertical

import (
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/expr"
)

// wordGate applies the boolean gate at word granularity — the test-side
// analogue of the derived kernels, independent of any device model.
func wordGate(op engine.Op, a, b uint64) uint64 {
	switch op {
	case engine.OpNOT:
		return ^a
	case engine.OpAND:
		return a & b
	case engine.OpOR:
		return a | b
	case engine.OpNAND:
		return ^(a & b)
	case engine.OpNOR:
		return ^(a | b)
	case engine.OpXOR:
		return a ^ b
	case engine.OpXNOR:
		return ^(a ^ b)
	case engine.OpCOPY:
		return a
	}
	panic("unknown op")
}

// runWords interprets the µProgram over word slices: every step's
// node-at-a-time program evaluated word by word into the destination
// slice. This pins the program semantics without an accelerator; the
// facade's differential tests pin the device tiers against the same
// reference.
func runWords(t *testing.T, p *Program, env map[string][]uint64, words int) {
	t.Helper()
	for _, name := range p.Temps {
		env[name] = make([]uint64, words)
	}
	for j := 0; j < p.OutWidth; j++ {
		if _, ok := env[ZVar(j)]; !ok {
			env[ZVar(j)] = make([]uint64, words)
		}
	}
	for si, st := range p.Steps {
		prog := st.Plan.Prog
		dst, ok := env[st.Dst]
		if !ok {
			t.Fatalf("step %d: unknown destination %q", si, st.Dst)
		}
		vars := make([][]uint64, len(prog.Vars))
		for i, name := range prog.Vars {
			v, ok := env[name]
			if !ok {
				t.Fatalf("step %d: unbound variable %q", si, name)
			}
			if name == st.Dst {
				t.Fatalf("step %d: reads its own destination %q", si, name)
			}
			vars[i] = v
		}
		temps := make([]uint64, prog.TempSlots)
		val := func(r expr.Ref, w int) uint64 {
			if r.Temp {
				return temps[r.Index]
			}
			return vars[r.Index][w]
		}
		res := prog.Result()
		for w := 0; w < words; w++ {
			for _, in := range prog.Instrs {
				var bv uint64
				if !in.Op.Unary() {
					bv = val(in.B, w)
				}
				temps[in.Dst.Index] = wordGate(in.Op, val(in.A, w), bv)
			}
			dst[w] = val(res, w)
		}
	}
}

// runProgram slices the operands, interprets the program, and unslices
// the z outputs back to elements.
func runProgram(t *testing.T, p *Program, x, y, m []uint64) []uint64 {
	t.Helper()
	n := len(x)
	words := SliceWords(n)
	env := make(map[string][]uint64)
	for j, s := range Slice(x, p.Width) {
		env[XVar(j)] = s
	}
	if p.Op.Binary() {
		for j, s := range Slice(y, p.Width) {
			env[YVar(j)] = s
		}
	}
	if p.Op.Masked() {
		mw := make([]uint64, words)
		copy(mw, m)
		env[MaskVar] = mw
	}
	runWords(t, p, env, words)
	outs := make([][]uint64, p.OutWidth)
	for j := range outs {
		outs[j] = env[ZVar(j)]
	}
	return Unslice(outs, n)
}

// TestProgramsMatchReference: every op × a width sweep, random operands,
// word-level interpretation bit-identical to the host integer reference.
func TestProgramsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	widths := []int{1, 2, 3, 4, 5, 7, 8, 13, 16, 31, 32, 33, 64}
	for op := Op(0); int(op) < NumOps; op++ {
		for _, w := range widths {
			p, err := Build(op, w)
			if err != nil {
				t.Fatalf("Build(%s, %d): %v", op, w, err)
			}
			if p.OutWidth != op.OutWidth(w) {
				t.Fatalf("%s/%d: OutWidth %d, want %d", op, w, p.OutWidth, op.OutWidth(w))
			}
			n := 1 + rng.Intn(200)
			x := make([]uint64, n)
			y := make([]uint64, n)
			m := make([]uint64, SliceWords(n))
			for i := range x {
				x[i] = rng.Uint64()
				y[i] = rng.Uint64()
			}
			for i := range m {
				m[i] = rng.Uint64()
			}
			// Force edge cases into the operand mix: equal values and
			// extreme magnitudes exercise the compare/borrow chains.
			if n > 3 {
				y[0] = x[0]
				x[1], y[1] = WidthMask(w), 0
				x[2], y[2] = 0, WidthMask(w)
			}
			got := runProgram(t, p, x, y, m)
			want := Reference(op, w, x, y, m)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s/%d element %d: program %#x, reference %#x (x=%#x y=%#x)",
						op, w, i, got[i], want[i], x[i]&WidthMask(w), y[i]&WidthMask(w))
				}
			}
		}
	}
}

// TestProgramShape: scratch recycling keeps the temp pool logarithmic
// and every step's expression narrow enough for one fused-kernel pass.
func TestProgramShape(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		for _, w := range []int{4, 16, 64} {
			p, err := Build(op, w)
			if err != nil {
				t.Fatalf("Build(%s, %d): %v", op, w, err)
			}
			if len(p.Temps) > 12 {
				t.Errorf("%s/%d: %d temps, want a recycled handful", op, w, len(p.Temps))
			}
			for i, st := range p.Steps {
				if len(st.Plan.Vars) > 6 {
					t.Errorf("%s/%d step %d: %d variables, exceeds fused-kernel fan-in", op, w, i, len(st.Plan.Vars))
				}
			}
		}
	}
}

// TestBuildRejectsBadWidth: widths outside 1..64 fail.
func TestBuildRejectsBadWidth(t *testing.T) {
	for _, w := range []int{0, -1, 65} {
		if _, err := Build(OpAdd, w); err == nil {
			t.Fatalf("Build(add, %d) succeeded, want error", w)
		}
	}
}

// TestParseOp: mnemonics round-trip and unknown names are rejected.
func TestParseOp(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		got, ok := ParseOp(op.String())
		if !ok || got != op {
			t.Fatalf("ParseOp(%q) = %v, %v", op.String(), got, ok)
		}
	}
	if _, ok := ParseOp("nand"); ok {
		t.Fatalf("ParseOp accepted unknown mnemonic")
	}
}
