package vertical

import (
	"math/rand"
	"testing"
)

// TestTranspose64Involution: transposing twice restores the original
// matrix, and single transposition moves bit j of word i to bit i of
// word j.
func TestTranspose64Involution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var m, orig [64]uint64
	for i := range m {
		m[i] = rng.Uint64()
	}
	orig = m
	Transpose64(&m)
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			got := m[j] >> uint(i) & 1
			want := orig[i] >> uint(j) & 1
			if got != want {
				t.Fatalf("transpose bit (%d,%d): got %d want %d", i, j, got, want)
			}
		}
	}
	Transpose64(&m)
	if m != orig {
		t.Fatalf("double transpose is not the identity")
	}
}

// TestSliceRoundTrip: Slice followed by Unslice recovers the elements
// masked to the width, across random widths 1..64 and ragged lengths.
func TestSliceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 200; iter++ {
		width := 1 + rng.Intn(64)
		n := 1 + rng.Intn(300)
		elems := make([]uint64, n)
		for i := range elems {
			elems[i] = rng.Uint64()
		}
		slices := Slice(elems, width)
		if len(slices) != width {
			t.Fatalf("Slice returned %d slices, want %d", len(slices), width)
		}
		mask := WidthMask(width)
		// Slices must be canonical: bits beyond n zero in the last word.
		if n%64 != 0 {
			tail := uint64(1)<<uint(n%64) - 1
			for j, s := range slices {
				if s[len(s)-1]&^tail != 0 {
					t.Fatalf("width %d n %d: slice %d tail not canonical: %#x", width, n, j, s[len(s)-1])
				}
			}
		}
		// Spot-check the layout contract directly.
		for probe := 0; probe < 16; probe++ {
			i := rng.Intn(n)
			j := rng.Intn(width)
			got := slices[j][i/64] >> uint(i%64) & 1
			want := elems[i] >> uint(j) & 1
			if got != want {
				t.Fatalf("width %d n %d: slice bit (%d,%d) = %d, want %d", width, n, i, j, got, want)
			}
		}
		back := Unslice(slices, n)
		for i := range back {
			if back[i] != elems[i]&mask {
				t.Fatalf("width %d n %d: element %d round-tripped to %#x, want %#x",
					width, n, i, back[i], elems[i]&mask)
			}
		}
	}
}

// TestSliceIntoReuse: SliceInto into oversized preallocated slices only
// writes the covered words and honors the zero-padding contract.
func TestSliceIntoReuse(t *testing.T) {
	elems := []uint64{3, 1, 2}
	width := 2
	words := SliceWords(len(elems))
	slices := make([][]uint64, width)
	for j := range slices {
		slices[j] = []uint64{^uint64(0)} // dirty
	}
	_ = words
	SliceInto(slices, elems)
	if slices[0][0] != 0b011 || slices[1][0] != 0b101 {
		t.Fatalf("SliceInto got %#b/%#b, want 011/101", slices[0][0], slices[1][0])
	}
}
