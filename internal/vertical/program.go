package vertical

import (
	"fmt"
	"math/bits"
	"strconv"

	"repro/internal/expr"
	"repro/internal/plan"
)

// Step is one µProgram step: a compiled boolean plan whose value is
// written to the named destination slice. Every plan variable names
// either an operand slice (x*/y*/m), a previously produced output slice
// (z*), or a scratch slice (t*) written by an earlier step; a step never
// reads its own destination, so in-place execution is safe on every
// dispatch tier.
type Step struct {
	// Dst is the slice the step's value is stored to.
	Dst string
	// Plan is the compiled expression producing the value.
	Plan *plan.Plan
}

// Program is a compiled vertical operation: an ordered step list over
// named bit slices. Steps carry data dependencies only through slice
// names, stripe-locally — stripe s of any step reads only stripe s of
// earlier steps — so executors may partition stripes freely as long as
// each stripe observes the steps in order.
type Program struct {
	// Op is the operation the program computes.
	Op Op
	// Width is the operand element width in bits (1..64).
	Width int
	// OutWidth is the number of z output slices produced.
	OutWidth int
	// Temps lists the scratch slice names the executor must provide,
	// sized like the operand slices. Scratch reuse is pre-computed by
	// liveness, so the list stays short even for deep programs.
	Temps []string
	// Steps are the program steps in execution order.
	Steps []Step
}

// Len counts the program's steps.
func (p *Program) Len() int { return len(p.Steps) }

// vsrc is a value source a builder step may read: a virtual SSA id
// produced by an earlier step (vid >= 0) or a named input leaf.
type vsrc struct {
	vid  int
	name string
}

// leaf makes an input-slice source.
func leaf(name string) vsrc { return vsrc{vid: -1, name: name} }

// namer resolves a virtual id to its assigned physical slice name.
type namer func(vid int) string

// node renders the source as an expression leaf under the naming.
func (s vsrc) node(nm namer) *expr.Node {
	if s.vid >= 0 {
		return expr.Var(nm(s.vid))
	}
	return expr.Var(s.name)
}

// uses returns the virtual ids the source depends on.
func (s vsrc) uses() []int {
	if s.vid >= 0 {
		return []int{s.vid}
	}
	return nil
}

// bstep is one un-assembled builder step: the virtual id it defines, the
// ids it reads, and a constructor producing its expression tree once
// physical names are assigned.
type bstep struct {
	out   int
	uses  []int
	build func(nm namer) *expr.Node
}

// builder accumulates steps in SSA form: every step defines one fresh
// virtual id, and steps reference earlier values only through those ids.
// assemble then maps ids to physical slice names with a last-use scan so
// scratch slices are recycled instead of growing with program length
// (popcount at width 64 runs hundreds of steps on a handful of temps).
type builder struct {
	steps []bstep
}

// emit appends a step reading srcs and returns its virtual id.
func (b *builder) emit(build func(nm namer) *expr.Node, srcs ...vsrc) int {
	id := len(b.steps)
	var uses []int
	for _, s := range srcs {
		u := s.uses()
		if len(u) == 0 {
			continue
		}
		dup := false
		for _, seen := range uses {
			if seen == u[0] {
				dup = true
				break
			}
		}
		if !dup {
			uses = append(uses, u[0])
		}
	}
	b.steps = append(b.steps, bstep{out: id, uses: uses, build: build})
	return id
}

// assemble lowers the SSA steps to a Program: virtual ids mapped to
// output names (for ids in outs) or recycled scratch names, each step's
// expression built under that naming and compiled through the plan IR.
// Scratch names free only after the step that last reads them, so a
// step's destination never aliases one of its own inputs.
func (b *builder) assemble(op Op, width int, outs map[int]string) (*Program, error) {
	lastUse := make(map[int]int, len(b.steps))
	for i, st := range b.steps {
		for _, u := range st.uses {
			lastUse[u] = i
		}
	}
	names := make(map[int]string, len(b.steps))
	var free []string
	var temps []string
	steps := make([]Step, 0, len(b.steps))
	for i, st := range b.steps {
		dst, isOut := outs[st.out]
		if !isOut {
			if n := len(free); n > 0 {
				dst = free[n-1]
				free = free[:n-1]
			} else {
				dst = "t" + strconv.Itoa(len(temps))
				temps = append(temps, dst)
			}
		}
		names[st.out] = dst
		node := st.build(func(vid int) string { return names[vid] })
		d, err := expr.BuildDAG(node)
		if err != nil {
			return nil, fmt.Errorf("vertical: %s/%d step %d: %v", op, width, i, err)
		}
		pl, err := plan.Compile(d)
		if err != nil {
			return nil, fmt.Errorf("vertical: %s/%d step %d: %v", op, width, i, err)
		}
		steps = append(steps, Step{Dst: dst, Plan: pl})
		for _, u := range st.uses {
			if lastUse[u] == i {
				if _, uo := outs[u]; !uo {
					free = append(free, names[u])
				}
			}
		}
	}
	return &Program{Op: op, Width: width, OutWidth: op.OutWidth(width), Temps: temps, Steps: steps}, nil
}

// Build synthesizes the µProgram computing op over width-bit elements.
// Width must be in 1..64. Each step's expression is kept narrow (at most
// kernel.MaxFusedInputs distinct slices) so the fusion tier collapses it
// into a single derived kernel pass and the command-accurate fallback
// fits small row budgets.
func Build(op Op, width int) (*Program, error) {
	if width < 1 || width > 64 {
		return nil, fmt.Errorf("vertical: element width %d out of range [1,64]", width)
	}
	b := &builder{}
	outs := make(map[int]string)
	switch op {
	case OpAdd:
		buildAdd(b, outs, width)
	case OpSub:
		buildSub(b, outs, width)
	case OpLT, OpLE, OpLTS, OpLES:
		buildCompare(b, outs, width, op)
	case OpEQ:
		buildEq(b, outs, width)
	case OpPopcount:
		buildPopcount(b, outs, width)
	case OpSelect:
		buildSelect(b, outs, width)
	default:
		return nil, fmt.Errorf("vertical: unknown op %d", int(op))
	}
	return b.assemble(op, width, outs)
}

// xj/yj build operand-slice leaves.
func xj(j int) *expr.Node { return expr.Var(XVar(j)) }

// yj builds the y operand-slice leaf for bit j.
func yj(j int) *expr.Node { return expr.Var(YVar(j)) }

// buildAdd emits the ripple-carry adder: sum_j = x_j ^ y_j ^ c, carry
// c' = (x_j & y_j) | (c & (x_j ^ y_j)), with the final carry dropped
// (modular arithmetic).
func buildAdd(b *builder, outs map[int]string, w int) {
	outs[b.emit(func(nm namer) *expr.Node { return expr.Xor(xj(0), yj(0)) })] = ZVar(0)
	if w == 1 {
		return
	}
	c := b.emit(func(nm namer) *expr.Node { return expr.And(xj(0), yj(0)) })
	for j := 1; j < w; j++ {
		j, cin := j, vsrc{vid: c}
		outs[b.emit(func(nm namer) *expr.Node {
			return expr.Xor(expr.Xor(xj(j), yj(j)), cin.node(nm))
		}, cin)] = ZVar(j)
		if j < w-1 {
			c = b.emit(func(nm namer) *expr.Node {
				return expr.Or(expr.And(xj(j), yj(j)), expr.And(cin.node(nm), expr.Xor(xj(j), yj(j))))
			}, cin)
		}
	}
}

// buildSub emits the borrow-chain subtractor: diff_j = x_j ^ y_j ^ b,
// borrow b' = (~x_j & y_j) | (b & ~(x_j ^ y_j)).
func buildSub(b *builder, outs map[int]string, w int) {
	outs[b.emit(func(nm namer) *expr.Node { return expr.Xor(xj(0), yj(0)) })] = ZVar(0)
	if w == 1 {
		return
	}
	bw := b.emit(func(nm namer) *expr.Node { return expr.And(expr.Not(xj(0)), yj(0)) })
	for j := 1; j < w; j++ {
		j, bin := j, vsrc{vid: bw}
		outs[b.emit(func(nm namer) *expr.Node {
			return expr.Xor(expr.Xor(xj(j), yj(j)), bin.node(nm))
		}, bin)] = ZVar(j)
		if j < w-1 {
			bw = b.emit(func(nm namer) *expr.Node {
				return expr.Or(expr.And(expr.Not(xj(j)), yj(j)), expr.And(bin.node(nm), expr.Not(expr.Xor(xj(j), yj(j)))))
			}, bin)
		}
	}
}

// buildCompare emits the MSB-down lexicographic chain shared by
// less-than and less-or-equal, unsigned and signed. At the sign bit a
// two's-complement compare inverts the roles (a set x sign means x is
// smaller); below it the chains are identical.
func buildCompare(b *builder, outs map[int]string, w int, op Op) {
	signed := op == OpLTS || op == OpLES
	le := op == OpLE || op == OpLES
	msb := w - 1
	lt := b.emit(func(nm namer) *expr.Node {
		if signed {
			return expr.And(xj(msb), expr.Not(yj(msb)))
		}
		return expr.And(expr.Not(xj(msb)), yj(msb))
	})
	eq := -1
	if w > 1 || le {
		eq = b.emit(func(nm namer) *expr.Node { return expr.Not(expr.Xor(xj(msb), yj(msb))) })
	}
	for j := msb - 1; j >= 0; j-- {
		j, ltin, eqin := j, vsrc{vid: lt}, vsrc{vid: eq}
		lt = b.emit(func(nm namer) *expr.Node {
			return expr.Or(ltin.node(nm), expr.And(eqin.node(nm), expr.And(expr.Not(xj(j)), yj(j))))
		}, ltin, eqin)
		if j > 0 || le {
			eq = b.emit(func(nm namer) *expr.Node {
				return expr.And(eqin.node(nm), expr.Not(expr.Xor(xj(j), yj(j))))
			}, eqin)
		}
	}
	if le {
		ltin, eqin := vsrc{vid: lt}, vsrc{vid: eq}
		outs[b.emit(func(nm namer) *expr.Node {
			return expr.Or(ltin.node(nm), eqin.node(nm))
		}, ltin, eqin)] = ZVar(0)
		return
	}
	outs[lt] = ZVar(0)
}

// buildEq emits equality as an XNOR-AND accumulator chain: the first
// step folds three bit positions (six operand slices), every later step
// ANDs two more positions into the accumulator (five slices) — each step
// one fused-kernel pass, and the accumulator ping-pongs through two
// recycled scratch slices regardless of width.
func buildEq(b *builder, outs map[int]string, w int) {
	hi := 3
	if hi > w {
		hi = w
	}
	first := hi
	acc := b.emit(func(nm namer) *expr.Node {
		n := expr.Not(expr.Xor(xj(0), yj(0)))
		for j := 1; j < first; j++ {
			n = expr.And(n, expr.Not(expr.Xor(xj(j), yj(j))))
		}
		return n
	})
	for lo := first; lo < w; lo += 2 {
		end := lo + 2
		if end > w {
			end = w
		}
		lo, end, ain := lo, end, vsrc{vid: acc}
		acc = b.emit(func(nm namer) *expr.Node {
			n := ain.node(nm)
			for j := lo; j < end; j++ {
				n = expr.And(n, expr.Not(expr.Xor(xj(j), yj(j))))
			}
			return n
		}, ain)
	}
	outs[acc] = ZVar(0)
}

// buildPopcount emits the bit-serial counter: a half-adder seeds a
// two-bit counter from x0/x1, then every further operand bit increments
// it through a carry chain, the counter growing one slice exactly when
// the maximum count needs another bit. Width 1 degenerates to a single
// identity pass (z0 = x0 & x0).
func buildPopcount(b *builder, outs map[int]string, w int) {
	if w == 1 {
		outs[b.emit(func(nm namer) *expr.Node { return expr.And(xj(0), xj(0)) })] = ZVar(0)
		return
	}
	cnt := []int{
		b.emit(func(nm namer) *expr.Node { return expr.Xor(xj(0), xj(1)) }),
		b.emit(func(nm namer) *expr.Node { return expr.And(xj(0), xj(1)) }),
	}
	for j := 2; j < w; j++ {
		grow := bits.Len(uint(j+1)) > len(cnt)
		carry := leaf(XVar(j))
		next := make([]int, 0, len(cnt)+1)
		for p := 0; p < len(cnt); p++ {
			cp, cin := vsrc{vid: cnt[p]}, carry
			next = append(next, b.emit(func(nm namer) *expr.Node {
				return expr.Xor(cp.node(nm), cin.node(nm))
			}, cp, cin))
			if p < len(cnt)-1 || grow {
				carry = vsrc{vid: b.emit(func(nm namer) *expr.Node {
					return expr.And(cp.node(nm), cin.node(nm))
				}, cp, cin)}
			}
		}
		if grow {
			next = append(next, carry.vid)
		}
		cnt = next
	}
	for p, vid := range cnt {
		outs[vid] = ZVar(p)
	}
}

// buildSelect emits the per-slice blend z_j = (m & x_j) | (~m & y_j).
func buildSelect(b *builder, outs map[int]string, w int) {
	for j := 0; j < w; j++ {
		j := j
		outs[b.emit(func(nm namer) *expr.Node {
			m := expr.Var(MaskVar)
			return expr.Or(expr.And(m, xj(j)), expr.And(expr.Not(m), yj(j)))
		})] = ZVar(j)
	}
}
