package vertical

import "math/bits"

// WidthMask returns the low-w-bit mask for element widths 1..64.
func WidthMask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(w) - 1
}

// signExtend interprets the low w bits of v as two's complement.
func signExtend(v uint64, w int) int64 {
	return int64(v<<uint(64-w)) >> uint(64-w)
}

// Reference computes op over horizontal host integers — the oracle the
// in-DRAM vertical path is differentially tested against. Element bits
// at or above width are ignored on input; outputs carry OutWidth
// significant bits. For OpSelect, the mask bit for element i is bit i of
// the packed words m; y and m are ignored when the op does not take
// them.
func Reference(op Op, width int, x, y, m []uint64) []uint64 {
	mask := WidthMask(width)
	out := make([]uint64, len(x))
	omask := WidthMask(op.OutWidth(width))
	b2u := func(b bool) uint64 {
		if b {
			return 1
		}
		return 0
	}
	for i := range x {
		xv := x[i] & mask
		var yv uint64
		if op.Binary() {
			yv = y[i] & mask
		}
		switch op {
		case OpAdd:
			out[i] = (xv + yv) & mask
		case OpSub:
			out[i] = (xv - yv) & mask
		case OpLT:
			out[i] = b2u(xv < yv)
		case OpLE:
			out[i] = b2u(xv <= yv)
		case OpEQ:
			out[i] = b2u(xv == yv)
		case OpLTS:
			out[i] = b2u(signExtend(xv, width) < signExtend(yv, width))
		case OpLES:
			out[i] = b2u(signExtend(xv, width) <= signExtend(yv, width))
		case OpPopcount:
			out[i] = uint64(bits.OnesCount64(xv))
		case OpSelect:
			if m[i/64]>>uint(i%64)&1 != 0 {
				out[i] = xv
			} else {
				out[i] = yv
			}
		}
		out[i] &= omask
	}
	return out
}
