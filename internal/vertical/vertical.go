// Package vertical implements SIMDRAM-style bit-serial arithmetic over
// the bulk bitwise substrate: k-bit integers stored in a vertical
// (bit-sliced, transposed) layout — element i's bit j lives at bit
// position i of slice j — so one bulk bitwise row operation advances one
// bit position of every element at once.
//
// The package has two halves. The transpose engine converts horizontal
// `[]uint64` element arrays to and from the bit-sliced layout through a
// word-blocked 64×64 bit-matrix transpose with ragged-tail zero padding.
// The µProgram builder synthesizes k-bit operations (ripple-carry
// add/sub, unsigned and signed compares, popcount accumulation,
// select/blend) as sequences of boolean steps, one internal/expr DAG per
// produced bit slice, each compiled through plan.Compile — so vertical
// arithmetic inherits clustering, common-subexpression elimination, and
// the fused k-input kernels, and executes on every tier of the facade
// (fused, node-at-a-time, command-accurate) with identical modeled cost.
//
// The package is engine-agnostic: it emits plans over named slices and
// leaves binding names to vectors, striping, and execution to the
// facade. The slice naming contract is fixed: operand x binds x0..x{w-1}
// (LSB first), operand y binds y0..y{w-1}, the select mask binds m,
// outputs land in z0..z{wo-1}, and scratch slices use t0..tk as listed
// in Program.Temps.
package vertical

import (
	"fmt"
	"math/bits"
	"strconv"
)

// Op enumerates the vertical arithmetic operations.
type Op int

// The vertical operation set: modular add/sub, unsigned compares
// (OpLT/OpLE/OpEQ), signed compares (OpLTS/OpLES), population count, and
// mask select.
const (
	// OpAdd computes z = (x + y) mod 2^w.
	OpAdd Op = iota
	// OpSub computes z = (x - y) mod 2^w.
	OpSub
	// OpLT computes z0 = 1 iff x < y, comparing unsigned.
	OpLT
	// OpLE computes z0 = 1 iff x <= y, comparing unsigned.
	OpLE
	// OpEQ computes z0 = 1 iff x == y.
	OpEQ
	// OpLTS computes z0 = 1 iff x < y, comparing w-bit two's complement.
	OpLTS
	// OpLES computes z0 = 1 iff x <= y, comparing w-bit two's complement.
	OpLES
	// OpPopcount counts the set bits of each w-bit element into a
	// bits.Len(w)-bit counter.
	OpPopcount
	// OpSelect computes z = m ? x : y per element, with the mask bit for
	// element i taken from bit i of the mask slice.
	OpSelect
)

// opNames are the canonical lowercase mnemonics, in Op order.
var opNames = [...]string{"add", "sub", "lt", "le", "eq", "lts", "les", "popcount", "select"}

// NumOps is the number of vertical operations.
const NumOps = len(opNames)

// String returns the canonical lowercase mnemonic.
func (op Op) String() string {
	if op < 0 || int(op) >= len(opNames) {
		return fmt.Sprintf("vertical.Op(%d)", int(op))
	}
	return opNames[op]
}

// ParseOp maps a lowercase mnemonic to its Op.
func ParseOp(s string) (Op, bool) {
	for i, n := range opNames {
		if s == n {
			return Op(i), true
		}
	}
	return 0, false
}

// Binary reports whether the operation takes a second operand y.
func (op Op) Binary() bool { return op != OpPopcount }

// Masked reports whether the operation takes a mask slice m.
func (op Op) Masked() bool { return op == OpSelect }

// OutWidth returns the number of output bit slices the operation
// produces for w-bit operands: w for add/sub/select, 1 for compares, and
// bits.Len(w) for popcount (counts range over 0..w inclusive).
func (op Op) OutWidth(w int) int {
	switch op {
	case OpLT, OpLE, OpEQ, OpLTS, OpLES:
		return 1
	case OpPopcount:
		return bits.Len(uint(w))
	default:
		return w
	}
}

// XVar names bit slice j of operand x.
func XVar(j int) string { return "x" + strconv.Itoa(j) }

// YVar names bit slice j of operand y.
func YVar(j int) string { return "y" + strconv.Itoa(j) }

// ZVar names output bit slice j.
func ZVar(j int) string { return "z" + strconv.Itoa(j) }

// MaskVar names the select mask slice.
const MaskVar = "m"
