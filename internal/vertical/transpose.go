package vertical

// Transpose64 transposes a 64×64 bit matrix in place: bit j of word i
// moves to bit i of word j. The transform is an involution, so the same
// call converts in both directions. This is the word-blocked core the
// slice converters run per 64-element block (recursive block swap, six
// rounds of masked exchanges).
func Transpose64(m *[64]uint64) {
	j := 32
	mask := uint64(0x00000000FFFFFFFF)
	for j != 0 {
		for k := 0; k < 64; k = (k + j + 1) &^ j {
			t := ((m[k] >> uint(j)) ^ m[k+j]) & mask
			m[k] ^= t << uint(j)
			m[k+j] ^= t
		}
		j >>= 1
		mask ^= mask << uint(j)
	}
}

// SliceWords returns the word length of one bit slice covering n
// elements: ceil(n/64).
func SliceWords(n int) int { return (n + 63) / 64 }

// SliceInto transposes the horizontal element array elems into the
// bit-sliced layout: after the call, bit i of slices[j] equals bit j of
// elems[i]. The element width is len(slices) (1..64); element bits at or
// above the width are discarded. Every slice must have at least
// SliceWords(len(elems)) words; bits beyond len(elems) in the final word
// are zeroed (ragged tails transpose from zero padding), so slices stay
// canonical for bit-vector adoption.
func SliceInto(slices [][]uint64, elems []uint64) {
	width := len(slices)
	var m [64]uint64
	for base := 0; base < len(elems); base += 64 {
		blk := elems[base:]
		if len(blk) > 64 {
			blk = blk[:64]
		}
		n := copy(m[:], blk)
		for i := n; i < 64; i++ {
			m[i] = 0
		}
		Transpose64(&m)
		w := base / 64
		for j := 0; j < width; j++ {
			slices[j][w] = m[j]
		}
	}
}

// UnsliceInto reconstructs the horizontal element array from the
// bit-sliced layout: elems[i] gets bit j from bit i of slices[j], for
// j < len(slices); higher element bits are zero. It is the inverse of
// SliceInto for canonical slices.
func UnsliceInto(elems []uint64, slices [][]uint64) {
	width := len(slices)
	var m [64]uint64
	for base := 0; base < len(elems); base += 64 {
		w := base / 64
		for j := 0; j < width; j++ {
			m[j] = slices[j][w]
		}
		for j := width; j < 64; j++ {
			m[j] = 0
		}
		Transpose64(&m)
		n := len(elems) - base
		if n > 64 {
			n = 64
		}
		copy(elems[base:base+n], m[:n])
	}
}

// Slice is the allocating form of SliceInto: it returns width freshly
// allocated bit slices of SliceWords(len(elems)) words each.
func Slice(elems []uint64, width int) [][]uint64 {
	words := SliceWords(len(elems))
	slices := make([][]uint64, width)
	backing := make([]uint64, width*words)
	for j := range slices {
		slices[j] = backing[j*words : (j+1)*words]
	}
	SliceInto(slices, elems)
	return slices
}

// Unslice is the allocating form of UnsliceInto for n elements.
func Unslice(slices [][]uint64, n int) []uint64 {
	elems := make([]uint64, n)
	UnsliceInto(elems, slices)
	return elems
}
