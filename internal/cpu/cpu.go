// Package cpu models the Kaby-Lake-class CPU baseline of the case studies
// (§6.3): bulk bitwise operations and population counts executed with
// SIMD over DRAM-resident vectors are bandwidth-bound, so the model is a
// simple roofline over memory traffic with a compute ceiling.
package cpu

import "errors"

// Model holds the CPU parameters.
type Model struct {
	// BandwidthGBps is the sustained memory bandwidth in GB/s
	// (Kaby Lake dual-channel DDR4-2400: ~34 GB/s peak, ~80% sustained).
	BandwidthGBps float64
	// FreqGHz is the core clock.
	FreqGHz float64
	// SIMDBytesPerCycle is the per-core SIMD bitwise throughput
	// (AVX2: one 32-byte op per cycle sustained).
	SIMDBytesPerCycle float64
	// PopcountBytesPerCycle is the per-core POPCNT throughput
	// (scalar popcnt: 8 bytes/cycle; Harley-Seal AVX2 ≈ 16).
	PopcountBytesPerCycle float64
	// Cores is the number of cores participating.
	Cores int
}

// KabyLake returns the 7th-generation Intel Core parameters used as the
// baseline in Figures 13 and 14.
func KabyLake() Model {
	return Model{
		BandwidthGBps:         27,
		FreqGHz:               3.6,
		SIMDBytesPerCycle:     32,
		PopcountBytesPerCycle: 16,
		Cores:                 4,
	}
}

// Validate reports whether the model is usable.
func (m Model) Validate() error {
	if m.BandwidthGBps <= 0 || m.FreqGHz <= 0 || m.SIMDBytesPerCycle <= 0 ||
		m.PopcountBytesPerCycle <= 0 || m.Cores <= 0 {
		return errors.New("cpu: all model parameters must be positive")
	}
	return nil
}

// bytesNS returns the time to stream n bytes at the memory bandwidth, ns.
func (m Model) bytesNS(n float64) float64 {
	return n / m.BandwidthGBps // bytes / (GB/s) = ns
}

// BulkOpNS returns the time for one bulk bitwise operation over vectors of
// nbits bits with the given number of input operands (output write-back
// included): the max of the memory-traffic time and the SIMD compute time.
func (m Model) BulkOpNS(nbits int, operands int) float64 {
	if nbits <= 0 {
		return 0
	}
	bytes := float64(nbits) / 8
	traffic := m.bytesNS(bytes * float64(operands+1))
	compute := bytes / (m.SIMDBytesPerCycle * m.FreqGHz * float64(m.Cores))
	if compute > traffic {
		return compute
	}
	return traffic
}

// PopcountNS returns the time to population-count an nbits vector.
func (m Model) PopcountNS(nbits int) float64 {
	if nbits <= 0 {
		return 0
	}
	bytes := float64(nbits) / 8
	traffic := m.bytesNS(bytes)
	compute := bytes / (m.PopcountBytesPerCycle * m.FreqGHz * float64(m.Cores))
	if compute > traffic {
		return compute
	}
	return traffic
}

// ReduceAndNS returns the time to AND-reduce k nbits vectors and leave the
// result in memory: (k-1) chained bulk ANDs with the accumulator kept in
// cache, so each step streams one fresh operand and the final step writes
// the result.
func (m Model) ReduceAndNS(nbits, k int) float64 {
	if k < 2 || nbits <= 0 {
		return 0
	}
	bytes := float64(nbits) / 8
	// Read each operand once; accumulator stays resident; one write-out.
	traffic := m.bytesNS(bytes * float64(k+1))
	compute := bytes * float64(k-1) / (m.SIMDBytesPerCycle * m.FreqGHz * float64(m.Cores))
	if compute > traffic {
		return compute
	}
	return traffic
}
