package cpu

import "testing"

func TestKabyLakeValidates(t *testing.T) {
	if err := KabyLake().Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
}

func TestValidateRejectsBadModel(t *testing.T) {
	m := KabyLake()
	m.Cores = 0
	if err := m.Validate(); err == nil {
		t.Fatal("Validate accepted zero cores")
	}
	m = KabyLake()
	m.BandwidthGBps = -1
	if err := m.Validate(); err == nil {
		t.Fatal("Validate accepted negative bandwidth")
	}
}

func TestBulkOpBandwidthBound(t *testing.T) {
	m := KabyLake()
	// 16 Mbit AND: 2 inputs + 1 output = 6 MB of traffic at 27 GB/s
	// ≈ 222 µs; compute is far cheaper, so traffic dominates.
	nbits := 16 << 20
	got := m.BulkOpNS(nbits, 2)
	want := float64(nbits) / 8 * 3 / m.BandwidthGBps
	if got != want {
		t.Fatalf("BulkOpNS = %v, want traffic-bound %v", got, want)
	}
}

func TestBulkOpScalesWithOperands(t *testing.T) {
	m := KabyLake()
	if m.BulkOpNS(1<<20, 3) <= m.BulkOpNS(1<<20, 2) {
		t.Fatal("more operands must cost more traffic")
	}
}

func TestBulkOpZeroBits(t *testing.T) {
	if KabyLake().BulkOpNS(0, 2) != 0 {
		t.Fatal("zero bits must cost zero")
	}
	if KabyLake().PopcountNS(-5) != 0 {
		t.Fatal("negative bits must cost zero")
	}
}

func TestComputeBoundRegime(t *testing.T) {
	// With an absurdly high bandwidth the SIMD ceiling binds.
	m := KabyLake()
	m.BandwidthGBps = 1e6
	nbits := 1 << 20
	got := m.BulkOpNS(nbits, 2)
	want := float64(nbits) / 8 / (m.SIMDBytesPerCycle * m.FreqGHz * float64(m.Cores))
	if got != want {
		t.Fatalf("BulkOpNS = %v, want compute-bound %v", got, want)
	}
	gotPC := m.PopcountNS(nbits)
	wantPC := float64(nbits) / 8 / (m.PopcountBytesPerCycle * m.FreqGHz * float64(m.Cores))
	if gotPC != wantPC {
		t.Fatalf("PopcountNS = %v, want compute-bound %v", gotPC, wantPC)
	}
}

func TestPopcountCheaperThanBulkOp(t *testing.T) {
	// Popcount reads one stream; a binary op reads two and writes one.
	m := KabyLake()
	if m.PopcountNS(1<<20) >= m.BulkOpNS(1<<20, 2) {
		t.Fatal("popcount must be cheaper than a 2-operand bulk op")
	}
}

func TestReduceAnd(t *testing.T) {
	m := KabyLake()
	if m.ReduceAndNS(1<<20, 1) != 0 || m.ReduceAndNS(0, 4) != 0 {
		t.Fatal("degenerate reduce must cost zero")
	}
	// Reducing k vectors with a cached accumulator is cheaper than k-1
	// independent bulk ops.
	k := 8
	reduce := m.ReduceAndNS(1<<20, k)
	naive := m.BulkOpNS(1<<20, 2) * float64(k-1)
	if reduce >= naive {
		t.Fatalf("reduce %v must beat naive chaining %v", reduce, naive)
	}
	if m.ReduceAndNS(1<<20, 9) <= reduce {
		t.Fatal("more operands must cost more")
	}
}
