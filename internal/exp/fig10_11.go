package exp

import (
	"fmt"
	"io"

	"repro/internal/analog"
	"repro/internal/timing"
)

func init() {
	register(Runner{
		ID:    "fig10",
		Title: "Figure 10: waveforms of APP-AP sequences (OR, AND)",
		Run:   runFig10,
	})
	register(Runner{
		ID:    "fig11",
		Title: "Figure 11: error rate under process variation (random / systematic)",
		Run:   runFig11,
	})
}

func runFig10(w io.Writer) error {
	c := analog.Default()
	tp := timing.DDR31600()
	cases := []struct {
		op   analog.TwoCycleOp
		a, b bool
	}{
		{analog.TwoCycleOR, true, false},  // Figure 4 case 1
		{analog.TwoCycleOR, false, false}, // Figure 4 case 2
		{analog.TwoCycleAND, false, true},
		{analog.TwoCycleAND, true, true},
	}
	for _, tc := range cases {
		wf := analog.SimulateAPPAP(c, tp, tc.op, tc.a, tc.b)
		fmt.Fprint(w, wf.RenderASCII(100))
	}
	fmt.Fprintln(w, "full traces: cmd/waveform emits CSV for plotting")
	return nil
}

func runFig11(w io.Writer) error {
	c := analog.Default()
	sigmas := []float64{0.02, 0.04, 0.06, 0.08, 0.10, 0.12}
	const trials = 20000
	devices := []analog.Device{
		analog.DeviceDRAM, analog.DeviceAmbit,
		analog.DeviceELP2IM, analog.DeviceELP2IMComplementary,
	}
	for _, vk := range []analog.Variation{analog.VariationRandom, analog.VariationSystematic} {
		fmt.Fprintf(w, "(%s process variation, coupling = %.0f%% of Cb)\n",
			vk, c.CouplingFraction*100)
		fmt.Fprintf(w, "%-22s", "sigma")
		for _, s := range sigmas {
			fmt.Fprintf(w, " %8.0f%%", s*100)
		}
		fmt.Fprintln(w)
		for _, d := range devices {
			curve := analog.ErrorCurve(c, d, vk, sigmas, trials, 42)
			fmt.Fprintf(w, "%-22s", d)
			for _, r := range curve {
				fmt.Fprintf(w, " %9.2e", r)
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w, "paper shape: Ambit worst (esp. under random PV), ELP2IM between Ambit and DRAM")
	return nil
}
