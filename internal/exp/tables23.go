package exp

import (
	"fmt"
	"io"

	"repro/internal/ambit"
	"repro/internal/apps/cnn"
	"repro/internal/drisa"
	"repro/internal/elpim"
)

func init() {
	register(Runner{
		ID:    "table2",
		Title: "Table 2: Dracc (ternary-weight CNN) FPS on the three designs",
		Run:   runTable2,
	})
	register(Runner{
		ID:    "table3",
		Title: "Table 3: NID (binary CNN) FPS on the three designs",
		Run:   runTable3,
	})
}

func accelDesigns() (ambitD, elpimD, drisaD cnn.Design) {
	ecfg := elpim.DefaultConfig()
	ecfg.ReservedRows = 2 // §6.3: accelerators buffer more data
	return ambit.MustNew(ambit.DefaultConfig()),
		elpim.MustNew(ecfg),
		drisa.MustNew(drisa.DefaultConfig())
}

// paper improvement rows for annotation.
var (
	table2PaperELP2IM = map[string]float64{"Lenet5": 1.08, "Cifar10": 1.14, "Alexnet": 1.14, "VGG16": 1.13, "VGG19": 1.13}
	table2PaperDrisa  = map[string]float64{"Lenet5": 0.79, "Cifar10": 0.65, "Alexnet": 0.66, "VGG16": 0.68, "VGG19": 0.66}
	table3PaperELP2IM = map[string]float64{"Lenet5": 1.32, "Alexnet": 1.11, "Resnet18": 1.31, "Resnet34": 1.31, "Resnet50": 1.25}
	table3PaperDrisa  = map[string]float64{"Lenet5": 0.73, "Alexnet": 0.91, "Resnet18": 0.74, "Resnet34": 0.74, "Resnet50": 0.79}
)

func printCNNTable(w io.Writer, rows []cnn.TableRow, paperE, paperD map[string]float64) {
	fmt.Fprintf(w, "%-10s %12s %12s %12s %9s %9s %9s %9s\n",
		"network", "Ambit FPS", "ELP2IM FPS", "Drisa FPS",
		"E-impr", "paper", "D-impr", "paper")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %12.1f %12.1f %12.1f %8.2fx %8.2fx %8.2fx %8.2fx\n",
			r.Network, r.AmbitFPS, r.ELP2IMFPS, r.DrisaFPS,
			r.ELP2IMImprovement, paperE[r.Network],
			r.DrisaImprovement, paperD[r.Network])
	}
}

func runTable2(w io.Writer) error {
	a, e, d := accelDesigns()
	rows, err := cnn.Table2(a, e, d, cnn.DefaultAccel())
	if err != nil {
		return err
	}
	printCNNTable(w, rows, table2PaperELP2IM, table2PaperDrisa)
	fmt.Fprintln(w, "absolute FPS differ from the paper's testbed (mapping efficiency is")
	fmt.Fprintln(w, "calibration, see DESIGN.md); the improvement columns are the reproduced result")

	// Per-layer breakdown for the smallest network: where the frame time
	// goes and how full the lane fabric is.
	layers, err := cnn.DraccBreakdown(cnn.LeNet5(), e, a, cnn.DefaultAccel())
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\nLenet5 per-layer breakdown (ELP2IM):")
	fmt.Fprintf(w, "%-8s %12s %7s %12s %6s\n", "layer", "MACs", "slices", "compute(µs)", "util")
	for _, l := range layers {
		fmt.Fprintf(w, "%-8s %12.0f %7d %12.2f %5.0f%%\n",
			l.Name, l.MACs, l.Slices, l.ComputeNS/1e3, l.Utilization*100)
	}
	return nil
}

func runTable3(w io.Writer) error {
	a, e, d := accelDesigns()
	rows, err := cnn.Table3(a, e, d, cnn.DefaultAccel())
	if err != nil {
		return err
	}
	printCNNTable(w, rows, table3PaperELP2IM, table3PaperDrisa)
	fmt.Fprintln(w, "NID's count-heavy kernels give ELP2IM more headroom than Dracc's fixed add")
	return nil
}
