package exp

import (
	"fmt"
	"io"

	"repro/internal/analog"
	"repro/internal/elpim"
	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/timing"
)

func init() {
	register(Runner{
		ID:    "ablation",
		Title: "Ablations: each ELP2IM design choice isolated (beyond the paper)",
		Run:   runAblation,
	})
}

// ablationVariant is one ELP2IM configuration under study.
type ablationVariant struct {
	name   string
	mutate func(*elpim.Config)
}

func runAblation(w io.Writer) error {
	variants := []ablationVariant{
		{"full (paper default)", nil},
		{"- isolation transistor (no oAPP, §4.2.1)", func(c *elpim.Config) { c.UseIsolation = false }},
		{"- restore truncation (no tAPP, §4.2.2)", func(c *elpim.Config) { c.UseRestoreTruncation = false }},
		{"- both §4.2 optimizations", func(c *elpim.Config) {
			c.UseIsolation = false
			c.UseRestoreTruncation = false
		}},
		{"+ second reserved row (§4.2.3)", func(c *elpim.Config) { c.ReservedRows = 2 }},
		{"high-throughput mode (Fig 5(b))", func(c *elpim.Config) { c.Mode = elpim.HighThroughput }},
	}

	tp := timing.DDR31600()
	fmt.Fprintln(w, "(a) primitive-level optimizations — per-op latency (ns) and wordlines")
	fmt.Fprintf(w, "%-42s %9s %9s %9s %7s\n", "variant", "AND", "XOR", "XNOR", "XOR-WL")
	for _, v := range variants {
		cfg := elpim.DefaultConfig()
		if v.mutate != nil {
			v.mutate(&cfg)
		}
		e, err := elpim.New(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-42s %9.1f %9.1f %9.1f %7d\n", v.name,
			e.OpStats(engine.OpAND).LatencyNS,
			e.OpStats(engine.OpXOR).LatencyNS,
			e.OpStats(engine.OpXNOR).LatencyNS,
			e.OpStats(engine.OpXOR).Wordlines)
	}

	fmt.Fprintln(w, "\n(b) execution-mode ablation under the power constraint (AND, 8 banks)")
	for _, mode := range []elpim.Mode{elpim.ReducedLatency, elpim.HighThroughput} {
		cfg := elpim.DefaultConfig()
		cfg.Mode = mode
		e, err := elpim.New(cfg)
		if err != nil {
			return err
		}
		p := sched.ProfileFromSeq(e.Compile(engine.OpAND), tp)
		res, err := sched.Simulate(p, sched.Config{Banks: 8, Timing: tp, PowerConstrained: true}, 300_000)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-22s latency %6.1f ns  eff-banks %5.2f  module rate %6.2f Mop/s\n",
			mode, p.LatencyNS, res.EffectiveBanks, res.OpsPerSecond/1e6)
	}

	fmt.Fprintln(w, "\n(c) pseudo-precharge strategy ablation — error rate at sigma, random PV")
	c := analog.Default()
	for _, sigma := range []float64{0.08, 0.12, 0.16} {
		reg := analog.ErrorRate(c, analog.DeviceELP2IM, analog.VariationRandom, sigma, 20000, 42)
		comp := analog.ErrorRate(c, analog.DeviceELP2IMComplementary, analog.VariationRandom, sigma, 20000, 42)
		fmt.Fprintf(w, "sigma %4.0f%%: regular %9.2e  complementary %9.2e\n", sigma*100, reg, comp)
	}

	fmt.Fprintln(w, "\n(d) refresh tax (extension; not modeled in the paper)")
	cfg := elpim.DefaultConfig()
	e, err := elpim.New(cfg)
	if err != nil {
		return err
	}
	p := sched.ProfileFromSeq(e.Compile(engine.OpAND), tp)
	base, err := sched.Simulate(p, sched.Config{Banks: 8, Timing: tp}, 300_000)
	if err != nil {
		return err
	}
	withRef, err := sched.Simulate(p, sched.Config{Banks: 8, Timing: tp, ModelRefresh: true}, 300_000)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "throughput loss to refresh: %.1f%% (tRFC/tREFI = %.1f%%)\n",
		(1-withRef.OpsPerSecond/base.OpsPerSecond)*100, tp.RefreshOverhead()*100)

	fmt.Fprintln(w, "\n(e) Cb/Cc ratio sweep — worst-case two-cycle OR correctness per strategy (§4.1)")
	fmt.Fprintf(w, "%10s %12s %16s\n", "Cb/Cc", "regular", "complementary")
	base2 := analog.Default()
	for _, ratio := range []float64{0.5, 0.8, 1.0, 1.2, 2.0, 3.0} {
		cc := base2
		cc.Cb = cc.Cc * ratio
		reg := analog.TwoCycleCorrect(cc, analog.TwoCycleOR, analog.StrategyRegular, true, false)
		comp := analog.TwoCycleCorrect(cc, analog.TwoCycleOR, analog.StrategyComplementary, true, false)
		fmt.Fprintf(w, "%10.1f %12v %16v\n", ratio, reg, comp)
	}
	fmt.Fprintln(w, "(regular needs Cb > Cc; the complementary strategy is ratio-independent)")

	fmt.Fprintln(w, "\n(f) DDR4-2400 portability (§6.2: \"other type of DRAM is also compatible\")")
	tp4 := timing.DDR42400()
	cfg3 := elpim.DefaultConfig()
	cfg4 := elpim.DefaultConfig()
	cfg4.Timing = tp4
	e3 := elpim.MustNew(cfg3)
	e4 := elpim.MustNew(cfg4)
	fmt.Fprintf(w, "%-8s %14s %14s\n", "op", "DDR3-1600(ns)", "DDR4-2400(ns)")
	for _, op := range []engine.Op{engine.OpAND, engine.OpOR, engine.OpXOR} {
		fmt.Fprintf(w, "%-8s %14.1f %14.1f\n", op,
			e3.OpStats(op).LatencyNS, e4.OpStats(op).LatencyNS)
	}
	return nil
}
