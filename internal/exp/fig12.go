package exp

import (
	"fmt"
	"io"

	"repro/internal/ambit"
	"repro/internal/drisa"
	"repro/internal/elpim"
	"repro/internal/engine"
	"repro/internal/power"
)

func init() {
	register(Runner{
		ID:    "fig12",
		Title: "Figure 12: latency and power of basic logic operations",
		Run:   runFig12,
	})
}

// fig12Engines returns the three designs in the figure's order.
func fig12Engines() []engine.Engine {
	return []engine.Engine{
		drisa.MustNew(drisa.DefaultConfig()),
		ambit.MustNew(ambit.DefaultConfig()),
		elpim.MustNew(elpim.DefaultConfig()),
	}
}

// opPower returns the average power of one op: dynamic energy plus
// background energy over the op latency.
func opPower(e engine.Engine, op engine.Op, pp power.Params) float64 {
	st := e.OpStats(op)
	bg := pp.BackgroundPower * e.BackgroundFactor() * st.LatencyNS
	return (st.EnergyNJ + bg) / st.LatencyNS
}

func runFig12(w io.Writer) error {
	engines := fig12Engines()
	pp := power.DDR31600()
	ops := engine.BasicOps()

	fmt.Fprintln(w, "(a) latency, ns")
	fmt.Fprintf(w, "%-10s", "op")
	for _, e := range engines {
		fmt.Fprintf(w, " %10s", e.Name())
	}
	fmt.Fprintln(w)
	for _, op := range ops {
		fmt.Fprintf(w, "%-10s", op)
		for _, e := range engines {
			fmt.Fprintf(w, " %10.1f", e.OpStats(op).LatencyNS)
		}
		fmt.Fprintln(w)
	}

	// Average speedups the paper reports: 1.17× vs Ambit, 1.12× vs Drisa.
	elp := engines[2]
	avg := func(base engine.Engine) float64 {
		total := 0.0
		for _, op := range ops {
			total += base.OpStats(op).LatencyNS / elp.OpStats(op).LatencyNS
		}
		return total / float64(len(ops))
	}
	fmt.Fprintf(w, "avg ELP2IM speedup: %.2fx vs Ambit (paper 1.17x), %.2fx vs Drisa_nor (paper 1.12x)\n",
		avg(engines[1]), avg(engines[0]))

	// With the second reserved row (XOR/XNOR drop to sequence 6).
	cfg2 := elpim.DefaultConfig()
	cfg2.ReservedRows = 2
	elp2 := elpim.MustNew(cfg2)
	avg2 := func(base engine.Engine) float64 {
		total := 0.0
		for _, op := range ops {
			total += base.OpStats(op).LatencyNS / elp2.OpStats(op).LatencyNS
		}
		return total / float64(len(ops))
	}
	fmt.Fprintf(w, "with one more buffer:  %.2fx vs Ambit (paper 1.23x), %.2fx vs Drisa_nor (paper 1.16x)\n",
		avg2(engines[1]), avg2(engines[0]))

	fmt.Fprintln(w, "\n(b) average power, W")
	fmt.Fprintf(w, "%-10s", "op")
	for _, e := range engines {
		fmt.Fprintf(w, " %10s", e.Name())
	}
	fmt.Fprintln(w)
	for _, op := range ops {
		fmt.Fprintf(w, "%-10s", op)
		for _, e := range engines {
			fmt.Fprintf(w, " %10.3f", opPower(e, op, pp))
		}
		fmt.Fprintln(w)
	}
	avgP := func(e engine.Engine) float64 {
		total := 0.0
		for _, op := range ops {
			total += opPower(e, op, pp)
		}
		return total / float64(len(ops))
	}
	fmt.Fprintf(w, "avg power: Drisa %.3f W, Ambit %.3f W, ELP2IM %.3f W (paper: ELP2IM ~3%% below Ambit, Drisa highest)\n",
		avgP(engines[0]), avgP(engines[1]), avgP(engines[2]))
	return nil
}
