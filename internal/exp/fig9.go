package exp

import (
	"fmt"
	"io"

	"repro/internal/ambit"
	"repro/internal/drisa"
	"repro/internal/elpim"
	"repro/internal/engine"
)

func init() {
	register(Runner{
		ID:    "fig9",
		Title: "Figure 9: hardware cost of regular DRAM, Ambit, and ELP2IM",
		Run:   runFig9,
	})
}

func runFig9(w io.Writer) error {
	type rowEntry struct {
		eng   engine.Engine
		notes string
	}
	rows := []rowEntry{
		{ambit.MustNew(ambit.DefaultConfig()),
			"B-group: T0–T3 + 2 dual-contact rows (4 physical) + C0/C1; special triple-row decoder; half-density region"},
		{elpim.MustNew(elpim.DefaultConfig()),
			"1 dual-contact row with separate driver; split-EQ metal change; ~0.8% isolation transistor"},
		{func() engine.Engine {
			cfg := elpim.DefaultConfig()
			cfg.ReservedRows = 2
			return elpim.MustNew(cfg)
		}(), "accelerator configuration (+1 reserved row for sequence-6 XOR)"},
		{drisa.MustNew(drisa.DefaultConfig()),
			"NOR gate + latch per sense amplifier; no reserved rows"},
	}

	fmt.Fprintf(w, "%-12s %9s %10s  %s\n", "design", "reserved", "area(%)", "modifications")
	fmt.Fprintf(w, "%-12s %9d %10.2f  %s\n", "DRAM", 0, 0.0, "(baseline)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %9d %10.2f  %s\n",
			r.eng.Name(), r.eng.ReservedRows(), r.eng.AreaOverheadPercent(), r.notes)
	}

	a := rows[0].eng
	e := rows[1].eng
	saving := 1 - e.AreaOverheadPercent()/a.AreaOverheadPercent()
	fmt.Fprintf(w, "\nELP2IM array overhead is %.0f%% below Ambit's (paper §5.2: 22%% less)\n", saving*100)
	fmt.Fprintln(w, "Drisa_nor: \"even for the simplest NOR based design, it still increases 24% area\"")
	return nil
}
