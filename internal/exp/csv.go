package exp

import (
	"fmt"
	"io"

	"repro/internal/analog"
	"repro/internal/apps/bitmap"
	"repro/internal/apps/tablescan"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/power"
	"repro/internal/timing"
)

// csvEmitters produce machine-readable series for the plottable figures,
// one row per data point, ready for any plotting tool.
var csvEmitters = map[string]func(io.Writer) error{
	"fig11": csvFig11,
	"fig12": csvFig12,
	"fig13": csvFig13,
	"fig14": csvFig14,
}

// CSV emits the machine-readable form of a figure. It reports whether the
// experiment has one.
func CSV(id string, w io.Writer) (bool, error) {
	f, ok := csvEmitters[id]
	if !ok {
		return false, nil
	}
	return true, f(w)
}

// CSVIDs returns the experiments with CSV emitters.
func CSVIDs() []string {
	out := make([]string, 0, len(csvEmitters))
	for _, id := range IDs() {
		if _, ok := csvEmitters[id]; ok {
			out = append(out, id)
		}
	}
	return out
}

func csvFig11(w io.Writer) error {
	c := analog.Default()
	fmt.Fprintln(w, "variation,device,sigma,error_rate")
	sigmas := []float64{0.02, 0.04, 0.06, 0.08, 0.10, 0.12}
	for _, vk := range []analog.Variation{analog.VariationRandom, analog.VariationSystematic} {
		for _, d := range []analog.Device{
			analog.DeviceDRAM, analog.DeviceAmbit,
			analog.DeviceELP2IM, analog.DeviceELP2IMComplementary,
		} {
			curve := analog.ErrorCurve(c, d, vk, sigmas, 20000, 42)
			for i, s := range sigmas {
				fmt.Fprintf(w, "%s,%s,%.2f,%.6e\n", vk, d, s, curve[i])
			}
		}
	}
	return nil
}

func csvFig12(w io.Writer) error {
	pp := power.DDR31600()
	fmt.Fprintln(w, "design,op,latency_ns,power_w,commands,wordlines")
	for _, e := range fig12Engines() {
		for _, op := range engine.BasicOps() {
			st := e.OpStats(op)
			fmt.Fprintf(w, "%s,%s,%.1f,%.4f,%d,%d\n",
				e.Name(), op, st.LatencyNS, opPower(e, op, pp), st.Commands, st.Wordlines)
		}
	}
	return nil
}

func csvFig13(w io.Writer) error {
	pp := power.DDR31600()
	wl := bitmap.Default()
	mod := dram.Default()
	tp := timing.DDR31600()
	m := cpu.KabyLake()
	base, err := bitmap.RunCPU(wl, m)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "design,reserved_rows,power_constrained,system_speedup,device_ms,effective_banks,device_energy_uj")
	for _, constrained := range []bool{false, true} {
		for _, d := range bitmapDesigns() {
			r, err := bitmap.Run(wl, d, mod, tp, pp, m, constrained)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s,%d,%t,%.3f,%.4f,%.2f,%.1f\n",
				r.Name, r.ReservedRows, constrained, r.SpeedupOver(base),
				r.DeviceNS/1e6, r.EffectiveBanks, r.DeviceEnergyNJ/1e3)
		}
	}
	return nil
}

func csvFig14(w io.Writer) error {
	mod := dram.Default()
	tp := timing.DDR31600()
	m := cpu.KabyLake()
	fmt.Fprintln(w, "design,width,system_speedup,device_ms,predicate_ns,tuples_per_sec")
	for _, width := range []int{4, 8, 12, 16} {
		wl := tablescan.Default(width)
		base, err := tablescan.RunCPU(wl, m)
		if err != nil {
			return err
		}
		for _, d := range fig14Designs() {
			r, err := tablescan.Run(wl, d, mod, tp, m)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s,%d,%.3f,%.4f,%.1f,%.4g\n",
				r.Name, width, r.SpeedupOver(base), r.DeviceNS/1e6,
				r.PredicateLatencyNS, r.TuplesPerSec)
		}
	}
	return nil
}
