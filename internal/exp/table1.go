package exp

import (
	"fmt"
	"io"

	"repro/internal/primitive"
	"repro/internal/timing"
)

func init() {
	register(Runner{
		ID:    "table1",
		Title: "Table 1: primitives of ELP2IM (DDR3-1600)",
		Run:   runTable1,
	})
	register(Runner{
		ID:    "fig8",
		Title: "Figure 8: XOR primitive-sequence optimization (519 → 297 ns)",
		Run:   runFig8,
	})
}

func runTable1(w io.Writer) error {
	tp := timing.DDR31600()
	rows := []struct {
		kind  primitive.Kind
		mean  string
		paper float64
	}{
		{primitive.AP, "Activate-Precharge", 49},
		{primitive.AAP, "Activate-Activate-Precharge", 84},
		{primitive.OAAP, "overlapped Activate-Activate-Precharge", 53},
		{primitive.APP, "Activate-Pseudoprecharge-Precharge", 67},
		{primitive.OAPP, "overlapped Activate-Pseudoprecharge-Precharge", 53},
		{primitive.TAPP, "trimmed Activate-Pseudoprecharge-Precharge", 46},
	}
	fmt.Fprintf(w, "%-8s %-48s %10s %10s\n", "Prim", "Meaning", "model(ns)", "paper(ns)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-48s %10.1f %10.0f\n",
			r.kind, r.mean, r.kind.Duration(tp), r.paper)
	}
	fmt.Fprintf(w, "%-8s %-48s %10.1f %10s\n",
		primitive.OTAPP, "trimmed+overlapped (used inside XOR seq 5/6)",
		primitive.OTAPP.Duration(tp), "-")
	return nil
}

// The Figure 8 sequence compositions, expressed in primitives. Sequence 1
// is three oAAP-APP-oAAP triples; each later sequence applies one of the
// §4.2/§4.3 optimizations.
func fig8Sequences(tp timing.Params) []struct {
	name  string
	prims []primitive.Kind
	paper float64
} {
	k := func(ks ...primitive.Kind) []primitive.Kind { return ks }
	return []struct {
		name  string
		prims []primitive.Kind
		paper float64
	}{
		{"seq1: 3×(oAAP APP oAAP)", k(
			primitive.OAAP, primitive.APP, primitive.OAAP,
			primitive.OAAP, primitive.APP, primitive.OAAP,
			primitive.OAAP, primitive.APP, primitive.OAAP), 519},
		{"seq2: merge the two R accesses", k(
			primitive.OAAP, primitive.APP, primitive.OAAP,
			primitive.OAAP, primitive.APP, primitive.APP, primitive.AP), 409},
		{"seq3: trim the dead restore (tAPP)", k(
			primitive.OAAP, primitive.APP, primitive.OAAP,
			primitive.OAAP, primitive.APP, primitive.TAPP, primitive.AP), 388},
		{"seq5: overlap pseudo-precharge (oAPP)", k(
			primitive.OAAP, primitive.OAPP, primitive.OAAP,
			primitive.OAAP, primitive.OAPP, primitive.OTAPP, primitive.AP), 346},
		{"seq6: second reserved row merges the B copy", k(
			primitive.OAAP, primitive.OAPPM, primitive.OAAP,
			primitive.OAPP, primitive.OTAPP, primitive.AP), 297},
	}
}

func runFig8(w io.Writer) error {
	tp := timing.DDR31600()
	fmt.Fprintf(w, "%-44s %5s %11s %10s\n", "sequence", "prims", "model(ns)", "paper(ns)")
	for _, s := range fig8Sequences(tp) {
		total := 0.0
		for _, k := range s.prims {
			total += k.Duration(tp)
		}
		fmt.Fprintf(w, "%-44s %5d %11.1f %10.0f\n", s.name, len(s.prims), total, s.paper)
	}
	return nil
}
