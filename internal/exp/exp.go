// Package exp regenerates every table and figure of the paper's
// evaluation section (§6). Each runner prints the same rows/series the
// paper reports, annotated with the paper's expected values where the
// text states them, so paper-vs-measured comparisons can be recorded.
package exp

import (
	"fmt"
	"io"
	"sort"
)

// Runner regenerates one experiment, writing its rows to w.
type Runner struct {
	// ID is the experiment identifier ("table1", "fig12", ...).
	ID string
	// Title describes the artifact.
	Title string
	// Run regenerates the experiment.
	Run func(w io.Writer) error
}

// registry holds all experiments, keyed by ID.
var registry = map[string]Runner{}

func register(r Runner) {
	if _, dup := registry[r.ID]; dup {
		panic("exp: duplicate experiment " + r.ID)
	}
	registry[r.ID] = r
}

// Lookup returns the runner for an experiment ID.
func Lookup(id string) (Runner, bool) {
	r, ok := registry[id]
	return r, ok
}

// IDs returns all experiment IDs in a stable order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// RunAll regenerates every experiment in ID order.
func RunAll(w io.Writer) error {
	for _, id := range IDs() {
		r := registry[id]
		fmt.Fprintf(w, "==== %s — %s ====\n", r.ID, r.Title)
		if err := r.Run(w); err != nil {
			return fmt.Errorf("exp: %s: %w", id, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}
