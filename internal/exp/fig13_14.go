package exp

import (
	"fmt"
	"io"

	"repro/internal/ambit"
	"repro/internal/apps/bitmap"
	"repro/internal/apps/tablescan"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/drisa"
	"repro/internal/elpim"
	"repro/internal/power"
	"repro/internal/timing"
)

func init() {
	register(Runner{
		ID:    "fig13",
		Title: "Figure 13: Bitmap case study (16M users, w weeks)",
		Run:   runFig13,
	})
	register(Runner{
		ID:    "fig14",
		Title: "Figure 14: BitWeaving table scan vs data width",
		Run:   runFig14,
	})
}

func bitmapDesigns() []bitmap.Design {
	mk := func(reserved int) bitmap.Design {
		cfg := ambit.DefaultConfig()
		cfg.ReservedRows = reserved
		return ambit.MustNew(cfg)
	}
	return []bitmap.Design{
		mk(4), mk(6), mk(10),
		elpim.MustNew(elpim.DefaultConfig()),
	}
}

func runFig13(w io.Writer) error {
	pp := power.DDR31600()
	wl := bitmap.Default()
	mod := dram.Default()
	tp := timing.DDR31600()
	m := cpu.KabyLake()
	base, err := bitmap.RunCPU(wl, m)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "workload: %d users, %d weeks; CPU baseline %.1f query-pairs/s\n\n",
		wl.Users, wl.Weeks, base.QueriesPerSec)

	for _, constrained := range []bool{false, true} {
		label := "no power constraint"
		if constrained {
			label = "WITH power constraint"
		}
		fmt.Fprintf(w, "(%s)\n", label)
		fmt.Fprintf(w, "%-10s %9s %14s %14s %9s %9s %12s\n",
			"design", "reserved", "sys-speedup", "device(ms)", "banks", "rowops", "energy(µJ)")
		for _, d := range bitmapDesigns() {
			r, err := bitmap.Run(wl, d, mod, tp, pp, m, constrained)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-10s %9d %13.2fx %14.3f %9.2f %9d %12.1f\n",
				r.Name, r.ReservedRows, r.SpeedupOver(base), r.DeviceNS/1e6,
				r.EffectiveBanks, r.RowOps, r.DeviceEnergyNJ/1e3)
		}
		fmt.Fprintln(w)
	}

	// Weeks sweep (the paper's "past w weeks" parameter).
	fmt.Fprintln(w, "weeks sweep (power-constrained, system speedup over CPU):")
	sweep := []int{2, 4, 6, 8, 12}
	fmt.Fprintf(w, "%-10s", "design")
	for _, wk := range sweep {
		fmt.Fprintf(w, " %7s", fmt.Sprintf("w=%d", wk))
	}
	fmt.Fprintln(w)
	for _, d := range bitmapDesigns() {
		fmt.Fprintf(w, "%-10s", d.Name())
		for _, wk := range sweep {
			wlk := bitmap.Workload{Users: wl.Users, Weeks: wk}
			basek, err := bitmap.RunCPU(wlk, m)
			if err != nil {
				return err
			}
			r, err := bitmap.Run(wlk, d, mod, tp, pp, m, true)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %6.2fx", r.SpeedupOver(basek))
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w, "\npaper shape: Ambit gains 4→6 rows, little 6→10; never catches ELP2IM;")
	fmt.Fprintln(w, "under constraint Ambit device throughput drops up to ~83%, ELP2IM ~56%;")
	fmt.Fprintln(w, "ELP2IM device energy well below Ambit (paper: 17–27% less)")
	return nil
}

// fig14Designs returns the table-scan designs in display order.
func fig14Designs() []tablescan.Design {
	return []tablescan.Design{
		ambit.MustNew(ambit.DefaultConfig()),
		drisa.MustNew(drisa.DefaultConfig()),
		elpim.MustNew(elpim.DefaultConfig()),
	}
}

func runFig14(w io.Writer) error {
	mod := dram.Default()
	tp := timing.DDR31600()
	m := cpu.KabyLake()
	designs := fig14Designs()
	fmt.Fprintf(w, "%-6s %-10s %14s %14s %12s %9s\n",
		"width", "design", "sys-speedup", "device(ms)", "pred(ns)", "reserved")
	for _, width := range []int{4, 8, 12, 16} {
		wl := tablescan.Default(width)
		base, err := tablescan.RunCPU(wl, m)
		if err != nil {
			return err
		}
		for _, d := range designs {
			r, err := tablescan.Run(wl, d, mod, tp, m)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-6d %-10s %13.2fx %14.3f %12.1f %9d\n",
				width, r.Name, r.SpeedupOver(base), r.DeviceNS/1e6,
				r.PredicateLatencyNS, r.ReservedRows)
		}
	}
	// Extension: the full BitWeaving comparator suite at width 8.
	fmt.Fprintln(w, "\ncomparator suite at width 8 (per-stripe predicate latency, ns):")
	fmt.Fprintf(w, "%-10s", "design")
	ops := []tablescan.CmpOp{tablescan.CmpLT, tablescan.CmpLE, tablescan.CmpGT,
		tablescan.CmpGE, tablescan.CmpEQ, tablescan.CmpNE}
	for _, op := range ops {
		fmt.Fprintf(w, " %8s", op)
	}
	fmt.Fprintln(w)
	for _, d := range designs {
		fmt.Fprintf(w, "%-10s", d.Name())
		for _, op := range ops {
			r, err := tablescan.RunCompare(tablescan.Default(8), op, d, mod, tp, m)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %8.0f", r.PredicateLatencyNS)
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w, "\npaper shape: ELP2IM highest, improvement grows with width;")
	fmt.Fprintln(w, "Drisa_nor outperforms Ambit under the power constraint but has the largest latency")
	return nil
}
