package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of §6 (plus Figure 8 and the ablations).
	want := []string{"ablation", "fig10", "fig11", "fig12", "fig13", "fig14", "fig8", "fig9", "table1", "table2", "table3"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("experiments = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("experiments = %v, want %v", got, want)
		}
	}
}

func TestLookup(t *testing.T) {
	r, ok := Lookup("table1")
	if !ok || r.ID != "table1" || r.Run == nil {
		t.Fatal("Lookup(table1) failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup accepted unknown id")
	}
}

func TestEveryRunnerProducesOutput(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			r, _ := Lookup(id)
			var buf bytes.Buffer
			if err := r.Run(&buf); err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if buf.Len() < 80 {
				t.Fatalf("%s produced only %d bytes", id, buf.Len())
			}
		})
	}
}

func TestTable1Output(t *testing.T) {
	var buf bytes.Buffer
	r, _ := Lookup("table1")
	if err := r.Run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"AP", "AAP", "oAAP", "APP", "oAPP", "tAPP", "49", "84", "53", "67", "46"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q", want)
		}
	}
}

func TestFig12Output(t *testing.T) {
	var buf bytes.Buffer
	r, _ := Lookup("fig12")
	if err := r.Run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Drisa_nor", "Ambit", "ELP2IM", "XOR", "avg ELP2IM speedup", "power"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig12 output missing %q", want)
		}
	}
}

func TestTable2Output(t *testing.T) {
	var buf bytes.Buffer
	r, _ := Lookup("table2")
	if err := r.Run(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Lenet5", "Cifar10", "Alexnet", "VGG16", "VGG19"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("table2 output missing %q", want)
		}
	}
}

func TestTable3Output(t *testing.T) {
	var buf bytes.Buffer
	r, _ := Lookup("table3")
	if err := r.Run(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Lenet5", "Alexnet", "Resnet18", "Resnet34", "Resnet50"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("table3 output missing %q", want)
		}
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full regeneration is slow")
	}
	var buf bytes.Buffer
	if err := RunAll(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "==== table3") {
		t.Fatal("RunAll missing experiments")
	}
}

func TestCSVEmitters(t *testing.T) {
	want := []string{"fig11", "fig12", "fig13", "fig14"}
	got := CSVIDs()
	if len(got) != len(want) {
		t.Fatalf("CSV ids = %v, want %v", got, want)
	}
	for _, id := range want {
		var buf bytes.Buffer
		ok, err := CSV(id, &buf)
		if err != nil || !ok {
			t.Fatalf("CSV(%s): ok=%v err=%v", id, ok, err)
		}
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		if len(lines) < 5 {
			t.Fatalf("CSV(%s) has only %d lines", id, len(lines))
		}
		header := strings.Count(lines[0], ",")
		for i, line := range lines {
			if strings.Count(line, ",") != header {
				t.Fatalf("CSV(%s) line %d has inconsistent columns: %q", id, i, line)
			}
		}
	}
	if ok, _ := CSV("table1", &bytes.Buffer{}); ok {
		t.Fatal("table1 should have no CSV form")
	}
}
