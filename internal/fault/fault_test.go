package fault

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/analog"
	"repro/internal/apps/tablescan"
	"repro/internal/bitvec"
	"repro/internal/dram"
	"repro/internal/elpim"
	"repro/internal/engine"
)

func testSubarray() *dram.Subarray {
	return dram.NewSubarray(dram.Config{
		Banks: 1, SubarraysPerBank: 1,
		RowsPerSubarray: 24, Columns: 4096, DualContactRows: 1,
	})
}

func TestNewValidation(t *testing.T) {
	e := elpim.MustNew(elpim.DefaultConfig())
	if _, err := New(nil, 0.1, 1); err == nil {
		t.Error("nil executor accepted")
	}
	if _, err := New(e, -0.1, 1); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := New(e, 1.1, 1); err == nil {
		t.Error("rate above 1 accepted")
	}
}

func TestZeroRateIsExact(t *testing.T) {
	e := elpim.MustNew(elpim.DefaultConfig())
	in, err := New(e, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	sub := testSubarray()
	rng := rand.New(rand.NewSource(1))
	a := bitvec.Random(rng, sub.Columns())
	b := bitvec.Random(rng, sub.Columns())
	sub.LoadRow(0, a)
	sub.LoadRow(1, b)
	if err := in.Execute(sub, engine.OpAND, 2, 0, 1); err != nil {
		t.Fatal(err)
	}
	want := bitvec.New(sub.Columns()).And(a, b)
	if !sub.RowData(2).Equal(want) {
		t.Fatal("zero-rate injector corrupted the result")
	}
	if in.Injected != 0 || in.Ops != 1 {
		t.Fatalf("counters wrong: %d injected, %d ops", in.Injected, in.Ops)
	}
}

func TestInjectionRateStatistics(t *testing.T) {
	e := elpim.MustNew(elpim.DefaultConfig())
	const rate = 0.01
	in, err := New(e, rate, 7)
	if err != nil {
		t.Fatal(err)
	}
	sub := testSubarray()
	rng := rand.New(rand.NewSource(2))
	sub.LoadRow(0, bitvec.Random(rng, sub.Columns()))
	sub.LoadRow(1, bitvec.Random(rng, sub.Columns()))
	const ops = 20
	for i := 0; i < ops; i++ {
		if err := in.Execute(sub, engine.OpOR, 2, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	wantMean := rate * float64(sub.Columns()) * ops
	got := float64(in.Injected)
	if math.Abs(got-wantMean) > 4*math.Sqrt(wantMean) {
		t.Fatalf("injected %v bits, want ~%v", got, wantMean)
	}
	if in.Rate() != rate {
		t.Fatal("Rate accessor wrong")
	}
}

func TestFromCircuitRates(t *testing.T) {
	e := elpim.MustNew(elpim.DefaultConfig())
	c := analog.Default()
	// ELP2IM at moderate PV: near-zero error rate.
	low, err := FromCircuit(e, c, analog.DeviceELP2IM, analog.VariationRandom, 0.04, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Ambit's mechanism at the same corner: substantially worse.
	high, err := FromCircuit(e, c, analog.DeviceAmbit, analog.VariationRandom, 0.08, 3)
	if err != nil {
		t.Fatal(err)
	}
	if low.Rate() > high.Rate() {
		t.Fatalf("ELP2IM rate %v must not exceed Ambit rate %v", low.Rate(), high.Rate())
	}
	if high.Rate() == 0 {
		t.Fatal("Ambit at sigma=8% should have a non-zero error rate")
	}
}

// TestFaultPropagationInTableScan runs the BitWeaving predicate through a
// faulty executor and checks that output corruption scales with the
// injected rate — the paper's "error tolerant scenarios" quantified.
func TestFaultPropagationInTableScan(t *testing.T) {
	const tuples, width = 4096, 6
	rng := rand.New(rand.NewSource(4))
	values := make([]uint64, tuples)
	for i := range values {
		values[i] = rng.Uint64() & (1<<width - 1)
	}
	w := tablescan.Workload{Tuples: tuples, Width: width, Constant: 0b011010}
	golden := w.GoldenPredicate(values)

	mismatches := func(rate float64) int {
		e := elpim.MustNew(elpim.DefaultConfig())
		in, err := New(e, rate, 99)
		if err != nil {
			t.Fatal(err)
		}
		sub := testSubarray()
		cols := tablescan.Verticalize(values, width)
		rows := tablescan.PredicateRows{Bits: make([]int, width), LT: 15, EQ: 16, T1: 17, T2: 18}
		for b := 0; b < width; b++ {
			rows.Bits[b] = b
			sub.LoadRow(b, cols[b])
		}
		if err := tablescan.ExecutePredicate(sub, in, w, rows); err != nil {
			t.Fatal(err)
		}
		got := sub.RowData(rows.LT)
		diff := 0
		for i := 0; i < tuples; i++ {
			if got.Bit(i) != golden.Bit(i) {
				diff++
			}
		}
		return diff
	}

	if d := mismatches(0); d != 0 {
		t.Fatalf("fault-free predicate has %d mismatches", d)
	}
	low := mismatches(1e-4)
	high := mismatches(1e-2)
	if high <= low {
		t.Fatalf("corruption must grow with rate: low=%d high=%d", low, high)
	}
	if high == 0 {
		t.Fatal("1% per-bit error rate must corrupt some predicate outputs")
	}
	// Even at 1%, most tuples still evaluate correctly (error tolerance).
	if high > tuples/3 {
		t.Fatalf("corruption %d/%d implausibly high", high, tuples)
	}
}

func TestDetectingExecutorCleanPath(t *testing.T) {
	e := elpim.MustNew(elpim.DefaultConfig())
	det, err := NewDetecting(e, 20, 21)
	if err != nil {
		t.Fatal(err)
	}
	sub := testSubarray()
	rng := rand.New(rand.NewSource(5))
	a := bitvec.Random(rng, sub.Columns())
	b := bitvec.Random(rng, sub.Columns())
	sub.LoadRow(0, a)
	sub.LoadRow(1, b)
	for i := 0; i < 5; i++ {
		if err := det.Execute(sub, engine.OpAND, 2, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if det.Detected != 0 {
		t.Fatalf("fault-free run flagged %d detections", det.Detected)
	}
	if det.DetectionRate() != 0 || det.Ops != 5 {
		t.Fatal("counters wrong")
	}
	want := bitvec.New(sub.Columns()).And(a, b)
	if !sub.RowData(2).Equal(want) {
		t.Fatal("detector corrupted the result")
	}
}

func TestDetectingExecutorCatchesFaults(t *testing.T) {
	e := elpim.MustNew(elpim.DefaultConfig())
	// Inject a high per-bit rate so each 4096-bit execution almost surely
	// diverges from its redundant copy.
	inj, err := New(e, 1e-3, 11)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetecting(inj, 20, 21)
	if err != nil {
		t.Fatal(err)
	}
	sub := testSubarray()
	rng := rand.New(rand.NewSource(6))
	sub.LoadRow(0, bitvec.Random(rng, sub.Columns()))
	sub.LoadRow(1, bitvec.Random(rng, sub.Columns()))
	const ops = 20
	for i := 0; i < ops; i++ {
		if err := det.Execute(sub, engine.OpOR, 2, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if det.DetectionRate() < 0.9 {
		t.Fatalf("detection rate %v, want near 1 at this fault rate", det.DetectionRate())
	}
}

func TestDetectingExecutorValidation(t *testing.T) {
	e := elpim.MustNew(elpim.DefaultConfig())
	if _, err := NewDetecting(nil, 1, 2); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := NewDetecting(e, 3, 3); err == nil {
		t.Error("colliding scratch rows accepted")
	}
	det, err := NewDetecting(e, 20, 21)
	if err != nil {
		t.Fatal(err)
	}
	sub := testSubarray()
	if err := det.Execute(sub, engine.OpAND, 20, 0, 1); err == nil {
		t.Error("dst colliding with shadow accepted")
	}
	if det.CommandOverhead <= 1 {
		t.Error("detection must report its overhead")
	}
}

func TestZeroOpsDetectionRate(t *testing.T) {
	e := elpim.MustNew(elpim.DefaultConfig())
	det, err := NewDetecting(e, 20, 21)
	if err != nil {
		t.Fatal(err)
	}
	if det.DetectionRate() != 0 {
		t.Fatal("empty detector rate must be 0")
	}
}
