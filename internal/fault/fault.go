// Package fault connects the analog reliability model (§6.1.2, Figure 11)
// to application-level behaviour: it wraps an engine's functional executor
// and flips result bits with the per-access error probability the
// Monte-Carlo circuit model predicts for the device and process-variation
// corner.
//
// The paper notes bitwise PIM lacks ECC compatibility and argues the
// architecture still fits "error tolerant scenarios such as approximate
// computing or neural network acceleration" — this package is the tool for
// quantifying exactly that: run a workload through a faulty executor and
// measure how far the output drifts.
package fault

import (
	"errors"
	"math/rand"

	"repro/internal/analog"
	"repro/internal/dram"
	"repro/internal/engine"
)

// Executor is the functional engine surface being wrapped.
type Executor interface {
	Execute(sub *dram.Subarray, op engine.Op, dst, a, b int) error
}

// Injector wraps an executor and corrupts each result bit independently
// with the configured probability after every operation.
type Injector struct {
	inner Executor
	rate  float64
	rng   *rand.Rand

	// Injected counts the bits flipped so far.
	Injected int
	// Ops counts the operations executed.
	Ops int
}

// New returns an injector with an explicit per-bit error rate.
func New(inner Executor, rate float64, seed int64) (*Injector, error) {
	if inner == nil {
		return nil, errors.New("fault: nil executor")
	}
	if rate < 0 || rate > 1 {
		return nil, errors.New("fault: rate must be in [0,1]")
	}
	return &Injector{inner: inner, rate: rate, rng: rand.New(rand.NewSource(seed))}, nil
}

// FromCircuit returns an injector whose error rate comes from the analog
// Monte-Carlo model for the given device and process-variation corner.
func FromCircuit(inner Executor, c analog.Circuit, d analog.Device, vk analog.Variation,
	sigma float64, seed int64) (*Injector, error) {
	rate := analog.ErrorRate(c, d, vk, sigma, 20000, seed)
	return New(inner, rate, seed)
}

// Rate returns the per-bit error probability.
func (in *Injector) Rate() float64 { return in.rate }

// Execute implements Executor: run the real operation, then corrupt the
// destination row.
func (in *Injector) Execute(sub *dram.Subarray, op engine.Op, dst, a, b int) error {
	if err := in.inner.Execute(sub, op, dst, a, b); err != nil {
		return err
	}
	in.Ops++
	if in.rate <= 0 {
		return nil
	}
	row := sub.RowData(dst)
	for i := 0; i < row.Len(); i++ {
		if in.rng.Float64() < in.rate {
			row.SetBit(i, !row.Bit(i))
			in.Injected++
		}
	}
	return nil
}
