package fault

import (
	"errors"

	"repro/internal/dram"
	"repro/internal/engine"
)

// The paper (§6.1.2) notes that conventional ECC is incompatible with
// bitwise PIM — a row's code word is destroyed by in-place logic — and
// leaves error checking as future work. DetectingExecutor implements the
// simplest sound scheme available to any bitwise-PIM design: temporal
// redundancy. Every operation runs twice, the second time into a shadow
// row, and an in-DRAM XOR + host popcount of the difference flags
// divergence. It doubles the operation cost (plus one XOR) in exchange
// for detecting any fault that does not strike both executions
// identically.

// DetectingExecutor wraps an executor with dual-execution fault detection.
type DetectingExecutor struct {
	inner Executor
	// ShadowRow and DiffRow are the subarray rows used for the redundant
	// result and the XOR difference.
	ShadowRow, DiffRow int

	// Detected counts operations whose two executions diverged.
	Detected int
	// Ops counts operations executed.
	Ops int
	// CommandOverhead is the multiplier on op count this scheme costs
	// (2 executions + 1 XOR ≈ 3× the single-shot commands for basic ops).
	CommandOverhead float64
}

// NewDetecting wraps an executor. shadowRow and diffRow must be distinct
// scratch rows reserved for the detector.
func NewDetecting(inner Executor, shadowRow, diffRow int) (*DetectingExecutor, error) {
	if inner == nil {
		return nil, errors.New("fault: nil executor")
	}
	if shadowRow == diffRow {
		return nil, errors.New("fault: shadow and diff rows must differ")
	}
	return &DetectingExecutor{
		inner:           inner,
		ShadowRow:       shadowRow,
		DiffRow:         diffRow,
		CommandOverhead: 3,
	}, nil
}

// Execute implements Executor: run the operation into dst and again into
// the shadow row, XOR the two in DRAM, and flag a detection if any bit
// differs. The dst row keeps the FIRST execution's result (detection, not
// correction).
func (d *DetectingExecutor) Execute(sub *dram.Subarray, op engine.Op, dst, a, b int) error {
	if dst == d.ShadowRow || dst == d.DiffRow || a == d.ShadowRow || b == d.ShadowRow {
		return errors.New("fault: operand/destination collides with detector scratch rows")
	}
	if err := d.inner.Execute(sub, op, dst, a, b); err != nil {
		return err
	}
	if err := d.inner.Execute(sub, op, d.ShadowRow, a, b); err != nil {
		return err
	}
	if err := d.inner.Execute(sub, engine.OpXOR, d.DiffRow, dst, d.ShadowRow); err != nil {
		return err
	}
	d.Ops++
	if sub.RowData(d.DiffRow).Popcount() > 0 {
		d.Detected++
	}
	return nil
}

// DetectionRate returns the fraction of operations flagged.
func (d *DetectingExecutor) DetectionRate() float64 {
	if d.Ops == 0 {
		return 0
	}
	return float64(d.Detected) / float64(d.Ops)
}
