package bitmapdb

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/ambit"
	"repro/internal/bitvec"
	"repro/internal/dram"
	"repro/internal/drisa"
	"repro/internal/elpim"
	"repro/internal/engine"
	"repro/internal/layout"
)

const universe = 1000

func testModule() *dram.Module {
	return dram.NewModule(dram.Config{
		Banks: 2, SubarraysPerBank: 2,
		RowsPerSubarray: 32, Columns: 128, DualContactRows: 2,
	})
}

func newDB(t *testing.T, eng engine.Engine) *DB {
	t.Helper()
	db, err := New(testModule(), eng, universe, 12)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestNewValidation(t *testing.T) {
	e := elpim.MustNew(elpim.DefaultConfig())
	if _, err := New(testModule(), nil, universe, 12); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := New(testModule(), e, 0, 12); err == nil {
		t.Error("zero universe accepted")
	}
	if _, err := New(testModule(), e, universe, 6); err == nil {
		t.Error("no-temp scratch budget accepted")
	}
}

func TestSetGetDelete(t *testing.T) {
	db := newDB(t, elpim.MustNew(elpim.DefaultConfig()))
	rng := rand.New(rand.NewSource(1))
	data := bitvec.Random(rng, universe)
	if err := db.Set("users", data); err != nil {
		t.Fatal(err)
	}
	back, err := db.Get("users")
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(data) {
		t.Fatal("round trip mismatch")
	}
	n, err := db.Count("users")
	if err != nil || n != data.Popcount() {
		t.Fatalf("count = %d, want %d (err %v)", n, data.Popcount(), err)
	}
	// Update in place.
	data2 := bitvec.Random(rng, universe)
	if err := db.Set("users", data2); err != nil {
		t.Fatal(err)
	}
	back2, _ := db.Get("users")
	if !back2.Equal(data2) {
		t.Fatal("update lost")
	}
	if err := db.Delete("users"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get("users"); err == nil {
		t.Fatal("deleted bitmap readable")
	}
	if err := db.Delete("users"); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestSetValidation(t *testing.T) {
	db := newDB(t, elpim.MustNew(elpim.DefaultConfig()))
	if err := db.Set("", bitvec.New(universe)); err == nil {
		t.Error("empty name accepted")
	}
	if err := db.Set("x", bitvec.New(99)); err == nil {
		t.Error("wrong width accepted")
	}
}

func TestNames(t *testing.T) {
	db := newDB(t, elpim.MustNew(elpim.DefaultConfig()))
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if err := db.Set(n, bitvec.New(universe)); err != nil {
			t.Fatal(err)
		}
	}
	names := db.Names()
	if len(names) != 3 || names[0] != "alpha" || names[2] != "zeta" {
		t.Fatalf("names = %v", names)
	}
	if db.Universe() != universe {
		t.Fatal("universe accessor wrong")
	}
}

// TestQueryAllEngines runs the paper's analytics query on every engine and
// verifies against the host.
func TestQueryAllEngines(t *testing.T) {
	engines := map[string]engine.Engine{
		"elpim": elpim.MustNew(elpim.DefaultConfig()),
		"ambit": ambit.MustNew(ambit.DefaultConfig()),
		"drisa": drisa.MustNew(drisa.DefaultConfig()),
	}
	for name, eng := range engines {
		t.Run(name, func(t *testing.T) {
			db := newDB(t, eng)
			rng := rand.New(rand.NewSource(2))
			w1 := bitvec.Random(rng, universe)
			w2 := bitvec.Random(rng, universe)
			male := bitvec.Random(rng, universe)
			for n, d := range map[string]*bitvec.Vector{"w1": w1, "w2": w2, "male": male} {
				if err := db.Set(n, d); err != nil {
					t.Fatal(err)
				}
			}
			got, st, err := db.Query("w1 & w2 & male")
			if err != nil {
				t.Fatal(err)
			}
			want := bitvec.New(universe)
			want.And(w1, w2)
			want.And(want, male)
			if !got.Equal(want) {
				t.Fatal("query result mismatch")
			}
			if st.Commands == 0 || st.LatencyNS <= 0 {
				t.Fatalf("implausible cost: %+v", st)
			}
			// Stored bitmaps untouched by the query.
			b1, _ := db.Get("w1")
			if !b1.Equal(w1) {
				t.Fatal("query corrupted a stored bitmap")
			}
			// QueryCount agrees.
			n, _, err := db.QueryCount("w1 & w2 & male")
			if err != nil || n != want.Popcount() {
				t.Fatalf("count = %d, want %d (err %v)", n, want.Popcount(), err)
			}
		})
	}
}

func TestQueryComplexExpression(t *testing.T) {
	db := newDB(t, elpim.MustNew(elpim.DefaultConfig()))
	rng := rand.New(rand.NewSource(3))
	a := bitvec.Random(rng, universe)
	b := bitvec.Random(rng, universe)
	c := bitvec.Random(rng, universe)
	db.Set("a", a)
	db.Set("b", b)
	db.Set("c", c)
	got, _, err := db.Query("(a ^ b) | ~(b & c)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < universe; i++ {
		want := (a.Bit(i) != b.Bit(i)) || !(b.Bit(i) && c.Bit(i))
		if got.Bit(i) != want {
			t.Fatalf("bit %d wrong", i)
		}
	}
}

func TestQueryBareName(t *testing.T) {
	db := newDB(t, elpim.MustNew(elpim.DefaultConfig()))
	rng := rand.New(rand.NewSource(4))
	a := bitvec.Random(rng, universe)
	db.Set("a", a)
	got, st, err := db.Query("a")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(a) {
		t.Fatal("bare query mismatch")
	}
	if st.Commands != 0 {
		t.Fatal("bare query should cost nothing")
	}
}

func TestQueryErrors(t *testing.T) {
	db := newDB(t, elpim.MustNew(elpim.DefaultConfig()))
	db.Set("a", bitvec.New(universe))
	if _, _, err := db.Query("a &"); err == nil {
		t.Error("parse error not surfaced")
	}
	if _, _, err := db.Query("a & missing"); err == nil {
		t.Error("unknown bitmap accepted")
	}
	if _, _, err := db.QueryCount("(("); err == nil {
		t.Error("bad query in QueryCount accepted")
	}
}

func TestQueryTempBudget(t *testing.T) {
	// A store with a minimal temp budget must reject deep expressions.
	e := elpim.MustNew(elpim.DefaultConfig())
	db, err := New(testModule(), e, universe, 7) // 1 temp
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for _, n := range []string{"a", "b", "c", "d"} {
		if err := db.Set(n, bitvec.Random(rng, universe)); err != nil {
			t.Fatal(err)
		}
	}
	// (a^b) and (c^d) both live when the final op runs: needs >= 2 temps.
	if _, _, err := db.Query("(a ^ b) & (c ^ d)"); err == nil {
		t.Error("over-budget query accepted")
	}
	// A chain needs only... the conservative allocator uses 2 slots, so
	// even a simple AND chain may exceed a 1-temp store; a single op fits.
	if _, _, err := db.Query("a & b"); err != nil {
		t.Errorf("single-op query rejected: %v", err)
	}
}

func TestSetWriteFailureLeavesNoGhost(t *testing.T) {
	// A fresh allocation must only be adopted into the store after its
	// write succeeds: a write failing mid-stripe must leave the name
	// absent and the rows freed, not a half-written queryable bitmap.
	db := newDB(t, elpim.MustNew(elpim.DefaultConfig()))
	rng := rand.New(rand.NewSource(11))
	data := bitvec.Random(rng, universe)
	free := db.alloc.FreeRows()

	orig := writeVector
	writeVector = func(a *layout.Allocator, v *layout.Vector, d *bitvec.Vector) error {
		// Write the first stripe for real, then fail: the vector is
		// half-written when Set sees the error.
		partial := bitvec.New(d.Len())
		cols := a.Module().Config().Columns
		for i := 0; i < cols && i < d.Len(); i++ {
			partial.SetBit(i, d.Bit(i))
		}
		if err := orig(a, v, partial); err != nil {
			return err
		}
		return errors.New("injected mid-stripe write failure")
	}
	t.Cleanup(func() { writeVector = orig })

	if err := db.Set("users", data); err == nil {
		t.Fatal("failed write reported success")
	}
	if _, err := db.Get("users"); err == nil {
		t.Error("half-written bitmap is queryable after failed Set")
	}
	if _, _, err := db.Query("users"); err == nil {
		t.Error("half-written bitmap is visible to Query after failed Set")
	}
	if got := db.alloc.FreeRows(); got != free {
		t.Errorf("failed Set leaked rows: FreeRows = %d, want %d", got, free)
	}

	// With the failure cleared the same Set must succeed cleanly.
	writeVector = orig
	if err := db.Set("users", data); err != nil {
		t.Fatalf("Set after recovered failure: %v", err)
	}
	back, err := db.Get("users")
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(data) {
		t.Error("round trip mismatch after recovered failure")
	}
}
